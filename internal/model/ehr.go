// Package model implements the paper's analytic cache model (§III-C1):
// the Expected Hit Rate of the probabilistic synthetic benchmarks as a
// function of available cache capacity (Eq. 4), its inversion (used in
// §III-C3 to convert a measured miss rate into an effective cache size),
// and a refined "capped" variant that removes the paper's assumption that
// no single line's residency probability exceeds one.
//
// The model works at cache-line granularity: f is the per-line access mass
// F(j) of a distribution (see dist.LineMasses), and capacities are counted
// in cache lines.
package model

import (
	"errors"

	"activemem/internal/dist"
)

// EHR returns the expected hit rate of Eq. 4:
//
//	EHR = CacheLines · Σ_j F(j)²
//
// clamped to [0, 1]. cacheLines is the available capacity in lines and
// sumSq the Σ F² term (dist.SumSquaredLineMass). The paper derives this for
// a fully associative cache in steady state with buffer > cache.
func EHR(cacheLines float64, sumSq float64) float64 {
	ehr := cacheLines * sumSq
	if ehr < 0 {
		return 0
	}
	if ehr > 1 {
		return 1
	}
	return ehr
}

// MissRate returns 1 - EHR(cacheLines, sumSq).
func MissRate(cacheLines float64, sumSq float64) float64 {
	return 1 - EHR(cacheLines, sumSq)
}

// ErrUninvertible reports that a measured miss rate cannot be mapped back to
// a capacity (e.g. Σf² is zero).
var ErrUninvertible = errors.New("model: miss rate not invertible")

// InvertCapacity inverts Eq. 4: given a measured miss rate and the Σ F²
// term of the benchmark's distribution it returns the effective cache
// capacity, in lines, that would produce that miss rate. This is the §III-C3
// procedure for measuring how much storage CSThr interference leaves to an
// application.
func InvertCapacity(missRate, sumSq float64) (lines float64, err error) {
	if sumSq <= 0 {
		return 0, ErrUninvertible
	}
	if missRate < 0 {
		missRate = 0
	}
	if missRate > 1 {
		missRate = 1
	}
	return (1 - missRate) / sumSq, nil
}

// CappedEHR is the refined model: the probability that line j is resident is
// min(1, cacheLines·F(j)) instead of cacheLines·F(j). For sharply peaked
// distributions (e.g. "Norm 8") the linear form over-counts hits on hot
// lines; the cap removes the paper's stated small-buffer bias.
func CappedEHR(masses []float64, cacheLines float64) float64 {
	ehr := 0.0
	for _, f := range masses {
		p := cacheLines * f
		if p > 1 {
			p = 1
		}
		ehr += f * p
	}
	if ehr > 1 {
		return 1
	}
	return ehr
}

// CappedMissRate returns 1 - CappedEHR.
func CappedMissRate(masses []float64, cacheLines float64) float64 {
	return 1 - CappedEHR(masses, cacheLines)
}

// InvertCappedCapacity inverts the capped model by bisection: CappedEHR is
// monotonically non-decreasing in cacheLines, so the capacity matching a
// measured miss rate is found to within tol lines. maxLines bounds the
// search (e.g. the physical cache size, or larger when probing overshoot).
func InvertCappedCapacity(masses []float64, missRate, maxLines, tol float64) (float64, error) {
	if len(masses) == 0 || maxLines <= 0 {
		return 0, ErrUninvertible
	}
	target := 1 - missRate
	if target <= 0 {
		return 0, nil
	}
	lo, hi := 0.0, maxLines
	if CappedEHR(masses, hi) < target {
		// Even the full capacity cannot reach the hit rate; report the cap.
		return hi, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if CappedEHR(masses, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// PredictedMissRates evaluates Eq. 4 for each distribution in ds given an
// available capacity in lines and the elements-per-line geometry. It is the
// vectorised form used when regenerating Fig. 5.
func PredictedMissRates(ds []dist.Dist, elemsPerLine int64, cacheLines float64) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = MissRate(cacheLines, dist.SumSquaredLineMass(d, elemsPerLine))
	}
	return out
}
