package model

import (
	"math"
	"testing"
	"testing/quick"

	"activemem/internal/dist"
)

func TestEHRUniformClassic(t *testing.T) {
	// Uniform over L lines with capacity C: EHR must equal C/L.
	const n, epl = 1 << 16, 16
	d := dist.NewUniform(n)
	sumSq := dist.SumSquaredLineMass(d, epl)
	lines := float64(dist.NumLines(d, epl))
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.9} {
		c := frac * lines
		if got := EHR(c, sumSq); math.Abs(got-frac) > 1e-9 {
			t.Errorf("EHR at %.0f%% capacity = %v, want %v", frac*100, got, frac)
		}
	}
}

func TestEHRClamped(t *testing.T) {
	if EHR(1e12, 1e-3) != 1 {
		t.Fatal("EHR should clamp to 1")
	}
	if EHR(-5, 0.1) != 0 {
		t.Fatal("EHR should clamp to 0")
	}
}

func TestMissRateComplement(t *testing.T) {
	f := func(cRaw, sRaw uint16) bool {
		c := float64(cRaw)
		s := float64(sRaw) / float64(1<<20)
		return math.Abs(EHR(c, s)+MissRate(c, s)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	const n, epl = 1 << 16, 16
	for _, d := range dist.Table2(n) {
		sumSq := dist.SumSquaredLineMass(d, epl)
		lines := float64(dist.NumLines(d, epl))
		for _, frac := range []float64{0.2, 0.5, 0.8} {
			c := frac * lines
			mr := MissRate(c, sumSq)
			if mr <= 0 { // capacity exceeds what Eq.4 can express
				continue
			}
			back, err := InvertCapacity(mr, sumSq)
			if err != nil {
				t.Fatalf("%s: invert error: %v", d.Name(), err)
			}
			if math.Abs(back-c)/c > 1e-9 {
				t.Errorf("%s: invert(%v) = %v, want %v", d.Name(), mr, back, c)
			}
		}
	}
}

func TestInvertErrors(t *testing.T) {
	if _, err := InvertCapacity(0.5, 0); err == nil {
		t.Fatal("expected error for zero sumSq")
	}
	// Out-of-range miss rates are clamped, not errors.
	c, err := InvertCapacity(1.5, 0.01)
	if err != nil || c != 0 {
		t.Fatalf("clamped high miss rate: got (%v, %v)", c, err)
	}
	c, err = InvertCapacity(-0.5, 0.01)
	if err != nil || math.Abs(c-100) > 1e-9 {
		t.Fatalf("clamped low miss rate: got (%v, %v), want 100", c, err)
	}
}

func TestCappedLEQLinear(t *testing.T) {
	// The capped model can only remove hits, never add them.
	const n, epl = 1 << 14, 16
	for _, d := range dist.Table2(n) {
		masses := dist.LineMasses(d, epl)
		sumSq := dist.SumSquaredLineMass(d, epl)
		for _, c := range []float64{10, 100, 500, float64(len(masses))} {
			lin := EHR(c, sumSq)
			cap := CappedEHR(masses, c)
			if cap > lin+1e-9 {
				t.Errorf("%s: capped %v > linear %v at c=%v", d.Name(), cap, lin, c)
			}
		}
	}
}

func TestCappedEqualsLinearForUniform(t *testing.T) {
	// Uniform never saturates any line below full capacity, so the models
	// agree exactly.
	const n, epl = 1 << 14, 16
	d := dist.NewUniform(n)
	masses := dist.LineMasses(d, epl)
	sumSq := dist.SumSquaredLineMass(d, epl)
	lines := float64(dist.NumLines(d, epl))
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		c := frac * lines
		if math.Abs(CappedEHR(masses, c)-EHR(c, sumSq)) > 1e-9 {
			t.Errorf("capped != linear for uniform at frac %v", frac)
		}
	}
}

func TestCappedMonotoneInCapacity(t *testing.T) {
	const n, epl = 1 << 14, 16
	d := dist.NewNormal(n, 8)
	masses := dist.LineMasses(d, epl)
	prev := -1.0
	for c := 0.0; c <= 2000; c += 100 {
		v := CappedEHR(masses, c)
		if v < prev-1e-12 {
			t.Fatalf("capped EHR not monotone at c=%v", c)
		}
		prev = v
	}
}

func TestInvertCappedRoundTrip(t *testing.T) {
	const n, epl = 1 << 14, 16
	for _, d := range dist.Table2(n) {
		masses := dist.LineMasses(d, epl)
		lines := float64(len(masses))
		for _, frac := range []float64{0.3, 0.6} {
			c := frac * lines
			mr := CappedMissRate(masses, c)
			back, err := InvertCappedCapacity(masses, mr, 2*lines, 1e-4)
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			// The capped curve can be flat where lines saturate; allow a
			// modest relative tolerance.
			if math.Abs(back-c)/c > 0.02 {
				t.Errorf("%s: capped invert = %v, want %v", d.Name(), back, c)
			}
		}
	}
}

func TestInvertCappedEdges(t *testing.T) {
	if _, err := InvertCappedCapacity(nil, 0.5, 100, 1e-3); err == nil {
		t.Fatal("empty masses should error")
	}
	masses := []float64{0.5, 0.5}
	c, err := InvertCappedCapacity(masses, 1.0, 100, 1e-3)
	if err != nil || c != 0 {
		t.Fatalf("miss rate 1 should invert to 0 capacity, got %v/%v", c, err)
	}
	// Unreachable hit rate: returns the cap.
	c, err = InvertCappedCapacity([]float64{1e-9}, 0.0, 10, 1e-3)
	if err != nil || c != 10 {
		t.Fatalf("unreachable target should return maxLines, got %v/%v", c, err)
	}
}

func TestPredictedMissRatesOrdering(t *testing.T) {
	// Under the same capacity, wider distributions (smaller Σf²) must have
	// higher predicted miss rates; uniform is the widest of Table II.
	const n, epl = 1 << 16, 16
	ds := dist.Table2(n)
	rates := PredictedMissRates(ds, epl, 1024)
	if len(rates) != len(ds) {
		t.Fatalf("got %d rates for %d dists", len(rates), len(ds))
	}
	var uni float64
	for i, d := range ds {
		if d.Name() == "Uni" {
			uni = rates[i]
		}
	}
	for i, d := range ds {
		if rates[i] > uni+1e-12 {
			t.Errorf("%s predicted miss %v exceeds uniform %v", d.Name(), rates[i], uni)
		}
	}
}
