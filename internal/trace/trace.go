// Package trace provides offline analysis of memory-access traces, chiefly
// exact LRU stack (reuse) distance profiles. Reuse distance — the number of
// distinct cache lines touched between two accesses to the same line — is
// the theoretical backbone of the paper's interference thread designs:
// CSThr pins capacity because its reuse distances stay below the cache's
// line count, while BWThr streams because its distances exceed any cache.
// Attaching a Recorder to a hierarchy's Tracer hook makes those design
// claims directly measurable.
//
// The stack-distance computation is the classical Bennett–Kruskal
// algorithm: a Fenwick tree over access positions marks each line's most
// recent occurrence, so the distinct-line count between two positions is a
// prefix-sum difference, O(log n) per access.
package trace

import (
	"fmt"
	"math"
	"strings"

	"activemem/internal/mem"
)

// ColdDistance marks a first-ever access to a line.
const ColdDistance = -1

// Recorder accumulates a reuse-distance histogram over a stream of line
// accesses. The zero value is not ready; use NewRecorder.
type Recorder struct {
	last   map[mem.Line]int // line -> position of its most recent access
	tree   []int            // Fenwick tree over positions (1-based)
	pos    int              // accesses recorded so far
	cold   int64            // first-touch accesses
	counts []int64          // log2-bucketed reuse distances: bucket i = [2^i, 2^(i+1))
	zero   int64            // distance-0 accesses (consecutive same-line)
}

// NewRecorder returns a recorder sized for up to capacity accesses; further
// accesses grow the structure automatically.
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{
		last:   make(map[mem.Line]int, capacity/4),
		tree:   make([]int, capacity+1),
		counts: make([]int64, 40),
	}
}

// fenwick ops (1-based positions).
func (r *Recorder) add(i, v int) {
	for ; i < len(r.tree); i += i & -i {
		r.tree[i] += v
	}
}

func (r *Recorder) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += r.tree[i]
	}
	return s
}

// Record observes one access and returns its reuse distance (ColdDistance
// for a first touch).
func (r *Recorder) Record(line mem.Line) int {
	r.pos++
	if r.pos >= len(r.tree) {
		grown := make([]int, len(r.tree)*2)
		copy(grown, r.tree)
		// Fenwick trees cannot be grown by copying; rebuild from last map.
		for i := range grown {
			grown[i] = 0
		}
		r.tree = grown
		for _, p := range r.last {
			r.add(p, 1)
		}
	}
	prev, seen := r.last[line]
	dist := ColdDistance
	if seen {
		// Distinct lines since prev = marked occurrences in (prev, pos).
		dist = r.sum(r.pos-1) - r.sum(prev)
		r.add(prev, -1)
		r.record(dist)
	} else {
		r.cold++
	}
	r.last[line] = r.pos
	r.add(r.pos, 1)
	return dist
}

func (r *Recorder) record(dist int) {
	if dist <= 0 {
		r.zero++
		return
	}
	b := int(math.Log2(float64(dist)))
	if b >= len(r.counts) {
		b = len(r.counts) - 1
	}
	r.counts[b]++
}

// Accesses returns the number of recorded accesses.
func (r *Recorder) Accesses() int64 { return int64(r.pos) }

// ColdFraction returns the share of first-touch accesses.
func (r *Recorder) ColdFraction() float64 {
	if r.pos == 0 {
		return 0
	}
	return float64(r.cold) / float64(r.pos)
}

// HitFraction returns the share of (warm) accesses whose reuse distance is
// strictly below the given cache size in lines — the hit rate an ideal
// fully-associative LRU cache of that size would achieve on this trace
// (Mattson's stack algorithm).
func (r *Recorder) HitFraction(cacheLines int64) float64 {
	warm := int64(r.pos) - r.cold
	if warm <= 0 {
		return 0
	}
	var below int64 = r.zero
	for b, c := range r.counts {
		hi := int64(1) << uint(b+1) // bucket covers [2^b, 2^(b+1))
		if hi <= cacheLines {
			below += c
		} else if int64(1)<<uint(b) < cacheLines {
			// Partial bucket: apportion uniformly.
			lo := int64(1) << uint(b)
			below += c * (cacheLines - lo) / (hi - lo)
		}
	}
	return float64(below) / float64(warm)
}

// MedianDistance returns the approximate median warm reuse distance
// (bucket midpoint), or ColdDistance when no warm access exists.
func (r *Recorder) MedianDistance() int64 {
	warm := int64(r.pos) - r.cold
	if warm <= 0 {
		return ColdDistance
	}
	target := (warm + 1) / 2
	cum := r.zero
	if cum >= target {
		return 0
	}
	for b, c := range r.counts {
		cum += c
		if cum >= target {
			return (int64(1)<<uint(b) + int64(1)<<uint(b+1)) / 2
		}
	}
	return ColdDistance
}

// Histogram renders the log2 reuse-distance histogram.
func (r *Recorder) Histogram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reuse distance histogram (%d accesses, %.1f%% cold)\n",
		r.pos, r.ColdFraction()*100)
	if r.zero > 0 {
		fmt.Fprintf(&b, "  0          %d\n", r.zero)
	}
	for i, c := range r.counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [2^%-2d,2^%-2d) %d\n", i, i+1, c)
	}
	return b.String()
}

// Attach wires the recorder to a hierarchy's tracer hook, recording the
// line stream of a single core (-1 records every core). It returns a
// detach function restoring the previous hook.
func (r *Recorder) Attach(h *mem.Hierarchy, core int) (detach func()) {
	prev := h.SetTracer(nil)
	h.SetTracer(func(c int, line mem.Line, level mem.Level) {
		if core < 0 || c == core {
			r.Record(line)
		}
		if prev != nil {
			prev(c, line, level)
		}
	})
	return func() { h.SetTracer(prev) }
}
