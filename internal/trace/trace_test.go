package trace

import (
	"math"
	"strings"
	"testing"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/workload/interfere"
	"activemem/internal/xrand"
)

func TestColdAccesses(t *testing.T) {
	r := NewRecorder(16)
	for l := mem.Line(0); l < 10; l++ {
		if d := r.Record(l); d != ColdDistance {
			t.Fatalf("first touch of %d had distance %d", l, d)
		}
	}
	if r.ColdFraction() != 1 {
		t.Fatalf("cold fraction = %v", r.ColdFraction())
	}
	if r.MedianDistance() != ColdDistance {
		t.Fatal("all-cold trace should have no median")
	}
}

func TestExactDistances(t *testing.T) {
	r := NewRecorder(16)
	// Sequence: A B C A  -> A's reuse distance is 2 (B, C distinct between).
	r.Record(1)
	r.Record(2)
	r.Record(3)
	if d := r.Record(1); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	// A A -> distance 0.
	if d := r.Record(1); d != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", d)
	}
	// B . . B with a repeated middle line counts distinct lines only:
	// sequence so far ... 2? Touch 2: distinct since its last access
	// (position 2) are {3, 1} = 2.
	if d := r.Record(2); d != 2 {
		t.Fatalf("distance = %d, want 2 (distinct lines, not accesses)", d)
	}
}

func TestDistanceCountsDistinctNotTotal(t *testing.T) {
	r := NewRecorder(16)
	r.Record(7)
	for i := 0; i < 10; i++ {
		r.Record(8) // many accesses, one distinct line
	}
	if d := r.Record(7); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
}

// Property: a cyclic scan over N lines has reuse distance exactly N-1 for
// every warm access.
func TestCyclicScanDistance(t *testing.T) {
	const n = 37
	r := NewRecorder(1024)
	for pass := 0; pass < 5; pass++ {
		for l := mem.Line(0); l < n; l++ {
			d := r.Record(l)
			if pass > 0 && d != n-1 {
				t.Fatalf("cyclic distance = %d, want %d", d, n-1)
			}
		}
	}
}

// Mattson: HitFraction(c) for a uniform random trace over N lines
// approximates c/N — the same law the paper's Eq. 4 builds on.
func TestHitFractionMatchesUniformLaw(t *testing.T) {
	const n = 1024
	rng := xrand.New(3)
	r := NewRecorder(1 << 16)
	for i := 0; i < 60_000; i++ {
		r.Record(mem.Line(rng.Intn(n)))
	}
	for _, frac := range []float64{0.25, 0.5} {
		c := int64(frac * n)
		got := r.HitFraction(c)
		if math.Abs(got-frac) > 0.08 {
			t.Errorf("HitFraction(%d) = %.3f, want ~%.2f", c, got, frac)
		}
	}
	// Monotone in cache size, and 1 when the cache covers the whole set.
	if r.HitFraction(2*n) < 0.999 {
		t.Errorf("full-coverage hit fraction = %v", r.HitFraction(2*n))
	}
	if r.HitFraction(64) > r.HitFraction(512) {
		t.Error("hit fraction not monotone in capacity")
	}
}

func TestRecorderGrowth(t *testing.T) {
	r := NewRecorder(16) // tiny: must grow many times
	const n = 100
	for pass := 0; pass < 20; pass++ {
		for l := mem.Line(0); l < n; l++ {
			d := r.Record(l)
			if pass > 0 && d != n-1 {
				t.Fatalf("after growth distance = %d, want %d", d, n-1)
			}
		}
	}
	if r.Accesses() != 20*n {
		t.Fatalf("accesses = %d", r.Accesses())
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRecorder(64)
	r.Record(1)
	r.Record(2)
	r.Record(1)
	r.Record(1)
	out := r.Histogram()
	if !strings.Contains(out, "cold") || !strings.Contains(out, "0          1") {
		t.Fatalf("histogram:\n%s", out)
	}
}

// The design claim the package exists to verify: CSThr's reuse distances
// sit below the L3's line count (it can pin), BWThr's far above (it can
// only stream).
func TestInterferenceThreadReuseProfiles(t *testing.T) {
	spec := machine.Scaled(8)
	l3Lines := spec.L3.Size / 64

	profile := func(place func(e *engine.Engine, alloc *mem.Alloc)) *Recorder {
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		alloc := mem.NewAlloc(64)
		place(e, alloc)
		rec := NewRecorder(1 << 18)
		detach := rec.Attach(h, 0)
		defer detach()
		e.RunUntil(12_000_000)
		return rec
	}

	cs := profile(func(e *engine.Engine, alloc *mem.Alloc) {
		e.PlaceDaemon(0, interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc), 2)
	})
	bw := profile(func(e *engine.Engine, alloc *mem.Alloc) {
		e.PlaceDaemon(0, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc), 2)
	})

	if med := cs.MedianDistance(); med >= l3Lines {
		t.Fatalf("CSThr median reuse distance %d not below L3's %d lines", med, l3Lines)
	}
	if med := bw.MedianDistance(); med < l3Lines {
		t.Fatalf("BWThr median reuse distance %d not beyond L3's %d lines", med, l3Lines)
	}
	// Mattson hit projection agrees: CSThr would hit an L3-sized cache,
	// BWThr would not.
	if h := cs.HitFraction(l3Lines); h < 0.9 {
		t.Errorf("CSThr projected L3 hit fraction = %.3f", h)
	}
	// The ideal fully-associative projection leaves BWThr a modest hit
	// fraction (~0.2); the measured set-associative miss rate is higher
	// still (~0.96+, see the interfere tests), so streaming dominates.
	if h := bw.HitFraction(l3Lines); h > 0.3 {
		t.Errorf("BWThr projected L3 hit fraction = %.3f", h)
	}
}

func TestAttachFiltersCore(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	rec := NewRecorder(64)
	detach := rec.Attach(h, 1) // record core 1 only
	h.Access(0, 0, 0, false)
	h.Access(1, 64, 10, false)
	h.Access(0, 128, 20, false)
	if rec.Accesses() != 1 {
		t.Fatalf("recorded %d accesses, want 1", rec.Accesses())
	}
	detach()
	h.Access(1, 192, 30, false)
	if rec.Accesses() != 1 {
		t.Fatal("detach did not remove the hook")
	}
}
