package cluster

import (
	"activemem/internal/core"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/mem"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
	"activemem/internal/xrand"
)

// socketSim is one simulated socket: a persistent hierarchy and engine that
// carry cache state across iterations.
type socketSim struct {
	index int
	hier  *mem.Hierarchy
	eng   *engine.Engine
	local []int // global rank ids hosted here
}

// Run executes the configured application on the simulated cluster and
// returns measured performance.
func Run(cfg RunConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nRanks := cfg.App.Ranks()
	nSockets := cfg.Sockets()
	nSim := nSockets
	if cfg.Homogeneous {
		nSim = 1
	}

	// Build all ranks (even unsimulated ones supply message patterns) and
	// the simulated sockets.
	ranks := make([]Rank, nRanks)
	allocs := make([]*mem.Alloc, nSockets)
	for s := range allocs {
		allocs[s] = mem.NewAlloc(cfg.Spec.LineSize())
	}
	for r := 0; r < nRanks; r++ {
		ranks[r] = cfg.App.NewRank(r, allocs[cfg.SocketOf(r)], cfg.Seed+uint64(r)*13)
	}
	// Interference daemons are placed and prewarmed before the ranks, so a
	// CSThr's buffer is already L3-resident when measurement begins, as on
	// the paper's platform where interference runs continuously.
	prewarm := cfg.prewarmCycles()
	sims := make([]*socketSim, nSim)
	for s := 0; s < nSim; s++ {
		sim := &socketSim{
			index: s,
			hier:  cfg.Spec.NewSocket(cfg.Seed + uint64(s)*101),
		}
		sim.eng = engine.New(sim.hier, cfg.Spec.MSHRs)
		placeInterference(cfg, sim, allocs[s])
		if prewarm > 0 {
			sim.eng.RunUntil(prewarm)
			sim.hier.ResetStats()
		}
		for c := 0; c < cfg.RanksPerSocket; c++ {
			r := s*cfg.RanksPerSocket + c
			sim.local = append(sim.local, r)
			sim.eng.Place(c, ranks[r], cfg.Seed+uint64(r)*13+1)
		}
		sims[s] = sim
	}

	comm := newCommModel(cfg)
	buses := func(socket int) *mem.Bus {
		if socket < nSim {
			return sims[socket].hier.Bus
		}
		return nil
	}
	noise := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)

	start := make([]units.Cycles, nRanks)
	finish := make([]units.Cycles, nRanks)
	durSim := make([]units.Cycles, cfg.RanksPerSocket*nSim)
	for r := range start {
		start[r] = prewarm
	}

	var res Result
	var commCritical units.Cycles
	wallPrev, wallBoundary := prewarm, prewarm

	// Compute phases are independent per socket. A persistent worker group
	// pins each socket to one resident goroutine for the whole run — the
	// bulk-synchronous loop crosses an epoch barrier per iteration instead
	// of building and tearing down a worker pool — with the Concurrency
	// bound expressed as the worker count (and the common single-socket
	// homogeneous case running inline, with no goroutine at all).
	group := lab.NewPersistentGroupLabeled(len(sims), cfg.Concurrency, "cluster compute phase")
	defer group.Close()

	for iter := 0; iter < cfg.Iterations; iter++ {
		_ = group.RunEpoch(func(s int) error {
			runPhase(cfg, sims[s], ranks, start, durSim, iter)
			return nil
		})

		// Per-rank finish times: simulated durations (replicated across
		// sockets in homogeneous mode) plus OS noise. Noise is drawn for
		// every rank in order, keeping the stream deterministic.
		for r := 0; r < nRanks; r++ {
			var dur units.Cycles
			if cfg.Homogeneous {
				dur = durSim[cfg.CoreOf(r)]
			} else {
				dur = durSim[cfg.SocketOf(r)*cfg.RanksPerSocket+cfg.CoreOf(r)]
			}
			if cfg.NoiseStd > 0 {
				eps := noise.NormFloat64() * cfg.NoiseStd
				if eps < -0.9 {
					eps = -0.9
				}
				dur = units.Cycles(float64(dur) * (1 + eps))
			}
			finish[r] = start[r] + dur
		}

		// Communication: point-to-point arrivals plus the allreduce.
		arrival := make([]units.Cycles, nRanks)
		copy(arrival, finish)
		var maxFinish units.Cycles
		for r := 0; r < nRanks; r++ {
			if finish[r] > maxFinish {
				maxFinish = finish[r]
			}
			for _, msg := range ranks[r].Messages(iter) {
				if msg.To < 0 || msg.To >= nRanks || msg.To == r {
					continue
				}
				done := comm.deliver(r, msg.To, msg.Bytes, finish[r], buses)
				if done > arrival[msg.To] {
					arrival[msg.To] = done
				}
			}
		}
		barrier := comm.allreduce(finish, ranks[0].AllreduceBytes())
		var wall units.Cycles
		for r := 0; r < nRanks; r++ {
			next := arrival[r]
			if barrier > next {
				next = barrier
			}
			start[r] = next
			if next > wall {
				wall = next
			}
		}

		if iter == cfg.Warmup-1 {
			for _, sim := range sims {
				sim.hier.ResetStats()
			}
			wallBoundary = wall
		} else if iter >= cfg.Warmup {
			res.IterSeconds = append(res.IterSeconds, cfg.Spec.Clock.Seconds(wall-wallPrev))
			commCritical += wall - maxFinish
		}
		wallPrev = wall
	}

	res.Seconds = cfg.Spec.Clock.Seconds(wallPrev - wallBoundary)
	res.CommSeconds = cfg.Spec.Clock.Seconds(commCritical)

	// Aggregate rank-core counters over simulated sockets.
	var l3Accs, l3Miss, busBytes int64
	for _, sim := range sims {
		for c := 0; c < cfg.RanksPerSocket; c++ {
			ctr := sim.hier.PerCore[c]
			l3Accs += ctr.L3Accesses()
			l3Miss += ctr.MemAccs
			busBytes += ctr.BusBytes
		}
	}
	if l3Accs > 0 {
		res.RankL3MissRate = float64(l3Miss) / float64(l3Accs)
	}
	if res.Seconds > 0 {
		res.RankGBs = float64(busBytes) / float64(nSim) / res.Seconds / 1e9
	}
	return res, nil
}

// runPhase arms and executes one compute phase on a socket.
func runPhase(cfg RunConfig, sim *socketSim, ranks []Rank, start []units.Cycles,
	durSim []units.Cycles, iter int) {
	for c, r := range sim.local {
		ranks[r].BeginPhase(iter)
		sim.eng.Rearm(c)
		if t := start[r]; t > sim.eng.Ctx(c).Now() {
			sim.eng.SetClock(c, t)
		}
	}
	sim.eng.Run(nil)
	for c, r := range sim.local {
		d := sim.eng.Ctx(c).Now() - start[r]
		if d < 0 {
			d = 0
		}
		durSim[sim.index*cfg.RanksPerSocket+c] = d
	}
}

// placeInterference installs the configured interference daemons on the
// socket's spare cores.
func placeInterference(cfg RunConfig, sim *socketSim, alloc *mem.Alloc) {
	for i := 0; i < cfg.Interference.Threads; i++ {
		coreIdx := cfg.RanksPerSocket + i
		seed := cfg.Seed + 900 + uint64(sim.index)*17 + uint64(i)
		switch cfg.Interference.Kind {
		case core.Storage:
			sim.eng.PlaceDaemon(coreIdx,
				interfere.NewCSThr(interfere.DefaultCSConfig(cfg.Spec.L3.Size), alloc), seed)
		case core.Bandwidth:
			sim.eng.PlaceDaemon(coreIdx,
				interfere.NewBWThr(interfere.DefaultBWConfig(cfg.Spec.L3.Size), alloc), seed)
		}
	}
}
