package cluster

import (
	"math"
	"testing"

	"activemem/internal/core"
	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// toyApp is a minimal SPMD app: each rank streams over a private buffer and
// sends a fixed message to its ring neighbour.
type toyApp struct {
	ranks     int
	bufBytes  int64
	elemsStep int64
	msgBytes  int64
	phaseWork int64
}

func (a *toyApp) Name() string { return "toy" }
func (a *toyApp) Ranks() int   { return a.ranks }
func (a *toyApp) NewRank(r int, alloc *mem.Alloc, seed uint64) Rank {
	return &toyRank{app: a, id: r, base: alloc.Alloc(a.bufBytes)}
}

type toyRank struct {
	app  *toyApp
	id   int
	base mem.Addr
	pos  int64
	done int64
}

func (rk *toyRank) Name() string        { return "toy" }
func (rk *toyRank) BeginPhase(iter int) { rk.done = 0 }
func (rk *toyRank) AllreduceBytes() int64 {
	return 8
}
func (rk *toyRank) FootprintBytes() int64 { return rk.app.bufBytes }
func (rk *toyRank) Messages(int) []Message {
	return []Message{{To: (rk.id + 1) % rk.app.ranks, Bytes: rk.app.msgBytes}}
}
func (rk *toyRank) Step(ctx *engine.Ctx) bool {
	lines := rk.app.bufBytes / 64
	for i := int64(0); i < rk.app.elemsStep; i++ {
		ctx.Load(rk.base + mem.Addr(rk.pos%lines*64))
		rk.pos += 7
	}
	ctx.Compute(16)
	rk.done++
	ctx.WorkUnit(1)
	return rk.done < rk.app.phaseWork
}

func toy(ranks int) *toyApp {
	return &toyApp{ranks: ranks, bufBytes: 1 << 20, elemsStep: 16, msgBytes: 32 << 10, phaseWork: 200}
}

func baseCfg(app App, perSocket int) RunConfig {
	return RunConfig{
		Spec:           machine.Scaled(8),
		App:            app,
		RanksPerSocket: perSocket,
		Iterations:     6,
		Warmup:         2,
		Seed:           1,
	}
}

func TestRunConfigValidate(t *testing.T) {
	good := baseCfg(toy(8), 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*RunConfig){
		func(c *RunConfig) { c.App = nil },
		func(c *RunConfig) { c.RanksPerSocket = 3 }, // 8 % 3 != 0
		func(c *RunConfig) { c.RanksPerSocket = 6; c.Interference.Threads = 4 },
		func(c *RunConfig) { c.Iterations = 2; c.Warmup = 2 },
		func(c *RunConfig) { c.NoiseStd = -1 },
	}
	for i, mutate := range cases {
		cfg := baseCfg(toy(8), 2)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTopologyMapping(t *testing.T) {
	cfg := baseCfg(toy(8), 2) // 4 sockets, 2 nodes
	if cfg.Sockets() != 4 || cfg.Nodes() != 2 {
		t.Fatalf("topology = %d sockets, %d nodes", cfg.Sockets(), cfg.Nodes())
	}
	if cfg.SocketOf(5) != 2 || cfg.CoreOf(5) != 1 || cfg.NodeOf(5) != 1 {
		t.Fatalf("rank 5 mapping: socket %d core %d node %d",
			cfg.SocketOf(5), cfg.CoreOf(5), cfg.NodeOf(5))
	}
	// Odd socket counts still round nodes up.
	cfg2 := baseCfg(toy(6), 2)
	if cfg2.Sockets() != 3 || cfg2.Nodes() != 2 {
		t.Fatalf("topology = %d sockets, %d nodes", cfg2.Sockets(), cfg2.Nodes())
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	res, err := Run(baseCfg(toy(8), 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatalf("non-positive runtime: %v", res.Seconds)
	}
	if len(res.IterSeconds) != 4 {
		t.Fatalf("iter series length = %d, want 4", len(res.IterSeconds))
	}
	var sum float64
	for _, s := range res.IterSeconds {
		if s <= 0 {
			t.Fatalf("non-positive iteration time: %v", res.IterSeconds)
		}
		sum += s
	}
	if math.Abs(sum-res.Seconds)/res.Seconds > 1e-6 {
		t.Fatalf("iteration times %v do not sum to total %v", sum, res.Seconds)
	}
	if res.CommSeconds <= 0 || res.CommSeconds >= res.Seconds {
		t.Fatalf("comm time %v outside (0, %v)", res.CommSeconds, res.Seconds)
	}
	if res.RankGBs <= 0 {
		t.Fatal("ranks consumed no bandwidth")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Result {
		cfg := baseCfg(toy(8), 2)
		cfg.NoiseStd = 0.02
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Seconds != b.Seconds || a.RankL3MissRate != b.RankL3MissRate {
		t.Fatalf("non-deterministic runs: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestHomogeneousApproximatesExact(t *testing.T) {
	cfg := baseCfg(toy(8), 2)
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Homogeneous = true
	hom, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fast path replicates socket 0's per-rank durations; other sockets'
	// ranks use different RNG streams in exact mode, so a few percent of
	// drift is inherent to the approximation.
	rel := math.Abs(hom.Seconds-exact.Seconds) / exact.Seconds
	if rel > 0.12 {
		t.Fatalf("homogeneous fast path off by %.1f%% (exact %v vs hom %v)",
			rel*100, exact.Seconds, hom.Seconds)
	}
}

func TestStorageInterferenceSlowsCluster(t *testing.T) {
	cfg := baseCfg(toy(4), 1)
	cfg.App = &toyApp{ranks: 4, bufBytes: 2 << 20, elemsStep: 16, msgBytes: 16 << 10, phaseWork: 300}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Interference = Interference{Kind: core.Storage, Threads: 4}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds <= base.Seconds*1.03 {
		t.Fatalf("4 CSThrs slowdown too small: %v -> %v", base.Seconds, slow.Seconds)
	}
	if slow.RankL3MissRate <= base.RankL3MissRate {
		t.Fatalf("miss rate did not rise: %v -> %v", base.RankL3MissRate, slow.RankL3MissRate)
	}
}

func TestBandwidthInterferenceSlowsCluster(t *testing.T) {
	app := &toyApp{ranks: 4, bufBytes: 8 << 20, elemsStep: 16, msgBytes: 16 << 10, phaseWork: 300}
	cfg := baseCfg(app, 1)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Interference = Interference{Kind: core.Bandwidth, Threads: 2}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds <= base.Seconds*1.02 {
		t.Fatalf("2 BWThrs slowdown too small: %v -> %v", base.Seconds, slow.Seconds)
	}
}

func TestNoiseAmplifiedByScale(t *testing.T) {
	// With the same noise level, more ranks make the barrier max() pick
	// worse stragglers: total time grows with rank count even though
	// per-rank work is identical.
	mean := func(ranks int) float64 {
		app := &toyApp{ranks: ranks, bufBytes: 1 << 18, elemsStep: 8, msgBytes: 1 << 10, phaseWork: 100}
		cfg := baseCfg(app, 1)
		cfg.Homogeneous = true
		cfg.NoiseStd = 0.05
		cfg.Iterations, cfg.Warmup = 10, 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	small, large := mean(2), mean(32)
	// Normalise per iteration: same iterations, same per-rank work.
	if large <= small {
		t.Fatalf("noise not amplified: 2 ranks %v vs 32 ranks %v", small, large)
	}
}

func TestCommModelLinkClasses(t *testing.T) {
	cfg := baseCfg(toy(8), 2) // 4 sockets, 2 per node
	m := newCommModel(cfg)
	buses := func(int) *mem.Bus { return nil }
	ready := units.Cycles(1000)
	const bytes = 64 << 10
	shm := m.deliver(0, 1, bytes, ready, buses)   // same socket
	xsock := m.deliver(0, 2, bytes, ready, buses) // sockets 0,1 = node 0
	xnode := m.deliver(0, 4, bytes, ready, buses) // node 0 -> node 1
	if !(shm < xsock && xsock < xnode) {
		t.Fatalf("link costs not ordered: shm=%d xsock=%d xnode=%d", shm, xsock, xnode)
	}
	// NIC serialisation: a second concurrent inter-node message queues.
	second := m.deliver(1, 5, bytes, ready, buses)
	if second <= xnode {
		t.Fatalf("NIC not serialised: first done %d, second %d", xnode, second)
	}
}

func TestAllreduceScalesWithRanks(t *testing.T) {
	cfgSmall := baseCfg(toy(4), 2)
	cfgLarge := baseCfg(toy(32), 2)
	mS, mL := newCommModel(cfgSmall), newCommModel(cfgLarge)
	fin4 := make([]units.Cycles, 4)
	fin32 := make([]units.Cycles, 32)
	a4 := mS.allreduce(fin4, 8)
	a32 := mL.allreduce(fin32, 8)
	if a32 <= a4 {
		t.Fatalf("allreduce cost not growing: %d vs %d", a4, a32)
	}
	if mS.allreduce(fin4, 0) != 0 {
		t.Fatal("zero-byte allreduce should be free")
	}
}

func TestInterNodeCommChargesBuses(t *testing.T) {
	cfg := baseCfg(toy(8), 2)
	m := newCommModel(cfg)
	spec := cfg.Spec
	h0 := spec.NewSocket(1)
	h1 := spec.NewSocket(2)
	buses := func(s int) *mem.Bus {
		switch s {
		case 0:
			return h0.Bus
		case 2:
			return h1.Bus
		}
		return nil
	}
	m.deliver(0, 4, 1<<20, 0, buses) // rank 0 (socket 0) -> rank 4 (socket 2)
	if h0.Bus.Stats.Bytes != 1<<20 || h1.Bus.Stats.Bytes != 1<<20 {
		t.Fatalf("DMA bytes not charged: %d / %d", h0.Bus.Stats.Bytes, h1.Bus.Stats.Bytes)
	}
}
