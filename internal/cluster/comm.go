package cluster

import (
	"math"

	"activemem/internal/mem"
	"activemem/internal/units"
)

// commModel resolves end-of-phase communication. Three link classes, as on
// the paper's platform:
//
//   - shared-L3 (same socket): a cache-to-cache copy, cheap and invisible
//     to the memory bus — this is why spreading ranks out increases their
//     bandwidth use in Figs. 10 and 12;
//   - inter-socket (same node): DMA through both sockets' memory buses;
//   - inter-node: InfiniBand QDR — NIC serialisation per node plus memory
//     bus occupancy on both end sockets.
type commModel struct {
	cfg  RunConfig
	nics []*mem.Bus // per node

	// α latencies in cycles
	shmLatency    units.Cycles
	socketLatency units.Cycles
	nicLatency    units.Cycles

	// shared-L3 copy bandwidth in bytes/cycle (on-chip, generous)
	l3BytesPerCycle float64
	// memory-bus peak rate, used as the transfer-time fallback for sockets
	// that are not simulated (homogeneous mode)
	busBytesPerCycle float64
}

func newCommModel(cfg RunConfig) *commModel {
	clock := cfg.Spec.Clock
	m := &commModel{
		cfg:              cfg,
		shmLatency:       clock.Cycles(0.4e-6),
		socketLatency:    clock.Cycles(0.8e-6),
		nicLatency:       cfg.Spec.NICLatency,
		l3BytesPerCycle:  clock.BytesPerCycle(50),
		busBytesPerCycle: float64(cfg.Spec.Bus.BytesPerChunk) / float64(cfg.Spec.Bus.CyclesPerChunk),
	}
	nicCfg := mem.BusConfig{
		// Express NICGBs as cycles per 4 KB chunk.
		BytesPerChunk:  4096,
		CyclesPerChunk: units.Cycles(math.Ceil(4096 / clock.BytesPerCycle(cfg.Spec.NICGBs))),
		EpochBits:      12,
	}
	for n := 0; n < cfg.Nodes(); n++ {
		m.nics = append(m.nics, mem.NewBus(nicCfg))
	}
	return m
}

// busOf returns the memory bus of a socket, or nil if that socket is not
// simulated (homogeneous mode simulates socket 0 only).
type busLookup func(socket int) *mem.Bus

// memXfer models a DMA of bytes through a socket's memory bus starting at
// ready: simulated sockets are charged (contending with demand traffic),
// unsimulated ones pay the peak-rate transfer time without charging anyone.
func (m *commModel) memXfer(socket int, ready units.Cycles, bytes int64, buses busLookup) units.Cycles {
	if b := buses(socket); b != nil {
		_, done := b.Request(ready, bytes)
		return done
	}
	return ready + units.Cycles(float64(bytes)/m.busBytesPerCycle)
}

// deliver computes the arrival time of one message posted at time ready,
// charging the buses and NICs it crosses.
func (m *commModel) deliver(from, to int, bytes int64, ready units.Cycles, buses busLookup) units.Cycles {
	sFrom, sTo := m.cfg.SocketOf(from), m.cfg.SocketOf(to)
	if sFrom == sTo {
		// Shared-L3 copy.
		return ready + m.shmLatency + units.Cycles(float64(bytes)/m.l3BytesPerCycle)
	}
	nFrom, nTo := m.cfg.NodeOf(from), m.cfg.NodeOf(to)
	if nFrom == nTo {
		// Inter-socket DMA: the transfer crosses both memory buses.
		done := m.memXfer(sFrom, ready, bytes, buses)
		if d := m.memXfer(sTo, ready, bytes, buses); d > done {
			done = d
		}
		return done + m.socketLatency
	}
	// Inter-node: source-side DMA and NIC injection, wire latency, then
	// destination NIC ejection and DMA.
	srcDone := m.memXfer(sFrom, ready, bytes, buses)
	_, injDone := m.nics[nFrom].Request(ready, bytes)
	if srcDone > injDone {
		injDone = srcDone
	}
	_, ejDone := m.nics[nTo].Request(injDone, bytes)
	dstDone := m.memXfer(sTo, ejDone, bytes, buses)
	if dstDone > ejDone {
		ejDone = dstDone
	}
	return ejDone + m.nicLatency
}

// allreduce returns the completion time of a tree allreduce entered by all
// ranks at their finish times.
func (m *commModel) allreduce(finish []units.Cycles, bytes int64) units.Cycles {
	if bytes <= 0 {
		return 0
	}
	var max units.Cycles
	for _, t := range finish {
		if t > max {
			max = t
		}
	}
	hops := units.Cycles(0)
	// log2(ranks) rounds of the widest link latency present in the job.
	alpha := m.shmLatency
	if m.cfg.Sockets() > 1 {
		alpha = m.socketLatency
	}
	if m.cfg.Nodes() > 1 {
		alpha = m.nicLatency
	}
	for n := 1; n < len(finish); n *= 2 {
		hops += alpha
	}
	// Payload term: reductions are latency-dominated for the 8-byte dt.
	payload := units.Cycles(float64(2*bytes) / m.l3BytesPerCycle)
	return max + hops + payload
}
