// Package cluster simulates the paper's measurement platform for parallel
// applications (§IV): MPI ranks mapped p-per-socket onto nodes of Xeon20MB
// machines connected by InfiniBand QDR, with interference threads occupying
// the spare cores of every socket.
//
// Execution is bulk-synchronous: each iteration runs one compute phase per
// socket on a persistent discrete-event engine (so cache state carries
// across iterations and interference is emergent), then resolves the
// ranks' messages and allreduce through an α/β interconnect model whose
// bulk transfers occupy the same memory buses the compute phase uses. The
// stochastic per-rank slowdowns interference induces are amplified by the
// barrier max(), reproducing the noise effect the paper cites [18], [11].
package cluster

import (
	"fmt"

	"activemem/internal/core"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// Cluster cells (one Run per interference level of an app study) flow
// through the lab executor's memo, so register their result type with its
// persistent disk tier.
func init() {
	lab.RegisterResult[Result]("cluster.Result")
}

// Message is one point-to-point transfer posted at the end of a compute
// phase.
type Message struct {
	To    int // destination rank
	Bytes int64
}

// Rank is one MPI process of an application proxy. It is an engine
// workload whose Step returns false when the current compute phase is
// done; BeginPhase arms the next phase.
type Rank interface {
	engine.Workload
	// BeginPhase prepares compute phase iter; after it, Step must return
	// false exactly when the phase's work is complete.
	BeginPhase(iter int)
	// Messages lists the point-to-point sends this rank posts at the end
	// of phase iter.
	Messages(iter int) []Message
	// AllreduceBytes is the payload of the per-iteration global reduction
	// (0 disables it).
	AllreduceBytes() int64
	// FootprintBytes reports the rank's resident data size.
	FootprintBytes() int64
}

// App builds the ranks of an application proxy.
type App interface {
	Name() string
	Ranks() int
	// NewRank creates rank r, allocating its buffers from alloc.
	NewRank(r int, alloc *mem.Alloc, seed uint64) Rank
}

// Interference describes the interference threads placed on each socket's
// spare cores.
type Interference struct {
	Kind    core.Kind
	Threads int
}

// RunConfig drives one cluster execution.
type RunConfig struct {
	Spec machine.Spec
	App  App

	// RanksPerSocket is the paper's p: how many ranks share each socket
	// (and its L3). App.Ranks() must be divisible by it.
	RanksPerSocket int

	Interference Interference

	// Iterations to simulate and how many of them are warmup (excluded
	// from measurement).
	Iterations, Warmup int

	// Homogeneous simulates a single representative socket and replicates
	// its per-rank compute times (plus noise) across all sockets; exact
	// mode simulates every socket. SPMD applications with identical
	// per-socket populations are statistically homogeneous, so this is the
	// default for large runs.
	Homogeneous bool

	// NoiseStd is the standard deviation of the per-rank, per-iteration
	// multiplicative compute-time jitter (OS noise; the paper's [18]).
	NoiseStd float64

	// Prewarm runs the interference daemons alone for this many cycles
	// before the first iteration, so a CSThr's buffer is already resident
	// when measurement begins (as it is in the paper, where interference
	// threads run continuously). Zero selects an automatic value covering
	// the CSThr coupon-collector bound; set negative to disable.
	Prewarm units.Cycles

	// Concurrency bounds how many sockets are simulated concurrently in
	// exact (non-homogeneous) mode: 0 selects GOMAXPROCS, 1 runs serially.
	// Homogeneous runs simulate a single socket and are unaffected.
	// Results are bit-identical at every setting.
	Concurrency int

	Seed uint64
}

// prewarmCycles resolves the Prewarm setting.
func (c RunConfig) prewarmCycles() units.Cycles {
	if c.Prewarm < 0 || c.Interference.Threads == 0 {
		return 0
	}
	if c.Prewarm > 0 {
		return c.Prewarm
	}
	// Auto: touching all lines of the scaled CSThr buffer takes ~N ln N
	// random accesses at ~45 cycles each.
	lines := c.Spec.L3.Size / 5 / c.Spec.LineSize()
	return units.Cycles(lines * 540)
}

// Validate checks the configuration.
func (c RunConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.App == nil {
		return fmt.Errorf("cluster: nil app")
	}
	if c.RanksPerSocket <= 0 || c.App.Ranks()%c.RanksPerSocket != 0 {
		return fmt.Errorf("cluster: %d ranks not divisible into %d per socket",
			c.App.Ranks(), c.RanksPerSocket)
	}
	if c.RanksPerSocket+c.Interference.Threads > c.Spec.CoresPerSocket {
		return fmt.Errorf("cluster: %d ranks + %d interference threads exceed %d cores",
			c.RanksPerSocket, c.Interference.Threads, c.Spec.CoresPerSocket)
	}
	if c.Iterations <= c.Warmup {
		return fmt.Errorf("cluster: iterations %d must exceed warmup %d", c.Iterations, c.Warmup)
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("cluster: negative noise")
	}
	return nil
}

// Sockets returns the number of sockets the run occupies.
func (c RunConfig) Sockets() int { return c.App.Ranks() / c.RanksPerSocket }

// Nodes returns the number of nodes the run occupies.
func (c RunConfig) Nodes() int {
	s := c.Sockets()
	n := s / c.Spec.SocketsPerNode
	if s%c.Spec.SocketsPerNode != 0 {
		n++
	}
	return n
}

// SocketOf returns the socket index hosting rank r.
func (c RunConfig) SocketOf(r int) int { return r / c.RanksPerSocket }

// NodeOf returns the node index hosting rank r.
func (c RunConfig) NodeOf(r int) int { return c.SocketOf(r) / c.Spec.SocketsPerNode }

// CoreOf returns the core index of rank r within its socket.
func (c RunConfig) CoreOf(r int) int { return r % c.RanksPerSocket }

// Result summarises a cluster run.
type Result struct {
	// Seconds is the measured wall time (iterations after warmup).
	Seconds float64
	// IterSeconds is the per-iteration wall time series.
	IterSeconds []float64
	// CommSeconds is the portion of wall time the critical path spent in
	// communication.
	CommSeconds float64
	// RankL3MissRate is the mean demand L3 miss rate over rank cores of
	// the simulated socket(s) during measurement.
	RankL3MissRate float64
	// RankGBs is the mean per-socket bandwidth consumed by rank cores.
	RankGBs float64
}
