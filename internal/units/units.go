// Package units centralises the size and time units used by the simulator:
// byte sizes, core clock frequency, and conversions between cycle counts and
// wall-clock time or bandwidth figures.
//
// The simulator's native time unit is the integer core cycle; everything the
// outside world sees (seconds, GB/s) is derived through a Clock.
package units

import "fmt"

// Byte size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Cycles is a duration expressed in core clock cycles.
type Cycles int64

// Clock converts between cycles and seconds for a core frequency.
type Clock struct {
	// HzPerSecond is the number of cycles per second (e.g. 2.6e9).
	HzPerSecond float64
}

// NewClock returns a Clock for a frequency given in GHz.
func NewClock(gigahertz float64) Clock {
	return Clock{HzPerSecond: gigahertz * 1e9}
}

// Seconds converts a cycle count to seconds.
func (c Clock) Seconds(cy Cycles) float64 {
	return float64(cy) / c.HzPerSecond
}

// Cycles converts a duration in seconds to (truncated) cycles.
func (c Clock) Cycles(seconds float64) Cycles {
	return Cycles(seconds * c.HzPerSecond)
}

// BandwidthGBs converts (bytes transferred, elapsed cycles) into GB/s.
// It returns 0 for a zero elapsed time.
func (c Clock) BandwidthGBs(bytes int64, elapsed Cycles) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / c.Seconds(elapsed) / 1e9
}

// BytesPerCycle returns the per-cycle byte rate equivalent to a GB/s figure.
func (c Clock) BytesPerCycle(gbs float64) float64 {
	return gbs * 1e9 / c.HzPerSecond
}

// FormatBytes renders a byte count with a binary-unit suffix, e.g. "20.0MB".
func FormatBytes(n int64) string {
	switch {
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
