package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockRoundTrip(t *testing.T) {
	c := NewClock(2.6)
	f := func(raw uint32) bool {
		cy := Cycles(raw)
		back := c.Cycles(c.Seconds(cy))
		// Truncation may lose at most one cycle.
		return back == cy || back == cy-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeconds(t *testing.T) {
	c := NewClock(2.6)
	got := c.Seconds(2_600_000_000)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("2.6e9 cycles at 2.6GHz = %v s, want 1", got)
	}
}

func TestBandwidthGBs(t *testing.T) {
	c := NewClock(2.6)
	// 16.64 GB/s: 64 bytes every 10 cycles.
	got := c.BandwidthGBs(64, 10)
	want := 64.0 / 10 * 2.6 // bytes/cycle * GHz = GB/s
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bandwidth = %v, want %v", got, want)
	}
	if c.BandwidthGBs(100, 0) != 0 {
		t.Fatal("zero elapsed should give zero bandwidth")
	}
}

func TestBytesPerCycleInverse(t *testing.T) {
	c := NewClock(2.6)
	bpc := c.BytesPerCycle(16.64)
	back := c.BandwidthGBs(int64(bpc*1e6), Cycles(1e6))
	if math.Abs(back-16.64) > 0.01 {
		t.Fatalf("round trip bandwidth = %v, want 16.64", back)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{KB, "1.0KB"},
		{520 * KB, "520.0KB"},
		{20 * MB, "20.0MB"},
		{3 * GB / 2, "1.5GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
