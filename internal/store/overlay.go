// Read-only commit-log overlay: the counterpart of syncGroup.recover for
// opens that may not write. A writable open replays acknowledged records a
// crash left out of their segments and truncates the log; a read-only open
// cannot touch either file, so it builds an in-memory index of the log's
// good records instead — entryRefs pointing into commit.log — and serves
// them behind the shard indexes. Acknowledged-but-uncheckpointed results
// are thus visible to inspection tools (and rsync'd snapshot consumers)
// without a writable open ever having run.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// walOverlay indexes a commit log read-only. The log is the group-commit
// journal of every put since the last checkpoint, in commit order, so for
// any key it holds the newest acknowledged record — later records simply
// overwrite earlier ones while the index is built.
type walOverlay struct {
	f     *os.File
	index map[string]entryRef
}

// openWALOverlay scans shardsDir's commit log into an overlay. It returns
// (nil, nil) whenever there is nothing to serve: no log, an empty or
// bare-header log (the post-checkpoint steady state), or a log written
// under a different schema — which vouches for nothing here, exactly as
// recover discards it on a writable open. Torn tails and corrupt records
// are skipped by the same resynchronising scan the segments use.
func openWALOverlay(shardsDir, schema string) (*walOverlay, error) {
	f, err := os.Open(filepath.Join(shardsDir, commitLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		f.Close()
		return nil, nil
	}
	logSchema, hdrLen, err := readHeader(f)
	if err != nil || logSchema != schema || size <= hdrLen {
		f.Close()
		return nil, nil
	}
	buf := make([]byte, size-hdrLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, hdrLen, size-hdrLen), buf); err != nil {
		f.Close()
		return nil, nil
	}
	ov := &walOverlay{f: f, index: make(map[string]entryRef)}
	walkRecords(buf, hdrLen, func(off int64, rec parsedRecord, st recStatus) {
		if st != recGood {
			return
		}
		ov.index[rec.key] = entryRef{off: off, recLen: rec.recLen,
			typeName: rec.typeName, payloadLen: len(rec.payload), stamp: rec.stamp}
	})
	if len(ov.index) == 0 {
		f.Close()
		return nil, nil
	}
	return ov, nil
}

// get serves key from the log if the overlay indexed it, re-verifying the
// record bytes exactly as a segment read would.
func (ov *walOverlay) get(key string) (typeName string, payload []byte, ok bool) {
	ref, hit := ov.index[key]
	if !hit {
		return "", nil, false
	}
	p, err := readEntry(ov.f, key, ref)
	if err != nil {
		return "", nil, false
	}
	return ref.typeName, p, true
}

func (ov *walOverlay) close() error { return ov.f.Close() }
