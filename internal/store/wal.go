// The store's write-ahead commit log: the group-commit domain for every
// put in the sharded layout.
//
// A put appends its record to the owning shard's segment (no fsync) and
// then to commit.log, and durability is settled by fsyncing commit.log
// alone. Because every writer commits through the same single file, one
// group-committed fsync covers every put in flight no matter how many
// shards they landed on — the fsync rate is bounded by the commit wave
// rate, not the put rate times the shard spread. Segments become durable
// lazily at checkpoints (open-time recovery, size threshold, GC, Close),
// which fsync every segment and then truncate the log; crash recovery
// replays logged records whose keys the segment scan did not surface.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"activemem/internal/telemetry"
)

const (
	// commitLogName/commitLockName live beside the shard segments; the
	// lock serialises cross-process appends (in-process appenders are
	// already serialised by wal.mu) and guards checkpoint truncation.
	commitLogName  = "commit.log"
	commitLockName = "commit.lock"

	// walCheckpointBytes caps how much logged-but-not-checkpointed data
	// accumulates before a put folds a checkpoint into its commit.
	walCheckpointBytes = 64 << 20
)

// wal is one process's handle on the commit log. Appends land at the
// real end-of-file probed under the cross-process lock, so any number of
// sibling processes interleave records safely; the checksummed record
// framing makes the log self-describing for recovery.
type wal struct {
	path     string
	lockPath string
	schema   string
	ops      *opCounters

	// mu serialises this process's appends and checkpoints; the flock
	// state of lockF must only ever be manipulated under it, because
	// flock(2) is per open-file-description, not per goroutine.
	mu     sync.Mutex
	f      *os.File
	lockF  *os.File
	hdrLen int64
	size   atomic.Int64

	// Group commit: appendSeq numbers appends (assigned after the write
	// lands), syncedSeq is the highest append a completed fsync covers.
	// Writers queue on syncMu after releasing mu, so one fsync commits
	// every append that piled up while the previous fsync was in flight.
	appendSeq atomic.Uint64
	syncMu    sync.Mutex
	syncedSeq atomic.Uint64
}

// openWAL opens (creating if necessary) the commit log and its lock.
func openWAL(shardsDir, schema string, ops *opCounters) (*wal, error) {
	w := &wal{
		path:     filepath.Join(shardsDir, commitLogName),
		lockPath: filepath.Join(shardsDir, commitLockName),
		schema:   schema,
		ops:      ops,
	}
	var err error
	if w.lockF, err = os.OpenFile(w.lockPath, os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if w.f, err = os.OpenFile(w.path, os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		w.lockF.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return w, nil
}

func (w *wal) closeFiles() error {
	err := w.f.Close()
	if cerr := w.lockF.Close(); err == nil {
		err = cerr
	}
	return err
}

// withFileLock runs fn holding the log's cross-process lock exclusively.
// Callers hold w.mu.
func (w *wal) withFileLock(fn func() error) error {
	w.ops.flockAcqs.Add(1)
	return flockHeld(w.lockF, w.lockPath, true, fn)
}

// append writes one record at the log's current end and returns its
// commit sequence number. The end offset is re-probed under the lock:
// sibling processes append to and truncate the same log, so the locally
// tracked size is only a hint.
func (w *wal) append(rec []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.withFileLock(func() error {
		fi, err := w.f.Stat()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		off := fi.Size()
		if off < w.hdrLen {
			off = w.hdrLen
		}
		if err := faultWriteAt(fpWALAppend, w.f, rec, off); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		w.size.Store(off + int64(len(rec)))
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.appendSeq.Add(1), nil
}

// syncTo ensures a completed fsync covers the append numbered seq.
// Classic group commit on one file: the first writer through syncMu
// re-reads the append counter and its single fsync commits the whole
// backlog, so writers that queued behind an in-flight fsync usually find
// their append already covered and return without syncing at all.
func (w *wal) syncTo(seq uint64) error {
	for w.syncedSeq.Load() < seq {
		w.syncMu.Lock()
		if w.syncedSeq.Load() >= seq {
			w.syncMu.Unlock()
			return nil
		}
		// Every append numbered <= covered finished its write before the
		// counter was bumped, so this fsync commits all of them.
		prev := w.syncedSeq.Load()
		covered := w.appendSeq.Load()
		startNs := telemetry.NowNs()
		err := faultSync(fpWALFsync, w.f)
		tmWalFsyncSeconds.Observe(telemetry.NowNs() - startNs)
		if err == nil {
			w.syncedSeq.Store(covered)
			w.ops.groupCommits.Add(1)
			w.ops.groupedAppends.Add(covered - prev)
			tmWalGroupSize.Observe(int64(covered - prev))
		}
		w.syncMu.Unlock()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// resetLocked rewrites the log as a bare synced header. Callers hold
// w.mu and the file lock.
func (w *wal) resetLocked() error {
	hdr := encodeHeader(w.schema)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.hdrLen = int64(len(hdr))
	w.size.Store(w.hdrLen)
	return nil
}

// syncGroup binds a store's shards to its commit log: the commit path
// for puts and the checkpoint that makes segments durable on their own.
type syncGroup struct {
	shards []*shard
	w      *wal
}

// commit makes one appended record durable: log it, join the group
// commit, and fold in a checkpoint when the log has grown past the
// threshold (which also truncates it, bounding recovery time).
func (g *syncGroup) commit(rec []byte) error {
	seq, err := g.w.append(rec)
	if err != nil {
		return err
	}
	if err := g.w.syncTo(seq); err != nil {
		return err
	}
	if g.w.size.Load() >= walCheckpointBytes {
		return g.checkpoint()
	}
	return nil
}

// checkpoint fsyncs every shard segment and then truncates the log.
// Holding the log's lock across both steps is what makes the truncation
// safe: an append either completes before the lock is taken — its
// segment record is flushed by the segment fsyncs below — or starts
// after the truncation and is covered by its own log fsync. Records for
// a put whose segment append has happened but whose log append has not
// lose nothing either way: that put has not been acknowledged yet.
func (g *syncGroup) checkpoint() error {
	tmWalCheckpoints.Inc()
	g.w.mu.Lock()
	defer g.w.mu.Unlock()
	return g.w.withFileLock(func() error {
		for _, sh := range g.shards {
			// Any published handle works: a concurrently compacted
			// segment was synced — with every indexed record — before
			// its handle was swapped in.
			if err := sh.state.Load().f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return g.w.resetLocked()
	})
}

// recover replays the commit log into the shard segments at open: any
// good logged record whose key the segment scan did not surface was
// acknowledged durable but lost from its segment (a crash before a
// checkpoint), so it is re-appended. The segments are then fsynced — a
// key already present in a segment proves nothing about that segment
// having been synced — and the log truncated. A log from another schema
// is discarded whole, mirroring what opening does to the segments.
func (g *syncGroup) recover() error {
	w := g.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.withFileLock(func() error {
		fi, err := w.f.Stat()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		size := fi.Size()
		if size == 0 {
			return w.resetLocked()
		}
		schema, hdrLen, err := readHeader(w.f)
		if err != nil || schema != w.schema {
			return w.resetLocked()
		}
		w.hdrLen = hdrLen
		w.size.Store(size)
		if size <= hdrLen {
			return nil
		}
		buf := make([]byte, size-hdrLen)
		if _, err := io.ReadFull(io.NewSectionReader(w.f, hdrLen, size-hdrLen), buf); err != nil {
			return w.resetLocked()
		}
		perShard := make([][][]byte, len(g.shards))
		walkRecords(buf, hdrLen, func(off int64, rec parsedRecord, st recStatus) {
			if st != recGood {
				return
			}
			i := shardOf(rec.key) % len(g.shards)
			o := off - hdrLen
			perShard[i] = append(perShard[i], buf[o:o+rec.recLen])
		})
		for i, recs := range perShard {
			if len(recs) == 0 {
				continue
			}
			sh := g.shards[i]
			sh.lock()
			err := func() error {
				defer sh.mu.Unlock()
				return sh.withFileLock(true, func() error {
					if err := sh.rescanLocked(true); err != nil {
						return err
					}
					_, _, err := sh.appendBatchLocked(recs)
					return err
				})
			}()
			if err != nil {
				return err
			}
			if err := sh.state.Load().f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return w.resetLocked()
	})
}
