// Error-path tests for the put pipeline, driven through the failpoint
// seams (failpoint.go): a segment append, commit-log append or
// group-commit fsync that fails must surface as a put error, must never
// leave the store unreadable, and must never let a torn record be
// served.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var errInjected = errors.New("injected I/O failure")

// failWrites installs a write fault for one op and removes it when the
// test ends. short > 0 also lands that many leading bytes (a torn
// append).
func failWrites(t *testing.T, op string, short int) {
	t.Helper()
	fn := writeFaultFn(func(gotOp string, b []byte, off int64) (int, error) {
		if gotOp != op {
			return 0, nil
		}
		if short >= len(b) {
			t.Fatalf("short %d >= record length %d", short, len(b))
		}
		return short, errInjected
	})
	writeFault.Store(&fn)
	t.Cleanup(func() { writeFault.Store(nil) })
}

func clearFaults() {
	writeFault.Store(nil)
	fsyncFault.Store(nil)
}

// A torn segment append (half the record lands, then the write fails, as
// a full disk or a crash mid-write leaves it): the put errors, the torn
// record is never served, other entries stay readable, and retrying the
// put truncates the tear and succeeds.
func TestPutSurfacesTornSegmentAppend(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	put(t, s, "key-a", "t", "payload-a")

	failWrites(t, fpSegAppend, 10)
	if _, err := s.Put("key-b", "t", []byte("payload-b")); !errors.Is(err, errInjected) {
		t.Fatalf("Put under seg-append fault: err = %v, want %v", err, errInjected)
	}
	clearFaults()

	// The torn half-record sits past the committed tail; it must miss, and
	// must not have taken the rest of the store with it.
	wantMiss(t, s, "key-b")
	wantEntry(t, s, "key-a", "t", "payload-a")

	// The retry rescans under the exclusive lock, truncates the tear and
	// appends at a clean boundary.
	put(t, s, "key-b", "t", "payload-b")
	wantEntry(t, s, "key-b", "t", "payload-b")
	res, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 || res.TornBytes != 0 || res.GarbageBytes != 0 {
		t.Fatalf("after retry: %+v, want no corruption, no torn tail", res)
	}
	if res.Live != 2 {
		t.Fatalf("Live = %d, want 2", res.Live)
	}

	// And the repair survives a reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, "key-a", "t", "payload-a")
	wantEntry(t, s2, "key-b", "t", "payload-b")
}

// A commit-log append failure: the put must report it (the record is not
// durably acknowledged) while the store stays readable and writable.
func TestPutSurfacesCommitLogAppendFailure(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()

	failWrites(t, fpWALAppend, 0)
	if _, err := s.Put("key-a", "t", []byte("payload-a")); !errors.Is(err, errInjected) {
		t.Fatalf("Put under wal-append fault: err = %v, want %v", err, errInjected)
	}
	clearFaults()

	// The segment append preceded the failed log append, so the record is
	// visible in-process — the crash model tolerates an unacknowledged
	// record at a tail — and the store keeps working.
	wantEntry(t, s, "key-a", "t", "payload-a")
	put(t, s, "key-b", "t", "payload-b")
	wantEntry(t, s, "key-b", "t", "payload-b")
	res, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 0 || res.LogCorrupt != 0 {
		t.Fatalf("after recovery: %+v, want no corruption", res)
	}
}

// A group-commit fsync failure: the put must report it, the synced
// watermark must not advance past the failed fsync, and the next put's
// group commit must cover the stranded append.
func TestPutSurfacesCommitLogFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()

	fn := fsyncFaultFn(func(op string) error {
		if op == fpWALFsync {
			return errInjected
		}
		return nil
	})
	fsyncFault.Store(&fn)
	t.Cleanup(clearFaults)

	if _, err := s.Put("key-a", "t", []byte("payload-a")); !errors.Is(err, errInjected) {
		t.Fatalf("Put under wal-fsync fault: err = %v, want %v", err, errInjected)
	}
	clearFaults()

	put(t, s, "key-b", "t", "payload-b")
	wantEntry(t, s, "key-a", "t", "payload-a")
	wantEntry(t, s, "key-b", "t", "payload-b")

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, "key-a", "t", "payload-a")
	wantEntry(t, s2, "key-b", "t", "payload-b")
}

// Verify covers the commit log: records that only the log still holds (a
// crash before any checkpoint) are counted, served read-only through the
// overlay, and corruption in the log is flagged.
func TestVerifyCountsCommitLogRecords(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	// keyB must land on a different shard than keyA, so truncating keyA's
	// segment leaves keyB's intact.
	const keyA = "key-a"
	keyB := ""
	for i := 0; keyB == ""; i++ {
		if k := fmt.Sprintf("key-b%d", i); shardOf(k) != shardOf(keyA) {
			keyB = k
		}
	}
	put(t, s, keyA, "t", "payload-a")
	put(t, s, keyB, "t", "payload-b")
	// Abandon s without Close: no checkpoint, both records remain in the
	// commit log. Simulate the crash losing keyA's un-fsynced segment
	// write by truncating its shard segment back to a bare header.
	_, segPath := refOf(t, s, keyA)
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := encodeHeader(testSchema)
	if fi.Size() <= int64(len(hdr)) {
		t.Fatalf("segment %s unexpectedly bare", segPath)
	}
	if err := f.Truncate(int64(len(hdr))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ro, err := Open(dir, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	// keyA is gone from its segment but acknowledged in the log: the
	// overlay serves it, and Verify counts it as log-only live.
	wantEntry(t, ro, keyA, "t", "payload-a")
	wantEntry(t, ro, keyB, "t", "payload-b")
	res, err := ro.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRecords != 2 || res.LogLive != 1 || res.LogCorrupt != 0 {
		t.Fatalf("log scan = %+v, want LogRecords=2 LogLive=1 LogCorrupt=0", res)
	}
	if res.Corrupt != 0 {
		t.Fatalf("Corrupt = %d, want 0", res.Corrupt)
	}
	if got := ro.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// A flipped byte in a commit-log record fails its checksum: Verify
// reports it and the overlay never serves it.
func TestVerifyFlagsCorruptCommitLog(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, "key-a", "t", "payload-a")
	// Abandon without Close, then flip a byte inside the log's one record.
	logPath := filepath.Join(dir, shardsDirName, commitLogName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := len(encodeHeader(testSchema))
	if len(b) <= hdrLen {
		t.Fatalf("commit log holds no records (%d bytes)", len(b))
	}
	b[len(b)-5] ^= 0x40 // inside the payload/CRC region
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	res, err := ro.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.LogCorrupt != 1 || res.LogLive != 0 {
		t.Fatalf("log scan = %+v, want LogCorrupt=1 LogLive=0", res)
	}
}
