//go:build unix

package store

import (
	"fmt"
	"syscall"
)

// withLock runs fn while holding the store's cross-process file lock:
// exclusive for writers (appends, compaction), shared for readers scanning
// the tail. In-process callers are already serialised by s.mu, so the
// flock state of the single lock descriptor is never manipulated by two
// goroutines at once; distinct Store instances — in this or any other
// process — contend through the kernel.
func (s *Store) withLock(exclusive bool, fn func() error) error {
	if s.lockF == nil { // read-only open of a bare copied segment
		return fn()
	}
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	if err := flockRetry(int(s.lockF.Fd()), how); err != nil {
		return fmt.Errorf("store: lock %s: %w", s.dir, err)
	}
	defer flockRetry(int(s.lockF.Fd()), syscall.LOCK_UN)
	return fn()
}

// flockRetry issues flock, retrying on EINTR.
func flockRetry(fd, how int) error {
	for {
		err := syscall.Flock(fd, how)
		if err != syscall.EINTR {
			return err
		}
	}
}
