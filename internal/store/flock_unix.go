//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// flockHeld runs fn while holding a file lock on f: exclusive for writers
// (appends, compaction, layout changes), shared for readers scanning a
// tail. A nil f (read-only open of a bare copied directory, which nothing
// else can be writing) runs fn lock-free. Callers serialise their own use
// of one descriptor — the shard mutex for shard locks, Open for the
// directory lock — so its flock state is never manipulated by two
// goroutines at once; distinct handles, in this or any other process,
// contend through the kernel.
func flockHeld(f *os.File, name string, exclusive bool, fn func() error) error {
	if f == nil {
		return fn()
	}
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	if err := flockRetry(int(f.Fd()), how); err != nil {
		return fmt.Errorf("store: lock %s: %w", name, err)
	}
	defer flockRetry(int(f.Fd()), syscall.LOCK_UN)
	return fn()
}

// flockRetry issues flock, retrying on EINTR.
func flockRetry(fd, how int) error {
	for {
		err := syscall.Flock(fd, how)
		if err != syscall.EINTR {
			return err
		}
	}
}
