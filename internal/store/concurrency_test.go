package store

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// TestGetIndexedKeyIsLockFree pins the tentpole guarantee with the store's
// own op counters: once a key is indexed in a shard's published snapshot,
// Get touches no mutex and no flock. (The hot set is off here so the
// counters isolate the snapshot path rather than hot-set hits.)
func TestGetIndexedKeyIsLockFree(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		put(t, s, keys[i], "t", fmt.Sprintf("payload-%03d", i))
	}

	before := s.Counters()
	const rounds = 100
	for r := 0; r < rounds; r++ {
		for _, k := range keys {
			if _, _, ok := s.Get(k); !ok {
				t.Fatalf("indexed key %q missed", k)
			}
		}
	}
	after := s.Counters()

	n := uint64(rounds * len(keys))
	if got := after.Gets - before.Gets; got != n {
		t.Fatalf("gets delta = %d, want %d", got, n)
	}
	if got := after.SnapshotHits - before.SnapshotHits; got != n {
		t.Fatalf("snapshot hits delta = %d, want %d (every Get must stay on the fast path)", got, n)
	}
	if got := after.MutexAcqs - before.MutexAcqs; got != 0 {
		t.Fatalf("%d mutex acquisitions during indexed Gets, want 0", got)
	}
	if got := after.FlockAcqs - before.FlockAcqs; got != 0 {
		t.Fatalf("%d flock acquisitions during indexed Gets, want 0", got)
	}
	if got := after.SlowGets - before.SlowGets; got != 0 {
		t.Fatalf("%d slow-path Gets, want 0", got)
	}
}

// TestSnapshotReadsDontBlockOnWriterLocks: a reader serving an indexed key
// from its snapshot must not queue behind a writer holding the shard's
// exclusive lock. The test parks a lock holder inside flockHeld on the
// key's own shard lock and demands the Get complete while it is held.
func TestSnapshotReadsDontBlockOnWriterLocks(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	put(t, s, "key-a", "t", "alpha")
	sh := s.shardFor("key-a")

	lf, err := os.OpenFile(sh.lockPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	acquired := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- flockHeld(lf, sh.lockPath, true, func() error {
			close(acquired)
			<-release
			return nil
		})
	}()
	<-acquired

	got := make(chan bool, 1)
	go func() {
		_, _, ok := s.Get("key-a")
		got <- ok
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("Get missed while the shard lock was held")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked behind an exclusive shard lock")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutsAndGets hammers one handle from many goroutines:
// writers spread across all shards, writers colliding on one shard, and
// readers racing the appends. Run under -race this doubles as the memory
// model check for the snapshot-publication scheme.
func TestConcurrentPutsAndGets(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	const writers, perWriter = 8, 40
	put(t, s, "key-hot", "t", "resident")

	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers race every append, half on the stable key, half on keys that
	// appear mid-run.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r%2 == 0 {
					if _, _, ok := s.Get("key-hot"); !ok {
						t.Error("stable key vanished mid-run")
						return
					}
				} else {
					s.Get(fmt.Sprintf("w%d-k%03d", i%writers, i%perWriter))
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				// Even writers spread across shards; odd writers all collide
				// on writer 1's key space to serialise on one shard lock.
				key := fmt.Sprintf("w%d-k%03d", w, i)
				if w%2 == 1 {
					key = fmt.Sprintf("w1-k%03d-%d", i, w)
				}
				if _, err := s.Put(key, "t", []byte(key)); err != nil {
					t.Errorf("put %q: %v", key, err)
					return
				}
			}
		}(w)
	}
	// Wait for writers, then stop the readers.
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if t.Failed() {
		return
	}
	// No lost records: every write is present and intact.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-k%03d", w, i)
			if w%2 == 1 {
				key = fmt.Sprintf("w1-k%03d-%d", i, w)
			}
			typ, payload, ok := s.Get(key)
			if !ok || typ != "t" || string(payload) != key {
				t.Fatalf("lost or damaged record %q: (%q, %q, %v)", key, typ, payload, ok)
			}
		}
	}
	if res, err := s.Verify(); err != nil || res.Corrupt != 0 {
		t.Fatalf("verify after concurrent writes = (%+v, %v)", res, err)
	}
}

// TestRescanRacingGC: one handle runs GC (compaction: truncate-and-swap of
// every shard file) while a second handle on the same directory keeps
// reading and writing. Records younger than the age cutoff must all
// survive.
func TestRescanRacingGC(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir)
	defer a.Close()
	b := openT(t, dir)
	defer b.Close()

	const keys = 48
	for i := 0; i < keys; i++ {
		put(t, a, fmt.Sprintf("old-%03d", i), "t", "old")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for round := 0; round < 6; round++ {
			if _, err := a.GC(GCPolicy{MaxAge: time.Hour}); err != nil {
				t.Errorf("gc round %d: %v", round, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("new-%03d", i)
			if _, err := b.Put(key, "t", []byte("new")); err != nil {
				t.Errorf("put during gc: %v", err)
				return
			}
			b.Get(fmt.Sprintf("old-%03d", i))
			b.Get(key)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 0; i < keys; i++ {
		wantEntry(t, a, fmt.Sprintf("old-%03d", i), "t", "old")
		wantEntry(t, a, fmt.Sprintf("new-%03d", i), "t", "new")
		wantEntry(t, b, fmt.Sprintf("new-%03d", i), "t", "new")
	}
	if res, err := a.Verify(); err != nil || res.Live != 2*keys || res.Corrupt != 0 {
		t.Fatalf("verify after gc races = (%+v, %v)", res, err)
	}
}

const stressDirEnv = "ACTIVEMEM_STORE_STRESS_DIR"

// TestTwoProcessSharedDir re-execs the test binary so a genuinely separate
// process hammers the same directory through the kernel's flocks while
// this one does the same. Both processes' full write sets must survive.
func TestTwoProcessSharedDir(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot locate test binary:", err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestStoreStressHelper$", "-test.v")
	cmd.Env = append(os.Environ(), stressDirEnv+"="+dir)
	outc := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		out, err := cmd.CombinedOutput()
		outc <- out
		errc <- err
	}()

	s := openT(t, dir)
	defer s.Close()
	const n = 60
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("parent-%03d", i)
		if _, err := s.Put(key, "t", []byte(key)); err != nil {
			t.Fatalf("parent put: %v", err)
		}
		s.Get(fmt.Sprintf("child-%03d", i))
		s.Get(key)
	}
	out := <-outc
	if err := <-errc; err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}

	for i := 0; i < n; i++ {
		wantEntry(t, s, fmt.Sprintf("parent-%03d", i), "t", fmt.Sprintf("parent-%03d", i))
		wantEntry(t, s, fmt.Sprintf("child-%03d", i), "t", fmt.Sprintf("child-%03d", i))
	}
	if res, err := s.Verify(); err != nil || res.Corrupt != 0 || res.Live != 2*n {
		t.Fatalf("verify after two-process stress = (%+v, %v)\nchild output:\n%s", res, err, out)
	}
}

// TestStoreStressHelper is the child side of TestTwoProcessSharedDir; it
// only runs when re-exec'd with the shared directory in the environment.
func TestStoreStressHelper(t *testing.T) {
	dir := os.Getenv(stressDirEnv)
	if dir == "" {
		t.Skip("helper: run via TestTwoProcessSharedDir")
	}
	s, err := Open(dir, Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("child-%03d", i)
		if _, err := s.Put(key, "t", []byte(key)); err != nil {
			t.Fatalf("child put: %v", err)
		}
		s.Get(fmt.Sprintf("parent-%03d", i))
		s.Get(key)
	}
}

// TestConcurrentGetsSpanShardsLockFree: many goroutines reading indexed
// keys across every shard stay on the snapshot path — under -race this
// exercises concurrent loads of the published states.
func TestConcurrentGetsSpanShardsLockFree(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	keys := make([]string, numShards*4)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		put(t, s, keys[i], "t", "v")
	}
	before := s.Counters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*31+i)%len(keys)]
				if _, _, ok := s.Get(k); !ok {
					t.Errorf("missed indexed key %q", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	after := s.Counters()
	if got := after.MutexAcqs - before.MutexAcqs; got != 0 {
		t.Fatalf("%d mutex acquisitions across concurrent Gets, want 0", got)
	}
	if got := after.FlockAcqs - before.FlockAcqs; got != 0 {
		t.Fatalf("%d flock acquisitions across concurrent Gets, want 0", got)
	}
}
