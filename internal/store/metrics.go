// The store's telemetry instruments. Process-wide (package-level): a
// process may open several Stores, and the exposition is about what this
// process did to its caches, which is exactly the sum. Per-instance
// accounting stays on OpCounters.
//
// Cost discipline mirrors the rest of the stack: event counters are
// always-on single atomic adds on paths that already do real work (a get
// does a map probe or a pread; a hot-set admission holds a stripe mutex),
// while latency timing — the time.Now pairs around Get/Put — is gated on
// telemetry.Active() so the lock-free read path stays lock-free and
// near-free with the listener off. WAL fsyncs are always timed: a clock
// read is noise against a disk flush.

package store

import "activemem/internal/telemetry"

var (
	tmGets = telemetry.Default.NewCounter("store_gets_total",
		"Store Get/GetDecoded calls (all tiers).")
	tmPuts = telemetry.Default.NewCounter("store_puts_total",
		"Store Put calls.")
	tmHotHits = telemetry.Default.NewCounter("store_hot_hits_total",
		"Gets served by the in-memory hot set (no disk access, no mutex).")
	tmSnapshotHits = telemetry.Default.NewCounter("store_snapshot_hits_total",
		"Gets served lock-free from a shard's published index snapshot (one pread).")
	tmSlowGets = telemetry.Default.NewCounter("store_slow_gets_total",
		"Gets that fell to a shard's locked slow path (misses, verification failures).")

	tmGetSeconds = telemetry.Default.NewHistogramVec("store_get_seconds",
		"Get latency by shard (hot set included; timing active only with telemetry on).",
		"shard", numShards)
	tmPutSeconds = telemetry.Default.NewHistogramVec("store_put_seconds",
		"Put latency by shard, including the group-committed log fsync (timing active only with telemetry on).",
		"shard", numShards)

	tmWalFsyncSeconds = telemetry.Default.NewHistogram("store_wal_fsync_seconds",
		"Commit-log fsync latency (one fsync acknowledges a whole commit group).")
	tmWalGroupSize = telemetry.Default.NewHistogram("store_wal_group_commit_size",
		"Appends acknowledged per commit-log fsync (group-commit batch size; unit = appends, bucket k = 2^k).")
	tmWalCheckpoints = telemetry.Default.NewCounter("store_wal_checkpoints_total",
		"Commit-log checkpoints (every shard segment fsynced, log truncated).")

	tmHotAdmits = telemetry.Default.NewCounter("store_hot_admits_total",
		"Hot-set admissions (entry accepted into probation).")
	tmHotRejects = telemetry.Default.NewCounter("store_hot_rejects_total",
		"Hot-set admission rejections (TinyLFU estimate lost to the probation victim).")
	tmHotEvicts = telemetry.Default.NewCounter("store_hot_evicts_total",
		"Hot-set evictions (budget pressure or replacement).")
	tmHotSketchResets = telemetry.Default.NewCounter("store_hot_sketch_resets_total",
		"TinyLFU count-min sketch aging passes (every counter halved).")
)
