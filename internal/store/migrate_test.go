package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeV1Store synthesises a legacy single-segment store: a results.seg
// with the given records (in order) and a LOCK file. Returns the segment
// path.
func writeV1Store(t *testing.T, dir, schema string, recs [][]byte) string {
	t.Helper()
	seg := encodeHeader(schema)
	for _, r := range recs {
		seg = append(seg, r...)
	}
	segPath := filepath.Join(dir, v1SegmentName)
	if err := os.WriteFile(segPath, seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, lockName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return segPath
}

// TestMigrateV1RoundTrip pins the migration contract: a read-write Open of
// a v1 directory rebuilds it as shards with byte-identical payloads,
// preserved stamps, and the old segment gone.
func TestMigrateV1RoundTrip(t *testing.T) {
	dir := t.TempDir()
	stamp := time.Now().Add(-3 * time.Hour).Unix()
	payloads := map[string][]byte{}
	var recs [][]byte
	for _, k := range []string{"key-a", "key-b", "key-c", "key-d"} {
		p := bytes.Repeat([]byte(k), 7)
		payloads[k] = p
		recs = append(recs, encodeRecord(k, "t.Mig", p, stamp))
	}
	// A superseded duplicate: last-wins must carry the replacement only.
	recs = append(recs, encodeRecord("key-a", "t.Mig", []byte("replacement"), stamp+1))
	payloads["key-a"] = []byte("replacement")
	writeV1Store(t, dir, testSchema, recs)

	s := openT(t, dir)
	defer s.Close()
	if migrated, n := s.MigratedOnOpen(); !migrated || n != 4 {
		t.Fatalf("MigratedOnOpen = (%v, %d), want (true, 4)", migrated, n)
	}
	if s.ResetOnOpen() {
		t.Fatal("migration reported a reset")
	}
	if _, err := os.Stat(filepath.Join(dir, v1SegmentName)); !os.IsNotExist(err) {
		t.Fatal("v1 segment survived the migration")
	}
	if _, err := os.Stat(filepath.Join(dir, shardsDirName, layoutName)); err != nil {
		t.Fatal("migrated layout has no LAYOUT stamp")
	}

	for k, p := range payloads {
		typ, got, ok := s.Get(k)
		if !ok || typ != "t.Mig" || !bytes.Equal(got, p) {
			t.Fatalf("migrated %q = (%q, %q, %v), want byte-identical payload", k, typ, got, ok)
		}
	}
	// Stamps carried over byte-for-byte (the record bytes were copied, not
	// re-encoded).
	for _, e := range s.Entries() {
		want := stamp
		if e.Key == "key-a" {
			want = stamp + 1
		}
		if e.Stamp.Unix() != want {
			t.Fatalf("migrated %q stamp = %d, want %d", e.Key, e.Stamp.Unix(), want)
		}
	}
	if res, err := s.Verify(); err != nil || res.Live != 4 || res.Corrupt != 0 || res.TornBytes != 0 {
		t.Fatalf("post-migration verify = (%+v, %v)", res, err)
	}

	// The migrated layout reopens as a plain sharded store.
	s.Close()
	s2 := openT(t, dir)
	defer s2.Close()
	if migrated, _ := s2.MigratedOnOpen(); migrated {
		t.Fatal("second open re-migrated")
	}
	wantEntry(t, s2, "key-a", "t.Mig", "replacement")
}

// TestMigrateV1TornTailAndCorruption: migration applies the same scan
// policy as every open — torn tails dropped, checksum failures skipped,
// later records kept.
func TestMigrateV1TornTailAndCorruption(t *testing.T) {
	dir := t.TempDir()
	good := encodeRecord("key-a", "t", []byte("alpha"), 1)
	bad := encodeRecord("key-b", "t", []byte("beta"), 2)
	bad[len(bad)-6] ^= 0x40 // flip a payload byte: checksum fails
	after := encodeRecord("key-c", "t", []byte("gamma"), 3)
	torn := encodeRecord("key-d", "t", []byte("delta"), 4)[:10]
	writeV1Store(t, dir, testSchema, [][]byte{good, bad, after, torn})

	s := openT(t, dir)
	defer s.Close()
	if migrated, n := s.MigratedOnOpen(); !migrated || n != 2 {
		t.Fatalf("MigratedOnOpen = (%v, %d), want (true, 2)", migrated, n)
	}
	wantEntry(t, s, "key-a", "t", "alpha")
	wantMiss(t, s, "key-b")
	wantEntry(t, s, "key-c", "t", "gamma")
	wantMiss(t, s, "key-d")
}

// TestMigrateV1SchemaMismatchResets: a v1 store under another schema gets
// the same treatment a v1 read-write open gave it — discarded wholesale.
func TestMigrateV1SchemaMismatchResets(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, "old-schema", [][]byte{encodeRecord("key-a", "t", []byte("alpha"), 1)})

	s := openT(t, dir)
	defer s.Close()
	if !s.ResetOnOpen() {
		t.Fatal("schema-mismatched v1 store did not report a reset")
	}
	if migrated, _ := s.MigratedOnOpen(); migrated {
		t.Fatal("a discarded store reported a migration")
	}
	if s.Len() != 0 {
		t.Fatalf("stale entries survived: %d", s.Len())
	}
	wantMiss(t, s, "key-a")
}

// TestMigrateEmptyV1 treats a created-but-never-written v1 store as a
// fresh store.
func TestMigrateEmptyV1(t *testing.T) {
	dir := t.TempDir()
	writeV1Store(t, dir, testSchema, nil)
	if err := os.Truncate(filepath.Join(dir, v1SegmentName), 0); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir)
	defer s.Close()
	if s.ResetOnOpen() {
		t.Fatal("empty v1 store reported a reset")
	}
	put(t, s, "key-a", "t", "alpha")
	wantEntry(t, s, "key-a", "t", "alpha")
}

// TestMigrationV1ExportImportsIntoSharded: record bytes are layout
// agnostic, so a bundle exported from a (read-only, legacy-mode) v1 store
// imports into a sharded store unchanged.
func TestMigrationV1ExportImportsIntoSharded(t *testing.T) {
	v1dir := t.TempDir()
	writeV1Store(t, v1dir, testSchema, [][]byte{
		encodeRecord("key-a", "t", []byte("alpha"), 1),
		encodeRecord("key-b", "t", []byte("beta"), 2),
	})
	ro, err := Open(v1dir, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	var bundle bytes.Buffer
	if n, err := ro.Export(&bundle); err != nil || n != 2 {
		t.Fatalf("export = (%d, %v)", n, err)
	}

	dst := openT(t, t.TempDir())
	defer dst.Close()
	added, skipped, err := dst.Import(bytes.NewReader(bundle.Bytes()))
	if err != nil || added != 2 || skipped != 0 {
		t.Fatalf("import = (%d, %d, %v), want (2, 0, nil)", added, skipped, err)
	}
	wantEntry(t, dst, "key-a", "t", "alpha")
	wantEntry(t, dst, "key-b", "t", "beta")
}

// TestStaleMigrationTmpDirSwept: a migration temp dir left by a crashed
// process is removed at the next read-write open.
func TestStaleMigrationTmpDirSwept(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, shardsDirName+".tmp-99999")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir)
	defer s.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale migration temp dir survived open")
	}
}

// TestInterruptedMigrationCleanupFinishes: a crash after the rename but
// before the old segment's removal leaves both layouts; the sharded one is
// authoritative and the leftover is cleaned up.
func TestInterruptedMigrationCleanupFinishes(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, "key-a", "t", "alpha")
	s.Close()
	// Simulate the leftover v1 segment holding stale bytes.
	writeV1Store(t, dir, testSchema, [][]byte{encodeRecord("key-a", "t", []byte("STALE"), 1)})

	s2 := openT(t, dir)
	defer s2.Close()
	if migrated, _ := s2.MigratedOnOpen(); migrated {
		t.Fatal("open re-migrated over an existing sharded layout")
	}
	if _, err := os.Stat(filepath.Join(dir, v1SegmentName)); !os.IsNotExist(err) {
		t.Fatal("leftover v1 segment survived")
	}
	wantEntry(t, s2, "key-a", "t", "alpha")
}
