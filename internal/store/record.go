// On-disk record format shared by every segment the store writes: the v1
// single-segment layout, each v2 shard segment, and export bundles all use
// the same self-delimiting checksummed records behind one header, so bytes
// move between layouts and machines without re-encoding.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	// fileMagic names the binary format; bump the trailing digits when the
	// record layout changes.
	fileMagic = "AMSTOR01"

	// v1SegmentName is the legacy single-segment layout's one data file; a
	// read-write Open migrates it into the sharded layout, a read-only Open
	// serves it in place.
	v1SegmentName = "results.seg"
	// lockName is the store-wide lock file: v1 writers serialised every
	// append through it; the sharded layout keeps it for layout-level
	// operations (migration, fresh creation) only.
	lockName = "LOCK"

	// shardsDirName holds the sharded layout: one segment + lock file pair
	// per key-hash shard, plus the layout stamp.
	shardsDirName = "shards"
	layoutName    = "LAYOUT"

	// numShards partitions the keyspace; each shard owns its segment file,
	// its lock and its index, so writers to different shards never contend.
	// The routing (shardOf) is baked into the layout — layoutStamp records
	// it so a binary with a different constant refuses to mix layouts.
	numShards = 16

	entryMagic  = uint32(0x414D4345) // "AMCE"
	fixedHdrLen = 4 + 2 + 2 + 4 + 8
	crcLen      = 4

	maxKeyLen  = 1 << 10
	maxTypeLen = 1 << 10
	maxPayload = 1 << 26
)

// layoutStamp is the exact content of the LAYOUT file; any other content
// means the directory was written by an incompatible shard routing.
var layoutStamp = fmt.Sprintf("amshards v1\nshards: %d\n", numShards)

// shardOf routes a key to its shard (FNV-1a over the key bytes).
func shardOf(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % numShards)
}

// entryRef locates one live record in a segment.
type entryRef struct {
	off        int64 // record start
	recLen     int64
	typeName   string
	payloadLen int
	stamp      int64
}

// encodeHeader renders the segment header: magic, schema length, schema.
func encodeHeader(schema string) []byte {
	b := make([]byte, 0, len(fileMagic)+2+len(schema))
	b = append(b, fileMagic...)
	var lenBuf [2]byte
	binary.LittleEndian.PutUint16(lenBuf[:], uint16(len(schema)))
	b = append(b, lenBuf[:]...)
	return append(b, schema...)
}

// readHeader parses a segment header, returning the stored schema and
// header length.
func readHeader(f *os.File) (schema string, hdrLen int64, err error) {
	buf := make([]byte, len(fileMagic)+2)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(len(buf))), buf); err != nil {
		return "", 0, fmt.Errorf("short header: %w", err)
	}
	if string(buf[:len(fileMagic)]) != fileMagic {
		return "", 0, fmt.Errorf("bad magic %q", buf[:len(fileMagic)])
	}
	n := int(binary.LittleEndian.Uint16(buf[len(fileMagic):]))
	sb := make([]byte, n)
	off := int64(len(buf))
	if _, err := io.ReadFull(io.NewSectionReader(f, off, int64(n)), sb); err != nil {
		return "", 0, fmt.Errorf("short schema: %w", err)
	}
	return string(sb), off + int64(n), nil
}

// encodeRecord renders one record; see the package comment for the layout.
func encodeRecord(key, typeName string, payload []byte, stamp int64) []byte {
	n := fixedHdrLen + len(key) + len(typeName) + len(payload) + crcLen
	b := make([]byte, 0, n)
	var u4 [4]byte
	var u8 [8]byte
	binary.LittleEndian.PutUint32(u4[:], entryMagic)
	b = append(b, u4[:]...)
	binary.LittleEndian.PutUint16(u4[:2], uint16(len(key)))
	b = append(b, u4[:2]...)
	binary.LittleEndian.PutUint16(u4[:2], uint16(len(typeName)))
	b = append(b, u4[:2]...)
	binary.LittleEndian.PutUint32(u4[:], uint32(len(payload)))
	b = append(b, u4[:]...)
	binary.LittleEndian.PutUint64(u8[:], uint64(stamp))
	b = append(b, u8[:]...)
	b = append(b, key...)
	b = append(b, typeName...)
	b = append(b, payload...)
	binary.LittleEndian.PutUint32(u4[:], crc32.ChecksumIEEE(b))
	return append(b, u4[:]...)
}

// recStatus classifies one scanned record.
type recStatus int

const (
	recGood recStatus = iota
	recBadCRC
	recTorn // incomplete or unparseable from here on
)

// parsedRecord is the outcome of scanning one record.
type parsedRecord struct {
	key      string
	typeName string
	payload  []byte
	stamp    int64
	recLen   int64
}

// entryMagicBytes is the on-disk rendering of entryMagic, the marker the
// scan resynchronises on after unparseable bytes.
var entryMagicBytes = binary.LittleEndian.AppendUint32(nil, entryMagic)

// parseRecord parses one record at the start of b. recTorn means no
// complete record starts here: a clean end of input, a torn append, or
// garbage (including a record whose corrupted length fields point past the
// available bytes).
func parseRecord(b []byte) (parsedRecord, recStatus) {
	if len(b) < fixedHdrLen || binary.LittleEndian.Uint32(b) != entryMagic {
		return parsedRecord{}, recTorn
	}
	keyLen := int(binary.LittleEndian.Uint16(b[4:]))
	typeLen := int(binary.LittleEndian.Uint16(b[6:]))
	payloadLen := int(binary.LittleEndian.Uint32(b[8:]))
	if keyLen == 0 || keyLen > maxKeyLen || typeLen > maxTypeLen || payloadLen > maxPayload {
		return parsedRecord{}, recTorn
	}
	total := fixedHdrLen + keyLen + typeLen + payloadLen + crcLen
	if len(b) < total {
		return parsedRecord{}, recTorn
	}
	rec := parsedRecord{
		key:      string(b[fixedHdrLen : fixedHdrLen+keyLen]),
		typeName: string(b[fixedHdrLen+keyLen : fixedHdrLen+keyLen+typeLen]),
		payload:  b[fixedHdrLen+keyLen+typeLen : total-crcLen],
		stamp:    int64(binary.LittleEndian.Uint64(b[12:])),
		recLen:   int64(total),
	}
	if crc32.ChecksumIEEE(b[:total-crcLen]) != binary.LittleEndian.Uint32(b[total-crcLen:total]) {
		return rec, recBadCRC
	}
	return rec, recGood
}

// walkRecords scans buf (whose first byte sits at file offset base),
// invoking fn for every intact record and for the first checksum-failed
// record of each damaged region. A failed checksum vouches for nothing —
// least of all the record's own length fields — so the scan never advances
// by a corrupt record's claimed extent; it resynchronises on the next
// entry magic instead, which keeps every intact record after the damage
// reachable. It returns the file offset where a trailing unparseable
// region begins (base+len(buf) when the buffer ends at a record boundary)
// and the number of mid-buffer garbage bytes skipped.
func walkRecords(buf []byte, base int64, fn func(off int64, rec parsedRecord, st recStatus)) (tail, garbage int64) {
	off, garbageStart := 0, -1
	for off < len(buf) {
		rec, st := parseRecord(buf[off:])
		if st == recGood {
			if garbageStart >= 0 {
				garbage += int64(off - garbageStart)
				garbageStart = -1
			}
			fn(base+int64(off), rec, st)
			off += int(rec.recLen)
			continue
		}
		if garbageStart < 0 {
			garbageStart = off
			if st == recBadCRC {
				// The first failure of a region at a plausible record
				// boundary is the damaged record itself; report it once.
				fn(base+int64(off), rec, st)
			}
		}
		idx := bytes.Index(buf[off+1:], entryMagicBytes)
		if idx < 0 {
			break // unparseable through to the end: a torn tail
		}
		off += 1 + idx
	}
	if garbageStart >= 0 {
		return base + int64(garbageStart), garbage
	}
	return base + int64(len(buf)), garbage
}

// readEntry reads and re-verifies one record, returning its payload. The
// parsed record must be the very record the index promised — same key,
// same extent — not merely a valid record: after a compaction rewrites a
// segment, a stale offset can land on a different, perfectly well-formed
// record, and serving that one would cross result generations.
func readEntry(f *os.File, key string, ref entryRef) ([]byte, error) {
	buf := make([]byte, ref.recLen)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	rec, status := parseRecord(buf)
	if status != recGood || rec.key != key || rec.recLen != ref.recLen {
		return nil, fmt.Errorf("store: record at %d failed verification", ref.off)
	}
	return rec.payload, nil
}
