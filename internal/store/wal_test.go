package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCommitLogReplaysLostSegmentAppends simulates the crash the commit
// log exists for: puts were acknowledged after the log fsync, but the
// segment appends never became durable. Reopening must replay the logged
// records into their segments and truncate the log.
func TestCommitLogReplaysLostSegmentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("wal-key-%02d", i)
		if added, err := s.Put(keys[i], "wal.T", []byte(fmt.Sprintf("payload-%d", i))); err != nil || !added {
			t.Fatalf("put %d: added=%v err=%v", i, added, err)
		}
	}
	// Crash, not Close: the segment appends are torn away (as if they
	// never left the page cache) while the fsynced commit log survives.
	hdrLen := int64(len(encodeHeader("wal-v1")))
	shardsDir := filepath.Join(dir, shardsDirName)
	for i := 0; i < numShards; i++ {
		if err := os.Truncate(shardSegPath(shardsDir, i), hdrLen); err != nil {
			t.Fatal(err)
		}
	}
	logPath := filepath.Join(shardsDir, commitLogName)
	if fi, err := os.Stat(logPath); err != nil || fi.Size() <= hdrLen {
		t.Fatalf("commit log should hold the acknowledged records: %v size=%d", err, fi.Size())
	}

	s2, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, k := range keys {
		typeName, payload, ok := s2.Get(k)
		if !ok || typeName != "wal.T" || string(payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("key %q not recovered from commit log: ok=%v type=%q payload=%q",
				k, ok, typeName, payload)
		}
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != hdrLen {
		t.Fatalf("recovery should truncate the commit log: %v size=%d", err, fi.Size())
	}
}

// TestCommitLogCheckpointOnClose pins the clean-shutdown contract: Close
// fsyncs the segments and leaves a bare-header commit log, so the next
// open replays nothing.
func TestCommitLogCheckpointOnClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("close-key", "wal.T", []byte("v")); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, shardsDirName, commitLogName)
	hdrLen := int64(len(encodeHeader("wal-v1")))
	if fi, err := os.Stat(logPath); err != nil || fi.Size() <= hdrLen {
		t.Fatalf("put should have landed in the commit log: %v size=%d", err, fi.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != hdrLen {
		t.Fatalf("close should checkpoint the commit log: %v size=%d", err, fi.Size())
	}
	s2, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, ok := s2.Get("close-key"); !ok {
		t.Fatal("checkpointed record must be served from its segment")
	}
}

// TestCommitLogSchemaMismatchDiscarded mirrors the segment contract: a
// log written by another schema vouches for nothing and is reset, never
// replayed into this schema's segments.
func TestCommitLogSchemaMismatchDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("stale-key", "wal.T", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Crash with the record only in the log, then come back as wal-v2.
	hdrLen := int64(len(encodeHeader("wal-v1")))
	shardsDir := filepath.Join(dir, shardsDirName)
	for i := 0; i < numShards; i++ {
		if err := os.Truncate(shardSegPath(shardsDir, i), hdrLen); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{Schema: "wal-v2"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, ok := s2.Get("stale-key"); ok {
		t.Fatal("a foreign-schema commit log must not replay into fresh segments")
	}
	logPath := filepath.Join(shardsDir, commitLogName)
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != int64(len(encodeHeader("wal-v2"))) {
		t.Fatalf("foreign-schema log should be reset: %v size=%d", err, fi.Size())
	}
}

// TestCommitLogReadOnlyOverlay simulates the same crash as
// TestCommitLogReplaysLostSegmentAppends — acknowledged puts torn out of
// their segments, surviving only in the fsynced commit log — but comes
// back read-only. The open must serve the logged records through the
// in-memory overlay without modifying either the segments or the log.
func TestCommitLogReadOnlyOverlay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("ro-key-%02d", i)
		if added, err := s.Put(keys[i], "wal.T", []byte(fmt.Sprintf("payload-%d", i))); err != nil || !added {
			t.Fatalf("put %d: added=%v err=%v", i, added, err)
		}
	}
	// Crash: tear the unsynced segment appends away, keep the log.
	hdrLen := int64(len(encodeHeader("wal-v1")))
	shardsDir := filepath.Join(dir, shardsDirName)
	for i := 0; i < numShards; i++ {
		if err := os.Truncate(shardSegPath(shardsDir, i), hdrLen); err != nil {
			t.Fatal(err)
		}
	}
	logPath := filepath.Join(shardsDir, commitLogName)
	logBefore, err := os.ReadFile(logPath)
	if err != nil || int64(len(logBefore)) <= hdrLen {
		t.Fatalf("commit log should hold the acknowledged records: %v size=%d", err, len(logBefore))
	}

	ro, err := Open(dir, Options{Schema: "wal-v1", ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		typeName, payload, ok := ro.Get(k)
		if !ok || typeName != "wal.T" || string(payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("key %q not served from the commit-log overlay: ok=%v type=%q payload=%q",
				k, ok, typeName, payload)
		}
	}
	if got := ro.Len(); got != len(keys) {
		t.Fatalf("Len() = %d with %d overlay-only records", got, len(keys))
	}
	seen := map[string]bool{}
	for _, e := range ro.Entries() {
		seen[e.Key] = true
	}
	for _, k := range keys {
		if !seen[k] {
			t.Fatalf("Entries() misses overlay-only key %q", k)
		}
	}
	if _, _, ok := ro.Get("never-written"); ok {
		t.Fatal("overlay must not invent absent keys")
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Strictly read-only: neither the log nor any segment changed.
	logAfter, err := os.ReadFile(logPath)
	if err != nil || string(logAfter) != string(logBefore) {
		t.Fatalf("read-only open modified the commit log: %v", err)
	}
	for i := 0; i < numShards; i++ {
		if fi, err := os.Stat(shardSegPath(shardsDir, i)); err != nil || fi.Size() != hdrLen {
			t.Fatalf("read-only open modified shard %d: %v", i, err)
		}
	}

	// A writable open afterwards still recovers normally.
	s2, err := Open(dir, Options{Schema: "wal-v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, k := range keys {
		if _, _, ok := s2.Get(k); !ok {
			t.Fatalf("writable recovery lost key %q", k)
		}
	}
}
