// Migration of the legacy v1 single-segment layout to the sharded one. A
// read-write Open detects results.seg, rebuilds it as shards/ in a
// temporary directory, and swaps the directory in with one rename — the
// same atomic temp+rename idiom compaction uses for a single segment — so
// a crash at any point leaves either an intact v1 store or an intact
// sharded one, never a half-migrated hybrid. Records are copied byte for
// byte (stamps, payloads and checksums included): a migrated store serves
// exactly the bytes the v1 store held.
package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// prepareLayoutLocked brings dir to the sharded layout: creating it fresh,
// adopting an existing one (finishing an interrupted migration's cleanup),
// or migrating a v1 single-segment directory in place. Runs under the
// exclusive directory lock, so exactly one process makes the decision.
func (s *Store) prepareLayoutLocked() error {
	// Sweep stale migration temp dirs (a migrating process that died
	// before its rename).
	if stale, _ := filepath.Glob(filepath.Join(s.dir, shardsDirName+".tmp-*")); len(stale) > 0 {
		for _, d := range stale {
			os.RemoveAll(d)
		}
	}
	shardsDir := filepath.Join(s.dir, shardsDirName)
	if fi, err := os.Stat(shardsDir); err == nil && fi.IsDir() {
		if err := checkLayoutStamp(filepath.Join(shardsDir, layoutName)); err != nil {
			// Written with a different shard routing: every key would route
			// wrong. Same remedy as a schema change — discard and reset.
			s.reset = true
			if err := os.RemoveAll(shardsDir); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			return s.createShardsLocked()
		}
		// A crash after migration's rename but before its cleanup leaves
		// the old segment behind; the sharded layout is the authoritative
		// one, finish the cleanup.
		os.Remove(filepath.Join(s.dir, v1SegmentName))
		if _, err := os.Stat(filepath.Join(shardsDir, layoutName)); os.IsNotExist(err) {
			return writeLayoutStamp(shardsDir)
		}
		return nil
	}
	if _, err := os.Stat(filepath.Join(s.dir, v1SegmentName)); err == nil {
		return s.migrateV1Locked()
	}
	return s.createShardsLocked()
}

// createShardsLocked lays down a fresh sharded layout. The shard files
// themselves are created lazily by openShard. Directory lock held.
func (s *Store) createShardsLocked() error {
	shardsDir := filepath.Join(s.dir, shardsDirName)
	if err := os.MkdirAll(shardsDir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeLayoutStamp(shardsDir)
}

// writeLayoutStamp records the shard routing, atomically.
func writeLayoutStamp(shardsDir string) error {
	tmp := filepath.Join(shardsDir, layoutName+".tmp")
	if err := os.WriteFile(tmp, []byte(layoutStamp), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(shardsDir, layoutName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// migrateV1Locked upgrades a v1 single-segment directory to the sharded
// layout. Live records (last-wins per key, checksum-verified) are copied
// byte for byte into their shard segments inside a temp dir, which then
// replaces shardsDirName in one rename; the old segment is removed only
// after that succeeds. A v1 segment under a different schema (or an
// unrecognised format) gets the same treatment a v1 read-write Open gave
// it: its contents are discarded and the store starts fresh.
func (s *Store) migrateV1Locked() error {
	segPath := filepath.Join(s.dir, v1SegmentName)
	f, err := os.Open(segPath)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		// A created-but-never-written v1 store: nothing to carry over.
		os.Remove(segPath)
		return s.createShardsLocked()
	}
	onDisk, hdrLen, err := readHeader(f)
	if err != nil || onDisk != s.schema {
		s.reset = true
		if err := os.Remove(segPath); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return s.createShardsLocked()
	}

	buf := make([]byte, fi.Size()-hdrLen)
	if _, err := f.ReadAt(buf, hdrLen); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Last-wins per key, exactly the index a v1 open would have built; a
	// torn tail or corrupt record is dropped the way every scan drops it.
	index := map[string]entryRef{}
	walkRecords(buf, hdrLen, func(off int64, rec parsedRecord, st recStatus) {
		if st == recGood {
			index[rec.key] = entryRef{off: off, recLen: rec.recLen}
		}
	})
	live := make([]keyedRef, 0, len(index))
	for k, ref := range index {
		live = append(live, keyedRef{k, ref})
	}
	sortRefsByOff(live)

	tmpDir := filepath.Join(s.dir, fmt.Sprintf("%s.tmp-%d", shardsDirName, os.Getpid()))
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(tmpDir) // no-op after a successful rename

	files := make([]*os.File, numShards)
	writers := make([]*bufio.Writer, numShards)
	for i := 0; i < numShards; i++ {
		sf, err := os.OpenFile(shardSegPath(tmpDir, i), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		files[i] = sf
		writers[i] = bufio.NewWriterSize(sf, 256<<10)
		if _, err := writers[i].Write(encodeHeader(s.schema)); err != nil {
			closeAll(files)
			return fmt.Errorf("store: %w", err)
		}
		// Pre-create the lock file so read-only openers of the migrated
		// layout coordinate through it from the first moment.
		lf, err := os.OpenFile(shardLockPath(tmpDir, i), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			closeAll(files)
			return fmt.Errorf("store: %w", err)
		}
		lf.Close()
	}
	for _, p := range live {
		rec := buf[p.ref.off-hdrLen : p.ref.off-hdrLen+p.ref.recLen]
		if _, err := writers[shardOf(p.key)].Write(rec); err != nil {
			closeAll(files)
			return fmt.Errorf("store: %w", err)
		}
	}
	for i := 0; i < numShards; i++ {
		if err := writers[i].Flush(); err != nil {
			closeAll(files)
			return fmt.Errorf("store: %w", err)
		}
		if err := files[i].Sync(); err != nil {
			closeAll(files)
			return fmt.Errorf("store: %w", err)
		}
		if err := files[i].Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := writeLayoutStamp(tmpDir); err != nil {
		return err
	}
	if err := os.Rename(tmpDir, filepath.Join(s.dir, shardsDirName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.dir)
	os.Remove(segPath)
	s.migrated = true
	s.migratedEntries = len(live)
	return nil
}

func closeAll(files []*os.File) {
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
}

// syncDir best-effort fsyncs a directory so a rename survives power loss.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
