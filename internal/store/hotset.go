package store

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// The hot set is the in-memory tier in front of the shards: a byte-bounded
// cache of recently served payloads (and, via attach, their decoded
// values) so warm reads skip the pread, the checksum verification and the
// decode entirely. Admission is frequency-based in the TinyLFU style: a
// count-min sketch of 4-bit counters estimates how often each key has been
// asked for, and a newcomer only displaces a resident entry when its
// estimate beats the victim's — one-shot scans (a campaign streaming over
// thousands of cells once) cannot wash out the keys that are actually hot.
// Eviction is a segmented LRU: entries land in a probation segment and are
// promoted to a protected segment on their second hit; the probation tail
// is the eviction victim, so proven-hot entries are not sacrificed to
// passing traffic.
//
// The set is striped: each of hotStripes stripes owns a mutex, its share
// of the byte budget, its own sketch and its own LRU lists, so concurrent
// writers on different stripes do not contend. Hits are lock-free: the
// resident map is a sync.Map of immutable entries, and the policy work a
// hit owes (sketch increment, LRU touch) is recorded in a small lossy
// ring and drained in FIFO order by the next operation that holds the
// stripe mutex — the read-buffer scheme TinyLFU caches use so a cache
// hit never queues behind policy maintenance. Entries are never mutated
// after publication; refreshing a resident key replaces its node.

const (
	hotStripes = 16
	// protectedShare is the fraction of a stripe's budget the protected
	// segment may hold; the rest is probation.
	protectedShare = 0.8
	// hotEntryOverhead approximates per-entry bookkeeping (map slot, list
	// links, header) charged on top of the payload bytes.
	hotEntryOverhead = 128
	// sketchDepth is the number of count-min rows.
	sketchDepth = 4
	// hotRingSize is the per-stripe read-buffer capacity (power of two).
	// When it fills, one reader opportunistically drains it; overwrites
	// under contention just drop touches, which a frequency sketch absorbs.
	hotRingSize = 64
)

// hotView is the copied-out result of a hot-set lookup.
type hotView struct {
	typeName string
	payload  []byte
	value    any
}

// HotStats is a snapshot of the hot set's counters.
type HotStats struct {
	Entries  int
	Bytes    int64
	MaxBytes int64
	Hits     uint64
	Misses   uint64
	Admits   uint64
	Rejects  uint64
	Evicts   uint64
}

type hotSet struct {
	maxBytes int64
	stripes  [hotStripes]hotStripe
}

type hotStripe struct {
	// entries maps key -> *hotEntry and is read lock-free on the hit path.
	// All other policy state below mu is only touched with mu held.
	entries sync.Map

	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	count     int
	protCap   int64
	protBytes int64
	probation hotList
	protected hotList
	sketch    cmSketch

	admits, rejects, evicts uint64

	hits, misses atomic.Uint64

	// ring is the lossy read buffer: hits (and miss markers, which carry
	// only a hash) park here until a mutex holder drains them into the
	// sketch and LRU lists. ringTail is only advanced under mu.
	ring     [hotRingSize]atomic.Pointer[hotEntry]
	ringHead atomic.Uint64
	ringTail atomic.Uint64
}

// hotEntry is immutable once published to a stripe's entries map; lock-free
// readers may hold a reference indefinitely. dead is set (under the stripe
// mutex) when the entry leaves the map, so a stale ring reference is never
// re-linked into an LRU list. Miss markers are born dead: they exist only
// to carry a hash into the sketch.
type hotEntry struct {
	key        string
	hash       uint64
	typeName   string
	payload    []byte
	value      any
	cost       int64
	prev, next *hotEntry
	protected  bool
	dead       bool
}

// newHotSet builds a hot set bounded to maxBytes across all stripes.
func newHotSet(maxBytes int64) *hotSet {
	h := &hotSet{maxBytes: maxBytes}
	per := maxBytes / hotStripes
	if per < 4096 {
		per = 4096
	}
	// Size each stripe's sketch for the entries its budget can plausibly
	// hold, assuming ~1 KiB payloads; extra counters only cost bits.
	counters := nextPow2(int(per / 256))
	if counters < 1024 {
		counters = 1024
	}
	if counters > 1<<17 {
		counters = 1 << 17
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		st.maxBytes = per
		st.protCap = int64(float64(per) * protectedShare)
		st.sketch.init(counters)
	}
	return h
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hotSeed randomises hotHash per process. The hot set is in-memory only,
// so unlike shardOf (pinned FNV: it routes keys to on-disk shards) its
// hash owes no cross-process stability.
var hotSeed = maphash.MakeSeed()

// hotHash is the one hash the stripe choice and all sketch rows are
// derived from. maphash rides the runtime's hardware-accelerated string
// hash — lab keys are 64-character digests, where byte-at-a-time FNV is
// measurable on the hot-hit path.
func hotHash(key string) uint64 {
	return maphash.String(hotSeed, key)
}

func (h *hotSet) stripeFor(hash uint64) *hotStripe {
	// The shard router consumes the low bits of a different (32-bit) FNV;
	// fold the high half in so stripe choice is decorrelated from it.
	return &h.stripes[(hash>>32^hash)%hotStripes]
}

// get looks key up without taking the stripe mutex. The frequency count
// and (on a hit) the LRU touch are recorded in the read ring and applied
// at the next drain, so a hit costs one hash, one lock-free map load and
// one ring store.
func (h *hotSet) get(key string) (hotView, bool) {
	hash := hotHash(key)
	st := h.stripeFor(hash)
	if v, ok := st.entries.Load(key); ok {
		e := v.(*hotEntry)
		st.hits.Add(1)
		st.recordRead(e)
		return hotView{typeName: e.typeName, payload: e.payload, value: e.value}, true
	}
	st.misses.Add(1)
	// A miss still feeds the sketch — that is how a twice-requested
	// newcomer out-duels a stale resident at admission time.
	st.recordRead(&hotEntry{hash: hash, dead: true})
	return hotView{}, false
}

// recordRead parks a touch in the ring. When the ring fills, whoever
// notices tries (without blocking) to take the stripe mutex and drain;
// losers simply continue, overwriting the oldest undrained slot — lost
// touches only shave approximate frequency counts.
func (st *hotStripe) recordRead(e *hotEntry) {
	idx := st.ringHead.Add(1) - 1
	st.ring[idx&(hotRingSize-1)].Store(e)
	if idx+1-st.ringTail.Load() >= hotRingSize {
		if st.mu.TryLock() {
			st.drainLocked()
			st.mu.Unlock()
		}
	}
}

// drainLocked applies every parked read, oldest first: sketch increment
// always, LRU touch only for entries still resident. Stripe mutex held.
// Every mutex-holding operation drains before its own work, so a
// single-threaded get-then-add sequence observes the same sketch and LRU
// state as if each get had updated them inline.
func (st *hotStripe) drainLocked() {
	head := st.ringHead.Load()
	for tail := st.ringTail.Load(); tail < head; tail++ {
		e := st.ring[tail&(hotRingSize-1)].Swap(nil)
		st.ringTail.Store(tail + 1)
		if e == nil {
			continue // slot claimed but not yet written, or already drained
		}
		st.sketch.inc(e.hash)
		if !e.dead {
			st.touch(e)
		}
	}
}

// touch moves e to the front of its segment, promoting a probation entry
// to protected (and demoting the protected overflow back to probation).
// Stripe mutex held.
func (st *hotStripe) touch(e *hotEntry) {
	if e.protected {
		st.protected.moveToFront(e)
		return
	}
	st.probation.remove(e)
	e.protected = true
	st.protected.pushFront(e)
	st.protBytes += e.cost
	for st.protBytes > st.protCap {
		tail := st.protected.back()
		if tail == nil {
			break
		}
		st.protected.remove(tail)
		tail.protected = false
		st.probation.pushFront(tail)
		st.protBytes -= tail.cost
	}
}

// add offers (key, payload) for admission; value may carry the decoded
// form. A resident key is refreshed by node replacement (entries are
// immutable once lock-free readers can see them). Returns whether the
// entry is resident afterwards.
func (h *hotSet) add(key, typeName string, payload []byte, value any) bool {
	hash := hotHash(key)
	st := h.stripeFor(hash)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.drainLocked()
	st.sketch.inc(hash)
	if v, ok := st.entries.Load(key); ok {
		old := v.(*hotEntry)
		ne := old.clone()
		if old.payload == nil && payload != nil {
			ne.cost += int64(len(payload))
			ne.payload = payload
		}
		if value != nil {
			ne.value = value
		}
		ne.typeName = typeName
		st.replace(old, ne)
		st.touch(ne)
		return true
	}
	cost := int64(len(payload)) + int64(len(key)) + hotEntryOverhead
	return st.insert(&hotEntry{key: key, hash: hash, typeName: typeName,
		payload: payload, value: value, cost: cost})
}

// attach records the decoded value for key: on a resident entry via node
// replacement, otherwise by offering a value-only entry (costed as if it
// held the payload, since the decoded form is at least that large) for
// admission.
func (h *hotSet) attach(key string, value any, payloadLen int64) {
	hash := hotHash(key)
	st := h.stripeFor(hash)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.drainLocked()
	if v, ok := st.entries.Load(key); ok {
		old := v.(*hotEntry)
		ne := old.clone()
		ne.value = value
		st.replace(old, ne)
		return
	}
	cost := payloadLen + int64(len(key)) + hotEntryOverhead
	st.insert(&hotEntry{key: key, hash: hash, value: value, cost: cost})
}

// clone copies an entry's payload-bearing fields for node replacement;
// list links and liveness are set by replace.
func (e *hotEntry) clone() *hotEntry {
	return &hotEntry{key: e.key, hash: e.hash, typeName: e.typeName,
		payload: e.payload, value: e.value, cost: e.cost}
}

// replace swaps ne into old's position in its LRU list and the entries
// map, marking old dead so a stale ring reference cannot resurrect it.
// Stripe mutex held.
func (st *hotStripe) replace(old, ne *hotEntry) {
	ne.protected = old.protected
	l := &st.probation
	if old.protected {
		l = &st.protected
	}
	ne.prev, ne.next = old.prev, old.next
	if old.prev != nil {
		old.prev.next = ne
	} else {
		l.head = ne
	}
	if old.next != nil {
		old.next.prev = ne
	} else {
		l.tail = ne
	}
	old.prev, old.next = nil, nil
	old.dead = true
	st.entries.Store(ne.key, ne)
	st.bytes += ne.cost - old.cost
	if ne.protected {
		st.protBytes += ne.cost - old.cost
	}
}

// insert runs the admission policy and, when the candidate wins, makes
// room and links it into probation. Stripe mutex held.
func (st *hotStripe) insert(e *hotEntry) bool {
	if e.cost > st.maxBytes {
		st.rejects++
		tmHotRejects.Inc()
		return false
	}
	for st.bytes+e.cost > st.maxBytes {
		victim := st.probation.back()
		if victim == nil {
			victim = st.protected.back()
		}
		if victim == nil {
			st.rejects++
			tmHotRejects.Inc()
			return false
		}
		// TinyLFU admission: the newcomer must have been asked for at
		// least as often as the entry it would displace.
		if st.sketch.estimate(e.hash) < st.sketch.estimate(victim.hash) {
			st.rejects++
			tmHotRejects.Inc()
			return false
		}
		st.evict(victim)
		st.evicts++
		tmHotEvicts.Inc()
	}
	st.entries.Store(e.key, e)
	st.count++
	st.probation.pushFront(e)
	st.bytes += e.cost
	st.admits++
	tmHotAdmits.Inc()
	return true
}

// evict unlinks an entry and marks it dead. Stripe mutex held.
func (st *hotStripe) evict(e *hotEntry) {
	if e.protected {
		st.protected.remove(e)
		st.protBytes -= e.cost
	} else {
		st.probation.remove(e)
	}
	e.dead = true
	st.entries.Delete(e.key)
	st.count--
	st.bytes -= e.cost
}

// remove drops key if resident (Invalidate).
func (h *hotSet) remove(key string) {
	st := h.stripeFor(hotHash(key))
	st.mu.Lock()
	defer st.mu.Unlock()
	st.drainLocked()
	if v, ok := st.entries.Load(key); ok {
		st.evict(v.(*hotEntry))
	}
}

// stats sums the stripe counters.
func (h *hotSet) stats() HotStats {
	out := HotStats{MaxBytes: h.maxBytes}
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		st.drainLocked()
		out.Entries += st.count
		out.Bytes += st.bytes
		out.Hits += st.hits.Load()
		out.Misses += st.misses.Load()
		out.Admits += st.admits
		out.Rejects += st.rejects
		out.Evicts += st.evicts
		st.mu.Unlock()
	}
	return out
}

// hotList is an intrusive doubly-linked LRU list (front = most recent).
type hotList struct {
	head, tail *hotEntry
}

func (l *hotList) pushFront(e *hotEntry) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *hotList) remove(e *hotEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *hotList) moveToFront(e *hotEntry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

func (l *hotList) back() *hotEntry { return l.tail }

// cmSketch is a count-min sketch of 4-bit saturating counters, sixteen to
// a word. All rows index one shared word array; each row rehashes the key
// hash with its own odd multiplier. When the total increments since the
// last reset exceed sampleFactor times the counter count, every counter is
// halved — the classic TinyLFU aging that lets yesterday's hot keys cool
// off.
type cmSketch struct {
	words  []uint64
	mask   uint64 // counters-1 (counters is a power of two)
	incs   int
	sample int
}

const sketchSampleFactor = 8

// sketchSeeds are odd 64-bit mix constants, one per row.
var sketchSeeds = [sketchDepth]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9, 0xd6e8feb86659fd93,
}

func (c *cmSketch) init(counters int) {
	c.words = make([]uint64, counters*sketchDepth/16)
	c.mask = uint64(counters - 1)
	c.sample = counters * sketchSampleFactor
}

// slot maps (hash, row) to its word and shift.
func (c *cmSketch) slot(hash uint64, row int) (word int, shift uint) {
	h := hash * sketchSeeds[row]
	idx := (h >> 32) & c.mask
	counter := uint64(row)*(c.mask+1) + idx
	return int(counter / 16), uint(counter % 16 * 4)
}

// inc bumps the key's counter in every row, saturating at 15.
func (c *cmSketch) inc(hash uint64) {
	for row := 0; row < sketchDepth; row++ {
		w, s := c.slot(hash, row)
		if v := c.words[w] >> s & 0xf; v < 15 {
			c.words[w] += 1 << s
		}
	}
	if c.incs++; c.incs >= c.sample {
		c.age()
	}
}

// estimate returns the minimum counter across rows.
func (c *cmSketch) estimate(hash uint64) uint64 {
	min := uint64(15)
	for row := 0; row < sketchDepth; row++ {
		w, s := c.slot(hash, row)
		if v := c.words[w] >> s & 0xf; v < min {
			min = v
		}
	}
	return min
}

// age halves every counter.
func (c *cmSketch) age() {
	tmHotSketchResets.Inc()
	for i, w := range c.words {
		c.words[i] = w >> 1 & 0x7777777777777777
	}
	c.incs = 0
}
