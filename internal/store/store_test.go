package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

const testSchema = "test-schema-v1"

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, key, typ, payload string) {
	t.Helper()
	if _, err := s.Put(key, typ, []byte(payload)); err != nil {
		t.Fatal(err)
	}
}

func wantEntry(t *testing.T, s *Store, key, typ, payload string) {
	t.Helper()
	gotTyp, gotPayload, ok := s.Get(key)
	if !ok {
		t.Fatalf("key %q missing", key)
	}
	if gotTyp != typ || string(gotPayload) != payload {
		t.Fatalf("key %q = (%q, %q), want (%q, %q)", key, gotTyp, gotPayload, typ, payload)
	}
}

func wantMiss(t *testing.T, s *Store, key string) {
	t.Helper()
	if _, _, ok := s.Get(key); ok {
		t.Fatalf("key %q unexpectedly present", key)
	}
}

// refOf returns key's index entry and the path of the shard segment holding
// it (white-box: via the published snapshot).
func refOf(t *testing.T, s *Store, key string) (entryRef, string) {
	t.Helper()
	sh := s.shardFor(key)
	ref, ok := sh.state.Load().lookup(key)
	if !ok {
		t.Fatalf("key %q not indexed", key)
	}
	return ref, sh.segPath
}

// backdate rewrites key's in-memory stamp (white-box: GC reads stamps from
// the index, so tests age entries without waiting).
func backdate(t *testing.T, s *Store, key string, stamp int64) {
	t.Helper()
	sh := s.shardFor(key)
	sh.lock()
	defer sh.mu.Unlock()
	st := sh.state.Load()
	ref, ok := st.lookup(key)
	if !ok {
		t.Fatalf("key %q not indexed", key)
	}
	ref.stamp = stamp
	cloned := st.merged()
	cloned[key] = ref
	sh.state.Store(&shardState{f: st.f, index: cloned, hdrLen: st.hdrLen,
		size: st.size, dead: st.dead})
}

// totalSegBytes sums every shard segment's file size.
func totalSegBytes(t *testing.T, dir string) int64 {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, shardsDirName, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// keysInOneShard returns n distinct keys that all route to the same shard,
// for tests that need records to be neighbours in one segment.
func keysInOneShard(n int) []string {
	keys := []string{"key-000"}
	want := shardOf(keys[0])
	for i := 1; len(keys) < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if shardOf(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, "key-a", "t.A", "alpha")
	put(t, s, "key-b", "t.B", "beta")
	wantEntry(t, s, "key-a", "t.A", "alpha")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// A duplicate put reports added == false and leaves the original
	// record in place.
	sizeBefore := totalSegBytes(t, dir)
	added, err := s.Put("key-a", "t.A", []byte("alpha"))
	if err != nil || added {
		t.Fatalf("duplicate put = (%v, %v), want (false, nil)", added, err)
	}
	if got := totalSegBytes(t, dir); got != sizeBefore {
		t.Fatalf("duplicate put grew segments %d -> %d", sizeBefore, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, "key-a", "t.A", "alpha")
	wantEntry(t, s2, "key-b", "t.B", "beta")
	if s2.ResetOnOpen() {
		t.Fatal("clean reopen reported a reset")
	}
}

// TestTruncatedSegmentRecovers simulates a crash mid-append: a shard
// segment is cut inside its final record, and the next open must serve
// every earlier entry and accept new appends.
func TestTruncatedSegmentRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, "key-a", "t", "alpha")
	put(t, s, "key-b", "t", "beta")
	put(t, s, "key-c", "t", "gamma")
	_, segC := refOf(t, s, "key-c")
	s.Close()

	fi, err := os.Stat(segC)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segC, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	wantEntry(t, s2, "key-a", "t", "alpha")
	wantEntry(t, s2, "key-b", "t", "beta")
	wantMiss(t, s2, "key-c")
	// The torn tail was truncated, so the store accepts and persists new
	// entries at the recovered boundary.
	put(t, s2, "key-d", "t", "delta")
	s2.Close()

	s3 := openT(t, dir)
	defer s3.Close()
	wantEntry(t, s3, "key-b", "t", "beta")
	wantEntry(t, s3, "key-d", "t", "delta")
}

// TestFlippedPayloadByteSkipsOnlyThatEntry pins the corruption policy: a
// checksum mismatch drops the damaged entry (its cell recomputes) while
// entries before and after stay reachable.
func TestFlippedPayloadByteSkipsOnlyThatEntry(t *testing.T) {
	// All three keys in one shard, so the damaged record sits mid-segment
	// (a bad-CRC record at a segment tail is truncated as torn instead).
	keys := keysInOneShard(3)
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, keys[0], "t", "alpha")
	put(t, s, keys[1], "t", "beta")
	put(t, s, keys[2], "t", "gamma")
	ref, segB := refOf(t, s, keys[1])
	payloadOff := ref.off + fixedHdrLen + int64(len(keys[1])) + int64(len("t"))
	s.Close()

	f, err := os.OpenFile(segB, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	if _, err := f.ReadAt(buf, payloadOff); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, payloadOff); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, keys[0], "t", "alpha")
	wantMiss(t, s2, keys[1]) // checksum mismatch: recompute, not error
	wantEntry(t, s2, keys[2], "t", "gamma")

	res, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrupt != 1 || res.Live != 2 || res.Records != 3 {
		t.Fatalf("verify = %+v, want 3 records / 2 live / 1 corrupt", res)
	}

	// Recomputing the damaged cell repairs the store.
	put(t, s2, keys[1], "t", "beta")
	wantEntry(t, s2, keys[1], "t", "beta")
}

// TestCorruptLengthFieldResyncs pins the scan's resynchronisation: damage
// to a record's length fields desynchronises parsing at that record, but
// the scan recovers at the next record's magic marker, so later entries in
// the same shard stay reachable instead of being truncated away.
func TestCorruptLengthFieldResyncs(t *testing.T) {
	keys := keysInOneShard(3)
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, keys[0], "t", "alpha")
	put(t, s, keys[1], "t", "beta")
	put(t, s, keys[2], "t", "gamma")
	ref, seg := refOf(t, s, keys[1])
	s.Close()

	// Corrupt the middle record's payloadLen (offset 8 within the record):
	// the claimed record extent becomes nonsense, so parsing cannot simply
	// skip it.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEE, 0x0F}, ref.off+8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, keys[0], "t", "alpha")
	wantMiss(t, s2, keys[1])
	wantEntry(t, s2, keys[2], "t", "gamma") // survived the desync

	res, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 2 || res.GarbageBytes == 0 || res.TornBytes != 0 {
		t.Fatalf("verify = %+v, want 2 live with mid-segment garbage", res)
	}

	// GC compacts the garbage away and keeps the survivors.
	if _, err := s2.GC(GCPolicy{}); err != nil {
		t.Fatal(err)
	}
	res, err = s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 2 || res.GarbageBytes != 0 || res.Corrupt != 0 {
		t.Fatalf("post-gc verify = %+v", res)
	}
	wantEntry(t, s2, keys[2], "t", "gamma")
}

// TestSchemaMismatchInvalidates pins version-mismatch invalidation: results
// persisted under an older simulator/result schema are discarded wholesale.
func TestSchemaMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: "sim-v1"})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "key-a", "t", "alpha")
	s.Close()

	// Read-only opens refuse rather than reset.
	if _, err := Open(dir, Options{Schema: "sim-v2", ReadOnly: true}); err == nil {
		t.Fatal("read-only open under a new schema succeeded")
	}

	s2, err := Open(dir, Options{Schema: "sim-v2"})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.ResetOnOpen() {
		t.Fatal("schema change did not report a reset")
	}
	if s2.Len() != 0 {
		t.Fatalf("stale entries survived the schema change: %d", s2.Len())
	}
	wantMiss(t, s2, "key-a")
	put(t, s2, "key-a", "t", "alpha-v2")
	s2.Close()

	s3, err := Open(dir, Options{Schema: "sim-v2"})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	wantEntry(t, s3, "key-a", "t", "alpha-v2")
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, "key-a", "t", "alpha")
	s.Close()

	ro, err := Open(dir, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	wantEntry(t, ro, "key-a", "t", "alpha")
	if _, err := ro.Put("key-b", "t", []byte("beta")); err == nil {
		t.Fatal("read-only store accepted a put")
	}
	if _, err := ro.GC(GCPolicy{}); err == nil {
		t.Fatal("read-only store accepted a gc")
	}
}

// TestSharedDirectory exercises the cross-process contract in-process: two
// Stores on one directory, concurrent writers and readers, every entry
// visible to both afterwards. Run under -race in CI.
func TestSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir)
	defer s1.Close()
	s2 := openT(t, dir)
	defer s2.Close()

	const n = 40
	var wg sync.WaitGroup
	for w, s := range []*Store{s1, s2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Overlapping key ranges: half the keys are written by both.
				key := fmt.Sprintf("key-%03d", i+w*n/2)
				if _, err := s.Put(key, "t", []byte("payload-"+key)); err != nil {
					t.Error(err)
					return
				}
				s.Get(fmt.Sprintf("key-%03d", i)) // interleave reads
			}
		}()
	}
	wg.Wait()

	for _, s := range []*Store{s1, s2} {
		for i := 0; i < n+n/2; i++ {
			key := fmt.Sprintf("key-%03d", i)
			wantEntry(t, s, key, "t", "payload-"+key)
		}
	}
	// Both stores converged on one record per key.
	res, err := s1.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != n+n/2 || res.Corrupt != 0 {
		t.Fatalf("verify = %+v, want %d clean records", res, n+n/2)
	}
}

// TestCrossStoreVisibility pins the mid-run tail rescan: entries appended
// by one store are found by a sibling that had already missed them.
func TestCrossStoreVisibility(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir)
	defer s1.Close()
	s2 := openT(t, dir)
	defer s2.Close()
	wantMiss(t, s2, "key-a")
	put(t, s1, "key-a", "t", "alpha")
	wantEntry(t, s2, "key-a", "t", "alpha")
}

func TestGCAge(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	put(t, s, "key-old", "t", "old")
	put(t, s, "key-new", "t", "new")
	backdate(t, s, "key-old", time.Now().Add(-48*time.Hour).Unix())

	res, err := s.GC(GCPolicy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 1 || res.Evicted != 1 {
		t.Fatalf("gc = %+v, want 1 kept / 1 evicted", res)
	}
	wantMiss(t, s, "key-old")
	wantEntry(t, s, "key-new", "t", "new")
}

func TestGCSizeEvictsOldestAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	big := string(bytes.Repeat([]byte("x"), 1000))
	for i := 0; i < 5; i++ {
		put(t, s, fmt.Sprintf("key-%d", i), "t", big)
		// Distinct stamps so age ordering is well defined.
		backdate(t, s, fmt.Sprintf("key-%d", i), time.Now().Add(time.Duration(i-10)*time.Hour).Unix())
	}
	// Stale duplicates do not exist (puts dedupe), so the store holds 5
	// records; keep roughly two records' worth. MaxBytes is a global
	// bound, applied across shards.
	res, err := s.GC(GCPolicy{MaxBytes: 2200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 2 || res.Evicted != 3 {
		t.Fatalf("gc = %+v, want 2 kept / 3 evicted", res)
	}
	if res.BytesAfter >= res.BytesBefore {
		t.Fatalf("compaction did not shrink the segments: %+v", res)
	}
	// The newest two survive.
	wantEntry(t, s, "key-4", "t", big)
	wantEntry(t, s, "key-3", "t", big)
	wantMiss(t, s, "key-0")

	// The compacted segments must be fully valid and reopenable.
	verify, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if verify.Records != 2 || verify.Corrupt != 0 || verify.TornBytes != 0 {
		t.Fatalf("post-gc verify = %+v", verify)
	}
}

func TestExportImport(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := openT(t, dirA)
	defer a.Close()
	put(t, a, "key-a", "t.A", "alpha")
	put(t, a, "key-b", "t.B", "beta")

	var bundle bytes.Buffer
	n, err := a.Export(&bundle)
	if err != nil || n != 2 {
		t.Fatalf("export = (%d, %v)", n, err)
	}

	b := openT(t, dirB)
	defer b.Close()
	put(t, b, "key-b", "t.B", "beta") // pre-existing: must be skipped
	added, skipped, err := b.Import(bytes.NewReader(bundle.Bytes()))
	if err != nil || added != 1 || skipped != 1 {
		t.Fatalf("import = (%d, %d, %v), want (1, 1, nil)", added, skipped, err)
	}
	wantEntry(t, b, "key-a", "t.A", "alpha")
	wantEntry(t, b, "key-b", "t.B", "beta")

	// A bundle from a different schema generation is rejected.
	other, err := Open(t.TempDir(), Options{Schema: "other-schema"})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, _, err := other.Import(bytes.NewReader(bundle.Bytes())); err == nil {
		t.Fatal("import accepted a bundle from another schema")
	}

	// A corrupted bundle entry is rejected before anything is admitted.
	raw := bundle.Bytes()
	corrupt := bytes.Replace(raw, []byte("alpha"), []byte("alpHa"), 1)
	fresh, err := Open(t.TempDir(), Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, _, err := fresh.Import(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("import accepted a corrupted record")
	}
}

func TestEntriesAndStats(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	put(t, s, "key-a", "t.A", "alpha")
	put(t, s, "key-b", "t.B", "beta")
	put(t, s, "key-c", "t.A", "gamma")

	entries := s.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Stamp order, key tiebreak: all three share a stamp here, so keys
	// decide.
	if entries[0].Key != "key-a" || entries[2].Key != "key-c" {
		t.Fatalf("entries out of order: %+v", entries)
	}
	sum := s.Stats()
	if sum.Entries != 3 || sum.PerType["t.A"] != 2 || sum.PerType["t.B"] != 1 {
		t.Fatalf("stats = %+v", sum)
	}
	if sum.Bytes != totalSegBytes(t, dir) {
		t.Fatalf("stats bytes = %d, files = %d", sum.Bytes, totalSegBytes(t, dir))
	}
	if sum.Shards != numShards || sum.Layout != "sharded" {
		t.Fatalf("stats layout = %d/%q", sum.Shards, sum.Layout)
	}
}

// TestReadOnlyOpenOfBareSegment: a directory holding only a copied v1
// results.seg (no LOCK file, no shards/) is inspectable read-only,
// lock-free, through the legacy single-segment mode.
func TestReadOnlyOpenOfBareSegment(t *testing.T) {
	// Synthesise a v1 segment directly: the current layout is sharded, so
	// a legacy segment is built from records.
	seg := encodeHeader(testSchema)
	seg = append(seg, encodeRecord("key-a", "t", []byte("alpha"), time.Now().Unix())...)

	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, v1SegmentName), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dst, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	wantEntry(t, ro, "key-a", "t", "alpha")
	if res, err := ro.Verify(); err != nil || res.Live != 1 || res.Corrupt != 0 {
		t.Fatalf("verify = (%+v, %v)", res, err)
	}
	if sum := ro.Stats(); sum.Layout != "v1" || sum.Shards != 1 {
		t.Fatalf("stats layout = %q/%d, want v1/1", sum.Layout, sum.Shards)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{Schema: "s"}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{Schema: "s", ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing store succeeded")
	}
}

func TestPutValidation(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	if _, err := s.Put("", "t", nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := s.Put(string(bytes.Repeat([]byte("k"), maxKeyLen+1)), "t", nil); err == nil {
		t.Fatal("oversized key accepted")
	}
	if _, err := s.Put("k", "t", bytes.Repeat([]byte("p"), maxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// Empty payloads are legal (a unit result).
	put(t, s, "key-empty", "t", "")
	wantEntry(t, s, "key-empty", "t", "")
}

// TestInvalidateAllowsReplacement: dropping a key lets a new Put append a
// record that last-wins at every future scan, in this and sibling handles.
func TestInvalidateAllowsReplacement(t *testing.T) {
	keys := keysInOneShard(2)
	stale, probe := keys[0], keys[1]
	dir := t.TempDir()
	s := openT(t, dir)
	sib := openT(t, dir)
	defer sib.Close()
	put(t, s, stale, "t", "stale")
	wantEntry(t, sib, stale, "t", "stale")

	s.Invalidate(stale)
	wantMiss(t, s, stale)
	added, err := s.Put(stale, "t", []byte("fresh"))
	if err != nil || !added {
		t.Fatalf("replacement put = (%v, %v), want (true, nil)", added, err)
	}
	wantEntry(t, s, stale, "t", "fresh")
	// A sibling handle keeps serving the still-intact old record until its
	// next tail rescan of that shard (any miss routed there triggers one),
	// which adopts the replacement...
	wantMiss(t, sib, probe)
	wantEntry(t, sib, stale, "t", "fresh")
	s.Close()
	// ...and so does a fresh open (the later record wins the index).
	s2 := openT(t, dir)
	defer s2.Close()
	wantEntry(t, s2, stale, "t", "fresh")
}

// TestInBoundsCorruptLengthResyncs is the sharper variant of the length
// corruption test: the corrupted extent stays inside the segment and would
// swallow the following valid record if the scan trusted it.
func TestInBoundsCorruptLengthResyncs(t *testing.T) {
	keys := keysInOneShard(4)
	dir := t.TempDir()
	s := openT(t, dir)
	put(t, s, keys[0], "t", "alpha")
	put(t, s, keys[1], "t", "beta")
	put(t, s, keys[2], "t", "gamma")
	put(t, s, keys[3], "t", "delta")
	ref, seg := refOf(t, s, keys[0])
	s.Close()

	// Grow the first record's payloadLen so its claimed extent ends inside
	// the third record: still within the segment, so the record parses as
	// a checksum failure rather than a torn tail.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{byte(len("alpha") + 40)}, ref.off+8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	wantMiss(t, s2, keys[0])
	wantEntry(t, s2, keys[1], "t", "beta") // inside the bogus claimed extent
	wantEntry(t, s2, keys[2], "t", "gamma")
	wantEntry(t, s2, keys[3], "t", "delta")
	res, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Live != 3 || res.Corrupt != 1 {
		t.Fatalf("verify = %+v, want 3 live / 1 corrupt", res)
	}
}

// makeEmptyShardLayout simulates the window where a writer has created the
// sharded layout's files but not yet written their headers.
func makeEmptyShardLayout(t *testing.T, dir string) {
	t.Helper()
	shardsDir := filepath.Join(dir, shardsDirName)
	if err := os.MkdirAll(shardsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numShards; i++ {
		if err := os.WriteFile(shardSegPath(shardsDir, i), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadOnlyOpenOfEmptySegmentAdoptsHeaderLater pins the race where a
// read-only handle opens in the window between a writer creating the
// segment files and writing their headers: once bytes appear, the handle
// must parse (and schema-check) the header instead of scanning it as
// garbage.
func TestReadOnlyOpenOfEmptySegmentAdoptsHeaderLater(t *testing.T) {
	dir := t.TempDir()
	makeEmptyShardLayout(t, dir)
	ro, err := Open(dir, Options{Schema: testSchema, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()

	w := openT(t, dir)
	defer w.Close()
	put(t, w, "key-a", "t", "alpha")

	wantEntry(t, ro, "key-a", "t", "alpha")
	res, err := ro.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || res.GarbageBytes != 0 || res.Corrupt != 0 {
		t.Fatalf("verify through late-adopted header = %+v", res)
	}

	// The same race against a writer of a different schema must refuse,
	// not serve.
	dir2 := t.TempDir()
	makeEmptyShardLayout(t, dir2)
	ro2, err := Open(dir2, Options{Schema: "other-schema", ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro2.Close()
	w2 := openT(t, dir2)
	defer w2.Close()
	put(t, w2, "key-a", "t", "alpha")
	wantMiss(t, ro2, "key-a")
	if _, err := ro2.Verify(); err == nil {
		t.Fatal("verify served a store whose schema never matched")
	}
}

// TestSegmentResetUnderLiveHandle pins the shrink guard: when another
// process resets the store (schema change), a stale handle must refuse
// to append at its old offsets or serve its old index.
func TestSegmentResetUnderLiveHandle(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, Options{Schema: "sim-v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	put(t, old, "key-a", "t", "alpha")
	put(t, old, "key-b", "t", "beta")

	// A new-schema process resets the store.
	fresh, err := Open(dir, Options{Schema: "sim-v2"})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()

	// The stale handle must fail the write loudly, not punch a hole.
	if _, err := old.Put("key-c", "t", []byte("gamma")); err == nil {
		t.Fatal("stale handle accepted a put into a reset segment")
	}
	size, err := os.Stat(old.shardFor("key-c").segPath)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := int64(len(encodeHeader("sim-v2"))); size.Size() != hdr {
		t.Fatalf("segment is %d bytes after refused put, want bare header %d", size.Size(), hdr)
	}
	// Its stale index self-heals to misses rather than serving vanished
	// bytes.
	wantMiss(t, old, "key-a")
}
