// Package store is the on-disk half of the experiment memoization system:
// a content-addressed, crash-safe result store that outlives the process.
// The in-memory memo of internal/lab deduplicates cells within one run;
// this store persists them across runs, commands and machines, so an
// interrupted `validate -grid paper` campaign resumes with only the missing
// cells simulated and a finished campaign can be exported to a colleague.
//
// Layout: a cache directory holds a shards/ subdirectory with one
// append-only segment file and one lock file per key-hash shard (plus a
// LAYOUT stamp naming the shard routing), and a store-wide LOCK file used
// only for layout-level operations — fresh creation and migration of the
// legacy v1 single-segment layout, which a read-write Open upgrades in
// place (see migrate.go). Each segment starts with a header naming the
// binary format and the caller's schema version (the simulator/result
// version stamp); entries follow as self-delimiting records:
//
//	entryMagic  uint32   per-record sync marker
//	keyLen      uint16
//	typeLen     uint16
//	payloadLen  uint32
//	stamp       int64    unix seconds at write (GC age input)
//	key         keyLen bytes (content-addressed: a lab.Key hex digest)
//	typeName    typeLen bytes (decoder selector, e.g. "core.Metrics")
//	payload     payloadLen bytes
//	crc         uint32   IEEE CRC-32 of everything above
//
// Crash safety is by construction: records are appended with a single
// write under an exclusive per-shard lock, so the only possible
// inconsistency is a torn record at a segment's tail (a crashed writer),
// which Open and the next writer truncate away. A corrupted record body
// (bit rot, a flipped byte) fails its checksum and is skipped — the key
// simply misses and its cell recomputes — while records after it stay
// reachable: even when the damage hits a length field and desynchronises
// parsing, the scan resynchronises on the next per-record magic marker
// instead of giving up on the rest of the segment. Stale schema versions
// discard the whole store at Open: results produced by a different
// simulator version must never be served.
//
// Concurrency: one Store is safe for concurrent use by any number of
// goroutines, and any number of processes (or Stores in one process) may
// share a directory. Writers to different shards proceed in parallel —
// each shard has its own exclusive file lock — and writers to one shard
// serialise through it. The hit path is lock-free: every shard publishes
// its index as an immutable snapshot (swapped atomically on append,
// rescan and compaction), so a Get of an indexed key acquires no mutex
// and no file lock; committed bytes are immutable, which is what makes
// the unlocked read sound. An index miss falls to a locked slow path
// whose shared-lock tail rescan makes results appended by sibling
// processes visible mid-run.
//
// In front of the shards sits an optional admission-controlled in-memory
// hot set (Options.HotBytes; see hotset.go): repeated reads of the same
// keys are served from memory without the pread, checksum re-verification
// or decode, under TinyLFU admission so one-shot scans cannot flush the
// actually-hot working set.
package store

import (
	"archive/tar"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"activemem/internal/telemetry"
)

// Options configures Open.
type Options struct {
	// Schema is the result schema / simulator version stamp (see
	// lab.ResultSchemaVersion). A read-write Open of a store written under
	// a different schema discards its contents — stale results
	// self-invalidate; a read-only Open reports an error instead.
	Schema string
	// ReadOnly opens for inspection: Get and the maintenance scans work,
	// Put/GC/Import fail, and torn tails are tolerated rather than
	// truncated. A read-only Open of a legacy v1 directory serves it in
	// place instead of migrating.
	ReadOnly bool
	// HotBytes bounds the in-memory hot set in front of the shards; zero
	// disables the memory tier entirely (every Get goes to the segment).
	HotBytes int64
}

// opCounters are the store's cumulative operation counters. They exist so
// tests (and curious callers) can verify the concurrency contract — e.g.
// that a Get of an indexed key acquires no mutex and no file lock — from
// the outside.
type opCounters struct {
	gets           atomic.Uint64
	puts           atomic.Uint64
	hotHits        atomic.Uint64
	snapshotHits   atomic.Uint64
	slowGets       atomic.Uint64
	mutexAcqs      atomic.Uint64
	flockAcqs      atomic.Uint64
	groupCommits   atomic.Uint64
	groupedAppends atomic.Uint64
}

// OpCounters is a point-in-time snapshot of the store's operation
// counters.
type OpCounters struct {
	// Gets and Puts count public Get/GetDecoded/Put calls.
	Gets, Puts uint64
	// HotHits counts gets served by the in-memory hot set: no disk
	// access, no mutex — the hit path is a lock-free map load plus a
	// read-ring store (policy work is drained by later locked ops).
	HotHits uint64
	// SnapshotHits counts gets served lock-free from a shard's published
	// index snapshot: no mutex, no file lock, one pread.
	SnapshotHits uint64
	// SlowGets counts gets that fell to a shard's locked slow path (index
	// misses and verification failures).
	SlowGets uint64
	// MutexAcqs counts shard mutex acquisitions across all operations.
	MutexAcqs uint64
	// FlockAcqs counts cross-process file-lock acquisitions (shard locks
	// and the layout lock).
	FlockAcqs uint64
	// GroupCommits counts commit-log fsyncs; GroupedAppends counts the
	// appends those fsyncs acknowledged. Their ratio is the achieved
	// group-commit batch size: GroupedAppends/GroupCommits ≈ 1 means every
	// put paid its own fsync, larger means concurrent puts amortised it.
	GroupCommits, GroupedAppends uint64
}

// Store is an open result store. Methods are safe for concurrent use.
type Store struct {
	dir      string
	schema   string
	readOnly bool
	// legacy marks a read-only open of a v1 single-segment directory,
	// served in place through one shard.
	legacy bool
	reset  bool
	// migrated reports that this Open upgraded a v1 layout (migrate.go).
	migrated        bool
	migratedEntries int

	shards []*shard
	sg     *syncGroup
	hot    *hotSet
	// overlay, on read-only opens, indexes the commit log in memory so
	// acknowledged-but-uncheckpointed records are served without the
	// writable replay (see overlay.go); nil on writable opens, which
	// recover the log into the segments instead.
	overlay *walOverlay
	ops     opCounters
	dirLock *os.File
}

// Open opens (creating if necessary, unless read-only) the store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if opts.Schema == "" {
		return nil, fmt.Errorf("store: empty schema version")
	}
	s := &Store{dir: dir, schema: opts.Schema, readOnly: opts.ReadOnly}
	if opts.HotBytes > 0 {
		s.hot = newHotSet(opts.HotBytes)
	}

	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		lockPath := filepath.Join(dir, lockName)
		var err error
		if s.dirLock, err = os.OpenFile(lockPath, os.O_RDWR|os.O_CREATE, 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		// Layout decisions (fresh creation, v1 migration, stale tmp-dir
		// cleanup) are store-wide and must not race sibling processes
		// making the same decision; the per-shard locks only exist after
		// this succeeds.
		s.ops.flockAcqs.Add(1)
		if err := flockHeld(s.dirLock, lockPath, true, func() error {
			return s.prepareLayoutLocked()
		}); err != nil {
			s.dirLock.Close()
			return nil, err
		}
	} else if fi, err := os.Stat(filepath.Join(dir, shardsDirName)); err != nil || !fi.IsDir() {
		// No sharded layout: serve a legacy v1 directory in place (or fail
		// the way opening its missing segment fails).
		s.legacy = true
	} else if err := checkLayoutStamp(filepath.Join(dir, shardsDirName, layoutName)); err != nil {
		return nil, err
	}

	if err := s.openShards(); err != nil {
		if s.dirLock != nil {
			s.dirLock.Close()
		}
		return nil, err
	}
	for _, sh := range s.shards {
		if sh.reset {
			s.reset = true
		}
	}
	return s, nil
}

// openShards opens every shard of the active layout and joins them into
// one group-commit domain.
func (s *Store) openShards() error {
	if s.legacy {
		sh, err := openShard(filepath.Join(s.dir, v1SegmentName),
			filepath.Join(s.dir, lockName), s.schema, s.readOnly, &s.ops)
		if err != nil {
			return err
		}
		s.shards = []*shard{sh}
	} else {
		shardsDir := filepath.Join(s.dir, shardsDirName)
		s.shards = make([]*shard, 0, numShards)
		for i := 0; i < numShards; i++ {
			sh, err := openShard(shardSegPath(shardsDir, i), shardLockPath(shardsDir, i),
				s.schema, s.readOnly, &s.ops)
			if err != nil {
				for _, prev := range s.shards {
					prev.closeFiles()
				}
				return err
			}
			s.shards = append(s.shards, sh)
		}
	}
	s.sg = &syncGroup{shards: s.shards}
	for _, sh := range s.shards {
		sh.sg = s.sg
	}
	if !s.readOnly {
		w, err := openWAL(filepath.Join(s.dir, shardsDirName), s.schema, &s.ops)
		if err != nil {
			for _, sh := range s.shards {
				sh.closeFiles()
			}
			return err
		}
		s.sg.w = w
		// Replay commits a crash left unreplicated into their segments,
		// then truncate the log — this open's puts start from a clean one.
		if err := s.sg.recover(); err != nil {
			w.closeFiles()
			for _, sh := range s.shards {
				sh.closeFiles()
			}
			return err
		}
	} else if !s.legacy {
		// Read-only opens may not replay the log into the segments; an
		// in-memory overlay over commit.log serves what a crash left
		// acknowledged but uncheckpointed. (Legacy v1 directories predate
		// the log entirely.)
		ov, err := openWALOverlay(filepath.Join(s.dir, shardsDirName), s.schema)
		if err != nil {
			for _, sh := range s.shards {
				sh.closeFiles()
			}
			return err
		}
		s.overlay = ov
	}
	return nil
}

func shardSegPath(shardsDir string, i int) string {
	return filepath.Join(shardsDir, fmt.Sprintf("shard-%02d.seg", i))
}

func shardLockPath(shardsDir string, i int) string {
	return filepath.Join(shardsDir, fmt.Sprintf("shard-%02d.lock", i))
}

// checkLayoutStamp verifies the LAYOUT file matches this binary's shard
// routing. A missing stamp (an interrupted creation) passes — the shards
// themselves still verify — but a conflicting one means the directory was
// written with a different shard count and every key would route wrong.
func checkLayoutStamp(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	if string(b) != layoutStamp {
		return fmt.Errorf("store: %s does not match this binary's shard routing (have %q, want %q)",
			path, strings.TrimSpace(string(b)), strings.TrimSpace(layoutStamp))
	}
	return nil
}

// shardFor routes a key to its shard.
func (s *Store) shardFor(key string) *shard {
	if s.legacy {
		return s.shards[0]
	}
	return s.shards[shardOf(key)]
}

// shardIdx is the key's shard index for telemetry labelling (0 for a
// legacy single-shard layout, matching where the op actually lands).
func (s *Store) shardIdx(key string) int {
	if s.legacy {
		return 0
	}
	return shardOf(key)
}

// Get returns the entry for key, or ok == false when it is absent or its
// record fails verification. The hot set is consulted first; a disk hit is
// offered back to it for admission. A shard-index miss rescans that
// shard's tail, so entries appended by other processes sharing the
// directory are found.
func (s *Store) Get(key string) (typeName string, payload []byte, ok bool) {
	s.ops.gets.Add(1)
	tmGets.Inc()
	var startNs int64
	if telemetry.Active() {
		startNs = telemetry.NowNs()
		defer func() { tmGetSeconds.Observe(s.shardIdx(key), telemetry.NowNs()-startNs) }()
	}
	if s.hot != nil {
		if v, hit := s.hot.get(key); hit && v.payload != nil {
			s.ops.hotHits.Add(1)
			tmHotHits.Inc()
			return v.typeName, v.payload, true
		}
	}
	typeName, payload, ok = s.shardFor(key).get(key)
	if !ok && s.overlay != nil {
		// A key the segment scan did not surface may still sit in the
		// commit log: acknowledged by a crashed writer, never checkpointed.
		typeName, payload, ok = s.overlay.get(key)
	}
	if ok && s.hot != nil {
		s.hot.add(key, typeName, payload, nil)
	}
	return typeName, payload, ok
}

// GetDecoded returns the decoded value a previous AddDecoded attached to
// key, if the hot set still holds it. It is the fastest tier: no disk
// read, no verification, no decode.
func (s *Store) GetDecoded(key string) (any, bool) {
	if s.hot == nil {
		return nil, false
	}
	s.ops.gets.Add(1)
	tmGets.Inc()
	if v, hit := s.hot.get(key); hit && v.value != nil {
		s.ops.hotHits.Add(1)
		tmHotHits.Inc()
		return v.value, true
	}
	return nil, false
}

// AddDecoded offers key's decoded value to the hot set, so future
// GetDecoded calls skip the decode as well as the disk. payloadLen (the
// encoded size) stands in as the admission cost. Decoded values are shared
// across callers and must be treated as immutable.
func (s *Store) AddDecoded(key string, value any, payloadLen int64) {
	if s.hot == nil || value == nil {
		return
	}
	s.hot.attach(key, value, payloadLen)
}

// Put appends an entry to the key's shard, reporting whether it wrote: a
// key already present is left untouched and reports false (results are
// content-addressed — same key, same value — so concurrent writers that
// raced on a computation converge on one record).
func (s *Store) Put(key, typeName string, payload []byte) (added bool, err error) {
	if len(key) == 0 || len(key) > maxKeyLen || len(typeName) > maxTypeLen {
		return false, fmt.Errorf("store: bad key/type length %d/%d", len(key), len(typeName))
	}
	if len(payload) > maxPayload {
		return false, fmt.Errorf("store: payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	s.ops.puts.Add(1)
	tmPuts.Inc()
	var startNs int64
	if telemetry.Active() {
		startNs = telemetry.NowNs()
		defer func() { tmPutSeconds.Observe(s.shardIdx(key), telemetry.NowNs()-startNs) }()
	}
	added, err = s.shardFor(key).put(key, typeName, payload, time.Now().Unix())
	if err == nil && s.hot != nil {
		s.hot.add(key, typeName, payload, nil)
	}
	return added, err
}

// Invalidate drops key from its shard's index (so the next Put for it
// appends a fresh record, which last-wins over the old one at every future
// scan) and from the hot set. The executor's disk tier uses it when a
// checksum-valid record fails to decode — a stale payload encoding that,
// left in place, would force every future run to recompute the cell
// without ever being able to repair it.
func (s *Store) Invalidate(key string) {
	if s.hot != nil {
		s.hot.remove(key)
	}
	s.shardFor(key).invalidate(key)
}

// Sync is a durability barrier: it checkpoints the commit log, after
// which every acknowledged put is durable in its own segment, the log is
// empty, and no deferred writeback is pending. Campaign tools call it
// before handing a cache directory to something that bypasses this
// process (a snapshot, an rsync, a read-only consumer).
func (s *Store) Sync() error {
	if s.sg != nil && s.sg.w != nil {
		return s.sg.checkpoint()
	}
	return nil
}

// Close checkpoints the commit log (making every segment durable on its
// own and truncating the log) and releases the store's file handles.
func (s *Store) Close() error {
	var err error
	if s.sg != nil && s.sg.w != nil {
		err = s.sg.checkpoint()
		if cerr := s.sg.w.closeFiles(); err == nil {
			err = cerr
		}
	}
	for _, sh := range s.shards {
		sh.lock()
		if cerr := sh.closeFiles(); err == nil {
			err = cerr
		}
		sh.mu.Unlock()
	}
	if s.overlay != nil {
		if cerr := s.overlay.close(); err == nil {
			err = cerr
		}
	}
	if s.dirLock != nil {
		if cerr := s.dirLock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Schema returns the schema version the store was opened with.
func (s *Store) Schema() string { return s.schema }

// Len returns the number of live entries across all shards, plus any
// overlay-only entries a read-only open found in the commit log.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.state.Load().live()
	}
	n += len(s.overlayOnlyKeys())
	return n
}

// overlayOnlyKeys returns the overlay keys no shard index surfaces — the
// records only the commit log still holds. Nil without an overlay.
func (s *Store) overlayOnlyKeys() []string {
	if s.overlay == nil {
		return nil
	}
	var keys []string
	for k := range s.overlay.index {
		if _, hit := s.shardFor(k).state.Load().lookup(k); !hit {
			keys = append(keys, k)
		}
	}
	return keys
}

// ResetOnOpen reports whether Open discarded previous contents because
// their format or schema version did not match.
func (s *Store) ResetOnOpen() bool { return s.reset }

// MigratedOnOpen reports whether this Open upgraded a legacy v1
// single-segment directory to the sharded layout, and how many entries it
// carried over.
func (s *Store) MigratedOnOpen() (bool, int) { return s.migrated, s.migratedEntries }

// Counters returns a snapshot of the store's operation counters.
func (s *Store) Counters() OpCounters {
	return OpCounters{
		Gets:           s.ops.gets.Load(),
		Puts:           s.ops.puts.Load(),
		HotHits:        s.ops.hotHits.Load(),
		SnapshotHits:   s.ops.snapshotHits.Load(),
		SlowGets:       s.ops.slowGets.Load(),
		MutexAcqs:      s.ops.mutexAcqs.Load(),
		FlockAcqs:      s.ops.flockAcqs.Load(),
		GroupCommits:   s.ops.groupCommits.Load(),
		GroupedAppends: s.ops.groupedAppends.Load(),
	}
}

// HotStats returns the hot set's counters; the zero value when the memory
// tier is disabled.
func (s *Store) HotStats() HotStats {
	if s.hot == nil {
		return HotStats{}
	}
	return s.hot.stats()
}

// EntryInfo describes one live entry.
type EntryInfo struct {
	Key          string
	Type         string
	PayloadBytes int
	Stamp        time.Time
}

// keyedRef pairs a key with its index entry.
type keyedRef struct {
	key string
	ref entryRef
}

// sortRefsByOff orders refs by segment offset (one shard's write order).
func sortRefsByOff(refs []keyedRef) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].ref.off < refs[j].ref.off })
}

// Entries lists live entries ordered by write stamp (oldest first), with
// the key as tiebreak: with the keyspace spread over shards there is no
// single segment order anymore, so the stamp is the one global ordering
// the store can still promise.
func (s *Store) Entries() []EntryInfo {
	var out []EntryInfo
	for _, sh := range s.shards {
		for k, ref := range sh.state.Load().merged() {
			out = append(out, EntryInfo{Key: k, Type: ref.typeName,
				PayloadBytes: ref.payloadLen, Stamp: time.Unix(ref.stamp, 0)})
		}
	}
	for _, k := range s.overlayOnlyKeys() {
		ref := s.overlay.index[k]
		out = append(out, EntryInfo{Key: k, Type: ref.typeName,
			PayloadBytes: ref.payloadLen, Stamp: time.Unix(ref.stamp, 0)})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Stamp.Equal(out[j].Stamp) {
			return out[i].Stamp.Before(out[j].Stamp)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Summary aggregates the store's state.
type Summary struct {
	Dir     string
	Schema  string
	Entries int
	// Bytes is the total segment file size (headers, live entries, and any
	// stale or corrupt records GC has not yet compacted away).
	Bytes          int64
	PerType        map[string]int
	Oldest, Newest time.Time
	// Shards is the number of segment shards (1 for a legacy v1 directory
	// opened read-only).
	Shards int
	// Layout names the on-disk layout: "sharded" or "v1".
	Layout string
}

// Stats returns a summary of the store.
func (s *Store) Stats() Summary {
	sum := Summary{Dir: s.dir, Schema: s.schema, PerType: map[string]int{},
		Shards: len(s.shards), Layout: "sharded"}
	if s.legacy {
		sum.Layout = "v1"
	}
	for _, sh := range s.shards {
		st := sh.state.Load()
		if fi, err := st.f.Stat(); err == nil {
			sum.Bytes += fi.Size()
		}
		sum.Entries += st.live()
		for _, ref := range st.merged() {
			sum.PerType[ref.typeName]++
			t := time.Unix(ref.stamp, 0)
			if sum.Oldest.IsZero() || t.Before(sum.Oldest) {
				sum.Oldest = t
			}
			if t.After(sum.Newest) {
				sum.Newest = t
			}
		}
	}
	return sum
}

// VerifyResult reports a full-store checksum scan.
type VerifyResult struct {
	// Records is the number of complete records parsed (live + stale).
	Records int
	// Live is the number of currently reachable entries.
	Live int
	// Corrupt counts records whose checksum failed.
	Corrupt int
	// TornBytes is the total length of unparseable segment tails, zero
	// when every segment ends cleanly.
	TornBytes int64
	// GarbageBytes counts mid-segment bytes the scan had to resynchronise
	// past (e.g. a record whose length fields were corrupted).
	GarbageBytes int64
	// LogRecords is the number of complete records in the commit log
	// (zero in the checkpointed steady state), LogLive how many entries
	// are reachable only through the log — acknowledged puts a crash left
	// out of the segments, which a writable open replays — and LogCorrupt
	// how many log records failed their checksum. A torn log tail is not
	// damage: it is an append that was never acknowledged.
	LogRecords, LogLive, LogCorrupt int
}

// Verify re-reads every record in every shard and checks its checksum,
// then scans the commit log the same way: after a crash the log is the
// only home of acknowledged-but-uncheckpointed puts, so a verify that
// skipped it would vouch for less than Get serves.
func (s *Store) Verify() (VerifyResult, error) {
	var res VerifyResult
	for _, sh := range s.shards {
		if err := sh.verify(&res); err != nil {
			return res, err
		}
	}
	if err := s.verifyLog(&res); err != nil {
		return res, err
	}
	// Re-read every overlay-only record (read-only opens of a crashed
	// store), so LogLive counts exactly what Get will serve from the log.
	for _, k := range s.overlayOnlyKeys() {
		if _, _, ok := s.overlay.get(k); ok {
			res.LogLive++
		}
	}
	return res, nil
}

// verifyLog scans the commit log's records into res. The log is bounded
// work — every checkpoint truncates it — and a log from another schema
// (or one torn inside its header) vouches for nothing: the next writable
// open discards it whole, so there is nothing in it a reader could be
// served and it is skipped rather than reported.
func (s *Store) verifyLog(res *VerifyResult) error {
	if s.legacy {
		return nil // v1 layouts predate the commit log
	}
	f, err := os.Open(filepath.Join(s.dir, shardsDirName, commitLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return nil
	}
	schema, hdrLen, err := readHeader(f)
	if err != nil || schema != s.schema || size <= hdrLen {
		return nil
	}
	buf := make([]byte, size-hdrLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, hdrLen, size-hdrLen), buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	walkRecords(buf, hdrLen, func(off int64, rec parsedRecord, st recStatus) {
		switch st {
		case recGood:
			res.LogRecords++
		case recBadCRC:
			res.LogCorrupt++
		}
	})
	return nil
}

// GCPolicy selects which entries a compaction keeps.
type GCPolicy struct {
	// MaxAge evicts entries written longer ago; zero keeps all ages.
	MaxAge time.Duration
	// MaxBytes bounds the surviving record bytes across all shards,
	// evicting oldest-first; zero means unbounded.
	MaxBytes int64
}

// GCResult reports a compaction.
type GCResult struct {
	Kept, Evicted           int
	BytesBefore, BytesAfter int64
}

// GC compacts every shard: stale duplicates, checksum-failed records and
// entries outside the policy are dropped, survivors are rewritten to a
// temporary segment which atomically replaces the old one (temp file +
// rename per shard). The policy is evaluated globally — MaxBytes bounds
// the store, not each shard — in two phases: gather every shard's live
// set, decide the global survivor set, then compact shard by shard.
// Entries appended between the phases are kept unconditionally. Other
// Stores sharing the directory keep reading their old segments until
// they reopen; run GC between campaigns, not during one.
func (s *Store) GC(policy GCPolicy) (GCResult, error) {
	var res GCResult
	if s.readOnly {
		return res, fmt.Errorf("store: read-only")
	}
	// Phase 1: bring every shard's index current and snapshot the live
	// sets (plus each shard's committed size, the fence for "appended
	// after the snapshot").
	type shardSnap struct {
		live []keyedRef
		size int64
	}
	snaps := make([]shardSnap, len(s.shards))
	var all []keyedRef
	for i, sh := range s.shards {
		sh.lock()
		err := func() error {
			if st := sh.state.Load(); st.dead != nil {
				return st.dead
			}
			return sh.withFileLock(true, func() error { return sh.rescanLocked(true) })
		}()
		if err != nil {
			sh.mu.Unlock()
			return res, err
		}
		snaps[i].live = sh.liveRefs()
		snaps[i].size = sh.state.Load().size
		sh.mu.Unlock()
		res.BytesBefore += snaps[i].size
		all = append(all, snaps[i].live...)
	}

	// Decide the global survivor set.
	live := all[:0]
	cutoff := int64(0)
	if policy.MaxAge > 0 {
		cutoff = time.Now().Add(-policy.MaxAge).Unix()
	}
	for _, p := range all {
		if p.ref.stamp < cutoff {
			res.Evicted++
			continue
		}
		live = append(live, p)
	}
	if policy.MaxBytes > 0 {
		// Evict oldest-first until the surviving records fit.
		sort.Slice(live, func(i, j int) bool {
			if live[i].ref.stamp != live[j].ref.stamp {
				return live[i].ref.stamp > live[j].ref.stamp
			}
			return live[i].key > live[j].key
		})
		var total int64
		kept := live[:0]
		for _, p := range live {
			if total+p.ref.recLen > policy.MaxBytes {
				res.Evicted++
				continue
			}
			total += p.ref.recLen
			kept = append(kept, p)
		}
		live = kept
	}
	keep := make(map[string]bool, len(live))
	for _, p := range live {
		keep[p.key] = true
	}

	// Phase 2: compact each shard against the global survivor set. An
	// entry past the phase-1 fence was appended while the policy was
	// being decided and is kept unconditionally.
	for i, sh := range s.shards {
		fence := snaps[i].size
		kept, _, bytesAfter, err := sh.compact(func(key string, ref entryRef) bool {
			return ref.off >= fence || keep[key]
		})
		if err != nil {
			return res, err
		}
		res.Kept += kept
		res.BytesAfter += bytesAfter
	}
	if s.sg != nil && s.sg.w != nil {
		// The compacted segments are durable on their own; drop the log
		// so a crash does not replay (and resurrect) evicted records.
		if err := s.sg.checkpoint(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// bundleManifest is the first file of an export bundle.
const bundleManifestName = "MANIFEST"

// Export writes every live entry as a tar bundle: a MANIFEST naming the
// format and schema, then one file per record (shard by shard, in each
// shard's write order). Bundles move results between machines and across
// layout versions — a bundle exported from a v1 store imports into a
// sharded one unchanged, records being layout-agnostic; Import on the
// receiving side verifies every checksum.
func (s *Store) Export(w io.Writer) (int, error) {
	type shardExport struct {
		sh   *shard
		live []keyedRef
	}
	exports := make([]shardExport, 0, len(s.shards))
	total := 0
	for _, sh := range s.shards {
		live := sh.liveRefs()
		exports = append(exports, shardExport{sh, live})
		total += len(live)
	}

	tw := tar.NewWriter(w)
	manifest := fmt.Sprintf("activemem-store-bundle v1\nformat: %s\nschema: %s\nentries: %d\n",
		fileMagic, s.schema, total)
	if err := writeTarFile(tw, bundleManifestName, []byte(manifest)); err != nil {
		return 0, err
	}
	n := 0
	for _, ex := range exports {
		st := ex.sh.state.Load()
		for _, p := range ex.live {
			rec := make([]byte, p.ref.recLen)
			if _, err := st.f.ReadAt(rec, p.ref.off); err != nil {
				return n, fmt.Errorf("store: %w", err)
			}
			if err := writeTarFile(tw, "entries/"+p.key, rec); err != nil {
				return n, err
			}
			n++
		}
	}
	if err := tw.Close(); err != nil {
		return n, fmt.Errorf("store: %w", err)
	}
	return n, nil
}

func writeTarFile(tw *tar.Writer, name string, data []byte) error {
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644,
		Size: int64(len(data))}); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tw.Write(data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Import reads an Export bundle and appends entries whose keys are absent.
// Records are checksum-verified before they are admitted — original
// stamps and bytes are preserved — and a bundle exported under a
// different schema version is rejected outright. Records are routed to
// their shards and appended one batch per shard.
func (s *Store) Import(r io.Reader) (added, skipped int, err error) {
	if s.readOnly {
		return 0, 0, fmt.Errorf("store: read-only")
	}
	tr := tar.NewReader(r)
	hdr, err := tr.Next()
	if err != nil {
		return 0, 0, fmt.Errorf("store: bad bundle: %w", err)
	}
	if hdr.Name != bundleManifestName {
		return 0, 0, fmt.Errorf("store: bundle starts with %q, want %s", hdr.Name, bundleManifestName)
	}
	manifest, err := io.ReadAll(io.LimitReader(tr, 1<<16))
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	schema, ok := manifestField(string(manifest), "schema")
	if !ok {
		return 0, 0, fmt.Errorf("store: bundle manifest has no schema line")
	}
	if schema != s.schema {
		return 0, 0, fmt.Errorf("store: bundle schema %q does not match store schema %q", schema, s.schema)
	}

	// Verify and route every record first, then append shard by shard.
	perShard := make([][][]byte, len(s.shards))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, fmt.Errorf("store: bad bundle: %w", err)
		}
		if !strings.HasPrefix(hdr.Name, "entries/") {
			continue
		}
		if hdr.Size > fixedHdrLen+maxKeyLen+maxTypeLen+maxPayload+crcLen {
			return 0, 0, fmt.Errorf("store: bundle entry %q too large", hdr.Name)
		}
		rec, err := io.ReadAll(tr)
		if err != nil {
			return 0, 0, fmt.Errorf("store: %w", err)
		}
		parsed, status := parseRecord(rec)
		if status != recGood || parsed.recLen != int64(len(rec)) {
			return 0, 0, fmt.Errorf("store: bundle entry %q fails verification", hdr.Name)
		}
		i := 0
		if !s.legacy {
			i = shardOf(parsed.key)
		}
		perShard[i] = append(perShard[i], rec)
	}

	for i, recs := range perShard {
		if len(recs) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.lock()
		if st := sh.state.Load(); st.dead != nil {
			sh.mu.Unlock()
			return added, skipped, st.dead
		}
		err := sh.withFileLock(true, func() error {
			if err := sh.rescanLocked(true); err != nil {
				return err
			}
			a, sk, err := sh.appendBatchLocked(recs)
			added += a
			skipped += sk
			return err
		})
		sh.mu.Unlock()
		if err != nil {
			return added, skipped, err
		}
	}
	return added, skipped, nil
}

// manifestField extracts "name: value" from a bundle manifest.
func manifestField(manifest, name string) (string, bool) {
	for _, line := range strings.Split(manifest, "\n") {
		if rest, ok := strings.CutPrefix(line, name+": "); ok {
			return rest, true
		}
	}
	return "", false
}
