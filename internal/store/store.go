// Package store is the on-disk half of the experiment memoization system:
// a content-addressed, crash-safe result store that outlives the process.
// The in-memory memo of internal/lab deduplicates cells within one run;
// this store persists them across runs, commands and machines, so an
// interrupted `validate -grid paper` campaign resumes with only the missing
// cells simulated and a finished campaign can be exported to a colleague.
//
// Layout: a cache directory holds one append-only segment file plus a lock
// file. The segment starts with a header naming the binary format and the
// caller's schema version (the simulator/result version stamp); entries
// follow as self-delimiting records:
//
//	entryMagic  uint32   per-record sync marker
//	keyLen      uint16
//	typeLen     uint16
//	payloadLen  uint32
//	stamp       int64    unix seconds at write (GC age input)
//	key         keyLen bytes (content-addressed: a lab.Key hex digest)
//	typeName    typeLen bytes (decoder selector, e.g. "core.Metrics")
//	payload     payloadLen bytes
//	crc         uint32   IEEE CRC-32 of everything above
//
// Crash safety is by construction: records are appended with a single
// write under an exclusive lock, so the only possible inconsistency is a
// torn record at the tail (a crashed writer), which Open and the next
// writer truncate away. A corrupted record body (bit rot, a flipped byte)
// fails its checksum and is skipped — the key simply misses and its cell
// recomputes — while records after it stay reachable: even when the
// damage hits a length field and desynchronises parsing, the scan
// resynchronises on the next per-record magic marker instead of giving up
// on the rest of the segment. Stale schema versions discard the whole
// segment at Open: results produced by a different simulator version must
// never be served.
//
// Concurrency: one Store is safe for concurrent use by any number of
// goroutines, and any number of processes (or Stores in one process) may
// share a directory. Writers serialise appends through an exclusive
// file lock; readers never lock — committed bytes are immutable — and an
// index miss triggers a shared-lock tail rescan so results appended by
// sibling processes become visible mid-run.
package store

import (
	"archive/tar"
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// fileMagic names the binary format; bump the trailing digits when the
	// record layout changes.
	fileMagic = "AMSTOR01"

	segmentName = "results.seg"
	lockName    = "LOCK"

	entryMagic  = uint32(0x414D4345) // "AMCE"
	fixedHdrLen = 4 + 2 + 2 + 4 + 8
	crcLen      = 4

	maxKeyLen  = 1 << 10
	maxTypeLen = 1 << 10
	maxPayload = 1 << 26
)

// Options configures Open.
type Options struct {
	// Schema is the result schema / simulator version stamp (see
	// lab.ResultSchemaVersion). A read-write Open of a store written under
	// a different schema discards its contents — stale results
	// self-invalidate; a read-only Open reports an error instead.
	Schema string
	// ReadOnly opens for inspection: Get and the maintenance scans work,
	// Put/GC/Import fail, and torn tails are tolerated rather than
	// truncated.
	ReadOnly bool
}

// entryRef locates one live record in the segment.
type entryRef struct {
	off        int64 // record start
	recLen     int64
	typeName   string
	payloadLen int
	stamp      int64
}

// Store is an open result store. Methods are safe for concurrent use.
type Store struct {
	dir      string
	schema   string
	readOnly bool

	mu      sync.Mutex
	f       *os.File
	lockF   *os.File
	index   map[string]entryRef
	scanned int64 // offset one past the last parsed record
	hdrLen  int64
	reset   bool // contents were discarded at Open (schema/format change)
	// dead poisons the handle after a partial GC swap (segment renamed but
	// reopen failed): s.f then points at the unlinked old inode, where a
	// Put would "succeed" into a file that vanishes at Close. Every write
	// reports dead instead; reads miss.
	dead error
}

// Open opens (creating if necessary, unless read-only) the store in dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if opts.Schema == "" {
		return nil, fmt.Errorf("store: empty schema version")
	}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, schema: opts.Schema, readOnly: opts.ReadOnly,
		index: map[string]entryRef{}}

	lockFlags := os.O_RDWR | os.O_CREATE
	segFlags := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		lockFlags, segFlags = os.O_RDONLY, os.O_RDONLY
	}
	var err error
	if s.lockF, err = os.OpenFile(filepath.Join(dir, lockName), lockFlags, 0o644); err != nil {
		// A directory holding just a copied segment (no LOCK) is still
		// inspectable: nothing else can be writing it through this
		// directory, so read-only access proceeds lock-free.
		if !(opts.ReadOnly && os.IsNotExist(err)) {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.lockF = nil
	}
	if s.f, err = os.OpenFile(filepath.Join(dir, segmentName), segFlags, 0o644); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("store: %w", err)
	}

	// The opening scan (and a possible schema reset or tail truncation)
	// must not race other writers.
	if err := s.withLock(!opts.ReadOnly, func() error { return s.loadLocked() }); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// closeFiles closes whichever file handles are open.
func (s *Store) closeFiles() error {
	var err error
	if s.f != nil {
		err = s.f.Close()
	}
	if s.lockF != nil {
		if cerr := s.lockF.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loadLocked validates the header and builds the index. File lock held.
func (s *Store) loadLocked() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		if s.readOnly {
			// A brand-new empty file is a valid empty store.
			s.hdrLen, s.scanned = 0, 0
			return nil
		}
		return s.writeHeaderLocked()
	}
	onDisk, hdrLen, err := readHeader(s.f)
	switch {
	case err != nil || onDisk != s.schema:
		if s.readOnly {
			if err != nil {
				return fmt.Errorf("store: %s: unrecognised format: %w",
					s.segPath(), err)
			}
			return fmt.Errorf("store: %s holds schema %q, want %q (stale store; a read-write open would reset it)",
				s.segPath(), onDisk, s.schema)
		}
		// Version-mismatch invalidation: every entry was produced by a
		// different simulator/result version and must not be served.
		s.reset = true
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return s.writeHeaderLocked()
	default:
		s.hdrLen, s.scanned = hdrLen, hdrLen
		return s.scanTailLocked(!s.readOnly)
	}
}

func (s *Store) segPath() string { return filepath.Join(s.dir, segmentName) }

// ensureHeaderLocked validates a header that did not exist yet when this
// handle opened: a read-only Open may race a writer's very first open and
// see a zero-length segment (hdrLen 0). Once bytes appear, the header must
// be parsed — and its schema checked — before any of them are read as
// records. File lock held.
func (s *Store) ensureHeaderLocked(size int64) error {
	if s.hdrLen > 0 || size == 0 {
		return nil
	}
	onDisk, hdrLen, err := readHeader(s.f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if onDisk != s.schema {
		return fmt.Errorf("store: %s holds schema %q, want %q", s.segPath(), onDisk, s.schema)
	}
	s.hdrLen = hdrLen
	if s.scanned < hdrLen {
		s.scanned = hdrLen
	}
	return nil
}

// encodeHeader renders the segment header: magic, schema length, schema.
func encodeHeader(schema string) []byte {
	b := make([]byte, 0, len(fileMagic)+2+len(schema))
	b = append(b, fileMagic...)
	var lenBuf [2]byte
	binary.LittleEndian.PutUint16(lenBuf[:], uint16(len(schema)))
	b = append(b, lenBuf[:]...)
	return append(b, schema...)
}

// writeHeaderLocked initialises an empty segment. File lock held.
func (s *Store) writeHeaderLocked() error {
	hdr := encodeHeader(s.schema)
	if _, err := s.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.hdrLen = int64(len(hdr))
	s.scanned = s.hdrLen
	return nil
}

// readHeader parses the segment header, returning the stored schema and
// header length.
func readHeader(f *os.File) (schema string, hdrLen int64, err error) {
	buf := make([]byte, len(fileMagic)+2)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(len(buf))), buf); err != nil {
		return "", 0, fmt.Errorf("short header: %w", err)
	}
	if string(buf[:len(fileMagic)]) != fileMagic {
		return "", 0, fmt.Errorf("bad magic %q", buf[:len(fileMagic)])
	}
	n := int(binary.LittleEndian.Uint16(buf[len(fileMagic):]))
	sb := make([]byte, n)
	off := int64(len(buf))
	if _, err := io.ReadFull(io.NewSectionReader(f, off, int64(n)), sb); err != nil {
		return "", 0, fmt.Errorf("short schema: %w", err)
	}
	return string(sb), off + int64(n), nil
}

// encodeRecord renders one record; see the package comment for the layout.
func encodeRecord(key, typeName string, payload []byte, stamp int64) []byte {
	n := fixedHdrLen + len(key) + len(typeName) + len(payload) + crcLen
	b := make([]byte, 0, n)
	var u4 [4]byte
	var u8 [8]byte
	binary.LittleEndian.PutUint32(u4[:], entryMagic)
	b = append(b, u4[:]...)
	binary.LittleEndian.PutUint16(u4[:2], uint16(len(key)))
	b = append(b, u4[:2]...)
	binary.LittleEndian.PutUint16(u4[:2], uint16(len(typeName)))
	b = append(b, u4[:2]...)
	binary.LittleEndian.PutUint32(u4[:], uint32(len(payload)))
	b = append(b, u4[:]...)
	binary.LittleEndian.PutUint64(u8[:], uint64(stamp))
	b = append(b, u8[:]...)
	b = append(b, key...)
	b = append(b, typeName...)
	b = append(b, payload...)
	binary.LittleEndian.PutUint32(u4[:], crc32.ChecksumIEEE(b))
	return append(b, u4[:]...)
}

// recStatus classifies one scanned record.
type recStatus int

const (
	recGood recStatus = iota
	recBadCRC
	recTorn // incomplete or unparseable from here on
)

// parsedRecord is the outcome of scanning one record.
type parsedRecord struct {
	key      string
	typeName string
	payload  []byte
	stamp    int64
	recLen   int64
}

// entryMagicBytes is the on-disk rendering of entryMagic, the marker the
// scan resynchronises on after unparseable bytes.
var entryMagicBytes = binary.LittleEndian.AppendUint32(nil, entryMagic)

// parseRecord parses one record at the start of b. recTorn means no
// complete record starts here: a clean end of input, a torn append, or
// garbage (including a record whose corrupted length fields point past the
// available bytes).
func parseRecord(b []byte) (parsedRecord, recStatus) {
	if len(b) < fixedHdrLen || binary.LittleEndian.Uint32(b) != entryMagic {
		return parsedRecord{}, recTorn
	}
	keyLen := int(binary.LittleEndian.Uint16(b[4:]))
	typeLen := int(binary.LittleEndian.Uint16(b[6:]))
	payloadLen := int(binary.LittleEndian.Uint32(b[8:]))
	if keyLen == 0 || keyLen > maxKeyLen || typeLen > maxTypeLen || payloadLen > maxPayload {
		return parsedRecord{}, recTorn
	}
	total := fixedHdrLen + keyLen + typeLen + payloadLen + crcLen
	if len(b) < total {
		return parsedRecord{}, recTorn
	}
	rec := parsedRecord{
		key:      string(b[fixedHdrLen : fixedHdrLen+keyLen]),
		typeName: string(b[fixedHdrLen+keyLen : fixedHdrLen+keyLen+typeLen]),
		payload:  b[fixedHdrLen+keyLen+typeLen : total-crcLen],
		stamp:    int64(binary.LittleEndian.Uint64(b[12:])),
		recLen:   int64(total),
	}
	if crc32.ChecksumIEEE(b[:total-crcLen]) != binary.LittleEndian.Uint32(b[total-crcLen:total]) {
		return rec, recBadCRC
	}
	return rec, recGood
}

// walkRecords scans buf (whose first byte sits at file offset base),
// invoking fn for every intact record and for the first checksum-failed
// record of each damaged region. A failed checksum vouches for nothing —
// least of all the record's own length fields — so the scan never advances
// by a corrupt record's claimed extent; it resynchronises on the next
// entry magic instead, which keeps every intact record after the damage
// reachable. It returns the file offset where a trailing unparseable
// region begins (base+len(buf) when the buffer ends at a record boundary)
// and the number of mid-buffer garbage bytes skipped.
func walkRecords(buf []byte, base int64, fn func(off int64, rec parsedRecord, st recStatus)) (tail, garbage int64) {
	off, garbageStart := 0, -1
	for off < len(buf) {
		rec, st := parseRecord(buf[off:])
		if st == recGood {
			if garbageStart >= 0 {
				garbage += int64(off - garbageStart)
				garbageStart = -1
			}
			fn(base+int64(off), rec, st)
			off += int(rec.recLen)
			continue
		}
		if garbageStart < 0 {
			garbageStart = off
			if st == recBadCRC {
				// The first failure of a region at a plausible record
				// boundary is the damaged record itself; report it once.
				fn(base+int64(off), rec, st)
			}
		}
		idx := bytes.Index(buf[off+1:], entryMagicBytes)
		if idx < 0 {
			break // unparseable through to the end: a torn tail
		}
		off += 1 + idx
	}
	if garbageStart >= 0 {
		return base + int64(garbageStart), garbage
	}
	return base + int64(len(buf)), garbage
}

// scanTailLocked parses records from s.scanned to EOF into the index.
// Checksum failures skip the record (its key recomputes, and the record's
// claimed extent is re-synchronised past if its lengths were the damaged
// part); an unparseable tail stops the scan and, when truncateTorn, is cut
// off so appends stay well-formed. Both s.mu and the file lock are held.
func (s *Store) scanTailLocked(truncateTorn bool) error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if err := s.ensureHeaderLocked(size); err != nil {
		return err
	}
	if truncateTorn && s.hdrLen > 0 {
		// Writers are about to truncate at — and append past — offsets
		// derived from this handle's history, so re-verify that history is
		// still the file's: a reset by a different-schema process can
		// regrow the segment to any size, making the shrink check below
		// insufficient on its own. A header of another schema means every
		// offset we hold is meaningless; fail the write rather than
		// truncate someone else's committed records.
		onDisk, _, err := readHeader(s.f)
		if err != nil {
			return fmt.Errorf("store: segment replaced under this handle: %w", err)
		}
		if onDisk != s.schema {
			return fmt.Errorf("store: segment reset to schema %q under this %q handle (reopen the store)",
				onDisk, s.schema)
		}
	}
	if size < s.scanned {
		// The segment shrank under us (a reset we survived only as a
		// reader): our whole index points at vanished bytes. Drop it and
		// rebuild from the on-disk header, which the checks above proved
		// still carries our schema.
		s.index = map[string]entryRef{}
		onDisk, hdrLen, err := readHeader(s.f)
		if err != nil {
			return fmt.Errorf("store: segment replaced under this handle: %w", err)
		}
		if onDisk != s.schema {
			return fmt.Errorf("store: segment reset to schema %q under this %q handle (reopen the store)",
				onDisk, s.schema)
		}
		s.hdrLen, s.scanned = hdrLen, hdrLen
	}
	if size <= s.scanned {
		return nil
	}
	buf := make([]byte, size-s.scanned)
	if _, err := s.f.ReadAt(buf, s.scanned); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tail, _ := walkRecords(buf, s.scanned, func(off int64, rec parsedRecord, st recStatus) {
		if st == recGood {
			s.index[rec.key] = entryRef{off: off, recLen: rec.recLen,
				typeName: rec.typeName, payloadLen: len(rec.payload), stamp: rec.stamp}
		}
	})
	s.scanned = tail
	if tail < size && truncateTorn && !s.readOnly {
		if err := s.f.Truncate(tail); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Get returns the entry for key, or ok == false when it is absent or its
// record fails verification. A miss rescans the segment tail first, so
// entries appended by other processes sharing the directory are found.
func (s *Store) Get(key string) (typeName string, payload []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return "", nil, false
	}
	if p, typeName, ok := s.getIndexedLocked(key); ok {
		return typeName, p, true
	}
	if fi, err := s.f.Stat(); err == nil && fi.Size() != s.scanned {
		// Another process appended since our last scan; committed records
		// are immutable, so a shared lock suffices (and only guards
		// against scanning a record mid-append).
		_ = s.withLock(false, func() error { return s.scanTailLocked(false) })
		if p, typeName, ok := s.getIndexedLocked(key); ok {
			return typeName, p, true
		}
	}
	return "", nil, false
}

// getIndexedLocked serves key from the index, dropping the entry when its
// record no longer verifies (concurrent GC or bit rot) so the cell
// recomputes. s.mu held.
func (s *Store) getIndexedLocked(key string) (payload []byte, typeName string, ok bool) {
	ref, hit := s.index[key]
	if !hit {
		return nil, "", false
	}
	p, err := s.readEntryLocked(key, ref)
	if err != nil {
		delete(s.index, key)
		return nil, "", false
	}
	return p, ref.typeName, true
}

// readEntryLocked reads and re-verifies one record, returning its payload.
// The parsed record must be the very record the index promised — same key,
// same extent — not merely a valid record: after another process rewrites
// the segment under this handle, a stale offset can land on a different,
// perfectly well-formed record, and serving that one would cross result
// generations.
func (s *Store) readEntryLocked(key string, ref entryRef) ([]byte, error) {
	buf := make([]byte, ref.recLen)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	rec, status := parseRecord(buf)
	if status != recGood || rec.key != key || rec.recLen != ref.recLen {
		return nil, fmt.Errorf("store: record at %d failed verification", ref.off)
	}
	return rec.payload, nil
}

// Put appends an entry, reporting whether it wrote: a key already present
// is left untouched and reports false (results are content-addressed —
// same key, same value — so concurrent writers that raced on a computation
// converge on one record).
func (s *Store) Put(key, typeName string, payload []byte) (added bool, err error) {
	if len(key) == 0 || len(key) > maxKeyLen || len(typeName) > maxTypeLen {
		return false, fmt.Errorf("store: bad key/type length %d/%d", len(key), len(typeName))
	}
	if len(payload) > maxPayload {
		return false, fmt.Errorf("store: payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return false, fmt.Errorf("store: read-only")
	}
	if s.dead != nil {
		return false, s.dead
	}
	err = s.withLock(true, func() error {
		// Catch up on other writers (and truncate a crashed writer's torn
		// tail) so the append lands at a record boundary.
		if err := s.scanTailLocked(true); err != nil {
			return err
		}
		if _, dup := s.index[key]; dup {
			return nil
		}
		if err := s.appendLocked(encodeRecord(key, typeName, payload, time.Now().Unix())); err != nil {
			return err
		}
		added = true
		return nil
	})
	return added, err
}

// Invalidate drops key from this handle's index, so the next Put for it
// appends a fresh record, which last-wins over the old one at every future
// scan (fresh opens immediately; live sibling handles at their next tail
// rescan). The executor's disk tier uses it when a checksum-valid record
// fails to decode — a stale payload encoding that, left in place, would
// force every future run to recompute the cell without ever being able to
// repair it.
func (s *Store) Invalidate(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.index, key)
}

// appendLocked writes one pre-encoded record at the committed tail and
// indexes it. Both s.mu and the exclusive file lock are held, and s.scanned
// must equal the file size.
func (s *Store) appendLocked(rec []byte) error {
	if _, err := s.f.WriteAt(rec, s.scanned); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	parsed, status := parseRecord(rec)
	if status != recGood {
		return fmt.Errorf("store: internal error: appended record does not verify")
	}
	s.index[parsed.key] = entryRef{off: s.scanned, recLen: parsed.recLen,
		typeName: parsed.typeName, payloadLen: len(parsed.payload), stamp: parsed.stamp}
	s.scanned += parsed.recLen
	return nil
}

// Close releases the store's file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeFiles()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Schema returns the schema version the store was opened with.
func (s *Store) Schema() string { return s.schema }

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// ResetOnOpen reports whether Open discarded a previous segment because its
// format or schema version did not match.
func (s *Store) ResetOnOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reset
}

// EntryInfo describes one live entry.
type EntryInfo struct {
	Key          string
	Type         string
	PayloadBytes int
	Stamp        time.Time
}

// keyedRef pairs a key with its index entry.
type keyedRef struct {
	key string
	ref entryRef
}

// liveRefsLocked returns the live entries in segment (write) order — the
// one definition of "segment order" shared by Entries, GC and Export.
// s.mu held.
func (s *Store) liveRefsLocked() []keyedRef {
	all := make([]keyedRef, 0, len(s.index))
	for k, ref := range s.index {
		all = append(all, keyedRef{k, ref})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ref.off < all[j].ref.off })
	return all
}

// Entries lists live entries in segment order (write order).
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.liveRefsLocked()
	out := make([]EntryInfo, len(all))
	for i, p := range all {
		out[i] = EntryInfo{Key: p.key, Type: p.ref.typeName,
			PayloadBytes: p.ref.payloadLen, Stamp: time.Unix(p.ref.stamp, 0)}
	}
	return out
}

// Summary aggregates the store's state.
type Summary struct {
	Dir     string
	Schema  string
	Entries int
	// Bytes is the segment file size (header, live entries, and any stale
	// or corrupt records GC has not yet compacted away).
	Bytes          int64
	PerType        map[string]int
	Oldest, Newest time.Time
}

// Stats returns a summary of the store.
func (s *Store) Stats() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{Dir: s.dir, Schema: s.schema, Entries: len(s.index),
		PerType: map[string]int{}}
	if fi, err := s.f.Stat(); err == nil {
		sum.Bytes = fi.Size()
	}
	for _, ref := range s.index {
		sum.PerType[ref.typeName]++
		t := time.Unix(ref.stamp, 0)
		if sum.Oldest.IsZero() || t.Before(sum.Oldest) {
			sum.Oldest = t
		}
		if t.After(sum.Newest) {
			sum.Newest = t
		}
	}
	return sum
}

// VerifyResult reports a full-segment checksum scan.
type VerifyResult struct {
	// Records is the number of complete records parsed (live + stale).
	Records int
	// Live is the number of currently reachable entries.
	Live int
	// Corrupt counts records whose checksum failed.
	Corrupt int
	// TornBytes is the length of an unparseable tail, zero when the
	// segment ends cleanly.
	TornBytes int64
	// GarbageBytes counts mid-segment bytes the scan had to resynchronise
	// past (e.g. a record whose length fields were corrupted).
	GarbageBytes int64
}

// Verify re-reads every record in the segment and checks its checksum.
func (s *Store) Verify() (VerifyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res VerifyResult
	err := s.withLock(false, func() error {
		fi, err := s.f.Stat()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		size := fi.Size()
		if err := s.ensureHeaderLocked(size); err != nil {
			return err
		}
		buf := make([]byte, size-s.hdrLen)
		if _, err := s.f.ReadAt(buf, s.hdrLen); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		tail, garbage := walkRecords(buf, s.hdrLen, func(_ int64, rec parsedRecord, st recStatus) {
			res.Records++
			if st == recBadCRC {
				res.Corrupt++
			}
		})
		res.TornBytes = size - tail
		res.GarbageBytes = garbage
		return nil
	})
	res.Live = len(s.index)
	return res, err
}

// GCPolicy selects which entries a compaction keeps.
type GCPolicy struct {
	// MaxAge evicts entries written longer ago; zero keeps all ages.
	MaxAge time.Duration
	// MaxBytes bounds the surviving record bytes, evicting oldest-first;
	// zero means unbounded.
	MaxBytes int64
}

// GCResult reports a compaction.
type GCResult struct {
	Kept, Evicted           int
	BytesBefore, BytesAfter int64
}

// GC compacts the segment: stale duplicates, checksum-failed records and
// entries outside the policy are dropped, survivors are rewritten to a
// temporary segment which atomically replaces the old one (temp file +
// rename). Other Stores sharing the directory keep reading their old
// segment until they reopen; run GC between campaigns, not during one.
func (s *Store) GC(policy GCPolicy) (GCResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res GCResult
	if s.readOnly {
		return res, fmt.Errorf("store: read-only")
	}
	if s.dead != nil {
		return res, s.dead
	}
	err := s.withLock(true, func() error {
		if err := s.scanTailLocked(true); err != nil {
			return err
		}
		res.BytesBefore = s.scanned

		all := s.liveRefsLocked()
		live := all[:0]
		cutoff := int64(0)
		if policy.MaxAge > 0 {
			cutoff = time.Now().Add(-policy.MaxAge).Unix()
		}
		for _, p := range all {
			if p.ref.stamp < cutoff {
				res.Evicted++
				continue
			}
			live = append(live, p)
		}
		if policy.MaxBytes > 0 {
			// Evict oldest-first until the surviving records fit.
			sort.Slice(live, func(i, j int) bool {
				if live[i].ref.stamp != live[j].ref.stamp {
					return live[i].ref.stamp > live[j].ref.stamp
				}
				return live[i].ref.off > live[j].ref.off
			})
			var total int64
			kept := live[:0]
			for _, p := range live {
				if total+p.ref.recLen > policy.MaxBytes {
					res.Evicted++
					continue
				}
				total += p.ref.recLen
				kept = append(kept, p)
			}
			live = kept
		}
		// Rewrite survivors in their original order.
		sort.Slice(live, func(i, j int) bool { return live[i].ref.off < live[j].ref.off })

		tmpPath := s.segPath() + ".tmp"
		tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer os.Remove(tmpPath) // no-op after a successful rename
		w := bufio.NewWriterSize(tmp, 256<<10)
		if _, err := w.Write(encodeHeader(s.schema)); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
		for _, p := range live {
			rec := make([]byte, p.ref.recLen)
			if _, err := s.f.ReadAt(rec, p.ref.off); err != nil {
				tmp.Close()
				return fmt.Errorf("store: %w", err)
			}
			if _, err := w.Write(rec); err != nil {
				tmp.Close()
				return fmt.Errorf("store: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmpPath, s.segPath()); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		// Swap to the new segment and rebuild the index from it. Failing
		// here leaves s.f on the unlinked pre-compaction inode, so the
		// handle must die rather than let writes vanish into it.
		f, err := os.OpenFile(s.segPath(), os.O_RDWR, 0o644)
		if err != nil {
			s.dead = fmt.Errorf("store: segment reopen after compaction failed (reopen the store): %w", err)
			return s.dead
		}
		s.f.Close()
		s.f = f
		s.index = map[string]entryRef{}
		if _, s.hdrLen, err = readHeader(s.f); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.scanned = s.hdrLen
		if err := s.scanTailLocked(true); err != nil {
			return err
		}
		res.Kept = len(s.index)
		res.BytesAfter = s.scanned
		return nil
	})
	return res, err
}

// bundleManifest is the first file of an export bundle.
const bundleManifestName = "MANIFEST"

// Export writes every live entry as a tar bundle: a MANIFEST naming the
// format and schema, then one file per record. Bundles move results
// between machines; Import on the receiving side verifies every checksum.
func (s *Store) Export(w io.Writer) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.liveRefsLocked()

	tw := tar.NewWriter(w)
	manifest := fmt.Sprintf("activemem-store-bundle v1\nformat: %s\nschema: %s\nentries: %d\n",
		fileMagic, s.schema, len(all))
	if err := writeTarFile(tw, bundleManifestName, []byte(manifest)); err != nil {
		return 0, err
	}
	n := 0
	for _, p := range all {
		rec := make([]byte, p.ref.recLen)
		if _, err := s.f.ReadAt(rec, p.ref.off); err != nil {
			return n, fmt.Errorf("store: %w", err)
		}
		if err := writeTarFile(tw, "entries/"+p.key, rec); err != nil {
			return n, err
		}
		n++
	}
	if err := tw.Close(); err != nil {
		return n, fmt.Errorf("store: %w", err)
	}
	return n, nil
}

func writeTarFile(tw *tar.Writer, name string, data []byte) error {
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644,
		Size: int64(len(data))}); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tw.Write(data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Import reads an Export bundle and appends entries whose keys are absent.
// Records are checksum-verified before they are admitted, and a bundle
// exported under a different schema version is rejected outright.
func (s *Store) Import(r io.Reader) (added, skipped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return 0, 0, fmt.Errorf("store: read-only")
	}
	if s.dead != nil {
		return 0, 0, s.dead
	}
	tr := tar.NewReader(r)
	hdr, err := tr.Next()
	if err != nil {
		return 0, 0, fmt.Errorf("store: bad bundle: %w", err)
	}
	if hdr.Name != bundleManifestName {
		return 0, 0, fmt.Errorf("store: bundle starts with %q, want %s", hdr.Name, bundleManifestName)
	}
	manifest, err := io.ReadAll(io.LimitReader(tr, 1<<16))
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	schema, ok := manifestField(string(manifest), "schema")
	if !ok {
		return 0, 0, fmt.Errorf("store: bundle manifest has no schema line")
	}
	if schema != s.schema {
		return 0, 0, fmt.Errorf("store: bundle schema %q does not match store schema %q", schema, s.schema)
	}

	err = s.withLock(true, func() error {
		if err := s.scanTailLocked(true); err != nil {
			return err
		}
		for {
			hdr, err := tr.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("store: bad bundle: %w", err)
			}
			if !strings.HasPrefix(hdr.Name, "entries/") {
				continue
			}
			if hdr.Size > fixedHdrLen+maxKeyLen+maxTypeLen+maxPayload+crcLen {
				return fmt.Errorf("store: bundle entry %q too large", hdr.Name)
			}
			rec, err := io.ReadAll(tr)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			parsed, status := parseRecord(rec)
			if status != recGood || parsed.recLen != int64(len(rec)) {
				return fmt.Errorf("store: bundle entry %q fails verification", hdr.Name)
			}
			if _, dup := s.index[parsed.key]; dup {
				skipped++
				continue
			}
			if err := s.appendLocked(rec); err != nil {
				return err
			}
			added++
		}
	})
	return added, skipped, err
}

// manifestField extracts "name: value" from a bundle manifest.
func manifestField(manifest, name string) (string, bool) {
	for _, line := range strings.Split(manifest, "\n") {
		if rest, ok := strings.CutPrefix(line, name+": "); ok {
			return rest, true
		}
	}
	return "", false
}
