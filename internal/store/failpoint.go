// Test-only failure seams for the write path. The durability claims in
// this package ("puts surface errors, the store stays readable, no torn
// record is ever served") are only claims until a test can make a write
// or fsync fail on demand; these hooks are that switch. Production code
// never installs a hook — the functions below collapse to the plain
// *os.File operations — and the hooks are atomic pointers so tests can
// install/clear them around operations without racing concurrent puts.

package store

import (
	"os"
	"sync/atomic"
)

// Operations a hook can intercept, passed as the op argument.
const (
	fpSegAppend = "seg-append" // shard segment record append
	fpWALAppend = "wal-append" // commit-log record append
	fpWALFsync  = "wal-fsync"  // commit-log group-commit fsync
)

// writeFaultFn decides the fate of one write: err != nil fails it, and
// short > 0 additionally lands that many leading bytes first — a torn
// append, exactly what a crash mid-write leaves behind.
type writeFaultFn func(op string, b []byte, off int64) (short int, err error)

// fsyncFaultFn fails an fsync before it reaches the disk.
type fsyncFaultFn func(op string) error

var (
	writeFault atomic.Pointer[writeFaultFn]
	fsyncFault atomic.Pointer[fsyncFaultFn]
)

// faultWriteAt is f.WriteAt(b, off) behind the write seam.
func faultWriteAt(op string, f *os.File, b []byte, off int64) error {
	if fp := writeFault.Load(); fp != nil {
		if short, err := (*fp)(op, b, off); err != nil {
			if short > 0 && short < len(b) {
				f.WriteAt(b[:short], off)
			}
			return err
		}
	}
	_, err := f.WriteAt(b, off)
	return err
}

// faultSync is f.Sync() behind the fsync seam.
func faultSync(op string, f *os.File) error {
	if fp := fsyncFault.Load(); fp != nil {
		if err := (*fp)(op); err != nil {
			return err
		}
	}
	return f.Sync()
}
