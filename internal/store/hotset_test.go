package store

import (
	"bytes"
	"fmt"
	"testing"
)

func openHot(t *testing.T, dir string, hotBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, Options{Schema: testSchema, HotBytes: hotBytes})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHotSetServesRepeatedGets: the second Get of a key is a memory hit —
// no segment pread, no snapshot-path counter movement.
func TestHotSetServesRepeatedGets(t *testing.T) {
	s := openHot(t, t.TempDir(), 1<<20)
	defer s.Close()
	if _, err := s.Put("key-a", "t", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	// Put warms the hot set, so even the first Get is a memory hit.
	for i := 0; i < 3; i++ {
		typ, p, ok := s.Get("key-a")
		if !ok || typ != "t" || string(p) != "alpha" {
			t.Fatalf("get %d = (%q, %q, %v)", i, typ, p, ok)
		}
	}
	c := s.Counters()
	if c.HotHits != 3 {
		t.Fatalf("hot hits = %d, want 3", c.HotHits)
	}
	if c.SnapshotHits != 0 {
		t.Fatalf("snapshot hits = %d, want 0 (hot set should absorb them)", c.SnapshotHits)
	}
	hs := s.HotStats()
	if hs.Entries != 1 || hs.Hits != 3 || hs.MaxBytes != 1<<20 {
		t.Fatalf("hot stats = %+v", hs)
	}
}

// TestHotSetDisabled: HotBytes 0 keeps every byte on disk.
func TestHotSetDisabled(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	put(t, s, "key-a", "t", "alpha")
	wantEntry(t, s, "key-a", "t", "alpha")
	c := s.Counters()
	if c.HotHits != 0 {
		t.Fatalf("hot hits = %d with the hot set disabled", c.HotHits)
	}
	if hs := s.HotStats(); hs.MaxBytes != 0 || hs.Entries != 0 {
		t.Fatalf("hot stats = %+v, want zeroes", hs)
	}
}

// TestHotSetBoundedBytes: resident bytes never exceed the budget no matter
// how many distinct keys pass through.
func TestHotSetBoundedBytes(t *testing.T) {
	const budget = 256 << 10
	s := openHot(t, t.TempDir(), budget)
	defer s.Close()
	payload := bytes.Repeat([]byte("x"), 4<<10)
	for i := 0; i < 400; i++ {
		if _, err := s.Put(fmt.Sprintf("key-%04d", i), "t", payload); err != nil {
			t.Fatal(err)
		}
	}
	hs := s.HotStats()
	if hs.Bytes > budget {
		t.Fatalf("hot set holds %d bytes, budget %d", hs.Bytes, budget)
	}
	if hs.Entries == 0 {
		t.Fatal("hot set admitted nothing")
	}
	if hs.Evicts == 0 && hs.Rejects == 0 {
		t.Fatal("400 4KiB inserts into a 256KiB budget caused no eviction or rejection")
	}
	// Evicted keys still serve from disk.
	for i := 0; i < 400; i += 37 {
		k := fmt.Sprintf("key-%04d", i)
		if _, p, ok := s.Get(k); !ok || !bytes.Equal(p, payload) {
			t.Fatalf("evicted key %q lost", k)
		}
	}
}

// TestHotSetAdmissionPrefersFrequent: a stream of one-shot keys cannot
// wash out a frequently-used working set — the frequency sketch rejects
// cold candidates whose estimate does not beat the resident victim's.
// (One-shot keys displacing each other is allowed: ties admit.)
func TestHotSetAdmissionPrefersFrequent(t *testing.T) {
	// Each stripe's budget fits ~2 of these payloads, so every insert into
	// a warm stripe faces the admission filter.
	hot := newHotSet(16 * 12 << 10) // 12KiB per stripe
	payload := bytes.Repeat([]byte("v"), 4<<10)

	// Build a frequent working set: the sketch sees each key several times
	// before and after it becomes resident.
	resident := make([]string, 48)
	for i := range resident {
		resident[i] = fmt.Sprintf("res-%03d", i)
		for j := 0; j < 4; j++ {
			hot.get(resident[i])
		}
		hot.add(resident[i], "t", payload, nil)
	}
	for _, k := range resident {
		hot.get(k)
	}

	// Flood with one-shot keys: each arrives with a sketch estimate of 1
	// and must lose the admission duel against a frequent resident.
	for i := 0; i < 2048; i++ {
		hot.add(fmt.Sprintf("scan-%05d", i), "t", payload, nil)
	}
	st := hot.stats()
	if st.Rejects == 0 {
		t.Fatalf("scan flood recorded no admission rejects: %+v", st)
	}
	survivors := 0
	for _, k := range resident {
		if _, ok := hot.get(k); ok {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatal("a one-shot scan flood washed out the entire frequent working set")
	}
}

// TestHotSetGetDecoded: decoded values attach to resident entries and come
// back typed; invalidation removes both tiers.
func TestHotSetGetDecoded(t *testing.T) {
	s := openHot(t, t.TempDir(), 1<<20)
	defer s.Close()
	if _, err := s.Put("key-a", "t", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetDecoded("key-a"); ok {
		t.Fatal("GetDecoded hit before any value was attached")
	}
	type result struct{ N int }
	s.AddDecoded("key-a", result{41}, 5)
	v, ok := s.GetDecoded("key-a")
	if !ok {
		t.Fatal("GetDecoded missed after AddDecoded")
	}
	if r, _ := v.(result); r.N != 41 {
		t.Fatalf("GetDecoded = %#v", v)
	}
	s.Invalidate("key-a")
	if _, ok := s.GetDecoded("key-a"); ok {
		t.Fatal("GetDecoded hit after Invalidate")
	}
	if _, _, ok := s.Get("key-a"); ok {
		t.Fatal("Get hit after Invalidate")
	}
}

// TestHotSetSegmentedLRUPromotion: a re-referenced entry survives pressure
// that evicts its never-re-referenced cohort.
func TestHotSetSegmentedLRUPromotion(t *testing.T) {
	hot := newHotSet(16 * 16 << 10)
	payload := bytes.Repeat([]byte("v"), 2<<10)
	hot.add("keeper", "t", payload, nil)
	hot.get("keeper") // probation -> protected
	for i := 0; i < 64; i++ {
		hot.add(fmt.Sprintf("filler-%03d", i), "t", payload, nil)
	}
	if _, ok := hot.get("keeper"); !ok {
		t.Fatal("protected entry evicted while probation filler remained")
	}
}

// TestHotSetInvalidateAllowsReplacementPayload: after Invalidate+Put the
// hot tier must serve the new payload, not the cached old one.
func TestHotSetInvalidateAllowsReplacementPayload(t *testing.T) {
	s := openHot(t, t.TempDir(), 1<<20)
	defer s.Close()
	if _, err := s.Put("key-a", "t", []byte("old")); err != nil {
		t.Fatal(err)
	}
	s.Get("key-a")
	s.Invalidate("key-a")
	if _, err := s.Put("key-a", "t", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if _, p, ok := s.Get("key-a"); !ok || string(p) != "new" {
		t.Fatalf("post-replacement get = (%q, %v), want new payload", p, ok)
	}
}

// TestSketchEstimateSaturatesAndAges: counters cap at 15 and halve on
// aging, so ancient popularity cannot pin an entry forever.
func TestSketchEstimateSaturatesAndAges(t *testing.T) {
	var sk cmSketch
	sk.init(1024)
	h := hotHash("key-a")
	for i := 0; i < 100; i++ {
		sk.inc(h)
	}
	if got := sk.estimate(h); got != 15 {
		t.Fatalf("estimate after 100 incs = %d, want saturation at 15", got)
	}
	before := sk.estimate(h)
	sk.age()
	if got := sk.estimate(h); got != before/2 {
		t.Fatalf("estimate after aging = %d, want %d", got, before/2)
	}
}
