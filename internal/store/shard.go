package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// shardState is one shard's immutable published view. The maps are never
// mutated after publication — mutators clone and swap the pointer — so a
// reader that loaded a state may use it without any locking: the maps are
// frozen and the segment bytes they point at are committed, hence
// immutable.
//
// The live index is split in two so an append does not clone it whole:
// index holds the bulk, tail chains the last few appends newest-first.
// Publishing an append costs one tailEntry allocation — the chain is
// immutable, the new link just points at the old head — and every tailMax
// appends the chain is folded into a fresh bulk map, keeping lookups
// short. The two are disjoint by construction — Put refuses duplicate
// keys and every fold rebuilds the bulk — so lookups may probe them in
// either order.
type shardState struct {
	f      *os.File
	index  map[string]entryRef
	tail   *tailEntry // recent appends, newest first; nil when empty
	hdrLen int64
	size   int64 // offset one past the last parsed record
	// dead poisons the shard after a partial compaction swap (segment
	// renamed but reopen failed): f then points at the unlinked old inode,
	// where a Put would "succeed" into a file that vanishes at Close.
	// Writes report dead instead; reads miss.
	dead error
}

// tailEntry is one link of the append chain.
type tailEntry struct {
	key  string
	ref  entryRef
	next *tailEntry
	n    int // chain length including this link
}

// tailMax bounds the append chain: one more append folds it into the bulk.
const tailMax = 32

// lookup finds key in the state's live index (tail chain, then bulk).
func (st *shardState) lookup(key string) (entryRef, bool) {
	for e := st.tail; e != nil; e = e.next {
		if e.key == key {
			return e.ref, true
		}
	}
	ref, ok := st.index[key]
	return ref, ok
}

// live is the number of live entries.
func (st *shardState) live() int {
	n := len(st.index)
	if st.tail != nil {
		n += st.tail.n
	}
	return n
}

// merged returns a fresh map holding the full live index (bulk + tail).
func (st *shardState) merged() map[string]entryRef {
	out := make(map[string]entryRef, st.live()+1)
	for k, v := range st.index {
		out[k] = v
	}
	for e := st.tail; e != nil; e = e.next {
		out[e.key] = e.ref
	}
	return out
}

// shard is 1/numShards of the keyspace: its own segment file, its own
// cross-process lock, its own index. Mutators serialise on mu, coordinate
// with sibling processes through the shard's flock, and publish a fresh
// shardState; the hit path loads the current state and reads the segment
// without touching either lock.
type shard struct {
	segPath  string
	lockPath string
	schema   string
	readOnly bool
	ops      *opCounters

	mu    sync.Mutex
	lockF *os.File
	state atomic.Pointer[shardState]
	// fInfo is the published handle's identity (dev+ino), captured when the
	// handle was opened. Together with an unchanged size it proves the
	// segment at segPath is exactly as this handle last left it, letting the
	// per-put rescan get by on a single path stat. Mutated only under mu,
	// alongside every handle swap.
	fInfo os.FileInfo
	// retired holds pre-compaction segment handles until Close: a reader
	// that loaded the old state mid-swap can still finish its read.
	retired []*os.File
	reset   bool

	// sg binds the shard to the store's commit log (wal.go): put appends
	// here without fsyncing and settles durability through sg.commit
	// after mu and the flock are released, so the shard accepts the next
	// append while the group-committed log fsync is in flight.
	sg *syncGroup
}

// openShard opens one shard's segment + lock pair and builds its index.
func openShard(segPath, lockPath, schema string, readOnly bool, ops *opCounters) (*shard, error) {
	sh := &shard{segPath: segPath, lockPath: lockPath, schema: schema,
		readOnly: readOnly, ops: ops}
	lockFlags := os.O_RDWR | os.O_CREATE
	segFlags := os.O_RDWR | os.O_CREATE
	if readOnly {
		lockFlags, segFlags = os.O_RDONLY, os.O_RDONLY
	}
	var err error
	if sh.lockF, err = os.OpenFile(lockPath, lockFlags, 0o644); err != nil {
		// A directory holding just copied segments (no lock files) is still
		// inspectable: nothing else can be writing it through this
		// directory, so read-only access proceeds lock-free.
		if !(readOnly && os.IsNotExist(err)) {
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.lockF = nil
	}
	var f *os.File
	if f, err = os.OpenFile(segPath, segFlags, 0o644); err != nil {
		sh.closeFiles()
		return nil, fmt.Errorf("store: %w", err)
	}
	sh.state.Store(&shardState{f: f, index: map[string]entryRef{}})
	if fi, err := f.Stat(); err == nil {
		sh.fInfo = fi
	}
	// The opening scan (and a possible schema reset or tail truncation)
	// must not race other writers.
	if err := sh.withFileLock(!readOnly, func() error { return sh.loadLocked() }); err != nil {
		sh.closeFiles()
		return nil, err
	}
	return sh, nil
}

// lock acquires the shard mutex, counting the acquisition.
func (sh *shard) lock() {
	sh.ops.mutexAcqs.Add(1)
	sh.mu.Lock()
}

// withFileLock runs fn while holding the shard's cross-process lock:
// exclusive for writers, shared for readers scanning the tail. In-process
// callers are already serialised by sh.mu, so the flock state of the lock
// descriptor is never manipulated by two goroutines at once.
func (sh *shard) withFileLock(exclusive bool, fn func() error) error {
	if sh.lockF != nil {
		sh.ops.flockAcqs.Add(1)
	}
	return flockHeld(sh.lockF, sh.lockPath, exclusive, fn)
}

// closeFiles closes every file handle the shard holds.
func (sh *shard) closeFiles() error {
	var err error
	if st := sh.state.Load(); st != nil && st.f != nil {
		err = st.f.Close()
	}
	for _, f := range sh.retired {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	sh.retired = nil
	if sh.lockF != nil {
		if cerr := sh.lockF.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// loadLocked validates the header and builds the index. File lock held.
func (sh *shard) loadLocked() error {
	st := sh.state.Load()
	fi, err := st.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		if sh.readOnly {
			// A brand-new empty file is a valid empty shard; the header is
			// adopted once a writer lays it down.
			return nil
		}
		return sh.writeHeaderLocked()
	}
	onDisk, hdrLen, err := readHeader(st.f)
	switch {
	case err != nil || onDisk != sh.schema:
		if sh.readOnly {
			if err != nil {
				return fmt.Errorf("store: %s: unrecognised format: %w", sh.segPath, err)
			}
			return fmt.Errorf("store: %s holds schema %q, want %q (stale store; a read-write open would reset it)",
				sh.segPath, onDisk, sh.schema)
		}
		// Version-mismatch invalidation: every entry was produced by a
		// different simulator/result version and must not be served.
		sh.reset = true
		if err := st.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return sh.writeHeaderLocked()
	default:
		sh.state.Store(&shardState{f: st.f, index: st.index, hdrLen: hdrLen, size: hdrLen})
		return sh.rescanLocked(!sh.readOnly)
	}
}

// writeHeaderLocked initialises an empty segment. File lock held.
func (sh *shard) writeHeaderLocked() error {
	st := sh.state.Load()
	hdr := encodeHeader(sh.schema)
	if _, err := st.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sh.state.Store(&shardState{f: st.f, index: st.index,
		hdrLen: int64(len(hdr)), size: int64(len(hdr))})
	return nil
}

// rescanLocked parses records from the published tail to EOF and publishes
// the extended state. Checksum failures skip the record (its key recomputes,
// and the record's claimed extent is re-synchronised past if its lengths
// were the damaged part); an unparseable tail stops the scan and, when
// truncateTorn, is cut off so appends stay well-formed. Both sh.mu and the
// file lock are held.
func (sh *shard) rescanLocked(truncateTorn bool) error {
	st := sh.state.Load()
	if st.dead != nil {
		return st.dead
	}
	pfi, perr := os.Stat(sh.segPath)
	if perr == nil && st.size > st.hdrLen && st.hdrLen > 0 && sh.fInfo != nil &&
		os.SameFile(pfi, sh.fInfo) && pfi.Size() == st.size {
		// Same inode, same size, and at least one committed record: the
		// segment is byte-for-byte as this handle last published it, so there
		// is nothing to scan, truncate or re-verify — the per-put common
		// case, served by the one stat above. A foreign schema reset shrinks
		// the file to a bare header, which the size check catches; an empty
		// shard skips the fast path entirely because a reset leaves its size
		// unchanged when the schema strings happen to share a length. (Only a
		// reset that regrew the file to the byte-exact old size would slip
		// past; it is caught the moment the size diverges, and checksummed
		// reads fail closed meanwhile.)
		return nil
	}
	fi, err := st.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A sibling handle's compaction replaces the segment by rename, leaving
	// this descriptor on the unlinked pre-compaction inode — where a scan
	// sees stale bytes and an append vanishes. Follow the path: reopen,
	// retire the old handle (a concurrent snapshot reader may still be on
	// it), and rebuild from scratch.
	if perr == nil && !os.SameFile(pfi, fi) {
		flags := os.O_RDWR
		if sh.readOnly {
			flags = os.O_RDONLY
		}
		f, err := os.OpenFile(sh.segPath, flags, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		sh.retired = append(sh.retired, st.f)
		st = &shardState{f: f, index: map[string]entryRef{}}
		sh.state.Store(st)
		if fi, err = f.Stat(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		sh.fInfo = fi
	}
	size := fi.Size()
	hdrLen, scanned, index, overlay := st.hdrLen, st.size, st.index, st.tail
	if hdrLen == 0 {
		if size == 0 {
			return nil
		}
		// The header did not exist yet when this handle opened: a read-only
		// Open may race a writer's very first open and see a zero-length
		// segment. Once bytes appear, the header must be parsed — and its
		// schema checked — before any of them are read as records.
		onDisk, h, err := readHeader(st.f)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if onDisk != sh.schema {
			return fmt.Errorf("store: %s holds schema %q, want %q", sh.segPath, onDisk, sh.schema)
		}
		hdrLen = h
		if scanned < h {
			scanned = h
		}
	}
	if truncateTorn && hdrLen > 0 {
		// Writers are about to truncate at — and append past — offsets
		// derived from this handle's history, so re-verify that history is
		// still the file's: a reset by a different-schema process can regrow
		// the segment to any size, making the shrink check below
		// insufficient on its own. A header of another schema means every
		// offset we hold is meaningless; fail the write rather than
		// truncate someone else's committed records.
		onDisk, _, err := readHeader(st.f)
		if err != nil {
			return fmt.Errorf("store: segment replaced under this handle: %w", err)
		}
		if onDisk != sh.schema {
			return fmt.Errorf("store: segment reset to schema %q under this %q handle (reopen the store)",
				onDisk, sh.schema)
		}
	}
	if size < scanned {
		// The segment shrank under us (a reset we survived only as a
		// reader): our whole index points at vanished bytes. Drop it and
		// rebuild from the on-disk header, which the checks above proved
		// still carries our schema.
		onDisk, h, err := readHeader(st.f)
		if err != nil {
			return fmt.Errorf("store: segment replaced under this handle: %w", err)
		}
		if onDisk != sh.schema {
			return fmt.Errorf("store: segment reset to schema %q under this %q handle (reopen the store)",
				onDisk, sh.schema)
		}
		index, overlay = map[string]entryRef{}, nil
		hdrLen, scanned = h, h
	}
	if size <= scanned {
		if hdrLen != st.hdrLen || scanned != st.size {
			sh.state.Store(&shardState{f: st.f, index: index, tail: overlay, hdrLen: hdrLen, size: scanned})
		}
		return nil
	}
	buf := make([]byte, size-scanned)
	if _, err := st.f.ReadAt(buf, scanned); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cloned := make(map[string]entryRef, len(index)+tailMax+1)
	for k, v := range index {
		cloned[k] = v
	}
	for e := overlay; e != nil; e = e.next {
		cloned[e.key] = e.ref
	}
	tail, _ := walkRecords(buf, scanned, func(off int64, rec parsedRecord, rst recStatus) {
		if rst == recGood {
			cloned[rec.key] = entryRef{off: off, recLen: rec.recLen,
				typeName: rec.typeName, payloadLen: len(rec.payload), stamp: rec.stamp}
		}
	})
	if tail < size && truncateTorn && !sh.readOnly {
		if err := st.f.Truncate(tail); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	sh.state.Store(&shardState{f: st.f, index: cloned, hdrLen: hdrLen, size: tail})
	return nil
}

// get serves key from the shard. The fast path loads the published state
// and, when the key is indexed, reads and verifies the record with no
// mutex and no flock: committed bytes are immutable, so the snapshot can
// never promise bytes a writer might still change. Anything else — a miss,
// a record that no longer verifies — falls to the locked slow path.
func (sh *shard) get(key string) (typeName string, payload []byte, ok bool) {
	st := sh.state.Load()
	if st.dead == nil {
		if ref, hit := st.lookup(key); hit {
			if p, err := readEntry(st.f, key, ref); err == nil {
				sh.ops.snapshotHits.Add(1)
				tmSnapshotHits.Inc()
				return ref.typeName, p, true
			}
		}
	}
	return sh.getSlow(key)
}

// getSlow is the locked miss path: re-check under the mutex, drop an entry
// whose record no longer verifies (concurrent compaction or bit rot) so
// the cell recomputes, and rescan the tail under a shared flock when the
// segment grew — results appended by sibling processes become visible
// mid-run.
func (sh *shard) getSlow(key string) (string, []byte, bool) {
	sh.ops.slowGets.Add(1)
	tmSlowGets.Inc()
	sh.lock()
	defer sh.mu.Unlock()
	st := sh.state.Load()
	if st.dead != nil {
		return "", nil, false
	}
	if ref, hit := st.lookup(key); hit {
		p, err := readEntry(st.f, key, ref)
		if err == nil {
			return ref.typeName, p, true
		}
		cloned := st.merged()
		delete(cloned, key)
		sh.state.Store(&shardState{f: st.f, index: cloned, hdrLen: st.hdrLen, size: st.size, dead: st.dead})
		st = sh.state.Load()
	}
	if changed, err := sh.segChanged(st); err == nil && changed {
		// Another process appended since our last scan (or compacted the
		// segment out from under our descriptor); committed records are
		// immutable, so a shared lock suffices (and only guards against
		// scanning a record mid-append).
		_ = sh.withFileLock(false, func() error { return sh.rescanLocked(false) })
		st = sh.state.Load()
		if ref, hit := st.lookup(key); hit {
			if p, err := readEntry(st.f, key, ref); err == nil {
				return ref.typeName, p, true
			}
		}
	}
	return "", nil, false
}

// segChanged reports whether the segment at the shard's path no longer
// matches the published state — grown (a sibling appended) or a different
// inode entirely (a sibling compacted).
func (sh *shard) segChanged(st *shardState) (bool, error) {
	pfi, err := os.Stat(sh.segPath)
	if err != nil {
		return false, err
	}
	ffi, err := st.f.Stat()
	if err != nil {
		return true, nil
	}
	return pfi.Size() != st.size || !os.SameFile(pfi, ffi), nil
}

// put appends an entry, reporting whether it wrote: a key already present
// is left untouched and reports false.
func (sh *shard) put(key, typeName string, payload []byte, stamp int64) (added bool, err error) {
	// Snapshot dup check before any lock: records are immutable, so a key
	// present in the published state stays served and the put is a no-op. A
	// stale miss just falls through to the locked re-check.
	if st := sh.state.Load(); st.dead == nil {
		if _, dup := st.lookup(key); dup {
			return false, nil
		}
	}
	rec := encodeRecord(key, typeName, payload, stamp)
	sh.lock()
	err = func() error {
		defer sh.mu.Unlock()
		if sh.readOnly {
			return fmt.Errorf("store: read-only")
		}
		if st := sh.state.Load(); st.dead != nil {
			return st.dead
		}
		return sh.withFileLock(true, func() error {
			// Catch up on other writers (and truncate a crashed writer's torn
			// tail) so the append lands at a record boundary.
			if err := sh.rescanLocked(true); err != nil {
				return err
			}
			if _, dup := sh.state.Load().lookup(key); dup {
				return nil
			}
			if err := sh.appendLocked(rec); err != nil {
				return err
			}
			added = true
			return nil
		})
	}()
	if err != nil || !added {
		return added, err
	}
	// Durability is settled outside mu and the flock through the store's
	// commit log: the shard accepts the next append while the log fsync is
	// in flight, and one group-committed fsync of that single file covers
	// every concurrent put regardless of how many shards they landed on.
	return true, sh.sg.commit(rec)
}

// appendLocked writes one pre-encoded record at the committed tail and
// publishes the extended state. Both sh.mu and the exclusive file lock are
// held, and the published size must equal the file size. Durability is the
// caller's job (sg.commit): in-process readers may briefly see a record the
// disk has not acknowledged, which the crash model already tolerates — a
// torn tail is truncated on the next open.
func (sh *shard) appendLocked(rec []byte) error {
	st := sh.state.Load()
	if err := faultWriteAt(fpSegAppend, st.f, rec, st.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	parsed, status := parseRecord(rec)
	if status != recGood {
		return fmt.Errorf("store: internal error: appended record does not verify")
	}
	ref := entryRef{off: st.size, recLen: parsed.recLen,
		typeName: parsed.typeName, payloadLen: len(parsed.payload), stamp: parsed.stamp}
	next := &shardState{f: st.f, index: st.index, hdrLen: st.hdrLen,
		size: st.size + parsed.recLen}
	if st.tail != nil && st.tail.n >= tailMax {
		next.index = st.merged()
		next.index[parsed.key] = ref
	} else {
		chained := 1
		if st.tail != nil {
			chained = st.tail.n + 1
		}
		next.tail = &tailEntry{key: parsed.key, ref: ref, next: st.tail, n: chained}
	}
	sh.state.Store(next)
	return nil
}

// appendBatchLocked appends pre-verified foreign records (an Import),
// deduplicating by key, with one sync and one published state for the
// whole batch. A crash mid-batch leaves a torn tail, which the next open
// truncates — exactly as for a torn single append.
func (sh *shard) appendBatchLocked(recs [][]byte) (added, skipped int, err error) {
	st := sh.state.Load()
	cloned := st.merged()
	size := st.size
	for _, rec := range recs {
		parsed, status := parseRecord(rec)
		if status != recGood {
			return added, skipped, fmt.Errorf("store: internal error: batch record does not verify")
		}
		if _, dup := cloned[parsed.key]; dup {
			skipped++
			continue
		}
		if _, err := st.f.WriteAt(rec, size); err != nil {
			return added, skipped, fmt.Errorf("store: %w", err)
		}
		cloned[parsed.key] = entryRef{off: size, recLen: parsed.recLen,
			typeName: parsed.typeName, payloadLen: len(parsed.payload), stamp: parsed.stamp}
		size += parsed.recLen
		added++
	}
	if added > 0 {
		if err := st.f.Sync(); err != nil {
			return added, skipped, fmt.Errorf("store: %w", err)
		}
		sh.state.Store(&shardState{f: st.f, index: cloned, hdrLen: st.hdrLen, size: size})
	}
	return added, skipped, nil
}

// invalidate drops key from the shard's published index, so the next Put
// for it appends a fresh record, which last-wins over the old one at every
// future scan.
func (sh *shard) invalidate(key string) {
	sh.lock()
	defer sh.mu.Unlock()
	st := sh.state.Load()
	if _, hit := st.lookup(key); !hit {
		return
	}
	cloned := st.merged()
	delete(cloned, key)
	sh.state.Store(&shardState{f: st.f, index: cloned, hdrLen: st.hdrLen,
		size: st.size, dead: st.dead})
}

// verify re-reads every record in the shard's segment and checks its
// checksum, folding the outcome into res.
func (sh *shard) verify(res *VerifyResult) error {
	sh.lock()
	defer sh.mu.Unlock()
	err := sh.withFileLock(false, func() error {
		if err := sh.rescanLocked(false); err != nil {
			return err
		}
		st := sh.state.Load()
		fi, err := st.f.Stat()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		size := fi.Size()
		if size <= st.hdrLen {
			return nil
		}
		buf := make([]byte, size-st.hdrLen)
		if _, err := st.f.ReadAt(buf, st.hdrLen); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		tail, garbage := walkRecords(buf, st.hdrLen, func(_ int64, rec parsedRecord, rst recStatus) {
			res.Records++
			if rst == recBadCRC {
				res.Corrupt++
			}
		})
		res.TornBytes += size - tail
		res.GarbageBytes += garbage
		return nil
	})
	res.Live += sh.state.Load().live()
	return err
}

// liveRefs returns the shard's live entries in segment (write) order, from
// the published snapshot.
func (sh *shard) liveRefs() []keyedRef {
	st := sh.state.Load()
	all := make([]keyedRef, 0, st.live())
	for k, ref := range st.index {
		all = append(all, keyedRef{k, ref})
	}
	for e := st.tail; e != nil; e = e.next {
		all = append(all, keyedRef{e.key, e.ref})
	}
	sortRefsByOff(all)
	return all
}

// compact rewrites the shard's segment keeping only entries keep admits:
// stale duplicates, checksum-failed records and rejected entries are
// dropped, survivors are rewritten to a temporary segment which atomically
// replaces the old one. The pre-compaction handle is retired, not closed,
// so concurrent snapshot readers finish their reads against the old inode.
func (sh *shard) compact(keep func(key string, ref entryRef) bool) (kept, evicted int, bytesAfter int64, err error) {
	sh.lock()
	defer sh.mu.Unlock()
	err = sh.withFileLock(true, func() error {
		if err := sh.rescanLocked(true); err != nil {
			return err
		}
		st := sh.state.Load()
		all := sh.liveRefs()
		live := all[:0]
		for _, p := range all {
			if !keep(p.key, p.ref) {
				evicted++
				continue
			}
			live = append(live, p)
		}

		tmpPath := sh.segPath + ".tmp"
		tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer os.Remove(tmpPath) // no-op after a successful rename
		if _, err := tmp.Write(encodeHeader(sh.schema)); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
		for _, p := range live {
			rec := make([]byte, p.ref.recLen)
			if _, err := st.f.ReadAt(rec, p.ref.off); err != nil {
				tmp.Close()
				return fmt.Errorf("store: %w", err)
			}
			if _, err := tmp.Write(rec); err != nil {
				tmp.Close()
				return fmt.Errorf("store: %w", err)
			}
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmpPath, sh.segPath); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		// Swap to the new segment and rebuild the index from it. Failing
		// here leaves the published handle on the unlinked pre-compaction
		// inode, so the shard must die rather than let writes vanish into
		// it.
		f, err := os.OpenFile(sh.segPath, os.O_RDWR, 0o644)
		if err != nil {
			dead := fmt.Errorf("store: segment reopen after compaction failed (reopen the store): %w", err)
			sh.state.Store(&shardState{f: st.f, index: map[string]entryRef{},
				hdrLen: st.hdrLen, size: st.size, dead: dead})
			return dead
		}
		sh.retired = append(sh.retired, st.f)
		hdr, hdrLen, err := readHeader(f)
		if err != nil || hdr != sh.schema {
			f.Close()
			dead := fmt.Errorf("store: compacted segment fails verification (reopen the store): %v", err)
			sh.state.Store(&shardState{f: st.f, index: map[string]entryRef{},
				hdrLen: st.hdrLen, size: st.size, dead: dead})
			return dead
		}
		if nfi, err := f.Stat(); err == nil {
			sh.fInfo = nfi
		}
		sh.state.Store(&shardState{f: f, index: map[string]entryRef{}, hdrLen: hdrLen, size: hdrLen})
		if err := sh.rescanLocked(true); err != nil {
			return err
		}
		st = sh.state.Load()
		kept = st.live()
		bytesAfter = st.size
		return nil
	})
	return kept, evicted, bytesAfter, err
}
