//go:build !unix

package store

import (
	"os"
	"sync"
)

// lockMus serialises access per lock file within this process on platforms
// without flock. Cross-process sharing of one directory is not coordinated
// here: the record checksums still prevent a torn append from being served
// — at worst the tail is truncated at the next open — but concurrent
// processes should use distinct directories.
var lockMus sync.Map // lock-file path -> *sync.Mutex

// flockHeld on platforms without flock degrades to in-process, per-lock-file
// serialisation: any number of handles on one directory within this process
// remain fully coordinated (each lock file — one per shard, one per layout —
// maps to one mutex); exclusive and shared acquisitions collapse together,
// which is fine at the store's call rates.
func flockHeld(f *os.File, name string, exclusive bool, fn func() error) error {
	if f == nil {
		return fn()
	}
	v, _ := lockMus.LoadOrStore(name, &sync.Mutex{})
	mu := v.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	return fn()
}
