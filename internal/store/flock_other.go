//go:build !unix

package store

import "sync"

// dirMus serialises store access per cache directory within this process
// on platforms without flock. Cross-process sharing of one directory is
// not coordinated here: the record checksums still prevent a torn append
// from being served — at worst the tail is truncated at the next open —
// but concurrent processes should use distinct directories.
var dirMus sync.Map // dir -> *sync.Mutex

// withLock on platforms without flock degrades to in-process, per-directory
// serialisation: any number of Store handles on one directory within this
// process remain fully coordinated (s.mu only covers a single handle);
// exclusive and shared acquisitions collapse to one mutex, which is fine at
// the store's call rates.
func (s *Store) withLock(exclusive bool, fn func() error) error {
	v, _ := dirMus.LoadOrStore(s.dir, &sync.Mutex{})
	mu := v.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	return fn()
}
