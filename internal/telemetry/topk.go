package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TopK tracks per-label counts and latency sums for the K heaviest labels
// using the space-saving algorithm: a full stream of any cardinality is
// summarised in exactly K entries. When a new label arrives with the
// table full, it replaces the current minimum-count entry and inherits
// its count (recording the inherited amount as the entry's error bound),
// which guarantees every true heavy hitter's count is between
// (observed - error) and observed. This is the eHashPipe-style bounded
// per-label attribution: a million-cell campaign with unbounded distinct
// batch labels costs O(K) memory, and the labels that dominate the run
// are reported exactly (error 0) whenever cardinality <= K.
//
// Observations are cell-granular (one per completed experiment cell, not
// per simulated access), so a mutex is the right lock: the tracker is off
// every per-access hot path by design.
type TopK struct {
	mu sync.Mutex
	k  int
	m  map[string]*tkEntry
}

type tkEntry struct {
	label string
	count uint64
	err   uint64 // count inherited from an evicted entry (overestimate bound)
	sumNs uint64
	maxNs int64
}

// TopKEntry is one snapshot row.
type TopKEntry struct {
	Label string
	// Count observations attributed to the label; overcounts by at most
	// Err (0 when the label never displaced another).
	Count uint64
	Err   uint64
	SumNs uint64
	MaxNs int64
}

// NewTopK registers a top-K tracker. It is exposed as a Prometheus
// summary family: one _sum/_count pair per tracked label.
func (r *Registry) NewTopK(name, help string, k int) *TopK {
	if k < 1 {
		k = 1
	}
	return r.register(name, help, "summary", "", func() series {
		return &TopK{k: k, m: make(map[string]*tkEntry, k)}
	}).(*TopK)
}

// Observe attributes one latency to label. Empty labels are dropped —
// they carry no attribution.
func (t *TopK) Observe(label string, ns int64) {
	if label == "" {
		return
	}
	if ns < 0 {
		ns = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[label]; ok {
		e.count++
		e.sumNs += uint64(ns)
		if ns > e.maxNs {
			e.maxNs = ns
		}
		return
	}
	if len(t.m) < t.k {
		t.m[label] = &tkEntry{label: label, count: 1, sumNs: uint64(ns), maxNs: ns}
		return
	}
	// Space-saving replacement: evict the minimum-count entry, inherit its
	// count as this label's error bound. K is small (tens), so a linear
	// scan beats maintaining a heap at cell granularity.
	var victim *tkEntry
	for _, e := range t.m {
		if victim == nil || e.count < victim.count ||
			(e.count == victim.count && e.label < victim.label) {
			victim = e
		}
	}
	delete(t.m, victim.label)
	t.m[label] = &tkEntry{label: label, count: victim.count + 1, err: victim.count,
		sumNs: uint64(ns), maxNs: ns}
}

// Snapshot returns the tracked entries sorted by count descending (label
// ascending as the tiebreak).
func (t *TopK) Snapshot() []TopKEntry {
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, TopKEntry{Label: e.label, Count: e.count, Err: e.err,
			SumNs: e.sumNs, MaxNs: e.maxNs})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	return out
}

func (t *TopK) labelString() string { return "" }

// writeExpo renders the tracker as a label-attributed summary: per label
// a _sum (seconds) and _count pair, in snapshot (count-descending) order
// re-sorted by label for deterministic output.
func (t *TopK) writeExpo(b *strings.Builder, name string) {
	rows := t.Snapshot()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	for _, row := range rows {
		ls := renderLabels([]Label{{Key: "label", Value: row.Label}})
		b.WriteString(name)
		b.WriteString("_sum{")
		b.WriteString(ls)
		b.WriteString("} ")
		b.WriteString(formatFloat(float64(row.SumNs) / 1e9))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_count{")
		b.WriteString(ls)
		b.WriteString("} ")
		b.WriteString(strconv.FormatUint(row.Count, 10))
		b.WriteByte('\n')
	}
}

func (t *TopK) statusValue() any { return t.Snapshot() }
