package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// The histogram's bucket layout is fixed at 2^k-nanosecond boundaries —
// the bounded-memory log-bucket design eHashPipe argues for: 65 counters
// cover every representable latency from sub-nanosecond to centuries, the
// layout is identical for every histogram ever created, and two snapshots
// merge by element-wise addition with no rebucketing error.
//
// Exposition trims the range to [expoLoBucket, expoHiBucket] (256 ns to
// ~137 s): observations below fold into the first emitted bucket and
// observations above appear only in +Inf, which keeps a scrape compact
// without losing any count. The upper bound leaves room for the remote
// tier's worst legitimate spans — a campaign degrading through retry
// backoff and breaker cooldowns can spend tens of seconds on a cell and
// should still resolve to a bucket, not vanish into +Inf. The
// full-resolution array stays available via Snapshot.
const (
	histNumBuckets = 65 // bits.Len64 range: 0..64
	expoLoBucket   = 8  // le 2^8 ns = 256ns
	expoHiBucket   = 37 // le 2^37 ns ≈ 137s
)

// Histogram is a fixed-size log-bucket latency histogram. Observe is
// lock-free and wait-free: one bits.Len64, two atomic adds.
type Histogram struct {
	ls     string
	counts [histNumBuckets]atomic.Uint64
	sumNs  atomic.Uint64
}

// NewHistogram registers a histogram with the registry.
func (r *Registry) NewHistogram(name, help string, labels ...Label) *Histogram {
	ls := renderLabels(labels)
	return r.register(name, help, "histogram", ls, func() series {
		return &Histogram{ls: ls}
	}).(*Histogram)
}

// Observe records one latency in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.counts[histBucket(ns)].Add(1)
	if ns > 0 {
		h.sumNs.Add(uint64(ns))
	}
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable with
// other snapshots of the same (universal) bucket layout.
type HistSnapshot struct {
	Counts [histNumBuckets]uint64
	SumNs  uint64
}

// Snapshot copies the histogram's counters. Under concurrent writers the
// copy is torn-but-monotonic (each counter individually exact at its read
// instant); once writers quiesce it is exact.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// Merge adds o into s element-wise. Log-bucket layouts are universal, so
// merging is exact — the property that lets per-shard or per-worker
// histograms aggregate into one distribution with no resampling error.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumNs += o.SumNs
}

// Count returns the total number of observations in the snapshot.
func (s HistSnapshot) Count() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

func (h *Histogram) labelString() string { return h.ls }

// writeExpo renders the Prometheus histogram lines: cumulative
// 2^k-nanosecond buckets (in seconds) over the trimmed exposition range,
// then +Inf, _sum and _count.
func (h *Histogram) writeExpo(b *strings.Builder, name string) {
	s := h.Snapshot()
	writeHistExpo(b, name, h.ls, s)
}

// writeHistExpo is shared by Histogram and the top-K tracker's summary
// rendering helpers; it renders snapshot s under name with base labels ls.
func writeHistExpo(b *strings.Builder, name, ls string, s HistSnapshot) {
	var cum uint64
	bucketLine := func(le string, v uint64) {
		b.WriteString(name)
		b.WriteString("_bucket{")
		if ls != "" {
			b.WriteString(ls)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(v, 10))
		b.WriteByte('\n')
	}
	for i := 0; i < histNumBuckets; i++ {
		if i <= expoHiBucket {
			cum += s.Counts[i]
		}
		if i >= expoLoBucket && i <= expoHiBucket {
			bucketLine(formatFloat(math.Ldexp(1, i)/1e9), cum)
		}
	}
	bucketLine("+Inf", s.Count())
	suffix := func(sfx, val string) {
		b.WriteString(name)
		b.WriteString(sfx)
		if ls != "" {
			b.WriteByte('{')
			b.WriteString(ls)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	suffix("_sum", formatFloat(float64(s.SumNs)/1e9))
	suffix("_count", strconv.FormatUint(s.Count(), 10))
}

func (h *Histogram) statusValue() any {
	s := h.Snapshot()
	return map[string]any{"count": s.Count(), "sum_seconds": float64(s.SumNs) / 1e9}
}

// HistogramVec is a fixed-cardinality family of histograms indexed by a
// small integer — the per-shard latency shape: 16 store shards, one
// histogram each, label rendered as a zero-padded index.
type HistogramVec struct {
	hs []*Histogram
}

// NewHistogramVec registers n histograms under one name, labelled
// key="00".."NN".
func (r *Registry) NewHistogramVec(name, help, key string, n int) *HistogramVec {
	v := &HistogramVec{hs: make([]*Histogram, n)}
	for i := range v.hs {
		v.hs[i] = r.NewHistogram(name, help, Label{Key: key, Value: twoDigit(i)})
	}
	return v
}

// Observe records one latency into member i.
func (v *HistogramVec) Observe(i int, ns int64) { v.hs[i].Observe(ns) }

// At returns member i (for tests and merging).
func (v *HistogramVec) At(i int) *Histogram { return v.hs[i] }

// Len returns the member count.
func (v *HistogramVec) Len() int { return len(v.hs) }

// MergedSnapshot merges every member's snapshot — exact, because the
// bucket layout is universal.
func (v *HistogramVec) MergedSnapshot() HistSnapshot {
	var s HistSnapshot
	for _, h := range v.hs {
		s.Merge(h.Snapshot())
	}
	return s
}

func twoDigit(i int) string {
	if i < 10 {
		return "0" + strconv.Itoa(i)
	}
	return strconv.Itoa(i)
}

// sortedBucketUpperNs lists the exposition bucket upper bounds in
// nanoseconds (for tests that pin the exposition range).
func sortedBucketUpperNs() []float64 {
	var out []float64
	for i := expoLoBucket; i <= expoHiBucket; i++ {
		out = append(out, math.Ldexp(1, i))
	}
	sort.Float64s(out)
	return out
}
