package telemetry

import (
	"context"
	"runtime/pprof"
)

// WithCellLabel runs fn under the runtime/pprof label cell=label when
// cell labelling is active, so CPU-profile samples taken while fn runs —
// whether through -cpuprofile or /debug/pprof/profile — are attributed to
// the campaign label (`go tool pprof -tags`, or `-focus` on a label
// regex). With labelling off (no profiler, no listener) the wrapper is a
// single atomic load and a direct call: the executor can wrap every cell
// unconditionally.
func WithCellLabel(label string, fn func()) {
	if label == "" || !cellLabels.Load() {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("cell", label), func(context.Context) {
		fn()
	})
}
