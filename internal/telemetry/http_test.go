package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("h_cells_total", "test").Add(11)
	r.AddStatus("lab", func() any { return map[string]int{"hits": 4} })
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "h_cells_total 11") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, srv.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc["lab"].(map[string]any)["hits"].(float64) != 4 {
		t.Fatalf("/statusz missing status source: %s", body)
	}

	code, body = get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	code, body = get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("/ = %d:\n%s", code, body)
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

// TestServe covers the real listener path the CLIs use (-telemetry
// 127.0.0.1:0): Serve binds, reports its address, flips the active and
// cell-label switches, and serves the default registry.
func TestServe(t *testing.T) {
	SetActive(false)
	SetCellLabels(false)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		srv.Close()
		SetActive(false)
		SetCellLabels(false)
	}()
	if !Active() || !CellLabelsActive() {
		t.Fatalf("Serve did not activate span timing and cell labels")
	}
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "go_goroutines") {
		t.Fatalf("default-registry scrape = %d:\n%.300s", code, body)
	}
}
