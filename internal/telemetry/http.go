package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry HTTP handler for a registry:
//
//	/metrics       Prometheus text exposition
//	/statusz       JSON snapshot (status sources + condensed metrics)
//	/debug/pprof/  net/http/pprof (profile, heap, goroutine, trace, ...)
//	/              a plain index of the above
//
// CPU profiles taken through /debug/pprof/profile are cell-label
// attributed whenever the executor runs with labels active (Serve enables
// them), so a mid-campaign profile says which campaign labels burned the
// samples.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.WritePrometheus())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Status())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "activemem telemetry\n\n/metrics\n/statusz\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry listener on addr (host:port; port 0 picks a
// free port) exposing the Default registry, and switches span timing and
// pprof cell labels on. It returns once the listener is bound; requests
// are served on a background goroutine until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	SetActive(true)
	SetCellLabels(true)
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(Default), ReadHeaderTimeout: 10 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight requests are abandoned — the
// process is exiting anyway when campaigns call this.
func (s *Server) Close() error { return s.srv.Close() }
