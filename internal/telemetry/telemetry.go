// Package telemetry is the campaign observability substrate: a
// process-wide metrics registry whose hot-path instruments are lock-free
// (striped atomic counters, atomic gauges, fixed-size log-bucket latency
// histograms, a bounded top-K labelled-latency tracker), exposed over an
// opt-in HTTP listener serving Prometheus text ("/metrics"), a JSON
// snapshot ("/statusz") and net/http/pprof ("/debug/pprof/").
//
// Design constraints, in order:
//
//   - Writers never block and never contend on a mutex: a counter add is
//     one atomic RMW on a randomly selected padded stripe, a histogram
//     observe is one bits.Len64 plus two atomic adds, a gauge set is one
//     atomic store. Snapshot readers (scrapes) see torn-but-monotonic
//     values, which is the normal monitoring contract.
//   - Memory is bounded regardless of campaign size: histograms hold a
//     fixed 2^k-nanosecond bucket array (eHashPipe's log-bucket idea), and
//     per-label latency attribution goes through a space-saving top-K
//     tracker instead of an unbounded per-label map, so a million-cell
//     campaign with a million distinct batch labels still costs O(K).
//   - The simulator's own counters are never written from here; packages
//     expose already-counted totals through snapshot adapters (GaugeFunc,
//     AddStatus) or publish deltas at scheduling boundaries gated on
//     Active(), so golden-snapshot bit-identity is preserved by
//     construction and the hot simulator loops carry no new writes.
//
// Latency *timing* (the time.Now pairs around spans) is gated on Active(),
// which Serve sets: with the listener off, an instrumented operation pays
// at most an atomic load and an atomic add. Event counters (cells by tier,
// store ops, hot-set policy events) are always live — they are single
// atomic adds on paths that already do real work.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// active gates latency timing (the time.Now pairs around spans) and the
// engine's sim-total publication; cellLabels gates runtime/pprof label
// wrapping of executor workers. Both default off so a CLI run without
// -telemetry or -cpuprofile pays only atomic counter adds.
var (
	active     atomic.Bool
	cellLabels atomic.Bool
)

// SetActive switches span timing (and other scrape-worthy-but-not-free
// collection) on or off process-wide. Serve calls SetActive(true).
func SetActive(v bool) { active.Store(v) }

// Active reports whether span timing is on.
func Active() bool { return active.Load() }

// SetCellLabels switches pprof cell-label wrapping on or off. Both Serve
// and prof.Start (when a -cpuprofile is requested) enable it, so CPU
// profiles attribute samples to campaign labels with or without the HTTP
// listener.
func SetCellLabels(v bool) { cellLabels.Store(v) }

// CellLabelsActive reports whether pprof cell-label wrapping is on.
func CellLabelsActive() bool { return cellLabels.Load() }

// base anchors NowNs: durations derived from it use the monotonic clock.
var base = time.Now()

// NowNs returns a monotonic process-relative timestamp in nanoseconds,
// the span instruments' time base.
func NowNs() int64 { return int64(time.Since(base)) }

// Label is one fixed metric label. Instruments are registered with their
// full label set; there is no dynamic label cardinality anywhere in the
// registry (the top-K tracker is the one bounded exception).
type Label struct {
	Key, Value string
}

// renderLabels renders a label set in Prometheus form, sorted by key,
// without the braces: `k1="v1",k2="v2"`. Empty for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// series is one exposition time series: an instrument plus its rendered
// label set.
type series interface {
	labelString() string
	// writeExpo appends the series' exposition lines for family name.
	writeExpo(b *strings.Builder, name string)
	// statusValue returns the series' value for the JSON snapshot.
	statusValue() any
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []series
}

// Registry holds metric families and status sources. The zero value is
// not ready; use NewRegistry. Registration takes the registry mutex
// (instruments are created once at init or setup time); instrument writes
// never touch the registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	status   map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, status: map[string]func() any{}}
}

// Default is the process-wide registry every package-level instrument in
// this repository registers with, and the one Serve exposes.
var Default = NewRegistry()

// register adds (or returns the existing) series under name+labels.
// A name reused with a different metric type panics — it would corrupt
// the exposition — while re-registering an identical series returns the
// original instrument, so idempotent setup code is safe.
func (r *Registry) register(name, help, typ string, ls string, mk func() series) series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labelString() == ls {
			return s
		}
	}
	s := mk()
	f.series = append(f.series, s)
	return s
}

// AddStatus registers (or replaces) a named status source: a callback
// whose result is embedded in the /statusz JSON document under the given
// name. Sources are for rich structured snapshots that do not fit the
// metric model — lab.Stats, store.OpCounters, hot-set summaries.
func (r *Registry) AddStatus(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.status[name] = fn
}

// ---- Counter ----

// counterStripes is the stripe count of a Counter: padded cache lines so
// concurrent adders on different stripes never share a line. Eight
// stripes cover the worker counts this repository runs (GOMAXPROCS-bound
// pools); the stripe is picked per add with the per-thread cheap runtime
// RNG, which spreads adders across stripes without any shared state.
const counterStripes = 8

type counterStripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter. Add is
// lock-free and wait-free: one cheap per-thread random draw and one
// atomic add on the selected stripe.
type Counter struct {
	ls      string
	stripes [counterStripes]counterStripe
}

// NewCounter registers a counter with the registry.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	ls := renderLabels(labels)
	return r.register(name, help, "counter", ls, func() series {
		return &Counter{ls: ls}
	}).(*Counter)
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.stripes[rand.Uint32()%counterStripes].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the stripes. The sum is torn-but-monotonic under concurrent
// adds, exact once writers quiesce.
func (c *Counter) Load() uint64 {
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

func (c *Counter) labelString() string { return c.ls }

func (c *Counter) writeExpo(b *strings.Builder, name string) {
	b.WriteString(name)
	if c.ls != "" {
		b.WriteByte('{')
		b.WriteString(c.ls)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.Load(), 10))
	b.WriteByte('\n')
}

func (c *Counter) statusValue() any { return c.Load() }

// ---- Gauge ----

// Gauge is an int64 gauge (queue depths, busy workers, resident pools).
type Gauge struct {
	ls string
	v  atomic.Int64
}

// NewGauge registers a gauge with the registry.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	ls := renderLabels(labels)
	return r.register(name, help, "gauge", ls, func() series {
		return &Gauge{ls: ls}
	}).(*Gauge)
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set sets the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the gauge value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) labelString() string { return g.ls }

func (g *Gauge) writeExpo(b *strings.Builder, name string) {
	b.WriteString(name)
	if g.ls != "" {
		b.WriteByte('{')
		b.WriteString(g.ls)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.Load(), 10))
	b.WriteByte('\n')
}

func (g *Gauge) statusValue() any { return g.Load() }

// ---- GaugeFunc ----

// gaugeFunc is a snapshot adapter: a float gauge whose value is read from
// a callback at exposition time. This is how already-counted totals
// (runtime stats, simulator counters owned elsewhere) surface without any
// new hot-path write.
type gaugeFunc struct {
	ls string
	fn func() float64
}

// NewGaugeFunc registers a callback-backed gauge. fn runs on every scrape
// and must be cheap and concurrency-safe.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ls := renderLabels(labels)
	r.register(name, help, "gauge", ls, func() series {
		return &gaugeFunc{ls: ls, fn: fn}
	})
}

func (g *gaugeFunc) labelString() string { return g.ls }

func (g *gaugeFunc) writeExpo(b *strings.Builder, name string) {
	b.WriteString(name)
	if g.ls != "" {
		b.WriteByte('{')
		b.WriteString(g.ls)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.fn()))
	b.WriteByte('\n')
}

func (g *gaugeFunc) statusValue() any { return g.fn() }

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- exposition ----

// WritePrometheus renders every family in the Prometheus text format,
// families sorted by name and series by label string, so the output is
// deterministic for a quiesced registry (the golden exposition test pins
// it).
func (r *Registry) WritePrometheus() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		ss := append([]series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labelString() < ss[j].labelString() })
		for _, s := range ss {
			s.writeExpo(&b, f.name)
		}
	}
	return b.String()
}

// Status returns the /statusz document body: every status source's
// snapshot plus a condensed value per metric series.
func (r *Registry) Status() map[string]any {
	r.mu.Lock()
	type namedFam struct {
		name string
		f    *family
	}
	fams := make([]namedFam, 0, len(r.families))
	for n, f := range r.families {
		fams = append(fams, namedFam{n, f})
	}
	sources := make(map[string]func() any, len(r.status))
	for n, fn := range r.status {
		sources[n] = fn
	}
	r.mu.Unlock()

	metrics := map[string]any{}
	for _, nf := range fams {
		for _, s := range nf.f.series {
			key := nf.name
			if ls := s.labelString(); ls != "" {
				key += "{" + ls + "}"
			}
			metrics[key] = s.statusValue()
		}
	}
	out := map[string]any{"metrics": metrics}
	for n, fn := range sources {
		out[n] = fn()
	}
	return out
}

// Runtime snapshot adapters on the default registry: totals the Go
// runtime already counts, read only at scrape time.
func init() {
	Default.NewGaugeFunc("go_goroutines",
		"Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	Default.NewGaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	Default.NewGaugeFunc("process_uptime_seconds",
		"Seconds since the process's telemetry clock was initialised.",
		func() float64 { return time.Since(base).Seconds() })
}

// histBucket returns the log2 bucket index for a nanosecond value: bucket
// i holds values v with 2^(i-1) <= v < 2^i (bucket 0 holds v <= 0). One
// bits.Len64 — no loop, no float math — keeps Observe wait-free.
func histBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}
