package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one striped counter from many goroutines
// while readers snapshot it, then checks the quiesced sum is exact. Run
// under -race this also proves the write path takes no lock.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_counter_total", "test")
	const writers, perWriter = 16, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Load()
				_ = r.WritePrometheus()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter sum = %d, want %d", got, writers*perWriter)
	}
}

// TestHistogramConcurrentAndMerge checks concurrent observers against an
// exact expected distribution, and that per-writer histograms merge into
// the same snapshot as one shared histogram.
func TestHistogramConcurrentAndMerge(t *testing.T) {
	r := NewRegistry()
	shared := r.NewHistogram("t_shared_ns", "test")
	parts := make([]*Histogram, 8)
	for i := range parts {
		parts[i] = r.NewHistogram("t_part_ns", "test", Label{Key: "w", Value: twoDigit(i)})
	}
	var wg sync.WaitGroup
	for w := 0; w < len(parts); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ns := int64(1) << uint(i%40) // exercise 40 distinct buckets
				shared.Observe(ns)
				parts[w].Observe(ns)
			}
		}(w)
	}
	wg.Wait()

	want := shared.Snapshot()
	var merged HistSnapshot
	for _, p := range parts {
		merged.Merge(p.Snapshot())
	}
	if merged != want {
		t.Fatalf("merged per-writer snapshots differ from the shared histogram")
	}
	if got := want.Count(); got != 8*5000 {
		t.Fatalf("histogram count = %d, want %d", got, 8*5000)
	}
	// 2^k lands in bucket k+1 (2^k <= v < 2^(k+1) ⇒ bits.Len64 = k+1).
	for k := 0; k < 40; k++ {
		if got := want.Counts[k+1]; got != 8*5000/40 {
			t.Fatalf("bucket %d count = %d, want %d", k+1, got, 8*5000/40)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewRegistry().NewHistogram("t_edges_ns", "test")
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1)
	h.Observe(2)
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if s.Counts[0] != 2 { // <= 0
		t.Fatalf("bucket 0 = %d, want 2", s.Counts[0])
	}
	if s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("buckets 1,2 = %d,%d, want 1,1", s.Counts[1], s.Counts[2])
	}
	if s.Counts[63] != 1 {
		t.Fatalf("bucket 63 = %d, want 1 (MaxInt64)", s.Counts[63])
	}
	if got, want := s.Count(), uint64(5); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if n := len(sortedBucketUpperNs()); n != expoHiBucket-expoLoBucket+1 {
		t.Fatalf("exposition bucket count = %d", n)
	}
}

// TestTopKExact: at cardinality <= K the tracker is exact — every label's
// count and sum are precise and the error bound is zero.
func TestTopKExact(t *testing.T) {
	tk := NewRegistry().NewTopK("t_labels_seconds", "test", 8)
	counts := map[string]int{"a": 7, "b": 3, "c": 5, "d": 1}
	for label, n := range counts {
		for i := 0; i < n; i++ {
			tk.Observe(label, 1000)
		}
	}
	tk.Observe("", 42) // dropped
	rows := tk.Snapshot()
	if len(rows) != len(counts) {
		t.Fatalf("tracked %d labels, want %d", len(rows), len(counts))
	}
	if rows[0].Label != "a" || rows[0].Count != 7 {
		t.Fatalf("top row = %+v, want a/7", rows[0])
	}
	for _, row := range rows {
		if int(row.Count) != counts[row.Label] {
			t.Errorf("label %q count = %d, want %d", row.Label, row.Count, counts[row.Label])
		}
		if row.Err != 0 {
			t.Errorf("label %q error bound = %d, want 0 at small cardinality", row.Label, row.Err)
		}
		if row.SumNs != row.Count*1000 {
			t.Errorf("label %q sum = %d, want %d", row.Label, row.SumNs, row.Count*1000)
		}
	}
}

// TestTopKBounded: with more labels than K the table stays at K entries
// and a genuinely heavy label survives the churn with its observed count
// bounded by count-err <= true <= count (the space-saving guarantee).
func TestTopKBounded(t *testing.T) {
	const k = 4
	tk := NewRegistry().NewTopK("t_bounded_seconds", "test", k)
	const heavyTrue = 500
	for i := 0; i < heavyTrue; i++ {
		tk.Observe("heavy", 10)
		if i%2 == 0 {
			tk.Observe(fmt.Sprintf("light-%d", i), 10) // 250 one-shot labels
		}
	}
	rows := tk.Snapshot()
	if len(rows) != k {
		t.Fatalf("tracked %d labels, want %d", len(rows), k)
	}
	if rows[0].Label != "heavy" {
		t.Fatalf("top label = %q, want heavy", rows[0].Label)
	}
	h := rows[0]
	if h.Count < heavyTrue || h.Count-h.Err > heavyTrue {
		t.Fatalf("heavy count=%d err=%d does not bracket true count %d", h.Count, h.Err, heavyTrue)
	}
}

// TestTopKConcurrent just proves the tracker is race-clean under
// concurrent observers and snapshotters.
func TestTopKConcurrent(t *testing.T) {
	tk := NewRegistry().NewTopK("t_conc_seconds", "test", 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tk.Observe(fmt.Sprintf("label-%d", (w+i)%32), int64(i))
				if i%100 == 0 {
					_ = tk.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if rows := tk.Snapshot(); len(rows) != 16 {
		t.Fatalf("tracked %d labels, want 16", len(rows))
	}
}

func TestRegistryReregistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("t_again_total", "test", Label{Key: "k", Value: "v"})
	b := r.NewCounter("t_again_total", "test", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatalf("identical registration returned a new instrument")
	}
	c := r.NewCounter("t_again_total", "test", Label{Key: "k", Value: "w"})
	if a == c {
		t.Fatalf("distinct label value returned the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("conflicting type registration did not panic")
		}
	}()
	r.NewGauge("t_again_total", "test")
}

// TestGoldenExposition pins the /metrics text format: family ordering,
// HELP/TYPE headers, label rendering, histogram bucket trimming and the
// top-K summary form. Any format change must update this golden
// deliberately.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_cells_total", "Cells resolved.", Label{Key: "tier", Value: "compute"})
	c.Add(3)
	r.NewCounter("demo_cells_total", "Cells resolved.", Label{Key: "tier", Value: "memo"}).Add(5)
	g := r.NewGauge("demo_queue_depth", "Tasks queued.")
	g.Set(2)
	r.NewGaugeFunc("demo_ratio", "A snapshot adapter.", func() float64 { return 0.5 })
	h := r.NewHistogram("demo_latency_seconds", "Cell latency.")
	h.Observe(100)           // below exposition range: folds into first bucket
	h.Observe(1 << 10)       // 1024ns -> bucket le 2^11
	h.Observe(2_000_000_000) // 2s -> bucket le 2^31 ≈ 2.15s
	h.Observe(1 << 40)       // above range: +Inf only
	tk := r.NewTopK("demo_label_seconds", "Per-label spans.", 4)
	tk.Observe("sweep", 1_500_000_000)
	tk.Observe("sweep", 500_000_000)
	tk.Observe("grid", 1_000_000_000)

	got := r.WritePrometheus()
	want := strings.Join([]string{
		"# HELP demo_cells_total Cells resolved.",
		"# TYPE demo_cells_total counter",
		`demo_cells_total{tier="compute"} 3`,
		`demo_cells_total{tier="memo"} 5`,
		"# HELP demo_label_seconds Per-label spans.",
		"# TYPE demo_label_seconds summary",
		`demo_label_seconds_sum{label="grid"} 1`,
		`demo_label_seconds_count{label="grid"} 1`,
		`demo_label_seconds_sum{label="sweep"} 2`,
		`demo_label_seconds_count{label="sweep"} 2`,
		"# HELP demo_latency_seconds Cell latency.",
		"# TYPE demo_latency_seconds histogram",
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`demo_latency_seconds_bucket{le="2.56e-07"} 1`,  // 100ns folded in
		`demo_latency_seconds_bucket{le="2.048e-06"} 2`, // +1024ns
		`demo_latency_seconds_bucket{le="2.147483648"} 3`,
		`demo_latency_seconds_bucket{le="17.179869184"} 3`,
		`demo_latency_seconds_bucket{le="+Inf"} 4`,
		`demo_latency_seconds_count 4`,
		"# HELP demo_queue_depth Tasks queued.",
		"# TYPE demo_queue_depth gauge",
		"demo_queue_depth 2",
		"# HELP demo_ratio A snapshot adapter.",
		"# TYPE demo_ratio gauge",
		"demo_ratio 0.5",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
	// Cumulative bucket monotonicity over the whole family.
	var last uint64
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "demo_latency_seconds_bucket") {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
				t.Fatalf("unparsable bucket line %q", line)
			}
			if v < last {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			last = v
		}
	}
}

func TestStatusSources(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_status_total", "test").Add(7)
	r.AddStatus("lab", func() any { return map[string]int{"computed": 9} })
	st := r.Status()
	if st["lab"].(map[string]int)["computed"] != 9 {
		t.Fatalf("status source missing: %v", st)
	}
	if st["metrics"].(map[string]any)["t_status_total"].(uint64) != 7 {
		t.Fatalf("condensed metrics missing: %v", st["metrics"])
	}
}

func TestWithCellLabel(t *testing.T) {
	ran := 0
	SetCellLabels(false)
	WithCellLabel("x", func() { ran++ })
	SetCellLabels(true)
	defer SetCellLabels(false)
	WithCellLabel("x", func() { ran++ })
	WithCellLabel("", func() { ran++ })
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}
