// The coordinator's HTTP surface: five POST endpoints taking small JSON
// bodies plus a GET status page, all under PathPrefix. The handler is
// mounted beside labcached's cell store (one process serves both the
// results and the leases) or alone in cmd/labcoord; auth is layered on
// top by the caller via remote.RequireAuth, so the wire posture matches
// the cell endpoints exactly.

package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
)

// maxBody bounds request bodies. Manifests are the largest payload: a
// full paper grid is a few hundred cells × ~100 bytes, far under this.
const maxBody = 1 << 20

// NewHandler serves c under PathPrefix.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPrefix+"claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if !decode(w, r, &req) || !require(w, req.Key != "" && req.Worker != "") {
			return
		}
		reply(w, c.Claim(req))
	})
	mux.HandleFunc(PathPrefix+"done", func(w http.ResponseWriter, r *http.Request) {
		var req DoneRequest
		if !decode(w, r, &req) || !require(w, req.Key != "" && req.Worker != "") {
			return
		}
		reply(w, c.Done(req))
	})
	mux.HandleFunc(PathPrefix+"fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decode(w, r, &req) || !require(w, req.Key != "" && req.Worker != "") {
			return
		}
		reply(w, c.Fail(req))
	})
	mux.HandleFunc(PathPrefix+"heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) || !require(w, req.Worker != "") {
			return
		}
		reply(w, c.Heartbeat(req))
	})
	mux.HandleFunc(PathPrefix+"manifest", func(w http.ResponseWriter, r *http.Request) {
		var req ManifestRequest
		if !decode(w, r, &req) {
			return
		}
		reply(w, c.Manifest(req))
	})
	mux.HandleFunc(PathPrefix+"status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		reply(w, c.Status())
	})
	return mux
}

// decode enforces POST + bounded JSON body into v, answering the error
// itself when the request is malformed.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		msg := err.Error()
		code := http.StatusBadRequest
		if strings.Contains(msg, "request body too large") {
			code = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad request: "+msg, code)
		return false
	}
	return true
}

// require 400s when a decoded request misses mandatory fields.
func require(w http.ResponseWriter, ok bool) bool {
	if !ok {
		http.Error(w, "bad request: missing key/worker", http.StatusBadRequest)
	}
	return ok
}

// reply writes v as JSON.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
