// Lease-lifecycle edge cases under an injected clock: expiry mid-compute
// (late ack rejected, exactly one done per cell), heartbeats landing
// exactly on the deadline, steal-vs-original completion races, the two
// failure policies, and the bounded per-worker table. Every test drives
// the coordinator directly — the clock never sleeps.

package fleet

import (
	"fmt"
	"testing"
	"time"
)

// testClock is a manually advanced clock for Options.Now.
type testClock struct{ now time.Time }

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestCoord(clk *testClock, mod func(*Options)) *Coordinator {
	o := Options{
		LeaseTTL:   10 * time.Second,
		StealAfter: 30 * time.Second,
		Now:        clk.Now,
	}
	if mod != nil {
		mod(&o)
	}
	return NewCoordinator(o)
}

func mustClaimRun(t *testing.T, c *Coordinator, key, worker string) ClaimResponse {
	t.Helper()
	resp := c.Claim(ClaimRequest{Key: key, Label: "test", Worker: worker})
	if resp.Action != ActionRun {
		t.Fatalf("claim(%s by %s) = %+v, want run", key, worker, resp)
	}
	return resp
}

func TestLeaseLifecycle(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	r := mustClaimRun(t, c, "k1", "w1")
	if r.TTLMillis != 10_000 || r.Steal {
		t.Fatalf("grant = %+v", r)
	}
	// A second worker must wait while the lease is live.
	if resp := c.Claim(ClaimRequest{Key: "k1", Worker: "w2"}); resp.Action != ActionWait || resp.RetryMillis <= 0 {
		t.Fatalf("concurrent claim = %+v, want wait", resp)
	}
	// Completion wins; the waiter now sees done.
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w1", Lease: r.Lease}); !d.Accepted {
		t.Fatal("ack under a live lease rejected")
	}
	if resp := c.Claim(ClaimRequest{Key: "k1", Worker: "w2"}); resp.Action != ActionDone {
		t.Fatalf("claim after done = %+v", resp)
	}
	s := c.Status()
	if s.Done != 1 || s.CellsDone != 1 || s.LeasesGranted != 1 || s.Expired != 0 {
		t.Fatalf("status = %+v", s)
	}
}

// A lease expiring mid-compute: the cell is re-leased to another worker,
// and the original's late ack must not produce a second completion.
func TestExpiryMidComputeRejectsLateAck(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	r1 := mustClaimRun(t, c, "k1", "w1")
	clk.Advance(10*time.Second + time.Nanosecond) // past the deadline

	// The cell is requeued and re-leased.
	r2 := mustClaimRun(t, c, "k1", "w2")
	if r2.Lease == r1.Lease {
		t.Fatal("re-lease reused the expired lease id")
	}
	s := c.Status()
	if s.Expired != 1 || s.Requeued != 1 {
		t.Fatalf("expiry accounting = %+v", s)
	}

	// w1 finishes its (now orphaned) compute and acks late: rejected.
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w1", Lease: r1.Lease}); d.Accepted {
		t.Fatal("late ack accepted")
	}
	// w2's ack is the completion of record.
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w2", Lease: r2.Lease}); !d.Accepted {
		t.Fatal("live ack rejected")
	}
	// A replay of w2's own ack is also late now.
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w2", Lease: r2.Lease}); d.Accepted {
		t.Fatal("duplicate ack accepted")
	}
	s = c.Status()
	if s.CellsDone != 1 || s.LateAcks != 2 {
		t.Fatalf("exactly-one accounting = %+v", s)
	}
}

// A heartbeat arriving exactly at the deadline saves the lease (expiry
// is strictly now > deadline); one nanosecond later loses it.
func TestHeartbeatExactlyAtDeadline(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	r := mustClaimRun(t, c, "k1", "w1")
	clk.Advance(10 * time.Second) // exactly the deadline
	hb := c.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []LeaseRef{{Key: "k1", Lease: r.Lease}}})
	if len(hb.Lost) != 0 {
		t.Fatalf("on-deadline heartbeat lost leases: %v", hb.Lost)
	}
	// The heartbeat re-armed the full TTL.
	clk.Advance(10 * time.Second)
	hb = c.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []LeaseRef{{Key: "k1", Lease: r.Lease}}})
	if len(hb.Lost) != 0 {
		t.Fatalf("re-armed heartbeat lost leases: %v", hb.Lost)
	}
	// Now miss the window by a nanosecond.
	clk.Advance(10*time.Second + time.Nanosecond)
	hb = c.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []LeaseRef{{Key: "k1", Lease: r.Lease}}})
	if len(hb.Lost) != 1 || hb.Lost[0] != "k1" {
		t.Fatalf("expired heartbeat = %+v, want lost [k1]", hb)
	}
	if s := c.Status(); s.Expired != 1 {
		t.Fatalf("status = %+v", s)
	}
}

// Work-stealing: a cell leased past StealAfter is duplicated to an idle
// claimant; whichever ack lands first wins and the other is late.
func TestStealRaceExactlyOneCompletion(t *testing.T) {
	for _, winner := range []string{"original", "thief"} {
		t.Run(winner, func(t *testing.T) {
			clk := newTestClock()
			c := newTestCoord(clk, nil)

			r1 := mustClaimRun(t, c, "k1", "w1")
			// Keep w1's lease alive with heartbeats inside each TTL window
			// while wall time approaches the steal threshold.
			hb := func() {
				t.Helper()
				resp := c.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []LeaseRef{{Key: "k1", Lease: r1.Lease}}})
				if len(resp.Lost) != 0 {
					t.Fatalf("heartbeat lost leases: %v", resp.Lost)
				}
			}
			for i := 0; i < 3; i++ { // t = 27s, before StealAfter=30s
				clk.Advance(9 * time.Second)
				hb()
			}
			if resp := c.Claim(ClaimRequest{Key: "k1", Worker: "w2"}); resp.Action != ActionWait {
				t.Fatalf("pre-threshold claim = %+v, want wait", resp)
			}
			// Past StealAfter (measured from the grant) a duplicate is handed out.
			clk.Advance(5 * time.Second) // t = 32s; w1's deadline is 37s
			r2 := mustClaimRun(t, c, "k1", "w2")
			if !r2.Steal {
				t.Fatalf("duplicate grant not marked steal: %+v", r2)
			}
			// MaxLeases caps further duplicates.
			if resp := c.Claim(ClaimRequest{Key: "k1", Worker: "w3"}); resp.Action != ActionWait {
				t.Fatalf("over-cap claim = %+v, want wait", resp)
			}

			first, second := DoneRequest{Key: "k1", Worker: "w1", Lease: r1.Lease},
				DoneRequest{Key: "k1", Worker: "w2", Lease: r2.Lease}
			if winner == "thief" {
				first, second = second, first
			}
			if d := c.Done(first); !d.Accepted {
				t.Fatalf("%s's ack rejected", winner)
			}
			if d := c.Done(second); d.Accepted {
				t.Fatal("losing ack accepted: two completions for one cell")
			}
			s := c.Status()
			if s.CellsDone != 1 || s.Steals != 1 || s.LateAcks != 1 {
				t.Fatalf("steal accounting = %+v", s)
			}
		})
	}
}

// A worker retrying a claim whose response it lost gets its own lease
// re-affirmed (same id, extended deadline), not a wait verdict.
func TestReclaimIsIdempotent(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	r1 := mustClaimRun(t, c, "k1", "w1")
	clk.Advance(9 * time.Second)
	r2 := mustClaimRun(t, c, "k1", "w1")
	if r2.Lease != r1.Lease {
		t.Fatalf("re-claim minted a new lease: %d vs %d", r2.Lease, r1.Lease)
	}
	// The re-claim extended the deadline: 9s later the lease still lives.
	clk.Advance(9 * time.Second)
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w1", Lease: r1.Lease}); !d.Accepted {
		t.Fatal("ack after extension rejected")
	}
	if s := c.Status(); s.LeasesGranted != 1 {
		t.Fatalf("re-claim counted as a new lease: %+v", s)
	}
}

func TestFirstErrorPolicyAborts(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	r := mustClaimRun(t, c, "k1", "w1")
	mustClaimRun(t, c, "k2", "w2")
	f := c.Fail(FailRequest{Key: "k1", Worker: "w1", Lease: r.Lease, Error: "boom"})
	if !f.Aborted {
		t.Fatal("first-error fail did not abort")
	}
	// Every later claim — new cells included — answers abort.
	if resp := c.Claim(ClaimRequest{Key: "k3", Worker: "w2"}); resp.Action != ActionAbort || resp.Error != "boom" {
		t.Fatalf("post-abort claim = %+v", resp)
	}
	s := c.Status()
	if !s.Aborted || s.AbortError != "boom" || s.Failed != 1 {
		t.Fatalf("status = %+v", s)
	}
}

func TestKeepGoingRetriesThenFailsPermanently(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, func(o *Options) { o.KeepGoing = true; o.MaxRetries = 2 })

	// MaxRetries re-leases after failures: attempts 1..3 fail, the cell
	// only then becomes permanent.
	for attempt := 1; attempt <= 3; attempt++ {
		r := mustClaimRun(t, c, "k1", "w1")
		f := c.Fail(FailRequest{Key: "k1", Worker: "w1", Lease: r.Lease,
			Error: fmt.Sprintf("boom %d", attempt)})
		if f.Aborted {
			t.Fatalf("keep-going aborted on attempt %d", attempt)
		}
	}
	resp := c.Claim(ClaimRequest{Key: "k1", Worker: "w2"})
	if resp.Action != ActionFailed || resp.Error != "boom 3" {
		t.Fatalf("claim on spent cell = %+v, want failed", resp)
	}
	// Other cells are unaffected.
	mustClaimRun(t, c, "k2", "w2")
	s := c.Status()
	if s.Aborted || s.Failed != 1 || s.CellsFailed != 1 {
		t.Fatalf("status = %+v", s)
	}
}

// Expiries are not failures: a cell can expire endlessly without eating
// its keep-going failure budget.
func TestExpiryDoesNotConsumeFailureBudget(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, func(o *Options) { o.KeepGoing = true; o.MaxRetries = 1 })

	for i := 0; i < 5; i++ {
		mustClaimRun(t, c, "k1", "w1")
		clk.Advance(11 * time.Second)
	}
	r := mustClaimRun(t, c, "k1", "w2")
	if d := c.Done(DoneRequest{Key: "k1", Worker: "w2", Lease: r.Lease}); !d.Accepted {
		t.Fatal("cell unusable after repeated expiries")
	}
	if s := c.Status(); s.Expired != 5 || s.Failed != 0 {
		t.Fatalf("status = %+v", s)
	}
}

func TestManifestRegistersAdvisoryCells(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, nil)

	m := c.Manifest(ManifestRequest{Cells: []ManifestCell{
		{Key: "k1", Label: "a"}, {Key: "k2", Label: "b"}, {Key: ""},
	}})
	if m.Registered != 2 || m.Known != 0 {
		t.Fatalf("manifest = %+v", m)
	}
	m = c.Manifest(ManifestRequest{Cells: []ManifestCell{{Key: "k1"}, {Key: "k3"}}})
	if m.Registered != 1 || m.Known != 1 {
		t.Fatalf("re-manifest = %+v", m)
	}
	if s := c.Status(); s.Cells != 3 || s.Pending != 3 {
		t.Fatalf("status = %+v", s)
	}
	// Claims for unregistered keys still register on the fly.
	mustClaimRun(t, c, "k9", "w1")
	if s := c.Status(); s.Cells != 4 {
		t.Fatalf("dynamic registration missing: %+v", s)
	}
}

// The worker table is bounded: the stalest row is evicted, aggregate
// counters stay exact.
func TestWorkerTableBounded(t *testing.T) {
	clk := newTestClock()
	c := newTestCoord(clk, func(o *Options) { o.WorkerTableSize = 4 })

	for i := 0; i < 8; i++ {
		clk.Advance(time.Second)
		key := fmt.Sprintf("k%d", i)
		worker := fmt.Sprintf("w%d", i)
		r := mustClaimRun(t, c, key, worker)
		c.Done(DoneRequest{Key: key, Worker: worker, Lease: r.Lease})
	}
	s := c.Status()
	if len(s.Workers) != 4 {
		t.Fatalf("worker table holds %d rows, want 4", len(s.Workers))
	}
	for _, w := range s.Workers {
		if w.ID < "w4" {
			t.Fatalf("stale worker %s survived eviction", w.ID)
		}
	}
	if s.CellsDone != 8 || s.LeasesGranted != 8 {
		t.Fatalf("aggregate counters inexact after eviction: %+v", s)
	}
}
