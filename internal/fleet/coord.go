// The coordinator: lease arbitration over one campaign's cell keyspace.
// All state lives behind one mutex — the unit of work it arbitrates is
// an engine simulation taking milliseconds to minutes, so coordination
// traffic is hundreds of tiny RPCs per campaign, not a hot path. Expiry
// is lazy: stale leases are pruned at the top of every RPC against an
// injectable clock, which keeps the coordinator timer-free and makes
// every expiry edge case directly testable.

package fleet

import (
	"sync"
	"time"
)

// Options tunes a Coordinator. Zero values select the documented
// defaults.
type Options struct {
	// LeaseTTL bounds how long a lease lives without a heartbeat
	// (default 15s). A worker that dies mid-cell costs the campaign at
	// most one TTL before the cell is requeued.
	LeaseTTL time.Duration
	// StealAfter is how long a cell may stay continuously leased before
	// an idle claimant is granted a duplicate lease (default 45s).
	// First completion wins; content addressing makes the loser's work
	// byte-identical and therefore harmless.
	StealAfter time.Duration
	// MaxLeases caps concurrent leases per cell, original plus steals
	// (default 2). More duplicates than that burns compute without
	// improving tail latency.
	MaxLeases int
	// KeepGoing selects the failure policy: false (default) aborts the
	// campaign on the first failed cell; true re-leases a failed cell up
	// to MaxRetries times and then marks it permanently failed.
	KeepGoing bool
	// MaxRetries bounds compute-failure re-leases per cell under
	// KeepGoing (default 2). Lease expiries are not failures and do not
	// count: a crashed worker says nothing about the cell.
	MaxRetries int
	// WorkerTableSize bounds the per-worker accounting table (default
	// 64); when full, the stalest entry is evicted. Aggregate counters
	// are exact regardless — only per-worker attribution is bounded,
	// eHashPipe-style.
	WorkerTableSize int
	// Now injects the clock for tests (default time.Now).
	Now func() time.Time
}

func (o *Options) withDefaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.StealAfter <= 0 {
		o.StealAfter = 45 * time.Second
	}
	if o.MaxLeases <= 0 {
		o.MaxLeases = 2
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.WorkerTableSize <= 0 {
		o.WorkerTableSize = 64
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellFailed
)

type lease struct {
	id       uint64
	worker   string
	granted  time.Time
	deadline time.Time
	steal    bool
}

type cell struct {
	key      string
	label    string
	state    cellState
	leases   []lease // live leases, oldest first; len ≤ MaxLeases
	failures int     // compute failures so far (keep-going policy)
	err      string  // terminal error once state == cellFailed
}

type workerInfo struct {
	ID       string    `json:"id"`
	LastSeen time.Time `json:"last_seen"`
	Leased   uint64    `json:"leased"`
	Stolen   uint64    `json:"stolen"`
	Done     uint64    `json:"done"`
	Expired  uint64    `json:"expired"`
	Failed   uint64    `json:"failed"`
}

// Coordinator arbitrates leases over one campaign. Safe for concurrent
// use; construct with NewCoordinator.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	cells    map[string]*cell
	workers  map[string]*workerInfo
	nextID   uint64
	aborted  bool
	abortErr string

	nLeases, nSteals, nExpired, nRequeued uint64
	nLateAcks, nDone, nFailed             uint64
}

// NewCoordinator returns a coordinator with no cells registered; the
// manifest endpoint and incoming claims populate the keyspace.
func NewCoordinator(o Options) *Coordinator {
	o.withDefaults()
	return &Coordinator{
		opts:    o,
		cells:   map[string]*cell{},
		workers: map[string]*workerInfo{},
	}
}

// touchWorker finds-or-creates the accounting row for id, evicting the
// stalest row when the bounded table is full. Callers hold c.mu.
func (c *Coordinator) touchWorker(id string, now time.Time) *workerInfo {
	if w, ok := c.workers[id]; ok {
		w.LastSeen = now
		return w
	}
	if len(c.workers) >= c.opts.WorkerTableSize {
		var stalest *workerInfo
		for _, w := range c.workers {
			if stalest == nil || w.LastSeen.Before(stalest.LastSeen) {
				stalest = w
			}
		}
		delete(c.workers, stalest.ID)
	}
	w := &workerInfo{ID: id, LastSeen: now}
	c.workers[id] = w
	return w
}

// prune expires every lease whose deadline has passed (strictly: a
// heartbeat landing exactly on the deadline still saves the lease) and
// requeues cells left with no live lease. Callers hold c.mu.
func (c *Coordinator) prune(now time.Time) {
	for _, ce := range c.cells {
		if ce.state != cellLeased {
			continue
		}
		live := ce.leases[:0]
		for _, l := range ce.leases {
			if now.After(l.deadline) {
				c.nExpired++
				mExpired.Inc()
				if w, ok := c.workers[l.worker]; ok {
					w.Expired++
				}
				continue
			}
			live = append(live, l)
		}
		ce.leases = live
		if len(ce.leases) == 0 {
			ce.state = cellPending
			c.nRequeued++
			mRequeued.Inc()
		}
	}
}

// Claim handles one claim RPC.
func (c *Coordinator) Claim(req ClaimRequest) ClaimResponse {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)
	w := c.touchWorker(req.Worker, now)

	if c.aborted {
		mClaims[claimAbort].Inc()
		return ClaimResponse{Action: ActionAbort, Error: c.abortErr}
	}
	ce, ok := c.cells[req.Key]
	if !ok {
		ce = &cell{key: req.Key, label: req.Label}
		c.cells[req.Key] = ce
	}
	if ce.label == "" {
		ce.label = req.Label
	}

	switch ce.state {
	case cellDone:
		mClaims[claimDone].Inc()
		return ClaimResponse{Action: ActionDone}
	case cellFailed:
		mClaims[claimFailed].Inc()
		return ClaimResponse{Action: ActionFailed, Error: ce.err}
	case cellLeased:
		// A claimant that already holds a lease on this cell is retrying a
		// claim whose response it never saw: re-affirm the same lease and
		// extend it, exactly like a heartbeat.
		for i := range ce.leases {
			if ce.leases[i].worker == req.Worker {
				ce.leases[i].deadline = now.Add(c.opts.LeaseTTL)
				mClaims[claimRun].Inc()
				return ClaimResponse{
					Action:    ActionRun,
					Lease:     ce.leases[i].id,
					TTLMillis: c.opts.LeaseTTL.Milliseconds(),
					Steal:     ce.leases[i].steal,
				}
			}
		}
		// The oldest live lease has been running past the steal threshold
		// and there is room for a duplicate: this claimant steals.
		if len(ce.leases) < c.opts.MaxLeases &&
			now.Sub(ce.leases[0].granted) >= c.opts.StealAfter {
			resp := c.grant(ce, w, now, true)
			mClaims[claimRun].Inc()
			return resp
		}
		mClaims[claimWait].Inc()
		return ClaimResponse{Action: ActionWait, RetryMillis: c.retryMillis()}
	default: // cellPending
		resp := c.grant(ce, w, now, false)
		mClaims[claimRun].Inc()
		return resp
	}
}

// grant issues a new lease on ce to w. Callers hold c.mu.
func (c *Coordinator) grant(ce *cell, w *workerInfo, now time.Time, steal bool) ClaimResponse {
	c.nextID++
	l := lease{
		id:       c.nextID,
		worker:   w.ID,
		granted:  now,
		deadline: now.Add(c.opts.LeaseTTL),
		steal:    steal,
	}
	ce.leases = append(ce.leases, l)
	ce.state = cellLeased
	c.nLeases++
	mLeases.Inc()
	w.Leased++
	if steal {
		c.nSteals++
		mSteals.Inc()
		w.Stolen++
	}
	return ClaimResponse{
		Action:    ActionRun,
		Lease:     l.id,
		TTLMillis: c.opts.LeaseTTL.Milliseconds(),
		Steal:     steal,
	}
}

// retryMillis suggests the wait-poll delay: a quarter TTL keeps waiters
// responsive without hammering the coordinator. Callers hold c.mu.
func (c *Coordinator) retryMillis() int64 {
	ms := (c.opts.LeaseTTL / 4).Milliseconds()
	if ms < 25 {
		ms = 25
	}
	return ms
}

// Done handles one completion ack. Exactly one ack per cell is ever
// accepted: the first one arriving under a still-live lease. Everything
// else — expired lease, already-done cell, unknown key — is a counted
// late ack, and harmless, because the loser's bytes are identical to
// the winner's.
func (c *Coordinator) Done(req DoneRequest) DoneResponse {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)
	w := c.touchWorker(req.Worker, now)

	ce, ok := c.cells[req.Key]
	if !ok || ce.state != cellLeased {
		c.nLateAcks++
		mLateAcks.Inc()
		return DoneResponse{}
	}
	for _, l := range ce.leases {
		if l.id == req.Lease && l.worker == req.Worker {
			ce.state = cellDone
			ce.leases = nil
			c.nDone++
			mDone.Inc()
			w.Done++
			mLeaseHeld.Observe(w.ID, now.Sub(l.granted).Nanoseconds())
			return DoneResponse{Accepted: true}
		}
	}
	c.nLateAcks++
	mLateAcks.Inc()
	return DoneResponse{}
}

// Fail handles one compute-failure report. Under first-error the whole
// campaign aborts; under keep-going the cell is requeued until its
// failure budget is spent, then marked permanently failed. A stale
// lease's failure is ignored entirely — the cell already moved on.
func (c *Coordinator) Fail(req FailRequest) FailResponse {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)
	w := c.touchWorker(req.Worker, now)

	ce, ok := c.cells[req.Key]
	if !ok || ce.state != cellLeased {
		c.nLateAcks++
		mLateAcks.Inc()
		return FailResponse{Aborted: c.aborted}
	}
	idx := -1
	for i, l := range ce.leases {
		if l.id == req.Lease && l.worker == req.Worker {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.nLateAcks++
		mLateAcks.Inc()
		return FailResponse{Aborted: c.aborted}
	}
	ce.leases = append(ce.leases[:idx], ce.leases[idx+1:]...)
	ce.failures++
	w.Failed++
	if !c.opts.KeepGoing {
		ce.state = cellFailed
		ce.err = req.Error
		c.nFailed++
		mFailed.Inc()
		c.aborted = true
		c.abortErr = req.Error
		return FailResponse{Aborted: true}
	}
	if ce.failures > c.opts.MaxRetries {
		ce.state = cellFailed
		ce.err = req.Error
		c.nFailed++
		mFailed.Inc()
		return FailResponse{}
	}
	if len(ce.leases) == 0 {
		ce.state = cellPending
		c.nRequeued++
		mRequeued.Inc()
	}
	return FailResponse{}
}

// Heartbeat extends every still-live lease the worker names and reports
// the ones that are gone.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)
	c.touchWorker(req.Worker, now)

	var lost []string
	for _, ref := range req.Leases {
		alive := false
		if ce, ok := c.cells[ref.Key]; ok && ce.state == cellLeased {
			for i := range ce.leases {
				if ce.leases[i].id == ref.Lease && ce.leases[i].worker == req.Worker {
					ce.leases[i].deadline = now.Add(c.opts.LeaseTTL)
					alive = true
					break
				}
			}
		}
		if !alive {
			lost = append(lost, ref.Key)
		}
	}
	return HeartbeatResponse{Lost: lost}
}

// Manifest pre-registers cells (advisory; see ManifestRequest).
func (c *Coordinator) Manifest(req ManifestRequest) ManifestResponse {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)

	var resp ManifestResponse
	for _, mc := range req.Cells {
		if mc.Key == "" {
			continue
		}
		if _, ok := c.cells[mc.Key]; ok {
			resp.Known++
			continue
		}
		c.cells[mc.Key] = &cell{key: mc.Key, label: mc.Label}
		resp.Registered++
	}
	return resp
}

// WorkerStatus is one row of per-worker accounting in Status.
type WorkerStatus = workerInfo

// Status is a point-in-time snapshot of the campaign, served on GET
// {prefix}status and embedded in /statusz.
type Status struct {
	Cells         int            `json:"cells"`
	Pending       int            `json:"pending"`
	Leased        int            `json:"leased"`
	Done          int            `json:"done"`
	Failed        int            `json:"failed"`
	Aborted       bool           `json:"aborted"`
	AbortError    string         `json:"abort_error,omitempty"`
	LeasesGranted uint64         `json:"leases_granted"`
	Steals        uint64         `json:"steals"`
	Expired       uint64         `json:"expired"`
	Requeued      uint64         `json:"requeued"`
	LateAcks      uint64         `json:"late_acks"`
	CellsDone     uint64         `json:"cells_done"`
	CellsFailed   uint64         `json:"cells_failed"`
	Workers       []WorkerStatus `json:"workers,omitempty"`
}

// Status snapshots the campaign.
func (c *Coordinator) Status() Status {
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prune(now)

	s := Status{
		Cells:         len(c.cells),
		Aborted:       c.aborted,
		AbortError:    c.abortErr,
		LeasesGranted: c.nLeases,
		Steals:        c.nSteals,
		Expired:       c.nExpired,
		Requeued:      c.nRequeued,
		LateAcks:      c.nLateAcks,
		CellsDone:     c.nDone,
		CellsFailed:   c.nFailed,
	}
	for _, ce := range c.cells {
		switch ce.state {
		case cellPending:
			s.Pending++
		case cellLeased:
			s.Leased++
		case cellDone:
			s.Done++
		case cellFailed:
			s.Failed++
		}
	}
	for _, w := range c.workers {
		s.Workers = append(s.Workers, *w)
	}
	// Deterministic ordering for operators and tests.
	for i := 1; i < len(s.Workers); i++ {
		for j := i; j > 0 && s.Workers[j].ID < s.Workers[j-1].ID; j-- {
			s.Workers[j], s.Workers[j-1] = s.Workers[j-1], s.Workers[j]
		}
	}
	return s
}
