// The worker side of the fleet: a fault-tolerant client over the
// coordinator RPCs, built from the same machinery that keeps the remote
// memo tier harmless when its server misbehaves — per-attempt deadlines,
// jittered exponential backoff on retryable failures, and a circuit
// breaker so a dead coordinator costs the campaign one deadline budget
// per probe window, not one per cell. The degradation contract is the
// heart of it: any claim the client cannot complete within its budget is
// answered locally with ActionUnreachable, and the executor computes the
// cell solo. A flapping coordinator therefore degrades a distributed
// campaign toward N independent single-process runs — slower, never
// wrong, because the results were byte-identical to begin with.
//
// A background heartbeater extends every held lease at a third of the
// coordinator's advertised TTL. Leases the coordinator reports lost are
// dropped locally; the in-flight compute is left to finish, its Done
// falls through as a counted late ack, and its bytes are still valid.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"activemem/internal/remote"
)

// ClientOptions parameterises a worker's coordinator link. Zero tuning
// fields select the defaults documented on each.
type ClientOptions struct {
	// BaseURL locates the coordinator (labcached -coord or labcoord),
	// e.g. "http://10.0.0.7:8344". A bare host:port is assumed http.
	BaseURL string
	// Worker identifies this process in leases and per-worker accounting
	// (default DefaultWorkerID()).
	Worker string
	// AuthToken, when non-empty, rides every RPC as a bearer token. A
	// 401 marks the coordinator unreachable for the process lifetime.
	AuthToken string

	// Timeout bounds each RPC attempt (default 2s).
	Timeout time.Duration
	// Retries is the number of re-attempts after a retryable failure
	// (default 2; all fleet RPCs are idempotent — a re-claimed lease is
	// re-affirmed, a replayed ack is a counted late ack).
	Retries int
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between retries (defaults 50ms, 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// BreakerThreshold consecutive failed RPCs open the breaker
	// (default 3); BreakerCooldown is the open window (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HeartbeatEvery overrides the heartbeat cadence (default: a third
	// of the TTL the coordinator advertises on each granted lease).
	HeartbeatEvery time.Duration
}

func (o *ClientOptions) withDefaults() {
	if o.Worker == "" {
		o.Worker = DefaultWorkerID()
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
}

// ClientOptionsFromEnv builds ClientOptions for baseURL, honouring
//
//	ACTIVEMEM_FLEET_TIMEOUT   per-attempt RPC deadline (Go duration)
//	ACTIVEMEM_FLEET_RETRIES   re-attempts after a retryable failure
//	ACTIVEMEM_FLEET_WORKER    worker identity override
//	ACTIVEMEM_CACHE_TOKEN     shared-secret bearer token
//
// Unset or unparsable variables keep the defaults.
func ClientOptionsFromEnv(baseURL string) ClientOptions {
	o := ClientOptions{
		BaseURL:   baseURL,
		Worker:    os.Getenv("ACTIVEMEM_FLEET_WORKER"),
		AuthToken: remote.TokenFromEnv(),
	}
	if d, err := time.ParseDuration(os.Getenv("ACTIVEMEM_FLEET_TIMEOUT")); err == nil && d > 0 {
		o.Timeout = d
	}
	if n, err := strconv.Atoi(os.Getenv("ACTIVEMEM_FLEET_RETRIES")); err == nil && n >= 0 {
		o.Retries = n
		if n == 0 {
			o.Retries = -1 // withDefaults maps 0 to the default; -1 means "no retries"
		}
	}
	return o
}

// Decision is the client-side claim verdict handed to the executor.
type Decision struct {
	Action  string        // ActionRun … ActionUnreachable
	Steal   bool          // this lease duplicates a slow one
	RetryIn time.Duration // suggested poll delay for ActionWait
	Err     string        // cell/campaign error for ActionFailed/ActionAbort
}

// Client is one worker's coordinator link. Safe for concurrent use by
// all executor workers in the process.
type Client struct {
	base string
	opts ClientOptions
	hc   *http.Client
	br   *remote.Breaker

	mu   sync.Mutex
	held map[string]uint64 // cell key → live lease id

	ttlNs atomic.Int64  // lease TTL learned from claim responses
	wake  chan struct{} // pokes the heartbeater when the TTL changes

	stop      chan struct{}
	hbDone    chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once

	authBad  atomic.Bool
	authOnce sync.Once

	nLeased, nStolen, nWaited, nDegraded atomic.Uint64
	nDone, nLateAcks, nLost, nFailed     atomic.Uint64
	nRPCs, nErrors, nRetries, nFastFails atomic.Uint64
}

// NewClient returns a client for the coordinator at o.BaseURL and starts
// its heartbeater. The only error is a malformed URL: runtime failures
// degrade to solo compute instead.
func NewClient(o ClientOptions) (*Client, error) {
	o.withDefaults()
	base := o.BaseURL
	if base == "" {
		return nil, fmt.Errorf("fleet: empty coordinator URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("fleet: invalid coordinator URL %q", o.BaseURL)
	}
	c := &Client{
		base:   strings.TrimRight(base, "/"),
		opts:   o,
		hc:     &http.Client{},
		br:     remote.NewBreaker(o.BreakerThreshold, o.BreakerCooldown, mClientBreakerOpens, mClientBreakerState),
		held:   map[string]uint64{},
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	c.ttlNs.Store(int64(15 * time.Second)) // coordinator default until learned
	go c.heartbeater()
	return c, nil
}

// Worker returns this client's fleet identity.
func (c *Client) Worker() string { return c.opts.Worker }

// BaseURL returns the normalised coordinator URL.
func (c *Client) BaseURL() string { return c.base }

// Claim asks for the right to compute key. Every failure mode folds
// into Decision{Action: ActionUnreachable}: the caller computes solo.
func (c *Client) Claim(key, label string) Decision {
	var resp ClaimResponse
	err := c.post("claim", ClaimRequest{Key: key, Label: label, Worker: c.opts.Worker}, &resp)
	if err != nil {
		c.nDegraded.Add(1)
		mClientDegraded.Inc()
		return Decision{Action: ActionUnreachable}
	}
	d := Decision{Action: resp.Action, Steal: resp.Steal, Err: resp.Error}
	switch resp.Action {
	case ActionRun:
		if ttl := resp.TTLMillis * int64(time.Millisecond); ttl > 0 && ttl != c.ttlNs.Swap(ttl) {
			// The heartbeater may be mid-sleep on the stale cadence — with a
			// short real TTL that sleep outlives the lease. Re-arm it.
			select {
			case c.wake <- struct{}{}:
			default:
			}
		}
		c.mu.Lock()
		c.held[key] = resp.Lease
		c.mu.Unlock()
		c.nLeased.Add(1)
		if resp.Steal {
			c.nStolen.Add(1)
		}
	case ActionWait:
		c.nWaited.Add(1)
		d.RetryIn = time.Duration(resp.RetryMillis) * time.Millisecond
		if d.RetryIn <= 0 {
			d.RetryIn = 250 * time.Millisecond
		}
	case ActionDone, ActionFailed, ActionAbort:
		// Terminal verdicts carry no client state.
	default:
		// A coordinator speaking a newer dialect: treat like unreachable.
		c.nDegraded.Add(1)
		mClientDegraded.Inc()
		d = Decision{Action: ActionUnreachable}
	}
	return d
}

// Done acks a computed-and-published cell. False means the ack was late
// (lease lost, or another worker finished first) — the local value is
// still valid, it just wasn't the completion of record.
func (c *Client) Done(key string) bool {
	c.mu.Lock()
	id, ok := c.held[key]
	delete(c.held, key)
	c.mu.Unlock()
	if !ok {
		c.nLateAcks.Add(1)
		return false
	}
	var resp DoneResponse
	if err := c.post("done", DoneRequest{Key: key, Worker: c.opts.Worker, Lease: id}, &resp); err != nil {
		return false
	}
	if resp.Accepted {
		c.nDone.Add(1)
	} else {
		c.nLateAcks.Add(1)
	}
	return resp.Accepted
}

// Fail reports a compute error under the held lease and returns whether
// the campaign is now aborted.
func (c *Client) Fail(key, errMsg string) (aborted bool) {
	c.mu.Lock()
	id, ok := c.held[key]
	delete(c.held, key)
	c.mu.Unlock()
	if !ok {
		return false
	}
	c.nFailed.Add(1)
	var resp FailResponse
	if err := c.post("fail", FailRequest{Key: key, Worker: c.opts.Worker, Lease: id, Error: errMsg}, &resp); err != nil {
		return false
	}
	return resp.Aborted
}

// PostManifest pre-registers cells with the coordinator (advisory).
func (c *Client) PostManifest(cells []ManifestCell) error {
	var resp ManifestResponse
	return c.post("manifest", ManifestRequest{Cells: cells}, &resp)
}

// heartbeater extends held leases at a third of the advertised TTL.
func (c *Client) heartbeater() {
	defer close(c.hbDone)
	for {
		interval := c.opts.HeartbeatEvery
		if interval <= 0 {
			interval = time.Duration(c.ttlNs.Load()) / 3
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		select {
		case <-c.stop:
			return
		case <-c.wake:
			continue // TTL changed: recompute the cadence before sleeping on it
		case <-time.After(interval):
		}
		c.mu.Lock()
		refs := make([]LeaseRef, 0, len(c.held))
		for k, id := range c.held {
			refs = append(refs, LeaseRef{Key: k, Lease: id})
		}
		c.mu.Unlock()
		if len(refs) == 0 {
			continue
		}
		var resp HeartbeatResponse
		if err := c.post("heartbeat", HeartbeatRequest{Worker: c.opts.Worker, Leases: refs}, &resp); err != nil {
			continue // the breaker owns the back-off; leases may expire
		}
		if len(resp.Lost) > 0 {
			c.mu.Lock()
			for _, k := range resp.Lost {
				if _, ok := c.held[k]; ok {
					delete(c.held, k)
					c.nLost.Add(1)
				}
			}
			c.mu.Unlock()
		}
	}
}

var (
	errFastFail     = errors.New("fleet: breaker open")
	errUnauthorized = errors.New("fleet: unauthorized")
	errClosed       = errors.New("fleet: client closed")
)

// post runs one logical RPC: breaker gate, bounded retry loop, JSON
// decode into resp.
func (c *Client) post(endpoint string, req, resp any) error {
	if c.closed.Load() {
		return errClosed
	}
	if c.authBad.Load() {
		return errUnauthorized
	}
	if !c.br.Allow() {
		c.nFastFails.Add(1)
		return errFastFail
	}
	body, err := json.Marshal(req)
	if err != nil {
		c.br.Success() // not the server's fault
		return err
	}
	for attempt := 0; ; attempt++ {
		c.nRPCs.Add(1)
		mClientRPCs.Inc()
		err := c.postOnce(endpoint, body, resp)
		if err == nil {
			c.br.Success()
			return nil
		}
		if errors.Is(err, errUnauthorized) {
			c.br.Success() // the server answered; our credential is bad
			c.noteUnauthorized()
			return err
		}
		if !retryable(err) || attempt >= c.opts.Retries {
			c.br.Failure()
			c.nErrors.Add(1)
			mClientErrors.Inc()
			return err
		}
		c.nRetries.Add(1)
		time.Sleep(remote.JitteredBackoff(c.opts.BackoffBase, c.opts.BackoffMax, attempt))
	}
}

// retryableError marks failures where the RPC may have never reached a
// verdict; fleet RPCs are idempotent, so replaying them is always safe.
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

func retryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// postOnce performs one attempt under its own deadline.
func (c *Client) postOnce(endpoint string, body []byte, resp any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+PathPrefix+endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.opts.AuthToken != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return retryableError{err} // dial/timeout/reset: no verdict reached
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 4<<10))
		hresp.Body.Close()
	}()
	switch {
	case hresp.StatusCode == http.StatusOK:
		dec := json.NewDecoder(io.LimitReader(hresp.Body, maxBody))
		if err := dec.Decode(resp); err != nil {
			return retryableError{fmt.Errorf("fleet: torn response: %w", err)}
		}
		return nil
	case hresp.StatusCode == http.StatusUnauthorized:
		return errUnauthorized
	case hresp.StatusCode >= 500:
		return retryableError{fmt.Errorf("fleet: server error %d", hresp.StatusCode)}
	default:
		return fmt.Errorf("fleet: unexpected status %d", hresp.StatusCode)
	}
}

// noteUnauthorized downs the link for the process lifetime with one
// warning; every later claim degrades to solo compute.
func (c *Client) noteUnauthorized() {
	if c.authBad.CompareAndSwap(false, true) {
		c.authOnce.Do(func() {
			fmt.Fprintf(os.Stderr,
				"fleet: coordinator at %s rejected our auth token (401); running solo\n", c.base)
		})
	}
}

// Close stops the heartbeater and releases connections. Held leases are
// deliberately left to expire on the coordinator: a worker shutting down
// mid-cell looks exactly like a worker crashing, and the expiry path is
// the recovery path.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		close(c.stop)
		<-c.hbDone
		c.hc.CloseIdleConnections()
	})
}

// ClientStats is a snapshot of the worker's fleet activity for the CLI
// epilogue and /statusz.
type ClientStats struct {
	Worker    string `json:"worker"`
	Leased    uint64 `json:"leased"`
	Stolen    uint64 `json:"stolen"`
	Waited    uint64 `json:"waited"`
	Degraded  uint64 `json:"degraded"`
	Done      uint64 `json:"done"`
	LateAcks  uint64 `json:"late_acks"`
	Lost      uint64 `json:"lost"`
	Failed    uint64 `json:"failed"`
	RPCs      uint64 `json:"rpcs"`
	RPCErrors uint64 `json:"rpc_errors"`
	Retries   uint64 `json:"retries"`
	FastFails uint64 `json:"fast_fails"`
}

// Stats snapshots the client.
func (c *Client) Stats() ClientStats {
	if c == nil {
		return ClientStats{}
	}
	return ClientStats{
		Worker:    c.opts.Worker,
		Leased:    c.nLeased.Load(),
		Stolen:    c.nStolen.Load(),
		Waited:    c.nWaited.Load(),
		Degraded:  c.nDegraded.Load(),
		Done:      c.nDone.Load(),
		LateAcks:  c.nLateAcks.Load(),
		Lost:      c.nLost.Load(),
		Failed:    c.nFailed.Load(),
		RPCs:      c.nRPCs.Load(),
		RPCErrors: c.nErrors.Load(),
		Retries:   c.nRetries.Load(),
		FastFails: c.nFastFails.Load(),
	}
}
