// Telemetry instruments for the fleet layer, on the process default
// registry. Coordinator families answer "is the campaign making
// progress and who is falling behind" (leases, steals, expiries,
// requeues, late acks, per-worker top-K of lease hold time); client
// families answer "is the coordinator link healthy" (RPC outcomes,
// degraded-to-solo transitions). A process is either coordinator or
// worker, so the two families never collide in one exposition.

package fleet

import "activemem/internal/telemetry"

// Claim verdict counters, label values of fleet_claims_total.
const (
	claimRun = iota
	claimWait
	claimDone
	claimFailed
	claimAbort
	numClaimOutcomes
)

var claimOutcomeNames = [numClaimOutcomes]string{"run", "wait", "done", "failed", "abort"}

var (
	mClaims [numClaimOutcomes]*telemetry.Counter

	mLeases = telemetry.Default.NewCounter("fleet_leases_granted_total",
		"Leases granted over cells, including steal duplicates.")
	mSteals = telemetry.Default.NewCounter("fleet_steals_total",
		"Duplicate leases granted over slow cells (work-stealing; first completion wins).")
	mExpired = telemetry.Default.NewCounter("fleet_lease_expiries_total",
		"Leases expired because their worker missed the heartbeat window.")
	mRequeued = telemetry.Default.NewCounter("fleet_requeues_total",
		"Cells returned to the pending queue after losing every live lease.")
	mLateAcks = telemetry.Default.NewCounter("fleet_late_acks_total",
		"Completion or failure acks rejected because the lease was no longer live.")
	mDone = telemetry.Default.NewCounter("fleet_cells_done_total",
		"Cells completed (exactly one accepted ack per cell).")
	mFailed = telemetry.Default.NewCounter("fleet_cells_failed_total",
		"Cells marked permanently failed by policy.")
	mLeaseHeld = telemetry.Default.NewTopK("fleet_lease_held_seconds_top",
		"Workers by total lease hold time (accepted completions).", 8)

	mClientRPCs = telemetry.Default.NewCounter("fleet_client_rpcs_total",
		"Coordinator RPCs attempted by this worker (excluding local fast-fails).")
	mClientErrors = telemetry.Default.NewCounter("fleet_client_rpc_errors_total",
		"Coordinator RPCs that failed after the retry budget.")
	mClientDegraded = telemetry.Default.NewCounter("fleet_client_degraded_total",
		"Claims answered locally with 'unreachable': the worker computed solo.")
	mClientBreakerOpens = telemetry.Default.NewCounter("fleet_client_breaker_opens_total",
		"Coordinator-link circuit-breaker transitions to open.")
	mClientBreakerState = telemetry.Default.NewGauge("fleet_client_breaker_state",
		"Coordinator-link circuit-breaker state: 0 closed, 1 half-open, 2 open.")
)

func init() {
	for o := 0; o < numClaimOutcomes; o++ {
		mClaims[o] = telemetry.Default.NewCounter("fleet_claims_total",
			"Claim RPC verdicts handed out by the coordinator.",
			telemetry.Label{Key: "action", Value: claimOutcomeNames[o]})
	}
}
