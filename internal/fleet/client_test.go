// Client↔coordinator integration over real HTTP: roundtrips, the
// degradation contract (unreachable server, breaker fast-fail, 401),
// and the heartbeater keeping a short-TTL lease alive.

package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"activemem/internal/remote"
)

// startCoord serves an authed coordinator on an httptest server.
func startCoord(t *testing.T, opts Options, token string) (*httptest.Server, *Coordinator) {
	t.Helper()
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	co := NewCoordinator(opts)
	srv := httptest.NewServer(remote.RequireAuth(token, NewHandler(co)))
	t.Cleanup(srv.Close)
	return srv, co
}

// newTestClient builds a fast-failing client against url.
func newTestClient(t *testing.T, url string, mod func(*ClientOptions)) *Client {
	t.Helper()
	o := ClientOptions{
		BaseURL:          url,
		Worker:           "test-worker",
		Timeout:          2 * time.Second,
		Retries:          -1, // no retries unless a test opts in
		BackoffBase:      time.Millisecond,
		BreakerThreshold: 1000, // effectively off unless a test opts in
		HeartbeatEvery:   time.Hour,
	}
	if mod != nil {
		mod(&o)
	}
	c, err := NewClient(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClientRoundtrip(t *testing.T) {
	srv, co := startCoord(t, Options{}, "")
	c := newTestClient(t, srv.URL, nil)

	d := c.Claim("k1", "batch")
	if d.Action != ActionRun {
		t.Fatalf("claim = %+v, want run", d)
	}
	// A second identity must wait, with a positive poll hint.
	c2 := newTestClient(t, srv.URL, func(o *ClientOptions) { o.Worker = "other" })
	if d2 := c2.Claim("k1", "batch"); d2.Action != ActionWait || d2.RetryIn <= 0 {
		t.Fatalf("concurrent claim = %+v, want wait", d2)
	}
	if !c.Done("k1") {
		t.Fatal("ack under live lease rejected")
	}
	if d2 := c2.Claim("k1", "batch"); d2.Action != ActionDone {
		t.Fatalf("claim after done = %+v, want done", d2)
	}
	// Acking a cell we never leased is a local late ack, no RPC.
	if c.Done("k1") {
		t.Fatal("unheld ack accepted")
	}
	st := c.Stats()
	if st.Leased != 1 || st.Done != 1 || st.LateAcks != 1 || st.RPCErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s := co.Status(); s.CellsDone != 1 {
		t.Fatalf("coordinator status = %+v", s)
	}
}

func TestClientFailAborts(t *testing.T) {
	srv, co := startCoord(t, Options{}, "")
	c := newTestClient(t, srv.URL, nil)

	if d := c.Claim("k1", "b"); d.Action != ActionRun {
		t.Fatalf("claim = %+v", d)
	}
	if !c.Fail("k1", "compute exploded") {
		t.Fatal("first-error fail did not report abort")
	}
	if d := c.Claim("k2", "b"); d.Action != ActionAbort || d.Err != "compute exploded" {
		t.Fatalf("post-abort claim = %+v", d)
	}
	if s := co.Status(); !s.Aborted {
		t.Fatalf("coordinator status = %+v", s)
	}
}

// An unreachable coordinator degrades every claim to solo compute and,
// once the breaker trips, stops paying the dial timeout per cell.
func TestClientUnreachableDegradesAndTrips(t *testing.T) {
	srv, _ := startCoord(t, Options{}, "")
	srv.Close() // nothing listens there any more
	c := newTestClient(t, srv.URL, func(o *ClientOptions) {
		o.Timeout = 200 * time.Millisecond
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour
	})

	for i := 0; i < 5; i++ {
		if d := c.Claim("k1", "b"); d.Action != ActionUnreachable {
			t.Fatalf("claim %d = %+v, want unreachable", i, d)
		}
	}
	st := c.Stats()
	if st.Degraded != 5 {
		t.Fatalf("degraded = %d, want 5", st.Degraded)
	}
	if st.FastFails == 0 {
		t.Fatal("breaker never fast-failed")
	}
	if st.RPCErrors != uint64(c.Stats().RPCs) {
		t.Fatalf("stats = %+v: every attempted RPC should have errored", st)
	}
}

// Retryable failures (5xx) are replayed — safe because every fleet RPC
// is idempotent — so a blip is absorbed without degrading the claim.
func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	real := remote.RequireAuth("", NewHandler(NewCoordinator(Options{LeaseTTL: 10 * time.Second})))
	flip := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway) // retryable 5xx
			return
		}
		real.ServeHTTP(w, r)
	}))
	t.Cleanup(flip.Close)

	c := newTestClient(t, flip.URL, func(o *ClientOptions) { o.Retries = 2 })
	if d := c.Claim("k1", "b"); d.Action != ActionRun {
		t.Fatalf("claim through flaky link = %+v, want run", d)
	}
	if st := c.Stats(); st.Retries != 1 || st.RPCErrors != 0 {
		t.Fatalf("stats = %+v, want exactly one retry and no errors", st)
	}
}

// A wrong token downs the link permanently: one 401, then local
// fast-fails with no further RPCs.
func TestClientUnauthorizedRunsSolo(t *testing.T) {
	srv, co := startCoord(t, Options{}, "right-token")
	c := newTestClient(t, srv.URL, func(o *ClientOptions) { o.AuthToken = "wrong-token" })

	for i := 0; i < 3; i++ {
		if d := c.Claim("k1", "b"); d.Action != ActionUnreachable {
			t.Fatalf("claim %d = %+v, want unreachable", i, d)
		}
	}
	st := c.Stats()
	if st.RPCs != 1 {
		t.Fatalf("rpcs = %d, want exactly 1 (the 401) before the link downs itself", st.RPCs)
	}
	if s := co.Status(); s.Cells != 0 {
		t.Fatalf("unauthorized claims registered cells: %+v", s)
	}

	// The right token works against the same server.
	ok := newTestClient(t, srv.URL, func(o *ClientOptions) { o.AuthToken = "right-token" })
	if d := ok.Claim("k1", "b"); d.Action != ActionRun {
		t.Fatalf("authed claim = %+v, want run", d)
	}
}

// The heartbeater keeps a short-TTL lease alive across many TTL windows.
func TestHeartbeaterExtendsLease(t *testing.T) {
	srv, co := startCoord(t, Options{LeaseTTL: 100 * time.Millisecond}, "")
	c := newTestClient(t, srv.URL, func(o *ClientOptions) { o.HeartbeatEvery = 0 }) // TTL/3

	if d := c.Claim("k1", "b"); d.Action != ActionRun {
		t.Fatalf("claim = %+v", d)
	}
	time.Sleep(500 * time.Millisecond) // five TTLs
	if !c.Done("k1") {
		t.Fatal("lease expired despite heartbeats")
	}
	s := co.Status()
	if s.Expired != 0 || s.CellsDone != 1 {
		t.Fatalf("status = %+v", s)
	}
}

// Without heartbeats the lease expires and the late ack is counted,
// locally and on the coordinator.
func TestSilentWorkerLosesLease(t *testing.T) {
	srv, co := startCoord(t, Options{LeaseTTL: 50 * time.Millisecond}, "")
	c := newTestClient(t, srv.URL, nil) // HeartbeatEvery: 1h — effectively silent

	if d := c.Claim("k1", "b"); d.Action != ActionRun {
		t.Fatalf("claim = %+v", d)
	}
	time.Sleep(120 * time.Millisecond)
	if c.Done("k1") {
		t.Fatal("ack accepted after TTL with no heartbeats")
	}
	if st := c.Stats(); st.LateAcks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s := co.Status(); s.Expired != 1 || s.LateAcks != 1 || s.CellsDone != 0 {
		t.Fatalf("status = %+v", s)
	}
}

func TestClientPostManifest(t *testing.T) {
	srv, co := startCoord(t, Options{}, "")
	c := newTestClient(t, srv.URL, nil)

	if err := c.PostManifest([]ManifestCell{{Key: "k1", Label: "a"}, {Key: "k2", Label: "a"}}); err != nil {
		t.Fatal(err)
	}
	if s := co.Status(); s.Cells != 2 || s.Pending != 2 {
		t.Fatalf("status = %+v", s)
	}
}

func TestClientRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "http://", "://nope"} {
		if _, err := NewClient(ClientOptions{BaseURL: bad}); err == nil {
			t.Errorf("NewClient(%q) accepted", bad)
		}
	}
	// A bare host:port is assumed http.
	c, err := NewClient(ClientOptions{BaseURL: "127.0.0.1:9", HeartbeatEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.BaseURL() != "http://127.0.0.1:9" {
		t.Fatalf("BaseURL = %q", c.BaseURL())
	}
}
