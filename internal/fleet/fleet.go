// Package fleet shards one campaign grid across N worker processes with
// no lost work. It is the robustness substrate for distributed campaign
// execution over the content-addressed keyspace: a lease-based
// coordinator (Coordinator + NewHandler, mounted at /v1/campaign/ beside
// labcached's cell store, or standalone via cmd/labcoord) and a worker
// client (Client) that the lab executor consults before computing a
// cell.
//
// The design leans entirely on content addressing. Every worker runs the
// *same* grid; the coordinator does not push work, it arbitrates who
// computes what. A worker that misses every cache tier for a cell asks
// the coordinator to claim it:
//
//   - run: the worker got a bounded-TTL lease — compute, publish the
//     result synchronously through the shared cache, then ack.
//   - wait: another worker holds the lease — sleep briefly, recheck the
//     cache tiers (its result lands there), claim again.
//   - done/failed/abort: terminal verdicts for the cell or campaign.
//
// Leases expire when their worker misses its heartbeat window, and the
// cell is simply requeued: a dead worker costs the campaign one lease
// TTL, never a cell. Leases held past the steal threshold are duplicated
// to the next idle claimant (work-stealing); the first completion wins
// and the duplicate is harmless, because both computed byte-identical
// results under the same key. Every worker can complete the whole grid
// alone, so any crash/stall/partition pattern that leaves one worker
// alive still finishes with bytes identical to the serial baseline —
// and a worker that cannot reach the coordinator at all degrades to
// exactly that solo run.
package fleet

import (
	"fmt"
	"os"
)

// PathPrefix roots the coordinator's HTTP endpoints. POST bodies and all
// responses are JSON.
//
//	POST {prefix}claim      ClaimRequest     → ClaimResponse
//	POST {prefix}done       DoneRequest      → DoneResponse
//	POST {prefix}fail       FailRequest      → FailResponse
//	POST {prefix}heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST {prefix}manifest   ManifestRequest  → ManifestResponse
//	GET  {prefix}status                      → Status
const PathPrefix = "/v1/campaign/"

// Claim verdicts. ActionUnreachable is produced client-side only, when
// the coordinator cannot be reached within the retry budget: the worker
// computes solo, exactly as it would with no fleet at all.
const (
	ActionRun         = "run"
	ActionWait        = "wait"
	ActionDone        = "done"
	ActionFailed      = "failed"
	ActionAbort       = "abort"
	ActionUnreachable = "unreachable"
)

// ClaimRequest asks for the right to compute one cell. Key is the
// content-addressed cell key (lab.KeyOf); Label is the campaign label
// for operator-facing accounting; Worker identifies the claimant.
type ClaimRequest struct {
	Key    string `json:"key"`
	Label  string `json:"label,omitempty"`
	Worker string `json:"worker"`
}

// ClaimResponse carries the verdict. Lease and TTLMillis accompany
// ActionRun; RetryMillis suggests a poll delay for ActionWait; Error
// carries the cell or campaign error for ActionFailed/ActionAbort.
type ClaimResponse struct {
	Action      string `json:"action"`
	Lease       uint64 `json:"lease,omitempty"`
	TTLMillis   int64  `json:"ttl_ms,omitempty"`
	RetryMillis int64  `json:"retry_ms,omitempty"`
	Steal       bool   `json:"steal,omitempty"`
	Error       string `json:"error,omitempty"`
}

// DoneRequest acks a computed-and-published cell under the lease that
// authorised it.
type DoneRequest struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// DoneResponse reports whether this ack won. A false answer means the
// lease was no longer live (expired, or another worker finished first) —
// the worker's locally computed value is still valid, it just wasn't the
// completion of record.
type DoneResponse struct {
	Accepted bool `json:"accepted"`
}

// FailRequest reports a cell whose compute returned an error.
type FailRequest struct {
	Key    string `json:"key"`
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	Error  string `json:"error"`
}

// FailResponse reports whether the campaign is now aborted (first-error
// policy) so the worker can stop claiming.
type FailResponse struct {
	Aborted bool `json:"aborted"`
}

// HeartbeatRequest extends the deadline of every lease the worker still
// holds.
type HeartbeatRequest struct {
	Worker string     `json:"worker"`
	Leases []LeaseRef `json:"leases"`
}

// LeaseRef names one held lease.
type LeaseRef struct {
	Key   string `json:"key"`
	Lease uint64 `json:"lease"`
}

// HeartbeatResponse lists keys whose leases are no longer live — the
// worker drops them locally and lets a later Done fall through as a
// late ack.
type HeartbeatResponse struct {
	Lost []string `json:"lost,omitempty"`
}

// ManifestRequest pre-registers cells so Status can report campaign
// totals before the first claim arrives. It is advisory: claims for
// unregistered keys register them on the fly, because grids with
// data-dependent cells cannot be enumerated up front.
type ManifestRequest struct {
	Cells []ManifestCell `json:"cells"`
}

// ManifestCell names one expected cell.
type ManifestCell struct {
	Key   string `json:"key"`
	Label string `json:"label,omitempty"`
}

// ManifestResponse reports how many cells were newly registered and how
// many were already known.
type ManifestResponse struct {
	Registered int `json:"registered"`
	Known      int `json:"known"`
}

// DefaultWorkerID derives a fleet-unique worker identity from the host
// and pid — good enough for processes that never share a pid namespace
// instant, and overridable everywhere an identity is accepted.
func DefaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
