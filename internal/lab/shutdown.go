// Graceful shutdown for campaign processes. An interrupt used to abandon
// acknowledged-but-uncheckpointed work to the next open's commit-log
// replay; now the CLIs ask the executor to stop dispatching, drain the
// cells already running, and close the cache tiers (store checkpoint +
// remote write-back drain) before exiting.

package lab

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// ErrInterrupted is the batch error a campaign observes when the
// executor was interrupted (Interrupt, typically from NotifyShutdown):
// no further cells dispatch, in-flight cells finish, and every pending
// Run unwinds with this error. Campaign code treats it like any other
// first error — results computed so far are already persisted, so the
// next run resumes where this one stopped.
var ErrInterrupted = errors.New("lab: campaign interrupted")

// Interrupt asks the executor to stop dispatching new cells. Cells
// already running complete normally (and persist their results);
// batches in flight and every later Run return ErrInterrupted. It is
// safe from any goroutine, including signal handlers, and idempotent.
func (e *Executor) Interrupt() { e.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (e *Executor) Interrupted() bool { return e.interrupted.Load() }

// NotifyShutdown installs SIGINT/SIGTERM handling for a campaign CLI:
// the first signal interrupts the executor — stop dispatching, drain
// in-flight cells, unwind with ErrInterrupted so the CLI's cleanup path
// syncs the cache tiers — and announces what is happening on w; a
// second signal exits immediately with status 130 for the impatient.
// The returned stop function uninstalls the handler (call it once the
// campaign is done, so later signals get default behaviour again).
func NotifyShutdown(e *Executor, w io.Writer) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(w, "\n%v: draining in-flight cells, syncing caches (signal again to exit now)\n", sig)
			e.Interrupt()
		case <-done:
			return
		}
		select {
		case <-ch:
			os.Exit(130)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
