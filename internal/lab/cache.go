// The executor's persistent cache tiers. The in-memory memo (lab.go) makes
// identical cells run once per process; attaching a store.Store makes them
// run once per cache directory; attaching a remote.Client makes them run
// once per labcached deployment: Do consults the in-process memo, then the
// store's in-memory hot set (decoded values, no segment read), then disk,
// then the remote cache, then computes — persisting what it computed to
// the local store and (asynchronously, best-effort) to the remote one.
// Values cross the disk and wire boundaries through a registry of typed
// codecs, so every result struct that flows through Memo (core.Metrics,
// cluster.Result, …) registers itself once and round-trips exactly (gob
// preserves float64 bit patterns), keeping warm reruns byte-identical to
// cold ones — wherever the bytes came from.

package lab

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"reflect"
	"strconv"
	"sync"

	"activemem/internal/remote"
	"activemem/internal/store"
)

// ResultSchemaVersion stamps every content-addressed Key (and the disk
// store's header) with the simulator/result-schema generation. Bump it
// whenever a change alters what any experiment cell computes — simulator
// semantics, measurement definitions, or the layout of a registered result
// struct — and every previously persisted result self-invalidates: old
// keys become unreachable and a read-write store open under the new
// version discards the stale segment. The golden tests (golden_test.go)
// pin simulator outputs, so a change that trips them is exactly a change
// that needs this bump.
const ResultSchemaVersion = "am-results-v1"

// resultCodec encodes/decodes one registered result type.
type resultCodec struct {
	name   string
	typ    reflect.Type
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

var (
	codecMu     sync.RWMutex
	codecByType = map[reflect.Type]*resultCodec{}
	codecByName = map[string]*resultCodec{}
)

// RegisterResult makes T persistable by the executor's disk tier under the
// given stable name (by convention "package.Type"). Packages register
// their result types in an init function; registering the same T twice
// with the same name is a no-op, while name or type conflicts panic — they
// would corrupt the cache's type dispatch. Unregistered result types are
// still memoized in memory, just never persisted.
func RegisterResult[T any](name string) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	c := &resultCodec{
		name: name,
		typ:  t,
		encode: func(v any) ([]byte, error) {
			tv, ok := v.(T)
			if !ok {
				return nil, fmt.Errorf("lab: encode %s: value has type %T", name, v)
			}
			var b bytes.Buffer
			if err := gob.NewEncoder(&b).Encode(tv); err != nil {
				return nil, err
			}
			return b.Bytes(), nil
		},
		decode: func(p []byte) (any, error) {
			var v T
			if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&v); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if prev, ok := codecByName[name]; ok {
		if prev.typ == t {
			return
		}
		panic(fmt.Sprintf("lab: result name %q registered for both %v and %v", name, prev.typ, t))
	}
	if prev, ok := codecByType[t]; ok {
		panic(fmt.Sprintf("lab: result type %v registered as both %q and %q", t, prev.name, name))
	}
	codecByName[name] = c
	codecByType[t] = c
}

// Scalar results (e.g. the §III-A bandwidth ladder's per-level float64)
// belong to no package; the registry owns them.
func init() {
	RegisterResult[float64]("go.float64")
	RegisterResult[int]("go.int")
	RegisterResult[int64]("go.int64")
	RegisterResult[string]("go.string")
	RegisterResult[bool]("go.bool")
}

// cacheGet looks key up in the cache tiers, nearest first: the store's
// in-memory hot set — a hit there carries the already-decoded value,
// skipping both the segment read and the gob decode — then the disk
// segments, then the remote cache. Any failure — no cache, a miss, an
// unregistered type name, a decode error, a sick remote server — reports
// a miss and lets the cell recompute. A disk record that decodes no
// longer (a payload encoding from before an incompatible type change) is
// invalidated so the recomputed result can replace it; an unknown type
// name is left alone, since a different binary sharing the directory may
// still decode it. The tier return distinguishes the tiers for Stats
// (tierHot, tierDisk or tierRemote).
func (e *Executor) cacheGet(key Key) (v any, tier int, ok bool) {
	if e.cache != nil {
		if v, ok := e.cache.GetDecoded(string(key)); ok {
			return v, tierHot, true
		}
		if typeName, payload, ok := e.cache.Get(string(key)); ok {
			if v, ok := decodePayload(typeName, payload); ok {
				// Pay the decode once: attach the value so the hot set can
				// serve the next Do for this key — from any executor on this
				// store — directly.
				e.cache.AddDecoded(string(key), v, int64(len(payload)))
				return v, tierDisk, true
			}
			e.cache.Invalidate(string(key))
		}
	}
	if e.remote != nil {
		if typeName, payload, ok := e.remote.Get(string(key)); ok {
			if v, ok := decodePayload(typeName, payload); ok {
				// Pull the record into the local tiers so the next process
				// on this cache dir — and the next Do in this one — never
				// crosses the network for it again.
				if e.cache != nil {
					if _, err := e.cache.Put(string(key), typeName, payload); err == nil {
						e.cache.AddDecoded(string(key), v, int64(len(payload)))
					}
				}
				return v, tierRemote, true
			}
		}
	}
	return nil, 0, false
}

// decodePayload dispatches a stored record through the codec registry.
// The payload's checksum has already been verified by whichever tier
// produced it (store CRC, remote body checksum); this is purely the
// type-name → value step.
func decodePayload(typeName string, payload []byte) (any, bool) {
	codecMu.RLock()
	c := codecByName[typeName]
	codecMu.RUnlock()
	if c == nil {
		return nil, false
	}
	v, err := c.decode(payload)
	if err != nil {
		return nil, false
	}
	return v, true
}

// cachePut persists a freshly computed result, reporting whether a record
// was actually written locally (a concurrent writer may have stored the
// key first). The encoded payload is also offered to the remote tier as
// an asynchronous, best-effort write-back — a slow or dead server drops
// it without ever blocking the cell. Persistence is best-effort
// throughout: an unregistered type or a write failure leaves the result
// memory-only rather than failing the experiment.
func (e *Executor) cachePut(key Key, v any) bool {
	return e.cachePutMode(key, v, false)
}

// cachePutMode is cachePut with the remote leg's mode explicit. Fleet
// workers publish synchronously (syncRemote) before acking a lease: the
// coordinator tells waiting peers "done", so the bytes must already be
// on the server — an async queue ack would race the peers' fetches.
func (e *Executor) cachePutMode(key Key, v any, syncRemote bool) bool {
	if (e.cache == nil && e.remote == nil) || v == nil {
		return false
	}
	codecMu.RLock()
	c := codecByType[reflect.TypeOf(v)]
	codecMu.RUnlock()
	if c == nil {
		return false
	}
	payload, err := c.encode(v)
	if err != nil {
		return false
	}
	added := false
	if e.cache != nil {
		added, err = e.cache.Put(string(key), c.name, payload)
		if err == nil {
			e.cache.AddDecoded(string(key), v, int64(len(payload)))
		} else {
			added = false
		}
	}
	if e.remote != nil {
		if syncRemote {
			e.remote.Put(string(key), c.name, payload)
		} else {
			e.remote.PutAsync(string(key), c.name, payload)
		}
	}
	return added
}

// Cache returns the executor's disk tier, or nil.
func (e *Executor) Cache() *store.Store { return e.cache }

// Remote returns the executor's remote tier, or nil.
func (e *Executor) Remote() *remote.Client { return e.remote }

// OpenRemote resolves a -cache-url / $ACTIVEMEM_CACHE_URL setting into a
// remote-tier client under the current ResultSchemaVersion, with tuning
// knobs from the environment (remote.OptionsFromEnv). An empty URL
// returns (nil, nil): no remote tier. The only error is a malformed URL;
// a server that is down, slow or wrong merely degrades every lookup to a
// miss at runtime.
func OpenRemote(urlStr string) (*remote.Client, error) {
	if urlStr == "" {
		return nil, nil
	}
	return remote.New(remote.OptionsFromEnv(urlStr, ResultSchemaVersion))
}

// DefaultHotBytes is the in-memory hot-set budget a cache opens with when
// neither the ACTIVEMEM_CACHE_MEM environment variable nor an explicit
// -cache-mem setting overrides it.
const DefaultHotBytes = 64 << 20

// HotBytesFromEnv resolves the hot-set budget from ACTIVEMEM_CACHE_MEM
// (bytes; "0" disables the in-memory tier). Unset or unparsable values
// fall back to DefaultHotBytes.
func HotBytesFromEnv() int64 {
	v := os.Getenv("ACTIVEMEM_CACHE_MEM")
	if v == "" {
		return DefaultHotBytes
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return DefaultHotBytes
	}
	return n
}

// OpenCache opens the persistent result store in dir under the current
// ResultSchemaVersion — the one way the CLIs and the facade resolve a
// -cache-dir / MeasureOptions.CacheDir setting, so the schema stamp can
// never diverge between them. The hot-set budget comes from
// ACTIVEMEM_CACHE_MEM. An empty dir returns (nil, nil): caching disabled.
func OpenCache(dir string) (*store.Store, error) {
	return OpenCacheSized(dir, HotBytesFromEnv())
}

// OpenCacheSized is OpenCache with an explicit hot-set budget in bytes
// (0 disables the in-memory tier), for the CLIs' -cache-mem flag.
func OpenCacheSized(dir string, hotBytes int64) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return store.Open(dir, store.Options{Schema: ResultSchemaVersion, HotBytes: hotBytes})
}

// CacheSummary renders the memo counters in the machine-readable form the
// CLIs print (and CI's resume-smoke step parses) when a cache directory is
// configured: every Do call was either computed, served from the
// in-process memo, or served from a cache tier. The line's original
// key set is stable for CI; remote_hits rides at the end so older
// parsers that walk key=value pairs keep working.
func (e *Executor) CacheSummary() string {
	st := e.Stats()
	s := fmt.Sprintf("cache: computed=%d disk_hits=%d hot_hits=%d mem_hits=%d persisted=%d",
		st.Computed, st.DiskHits, st.HotHits, st.Hits, st.Persisted)
	if e.remote != nil {
		s += fmt.Sprintf(" remote_hits=%d", st.RemoteHits)
	}
	return s
}

// RemoteSummary renders the remote tier's counters in the same
// machine-readable key=value form as CacheSummary (CI's remote-smoke
// step parses the hits field).
func (e *Executor) RemoteSummary() string {
	rs := e.remote.Stats()
	return fmt.Sprintf("remote: gets=%d hits=%d misses=%d errors=%d corrupt=%d breaker_opens=%d breaker_fastfails=%d puts_stored=%d puts_dropped=%d puts_shed=%d url=%s",
		rs.Gets, rs.Hits, rs.Misses, rs.Errors, rs.Corrupt, rs.BreakerOpens,
		rs.BreakerFastFails, rs.PutsStored, rs.PutsDropped, rs.PutsShed, e.remote.BaseURL())
}

// StoreOpsSummary renders the disk tier's operation counters in the same
// machine-readable key=value form as CacheSummary: where gets were served
// (hot set / lock-free snapshot / locked slow path) and how well the
// commit log amortised fsyncs (grouped_appends/group_commits is the
// achieved group-commit batch size).
func (e *Executor) StoreOpsSummary() string {
	c := e.cache.Counters()
	return fmt.Sprintf("store: gets=%d puts=%d hot_hits=%d snapshot_hits=%d slow_gets=%d group_commits=%d grouped_appends=%d",
		c.Gets, c.Puts, c.HotHits, c.SnapshotHits, c.SlowGets, c.GroupCommits, c.GroupedAppends)
}

// PrintCacheSummary writes the cache epilogue every CLI prints to w, or
// nothing when no cache tier is attached. The "cache:" line is parsed by
// CI's resume-smoke step — new facts go on their own lines after it.
func (e *Executor) PrintCacheSummary(w io.Writer) {
	if e.cache == nil && e.remote == nil {
		return
	}
	if e.cache != nil {
		fmt.Fprintf(w, "%s entries=%d dir=%s\n", e.CacheSummary(), e.cache.Len(), e.cache.Dir())
		fmt.Fprintf(w, "%s\n", e.StoreOpsSummary())
	} else {
		fmt.Fprintf(w, "%s\n", e.CacheSummary())
	}
	if e.remote != nil {
		fmt.Fprintf(w, "%s\n", e.RemoteSummary())
		// Shed write-backs are silent by design at runtime (they must never
		// block a cell); the epilogue is where they become visible.
		if rs := e.remote.Stats(); rs.PutsDropped+rs.PutsShed > 0 {
			fmt.Fprintf(w, "remote: warning: %d computed results never reached the cache server (%d dropped queue-full, %d shed while the tier was down or disabled)\n",
				rs.PutsDropped+rs.PutsShed, rs.PutsDropped, rs.PutsShed)
		}
	}
	if e.fleet != nil {
		fmt.Fprintf(w, "%s\n", e.FleetSummary())
	}
}

// PoolSummary renders the resident worker-pool counters in the form the
// CLIs print under -progress: how many worker goroutines the campaign
// spawned and how many batches reused the already-resident pool.
func (e *Executor) PoolSummary() string {
	st := e.Stats()
	return fmt.Sprintf("pool: workers=%d worker_spawns=%d group_reuses=%d",
		e.workers, st.WorkerSpawns, st.GroupReuses)
}

// PrintPoolSummary writes the pool epilogue the CLIs print when progress
// reporting is enabled.
func (e *Executor) PrintPoolSummary(w io.Writer) {
	fmt.Fprintf(w, "%s\n", e.PoolSummary())
}
