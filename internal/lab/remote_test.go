// Campaign-level fault injection for the remote memo tier: whatever the
// server does — absent, killed mid-campaign, erroring, stalling, or
// corrupting — a campaign completes with results bit-identical to a
// no-remote run, and the degradation is visible in the stats rather than
// in the science.
package lab

import (
	"errors"
	"io"
	"math"
	"net"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"activemem/internal/faultnet"
	"activemem/internal/remote"
	"activemem/internal/store"
)

// campaignCell is the deterministic "simulation" the fault campaigns
// memoize; the float fields make bit-identity a real claim.
func campaignCell(i int) cacheResult {
	return cacheResult{A: i, B: float64(i) * 0.1, C: []float64{float64(i) * 1.5, 0.1 + 0.2}}
}

// runCampaign resolves cells experiment cells through ex, in order.
func runCampaign(t *testing.T, ex *Executor, cells int) []cacheResult {
	t.Helper()
	out := make([]cacheResult, cells)
	for i := 0; i < cells; i++ {
		v, err := Memo(ex, KeyOf("remote-fault-cell", i), func() (cacheResult, error) {
			return campaignCell(i), nil
		})
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		out[i] = v
	}
	return out
}

// wantIdentical asserts two campaign outcomes match to the float bit.
func wantIdentical(t *testing.T, got, want []cacheResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("campaign sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.A == w.A && math.Float64bits(g.B) == math.Float64bits(w.B) &&
			len(g.C) == len(w.C)
		if same {
			for j := range g.C {
				if math.Float64bits(g.C[j]) != math.Float64bits(w.C[j]) {
					same = false
				}
			}
		}
		if !same {
			t.Fatalf("cell %d diverged: %+v vs %+v", i, g, w)
		}
	}
}

// baseline runs the campaign with no cache tiers at all.
func baseline(t *testing.T, cells int) []cacheResult {
	t.Helper()
	return runCampaign(t, New(Config{Workers: 1}), cells)
}

// startCacheServer serves a fresh store over the cell protocol.
func startCacheServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Schema: ResultSchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(remote.NewHandler(st))
	return srv, st
}

// newRemoteClient builds a fast-failing test client against url.
func newRemoteClient(t *testing.T, url string, mod func(*remote.Options)) *remote.Client {
	t.Helper()
	o := remote.Options{
		BaseURL:          url,
		Schema:           ResultSchemaVersion,
		Timeout:          2 * time.Second,
		Retries:          -1, // none
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		BreakerThreshold: 1000,
		BreakerCooldown:  time.Minute,
		DrainTimeout:     5 * time.Second,
	}
	if mod != nil {
		mod(&o)
	}
	c, err := remote.New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// populate computes the campaign once through a write-back client so the
// server store holds every cell, then drains.
func populate(t *testing.T, srvURL string, cells int) {
	t.Helper()
	c := newRemoteClient(t, srvURL, nil)
	ex := New(Config{Workers: 1, Remote: c})
	runCampaign(t, ex, cells)
	c.Close()
}

// The remote tier end to end: one process computes and writes back, a
// second process (no local cache at all) serves everything remotely.
func TestRemoteTierRoundTrip(t *testing.T) {
	const cells = 8
	srv, st := startCacheServer(t)
	defer srv.Close()
	want := baseline(t, cells)

	cA := newRemoteClient(t, srv.URL, nil)
	exA := New(Config{Workers: 1, Remote: cA})
	gotA := runCampaign(t, exA, cells)
	wantIdentical(t, gotA, want)
	if s := exA.Stats(); s.Computed != cells || s.RemoteHits != 0 {
		t.Fatalf("cold stats = %+v", s)
	}
	cA.Close() // drain write-backs
	if st.Len() != cells {
		t.Fatalf("server store holds %d cells, want %d", st.Len(), cells)
	}

	cB := newRemoteClient(t, srv.URL, nil)
	exB := New(Config{Workers: 1, Remote: cB})
	gotB := runCampaign(t, exB, cells)
	wantIdentical(t, gotB, want)
	if s := exB.Stats(); s.Computed != 0 || s.RemoteHits != cells {
		t.Fatalf("warm stats = %+v, want %d remote hits", s, cells)
	}
	if sum := exB.CacheSummary(); sum != "cache: computed=0 disk_hits=0 hot_hits=0 mem_hits=0 persisted=0 remote_hits=8" {
		t.Fatalf("CacheSummary = %q", sum)
	}
}

// A remote hit writes through to the local store: the next process on the
// same cache directory never crosses the network again.
func TestRemoteHitWritesThroughToLocalStore(t *testing.T) {
	const cells = 6
	srv, _ := startCacheServer(t)
	defer srv.Close()
	want := baseline(t, cells)
	populate(t, srv.URL, cells)

	dir := t.TempDir()
	stC := openStore(t, dir)
	cC := newRemoteClient(t, srv.URL, nil)
	exC := New(Config{Workers: 1, Cache: stC, Remote: cC})
	wantIdentical(t, runCampaign(t, exC, cells), want)
	if s := exC.Stats(); s.RemoteHits != cells || s.Computed != 0 {
		t.Fatalf("remote-warm stats = %+v", s)
	}
	stC.Close()

	// Same directory, no remote: everything is local now.
	stD := openStore(t, dir)
	defer stD.Close()
	exD := New(Config{Workers: 1, Cache: stD})
	wantIdentical(t, runCampaign(t, exD, cells), want)
	if s := exD.Stats(); s.DiskHits != cells || s.Computed != 0 {
		t.Fatalf("local stats = %+v, want %d disk hits", s, cells)
	}
}

// Server down before the campaign starts: every lookup degrades to a
// computed cell, the breaker opens, the results don't change.
func TestCampaignCompletesWithServerDownAtStart(t *testing.T) {
	const cells = 10
	want := baseline(t, cells)

	// An address nothing listens on anymore.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	c := newRemoteClient(t, deadURL, func(o *remote.Options) {
		o.Timeout = 200 * time.Millisecond
		o.BreakerThreshold = 2
	})
	ex := New(Config{Workers: 1, Remote: c})
	wantIdentical(t, runCampaign(t, ex, cells), want)
	if s := ex.Stats(); s.Computed != cells || s.RemoteHits != 0 {
		t.Fatalf("stats = %+v, want all %d computed", s, cells)
	}
	rs := c.Stats()
	if rs.Errors < 2 || rs.BreakerOpens < 1 || rs.BreakerFastFails < 1 {
		t.Fatalf("degradation invisible: %+v", rs)
	}
}

// Server killed mid-campaign: cells already served stay served, the rest
// compute, and the combined run is bit-identical to a no-remote one.
func TestCampaignCompletesWhenServerKilledMidCampaign(t *testing.T) {
	const cells = 12
	const killAt = 5
	srv, _ := startCacheServer(t)
	killed := false
	defer func() {
		if !killed {
			srv.Close()
		}
	}()
	want := baseline(t, cells)
	populate(t, srv.URL, cells)

	c := newRemoteClient(t, srv.URL, func(o *remote.Options) {
		o.Timeout = 200 * time.Millisecond
		o.BreakerThreshold = 2
	})
	ex := New(Config{Workers: 1, Remote: c})
	got := make([]cacheResult, cells)
	for i := 0; i < cells; i++ {
		if i == killAt {
			srv.Close()
			killed = true
		}
		v, err := Memo(ex, KeyOf("remote-fault-cell", i), func() (cacheResult, error) {
			return campaignCell(i), nil
		})
		if err != nil {
			t.Fatalf("cell %d after kill: %v", i, err)
		}
		got[i] = v
	}
	wantIdentical(t, got, want)
	s := ex.Stats()
	if s.RemoteHits != killAt || s.Computed != cells-killAt {
		t.Fatalf("stats = %+v, want %d remote hits then %d computed", s, killAt, cells-killAt)
	}
	if rs := c.Stats(); rs.Errors < 1 {
		t.Fatalf("kill invisible in client stats: %+v", rs)
	}
}

// 100% 5xx: every call fails, the breaker opens, the campaign completes.
func TestCampaignCompletesUnder100Percent5xx(t *testing.T) {
	const cells = 10
	srv, _ := startCacheServer(t)
	defer srv.Close()
	want := baseline(t, cells)
	populate(t, srv.URL, cells)

	proxy, err := faultnet.New(srv.URL, faultnet.Always(faultnet.Fault{Kind: faultnet.Err5xx}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := newRemoteClient(t, proxy.URL(), func(o *remote.Options) { o.BreakerThreshold = 3 })
	ex := New(Config{Workers: 1, Remote: c})
	wantIdentical(t, runCampaign(t, ex, cells), want)
	if s := ex.Stats(); s.Computed != cells {
		t.Fatalf("stats = %+v, want all %d computed", s, cells)
	}
	rs := c.Stats()
	if rs.Errors+rs.BreakerFastFails != cells || rs.BreakerOpens < 1 {
		t.Fatalf("degradation accounting off: %+v", rs)
	}
}

// A server stalling 2s against a 250ms deadline: no cell waits past its
// deadline budget, the breaker sheds the rest, the campaign stays fast.
func TestCampaignBoundedUnderStallingServer(t *testing.T) {
	const cells = 12
	srv, _ := startCacheServer(t)
	defer srv.Close()
	want := baseline(t, cells)
	populate(t, srv.URL, cells)

	proxy, err := faultnet.New(srv.URL,
		faultnet.Always(faultnet.Fault{Kind: faultnet.Delay, Wait: 2 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := newRemoteClient(t, proxy.URL(), func(o *remote.Options) {
		o.Timeout = 250 * time.Millisecond
		o.BreakerThreshold = 3
	})
	ex := New(Config{Workers: 1, Remote: c})
	start := time.Now()
	wantIdentical(t, runCampaign(t, ex, cells), want)
	elapsed := time.Since(start)
	// Three 250ms deadline hits open the breaker; everything after
	// fast-fails locally. Generous bound: well under cells×2s.
	if elapsed > 5*time.Second {
		t.Fatalf("stalled server held the campaign for %v", elapsed)
	}
	rs := c.Stats()
	if rs.BreakerOpens < 1 || rs.BreakerFastFails < 1 {
		t.Fatalf("breaker never sheared the stalls: %+v", rs)
	}
	if s := ex.Stats(); s.Computed != cells {
		t.Fatalf("stats = %+v, want all %d computed", s, cells)
	}
}

// Corrupt bodies (checksum header intact, payload flipped): counted
// misses, never decoded, never in the results.
func TestCampaignCorruptBodiesAreMisses(t *testing.T) {
	const cells = 8
	srv, _ := startCacheServer(t)
	defer srv.Close()
	want := baseline(t, cells)
	populate(t, srv.URL, cells)

	proxy, err := faultnet.New(srv.URL, faultnet.Always(faultnet.Fault{Kind: faultnet.CorruptBody}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := newRemoteClient(t, proxy.URL(), nil) // breaker too patient to shed
	ex := New(Config{Workers: 1, Remote: c})
	wantIdentical(t, runCampaign(t, ex, cells), want)
	if s := ex.Stats(); s.Computed != cells || s.RemoteHits != 0 {
		t.Fatalf("stats = %+v, want all %d computed", s, cells)
	}
	if rs := c.Stats(); rs.Corrupt != cells {
		t.Fatalf("client stats = %+v, want %d corrupt bodies counted", rs, cells)
	}
}

// Interrupt stops dispatching new cells; the batch unwinds with
// ErrInterrupted and cells that finished stay persisted.
func TestInterruptStopsDispatch(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	ex := New(Config{Workers: 1, Cache: st})
	var ran atomic.Int64
	err := ex.Run(10, func(i int) error {
		ran.Add(1)
		if _, err := Memo(ex, KeyOf("interrupt-cell", i), func() (float64, error) {
			return float64(i), nil
		}); err != nil {
			return err
		}
		if i == 3 {
			ex.Interrupt()
		}
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Run = %v, want ErrInterrupted", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d cells ran, want 4 (serial loop stops before cell 4)", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The finished cells resumed from disk by the next run.
	st2 := openStore(t, dir)
	defer st2.Close()
	ex2 := New(Config{Workers: 1, Cache: st2})
	for i := 0; i <= 3; i++ {
		v, err := Memo(ex2, KeyOf("interrupt-cell", i), func() (float64, error) {
			return -1, errors.New("must not recompute")
		})
		if err != nil || v != float64(i) {
			t.Fatalf("cell %d after resume = (%v, %v)", i, v, err)
		}
	}
	if s := ex2.Stats(); s.DiskHits != 4 {
		t.Fatalf("resume stats = %+v, want 4 disk hits", s)
	}

	// A parallel batch unwinds too (without pinning which cells ran).
	ex3 := New(Config{Workers: 4})
	err = ex3.Run(64, func(i int) error {
		if i == 5 {
			ex3.Interrupt()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("parallel Run = %v, want ErrInterrupted", err)
	}
}

// NotifyShutdown turns the first SIGTERM into Interrupt.
func TestNotifyShutdownInterruptsOnSignal(t *testing.T) {
	ex := New(Config{Workers: 1})
	stop := NotifyShutdown(ex, io.Discard)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !ex.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("SIGTERM did not interrupt the executor")
		}
		time.Sleep(time.Millisecond)
	}
}
