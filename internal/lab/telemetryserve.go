// The CLIs' shared entry into the telemetry subsystem: one flag, one start
// call. Keeping it here (rather than in each main) pins the contract that
// every experiment command exposes the same endpoints with the same status
// sources — and that the "telemetry: listening on ..." stderr line CI's
// smoke job parses never drifts between commands.

package lab

import (
	"flag"
	"fmt"
	"io"

	"activemem/internal/telemetry"
)

// RegisterTelemetryFlag registers the opt-in -telemetry flag on the
// default flag set. Call it before flag.Parse.
func RegisterTelemetryFlag() *string {
	return flag.String("telemetry", "",
		"serve /metrics, /statusz and /debug/pprof on this address (e.g. 127.0.0.1:0); empty = disabled")
}

// StartTelemetry starts the telemetry HTTP listener when addr is non-empty,
// announces the bound address on w (the ephemeral-port form 127.0.0.1:0 is
// useless unannounced), and binds the executor's point-in-time snapshots —
// lab.Stats, and the disk tier's OpCounters and HotStats when a cache is
// attached — into /statusz. Starting the listener also activates latency
// timing and pprof cell labelling process-wide (telemetry.Serve). The
// returned stop function closes the listener; with an empty addr it is a
// no-op and nothing is activated.
func StartTelemetry(addr string, ex *Executor, w io.Writer) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	telemetry.Default.AddStatus("lab", func() any { return ex.Stats() })
	if c := ex.Cache(); c != nil {
		telemetry.Default.AddStatus("store_ops", func() any { return c.Counters() })
		telemetry.Default.AddStatus("store_hot", func() any { return c.HotStats() })
	}
	if rc := ex.Remote(); rc != nil {
		// Degradation at a glance: hits vs errors/corrupt, breaker state
		// and opens, write-back queue depth and drops.
		telemetry.Default.AddStatus("remote", func() any { return rc.Stats() })
	}
	srv, err := telemetry.Serve(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "telemetry: listening on http://%s\n", srv.Addr())
	return func() { srv.Close() }, nil
}
