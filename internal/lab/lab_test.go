package lab

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		e := New(Config{Workers: workers})
		out := make([]int, 100)
		err := e.Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	e := New(Config{Workers: workers})
	var cur, peak atomic.Int64
	err := e.Run(50, func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestWorkersBoundHoldsAcrossBatches pins the semaphore semantics: the
// Workers bound is executor-wide, so concurrent Run batches share it
// rather than each spawning their own pool.
func TestWorkersBoundHoldsAcrossBatches(t *testing.T) {
	const workers = 2
	e := New(Config{Workers: workers})
	var cur, peak atomic.Int64
	job := func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}
	var wg sync.WaitGroup
	for b := 0; b < 3; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Run(10, job); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d across 3 batches exceeds %d workers", p, workers)
	}
}

func TestRunDefaultsToGOMAXPROCS(t *testing.T) {
	// The default is GOMAXPROCS floored at two: even on a single-CPU host
	// the campaign gets a resident pool that overlaps cache I/O with
	// compute.
	want := runtime.GOMAXPROCS(0)
	if want < 2 {
		want = 2
	}
	if w := New(Config{}).Workers(); w != want {
		t.Fatalf("default workers = %d, want %d", w, want)
	}
	if w := New(Config{Workers: -3}).Workers(); w != want {
		t.Fatalf("negative workers resolved to %d, want %d", w, want)
	}
	// An explicit 1 is the serial reference ordering and must stay serial.
	if w := New(Config{Workers: 1}).Workers(); w != 1 {
		t.Fatalf("explicit Workers: 1 resolved to %d", w)
	}
}

func TestRunFirstErrorCancelsPending(t *testing.T) {
	boom := errors.New("boom")
	e := New(Config{Workers: 1})
	var ran atomic.Int64
	err := e.Run(10, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("serial run executed %d jobs after failure at index 3", got)
	}
}

func TestRunParallelErrorIsLowestIndex(t *testing.T) {
	e := New(Config{Workers: 4})
	err := e.Run(8, func(i int) error {
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil {
		t.Fatal("no error propagated")
	}
	// All failures happen immediately; the reported one must be the lowest
	// index among those observed, which always includes job 0's worker.
	if err.Error() != "job 0 failed" && err.Error() != "job 1 failed" &&
		err.Error() != "job 2 failed" && err.Error() != "job 3 failed" {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	e := New(Config{Workers: 2, Progress: func(_ string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 6 {
			t.Errorf("total = %d", total)
		}
		seen = append(seen, done)
	}})
	if err := e.Run(6, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("progress called %d times, want 6", len(seen))
	}
	// Calls are serialised under the batch's progress lock, so the done
	// counter must arrive strictly in order.
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence out of order: %v", seen)
		}
	}
}

func TestProgressAbortSignal(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		e := New(Config{Workers: workers, Progress: func(_ string, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			seen = append(seen, done)
		}})
		err := e.Run(8, func(i int) error {
			if i == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		mu.Lock()
		if len(seen) == 0 || seen[len(seen)-1] != -1 {
			t.Fatalf("workers=%d: no abort signal after progress %v", workers, seen)
		}
		mu.Unlock()
	}
	// A batch that fails before any completion stays silent: there is no
	// meter line to terminate.
	called := false
	e := New(Config{Workers: 1, Progress: func(_ string, done, total int) { called = true }})
	if err := e.Run(3, func(int) error { return boom }); !errors.Is(err, boom) {
		t.Fatal("error not propagated")
	}
	if called {
		t.Fatal("progress called for a batch with zero completions")
	}
}

func TestDoMemoizesConcurrently(t *testing.T) {
	e := New(Config{Workers: 8})
	var calls atomic.Int64
	key := KeyOf("baseline", 1)
	err := e.Run(32, func(int) error {
		v, err := Memo(e, key, func() (int, error) {
			calls.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			return fmt.Errorf("memo returned (%v, %v)", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("computation ran %d times", n)
	}
	st := e.Stats()
	if st.Computed != 1 || st.Hits != 31 {
		t.Fatalf("stats = %+v, want 1 computed / 31 hits", st)
	}
}

func TestDoCachesErrors(t *testing.T) {
	e := New(Config{})
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := Memo(e, KeyOf("fails"), func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing computation ran %d times", calls)
	}
}

func TestKeyOfDiscriminates(t *testing.T) {
	type spec struct{ A, B int }
	a := KeyOf(spec{1, 2}, "x", 3)
	b := KeyOf(spec{1, 2}, "x", 3)
	c := KeyOf(spec{1, 2}, "x", 4)
	d := KeyOf(spec{2, 1}, "x", 3)
	if a != b {
		t.Fatal("identical inputs produced different keys")
	}
	if a == c || a == d || c == d {
		t.Fatal("distinct inputs collided")
	}
	// Argument boundaries matter: ("ab","c") != ("a","bc") must hold even
	// though the concatenated content is equal.
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("argument boundary collision")
	}
}

func TestRunEmptyBatch(t *testing.T) {
	e := New(Config{})
	if err := e.Run(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPersistsAcrossBatches pins the resident-pool contract: a campaign
// of many batches spawns its worker goroutines once, and every later batch
// is a pool reuse.
func TestPoolPersistsAcrossBatches(t *testing.T) {
	const workers, batches = 4, 25
	e := New(Config{Workers: workers})
	defer e.Close()
	for b := 0; b < batches; b++ {
		out := make([]int, 10)
		if err := e.Run(len(out), func(i int) error {
			out[i] = i + b
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i+b {
				t.Fatalf("batch %d: out[%d] = %d", b, i, v)
			}
		}
	}
	st := e.Stats()
	if st.WorkerSpawns != workers {
		t.Fatalf("spawned %d workers over %d batches, want %d once", st.WorkerSpawns, batches, workers)
	}
	if st.GroupReuses != batches-1 {
		t.Fatalf("pool reuses = %d, want %d", st.GroupReuses, batches-1)
	}
}

// TestSerialExecutorNeverSpawns pins that Workers: 1 — the deterministic
// reference ordering — stays a pure inline loop with no resident state, so
// Close is optional for it.
func TestSerialExecutorNeverSpawns(t *testing.T) {
	e := New(Config{Workers: 1})
	for b := 0; b < 5; b++ {
		if err := e.Run(4, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.WorkerSpawns != 0 || st.GroupReuses != 0 {
		t.Fatalf("serial executor touched the pool: %+v", st)
	}
	e.Close() // harmless
}

// TestCloseWhileIdle exercises the Close contract between batches: it is
// idempotent, safe before any batch ever ran, releases the resident
// workers, and a later batch transparently respawns them.
func TestCloseWhileIdle(t *testing.T) {
	New(Config{Workers: 3}).Close() // pool never spawned

	e := New(Config{Workers: 3})
	if err := e.Run(6, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if st := e.Stats(); st.WorkerSpawns != 3 {
		t.Fatalf("spawns after close = %d", st.WorkerSpawns)
	}
	// The pool respawns lazily after Close.
	out := make([]int, 6)
	if err := e.Run(len(out), func(i int) error { out[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("post-close batch: out[%d] = %d", i, v)
		}
	}
	if st := e.Stats(); st.WorkerSpawns != 6 {
		t.Fatalf("respawn generation missing: spawns = %d, want 6", st.WorkerSpawns)
	}
	e.Close()
}

// TestInterleavedBatchesShareResidentPool is the -race coverage for pool
// reuse across interleaved Run/RunLabeled calls from concurrent goroutines:
// one spawn generation serves them all, the Workers bound holds, and every
// job of every batch runs exactly once.
func TestInterleavedBatchesShareResidentPool(t *testing.T) {
	const workers, callers, batchesPer, jobs = 3, 5, 8, 12
	e := New(Config{Workers: workers})
	defer e.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	results := make([][][]int, callers)
	for c := 0; c < callers; c++ {
		results[c] = make([][]int, batchesPer)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				out := make([]int, jobs)
				results[c][b] = out
				label := fmt.Sprintf("caller %d batch %d", c, b)
				err := e.RunLabeled(label, jobs, func(i int) error {
					n := cur.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					out[i] = c<<16 | b<<8 | i
					cur.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d resident workers", p, workers)
	}
	for c := range results {
		for b, out := range results[c] {
			for i, v := range out {
				if v != c<<16|b<<8|i {
					t.Fatalf("caller %d batch %d job %d = %#x", c, b, i, v)
				}
			}
		}
	}
	if st := e.Stats(); st.WorkerSpawns != workers || st.GroupReuses != callers*batchesPer-1 {
		t.Fatalf("pool stats across interleaved batches = %+v", st)
	}
}

func TestRunLabeledReportsLabel(t *testing.T) {
	var mu sync.Mutex
	var labels []string
	e := New(Config{Workers: 1, Progress: func(label string, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		labels = append(labels, label)
	}})
	if err := e.RunLabeled("fig6 c=10 grid", 3, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := []string{"fig6 c=10 grid", "fig6 c=10 grid", "fig6 c=10 grid", ""}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}
