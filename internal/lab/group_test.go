package lab

import (
	"errors"
	"fmt"
	"testing"
)

func TestPersistentGroupRunsAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		for _, jobs := range []int{0, 1, 5, 16} {
			g := NewPersistentGroup(jobs, workers)
			// Per-job cells are written without locks: job i runs exactly
			// once per epoch and epochs are barrier-separated, so -race
			// passing here is itself the publication guarantee under test.
			cells := make([]int, jobs)
			const epochs = 50
			for e := 0; e < epochs; e++ {
				if err := g.RunEpoch(func(i int) error { cells[i]++; return nil }); err != nil {
					t.Fatalf("workers=%d jobs=%d epoch %d: %v", workers, jobs, e, err)
				}
			}
			g.Close()
			for i, c := range cells {
				if c != epochs {
					t.Fatalf("workers=%d jobs=%d: job %d ran %d times, want %d",
						workers, jobs, i, c, epochs)
				}
			}
		}
	}
}

func TestPersistentGroupWorkerCount(t *testing.T) {
	if g := NewPersistentGroup(4, 16); g.Workers() != 4 {
		t.Fatalf("workers not capped at jobs: %d", g.Workers())
	} else {
		g.Close()
	}
	if g := NewPersistentGroup(4, 1); g.Workers() != 1 {
		t.Fatalf("explicit single worker: %d", g.Workers())
	} else {
		g.Close()
	}
	if g := NewPersistentGroup(0, 0); g.Workers() != 1 {
		t.Fatalf("empty group workers: %d", g.Workers())
	} else {
		if err := g.RunEpoch(func(int) error { t.Fatal("job ran in empty group"); return nil }); err != nil {
			t.Fatal(err)
		}
		g.Close()
	}
}

func TestPersistentGroupErrorPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := NewPersistentGroup(8, workers)
		boom := errors.New("boom")
		if err := g.RunEpoch(func(i int) error {
			if i == 3 {
				return boom
			}
			return nil
		}); err != boom {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// When every job fails, each worker fails its first job (its range
		// start) and stops; the reported error is the lowest-indexed one
		// observed, which must be some worker's range start. (Unlike the
		// executor's dynamic index-order claiming, a static partition may
		// abort the epoch before worker 0 ever starts job 0.)
		err := g.RunEpoch(func(i int) error { return fmt.Errorf("job %d", i) })
		firstJobs := map[string]bool{"job 0": true}
		for w := 0; w < workers; w++ {
			firstJobs[fmt.Sprintf("job %d", w*8/workers)] = true
		}
		if err == nil || !firstJobs[err.Error()] {
			t.Fatalf("workers=%d: error = %v, want a worker's first job", workers, err)
		}
		// A failed epoch must not poison the next one.
		ran := make([]bool, 8)
		if err := g.RunEpoch(func(i int) error { ran[i] = true; return nil }); err != nil {
			t.Fatalf("workers=%d: epoch after failure: %v", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: job %d skipped after a failed epoch", workers, i)
			}
		}
		g.Close()
	}
}

func TestPersistentGroupInlineAbortsAfterFailure(t *testing.T) {
	g := NewPersistentGroup(8, 1)
	defer g.Close()
	var last int
	err := g.RunEpoch(func(i int) error {
		last = i
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || last != 2 {
		t.Fatalf("inline epoch ran past the failure: last=%d err=%v", last, err)
	}
}

func TestPersistentGroupClose(t *testing.T) {
	g := NewPersistentGroup(6, 3)
	if err := g.RunEpoch(func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close() // idempotent
	if err := g.RunEpoch(func(int) error {
		t.Fatal("job ran after Close")
		return nil
	}); err != nil {
		t.Fatalf("RunEpoch after Close: %v", err)
	}
	// Closing a group that never ran an epoch must not hang either.
	NewPersistentGroup(6, 3).Close()
}

// TestPersistentGroupPinsState exercises the property the cluster runner
// depends on: per-job state mutated without synchronisation stays
// consistent across hundreds of epochs because job i always runs on the
// same worker with barrier-ordered epochs. The alternating read-modify-
// write pattern would trip -race instantly if jobs migrated or epochs
// overlapped.
func TestPersistentGroupPinsState(t *testing.T) {
	const jobs, epochs = 12, 400
	g := NewPersistentGroup(jobs, 5)
	defer g.Close()
	state := make([][]int64, jobs)
	for i := range state {
		state[i] = []int64{0}
	}
	for e := 0; e < epochs; e++ {
		if err := g.RunEpoch(func(i int) error {
			state[i][0] = state[i][0]*3 + int64(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range state {
		var want int64
		for e := 0; e < epochs; e++ {
			want = want*3 + int64(i)
		}
		if state[i][0] != want {
			t.Fatalf("job %d state = %d, want %d", i, state[i][0], want)
		}
	}
}
