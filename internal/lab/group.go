package lab

import (
	"runtime"
	"sync"
	"sync/atomic"

	"activemem/internal/telemetry"
)

// PersistentGroup is a fixed worker set for bulk-synchronous campaigns: the
// same n jobs run once per epoch, every epoch, with each job pinned to the
// same resident worker goroutine for the whole run. A cluster execution is
// the motivating shape — one compute phase per simulated socket per
// iteration — where re-entering Executor.Run every iteration pays worker
// spawn, scheduling and teardown costs hundreds of times per Run. The group
// spawns its goroutines once; epochs are separated by a sense-reversing
// barrier, so an epoch costs two barrier crossings instead of a pool
// setup/teardown.
//
// The Executor's resident worker pool generalises the same idea to
// arbitrary batches (dynamic job claiming, any batch size, memo tiers);
// PersistentGroup remains for the bulk-synchronous case because its static
// partition pins job i's mutable state (a simulated socket) to one
// goroutine for the whole run, which dynamic claiming cannot guarantee.
//
// Semantics match Executor.RunLabeled for a batch of n jobs: once any job
// fails no further jobs of that epoch start (jobs already running
// complete), RunEpoch returns the error of the lowest-indexed failed job
// observed, and results are written by index into caller-owned storage.
// (Jobs start in index order within each worker's static range rather than
// in global index order, so which jobs run before an abort can differ from
// the executor's dynamic claiming; the reported error is selected the same
// way.)
// Determinism also matches: job i always runs on the same worker, alone or
// with the same static job subset, so a run's outcome is bit-identical for
// every worker count.
//
// The group itself is single-coordinator: RunEpoch and Close must be called
// from one goroutine at a time (the jobs, of course, run concurrently).
type PersistentGroup struct {
	n       int // jobs per epoch
	workers int
	label   string // pprof cell label for profile attribution
	bar     *senseBarrier

	// Epoch state, written by the coordinator before the start barrier and
	// read by workers after it (the barrier publishes it), and vice versa
	// for the error fields at the end barrier.
	job    func(i int) error
	stop   bool
	failed atomic.Bool

	errMu  sync.Mutex
	errIdx int
	errVal error

	closeOnce sync.Once
}

// NewPersistentGroup creates a group running jobs 0..jobs-1 each epoch on
// workers resident goroutines. workers <= 0 selects GOMAXPROCS; the count
// is capped at the job count. With one worker the group runs epochs inline
// on the caller's goroutine and owns no resident state, so Close is then
// optional (but harmless). Each worker owns the contiguous job range
// [w·jobs/workers, (w+1)·jobs/workers) — the partition is static, which is
// what keeps per-worker simulator state (e.g. a socket) pinned to one
// goroutine for the lifetime of the run.
func NewPersistentGroup(jobs, workers int) *PersistentGroup {
	return NewPersistentGroupLabeled(jobs, workers, "")
}

// NewPersistentGroupLabeled is NewPersistentGroup with a pprof cell label:
// every job of every epoch runs under cell=label (when labelling is
// active; see telemetry.SetCellLabels), so CPU profiles attribute the
// group's bulk-synchronous phases the same way executor batches are.
func NewPersistentGroupLabeled(jobs, workers int, label string) *PersistentGroup {
	if jobs < 0 {
		jobs = 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	g := &PersistentGroup{n: jobs, workers: workers, label: label, errIdx: -1}
	if workers > 1 {
		g.bar = newSenseBarrier(workers + 1) // workers + the coordinator
		for w := 0; w < workers; w++ {
			go g.worker(w*jobs/workers, (w+1)*jobs/workers)
		}
	}
	return g
}

// Workers returns the number of resident workers (1 means inline epochs).
func (g *PersistentGroup) Workers() int { return g.workers }

// RunEpoch executes jobs 0..n-1 once and blocks until they all finish or
// the epoch aborts on a failure. It returns the error of the lowest-indexed
// failed job observed, or nil. Calling RunEpoch after Close returns nil
// without running anything.
func (g *PersistentGroup) RunEpoch(job func(i int) error) error {
	if g.stop {
		return nil
	}
	g.failed.Store(false)
	g.errIdx, g.errVal = -1, nil
	if g.bar == nil {
		for i := 0; i < g.n; i++ {
			var err error
			telemetry.WithCellLabel(g.label, func() { err = job(i) })
			if err != nil {
				return err
			}
		}
		return nil
	}
	g.job = job
	g.bar.await() // release the workers into the epoch
	g.bar.await() // wait for every worker to finish it
	g.job = nil
	return g.errVal
}

// Close shuts the resident workers down and blocks until they have exited.
// It is idempotent and safe to call with epochs never run.
func (g *PersistentGroup) Close() {
	g.closeOnce.Do(func() {
		g.stop = true
		if g.bar != nil {
			g.bar.await() // workers observe stop at the epoch start and exit
		}
	})
}

// worker runs the static job range [lo, hi) once per epoch until Close.
func (g *PersistentGroup) worker(lo, hi int) {
	for {
		g.bar.await() // epoch start: job/stop published by the coordinator
		if g.stop {
			return
		}
		for i := lo; i < hi; i++ {
			if g.failed.Load() {
				break // abort: a job of this epoch failed elsewhere
			}
			var err error
			telemetry.WithCellLabel(g.label, func() { err = g.job(i) })
			if err != nil {
				g.errMu.Lock()
				if g.errIdx < 0 || i < g.errIdx {
					g.errIdx, g.errVal = i, err
				}
				g.errMu.Unlock()
				g.failed.Store(true)
				break
			}
		}
		g.bar.await() // epoch end
	}
}

// senseBarrier is a sense-reversing barrier for a fixed set of n
// participants. Arrivals count up on a shared atomic; the last arriver
// resets the count, re-arms the opposite phase, flips the sense and
// releases the waiters of the current phase by closing its channel. Earlier
// arrivers park on the channel instead of spinning — the right trade for
// epochs that each run millions of simulated cycles.
type senseBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Int32
	ch    [2]chan struct{}
}

func newSenseBarrier(n int) *senseBarrier {
	b := &senseBarrier{n: int32(n)}
	b.ch[0] = make(chan struct{})
	b.ch[1] = make(chan struct{})
	return b
}

// await blocks until all n participants have arrived at the current phase.
//
// Re-arming ch[1-s] here is safe: every participant of the previous phase
// (sense 1-s) read its channel before arriving at this phase, and this
// phase completes only after all n arrivals, so by the time the last
// arriver replaces the channel no goroutine can still be about to read the
// old value. The atomic arrival counter orders those reads before this
// write.
func (b *senseBarrier) await() {
	s := b.sense.Load()
	ch := b.ch[s]
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.ch[1-s] = make(chan struct{})
		b.sense.Store(1 - s)
		close(ch)
	} else {
		<-ch
	}
}
