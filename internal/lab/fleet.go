// The executor's fleet integration: how one process becomes one worker
// of a distributed campaign. The shape follows from content addressing —
// every worker runs the *same* grid, so the fleet layer gates only the
// compute leg of Do. A cell that any worker already published is a plain
// remote-tier hit and never even reaches the coordinator; a cell nobody
// has is claimed, and the claim verdict decides: compute under a lease
// (publish synchronously, then ack), wait out a peer and read its bytes
// from the shared cache, or — whenever the coordinator is unreachable or
// a peer's bytes cannot be fetched — compute solo, exactly as a
// fleet-less run would. Every degraded path converges on the same bytes,
// so a fleet can only ever change a campaign's speed.

package lab

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"activemem/internal/fleet"
	"activemem/internal/remote"
)

// OpenFleet resolves a -worker-of / $ACTIVEMEM_FLEET_URL setting into a
// coordinator link with tuning knobs from the environment
// (fleet.ClientOptionsFromEnv). An empty URL returns (nil, nil): no
// fleet. The only error is a malformed URL; a coordinator that is down
// or flapping merely degrades claims to solo compute at runtime.
func OpenFleet(urlStr string) (*fleet.Client, error) {
	if urlStr == "" {
		return nil, nil
	}
	return fleet.NewClient(fleet.ClientOptionsFromEnv(urlStr))
}

// Fleet returns the executor's coordinator link, or nil.
func (e *Executor) Fleet() *fleet.Client { return e.fleet }

// cellLabels maps goroutine id → batch label while a labelled cell runs
// with a fleet attached; see Executor.runCell. A process-wide table is
// correct because a goroutine runs one cell at a time regardless of how
// many executors exist.
var cellLabels sync.Map

// goid parses this goroutine's id from the first stack-trace line
// ("goroutine N [running]:"). The one-line runtime.Stack call costs
// tens of nanoseconds against a claim RPC's milliseconds, and only runs
// on the fleet path.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// cellLabel returns the batch label parked for this goroutine, if any.
func (e *Executor) cellLabel() string {
	if v, ok := cellLabels.Load(goid()); ok {
		return v.(string)
	}
	return ""
}

// fleetResolve resolves one cache-missed cell through the coordinator.
// It is called inside the memo entry's once, so at most one goroutine
// per process negotiates any given key. The return values slot straight
// into Do's tier accounting: ran means fn executed here, otherwise tier
// names the cache tier that served the bytes.
func (e *Executor) fleetResolve(key Key, fn func() (any, error)) (v any, err error, tier int, ran, wrote bool) {
	label := e.cellLabel()
	for {
		if e.interrupted.Load() {
			return nil, ErrInterrupted, 0, false, false
		}
		d := e.fleet.Claim(string(key), label)
		switch d.Action {
		case fleet.ActionRun:
			v, err = fn()
			if err != nil {
				e.fleet.Fail(string(key), err.Error())
				return nil, err, 0, true, false
			}
			// Publish before acking: peers told "done" fetch from the shared
			// cache, so the bytes must precede the verdict.
			wrote = e.cachePutMode(key, v, true)
			e.fleet.Done(string(key))
			return v, nil, 0, true, wrote

		case fleet.ActionDone:
			// A peer completed the cell and published it. The publish
			// happened before its ack, so this fetch should hit; when it
			// cannot (no shared cache tier, server down again), compute
			// solo — a byte-identical duplicate, by construction.
			if cv, ctier, ok := e.cacheGet(key); ok {
				return cv, nil, ctier, false, false
			}
			e.fleetSolo.Add(1)
			v, err = fn()
			if err == nil {
				wrote = e.cachePut(key, v)
			}
			return v, err, 0, true, wrote

		case fleet.ActionWait:
			// A peer holds the lease. Sleep the suggested interval (jittered,
			// so waiters don't reconverge), recheck the cache tiers — the
			// peer's publish lands there — then claim again; the coordinator
			// answers done/run/wait as the lease played out.
			time.Sleep(remote.JitteredBackoff(d.RetryIn, d.RetryIn, 0))
			if cv, ctier, ok := e.cacheGet(key); ok {
				return cv, nil, ctier, false, false
			}

		case fleet.ActionFailed:
			msg := d.Err
			if msg == "" {
				msg = "cell failed on another worker"
			}
			return nil, fmt.Errorf("lab: fleet: cell %.12s… failed: %s", string(key), msg), 0, false, false

		case fleet.ActionAbort:
			msg := d.Err
			if msg == "" {
				msg = "campaign aborted"
			}
			return nil, fmt.Errorf("lab: fleet: %s", msg), 0, false, false

		default: // fleet.ActionUnreachable
			// The coordinator is gone or rejecting us: run the cell exactly
			// as a fleet-less executor would. Uncoordinated duplicates across
			// workers are possible and harmless — same key, same bytes.
			e.fleetSolo.Add(1)
			v, err = fn()
			if err == nil {
				wrote = e.cachePut(key, v)
			}
			return v, err, 0, true, wrote
		}
	}
}

// FleetSummary renders the worker's coordinator-link counters in the
// same machine-readable key=value form as CacheSummary (CI's
// distributed-smoke step parses leased and degraded).
func (e *Executor) FleetSummary() string {
	fs := e.fleet.Stats()
	return fmt.Sprintf("fleet: worker=%s leased=%d stolen=%d waited=%d done=%d late_acks=%d lost=%d degraded=%d solo=%d rpc_errors=%d url=%s",
		fs.Worker, fs.Leased, fs.Stolen, fs.Waited, fs.Done, fs.LateAcks,
		fs.Lost, fs.Degraded, e.fleetSolo.Load(), fs.RPCErrors, e.fleet.BaseURL())
}
