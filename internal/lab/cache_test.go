package lab

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"activemem/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{Schema: ResultSchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

type cacheResult struct {
	A int
	B float64
	C []float64
}

func init() {
	RegisterResult[cacheResult]("lab.cacheResult")
}

// TestDiskTierResumes is the resume contract in miniature: a second
// executor on a fresh process-equivalent (new store handle, empty memory
// memo) serves every cell from disk, value-identical, without computing.
func TestDiskTierResumes(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	e1 := New(Config{Cache: st})
	var calls atomic.Int64
	want := cacheResult{A: 7, B: 0.1 + 0.2, C: []float64{1.5, -0}}
	key := KeyOf("cell", 1)
	v1, err := Memo(e1, key, func() (cacheResult, error) {
		calls.Add(1)
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := e1.Stats(); s.Computed != 1 || s.Persisted != 1 {
		t.Fatalf("cold stats = %+v", s)
	}
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	e2 := New(Config{Cache: st2})
	v2, err := Memo(e2, key, func() (cacheResult, error) {
		calls.Add(1)
		return cacheResult{}, fmt.Errorf("must not run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("cell computed %d times", calls.Load())
	}
	if s := e2.Stats(); s.Computed != 0 || s.DiskHits != 1 {
		t.Fatalf("warm stats = %+v", s)
	}
	// Bit-exact round trip, including the float sum's low bits.
	if v1.A != v2.A || v1.B != v2.B || len(v2.C) != 2 || v2.C[0] != 1.5 {
		t.Fatalf("round trip changed the value: %+v vs %+v", v1, v2)
	}
	// A further call on the same executor is a memory hit, not a disk hit.
	if _, err := Memo(e2, key, func() (cacheResult, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if s := e2.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Fatalf("stats after memory hit = %+v", s)
	}
}

// TestDiskTierScalar pins the built-in scalar codecs (the §III-A ladder
// persists float64 levels).
func TestDiskTierScalar(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	e1 := New(Config{Cache: st})
	if _, err := Memo(e1, KeyOf("f"), func() (float64, error) { return 2.782, nil }); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	e2 := New(Config{Cache: st2})
	v, err := Memo(e2, KeyOf("f"), func() (float64, error) { return 0, fmt.Errorf("must not run") })
	if err != nil || v != 2.782 {
		t.Fatalf("scalar round trip = (%v, %v)", v, err)
	}
}

type unregisteredResult struct{ X int }

// TestUnregisteredTypeStaysMemoryOnly: cells whose result type has no codec
// still memoize in memory but are never persisted.
func TestUnregisteredTypeStaysMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	e := New(Config{Cache: st})
	key := KeyOf("unregistered")
	if _, err := Memo(e, key, func() (unregisteredResult, error) { return unregisteredResult{1}, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Memo(e, key, func() (unregisteredResult, error) { return unregisteredResult{2}, nil }); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Computed != 1 || s.Hits != 1 || s.Persisted != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if st.Len() != 0 {
		t.Fatalf("unregistered result reached the store (%d entries)", st.Len())
	}
}

// TestErrorsAreNotPersisted: only successful results reach the disk tier,
// so a transient failure retries on the next run.
func TestErrorsAreNotPersisted(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	defer st.Close()
	e := New(Config{Cache: st})
	key := KeyOf("fails")
	if _, err := Memo(e, key, func() (float64, error) { return 0, fmt.Errorf("boom") }); err == nil {
		t.Fatal("error swallowed")
	}
	if st.Len() != 0 {
		t.Fatal("failed cell persisted")
	}
}

// TestRegisterResultConflicts pins the registry's safety checks.
func TestRegisterResultConflicts(t *testing.T) {
	RegisterResult[cacheResult]("lab.cacheResult") // same type + name: no-op
	mustPanic(t, "same name, different type", func() {
		RegisterResult[unregisteredResult]("lab.cacheResult")
	})
	mustPanic(t, "same type, different name", func() {
		RegisterResult[cacheResult]("lab.cacheResultRenamed")
	})
}

// TestTwoExecutorsShareCacheDir runs two executors (each with its own
// store handle, as two CLI processes would) over overlapping cells
// concurrently; every cell must compute at most twice (once per executor
// at worst, when both race before either persists) and both executors must
// agree on the values. Run under -race in CI.
func TestTwoExecutorsShareCacheDir(t *testing.T) {
	dir := t.TempDir()
	st1, st2 := openStore(t, dir), openStore(t, dir)
	defer st1.Close()
	defer st2.Close()
	e1 := New(Config{Workers: 4, Cache: st1})
	e2 := New(Config{Workers: 4, Cache: st2})

	const cells = 30
	var computes atomic.Int64
	results := [2][cells]float64{}
	var wg sync.WaitGroup
	for w, e := range []*Executor{e1, e2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := e.Run(cells, func(i int) error {
				v, err := Memo(e, KeyOf("shared-cell", i), func() (float64, error) {
					computes.Add(1)
					return float64(i) * 1.25, nil
				})
				results[w][i] = v
				return err
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if n := computes.Load(); n > 2*cells {
		t.Fatalf("%d computations for %d cells", n, cells)
	}
	for i := 0; i < cells; i++ {
		if results[0][i] != float64(i)*1.25 || results[1][i] != float64(i)*1.25 {
			t.Fatalf("cell %d diverged: %v vs %v", i, results[0][i], results[1][i])
		}
	}
	// Everything computed by either executor is on disk for the next run.
	st3 := openStore(t, dir)
	defer st3.Close()
	e3 := New(Config{Cache: st3})
	err := e3.Run(cells, func(i int) error {
		_, err := Memo(e3, KeyOf("shared-cell", i), func() (float64, error) {
			return 0, fmt.Errorf("cell %d not persisted", i)
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := e3.Stats(); s.DiskHits != cells {
		t.Fatalf("third executor stats = %+v, want %d disk hits", s, cells)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

// TestKeyOfRejectsUnstableArguments pins the fingerprinting guard: maps and
// pointers render iteration order or addresses, so KeyOf must refuse them
// loudly instead of minting unstable keys.
func TestKeyOfRejectsUnstableArguments(t *testing.T) {
	x := 7
	type inner struct{ M map[string]int }
	type outer struct{ I inner }
	type withPtr struct{ P *int }
	cases := []struct {
		name string
		arg  any
	}{
		{"map", map[string]int{"a": 1}},
		{"pointer", &x},
		{"func", func() {}},
		{"chan", make(chan int)},
		{"nested map field", outer{inner{M: map[string]int{}}}},
		{"pointer field", withPtr{P: &x}},
		{"slice of pointers", []*int{&x}},
		{"interface holding map", any(map[int]int{})},
	}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: KeyOf did not panic", c.name)
					return
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "fingerprint") {
					t.Errorf("%s: unclear panic message %q", c.name, msg)
				}
			}()
			KeyOf("prefix", c.arg)
		}()
	}
}

// TestKeyOfAcceptsStableArguments: everything the experiment configs are
// made of passes, including nil interfaces and primitive slices.
func TestKeyOfAcceptsStableArguments(t *testing.T) {
	type spec struct {
		Name   string
		Sizes  [3]int64
		Nested struct{ F float64 }
	}
	a := KeyOf(spec{Name: "m"}, nil, []int64{1, 2}, []string{"x"}, [][]float64{{1}}, 3.5, true)
	b := KeyOf(spec{Name: "m"}, nil, []int64{1, 2}, []string{"x"}, [][]float64{{1}}, 3.5, true)
	if a != b {
		t.Fatal("stable arguments produced unstable keys")
	}
}

// TestHotTierServesSecondExecutor: with a hot-set budget, a second
// executor on the same store serves a cell from the in-memory tier with
// the decoded value attached — a hot hit, not a disk hit — because both
// cachePut and the first disk read attach decoded values.
func TestHotTierServesSecondExecutor(t *testing.T) {
	st, err := OpenCacheSized(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e1 := New(Config{Cache: st})
	want := cacheResult{A: 3, B: 1.25, C: []float64{9}}
	key := KeyOf("hot-cell", 1)
	if _, err := Memo(e1, key, func() (cacheResult, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	e2 := New(Config{Cache: st})
	v, err := Memo(e2, key, func() (cacheResult, error) {
		return cacheResult{}, fmt.Errorf("must not run")
	})
	if err != nil || v.A != want.A || v.B != want.B {
		t.Fatalf("hot tier round trip = (%+v, %v)", v, err)
	}
	if s := e2.Stats(); s.HotHits != 1 || s.DiskHits != 0 || s.Computed != 0 {
		t.Fatalf("warm stats = %+v, want the one call to be a hot hit", s)
	}
	if hs := st.HotStats(); hs.Entries == 0 {
		t.Fatalf("store hot stats = %+v", hs)
	}
}

// TestDiskReadAttachesDecodedValue: after one disk-tier read, the next
// executor gets a hot hit — the decode happened once.
func TestDiskReadAttachesDecodedValue(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenCacheSized(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Config{Cache: st})
	key := KeyOf("attach-cell")
	if _, err := Memo(e1, key, func() (float64, error) { return 4.5, nil }); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A fresh handle starts with a cold hot set: the first read comes from
	// disk and attaches, the second executor hits memory.
	st2, err := OpenCacheSized(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := New(Config{Cache: st2})
	if _, err := Memo(e2, key, func() (float64, error) { return 0, fmt.Errorf("no") }); err != nil {
		t.Fatal(err)
	}
	if s := e2.Stats(); s.DiskHits != 1 || s.HotHits != 0 {
		t.Fatalf("first warm read stats = %+v, want a disk hit", s)
	}
	e3 := New(Config{Cache: st2})
	if _, err := Memo(e3, key, func() (float64, error) { return 0, fmt.Errorf("no") }); err != nil {
		t.Fatal(err)
	}
	if s := e3.Stats(); s.HotHits != 1 || s.DiskHits != 0 {
		t.Fatalf("second warm read stats = %+v, want a hot hit", s)
	}
}

// TestCacheSummaryReportsTiers pins the epilogue format CI parses.
func TestCacheSummaryReportsTiers(t *testing.T) {
	st, err := OpenCacheSized(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e := New(Config{Cache: st})
	if _, err := Memo(e, KeyOf("s"), func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	got := e.CacheSummary()
	want := "cache: computed=1 disk_hits=0 hot_hits=0 mem_hits=0 persisted=1"
	if got != want {
		t.Fatalf("CacheSummary = %q, want %q", got, want)
	}
}

// TestHotBytesFromEnv pins the ACTIVEMEM_CACHE_MEM contract.
func TestHotBytesFromEnv(t *testing.T) {
	t.Setenv("ACTIVEMEM_CACHE_MEM", "")
	if got := HotBytesFromEnv(); got != DefaultHotBytes {
		t.Fatalf("unset = %d, want default %d", got, DefaultHotBytes)
	}
	t.Setenv("ACTIVEMEM_CACHE_MEM", "0")
	if got := HotBytesFromEnv(); got != 0 {
		t.Fatalf("\"0\" = %d, want 0 (disabled)", got)
	}
	t.Setenv("ACTIVEMEM_CACHE_MEM", "1048576")
	if got := HotBytesFromEnv(); got != 1<<20 {
		t.Fatalf("1048576 = %d", got)
	}
	t.Setenv("ACTIVEMEM_CACHE_MEM", "not-a-number")
	if got := HotBytesFromEnv(); got != DefaultHotBytes {
		t.Fatalf("garbage = %d, want default", got)
	}
}
