// Package lab is the shared experiment executor behind every measurement
// campaign in this repository. The paper's methodology is an experiment
// campaign — hundreds of independent simulator runs (interference sweeps,
// §III-C3 calibration grids, §IV application studies, cluster compute
// phases) — and all of them schedule their cells through one Executor
// instead of hand-rolled goroutine fan-outs. The Executor provides:
//
//   - a bounded worker pool: at most Config.Workers cells run concurrently
//     (default GOMAXPROCS), so arbitrarily wide grids use bounded memory;
//   - content-addressed memoization: Do/Memo run a computation at most once
//     per Key, where a Key (built with KeyOf) fingerprints the experiment's
//     full input content — machine spec, workload identity, interference
//     kind and thread count, warmup/window, seed. Identical cells, such as
//     the uninterfered k=0 baseline shared by a storage sweep, a bandwidth
//     sweep and a calibration grid, execute exactly once per Executor;
//   - first-error propagation: a failing cell cancels all not-yet-started
//     cells of its batch, and Run reports the failure deterministically
//     (the lowest-indexed error observed);
//   - optional progress callbacks, serialised for CLI reporting.
//
// Determinism: cells are deterministic functions of their inputs and write
// results by index, so a batch's outcome is bit-identical for every worker
// count — Workers: 1 (fully serial) is the reference ordering that
// parallel runs must, and do, reproduce.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Key identifies the full input content of one experiment cell.
type Key string

// KeyOf fingerprints its arguments into a content-addressed Key: each
// argument is rendered in Go syntax (%#v) and fed to SHA-256, so two keys
// are equal exactly when the rendered inputs are. Arguments must render
// deterministically — value structs, strings and numbers do; maps and
// pointers to freshly allocated state do not and must be expanded by the
// caller into stable values first.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Config parameterises an Executor.
type Config struct {
	// Workers bounds how many cells run concurrently. Zero or negative
	// selects GOMAXPROCS; 1 runs every batch inline, in index order.
	Workers int
	// Progress, when non-nil, is called after each cell of a batch
	// completes with the batch's label (possibly empty), the number
	// finished so far and the batch size. Calls are serialised across
	// workers. When a batch aborts on error after reporting at least one
	// completion, the callback receives one final call with done = -1 so
	// line-oriented meters can terminate their output.
	Progress func(label string, done, total int)
}

// Executor schedules experiment cells. Construct with New; the zero value
// is not ready for use. An Executor (and its memo cache) may be shared by
// any number of concurrent batches: the Workers bound holds across all of
// them (a semaphore, not a per-batch pool), as does progress-callback
// serialisation. Run must not be called from inside one of its own jobs on
// the same Executor — a job holds a worker slot, so same-executor nesting
// can exhaust the pool and deadlock (give nested work its own Executor, as
// the cluster runner does).
type Executor struct {
	workers  int
	slots    chan struct{} // executor-wide worker semaphore
	progress func(label string, done, total int)
	progMu   sync.Mutex // serialises progress across batches

	mu       sync.Mutex
	memo     map[Key]*memoEntry
	computed int
	hits     int
}

type memoEntry struct {
	once  sync.Once
	value any
	err   error
}

// New returns an Executor for the configuration.
func New(cfg Config) *Executor {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: w, slots: make(chan struct{}, w),
		progress: cfg.Progress, memo: map[Key]*memoEntry{}}
}

// Workers returns the executor's concurrency bound.
func (e *Executor) Workers() int { return e.workers }

// Run executes jobs 0..n-1 on the worker pool with an anonymous batch
// label; see RunLabeled.
func (e *Executor) Run(n int, job func(i int) error) error {
	return e.RunLabeled("", n, job)
}

// RunLabeled executes jobs 0..n-1 on the worker pool and blocks until they
// finish or fail. The label names the batch in progress reporting (e.g.
// "storage sweep: MCB" or "capacity grid c=10"), making long experiment
// campaigns legible. Once any job returns an error no further jobs start
// (jobs already running complete), and the call returns the error of the
// lowest-indexed failed job. Jobs must write their results by index into
// caller-owned storage; no output ordering is imposed.
func (e *Executor) RunLabeled(label string, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}

	// The batch's progress counter is guarded by the executor-wide progress
	// lock, so callbacks are serialised across batches and the per-batch
	// done counter never goes backwards.
	progDone := 0
	report := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		progDone++
		e.progress(label, progDone, n)
	}
	abort := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		if progDone > 0 {
			e.progress(label, -1, n) // abort signal: see Config.Progress
		}
	}

	// runJob executes one job under the executor-wide worker semaphore, so
	// the Workers bound holds even when batches overlap.
	runJob := func(i int) error {
		e.slots <- struct{}{}
		defer func() { <-e.slots }()
		return job(i)
	}

	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := runJob(i); err != nil {
				abort()
				return err
			}
			report()
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errIdx = -1
		errVal error
	)
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runJob(i); err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				report()
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		abort()
	}
	return errVal
}

// Do returns the result for key, computing it with fn at most once per
// Executor; concurrent calls with the same key block until the single
// computation finishes and then share its result (including its error).
// The caller must ensure the key captures every input fn's result depends
// on — an under-specified key silently returns a wrong cached result.
func (e *Executor) Do(key Key, fn func() (any, error)) (any, error) {
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		ent = &memoEntry{}
		e.memo[key] = ent
	}
	e.mu.Unlock()

	ran := false
	ent.once.Do(func() {
		ent.value, ent.err = fn()
		ran = true
	})

	e.mu.Lock()
	if ran {
		e.computed++
	} else {
		e.hits++
	}
	e.mu.Unlock()
	return ent.value, ent.err
}

// Memo is the typed wrapper around Do. A cached value whose type does not
// match T reports an error rather than a silent zero value: it means two
// call sites collided on one key with different result types.
func Memo[T any](e *Executor, key Key, fn func() (T, error)) (T, error) {
	v, err := e.Do(key, func() (any, error) {
		t, err := fn()
		return t, err
	})
	var zero T
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("lab: memoized value for key %.12s… has type %T, want %T (key collision?)",
			string(key), v, zero)
	}
	return t, nil
}

// Stats summarises the executor's memoization activity.
type Stats struct {
	// Computed is the number of distinct computations executed via Do.
	Computed int
	// Hits is the number of Do calls served from the memo cache.
	Hits int
}

// Stats returns a snapshot of the memoization counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Computed: e.computed, Hits: e.hits}
}

// StderrProgress returns a Progress callback that renders a per-batch
// "label: done/total" meter on stderr, or nil when enabled is false. It is
// the shared implementation behind the CLIs' -progress flag. The done = -1
// abort signal terminates the meter line so a following error message
// starts on a fresh line.
func StderrProgress(enabled bool) func(label string, done, total int) {
	if !enabled {
		return nil
	}
	return func(label string, done, total int) {
		if done < 0 {
			fmt.Fprintln(os.Stderr)
			return
		}
		if label == "" {
			label = "experiment batch"
		}
		fmt.Fprintf(os.Stderr, "\r  %s: %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
