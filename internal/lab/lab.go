// Package lab is the shared experiment executor behind every measurement
// campaign in this repository. The paper's methodology is an experiment
// campaign — hundreds of independent simulator runs (interference sweeps,
// §III-C3 calibration grids, §IV application studies, cluster compute
// phases) — and all of them schedule their cells through one Executor
// instead of hand-rolled goroutine fan-outs. The Executor provides:
//
//   - a bounded resident worker pool: at most Config.Workers cells run
//     concurrently (default GOMAXPROCS), so arbitrarily wide grids use
//     bounded memory, and the pool goroutines persist across batches, so a
//     campaign of hundreds of small batches pays worker spawning once
//     (Close releases them);
//   - content-addressed memoization: Do/Memo run a computation at most once
//     per Key, where a Key (built with KeyOf) fingerprints the experiment's
//     full input content — machine spec, workload identity, interference
//     kind and thread count, warmup/window, seed. Identical cells, such as
//     the uninterfered k=0 baseline shared by a storage sweep, a bandwidth
//     sweep and a calibration grid, execute exactly once per Executor;
//   - first-error propagation: a failing cell cancels all not-yet-started
//     cells of its batch, and Run reports the failure deterministically
//     (the lowest-indexed error observed);
//   - optional progress callbacks, serialised for CLI reporting.
//
// Determinism: cells are deterministic functions of their inputs and write
// results by index, so a batch's outcome is bit-identical for every worker
// count — Workers: 1 (fully serial) is the reference ordering that
// parallel runs must, and do, reproduce.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"activemem/internal/fleet"
	"activemem/internal/remote"
	"activemem/internal/store"
	"activemem/internal/telemetry"
)

// Key identifies the full input content of one experiment cell.
type Key string

// KeyOf fingerprints its arguments into a content-addressed Key: the
// ResultSchemaVersion stamp and each argument rendered in Go syntax (%#v)
// are fed to SHA-256, so two keys are equal exactly when the rendered
// inputs are and keys from different simulator generations never collide.
// Arguments must render deterministically — value structs, strings and
// numbers do; maps and pointers do not (iteration order and addresses vary
// run to run) and KeyOf panics on them, because a silently unstable key
// defeats memoization in-process and poisons the persistent store across
// processes. Expand such state into stable values at the call site.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x1f", ResultSchemaVersion)
	for i, p := range parts {
		if err := checkFingerprintable(reflect.ValueOf(p), 0); err != nil {
			panic(fmt.Sprintf("lab: KeyOf argument %d (%T) cannot be fingerprinted deterministically: %v "+
				"(maps and pointers render iteration order or addresses; pass stable values instead)", i, p, err))
		}
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// checkFingerprintable walks a value, rejecting kinds whose %#v rendering
// is not a pure function of content: maps (iteration order), pointers and
// unsafe pointers (addresses), channels and funcs (addresses). Structs,
// arrays, slices and interfaces are walked recursively; everything the
// experiment configs are made of — numbers, strings, bools, value structs —
// passes.
func checkFingerprintable(v reflect.Value, depth int) error {
	const maxDepth = 64
	if depth > maxDepth {
		return fmt.Errorf("nesting deeper than %d", maxDepth)
	}
	if !v.IsValid() { // untyped nil renders as a stable "<nil>"
		return nil
	}
	switch v.Kind() {
	case reflect.Map:
		return fmt.Errorf("contains a map (%s)", v.Type())
	case reflect.Ptr, reflect.UnsafePointer:
		return fmt.Errorf("contains a pointer (%s)", v.Type())
	case reflect.Chan, reflect.Func:
		return fmt.Errorf("contains a %s (%s)", v.Kind(), v.Type())
	case reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return checkFingerprintable(v.Elem(), depth+1)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := checkFingerprintable(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("field %s.%s: %w", v.Type(), v.Type().Field(i).Name, err)
			}
		}
	case reflect.Slice, reflect.Array:
		// Element types that cannot hold a rejected kind need no per-element
		// walk; this keeps KeyOf O(1) for the common []byte / []int64 cases.
		switch v.Type().Elem().Kind() {
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
			reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
			return nil
		}
		for i := 0; i < v.Len(); i++ {
			if err := checkFingerprintable(v.Index(i), depth+1); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	}
	return nil
}

// Config parameterises an Executor.
type Config struct {
	// Workers bounds how many cells run concurrently. Zero or negative
	// selects GOMAXPROCS; 1 runs every batch inline, in index order.
	Workers int
	// Progress, when non-nil, is called after each cell of a batch
	// completes with the batch's label (possibly empty), the number
	// finished so far and the batch size. Calls are serialised across
	// workers. When a batch aborts on error after reporting at least one
	// completion, the callback receives one final call with done = -1 so
	// line-oriented meters can terminate their output.
	Progress func(label string, done, total int)
	// Cache, when non-nil, is the persistent disk tier behind the memo:
	// Do consults memory, then the store, then computes — and persists
	// successful results whose type is registered (RegisterResult). Open
	// the store with Schema: ResultSchemaVersion so stale results from an
	// older simulator generation self-invalidate. Several executors (or
	// processes) may share one cache directory; see package store.
	Cache *store.Store
	// Remote, when non-nil, is the network tier behind the disk tier
	// (open with OpenRemote): Do consults memory → hot set → disk →
	// remote → compute, and write-backs of computed cells flow to the
	// server asynchronously. The tier is strictly best-effort — a down,
	// slow, flaky or corrupting server degrades lookups to misses within
	// the client's deadline budget and can never fail a campaign or
	// change its bytes (see package remote). The executor does not own
	// the client; close it after the executor.
	Remote *remote.Client
	// Fleet, when non-nil, is a coordinator link (open with OpenFleet)
	// that turns this executor into one worker of a distributed
	// campaign: a cell that misses every cache tier is claimed from the
	// coordinator before computing, computed results are published
	// synchronously through the remote tier before the lease is acked,
	// and cells leased to other workers are waited out and then read
	// from the shared cache. An unreachable coordinator degrades every
	// claim to solo compute — a fleet can make a campaign faster, never
	// wrong (see package fleet). The executor does not own the client;
	// close it after the executor.
	Fleet *fleet.Client
}

// Executor schedules experiment cells. Construct with New; the zero value
// is not ready for use. An Executor (and its memo cache) may be shared by
// any number of concurrent batches: the Workers bound holds across all of
// them (one resident worker pool, not a per-batch pool), as does
// progress-callback serialisation. Run must not be called from inside one
// of its own jobs on the same Executor — a job occupies a resident worker,
// so same-executor nesting can starve the pool and deadlock; give nested
// work its own Executor or PersistentGroup, as the cluster cells scheduled
// by the app studies do (each cell runs its sockets on a private
// single-worker group, never back on the executor that ran the cell).
//
// The pool is lazily created by the first parallel batch and persists
// across batches: a campaign of sweep ladders, calibration grids and
// adaptive re-runs crosses a channel handoff per job instead of spawning
// and tearing down Workers goroutines per batch (the same resident-worker
// idea PersistentGroup applies to bulk-synchronous cluster epochs, without
// that type's static job pinning). Close releases the resident workers; a
// later batch lazily respawns them. Stats reports WorkerSpawns and
// GroupReuses so campaigns can see the pool working.
type Executor struct {
	workers  int
	progress func(label string, done, total int)
	progMu   sync.Mutex // serialises progress across batches
	cache    *store.Store
	remote   *remote.Client
	fleet    *fleet.Client

	// fleetSolo counts cells computed without a lease while a fleet was
	// attached (coordinator unreachable, or a peer's result unfetchable) —
	// the degraded-but-correct path.
	fleetSolo atomic.Uint64

	// interrupted stops new cells from dispatching (graceful shutdown);
	// see Interrupt.
	interrupted atomic.Bool

	poolMu sync.Mutex
	pool   *workerPool // nil until the first parallel batch (and after Close)
	spawns int         // worker goroutines spawned over the executor's lifetime
	reuses int         // parallel batches dispatched onto an already-resident pool

	mu         sync.Mutex
	memo       map[Key]*memoEntry
	computed   int
	hits       int
	diskHits   int
	hotHits    int
	remoteHits int
	persisted  int
}

type memoEntry struct {
	once  sync.Once
	value any
	err   error
}

// workerPool is one generation of resident worker goroutines, all ranging
// over one unbuffered task channel. Submitters feed one task per job index,
// so concurrent batches interleave per job exactly as the semaphore they
// replace did, and the worker count is the concurrency bound.
type workerPool struct {
	tasks chan poolTask
	wg    sync.WaitGroup
}

// poolTask is one job index of one batch. submitNs is the task's
// enqueue timestamp when span timing is active, zero otherwise.
type poolTask struct {
	b        *poolBatch
	i        int
	submitNs int64
}

// poolBatch is the shared state of one RunLabeled call in flight.
type poolBatch struct {
	ex     *Executor
	label  string
	job    func(i int) error
	report func()
	wg     sync.WaitGroup
	failed atomic.Bool

	errMu  sync.Mutex
	errIdx int
	errVal error
}

// fail records job i's error, keeping the lowest-indexed one.
func (b *poolBatch) fail(i int, err error) {
	b.errMu.Lock()
	if b.errIdx < 0 || i < b.errIdx {
		b.errIdx, b.errVal = i, err
	}
	b.errMu.Unlock()
	b.failed.Store(true)
}

// run executes one claimed task, skipping the job if its batch already
// failed (matching the executor's historical no-new-jobs-after-failure
// semantics for tasks handed to a worker before the failure was observed).
// The queued→start→done span instruments live here: queue depth drops at
// start, occupancy covers the job, and — when span timing is active — the
// queue wait and run duration feed the histograms and the per-label
// tracker. The job itself runs under a pprof cell label so CPU profiles
// attribute samples to the batch label.
func (t poolTask) run() {
	defer t.b.wg.Done()
	mQueueDepth.Add(-1)
	if t.b.failed.Load() {
		return
	}
	if t.submitNs != 0 {
		mQueueWait.Observe(telemetry.NowNs() - t.submitNs)
	}
	mWorkersBusy.Add(1)
	err := t.b.ex.runCell(t.b.label, t.i, t.b.job)
	mWorkersBusy.Add(-1)
	if err != nil {
		t.b.fail(t.i, err)
		return
	}
	t.b.report()
}

// runCell executes one cell under the batch's pprof label, timing the
// start→done span when telemetry is active. With a fleet attached, the
// batch label is also parked in the goroutine-keyed label table so the
// memo layer (Do has no label parameter) can attribute its claims.
func (e *Executor) runCell(label string, i int, job func(i int) error) error {
	if e.fleet != nil && label != "" {
		id := goid()
		cellLabels.Store(id, label)
		defer cellLabels.Delete(id)
	}
	var err error
	timed := telemetry.Active()
	var startNs int64
	if timed {
		startNs = telemetry.NowNs()
	}
	telemetry.WithCellLabel(label, func() { err = job(i) })
	if timed {
		d := telemetry.NowNs() - startNs
		mRunSeconds.Observe(d)
		mLabelSpans.Observe(label, d)
	}
	return err
}

// New returns an Executor for the configuration.
func New(cfg Config) *Executor {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		// Floor the default at two: even a single-CPU host profits from a
		// resident pool, because cells block on the disk tier (cache preads,
		// segment fsyncs) and a second worker overlaps that wait with
		// compute. An explicit Workers: 1 still means fully serial.
		if w < 2 {
			w = 2
		}
	}
	return &Executor{workers: w, progress: cfg.Progress,
		cache: cfg.Cache, remote: cfg.Remote, fleet: cfg.Fleet,
		memo: map[Key]*memoEntry{}}
}

// Workers returns the executor's concurrency bound.
func (e *Executor) Workers() int { return e.workers }

// ensurePool returns the resident pool, spawning its workers on first use
// (or first use after Close) and counting reuse otherwise.
func (e *Executor) ensurePool() *workerPool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.pool == nil {
		// A workers-deep buffer lets submitters hand tasks over without a
		// scheduler round trip per job while still bounding queued work;
		// only the worker count bounds concurrency.
		p := &workerPool{tasks: make(chan poolTask, e.workers)}
		p.wg.Add(e.workers)
		for range e.workers {
			go func() {
				defer p.wg.Done()
				for t := range p.tasks {
					t.run()
				}
			}()
		}
		e.spawns += e.workers
		mWorkersResident.Add(int64(e.workers))
		e.pool = p
	} else {
		e.reuses++
	}
	return e.pool
}

// Close shuts the resident worker pool down and blocks until its goroutines
// have exited (waiting out any still-running jobs). It is idempotent, safe
// on an executor whose pool was never spawned, and not final: a later batch
// lazily respawns the pool. Close must not overlap an in-flight Run on the
// same executor — close between batches, not during one.
func (e *Executor) Close() {
	e.poolMu.Lock()
	p := e.pool
	e.pool = nil
	e.poolMu.Unlock()
	if p != nil {
		close(p.tasks)
		p.wg.Wait()
		mWorkersResident.Add(-int64(e.workers))
	}
}

// Run executes jobs 0..n-1 on the worker pool with an anonymous batch
// label; see RunLabeled.
func (e *Executor) Run(n int, job func(i int) error) error {
	return e.RunLabeled("", n, job)
}

// RunLabeled executes jobs 0..n-1 on the resident worker pool and blocks
// until they finish or fail. The label names the batch in progress
// reporting (e.g. "storage sweep: MCB" or "capacity grid c=10"), making
// long experiment campaigns legible. Once any job returns an error no
// further jobs start (jobs already running complete), and the call returns
// the error of the lowest-indexed failed job. Jobs must write their results
// by index into caller-owned storage; no output ordering is imposed.
func (e *Executor) RunLabeled(label string, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}

	// The batch's progress counter is guarded by the executor-wide progress
	// lock, so callbacks are serialised across batches and the per-batch
	// done counter never goes backwards.
	progDone := 0
	report := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		progDone++
		e.progress(label, progDone, n)
	}
	abort := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		if progDone > 0 {
			e.progress(label, -1, n) // abort signal: see Config.Progress
		}
	}

	mBatches.Inc()

	// Workers: 1 is the serial reference ordering; it runs inline with no
	// pool (and no other goroutine can exist to share the bound with).
	if e.workers == 1 {
		for i := 0; i < n; i++ {
			if e.interrupted.Load() {
				abort()
				return ErrInterrupted
			}
			if err := e.runCell(label, i, job); err != nil {
				abort()
				return err
			}
			report()
		}
		return nil
	}

	b := &poolBatch{ex: e, label: label, job: job, report: report, errIdx: -1}
	pool := e.ensurePool()
	// Feed one task per index into the pool's queue: only the resident
	// workers execute tasks, so the worker count bounds concurrency across
	// overlapping batches, and the FIFO queue interleaves their jobs fairly.
	// On failure stop feeding; tasks already queued or handed to workers
	// check the failed flag before running.
	timed := telemetry.Active()
	for i := 0; i < n && !b.failed.Load(); i++ {
		if e.interrupted.Load() {
			// Graceful shutdown: stop dispatching, let queued/in-flight
			// tasks drain through the failed-batch path below. A real cell
			// error at a lower index still wins the deterministic report.
			b.fail(i, ErrInterrupted)
			break
		}
		var submitNs int64
		if timed {
			submitNs = telemetry.NowNs()
		}
		b.wg.Add(1)
		mQueueDepth.Add(1)
		pool.tasks <- poolTask{b: b, i: i, submitNs: submitNs}
	}
	b.wg.Wait()
	if b.errVal != nil {
		abort()
	}
	return b.errVal
}

// Progress feeds one externally sequenced unit of work to the executor's
// progress callback, serialised with batch reporting. It exists for work
// that is inherently level-by-level — an adaptive sweep schedules each
// interference level only after seeing the previous slowdowns, outside
// RunLabeled — but should still drive the CLI meters. The done = -1
// early-termination signal of Config.Progress applies here too. A nil
// callback makes this a no-op.
func (e *Executor) Progress(label string, done, total int) {
	if e.progress == nil {
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.progress(label, done, total)
}

// Do returns the result for key, computing it with fn at most once per
// Executor; concurrent calls with the same key block until the single
// computation finishes and then share its result (including its error).
// With a disk tier attached (Config.Cache), the computation is preceded by
// a store lookup and followed by a best-effort persist, so identical cells
// run at most once per cache directory across processes and interrupted
// campaigns resume where they stopped. The caller must ensure the key
// captures every input fn's result depends on — an under-specified key
// silently returns a wrong cached result.
func (e *Executor) Do(key Key, fn func() (any, error)) (any, error) {
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		ent = &memoEntry{}
		e.memo[key] = ent
	}
	e.mu.Unlock()

	ran, wrote := false, false
	hitTier := tierMemo
	timed := telemetry.Active()
	var startNs int64
	if timed {
		startNs = telemetry.NowNs()
	}
	ent.once.Do(func() {
		if v, tier, ok := e.cacheGet(key); ok {
			ent.value = v
			hitTier = tier
			return
		}
		if e.fleet != nil {
			ent.value, ent.err, hitTier, ran, wrote = e.fleetResolve(key, fn)
			return
		}
		ent.value, ent.err = fn()
		ran = true
		if ent.err == nil {
			wrote = e.cachePut(key, ent.value)
		}
	})

	// Attribute the span to the tier that resolved it. Callers that merely
	// waited out another goroutine's once.Do count as memo hits (their span
	// is the wait), matching the Stats accounting below.
	tier := hitTier
	if ran {
		tier = tierCompute
	}
	mCells[tier].Inc()
	if timed {
		mCellSeconds[tier].Observe(telemetry.NowNs() - startNs)
	}

	e.mu.Lock()
	switch tier {
	case tierCompute:
		e.computed++
		if wrote {
			e.persisted++
		}
	case tierHot:
		e.hotHits++
	case tierDisk:
		e.diskHits++
	case tierRemote:
		e.remoteHits++
	default:
		e.hits++
	}
	e.mu.Unlock()
	return ent.value, ent.err
}

// Memo is the typed wrapper around Do. A cached value whose type does not
// match T reports an error rather than a silent zero value: it means two
// call sites collided on one key with different result types.
func Memo[T any](e *Executor, key Key, fn func() (T, error)) (T, error) {
	v, err := e.Do(key, func() (any, error) {
		t, err := fn()
		return t, err
	})
	var zero T
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("lab: memoized value for key %.12s… has type %T, want %T (key collision?)",
			string(key), v, zero)
	}
	return t, nil
}

// Stats summarises the executor's memoization and worker-pool activity.
type Stats struct {
	// Computed is the number of distinct computations executed via Do.
	Computed int
	// Hits is the number of Do calls served from the in-memory memo.
	Hits int
	// DiskHits is the number of Do calls served from the persistent store
	// (a segment read plus a decode).
	DiskHits int
	// HotHits is the number of Do calls served from the store's in-memory
	// hot set with the decoded value already attached — no segment read, no
	// decode.
	HotHits int
	// RemoteHits is the number of Do calls served from the remote cache
	// tier (a verified network fetch plus a decode).
	RemoteHits int
	// Persisted is the number of computed results written to the store.
	Persisted int
	// WorkerSpawns is the number of resident worker goroutines spawned over
	// the executor's lifetime: Workers per pool creation, so it stays at
	// Workers for a whole campaign unless Close intervenes.
	WorkerSpawns int
	// GroupReuses is the number of parallel batches dispatched onto an
	// already-resident pool — every batch after a campaign's first that did
	// not pay worker spawning.
	GroupReuses int
}

// Stats returns a snapshot of the memoization and pool counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	st := Stats{Computed: e.computed, Hits: e.hits, DiskHits: e.diskHits,
		HotHits: e.hotHits, RemoteHits: e.remoteHits, Persisted: e.persisted}
	e.mu.Unlock()
	e.poolMu.Lock()
	st.WorkerSpawns, st.GroupReuses = e.spawns, e.reuses
	e.poolMu.Unlock()
	return st
}

// StderrProgress returns a Progress callback that renders a per-batch
// "label: done/total" meter on stderr, or nil when enabled is false. It is
// the shared implementation behind the CLIs' -progress flag. The done = -1
// abort signal terminates the meter line so a following error message
// starts on a fresh line.
func StderrProgress(enabled bool) func(label string, done, total int) {
	if !enabled {
		return nil
	}
	return func(label string, done, total int) {
		if done < 0 {
			fmt.Fprintln(os.Stderr)
			return
		}
		if label == "" {
			label = "experiment batch"
		}
		fmt.Fprintf(os.Stderr, "\r  %s: %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
