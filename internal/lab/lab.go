// Package lab is the shared experiment executor behind every measurement
// campaign in this repository. The paper's methodology is an experiment
// campaign — hundreds of independent simulator runs (interference sweeps,
// §III-C3 calibration grids, §IV application studies, cluster compute
// phases) — and all of them schedule their cells through one Executor
// instead of hand-rolled goroutine fan-outs. The Executor provides:
//
//   - a bounded worker pool: at most Config.Workers cells run concurrently
//     (default GOMAXPROCS), so arbitrarily wide grids use bounded memory;
//   - content-addressed memoization: Do/Memo run a computation at most once
//     per Key, where a Key (built with KeyOf) fingerprints the experiment's
//     full input content — machine spec, workload identity, interference
//     kind and thread count, warmup/window, seed. Identical cells, such as
//     the uninterfered k=0 baseline shared by a storage sweep, a bandwidth
//     sweep and a calibration grid, execute exactly once per Executor;
//   - first-error propagation: a failing cell cancels all not-yet-started
//     cells of its batch, and Run reports the failure deterministically
//     (the lowest-indexed error observed);
//   - optional progress callbacks, serialised for CLI reporting.
//
// Determinism: cells are deterministic functions of their inputs and write
// results by index, so a batch's outcome is bit-identical for every worker
// count — Workers: 1 (fully serial) is the reference ordering that
// parallel runs must, and do, reproduce.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"activemem/internal/store"
)

// Key identifies the full input content of one experiment cell.
type Key string

// KeyOf fingerprints its arguments into a content-addressed Key: the
// ResultSchemaVersion stamp and each argument rendered in Go syntax (%#v)
// are fed to SHA-256, so two keys are equal exactly when the rendered
// inputs are and keys from different simulator generations never collide.
// Arguments must render deterministically — value structs, strings and
// numbers do; maps and pointers do not (iteration order and addresses vary
// run to run) and KeyOf panics on them, because a silently unstable key
// defeats memoization in-process and poisons the persistent store across
// processes. Expand such state into stable values at the call site.
func KeyOf(parts ...any) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x1f", ResultSchemaVersion)
	for i, p := range parts {
		if err := checkFingerprintable(reflect.ValueOf(p), 0); err != nil {
			panic(fmt.Sprintf("lab: KeyOf argument %d (%T) cannot be fingerprinted deterministically: %v "+
				"(maps and pointers render iteration order or addresses; pass stable values instead)", i, p, err))
		}
		fmt.Fprintf(h, "%#v\x1f", p)
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// checkFingerprintable walks a value, rejecting kinds whose %#v rendering
// is not a pure function of content: maps (iteration order), pointers and
// unsafe pointers (addresses), channels and funcs (addresses). Structs,
// arrays, slices and interfaces are walked recursively; everything the
// experiment configs are made of — numbers, strings, bools, value structs —
// passes.
func checkFingerprintable(v reflect.Value, depth int) error {
	const maxDepth = 64
	if depth > maxDepth {
		return fmt.Errorf("nesting deeper than %d", maxDepth)
	}
	if !v.IsValid() { // untyped nil renders as a stable "<nil>"
		return nil
	}
	switch v.Kind() {
	case reflect.Map:
		return fmt.Errorf("contains a map (%s)", v.Type())
	case reflect.Ptr, reflect.UnsafePointer:
		return fmt.Errorf("contains a pointer (%s)", v.Type())
	case reflect.Chan, reflect.Func:
		return fmt.Errorf("contains a %s (%s)", v.Kind(), v.Type())
	case reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return checkFingerprintable(v.Elem(), depth+1)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := checkFingerprintable(v.Field(i), depth+1); err != nil {
				return fmt.Errorf("field %s.%s: %w", v.Type(), v.Type().Field(i).Name, err)
			}
		}
	case reflect.Slice, reflect.Array:
		// Element types that cannot hold a rejected kind need no per-element
		// walk; this keeps KeyOf O(1) for the common []byte / []int64 cases.
		switch v.Type().Elem().Kind() {
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
			reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
			return nil
		}
		for i := 0; i < v.Len(); i++ {
			if err := checkFingerprintable(v.Index(i), depth+1); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	}
	return nil
}

// Config parameterises an Executor.
type Config struct {
	// Workers bounds how many cells run concurrently. Zero or negative
	// selects GOMAXPROCS; 1 runs every batch inline, in index order.
	Workers int
	// Progress, when non-nil, is called after each cell of a batch
	// completes with the batch's label (possibly empty), the number
	// finished so far and the batch size. Calls are serialised across
	// workers. When a batch aborts on error after reporting at least one
	// completion, the callback receives one final call with done = -1 so
	// line-oriented meters can terminate their output.
	Progress func(label string, done, total int)
	// Cache, when non-nil, is the persistent disk tier behind the memo:
	// Do consults memory, then the store, then computes — and persists
	// successful results whose type is registered (RegisterResult). Open
	// the store with Schema: ResultSchemaVersion so stale results from an
	// older simulator generation self-invalidate. Several executors (or
	// processes) may share one cache directory; see package store.
	Cache *store.Store
}

// Executor schedules experiment cells. Construct with New; the zero value
// is not ready for use. An Executor (and its memo cache) may be shared by
// any number of concurrent batches: the Workers bound holds across all of
// them (a semaphore, not a per-batch pool), as does progress-callback
// serialisation. Run must not be called from inside one of its own jobs on
// the same Executor — a job holds a worker slot, so same-executor nesting
// can exhaust the pool and deadlock (give nested work its own Executor, as
// the cluster runner does).
type Executor struct {
	workers  int
	slots    chan struct{} // executor-wide worker semaphore
	progress func(label string, done, total int)
	progMu   sync.Mutex // serialises progress across batches
	cache    *store.Store

	mu        sync.Mutex
	memo      map[Key]*memoEntry
	computed  int
	hits      int
	diskHits  int
	persisted int
}

type memoEntry struct {
	once  sync.Once
	value any
	err   error
}

// New returns an Executor for the configuration.
func New(cfg Config) *Executor {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: w, slots: make(chan struct{}, w),
		progress: cfg.Progress, cache: cfg.Cache, memo: map[Key]*memoEntry{}}
}

// Workers returns the executor's concurrency bound.
func (e *Executor) Workers() int { return e.workers }

// Run executes jobs 0..n-1 on the worker pool with an anonymous batch
// label; see RunLabeled.
func (e *Executor) Run(n int, job func(i int) error) error {
	return e.RunLabeled("", n, job)
}

// RunLabeled executes jobs 0..n-1 on the worker pool and blocks until they
// finish or fail. The label names the batch in progress reporting (e.g.
// "storage sweep: MCB" or "capacity grid c=10"), making long experiment
// campaigns legible. Once any job returns an error no further jobs start
// (jobs already running complete), and the call returns the error of the
// lowest-indexed failed job. Jobs must write their results by index into
// caller-owned storage; no output ordering is imposed.
func (e *Executor) RunLabeled(label string, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}

	// The batch's progress counter is guarded by the executor-wide progress
	// lock, so callbacks are serialised across batches and the per-batch
	// done counter never goes backwards.
	progDone := 0
	report := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		progDone++
		e.progress(label, progDone, n)
	}
	abort := func() {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		if progDone > 0 {
			e.progress(label, -1, n) // abort signal: see Config.Progress
		}
	}

	// runJob executes one job under the executor-wide worker semaphore, so
	// the Workers bound holds even when batches overlap.
	runJob := func(i int) error {
		e.slots <- struct{}{}
		defer func() { <-e.slots }()
		return job(i)
	}

	w := e.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := runJob(i); err != nil {
				abort()
				return err
			}
			report()
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errIdx = -1
		errVal error
	)
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runJob(i); err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, errVal = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				report()
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		abort()
	}
	return errVal
}

// Progress feeds one externally sequenced unit of work to the executor's
// progress callback, serialised with batch reporting. It exists for work
// that is inherently level-by-level — an adaptive sweep schedules each
// interference level only after seeing the previous slowdowns, outside
// RunLabeled — but should still drive the CLI meters. The done = -1
// early-termination signal of Config.Progress applies here too. A nil
// callback makes this a no-op.
func (e *Executor) Progress(label string, done, total int) {
	if e.progress == nil {
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.progress(label, done, total)
}

// Do returns the result for key, computing it with fn at most once per
// Executor; concurrent calls with the same key block until the single
// computation finishes and then share its result (including its error).
// With a disk tier attached (Config.Cache), the computation is preceded by
// a store lookup and followed by a best-effort persist, so identical cells
// run at most once per cache directory across processes and interrupted
// campaigns resume where they stopped. The caller must ensure the key
// captures every input fn's result depends on — an under-specified key
// silently returns a wrong cached result.
func (e *Executor) Do(key Key, fn func() (any, error)) (any, error) {
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		ent = &memoEntry{}
		e.memo[key] = ent
	}
	e.mu.Unlock()

	ran, fromDisk, wrote := false, false, false
	ent.once.Do(func() {
		if v, ok := e.cacheGet(key); ok {
			ent.value = v
			fromDisk = true
			return
		}
		ent.value, ent.err = fn()
		ran = true
		if ent.err == nil {
			wrote = e.cachePut(key, ent.value)
		}
	})

	e.mu.Lock()
	switch {
	case ran:
		e.computed++
		if wrote {
			e.persisted++
		}
	case fromDisk:
		e.diskHits++
	default:
		e.hits++
	}
	e.mu.Unlock()
	return ent.value, ent.err
}

// Memo is the typed wrapper around Do. A cached value whose type does not
// match T reports an error rather than a silent zero value: it means two
// call sites collided on one key with different result types.
func Memo[T any](e *Executor, key Key, fn func() (T, error)) (T, error) {
	v, err := e.Do(key, func() (any, error) {
		t, err := fn()
		return t, err
	})
	var zero T
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("lab: memoized value for key %.12s… has type %T, want %T (key collision?)",
			string(key), v, zero)
	}
	return t, nil
}

// Stats summarises the executor's memoization activity.
type Stats struct {
	// Computed is the number of distinct computations executed via Do.
	Computed int
	// Hits is the number of Do calls served from the in-memory memo.
	Hits int
	// DiskHits is the number of Do calls served from the persistent store.
	DiskHits int
	// Persisted is the number of computed results written to the store.
	Persisted int
}

// Stats returns a snapshot of the memoization counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Computed: e.computed, Hits: e.hits,
		DiskHits: e.diskHits, Persisted: e.persisted}
}

// StderrProgress returns a Progress callback that renders a per-batch
// "label: done/total" meter on stderr, or nil when enabled is false. It is
// the shared implementation behind the CLIs' -progress flag. The done = -1
// abort signal terminates the meter line so a following error message
// starts on a fresh line.
func StderrProgress(enabled bool) func(label string, done, total int) {
	if !enabled {
		return nil
	}
	return func(label string, done, total int) {
		if done < 0 {
			fmt.Fprintln(os.Stderr)
			return
		}
		if label == "" {
			label = "experiment batch"
		}
		fmt.Fprintf(os.Stderr, "\r  %s: %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
