// The executor's telemetry instruments: per-cell spans by memo tier,
// worker-pool occupancy and queue depth, and the bounded per-label span
// tracker. Counters and gauges are always live (single atomic adds on
// paths that schedule whole experiment cells); span *timing* — the
// time.Now pairs — is gated on telemetry.Active() so a run without the
// listener or a profiler pays no clock reads per cell.

package lab

import "activemem/internal/telemetry"

// Tier indices for cellsByTier/cellSecondsByTier: how a Do call resolved.
const (
	tierMemo = iota
	tierHot
	tierDisk
	tierRemote
	tierCompute
	numTiers
)

var tierNames = [numTiers]string{"memo", "hot", "disk", "remote", "compute"}

var (
	mCells       [numTiers]*telemetry.Counter
	mCellSeconds [numTiers]*telemetry.Histogram
	mQueueDepth  = telemetry.Default.NewGauge("lab_queue_depth",
		"Batch tasks submitted to the resident pool and not yet started.")
	mWorkersBusy = telemetry.Default.NewGauge("lab_workers_busy",
		"Resident workers currently executing a cell.")
	mWorkersResident = telemetry.Default.NewGauge("lab_workers_resident",
		"Resident worker goroutines across all live executors.")
	mBatches = telemetry.Default.NewCounter("lab_batches_total",
		"Executor batches dispatched (Run/RunLabeled calls).")
	mQueueWait = telemetry.Default.NewHistogram("lab_cell_queue_seconds",
		"Span from batch-task submission to a worker starting it.")
	mRunSeconds = telemetry.Default.NewHistogram("lab_cell_run_seconds",
		"Span from a worker starting a cell to its completion.")
	mLabelSpans = telemetry.Default.NewTopK("lab_cell_label_seconds",
		"Per-batch-label cell spans, space-saving top-K (bounded memory at any label cardinality).", 48)
)

func init() {
	for t := 0; t < numTiers; t++ {
		mCells[t] = telemetry.Default.NewCounter("lab_cells_total",
			"Do calls by resolution tier: in-process memo, store hot set, disk segment, remote cache, or computed.",
			telemetry.Label{Key: "tier", Value: tierNames[t]})
		mCellSeconds[t] = telemetry.Default.NewHistogram("lab_cell_seconds",
			"Do resolution span by tier (lookup+decode for cache tiers, the computation for compute).",
			telemetry.Label{Key: "tier", Value: tierNames[t]})
	}
}
