// Chaos suite for distributed campaigns: several executors share one
// coordinator + cache server and the campaign must complete with results
// bit-identical to a single-process, fleet-less baseline while workers
// crash (abandoned leases), stall (stolen cells), lose the coordinator
// (restart mid-campaign) or lose the network (faultnet partition). The
// suite is the executable form of the fleet's one invariant: a fleet can
// change a campaign's speed, never its bytes.
package lab

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activemem/internal/faultnet"
	"activemem/internal/fleet"
	"activemem/internal/remote"
	"activemem/internal/store"
)

// fleetMux mounts the cell protocol and the campaign protocol on one
// handler, exactly as labcached -coord does.
func fleetMux(st *store.Store, co *fleet.Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.Handle(remote.CellPathPrefix, remote.NewHandler(st))
	mux.Handle(fleet.PathPrefix, fleet.NewHandler(co))
	return mux
}

// startFleetServer serves a fresh store + coordinator; the returned swap
// function replaces the live handler (coordinator "restart").
func startFleetServer(t *testing.T, fo fleet.Options) (*httptest.Server, *fleet.Coordinator, *store.Store, func(http.Handler)) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Schema: ResultSchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	co := fleet.NewCoordinator(fo)
	var live atomic.Value
	live.Store(fleetMux(st, co))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		live.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, co, st, func(h http.Handler) { live.Store(h) }
}

// newFleetClient builds a fast-failing worker link against url.
func newFleetClient(t *testing.T, url, worker string, mod func(*fleet.ClientOptions)) *fleet.Client {
	t.Helper()
	o := fleet.ClientOptions{
		BaseURL:          url,
		Worker:           worker,
		Timeout:          2 * time.Second,
		Retries:          -1,
		BackoffBase:      time.Millisecond,
		BreakerThreshold: 1000,
	}
	if mod != nil {
		mod(&o)
	}
	c, err := fleet.NewClient(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// newWorker assembles one campaign worker: an executor whose remote tier
// and fleet link both point at srvURL, as -worker-of would build it.
func newWorker(t *testing.T, srvURL, name string, mod func(*fleet.ClientOptions)) *Executor {
	t.Helper()
	rc := newRemoteClient(t, srvURL, nil)
	fc := newFleetClient(t, srvURL, name, mod)
	ex := New(Config{Workers: 2, Remote: rc, Fleet: fc})
	t.Cleanup(ex.Close)
	return ex
}

// runCampaignE is runCampaign for worker goroutines, where t.Fatal is
// off-limits.
func runCampaignE(ex *Executor, cells int) ([]cacheResult, error) {
	out := make([]cacheResult, cells)
	for i := 0; i < cells; i++ {
		v, err := Memo(ex, KeyOf("remote-fault-cell", i), func() (cacheResult, error) {
			return campaignCell(i), nil
		})
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Three workers race one grid; every worker prints the full report and
// all of them are bit-identical to the fleet-less baseline, with each
// cell computed under exactly one accepted lease.
func TestFleetCampaignSplitsWork(t *testing.T) {
	const cells, workers = 12, 3
	srv, co, _, _ := startFleetServer(t, fleet.Options{LeaseTTL: 5 * time.Second})
	want := baseline(t, cells)

	exs := make([]*Executor, workers)
	for w := range exs {
		exs[w] = newWorker(t, srv.URL, fmt.Sprintf("w%d", w), nil)
	}
	outs := make([][]cacheResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range exs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w], errs[w] = runCampaignE(exs[w], cells)
		}(w)
	}
	wg.Wait()

	var leased, degraded uint64
	for w := range exs {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		wantIdentical(t, outs[w], want)
		fs := exs[w].Fleet().Stats()
		leased += fs.Leased
		degraded += fs.Degraded
	}
	s := co.Status()
	if s.CellsDone != cells || s.Failed != 0 {
		t.Fatalf("coordinator status = %+v", s)
	}
	if leased != cells || degraded != 0 {
		t.Fatalf("leased = %d (want %d), degraded = %d (want 0)", leased, cells, degraded)
	}
}

// A worker crashes mid-cell: it claims a lease and goes silent — the
// in-process analog of SIGKILL, and exactly what Close leaves behind.
// The lease expires, the cell re-leases, and the survivor finishes the
// whole campaign bit-identically.
func TestFleetAbandonedLeaseIsReleased(t *testing.T) {
	const cells = 8
	srv, co, _, _ := startFleetServer(t, fleet.Options{LeaseTTL: 50 * time.Millisecond})
	want := baseline(t, cells)

	// The crasher leases cell 0 and never heartbeats, acks, or publishes.
	crasher := newFleetClient(t, srv.URL, "crasher", func(o *fleet.ClientOptions) {
		o.HeartbeatEvery = time.Hour
	})
	if d := crasher.Claim(string(KeyOf("remote-fault-cell", 0)), "chaos"); d.Action != fleet.ActionRun {
		t.Fatalf("crasher claim = %+v", d)
	}

	got, err := runCampaignE(newWorker(t, srv.URL, "survivor", nil), cells)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, want)
	s := co.Status()
	if s.Expired < 1 || s.Requeued < 1 {
		t.Fatalf("no expiry recorded: %+v", s)
	}
	if s.CellsDone != cells {
		t.Fatalf("status = %+v", s)
	}
	// The crasher's ghost ack — had the process survived to send it — is
	// rejected, so the cell still completed exactly once.
	if crasher.Done(string(KeyOf("remote-fault-cell", 0))) {
		t.Fatal("abandoned lease's late ack accepted")
	}
}

// A worker stalls but keeps heartbeating — alive, just stuck. Past
// StealAfter the cell is duplicated to a healthy worker; the staller's
// eventual ack is a counted late ack and the cell completes once.
func TestFleetStalledCellIsStolen(t *testing.T) {
	const cells = 6
	srv, co, _, _ := startFleetServer(t, fleet.Options{
		LeaseTTL:   100 * time.Millisecond,
		StealAfter: 150 * time.Millisecond,
	})
	want := baseline(t, cells)

	staller := newFleetClient(t, srv.URL, "staller", nil) // heartbeats at TTL/3
	if d := staller.Claim(string(KeyOf("remote-fault-cell", 0)), "chaos"); d.Action != fleet.ActionRun {
		t.Fatalf("staller claim = %+v", d)
	}

	got, err := runCampaignE(newWorker(t, srv.URL, "thief", nil), cells)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, want)
	s := co.Status()
	if s.Steals < 1 {
		t.Fatalf("no steal recorded: %+v", s)
	}
	if s.Expired != 0 {
		t.Fatalf("staller's lease expired despite heartbeats: %+v", s)
	}
	if s.CellsDone != cells {
		t.Fatalf("status = %+v", s)
	}
	// The staller finally "finishes": too late, the thief won.
	if staller.Done(string(KeyOf("remote-fault-cell", 0))) {
		t.Fatal("stolen cell acked twice")
	}
}

// The coordinator dies and restarts empty mid-campaign. Nothing is
// re-computed unnecessarily and nothing is lost: completed cells live in
// the shared cache, so the replacement coordinator only ever hears about
// the remainder.
func TestFleetCoordinatorRestartMidCampaign(t *testing.T) {
	const cells = 10
	srv, coA, st, swap := startFleetServer(t, fleet.Options{LeaseTTL: 5 * time.Second})
	want := baseline(t, cells)

	ex := newWorker(t, srv.URL, "w1", nil)
	firstHalf, err := runCampaignE(ex, cells/2)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, firstHalf, want[:cells/2])

	// Crash-replace the coordinator with a blank one. The cache store
	// must survive the restart (labcached persists it on disk); the
	// coordinator's in-memory state is the part that evaporates.
	coB := fleet.NewCoordinator(fleet.Options{LeaseTTL: 5 * time.Second})
	swap(fleetMux(st, coB))

	got, err := runCampaignE(ex, cells)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, want)
	if sA, sB := coA.Status(), coB.Status(); sA.CellsDone != cells/2 || sB.CellsDone != cells-cells/2 {
		t.Fatalf("done split = %d + %d, want %d + %d", sA.CellsDone, sB.CellsDone, cells/2, cells-cells/2)
	}

	// A worker joining after the restart needs no leases at all: every
	// cell is a remote-tier hit, and the new coordinator never hears of
	// them.
	late := newWorker(t, srv.URL, "latecomer", nil)
	got2, err := runCampaignE(late, cells)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got2, want)
	if fs := late.Fleet().Stats(); fs.Leased != 0 || fs.Degraded != 0 {
		t.Fatalf("latecomer stats = %+v, want no leases and no degradation", fs)
	}
}

// A worker's coordinator link partitions mid-campaign (faultnet
// blackhole); its cache link stays up. Claims degrade to solo compute
// and the campaign still completes bit-identically.
func TestFleetPartitionedWorkerRunsSolo(t *testing.T) {
	const cells = 8
	srv, co, _, _ := startFleetServer(t, fleet.Options{LeaseTTL: 5 * time.Second})
	want := baseline(t, cells)

	// The partition takes the fleet link only, after the third request.
	proxy, err := faultnet.New(srv.URL, faultnet.After(3, faultnet.Fault{Kind: faultnet.Drop}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	rc := newRemoteClient(t, srv.URL, nil) // cache link: direct, healthy
	fc := newFleetClient(t, proxy.URL(), "islander", func(o *fleet.ClientOptions) {
		o.Timeout = 200 * time.Millisecond
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour
	})
	ex := New(Config{Workers: 2, Remote: rc, Fleet: fc})
	t.Cleanup(ex.Close)

	got, err := runCampaignE(ex, cells)
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, want)
	fs := fc.Stats()
	if fs.Degraded < 1 {
		t.Fatalf("no degraded claims through the partition: %+v", fs)
	}
	if fs.Leased+fs.Degraded < cells {
		t.Fatalf("cells unaccounted for: %+v", fs)
	}
	// Cells computed solo were still published through the healthy cache
	// link; only the coordinator's view is partial.
	if s := co.Status(); s.CellsDone > fs.Leased {
		t.Fatalf("coordinator saw more completions than leases: %+v vs %+v", s, fs)
	}
	sum := ex.FleetSummary()
	if sum == "" {
		t.Fatal("empty fleet summary")
	}
}
