// The engine's telemetry adapter. The simulation hot loop — billions of
// Step calls per campaign — must not pay even an atomic add per access, so
// nothing here touches the stepping path. Instead the engine piggybacks on
// counters the simulator already maintains (the per-core tally blocks and
// prefetcher issue counts) and publishes their deltas into the process-wide
// registry at scheduling boundaries: once per Run/RunUntil, which is once
// per campaign cell or cluster compute phase. Publication is gated on
// telemetry.Active(), so with the listener off a Run pays one atomic load.

package engine

import "activemem/internal/telemetry"

var (
	tmEngineRuns = telemetry.Default.NewCounter("sim_engine_runs_total",
		"Engine Run/RunUntil invocations (one per campaign cell or cluster compute phase).")
	tmDemandAccesses = telemetry.Default.NewCounter("sim_demand_accesses_total",
		"Simulated demand accesses (loads+stores) published at scheduling boundaries.")
	tmPrefetchesIssued = telemetry.Default.NewCounter("sim_prefetches_issued_total",
		"Simulated prefetch candidates issued, published at scheduling boundaries.")
)

// publishTelemetry folds the hierarchy's already-counted totals into the
// registry as deltas against the engine's last publication. ResetStats
// re-baselines the underlying counters mid-run (warmup boundaries), which
// would make a naive delta negative; those are clamped by re-baselining
// here too, undercounting the reset interval rather than corrupting the
// monotone counters.
func (e *Engine) publishTelemetry() {
	if !telemetry.Active() {
		return
	}
	tmEngineRuns.Inc()
	var accs, issued int64
	for c := range e.hier.PerCore {
		ctr := &e.hier.PerCore[c]
		accs += ctr.Loads + ctr.Stores
		issued += e.hier.PrefetcherIssued(c)
	}
	if d := accs - e.lastAccesses; d > 0 {
		tmDemandAccesses.Add(uint64(d))
	}
	if d := issued - e.lastIssued; d > 0 {
		tmPrefetchesIssued.Add(uint64(d))
	}
	e.lastAccesses, e.lastIssued = accs, issued
}
