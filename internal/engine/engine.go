// Package engine is the discrete-event simulation core: it runs one
// Workload per core of a socket, advancing whichever core has the smallest
// local clock so that all mutations of the shared memory system (L3, bus)
// happen in global time order. Ties break on core id, making every run
// bit-reproducible.
//
// This stands in for the paper's pinned native threads: an interference
// thread on core k of the simulated socket perturbs the application on core
// 0 only through the shared L3 and memory bus, exactly as in the paper's
// methodology.
package engine

import (
	"container/heap"
	"fmt"

	"activemem/internal/mem"
	"activemem/internal/units"
	"activemem/internal/xrand"
)

// Workload is a deterministic state machine occupying one core. Step
// performs a small amount of work (some compute plus a handful of memory
// accesses) through the Ctx and returns false once the workload is done.
// Interference daemons always return true.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Step executes one unit of progress. It must advance the context's
	// clock (via Compute/Load/Store) by at least one cycle to guarantee
	// global progress.
	Step(ctx *Ctx) bool
}

// Ctx gives a workload timed access to its core and socket. All latencies
// feed the core-local clock.
type Ctx struct {
	coreID int
	hier   *mem.Hierarchy
	rng    *xrand.Rand
	now    units.Cycles
	mshrs  int

	// completion ring for overlapped loads
	outstanding []units.Cycles

	work     int64 // logical work units completed (workload-defined)
	accesses int64 // demand accesses issued via this ctx
	finished bool
	daemon   bool
	wl       Workload
}

// Core returns the core index this context runs on.
func (c *Ctx) Core() int { return c.coreID }

// Now returns the core-local clock.
func (c *Ctx) Now() units.Cycles { return c.now }

// Rand returns the context's deterministic RNG stream.
func (c *Ctx) Rand() *xrand.Rand { return c.rng }

// Hierarchy exposes the socket memory system (for counter snapshots).
func (c *Ctx) Hierarchy() *mem.Hierarchy { return c.hier }

// Compute advances the clock by n cycles of pure computation.
func (c *Ctx) Compute(n units.Cycles) {
	if n < 0 {
		panic("engine: negative compute time")
	}
	c.now += n
}

// Load performs a blocking read of addr; the clock advances by its latency.
func (c *Ctx) Load(addr mem.Addr) {
	_, lat := c.hier.Access(c.coreID, addr, c.now, false)
	c.now += lat
	c.accesses++
}

// Store performs a write of addr (write-allocate); the clock advances by its
// latency.
func (c *Ctx) Store(addr mem.Addr) {
	_, lat := c.hier.Access(c.coreID, addr, c.now, true)
	c.now += lat
	c.accesses++
}

// LoadOverlapped issues the given addresses with up to the core's MSHR
// limit in flight, modelling memory-level parallelism: each access is
// issued issueGap cycles after the previous one, stalling when the MSHR
// window is full, and the clock lands at the completion of the last access.
// This is how BWThr's many concurrent buffers extract bandwidth.
func (c *Ctx) LoadOverlapped(addrs []mem.Addr, issueGap units.Cycles) {
	issue := c.now
	out := c.outstanding[:0]
	for _, a := range addrs {
		if len(out) >= c.mshrs {
			// Wait for the earliest outstanding fill.
			min := 0
			for i := 1; i < len(out); i++ {
				if out[i] < out[min] {
					min = i
				}
			}
			if out[min] > issue {
				issue = out[min]
			}
			out[min] = out[len(out)-1]
			out = out[:len(out)-1]
		}
		_, lat := c.hier.Access(c.coreID, a, issue, false)
		out = append(out, issue+lat)
		issue += issueGap
		c.accesses++
	}
	end := issue
	for _, t := range out {
		if t > end {
			end = t
		}
	}
	c.outstanding = out[:0]
	c.now = end
}

// WorkUnit records the completion of n logical work units (iterations,
// particles, elements — whatever the workload counts).
func (c *Ctx) WorkUnit(n int64) { c.work += n }

// Work returns the logical work units completed so far.
func (c *Ctx) Work() int64 { return c.work }

// Accesses returns the number of demand accesses issued through this ctx.
func (c *Ctx) Accesses() int64 { return c.accesses }

// Finished reports whether the workload has completed.
func (c *Ctx) Finished() bool { return c.finished }

// Engine schedules the cores of one socket.
type Engine struct {
	hier *mem.Hierarchy
	ctxs []*Ctx
	pq   ctxHeap
}

// New creates an engine for a socket hierarchy with the given per-core MSHR
// limit.
func New(h *mem.Hierarchy, mshrs int) *Engine {
	if mshrs <= 0 {
		mshrs = 1
	}
	e := &Engine{hier: h}
	e.ctxs = make([]*Ctx, h.Cores())
	for i := range e.ctxs {
		e.ctxs[i] = &Ctx{coreID: i, hier: h, mshrs: mshrs,
			outstanding: make([]units.Cycles, 0, mshrs)}
	}
	return e
}

// Place assigns a workload to a core. seed feeds the workload's RNG stream.
func (e *Engine) Place(core int, w Workload, seed uint64) {
	e.place(core, w, seed, false)
}

// PlaceDaemon assigns an interference workload that runs forever; it never
// counts toward completion conditions.
func (e *Engine) PlaceDaemon(core int, w Workload, seed uint64) {
	e.place(core, w, seed, true)
}

func (e *Engine) place(core int, w Workload, seed uint64, daemon bool) {
	if core < 0 || core >= len(e.ctxs) {
		panic(fmt.Sprintf("engine: core %d out of range", core))
	}
	ctx := e.ctxs[core]
	if ctx.wl != nil {
		panic(fmt.Sprintf("engine: core %d already occupied by %s", core, ctx.wl.Name()))
	}
	ctx.wl = w
	ctx.rng = xrand.New(seed)
	ctx.daemon = daemon
}

// Ctx returns the context of a core (nil workload contexts are still valid
// for clock inspection).
func (e *Engine) Ctx(core int) *Ctx { return e.ctxs[core] }

// Hierarchy returns the socket memory system.
func (e *Engine) Hierarchy() *mem.Hierarchy { return e.hier }

// rebuild refreshes the scheduling heap from non-finished, occupied cores.
func (e *Engine) rebuild() {
	e.pq = e.pq[:0]
	for _, c := range e.ctxs {
		if c.wl != nil && !c.finished {
			e.pq = append(e.pq, c)
		}
	}
	heap.Init(&e.pq)
}

// RunUntil advances all occupied cores until every core's clock reaches t
// (or its workload finishes). It is used for warmup phases.
func (e *Engine) RunUntil(t units.Cycles) {
	e.rebuild()
	for len(e.pq) > 0 {
		c := e.pq[0]
		if c.now >= t {
			return // heap min has reached the horizon, so all cores have
		}
		before := c.now
		if !c.wl.Step(c) {
			c.finished = true
			heap.Pop(&e.pq)
			continue
		}
		if c.now == before {
			panic(fmt.Sprintf("engine: workload %s made no progress on core %d",
				c.wl.Name(), c.coreID))
		}
		heap.Fix(&e.pq, 0)
	}
}

// Run advances cores in global time order until stop returns true (checked
// after every step) or until every non-daemon workload has finished.
// Daemons keep running (generating interference) as long as any non-daemon
// is active.
func (e *Engine) Run(stop func() bool) {
	e.rebuild()
	workers := 0
	for _, c := range e.pq {
		if !c.daemon {
			workers++
		}
	}
	if workers == 0 {
		return
	}
	for len(e.pq) > 0 {
		c := e.pq[0]
		before := c.now
		if !c.wl.Step(c) {
			c.finished = true
			heap.Pop(&e.pq)
			if !c.daemon {
				workers--
				if workers == 0 {
					return
				}
			}
		} else {
			if c.now == before {
				panic(fmt.Sprintf("engine: workload %s made no progress on core %d",
					c.wl.Name(), c.coreID))
			}
			heap.Fix(&e.pq, 0)
		}
		if stop != nil && stop() {
			return
		}
	}
}

// RunToCompletion advances until every non-daemon workload has finished.
func (e *Engine) RunToCompletion() { e.Run(nil) }

// Rearm clears a finished workload's completion flag so the next Run
// schedules it again. Bulk-synchronous cluster phases use this to run one
// compute phase per iteration on a persistent socket (cache state and
// clocks survive across phases).
func (e *Engine) Rearm(core int) {
	e.ctxs[core].finished = false
}

// SetClock advances a core's local clock to t, modelling time the workload
// spent blocked outside the socket (e.g. waiting for messages). It panics
// if t would move the clock backwards.
func (e *Engine) SetClock(core int, t units.Cycles) {
	c := e.ctxs[core]
	if t < c.now {
		panic(fmt.Sprintf("engine: SetClock(%d) would rewind %d -> %d", core, c.now, t))
	}
	c.now = t
}

// MaxClock returns the largest core-local clock, i.e. the simulated elapsed
// time of the socket.
func (e *Engine) MaxClock() units.Cycles {
	var m units.Cycles
	for _, c := range e.ctxs {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// ctxHeap orders contexts by (clock, core id).
type ctxHeap []*Ctx

func (h ctxHeap) Len() int { return len(h) }
func (h ctxHeap) Less(i, j int) bool {
	if h[i].now != h[j].now {
		return h[i].now < h[j].now
	}
	return h[i].coreID < h[j].coreID
}
func (h ctxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ctxHeap) Push(x any)   { *h = append(*h, x.(*Ctx)) }
func (h *ctxHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
