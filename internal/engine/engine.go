// Package engine is the discrete-event simulation core: it runs one
// Workload per core of a socket, advancing whichever core has the smallest
// local clock so that all mutations of the shared memory system (L3, bus)
// happen in global time order. Ties break on core id, making every run
// bit-reproducible.
//
// This stands in for the paper's pinned native threads: an interference
// thread on core k of the simulated socket perturbs the application on core
// 0 only through the shared L3 and memory bus, exactly as in the paper's
// methodology.
package engine

import (
	"fmt"

	"activemem/internal/mem"
	"activemem/internal/units"
	"activemem/internal/xrand"
)

// Workload is a deterministic state machine occupying one core. Step
// performs a small amount of work (some compute plus a handful of memory
// accesses) through the Ctx and returns false once the workload is done.
// Interference daemons always return true.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Step executes one unit of progress. It must advance the context's
	// clock (via Compute/Load/Store) by at least one cycle to guarantee
	// global progress.
	Step(ctx *Ctx) bool
}

// Ctx gives a workload timed access to its core and socket. All latencies
// feed the core-local clock.
//
// Demand counters accumulate in a per-context mem.Tally and are folded into
// the hierarchy's PerCore block at the end of every workload step (the
// engine flushes after each Step call), so per-access paths pay two
// branch-free increments instead of the PerCore counter switch. Anything
// that observes counters between steps — measurement windows, ResetStats,
// stop predicates — sees exact values; only code driving a Ctx directly
// outside the engine loop (tests) must flush via the engine or avoid
// reading PerCore mid-stream.
type Ctx struct {
	coreID int
	hier   *mem.Hierarchy
	rng    *xrand.Rand
	now    units.Cycles
	mshrs  int
	tally  mem.Tally

	// completion ring for overlapped loads
	outstanding []units.Cycles

	work     int64 // logical work units completed (workload-defined)
	accesses int64 // demand accesses issued via this ctx
	finished bool
	daemon   bool
	wl       Workload
}

// Core returns the core index this context runs on.
func (c *Ctx) Core() int { return c.coreID }

// Now returns the core-local clock.
func (c *Ctx) Now() units.Cycles { return c.now }

// Rand returns the context's deterministic RNG stream.
func (c *Ctx) Rand() *xrand.Rand { return c.rng }

// Hierarchy exposes the socket memory system (for counter snapshots).
func (c *Ctx) Hierarchy() *mem.Hierarchy { return c.hier }

// Compute advances the clock by n cycles of pure computation.
func (c *Ctx) Compute(n units.Cycles) {
	if n < 0 {
		panic("engine: negative compute time")
	}
	c.now += n
}

// Load performs a blocking read of addr; the clock advances by its latency.
func (c *Ctx) Load(addr mem.Addr) {
	_, lat := c.hier.AccessTallied(c.coreID, addr, c.now, false, &c.tally)
	c.now += lat
	c.accesses++
}

// Store performs a write of addr (write-allocate); the clock advances by its
// latency.
func (c *Ctx) Store(addr mem.Addr) {
	_, lat := c.hier.AccessTallied(c.coreID, addr, c.now, true, &c.tally)
	c.now += lat
	c.accesses++
}

// LoadBatch performs blocking loads of addrs in order — the batched
// equivalent of calling Load per address, with per-access counter and
// tracer overhead amortised over the batch. Counters and timing are
// bit-identical to the per-call form.
func (c *Ctx) LoadBatch(addrs []mem.Addr) {
	c.now = c.hier.LoadBatch(c.coreID, c.now, addrs, 0, &c.tally)
	c.accesses += int64(len(addrs))
}

// LoadComputeBatch performs a blocking load followed by computePer cycles of
// computation for each addr in order — the sample-load-compute loop of the
// synthetic benchmarks.
func (c *Ctx) LoadComputeBatch(addrs []mem.Addr, computePer units.Cycles) {
	if computePer < 0 {
		panic("engine: negative compute time")
	}
	c.now = c.hier.LoadBatch(c.coreID, c.now, addrs, computePer, &c.tally)
	c.accesses += int64(len(addrs))
}

// StoreBatch performs blocking stores of addrs in order, the batched
// equivalent of calling Store per address.
func (c *Ctx) StoreBatch(addrs []mem.Addr) {
	c.now = c.hier.StoreBatch(c.coreID, c.now, addrs, &c.tally)
	c.accesses += int64(len(addrs))
}

// RMWBatch performs a load, compute cycles, then a store for each addr in
// order — the read-modify-write triple of CSThr-style kernels.
func (c *Ctx) RMWBatch(addrs []mem.Addr, compute units.Cycles) {
	if compute < 0 {
		panic("engine: negative compute time")
	}
	c.now = c.hier.RMWBatch(c.coreID, c.now, addrs, compute, &c.tally)
	c.accesses += 2 * int64(len(addrs))
}

// Exec runs an arbitrary batched access program: per op, an access (load or
// store) followed by its compute cycles. It is the general form behind
// LoadBatch/StoreBatch/RMWBatch for kernels whose per-element sequence is
// irregular (e.g. a stencil's two loads and a store).
func (c *Ctx) Exec(ops []mem.BatchOp) {
	c.now = c.hier.AccessBatch(c.coreID, c.now, ops, &c.tally)
	c.accesses += int64(len(ops))
}

// flushTally folds the context's pending demand counters into PerCore; the
// engine calls it after every workload step.
func (c *Ctx) flushTally() {
	c.hier.FlushTally(c.coreID, &c.tally)
}

// LoadOverlapped issues the given addresses with up to the core's MSHR
// limit in flight, modelling memory-level parallelism: each access is
// issued issueGap cycles after the previous one, stalling when the MSHR
// window is full, and the clock lands at the completion of the last access.
// This is how BWThr's many concurrent buffers extract bandwidth.
func (c *Ctx) LoadOverlapped(addrs []mem.Addr, issueGap units.Cycles) {
	issue := c.now
	out := c.outstanding[:0]
	for _, a := range addrs {
		if len(out) >= c.mshrs {
			// Wait for the earliest outstanding fill.
			min := 0
			for i := 1; i < len(out); i++ {
				if out[i] < out[min] {
					min = i
				}
			}
			if out[min] > issue {
				issue = out[min]
			}
			out[min] = out[len(out)-1]
			out = out[:len(out)-1]
		}
		_, lat := c.hier.AccessTallied(c.coreID, a, issue, false, &c.tally)
		out = append(out, issue+lat)
		issue += issueGap
		c.accesses++
	}
	end := issue
	for _, t := range out {
		if t > end {
			end = t
		}
	}
	c.outstanding = out[:0]
	c.now = end
}

// WorkUnit records the completion of n logical work units (iterations,
// particles, elements — whatever the workload counts).
func (c *Ctx) WorkUnit(n int64) { c.work += n }

// Work returns the logical work units completed so far.
func (c *Ctx) Work() int64 { return c.work }

// Accesses returns the number of demand accesses issued through this ctx.
func (c *Ctx) Accesses() int64 { return c.accesses }

// Finished reports whether the workload has completed.
func (c *Ctx) Finished() bool { return c.finished }

// Engine schedules the cores of one socket.
type Engine struct {
	hier *mem.Hierarchy
	ctxs []*Ctx
	pq   []*Ctx // active cores: a hand-rolled min-heap over (clock, core id)

	// Telemetry publication baselines (metrics.go): the totals already
	// folded into the process-wide registry at the last Run boundary.
	lastAccesses int64
	lastIssued   int64
}

// scanCutoff is the active-core count at or below which the scheduler uses
// a linear argmin scan instead of heap maintenance: for the handful of
// cores a socket hosts, a branch-predictable scan over a tiny slice beats
// sift bookkeeping. Pop order is identical either way because the
// (clock, core id) order is total, so the minimum is always unique.
const scanCutoff = 4

// New creates an engine for a socket hierarchy with the given per-core MSHR
// limit.
func New(h *mem.Hierarchy, mshrs int) *Engine {
	if mshrs <= 0 {
		mshrs = 1
	}
	e := &Engine{hier: h}
	e.ctxs = make([]*Ctx, h.Cores())
	for i := range e.ctxs {
		e.ctxs[i] = &Ctx{coreID: i, hier: h, mshrs: mshrs,
			outstanding: make([]units.Cycles, 0, mshrs)}
	}
	return e
}

// Place assigns a workload to a core. seed feeds the workload's RNG stream.
func (e *Engine) Place(core int, w Workload, seed uint64) {
	e.place(core, w, seed, false)
}

// PlaceDaemon assigns an interference workload that runs forever; it never
// counts toward completion conditions.
func (e *Engine) PlaceDaemon(core int, w Workload, seed uint64) {
	e.place(core, w, seed, true)
}

func (e *Engine) place(core int, w Workload, seed uint64, daemon bool) {
	if core < 0 || core >= len(e.ctxs) {
		panic(fmt.Sprintf("engine: core %d out of range", core))
	}
	ctx := e.ctxs[core]
	if ctx.wl != nil {
		panic(fmt.Sprintf("engine: core %d already occupied by %s", core, ctx.wl.Name()))
	}
	ctx.wl = w
	ctx.rng = xrand.New(seed)
	ctx.daemon = daemon
}

// Ctx returns the context of a core (nil workload contexts are still valid
// for clock inspection).
func (e *Engine) Ctx(core int) *Ctx { return e.ctxs[core] }

// Hierarchy returns the socket memory system.
func (e *Engine) Hierarchy() *mem.Hierarchy { return e.hier }

// ctxLess orders contexts by (clock, core id) — a strict total order, since
// core ids are unique.
func ctxLess(a, b *Ctx) bool {
	if a.now != b.now {
		return a.now < b.now
	}
	return a.coreID < b.coreID
}

// rebuild refreshes the scheduling queue from non-finished, occupied cores.
func (e *Engine) rebuild() {
	e.pq = e.pq[:0]
	for _, c := range e.ctxs {
		if c.wl != nil && !c.finished {
			e.pq = append(e.pq, c)
		}
	}
	if len(e.pq) > scanCutoff {
		for i := len(e.pq)/2 - 1; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// siftDown restores the heap property below node i.
func (e *Engine) siftDown(i int) {
	pq := e.pq
	n := len(pq)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && ctxLess(pq[r], pq[l]) {
			least = r
		}
		if !ctxLess(pq[least], pq[i]) {
			return
		}
		pq[i], pq[least] = pq[least], pq[i]
		i = least
	}
}

// next returns the index and context of the earliest active core: the heap
// root, or a linear argmin once few cores remain (the heap property is not
// needed nor maintained at or below the cutoff).
func (e *Engine) next() (int, *Ctx) {
	pq := e.pq
	if len(pq) > scanCutoff {
		return 0, pq[0]
	}
	mi := 0
	for i := 1; i < len(pq); i++ {
		if ctxLess(pq[i], pq[mi]) {
			mi = i
		}
	}
	return mi, pq[mi]
}

// stepped re-establishes scheduling order after the context at index i
// advanced its clock.
func (e *Engine) stepped(i int) {
	if len(e.pq) > scanCutoff {
		e.siftDown(i)
	}
}

// remove drops the context at index i from the queue.
func (e *Engine) remove(i int) {
	pq := e.pq
	last := len(pq) - 1
	pq[i] = pq[last]
	pq[last] = nil
	e.pq = pq[:last]
	if len(e.pq) > scanCutoff {
		e.siftDown(i)
	}
}

// RunUntil advances all occupied cores until every core's clock reaches t
// (or its workload finishes). It is used for warmup phases. Counter tallies
// flush at every step end, so PerCore is exact on return.
func (e *Engine) RunUntil(t units.Cycles) {
	defer e.publishTelemetry()
	e.rebuild()
	for len(e.pq) > 0 {
		i, c := e.next()
		if c.now >= t {
			return // the earliest core has reached the horizon, so all have
		}
		before := c.now
		if !c.wl.Step(c) {
			c.finished = true
			c.flushTally()
			e.remove(i)
			continue
		}
		c.flushTally()
		if c.now == before {
			panic(fmt.Sprintf("engine: workload %s made no progress on core %d",
				c.wl.Name(), c.coreID))
		}
		e.stepped(i)
	}
}

// Run advances cores in global time order until stop returns true (checked
// after every step) or until every non-daemon workload has finished.
// Daemons keep running (generating interference) as long as any non-daemon
// is active.
func (e *Engine) Run(stop func() bool) {
	defer e.publishTelemetry()
	e.rebuild()
	workers := 0
	for _, c := range e.pq {
		if !c.daemon {
			workers++
		}
	}
	if workers == 0 {
		return
	}
	for len(e.pq) > 0 {
		i, c := e.next()
		before := c.now
		done := !c.wl.Step(c)
		c.flushTally() // before stop(): predicates may read PerCore
		if done {
			c.finished = true
			e.remove(i)
			if !c.daemon {
				workers--
				if workers == 0 {
					return
				}
			}
		} else {
			if c.now == before {
				panic(fmt.Sprintf("engine: workload %s made no progress on core %d",
					c.wl.Name(), c.coreID))
			}
			e.stepped(i)
		}
		if stop != nil && stop() {
			return
		}
	}
}

// RunToCompletion advances until every non-daemon workload has finished.
func (e *Engine) RunToCompletion() { e.Run(nil) }

// Rearm clears a finished workload's completion flag so the next Run
// schedules it again. Bulk-synchronous cluster phases use this to run one
// compute phase per iteration on a persistent socket (cache state and
// clocks survive across phases).
func (e *Engine) Rearm(core int) {
	e.ctxs[core].finished = false
}

// SetClock advances a core's local clock to t, modelling time the workload
// spent blocked outside the socket (e.g. waiting for messages). It panics
// if t would move the clock backwards.
func (e *Engine) SetClock(core int, t units.Cycles) {
	c := e.ctxs[core]
	if t < c.now {
		panic(fmt.Sprintf("engine: SetClock(%d) would rewind %d -> %d", core, c.now, t))
	}
	c.now = t
}

// MaxClock returns the largest core-local clock, i.e. the simulated elapsed
// time of the socket.
func (e *Engine) MaxClock() units.Cycles {
	var m units.Cycles
	for _, c := range e.ctxs {
		if c.now > m {
			m = c.now
		}
	}
	return m
}
