package engine

import (
	"testing"

	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// countWork steps a fixed number of times, one compute cycle each.
type countWork struct {
	steps int
	cost  units.Cycles
}

func (w *countWork) Name() string { return "count" }
func (w *countWork) Step(ctx *Ctx) bool {
	if w.steps <= 0 {
		return false
	}
	w.steps--
	ctx.Compute(w.cost)
	ctx.WorkUnit(1)
	return w.steps > 0
}

// loadWork streams over a buffer forever.
type loadWork struct {
	base mem.Addr
	span int64
	pos  int64
}

func (w *loadWork) Name() string { return "loader" }
func (w *loadWork) Step(ctx *Ctx) bool {
	ctx.Load(w.base + mem.Addr(w.pos%w.span*64))
	w.pos++
	ctx.WorkUnit(1)
	return true
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	spec := machine.Scaled(8)
	return New(spec.NewSocket(1), spec.MSHRs)
}

func TestRunToCompletion(t *testing.T) {
	e := newEngine(t)
	w := &countWork{steps: 100, cost: 7}
	e.Place(0, w, 1)
	e.RunToCompletion()
	ctx := e.Ctx(0)
	if ctx.Work() != 100 {
		t.Fatalf("work = %d, want 100", ctx.Work())
	}
	if ctx.Now() != 700 {
		t.Fatalf("clock = %d, want 700", ctx.Now())
	}
	if !ctx.Finished() {
		t.Fatal("workload not marked finished")
	}
}

func TestGlobalTimeOrdering(t *testing.T) {
	// Two cores with different step costs: the cheap one must step more
	// often, keeping clocks within one step of each other.
	e := newEngine(t)
	e.Place(0, &countWork{steps: 1000, cost: 1}, 1)
	e.Place(1, &countWork{steps: 10, cost: 100}, 2)
	e.RunToCompletion()
	c0, c1 := e.Ctx(0), e.Ctx(1)
	if c0.Now() != 1000 || c1.Now() != 1000 {
		t.Fatalf("clocks = %d/%d, want 1000/1000", c0.Now(), c1.Now())
	}
}

func TestDaemonRunsWhileWorkerActive(t *testing.T) {
	e := newEngine(t)
	e.Place(0, &countWork{steps: 500, cost: 10}, 1)
	d := &loadWork{base: 1 << 24, span: 8}
	e.PlaceDaemon(1, d, 2)
	e.RunToCompletion()
	if d.pos == 0 {
		t.Fatal("daemon never ran")
	}
	// The daemon must not run meaningfully past the last worker's clock.
	if e.Ctx(1).Now() > e.Ctx(0).Now()+1000 {
		t.Fatalf("daemon ran far beyond worker: %d vs %d", e.Ctx(1).Now(), e.Ctx(0).Now())
	}
}

func TestDaemonOnlyRunReturnsImmediately(t *testing.T) {
	e := newEngine(t)
	e.PlaceDaemon(0, &loadWork{base: 0, span: 8}, 1)
	e.RunToCompletion() // must not hang
	if e.Ctx(0).Now() != 0 {
		t.Fatal("daemon advanced with no workers")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := newEngine(t)
	e.PlaceDaemon(0, &loadWork{base: 0, span: 1024}, 1)
	e.PlaceDaemon(1, &loadWork{base: 1 << 24, span: 1024}, 2)
	e.RunUntil(50_000)
	if e.Ctx(0).Now() < 50_000 || e.Ctx(1).Now() < 50_000 {
		t.Fatalf("cores below horizon: %d %d", e.Ctx(0).Now(), e.Ctx(1).Now())
	}
	// Neither core should overshoot by more than one step's latency.
	if e.Ctx(0).Now() > 51_000 {
		t.Fatalf("core 0 overshot horizon: %d", e.Ctx(0).Now())
	}
}

func TestRunStopPredicate(t *testing.T) {
	e := newEngine(t)
	e.Place(0, &countWork{steps: 1 << 30, cost: 1}, 1)
	ctx := e.Ctx(0)
	e.Run(func() bool { return ctx.Work() >= 1234 })
	if ctx.Work() != 1234 {
		t.Fatalf("work = %d, want exactly 1234", ctx.Work())
	}
}

func TestPlacePanics(t *testing.T) {
	e := newEngine(t)
	e.Place(0, &countWork{steps: 1, cost: 1}, 1)
	for _, f := range []func(){
		func() { e.Place(0, &countWork{}, 1) }, // occupied
		func() { e.Place(-1, &countWork{}, 1) },
		func() { e.Place(99, &countWork{}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestComputeNegativePanics(t *testing.T) {
	e := newEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative compute should panic")
		}
	}()
	e.Ctx(0).Compute(-1)
}

func TestLoadOverlappedFasterThanSerial(t *testing.T) {
	spec := machine.Scaled(8)
	// Serial: one load at a time.
	serial := New(spec.NewSocket(1), spec.MSHRs)
	ser := serial.Ctx(0)
	var addrs []mem.Addr
	for i := 0; i < 64; i++ {
		addrs = append(addrs, mem.Addr(1<<24+i*4096)) // distinct sets, all cold
	}
	for _, a := range addrs {
		ser.Load(a)
	}
	// Overlapped: same addresses through the MSHR window.
	over := New(spec.NewSocket(1), spec.MSHRs)
	ov := over.Ctx(0)
	ov.LoadOverlapped(addrs, 4)
	if ov.Now() >= ser.Now() {
		t.Fatalf("overlap no faster: %d vs serial %d", ov.Now(), ser.Now())
	}
	if ov.Accesses() != 64 {
		t.Fatalf("accesses = %d, want 64", ov.Accesses())
	}
	// Overlap is still bounded below by bus occupancy of 64 lines.
	minTime := units.Cycles(64 * 10)
	if ov.Now() < minTime {
		t.Fatalf("overlapped time %d below bus occupancy bound %d", ov.Now(), minTime)
	}
}

func TestLoadOverlappedRespectsMSHRLimit(t *testing.T) {
	spec := machine.Scaled(8)
	// With MSHRs=1 overlapped loads degenerate to (almost) serial.
	e1 := New(spec.NewSocket(1), 1)
	eN := New(spec.NewSocket(1), 8)
	var addrs []mem.Addr
	for i := 0; i < 32; i++ {
		addrs = append(addrs, mem.Addr(1<<24+i*4096))
	}
	e1.Ctx(0).LoadOverlapped(addrs, 1)
	eN.Ctx(0).LoadOverlapped(addrs, 1)
	if e1.Ctx(0).Now() <= eN.Ctx(0).Now() {
		t.Fatalf("MSHR=1 (%d cycles) should be slower than MSHR=8 (%d)",
			e1.Ctx(0).Now(), eN.Ctx(0).Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (units.Cycles, int64) {
		spec := machine.Scaled(8)
		e := New(spec.NewSocket(7), spec.MSHRs)
		e.Place(0, &countWork{steps: 2000, cost: 3}, 11)
		e.PlaceDaemon(1, &loadWork{base: 0, span: 4096}, 12)
		e.PlaceDaemon(2, &loadWork{base: 1 << 25, span: 4096}, 13)
		e.RunToCompletion()
		return e.MaxClock(), e.Hierarchy().Bus.Stats.Bytes
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, b1, t2, b2)
	}
}

// batchLoad is a bandwidth-hungry daemon: it issues overlapped batches of
// cold loads, the same mechanism BWThr uses to extract bandwidth.
type batchLoad struct {
	base  mem.Addr
	span  int64 // lines
	pos   int64
	addrs []mem.Addr
}

func (w *batchLoad) Name() string { return "batchload" }
func (w *batchLoad) Step(ctx *Ctx) bool {
	if w.addrs == nil {
		w.addrs = make([]mem.Addr, 16)
	}
	for i := range w.addrs {
		w.addrs[i] = w.base + mem.Addr(w.pos%w.span*64)
		w.pos += 37 // prime stride in lines defeats page locality
	}
	ctx.LoadOverlapped(w.addrs, 2)
	ctx.WorkUnit(1)
	return true
}

func TestInterferenceSlowsSharedSocket(t *testing.T) {
	// A loader walking a buffer larger than the L3 must slow down when
	// bandwidth-hungry daemons share the socket: the whole point of the
	// methodology.
	spec := machine.Scaled(8)
	elapsed := func(daemons int) units.Cycles {
		e := New(spec.NewSocket(3), spec.MSHRs)
		app := &loadWork{base: 0, span: spec.L3.Size / 64 * 4} // 4x L3 lines
		e.Place(0, app, 1)
		for d := 0; d < daemons; d++ {
			e.PlaceDaemon(1+d, &batchLoad{base: mem.Addr(1 << (30 + d)), span: spec.L3.Size / 64 * 4}, uint64(50+d))
		}
		ctx := e.Ctx(0)
		e.Run(func() bool { return ctx.Work() >= 20_000 })
		return ctx.Now()
	}
	alone := elapsed(0)
	crowded := elapsed(3)
	if float64(crowded) < float64(alone)*1.10 {
		t.Fatalf("interference too weak: alone=%d crowded=%d", alone, crowded)
	}
}

// stuckWork neither advances the clock nor finishes: the engine must fail
// fast instead of spinning forever.
type stuckWork struct{}

func (stuckWork) Name() string       { return "stuck" }
func (stuckWork) Step(ctx *Ctx) bool { return true }

func TestNoProgressPanics(t *testing.T) {
	e := newEngine(t)
	e.Place(0, stuckWork{}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-advancing workload")
		}
	}()
	e.RunToCompletion()
}

func TestSetClockForwardOnly(t *testing.T) {
	e := newEngine(t)
	e.SetClock(0, 500)
	if e.Ctx(0).Now() != 500 {
		t.Fatalf("clock = %d", e.Ctx(0).Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rewinding clock")
		}
	}()
	e.SetClock(0, 100)
}

func TestRearmAllowsSecondPhase(t *testing.T) {
	e := newEngine(t)
	w := &countWork{steps: 10, cost: 5}
	e.Place(0, w, 1)
	e.RunToCompletion()
	if e.Ctx(0).Work() != 10 {
		t.Fatalf("phase 1 work = %d", e.Ctx(0).Work())
	}
	w.steps = 10
	e.Rearm(0)
	e.RunToCompletion()
	if e.Ctx(0).Work() != 20 {
		t.Fatalf("phase 2 work = %d, want 20", e.Ctx(0).Work())
	}
}
