package mcb

import (
	"testing"

	"activemem/internal/cluster"
	"activemem/internal/core"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(20*units.MB, 24, 20000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Ranks = 0 },
		func(p *Params) { p.TotalParticles = 0 },
		func(p *Params) { p.MeshBytes = 0 },
		func(p *Params) { p.BatchParticles = 0 },
		func(p *Params) { p.SegmentsPerParticle = 0 },
	}
	for i, m := range mutations {
		p := DefaultParams(20*units.MB, 24, 20000)
		m(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDefaultParamsScaleAndFootprint(t *testing.T) {
	full := DefaultParams(20*units.MB, 24, 20000)
	if full.MeshBytes != 11*units.MB/2 {
		t.Fatalf("full-scale mesh = %d, want 5.5MB", full.MeshBytes)
	}
	eighth := DefaultParams(20*units.MB/8, 24, 20000)
	if eighth.MeshBytes != 11*units.MB/16 {
		t.Fatalf("1/8-scale mesh = %d", eighth.MeshBytes)
	}
	// Paper (§IV): each MCB process uses 4-7MB of L3 at full scale; the
	// proxy's footprint must fall in that band for the studied populations.
	app := New(full)
	rk := app.NewRank(0, mem.NewAlloc(64), 1)
	fp := rk.FootprintBytes()
	if fp < 4*units.MB || fp > 7*units.MB {
		t.Fatalf("per-rank footprint = %s, want 4-7MB", units.FormatBytes(fp))
	}
}

func TestMigrationLinearThenCapped(t *testing.T) {
	// Communication grows linearly with the population until the domain
	// boundary saturates (~90k particles at full scale), then stays flat —
	// the mechanism behind Fig. 9 bottom-right's unimodal sensitivity.
	mk := func(particles int) int64 {
		app := New(DefaultParams(20*units.MB, 24, particles))
		rk := app.NewRank(3, mem.NewAlloc(64), 1)
		msgs := rk.Messages(0)
		if len(msgs) != 2 {
			t.Fatalf("ring rank should have 2 neighbours, got %d", len(msgs))
		}
		return msgs[0].Bytes
	}
	small, mid := mk(20000), mk(40000)
	if ratio := float64(mid) / float64(small); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("below the cap migration should be linear, ratio = %.2f", ratio)
	}
	big, bigger := mk(160000), mk(260000)
	if big != bigger {
		t.Fatalf("above the cap migration should saturate: %d vs %d", big, bigger)
	}
	if big <= mid {
		t.Fatal("cap should exceed the linear region's values")
	}
}

func TestRingNeighbours(t *testing.T) {
	app := New(DefaultParams(20*units.MB, 8, 20000))
	rk := app.NewRank(0, mem.NewAlloc(64), 1)
	msgs := rk.Messages(0)
	if msgs[0].To != 1 || msgs[1].To != 7 {
		t.Fatalf("rank 0 neighbours = %d,%d, want 1,7", msgs[0].To, msgs[1].To)
	}
	if rk.AllreduceBytes() != 8 {
		t.Fatal("termination allreduce should be 8 bytes")
	}
}

func TestMCBRunsOnCluster(t *testing.T) {
	spec := machine.Scaled(8)
	app := New(DefaultParams(spec.L3.Size, 8, 2400))
	res, err := cluster.Run(cluster.RunConfig{
		Spec:           spec,
		App:            app,
		RanksPerSocket: 1,
		Iterations:     4,
		Warmup:         1,
		Homogeneous:    true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.RankGBs <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// The paper's bottom-left Fig. 9 shape: little degradation for few CSThrs,
// significant (~20-25%) once interference leaves less capacity than the
// tally mesh needs.
func TestMCBStorageSensitivityShape(t *testing.T) {
	spec := machine.Scaled(8)
	elapsed := func(k int) float64 {
		app := New(DefaultParams(spec.L3.Size, 8, 2400))
		res, err := cluster.Run(cluster.RunConfig{
			Spec:           spec,
			App:            app,
			RanksPerSocket: 1,
			Interference:   cluster.Interference{Kind: core.Storage, Threads: k},
			Iterations:     12,
			Warmup:         6,
			Homogeneous:    true,
			Seed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	base := elapsed(0)
	mild := elapsed(1)
	heavy := elapsed(5)
	if mild/base > 1.12 {
		t.Fatalf("1 CSThr already degrades MCB by %.0f%%", (mild/base-1)*100)
	}
	if heavy/base < 1.08 {
		t.Fatalf("5 CSThrs degrade MCB by only %.0f%%", (heavy/base-1)*100)
	}
	if heavy <= mild {
		t.Fatalf("degradation not increasing: %v vs %v", mild, heavy)
	}
}
