// Package mcb is a proxy for the Monte Carlo Benchmark the paper studies
// (§IV): a particle-transport code that simulates neutron flow through fuel
// assemblies. Each rank owns a slice of the particle population and a tally
// mesh; a cycle tracks every particle through a few random-walk segments
// (random tally-mesh accesses — the cache-hungry part), streams the
// particle vault, migrates boundary particles to neighbouring ranks, and
// joins a termination allreduce.
//
// The proxy's footprint reproduces the paper's measured behaviour: the
// tally mesh dominates per-process L3 use (4–7 MB on the full-scale
// machine) independent of population, while communication grows with the
// population until the domain boundary saturates — which is why the paper
// sees bandwidth sensitivity peak at mid particle counts and fall beyond.
package mcb

import (
	"fmt"

	"activemem/internal/cluster"
	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// Params configures the proxy. Sizes are for the machine scale in use; use
// DefaultParams to derive them from an L3 size.
type Params struct {
	Ranks          int
	TotalParticles int
	// MeshBytes is the per-rank tally mesh (the paper-scale default is
	// 5.5 MB, between the 4 and 7 MB bounds the paper measures).
	MeshBytes int64
	// ParticleBytes is the record size streamed per particle per cycle.
	ParticleBytes int64
	// SegmentsPerParticle is how many random-walk segments a cycle tracks.
	SegmentsPerParticle int
	// TalliesPerSegment is how many random mesh accesses one segment makes.
	TalliesPerSegment int
	// ComputePerSegment is the arithmetic per segment, in cycles.
	ComputePerSegment int
	// MigrationFraction is the share of local particles migrating to each
	// pair of ring neighbours per cycle.
	MigrationFraction float64
	// MigrationBytesPerParticle is the wire size of one migrated particle
	// (state plus buffered tally contributions; larger than the vault
	// record).
	MigrationBytesPerParticle int64
	// MigrationCapBytes bounds the per-neighbour message: the domain
	// boundary can only hold so many particles, so communication grows
	// linearly with the population (the paper: "communication and thus
	// miss rate grows with increasing workloads") until it saturates near
	// the paper's 90k particles, beyond which tracking compute grows
	// faster than communication — the unimodal bandwidth sensitivity of
	// Fig. 9 bottom-right.
	MigrationCapBytes int64
	// BatchParticles is how many particles one engine step tracks.
	BatchParticles int
}

// DefaultParams returns paper-study parameters scaled to a machine whose
// shared cache holds l3Bytes (5.5 MB mesh at the full 20 MB).
func DefaultParams(l3Bytes int64, ranks, totalParticles int) Params {
	scale := (20 * units.MB) / l3Bytes
	if scale < 1 {
		scale = 1
	}
	return Params{
		Ranks:               ranks,
		TotalParticles:      totalParticles,
		MeshBytes:           11 * units.MB / 2 / scale,
		ParticleBytes:       64,
		SegmentsPerParticle: 2,
		TalliesPerSegment:   3,
		// Cross sections, RNG and geometry dominate a segment; tally
		// misses must stay a minor share — the paper observes MCB losing
		// "less than 30%" even with almost no L3 left.
		ComputePerSegment:         1200,
		MigrationFraction:         0.35,
		MigrationBytesPerParticle: 512,
		MigrationCapBytes:         336 * units.KB / scale,
		BatchParticles:            8,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Ranks <= 0 || p.TotalParticles <= 0 {
		return fmt.Errorf("mcb: non-positive population")
	}
	if p.MeshBytes <= 0 || p.ParticleBytes <= 0 || p.BatchParticles <= 0 {
		return fmt.Errorf("mcb: non-positive geometry")
	}
	if p.SegmentsPerParticle <= 0 || p.TalliesPerSegment < 0 || p.ComputePerSegment < 0 {
		return fmt.Errorf("mcb: bad tracking parameters")
	}
	return nil
}

// App implements cluster.App.
type App struct {
	p Params
}

// New returns the proxy application; it panics on invalid parameters.
func New(p Params) *App {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &App{p: p}
}

// Name implements cluster.App.
func (a *App) Name() string { return "MCB" }

// Ranks implements cluster.App.
func (a *App) Ranks() int { return a.p.Ranks }

// LocalParticles returns the particle count owned by each rank.
func (a *App) LocalParticles() int { return a.p.TotalParticles / a.p.Ranks }

// NewRank implements cluster.App.
func (a *App) NewRank(r int, alloc *mem.Alloc, seed uint64) cluster.Rank {
	local := a.LocalParticles()
	vaultBytes := int64(local) * a.p.ParticleBytes
	if vaultBytes <= 0 {
		vaultBytes = a.p.ParticleBytes
	}
	return &rank{
		app:   a,
		id:    r,
		mesh:  alloc.Alloc(a.p.MeshBytes),
		vault: alloc.Alloc(vaultBytes),
		local: local,
	}
}

// rank is one MCB process.
type rank struct {
	app   *App
	id    int
	mesh  mem.Addr
	vault mem.Addr
	local int

	// phase progress
	tracked int           // particles tracked this phase
	ops     []mem.BatchOp // scratch for the batched access path
}

// Name implements engine.Workload.
func (rk *rank) Name() string { return fmt.Sprintf("mcb[%d]", rk.id) }

// BeginPhase implements cluster.Rank.
func (rk *rank) BeginPhase(int) { rk.tracked = 0 }

// FootprintBytes implements cluster.Rank.
func (rk *rank) FootprintBytes() int64 {
	return rk.app.p.MeshBytes + int64(rk.local)*rk.app.p.ParticleBytes
}

// AllreduceBytes implements cluster.Rank: the termination count.
func (rk *rank) AllreduceBytes() int64 { return 8 }

// Messages implements cluster.Rank: migrate boundary particles to the ring
// neighbours; the exchange grows with the population until the boundary
// saturates (MigrationCapBytes).
func (rk *rank) Messages(int) []cluster.Message {
	p := rk.app.p
	wire := p.MigrationBytesPerParticle
	if wire <= 0 {
		wire = p.ParticleBytes
	}
	bytes := int64(p.MigrationFraction * float64(rk.local) * float64(wire) / 2)
	if p.MigrationCapBytes > 0 && bytes > p.MigrationCapBytes {
		bytes = p.MigrationCapBytes
	}
	if bytes <= 0 {
		return nil
	}
	n := p.Ranks
	return []cluster.Message{
		{To: (rk.id + 1) % n, Bytes: bytes},
		{To: (rk.id - 1 + n) % n, Bytes: bytes},
	}
}

// Step implements engine.Workload: track a batch of particles. The whole
// batch is encoded as one access program — vault streaming, tally
// read-modify-writes and per-segment compute — and issued through the
// engine's batched fast path; the tally indices are drawn from the same
// stream in the same order as a per-access loop, so the access sequence is
// bit-identical.
func (rk *rank) Step(ctx *engine.Ctx) bool {
	p := rk.app.p
	meshElems := p.MeshBytes / 8
	batch := p.BatchParticles
	if rem := rk.local - rk.tracked; batch > rem {
		batch = rem
	}
	r := ctx.Rand()
	ops := rk.ops[:0]
	for i := 0; i < batch; i++ {
		// Stream the particle record (load position, store updated state).
		off := rk.vault + mem.Addr(int64(rk.tracked+i)*p.ParticleBytes)
		ops = append(ops, mem.BatchOp{Addr: off}, mem.BatchOp{Addr: off, Write: true})
		for s := 0; s < p.SegmentsPerParticle; s++ {
			for t := 0; t < p.TalliesPerSegment; t++ {
				idx := int64(r.Intn(int(meshElems)))
				addr := rk.mesh + mem.Addr(idx*8)
				ops = append(ops, mem.BatchOp{Addr: addr},
					mem.BatchOp{Addr: addr, Write: true}) // tally increment
			}
			// The segment's arithmetic follows its last access.
			ops[len(ops)-1].Compute += units.Cycles(p.ComputePerSegment)
		}
	}
	rk.ops = ops
	ctx.Exec(ops)
	rk.tracked += batch
	ctx.WorkUnit(int64(batch))
	return rk.tracked < rk.local
}
