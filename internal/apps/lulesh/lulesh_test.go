package lulesh

import (
	"testing"

	"activemem/internal/cluster"
	"activemem/internal/core"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(20*units.MB, 4, 22)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.RanksPerDim = 0 },
		func(p *Params) { p.Edge = 0 },
		func(p *Params) { p.Arrays = 0 },
		func(p *Params) { p.SweepArrays = p.Arrays + 1 },
		func(p *Params) { p.HaloFields = 0 },
		func(p *Params) { p.BatchElems = 0 },
	}
	for i, m := range mutations {
		p := DefaultParams(20*units.MB, 4, 22)
		m(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// The paper's own footprint arithmetic: 22³ ⇒ ≈3.4MB/rank, 36³ ⇒ ≈15MB.
func TestFootprintMatchesPaperArithmetic(t *testing.T) {
	p22 := DefaultParams(20*units.MB, 4, 22)
	fp22 := p22.FootprintBytes()
	if fp22 < 3*units.MB || fp22 > 4*units.MB {
		t.Fatalf("22³ footprint = %s, want ~3.4MB", units.FormatBytes(fp22))
	}
	p36 := DefaultParams(20*units.MB, 4, 36)
	fp36 := p36.FootprintBytes()
	if fp36 < 14*units.MB || fp36 > 16*units.MB {
		t.Fatalf("36³ footprint = %s, want ~15MB", units.FormatBytes(fp36))
	}
}

func TestDefaultParamsScaleEdge(t *testing.T) {
	full := DefaultParams(20*units.MB, 4, 22)
	if full.Edge != 22 {
		t.Fatalf("full-scale edge = %d", full.Edge)
	}
	eighth := DefaultParams(20*units.MB/8, 4, 22)
	if eighth.Edge != 11 {
		t.Fatalf("1/8-scale edge = %d, want 11", eighth.Edge)
	}
	// Footprint-to-L3 ratio approximately preserved.
	rFull := float64(full.FootprintBytes()) / float64(20*units.MB)
	rEighth := float64(eighth.FootprintBytes()) / float64(20*units.MB/8)
	if rEighth < rFull*0.7 || rEighth > rFull*1.3 {
		t.Fatalf("ratio drift: full %.3f vs eighth %.3f", rFull, rEighth)
	}
}

func TestNeighbourTopology(t *testing.T) {
	app := New(DefaultParams(20*units.MB, 4, 22))
	if app.Ranks() != 64 {
		t.Fatalf("4³ grid = %d ranks", app.Ranks())
	}
	alloc := mem.NewAlloc(64)
	corner := app.NewRank(0, alloc, 1)
	if got := len(corner.Messages(0)); got != 3 {
		t.Fatalf("corner rank has %d neighbours, want 3", got)
	}
	// Rank at (1,1,1) is interior.
	interior := app.NewRank(1+4+16, alloc, 1)
	if got := len(interior.Messages(0)); got != 6 {
		t.Fatalf("interior rank has %d neighbours, want 6", got)
	}
	// Halo face bytes: Edge² × 8 × HaloFields.
	want := int64(22*22) * 8 * 3
	if got := interior.Messages(0)[0].Bytes; got != want {
		t.Fatalf("face bytes = %d, want %d", got, want)
	}
}

func TestLuleshRunsOnCluster(t *testing.T) {
	spec := machine.Scaled(8)
	app := New(Params{RanksPerDim: 2, Edge: 11, Arrays: 40, SweepArrays: 13,
		ComputePerElem: 4, HaloFields: 3, BatchElems: 64})
	res, err := cluster.Run(cluster.RunConfig{
		Spec:           spec,
		App:            app,
		RanksPerSocket: 1,
		Iterations:     4,
		Warmup:         1,
		Homogeneous:    true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// A 426KB working set is fully L3-resident at this scale, so near-zero
	// steady-state bus traffic is the physically correct outcome.
	if res.RankGBs > 1.0 {
		t.Fatalf("cache-resident cube shows %v GB/s of traffic", res.RankGBs)
	}
}

// The paper's Fig. 11 bottom-left shape: small cubes tolerate storage
// interference (footprint ≪ L3), large cubes overflow and degrade.
func TestLuleshCapacitySensitivityGrowsWithCube(t *testing.T) {
	spec := machine.Scaled(8)
	slowdown := func(edge int) float64 {
		run := func(k int) float64 {
			app := New(Params{RanksPerDim: 2, Edge: edge, Arrays: 40, SweepArrays: 13,
				ComputePerElem: 4, HaloFields: 3, BatchElems: 64})
			res, err := cluster.Run(cluster.RunConfig{
				Spec:           spec,
				App:            app,
				RanksPerSocket: 1,
				Interference:   cluster.Interference{Kind: core.Storage, Threads: k},
				Iterations:     4,
				Warmup:         1,
				Homogeneous:    true,
				Seed:           1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Seconds
		}
		return run(5)/run(0) - 1
	}
	small := slowdown(8)  // 40×8³×8 = 160KB ≪ 2.5MB L3
	large := slowdown(16) // 40×16³×8 = 1.3MB, hurts once CSThrs pin 5×512KB
	if large <= small {
		t.Fatalf("capacity sensitivity not growing with cube: %v vs %v", small, large)
	}
	if large < 0.05 {
		t.Fatalf("large cube barely degrades: %v", large)
	}
}
