// Package lulesh is a proxy for the LULESH shock-hydrodynamics benchmark
// the paper studies (§IV): an explicit Lagrangian finite-difference code on
// an s×s×s per-rank domain. An iteration sweeps a few dozen field arrays
// (nodal coordinates, velocities, forces, element pressures, energies...)
// with stencil-style sequential passes, exchanges six face halos with
// neighbour ranks, and reduces the global timestep.
//
// Footprints reproduce the paper's arithmetic: roughly 40 arrays of s³
// 8-byte values per rank give ≈3.4 MB at s=22 and ≈15 MB at s=36 — exactly
// the range over which the paper observes LULESH transitioning from
// cache-resident to capacity-starved on the 20 MB L3.
package lulesh

import (
	"fmt"

	"activemem/internal/cluster"
	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// Params configures the proxy.
type Params struct {
	// RanksPerDim: the job runs RanksPerDim³ ranks in a 3-D grid (the
	// paper's 64-rank runs use 4).
	RanksPerDim int
	// Edge is s, the per-rank cube edge in elements.
	Edge int
	// Arrays is the number of s³-sized field arrays per rank (~40 in real
	// LULESH counting nodal and element fields).
	Arrays int
	// SweepArrays is how many arrays each of the three per-iteration
	// sweeps touches (Arrays/3 each leaves every array touched once).
	SweepArrays int
	// ComputePerElem is arithmetic cycles per element visit.
	ComputePerElem int
	// HaloFields is how many fields each face exchange carries.
	HaloFields int
	// BatchElems is how many elements one engine step processes.
	BatchElems int
}

// DefaultParams returns paper-study parameters for a cube edge, scaled to a
// machine whose shared cache holds l3Bytes. At full scale (20 MB) the edge
// is used as-is; on Scaled(f) machines the edge shrinks by f^⅓ so the
// footprint-to-L3 ratio is preserved (f=8 halves the edge).
func DefaultParams(l3Bytes int64, ranksPerDim, edge int) Params {
	scale := (20 * units.MB) / l3Bytes
	for s := scale; s >= 8; s /= 8 {
		edge = (edge + 1) / 2
	}
	return Params{
		RanksPerDim:    ranksPerDim,
		Edge:           edge,
		Arrays:         40,
		SweepArrays:    13,
		ComputePerElem: 1,
		HaloFields:     3,
		BatchElems:     64,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.RanksPerDim <= 0 || p.Edge <= 0 {
		return fmt.Errorf("lulesh: non-positive geometry")
	}
	if p.Arrays <= 0 || p.SweepArrays <= 0 || p.SweepArrays > p.Arrays {
		return fmt.Errorf("lulesh: bad array counts")
	}
	if p.ComputePerElem < 0 || p.HaloFields <= 0 || p.BatchElems <= 0 {
		return fmt.Errorf("lulesh: bad sweep parameters")
	}
	return nil
}

// FootprintBytes returns the per-rank data size: Arrays × Edge³ × 8.
func (p Params) FootprintBytes() int64 {
	e := int64(p.Edge)
	return int64(p.Arrays) * e * e * e * 8
}

// App implements cluster.App.
type App struct {
	p Params
}

// New returns the proxy application; it panics on invalid parameters.
func New(p Params) *App {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &App{p: p}
}

// Name implements cluster.App.
func (a *App) Name() string { return "Lulesh" }

// Ranks implements cluster.App.
func (a *App) Ranks() int { return a.p.RanksPerDim * a.p.RanksPerDim * a.p.RanksPerDim }

// Params returns the proxy parameters.
func (a *App) Params() Params { return a.p }

// NewRank implements cluster.App.
func (a *App) NewRank(r int, alloc *mem.Alloc, seed uint64) cluster.Rank {
	e := int64(a.p.Edge)
	elems := e * e * e
	bases := make([]mem.Addr, a.p.Arrays)
	for i := range bases {
		bases[i] = alloc.Alloc(elems * 8)
	}
	return &rank{app: a, id: r, bases: bases, elems: elems}
}

// rank is one Lulesh process.
type rank struct {
	app   *App
	id    int
	bases []mem.Addr
	elems int64

	// phase progress: three sweeps of SweepArrays arrays each
	sweep     int
	arrayIdx  int // index within the sweep's array group
	elemIdx   int64
	firstArr  int // rotating start so all arrays are touched across sweeps
	iterArmed int

	ops []mem.BatchOp // scratch for the batched access path
}

// Name implements engine.Workload.
func (rk *rank) Name() string { return fmt.Sprintf("lulesh[%d]", rk.id) }

// BeginPhase implements cluster.Rank.
func (rk *rank) BeginPhase(iter int) {
	rk.sweep, rk.arrayIdx, rk.elemIdx = 0, 0, 0
	rk.firstArr = 0
	rk.iterArmed = iter
}

// FootprintBytes implements cluster.Rank.
func (rk *rank) FootprintBytes() int64 { return rk.app.p.FootprintBytes() }

// AllreduceBytes implements cluster.Rank: the dt reduction.
func (rk *rank) AllreduceBytes() int64 { return 8 }

// coords returns the rank's position in the 3-D rank grid.
func (rk *rank) coords() (x, y, z int) {
	d := rk.app.p.RanksPerDim
	return rk.id % d, rk.id / d % d, rk.id / (d * d)
}

// Messages implements cluster.Rank: one halo face per existing neighbour.
func (rk *rank) Messages(int) []cluster.Message {
	p := rk.app.p
	d := p.RanksPerDim
	x, y, z := rk.coords()
	face := int64(p.Edge) * int64(p.Edge) * 8 * int64(p.HaloFields)
	var out []cluster.Message
	add := func(nx, ny, nz int) {
		if nx < 0 || nx >= d || ny < 0 || ny >= d || nz < 0 || nz >= d {
			return
		}
		out = append(out, cluster.Message{To: nx + ny*d + nz*d*d, Bytes: face})
	}
	add(x-1, y, z)
	add(x+1, y, z)
	add(x, y-1, z)
	add(x, y+1, z)
	add(x, y, z-1)
	add(x, y, z+1)
	return out
}

// Step implements engine.Workload: process a batch of elements of the
// current sweep's current array, with a neighbour access pattern that gives
// the sweeps stencil-like reuse.
func (rk *rank) Step(ctx *engine.Ctx) bool {
	p := rk.app.p
	arr := rk.bases[(rk.firstArr+rk.sweep*p.SweepArrays+rk.arrayIdx)%p.Arrays]
	// Pair each sweep array with a "result" array to write, as stencil
	// kernels do (read coordinates, write forces, ...).
	dst := rk.bases[(rk.firstArr+rk.sweep*p.SweepArrays+rk.arrayIdx+p.SweepArrays)%p.Arrays]

	n := int64(p.BatchElems)
	if rem := rk.elems - rk.elemIdx; n > rem {
		n = rem
	}
	e2 := int64(p.Edge) * int64(p.Edge)
	// Encode the element batch as one access program (loads, stencil
	// neighbour, store + compute per element) for the engine's batched
	// fast path; the sequence is identical to per-access calls.
	ops := rk.ops[:0]
	for i := int64(0); i < n; i++ {
		idx := rk.elemIdx + i
		ops = append(ops, mem.BatchOp{Addr: arr + mem.Addr(idx*8)})
		// Stencil neighbour in the slowest dimension: one plane back.
		if idx >= e2 {
			ops = append(ops, mem.BatchOp{Addr: arr + mem.Addr((idx-e2)*8)})
		}
		ops = append(ops, mem.BatchOp{Addr: dst + mem.Addr(idx*8), Write: true,
			Compute: units.Cycles(p.ComputePerElem)})
	}
	rk.ops = ops
	ctx.Exec(ops)
	ctx.WorkUnit(n)
	rk.elemIdx += n
	if rk.elemIdx >= rk.elems {
		rk.elemIdx = 0
		rk.arrayIdx++
		if rk.arrayIdx >= p.SweepArrays {
			rk.arrayIdx = 0
			rk.sweep++
		}
	}
	return rk.sweep < 3
}
