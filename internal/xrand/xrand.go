// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded through splitmix64. It is implemented
// locally (rather than using math/rand) so that experiment results are
// bit-reproducible across Go releases: every stochastic component of the
// simulator derives its stream from an explicit 64-bit seed.
package xrand

import "math"

// Rand is a deterministic xoshiro256++ generator. The zero value is not
// ready for use; construct one with New.
type Rand struct {
	s [4]uint64
	// cached second Box-Muller variate
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds produce uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.haveGauss = false
}

// Split returns a new generator whose stream is a deterministic function of
// r's current state and id. It is used to hand independent streams to
// workloads, ranks and sockets without sharing state.
func (r *Rand) Split(id uint64) *Rand {
	return New(r.Uint64() ^ (id+1)*0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, debiased.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1); it never returns exactly 0,
// which makes it safe as input to logarithms and inverse CDFs.
func (r *Rand) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller, with the second
// variate cached).
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	r.gauss = rad * math.Sin(theta)
	r.haveGauss = true
	return rad * math.Cos(theta)
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1) by inverse
// transform sampling.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
