package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	a := r.Split(0)
	b := r.Split(1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.NormFloat64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d want %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
