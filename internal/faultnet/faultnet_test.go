package faultnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// upstream answers every request 200 "ok-body".
func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "7")
		w.Write([]byte("ok-body"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), err
}

func TestScriptAppliesFaultsInOrder(t *testing.T) {
	p, err := New(upstream(t).URL, Script(
		Fault{Kind: Drop},
		Fault{Kind: Err5xx},
		Fault{Kind: TornBody},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// 1st: dropped connection — a transport error, no status.
	if _, _, err := get(t, p.URL()); err == nil {
		t.Fatal("dropped request did not error")
	}
	// 2nd: injected 503 without touching the upstream.
	if status, _, err := get(t, p.URL()); err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("Err5xx request = (%d, %v), want 503", status, err)
	}
	// 3rd: full headers, half the body, then a killed stream.
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr == nil {
		t.Fatalf("torn body read completed cleanly with %d bytes", len(body))
	}
	// 4th, past the script: passes through.
	if status, body, err := get(t, p.URL()); err != nil || status != 200 || body != "ok-body" {
		t.Fatalf("post-script request = (%d, %q, %v), want clean pass", status, body, err)
	}

	if p.Requests() != 4 {
		t.Fatalf("Requests = %d, want 4", p.Requests())
	}
	for k, want := range map[Kind]int64{Drop: 1, Err5xx: 1, TornBody: 1, Pass: 1} {
		if got := p.Injected(k); got != want {
			t.Errorf("Injected(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestCorruptBodyKeepsHeaders(t *testing.T) {
	p, err := New(upstream(t).URL, Always(Fault{Kind: CorruptBody}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	status, body, err := get(t, p.URL())
	if err != nil || status != 200 {
		t.Fatalf("corrupt-body request = (%d, %v)", status, err)
	}
	if body == "ok-body" || len(body) != len("ok-body") {
		t.Fatalf("body = %q, want same length, different bytes", body)
	}
}

func TestDelayHoldsThenServes(t *testing.T) {
	p, err := New(upstream(t).URL, Always(Fault{Kind: Delay, Wait: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	status, body, err := get(t, p.URL())
	if err != nil || status != 200 || body != "ok-body" {
		t.Fatalf("delayed request = (%d, %q, %v)", status, body, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request served in %v, want >= 50ms", elapsed)
	}
}

func TestSetDeciderHealsMidFlight(t *testing.T) {
	p, err := New(upstream(t).URL, Always(Fault{Kind: Err5xx}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if status, _, _ := get(t, p.URL()); status != http.StatusServiceUnavailable {
		t.Fatalf("pre-heal status = %d, want 503", status)
	}
	p.SetDecider(Healthy())
	if status, body, err := get(t, p.URL()); err != nil || status != 200 || body != "ok-body" {
		t.Fatalf("post-heal request = (%d, %q, %v)", status, body, err)
	}
}

func TestRampEventuallyAlwaysFaults(t *testing.T) {
	p, err := New(upstream(t).URL, Ramp(Fault{Kind: Err5xx}, time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The ramp window has fully elapsed: probability is 1.
	time.Sleep(time.Millisecond)
	for i := 0; i < 3; i++ {
		if status, _, _ := get(t, p.URL()); status != http.StatusServiceUnavailable {
			t.Fatalf("fully ramped request %d = %d, want 503", i, status)
		}
	}
}
