// Package faultnet is an in-process fault-injecting reverse proxy for
// exercising the remote memo tier's degradation paths. Tests park it
// between a remote.Client and a healthy labcached handler and schedule
// faults per request or ramped over time:
//
//	Drop        close the connection before answering (RST-ish)
//	Delay       hold the request for a duration, then serve it
//	Err5xx      answer 503 without consulting the upstream
//	TornBody    send full headers, half the body, then kill the stream
//	CorruptBody flip a payload byte, keep the original checksum header
//	Blackhole   accept and never answer (until the client gives up)
//
// The proxy is deliberately an http.Handler-level device, not a raw TCP
// shim: faults land after request parsing, so a test can target verbs or
// paths, and torn/corrupt bodies are crafted against the real upstream
// response. Deciders are swappable mid-flight (SetDecider), which is how
// tests heal a link, ramp an outage, or kill a server mid-campaign.
package faultnet

import (
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	Pass Kind = iota
	Drop
	Delay
	Err5xx
	TornBody
	CorruptBody
	Blackhole
	numKinds
)

var kindNames = [numKinds]string{
	"pass", "drop", "delay", "err5xx", "torn_body", "corrupt_body", "blackhole"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Fault is one scheduled misbehaviour. Wait parameterises Delay.
type Fault struct {
	Kind Kind
	Wait time.Duration
}

// Decider picks the fault for the n-th request (0-based, in arrival
// order). Deciders run concurrently from server goroutines and must be
// safe for concurrent use; the combinators below all are.
type Decider func(n int, r *http.Request) Fault

// Always applies the same fault to every request.
func Always(f Fault) Decider {
	return func(int, *http.Request) Fault { return f }
}

// Healthy passes every request through untouched.
func Healthy() Decider { return Always(Fault{Kind: Pass}) }

// Script replays faults in request order and passes everything after the
// script runs out.
func Script(faults ...Fault) Decider {
	return func(n int, _ *http.Request) Fault {
		if n < len(faults) {
			return faults[n]
		}
		return Fault{Kind: Pass}
	}
}

// After passes the first n requests and applies f to every later one —
// the "server falls over mid-campaign" schedule.
func After(n int, f Fault) Decider {
	return func(i int, _ *http.Request) Fault {
		if i < n {
			return Fault{Kind: Pass}
		}
		return f
	}
}

// Ramp applies f with probability ramping linearly from 0 at start to 1
// once `over` has elapsed — a degradation that worsens over wall time,
// the litmus-style timed chaos shape.
func Ramp(f Fault, over time.Duration) Decider {
	start := time.Now()
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(0xfa017, uint64(start.UnixNano())))
	return func(int, *http.Request) Fault {
		p := float64(time.Since(start)) / float64(over)
		mu.Lock()
		roll := rng.Float64()
		mu.Unlock()
		if roll < p {
			return f
		}
		return Fault{Kind: Pass}
	}
}

// Proxy is the running fault injector.
type Proxy struct {
	target *url.URL
	ln     net.Listener
	srv    *http.Server
	client *http.Client

	decider atomic.Pointer[Decider]
	n       atomic.Int64

	injected [numKinds]atomic.Int64
}

// New starts a proxy on 127.0.0.1:0 forwarding to target (a URL like
// "http://127.0.0.1:8344"). Close releases it.
func New(target string, d Decider) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: u, ln: ln, client: &http.Client{}}
	if d == nil {
		d = Healthy()
	}
	p.decider.Store(&d)
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go p.srv.Serve(ln)
	return p, nil
}

// URL returns the proxy's base URL for clients.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// SetDecider swaps the fault schedule, effective for the next request.
func (p *Proxy) SetDecider(d Decider) {
	if d == nil {
		d = Healthy()
	}
	p.decider.Store(&d)
}

// Injected reports how many requests received each fault kind.
func (p *Proxy) Injected(k Kind) int64 { return p.injected[k].Load() }

// Requests reports how many requests the proxy has accepted.
func (p *Proxy) Requests() int64 { return p.n.Load() }

// Close tears the proxy down, snapping open connections (including any
// blackholed ones).
func (p *Proxy) Close() {
	p.srv.Close()
	p.client.CloseIdleConnections()
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	n := int(p.n.Add(1) - 1)
	f := (*p.decider.Load())(n, r)
	p.injected[f.Kind].Add(1)
	switch f.Kind {
	case Drop:
		hijackClose(w)
		return
	case Blackhole:
		// Hold until the client abandons the request (deadline, Close),
		// then drop the connection without a byte of response.
		<-r.Context().Done()
		hijackClose(w)
		return
	case Err5xx:
		http.Error(w, "injected server error", http.StatusServiceUnavailable)
		return
	case Delay:
		select {
		case <-time.After(f.Wait):
		case <-r.Context().Done():
			hijackClose(w)
			return
		}
	}

	status, hdr, body, err := p.forward(r)
	if err != nil {
		http.Error(w, "upstream unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}

	switch f.Kind {
	case TornBody:
		// Promise the full body, deliver half, then abort the stream: the
		// client sees headers that verify and a read that dies mid-payload.
		copyHeader(w.Header(), hdr)
		w.WriteHeader(status)
		if len(body) > 0 {
			w.Write(body[:(len(body)+1)/2])
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
		}
		panic(http.ErrAbortHandler)
	case CorruptBody:
		// Flip one byte but keep every header — Content-Length still
		// matches, the checksum header is now a lie the client must catch.
		if len(body) > 0 {
			body[len(body)/2] ^= 0x40
		}
		copyHeader(w.Header(), hdr)
		w.WriteHeader(status)
		w.Write(body)
	default: // Pass, Delay
		copyHeader(w.Header(), hdr)
		w.WriteHeader(status)
		w.Write(body)
	}
}

// forward relays r to the upstream and returns the buffered response.
// Buffering the body is what lets torn/corrupt faults operate on real
// payloads; cell records are bounded (64 MiB) so this is safe.
func (p *Proxy) forward(r *http.Request) (int, http.Header, []byte, error) {
	u := *p.target
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header = r.Header.Clone()
	req.ContentLength = r.ContentLength
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// hijackClose severs the underlying connection without an HTTP answer.
func hijackClose(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	conn.Close()
}
