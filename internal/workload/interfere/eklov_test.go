package interfere

import (
	"testing"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

func TestPirateConfigValidation(t *testing.T) {
	if err := DefaultPirateConfig(20 * units.MB).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []PirateConfig{
		{BufBytes: 0, ElemSize: 4, BatchSize: 1},
		{BufBytes: 10, ElemSize: 4, BatchSize: 1},
		{BufBytes: 64, ElemSize: 4, BatchSize: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBanditConfigValidation(t *testing.T) {
	if err := DefaultBanditConfig(20 * units.MB).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []BanditConfig{
		{Chains: 0, BufBytes: 1 << 20, StrideLines: 17},
		{Chains: 4, BufBytes: 32, StrideLines: 17},
		{Chains: 4, BufBytes: 1 << 20, StrideLines: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// The Pirate holds its working set like CSThr does — the baselines agree on
// the basic mechanism...
func TestPirateHoldsWorkingSet(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	p := NewPirate(DefaultPirateConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, p, 2)
	e.RunUntil(10_000_000)
	lo, hi := p.BufferRange(64)
	held := h.L3.CountLinesIn(lo, hi)
	if held < int64(hi-lo)*9/10 {
		t.Fatalf("pirate holds %d/%d lines", held, int64(hi-lo))
	}
}

// ...but the Bandit consumes bandwidth with an unvalidated capacity side
// effect: its working set competes for the L3, which is exactly the paper's
// §V criticism (CSThr/BWThr validate orthogonality; the bandit does not).
func TestBanditStealsBandwidthWithCapacityBleed(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	bd := NewBandit(DefaultBanditConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, bd, 2)
	e.RunUntil(2_000_000)
	h.ResetStats()
	e.RunUntil(8_000_000)
	gbs := spec.Clock.BandwidthGBs(h.PerCore[0].BusBytes, 6_000_000)
	if gbs < 1.0 {
		t.Fatalf("bandit consumed only %.2f GB/s", gbs)
	}
	// The bandit's own footprint occupies a visible chunk of the L3.
	occ := h.L3.Occupancy()
	if occ < (spec.L3.Size/64)/10 {
		t.Fatalf("bandit occupies only %d L3 lines", occ)
	}
}

func TestBaselineNames(t *testing.T) {
	alloc := mem.NewAlloc(64)
	if NewPirate(DefaultPirateConfig(20*units.MB), alloc).Name() != "CachePirate" {
		t.Error("pirate name")
	}
	if NewBandit(DefaultBanditConfig(20*units.MB), alloc).Name() != "BandwidthBandit" {
		t.Error("bandit name")
	}
}
