package interfere

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// CSConfig parameterises a cache storage interference thread.
type CSConfig struct {
	// BufBytes is the pinned buffer size (the paper uses 4 MB per thread on
	// the 20 MB L3).
	BufBytes int64
	// ElemSize is the element width (4 for the paper's int).
	ElemSize int64
	// ComputeCycles models the arithmetic between the read and the write of
	// the buf[i]++ operation.
	ComputeCycles units.Cycles
	// BatchSize is how many read-modify-write operations one engine step
	// performs; it only affects simulation granularity, not behaviour.
	BatchSize int
}

// DefaultCSConfig returns the paper's CSThr parameters scaled to a machine
// whose shared cache holds l3Bytes: 4 MB on the full Xeon20MB (one fifth of
// the L3), scaled proportionally on smaller machines.
func DefaultCSConfig(l3Bytes int64) CSConfig {
	scale := (20 * units.MB) / l3Bytes
	if scale < 1 {
		scale = 1
	}
	return CSConfig{
		BufBytes:      4 * units.MB / scale,
		ElemSize:      4,
		ComputeCycles: 1,
		BatchSize:     16,
	}
}

// Validate checks the configuration.
func (c CSConfig) Validate() error {
	if c.BufBytes <= 0 || c.ElemSize <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("interfere: CSThr: non-positive geometry")
	}
	if c.BufBytes%c.ElemSize != 0 {
		return fmt.Errorf("interfere: CSThr: buffer not a whole number of elements")
	}
	if c.ComputeCycles < 0 {
		return fmt.Errorf("interfere: CSThr: negative compute")
	}
	return nil
}

// CSThr is the cache storage interference workload: an endless loop of
// buf[random]++ over its buffer. Work units count read-modify-write triples
// (the metric of the paper's Fig. 8).
type CSThr struct {
	cfg   CSConfig
	base  mem.Addr
	elems int64
	addrs []mem.Addr // scratch for the batched access path
}

// NewCSThr allocates the thread's buffer from alloc and returns the
// workload. It panics on an invalid configuration.
func NewCSThr(cfg CSConfig, alloc *mem.Alloc) *CSThr {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CSThr{
		cfg:   cfg,
		base:  alloc.Alloc(cfg.BufBytes),
		elems: cfg.BufBytes / cfg.ElemSize,
		addrs: make([]mem.Addr, 0, cfg.BatchSize),
	}
}

// Name implements engine.Workload.
func (w *CSThr) Name() string { return "CSThr" }

// Config returns the thread's parameters.
func (w *CSThr) Config() CSConfig { return w.cfg }

// BufferRange returns the cache-line interval [lo, hi) covered by the
// thread's buffer, for occupancy accounting against a line size.
func (w *CSThr) BufferRange(lineSize int64) (lo, hi mem.Line) {
	lo = mem.LineOf(w.base, lineSize)
	hi = mem.LineOf(w.base+mem.Addr(w.cfg.BufBytes-1), lineSize) + 1
	return lo, hi
}

// Step implements engine.Workload: BatchSize random read-increment-write
// operations, issued through the batched access fast path. The indices are
// drawn up front from the same stream in the same order, so the access
// sequence is identical to a per-operation loop.
func (w *CSThr) Step(ctx *engine.Ctx) bool {
	r := ctx.Rand()
	addrs := w.addrs[:0]
	for b := 0; b < w.cfg.BatchSize; b++ {
		idx := int64(r.Intn(int(w.elems)))
		addrs = append(addrs, w.base+mem.Addr(idx*w.cfg.ElemSize))
	}
	w.addrs = addrs
	ctx.RMWBatch(addrs, w.cfg.ComputeCycles)
	ctx.WorkUnit(int64(w.cfg.BatchSize))
	return true
}
