// Package interfere implements the paper's two interference thread designs:
//
//   - BWThr (Fig. 2): streams over many buffers with a large-prime stride so
//     that essentially every access misses the entire cache hierarchy,
//     consuming a calibrated slice of memory bandwidth while pinning almost
//     no useful L3 capacity (its lines are never re-touched before eviction).
//   - CSThr (Fig. 3): random read-modify-writes over a fixed buffer sized
//     above the private caches, so every operation hits the shared L3 and
//     LRU keeps the buffer resident — pinning a predictable fraction of L3
//     capacity while consuming almost no memory bandwidth.
//
// Both are engine daemons: they run on spare cores for as long as the
// application under measurement is active.
package interfere

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// BWConfig parameterises a bandwidth interference thread.
type BWConfig struct {
	// NumBufs is the number of concurrently strided buffers; the paper
	// found 44 sufficient to saturate per-core memory parallelism.
	NumBufs int
	// BufBytes is the size of each buffer (the paper uses 520 KB).
	BufBytes int64
	// ElemSize is the element width (8 for the paper's long long).
	ElemSize int64
	// StridePrime is the large prime multiplying the iteration counter; it
	// must be coprime with the buffer's element count so every slot is
	// visited once per period.
	StridePrime int64
	// IssueGap is the per-access issue overhead in cycles, modelling the
	// paper's non-inlinable identity() call plus index arithmetic. It is
	// the calibration constant that sets per-thread bandwidth (§III-A
	// measures 2.8 GB/s per BWThr on Xeon20MB).
	IssueGap units.Cycles
}

// DefaultBWConfig returns the paper's BWThr parameters scaled to a machine
// whose shared cache holds l3Bytes: on the full 20 MB Xeon20MB this is 44
// buffers of 520 KB; on a Scaled(f) machine buffers shrink by f so the
// total footprint keeps the same ratio to the L3. The stride is chosen by
// StrideFor so that BWThr misses the whole hierarchy on essentially every
// access, the property the paper's large prime provides.
func DefaultBWConfig(l3Bytes int64) BWConfig {
	scale := (20 * units.MB) / l3Bytes
	if scale < 1 {
		scale = 1
	}
	bufBytes := 520 * units.KB / scale
	if scale > 1 {
		// At reduced geometries the modular line-touch gaps get coarser
		// (they cannot exceed elems/elemsPerLine), so the paper's 1.14×
		// footprint-to-L3 ratio leaves no margin; widen the buffers to
		// restore the guaranteed all-miss property.
		bufBytes = bufBytes * 3 / 2
	}
	return BWConfig{
		NumBufs:     44,
		BufBytes:    bufBytes,
		ElemSize:    8,
		StridePrime: StrideFor(bufBytes / 8),
		IssueGap:    55,
	}
}

// StrideFor picks a stride p, coprime with elems, that maximises the
// minimum spacing between touches of any single cache line. Element j of
// the buffer is touched at iteration j·q mod elems (q = p⁻¹), so the
// touches of one line's elemsPerLine elements occur at iterations
// {δ·q mod elems : δ = 0..7}; the smallest circular gap of that set is the
// line's reuse distance in iterations. Maximising it guarantees the thread
// streams far more data than any cache holds before a line is re-touched,
// pinning the miss rate at ~100% across machine scales. (The paper's large
// prime serves the same purpose; primality is incidental — coprimality and
// the reuse-spacing property are what matter.)
func StrideFor(elems int64) int64 {
	return tuneStride(elems, 8)
}

// tuneStride scans coprime candidates and returns the one with the largest
// minimum line-touch gap. The theoretical optimum is elems/elemsPerLine
// (pigeonhole); the scan stops early once it is within ~6% of it.
func tuneStride(elems, elemsPerLine int64) int64 {
	if elems <= 2*elemsPerLine {
		return 1
	}
	target := elems * 118 / (elemsPerLine * 125) // ≈ 0.94 * elems/epl
	best, bestGap := int64(1), int64(0)
	var touches [16]int64
	n := int(elemsPerLine)
	for p := elems*37/100 + 1; p > elems/20; p-- {
		if gcd(p, elems) != 1 {
			continue
		}
		q := modInverse(p, elems)
		for d := 0; d < n; d++ {
			touches[d] = int64(d) * q % elems
		}
		sortSmall(touches[:n])
		gap := elems - touches[n-1] + touches[0] // wraparound gap
		for d := 1; d < n; d++ {
			if g := touches[d] - touches[d-1]; g < gap {
				gap = g
			}
		}
		if gap > bestGap {
			best, bestGap = p, gap
			if bestGap >= target {
				break
			}
		}
	}
	return best
}

// sortSmall insertion-sorts a tiny slice (at most 16 entries).
func sortSmall(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// modInverse returns a^-1 mod n for gcd(a, n) == 1, via extended Euclid.
func modInverse(a, n int64) int64 {
	t, newT := int64(0), int64(1)
	r, newR := n, a
	for newR != 0 {
		quot := r / newR
		t, newT = newT, t-quot*newT
		r, newR = newR, r-quot*newR
	}
	if t < 0 {
		t += n
	}
	return t
}

// Validate checks the configuration.
func (c BWConfig) Validate() error {
	if c.NumBufs <= 0 || c.BufBytes <= 0 || c.ElemSize <= 0 {
		return fmt.Errorf("interfere: BWThr: non-positive geometry")
	}
	if c.BufBytes%c.ElemSize != 0 {
		return fmt.Errorf("interfere: BWThr: buffer not a whole number of elements")
	}
	elems := c.BufBytes / c.ElemSize
	if c.StridePrime <= 0 || gcd(c.StridePrime, elems) != 1 {
		return fmt.Errorf("interfere: BWThr: stride %d not coprime with %d elements",
			c.StridePrime, elems)
	}
	if c.IssueGap <= 0 {
		return fmt.Errorf("interfere: BWThr: non-positive issue gap")
	}
	return nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// BWThr is the bandwidth interference workload. One Step performs one
// iteration of the paper's main loop: a strided access to each buffer,
// issued with MSHR-limited overlap. Work units count individual accesses.
type BWThr struct {
	cfg   BWConfig
	bases []mem.Addr
	elems int64
	iter  int64
	addrs []mem.Addr
}

// NewBWThr allocates the thread's buffers from alloc and returns the
// workload. It panics on an invalid configuration.
func NewBWThr(cfg BWConfig, alloc *mem.Alloc) *BWThr {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &BWThr{
		cfg:   cfg,
		elems: cfg.BufBytes / cfg.ElemSize,
		bases: make([]mem.Addr, cfg.NumBufs),
		addrs: make([]mem.Addr, cfg.NumBufs),
	}
	for i := range w.bases {
		w.bases[i] = alloc.Alloc(cfg.BufBytes)
	}
	return w
}

// Name implements engine.Workload.
func (w *BWThr) Name() string { return "BWThr" }

// Config returns the thread's parameters.
func (w *BWThr) Config() BWConfig { return w.cfg }

// FootprintBytes returns the total buffer footprint.
func (w *BWThr) FootprintBytes() int64 {
	return int64(w.cfg.NumBufs) * w.cfg.BufBytes
}

// Step implements engine.Workload: one pass touching every buffer at the
// current strided index.
func (w *BWThr) Step(ctx *engine.Ctx) bool {
	idx := (w.iter * w.cfg.StridePrime) % w.elems
	off := mem.Addr(idx * w.cfg.ElemSize)
	for k, base := range w.bases {
		w.addrs[k] = base + off
	}
	ctx.LoadOverlapped(w.addrs, w.cfg.IssueGap)
	ctx.WorkUnit(int64(len(w.addrs)))
	w.iter++
	return true
}
