package interfere

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// This file implements the baselines the paper compares against in §V:
// Eklov et al.'s Cache Pirate (ICPP'11) and Bandwidth Bandit (PACT'12).
//
//   - The Pirate steals cache capacity by walking a working set of a chosen
//     size in a tight loop — like CSThr, but with a sequential (fenced)
//     access order rather than CSThr's random order, which makes it visible
//     to the prefetcher and gives its re-touch intervals a periodic
//     worst-case rather than an exponential tail.
//   - The Bandit steals bandwidth with pointer-chase-style streams tuned to
//     miss the cache.
//
// The paper's criticisms are reproducible here: the Bandit's capacity bleed
// is not validated (compare BenchmarkBaselineEklov), and the Pirate's
// effective theft must be estimated by a heuristic rather than the Eq. 4
// inversion CSThr enjoys.

// PirateConfig parameterises a Cache Pirate baseline thread.
type PirateConfig struct {
	// BufBytes is the working set the pirate tries to own.
	BufBytes int64
	// ElemSize is the element width.
	ElemSize int64
	// BatchSize is accesses per engine step.
	BatchSize int
}

// DefaultPirateConfig matches CSThr's default footprint for comparison.
func DefaultPirateConfig(l3Bytes int64) PirateConfig {
	cs := DefaultCSConfig(l3Bytes)
	return PirateConfig{BufBytes: cs.BufBytes, ElemSize: 4, BatchSize: 16}
}

// Validate checks the configuration.
func (c PirateConfig) Validate() error {
	if c.BufBytes <= 0 || c.ElemSize <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("interfere: pirate: non-positive geometry")
	}
	if c.BufBytes%c.ElemSize != 0 {
		return fmt.Errorf("interfere: pirate: buffer not a whole number of elements")
	}
	return nil
}

// Pirate is the cache-pirating baseline: a sequential sweep over its
// working set, one element per line to maximise the line count touched per
// access.
type Pirate struct {
	cfg   PirateConfig
	base  mem.Addr
	lines int64
	pos   int64
	addrs []mem.Addr // scratch for the batched access path
}

// NewPirate allocates the working set and returns the workload.
func NewPirate(cfg PirateConfig, alloc *mem.Alloc) *Pirate {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Pirate{
		cfg:   cfg,
		base:  alloc.Alloc(cfg.BufBytes),
		lines: cfg.BufBytes / 64,
	}
}

// Name implements engine.Workload.
func (w *Pirate) Name() string { return "CachePirate" }

// BufferRange returns the line interval of the pirate's working set.
func (w *Pirate) BufferRange(lineSize int64) (lo, hi mem.Line) {
	lo = mem.LineOf(w.base, lineSize)
	hi = mem.LineOf(w.base+mem.Addr(w.cfg.BufBytes-1), lineSize) + 1
	return lo, hi
}

// Step implements engine.Workload: touch the next BatchSize lines in
// sequence.
func (w *Pirate) Step(ctx *engine.Ctx) bool {
	addrs := w.addrs[:0]
	for i := 0; i < w.cfg.BatchSize; i++ {
		addrs = append(addrs, w.base+mem.Addr(w.pos%w.lines*64))
		w.pos++
	}
	w.addrs = addrs
	ctx.LoadComputeBatch(addrs, 1)
	ctx.WorkUnit(int64(w.cfg.BatchSize))
	return true
}

// BanditConfig parameterises a Bandwidth Bandit baseline thread.
type BanditConfig struct {
	// Chains is the number of concurrent dependent-access chains (the
	// bandit's source of memory-level parallelism).
	Chains int
	// BufBytes is the footprint of each chain.
	BufBytes int64
	// StrideLines is the fixed line stride each chain walks with.
	StrideLines int64
}

// DefaultBanditConfig scales the published parameters to the machine.
func DefaultBanditConfig(l3Bytes int64) BanditConfig {
	scale := (20 * units.MB) / l3Bytes
	if scale < 1 {
		scale = 1
	}
	return BanditConfig{Chains: 10, BufBytes: 4 * units.MB / scale, StrideLines: 17}
}

// Validate checks the configuration.
func (c BanditConfig) Validate() error {
	if c.Chains <= 0 || c.BufBytes < 64 || c.StrideLines <= 0 {
		return fmt.Errorf("interfere: bandit: non-positive geometry")
	}
	return nil
}

// Bandit is the bandwidth-bandit baseline: several strided chains advanced
// together with overlap.
type Bandit struct {
	cfg   BanditConfig
	bases []mem.Addr
	lines int64
	pos   int64
	addrs []mem.Addr
}

// NewBandit allocates the chains and returns the workload.
func NewBandit(cfg BanditConfig, alloc *mem.Alloc) *Bandit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Bandit{
		cfg:   cfg,
		lines: cfg.BufBytes / 64,
		bases: make([]mem.Addr, cfg.Chains),
		addrs: make([]mem.Addr, cfg.Chains),
	}
	for i := range w.bases {
		w.bases[i] = alloc.Alloc(cfg.BufBytes)
	}
	return w
}

// Name implements engine.Workload.
func (w *Bandit) Name() string { return "BandwidthBandit" }

// FootprintBytes returns the total chain footprint.
func (w *Bandit) FootprintBytes() int64 { return int64(w.cfg.Chains) * w.cfg.BufBytes }

// Step implements engine.Workload: advance every chain one strided hop.
func (w *Bandit) Step(ctx *engine.Ctx) bool {
	line := w.pos * w.cfg.StrideLines % w.lines
	for i, base := range w.bases {
		w.addrs[i] = base + mem.Addr(line*64)
	}
	ctx.LoadOverlapped(w.addrs, 35)
	ctx.WorkUnit(int64(len(w.addrs)))
	w.pos++
	return true
}
