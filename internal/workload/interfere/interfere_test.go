package interfere

import (
	"testing"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// measure runs daemons on a fresh Xeon20MB socket for warmup cycles, resets
// statistics, runs a window, and returns the hierarchy plus window length.
func measure(t *testing.T, spec machine.Spec, place func(e *engine.Engine, alloc *mem.Alloc),
	warmup, window units.Cycles) *mem.Hierarchy {
	t.Helper()
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())
	place(e, alloc)
	e.RunUntil(warmup)
	h.ResetStats()
	e.RunUntil(warmup + window)
	return h
}

func TestBWConfigValidation(t *testing.T) {
	good := DefaultBWConfig(20 * units.MB)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []BWConfig{
		{NumBufs: 0, BufBytes: 1024, ElemSize: 8, StridePrime: 7, IssueGap: 1},
		{NumBufs: 1, BufBytes: 1023, ElemSize: 8, StridePrime: 7, IssueGap: 1},
		{NumBufs: 1, BufBytes: 1024, ElemSize: 8, StridePrime: 4, IssueGap: 1}, // shares factor 4 with 128
		{NumBufs: 1, BufBytes: 1024, ElemSize: 8, StridePrime: 7, IssueGap: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCSConfigValidation(t *testing.T) {
	if err := DefaultCSConfig(20 * units.MB).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []CSConfig{
		{BufBytes: 0, ElemSize: 4, BatchSize: 1},
		{BufBytes: 10, ElemSize: 4, BatchSize: 1},
		{BufBytes: 16, ElemSize: 4, BatchSize: 0},
		{BufBytes: 16, ElemSize: 4, BatchSize: 1, ComputeCycles: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigsScale(t *testing.T) {
	full := DefaultBWConfig(20 * units.MB)
	eighth := DefaultBWConfig(20 * units.MB / 8)
	if full.BufBytes != 520*units.KB {
		t.Errorf("full-scale BWThr buffer = %d", full.BufBytes)
	}
	// Scaled buffers are 1/8 of the paper's 520 KB plus the 1.5x margin
	// widening documented in DefaultBWConfig.
	if eighth.BufBytes != 65*units.KB*3/2 {
		t.Errorf("1/8-scale BWThr buffer = %d, want %d", eighth.BufBytes, 65*units.KB*3/2)
	}
	if DefaultCSConfig(20*units.MB).BufBytes != 4*units.MB {
		t.Error("full-scale CSThr buffer should be 4MB")
	}
	if DefaultCSConfig(20*units.MB/8).BufBytes != 512*units.KB {
		t.Error("1/8-scale CSThr buffer should be 512KB")
	}
}

// §III-A: a single BWThr on Xeon20MB consumes ≈2.8 GB/s. The simulator is
// calibrated via BWConfig.IssueGap; this test pins the band.
func TestBWThrSingleThreadBandwidth(t *testing.T) {
	spec := machine.Xeon20MB()
	const warmup, window = 2_000_000, 6_000_000
	h := measure(t, spec, func(e *engine.Engine, alloc *mem.Alloc) {
		e.PlaceDaemon(1, NewBWThr(DefaultBWConfig(spec.L3.Size), alloc), 9)
	}, warmup, window)
	bw := spec.Clock.BandwidthGBs(h.PerCore[1].BusBytes, window)
	if bw < 2.3 || bw > 3.4 {
		t.Fatalf("single BWThr bandwidth = %.2f GB/s, want 2.3-3.4 (paper: 2.8)", bw)
	}
	// The design requires BWThr to miss essentially always in L3.
	if mr := h.PerCore[1].L3MissRate(); mr < 0.95 {
		t.Fatalf("BWThr L3 miss rate = %.3f, want ~1", mr)
	}
}

// §III-A: seven BWThrs consume approximately 100% of the 17 GB/s.
func TestBWThrSevenThreadsSaturate(t *testing.T) {
	spec := machine.Xeon20MB()
	const warmup, window = 2_000_000, 6_000_000
	h := measure(t, spec, func(e *engine.Engine, alloc *mem.Alloc) {
		for i := 0; i < 7; i++ {
			e.PlaceDaemon(1+i, NewBWThr(DefaultBWConfig(spec.L3.Size), alloc), uint64(9+i))
		}
	}, warmup, window)
	util := mem.Utilization(h.Bus.Stats, window)
	if util < 0.90 {
		t.Fatalf("7 BWThrs bus utilization = %.2f, want >= 0.90", util)
	}
}

// BWThr's working set (44 × 520 KB ≈ 22.9 MB) deliberately exceeds the L3.
func TestBWThrFootprintExceedsL3(t *testing.T) {
	spec := machine.Xeon20MB()
	w := NewBWThr(DefaultBWConfig(spec.L3.Size), mem.NewAlloc(64))
	if w.FootprintBytes() <= spec.L3.Size {
		t.Fatalf("BWThr footprint %d must exceed L3 %d", w.FootprintBytes(), spec.L3.Size)
	}
}

// §III-B: a lone CSThr pins its whole buffer in the L3 and uses almost no
// memory bandwidth (Fig. 8's left panel at zero BWThrs).
func TestCSThrPinsBufferUsingNoBandwidth(t *testing.T) {
	spec := machine.Xeon20MB()
	// Warmup must cover the coupon-collector bound: touching all 65536
	// lines of the 4MB buffer needs ~N ln N ≈ 727k random accesses.
	const warmup, window = 45_000_000, 5_000_000
	var cs *CSThr
	h := measure(t, spec, func(e *engine.Engine, alloc *mem.Alloc) {
		cs = NewCSThr(DefaultCSConfig(spec.L3.Size), alloc)
		e.PlaceDaemon(1, cs, 9)
	}, warmup, window)
	lo, hi := cs.BufferRange(64)
	held := h.L3.CountLinesIn(lo, hi)
	total := int64(hi - lo)
	if held < total*95/100 {
		t.Fatalf("CSThr holds %d/%d lines, want >= 95%%", held, total)
	}
	bw := spec.Clock.BandwidthGBs(h.PerCore[1].BusBytes, window)
	if bw > 0.3 {
		t.Fatalf("CSThr bandwidth = %.3f GB/s, want ~0", bw)
	}
	// Steady state: CSThr misses the L3 almost never.
	if mr := h.PerCore[1].L3MissRate(); mr > 0.02 {
		t.Fatalf("CSThr L3 miss rate = %.4f, want ~0", mr)
	}
}

// Multiple CSThrs each pin their own buffer (they use disjoint address
// ranges), stacking their capacity theft as the paper's §III-C3 calibration
// assumes.
func TestCSThrsStackOccupancy(t *testing.T) {
	// Run on the 1/8-scale machine so the coupon-collector warmup stays
	// cheap; occupancy stacking is scale-free.
	spec := machine.Scaled(8)
	const warmup, window = 10_000_000, 2_000_000
	var threads []*CSThr
	h := measure(t, spec, func(e *engine.Engine, alloc *mem.Alloc) {
		for i := 0; i < 3; i++ {
			cs := NewCSThr(DefaultCSConfig(spec.L3.Size), alloc)
			threads = append(threads, cs)
			e.PlaceDaemon(1+i, cs, uint64(9+i))
		}
	}, warmup, window)
	var held int64
	for _, cs := range threads {
		lo, hi := cs.BufferRange(64)
		held += h.L3.CountLinesIn(lo, hi)
	}
	want := int64(3) * (512 * units.KB / 64)
	if held < want*90/100 {
		t.Fatalf("3 CSThrs hold %d lines, want >= 90%% of %d", held, want)
	}
}

func TestBWThrDeterminism(t *testing.T) {
	spec := machine.Scaled(8)
	run := func() int64 {
		h := spec.NewSocket(5)
		e := engine.New(h, spec.MSHRs)
		alloc := mem.NewAlloc(64)
		e.PlaceDaemon(0, NewBWThr(DefaultBWConfig(spec.L3.Size), alloc), 3)
		e.PlaceDaemon(1, NewCSThr(DefaultCSConfig(spec.L3.Size), alloc), 4)
		e.RunUntil(500_000)
		return h.Bus.Stats.Bytes
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic bus bytes: %d vs %d", a, b)
	}
}

func TestWorkloadNames(t *testing.T) {
	alloc := mem.NewAlloc(64)
	if NewBWThr(DefaultBWConfig(20*units.MB), alloc).Name() != "BWThr" {
		t.Error("BWThr name")
	}
	if NewCSThr(DefaultCSConfig(20*units.MB), alloc).Name() != "CSThr" {
		t.Error("CSThr name")
	}
}

func TestBWThrVisitsAllSlots(t *testing.T) {
	// The stride must visit every element of a buffer exactly once per
	// period (coprimality), or the bandwidth pattern would degenerate.
	for _, elems := range []int64{512, 8320, 66560} {
		stride := StrideFor(elems)
		seen := make(map[int64]bool, elems)
		for i := int64(0); i < elems; i++ {
			seen[(i*stride)%elems] = true
		}
		if int64(len(seen)) != elems {
			t.Fatalf("elems=%d: stride %d visits only %d slots", elems, stride, len(seen))
		}
	}
}

func TestStrideForMaximisesLineReuseGap(t *testing.T) {
	// The touches of one cache line's 8 elements occur at iterations
	// {δ·q mod n}; the smallest circular gap of that set is the line's
	// reuse distance. StrideFor must push it near the pigeonhole optimum
	// n/8 — that is what makes BWThr miss everywhere.
	for _, elems := range []int64{6240, 8320, 12480, 16640, 49920, 66560} {
		p := StrideFor(elems)
		q := modInverse(p, elems)
		if (p*q)%elems != 1 {
			t.Fatalf("elems=%d: %d is not the inverse of %d", elems, q, p)
		}
		touches := make([]int64, 8)
		for d := range touches {
			touches[d] = int64(d) * q % elems
		}
		sortSmall(touches)
		gap := elems - touches[7] + touches[0]
		for d := 1; d < 8; d++ {
			if g := touches[d] - touches[d-1]; g < gap {
				gap = g
			}
		}
		// Require at least 70% of the theoretical optimum n/8.
		if gap*8*10 < elems*7 {
			t.Fatalf("elems=%d: min line-touch gap %d below 70%% of n/8", elems, gap)
		}
	}
}
