package synthetic

import (
	"math"
	"strings"
	"testing"

	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/model"
)

func TestConfigValidation(t *testing.T) {
	d := dist.NewUniform(1 << 16)
	if (Config{Dist: d, ElemSize: 4}).Validate() != nil {
		t.Error("valid config rejected")
	}
	bad := []Config{
		{Dist: nil, ElemSize: 4},
		{Dist: d, ElemSize: 0},
		{Dist: d, ElemSize: 4, ComputePerLoad: -1},
		{Dist: d, ElemSize: 4, Accesses: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestQuotaCompletion(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	b := New(Config{Dist: dist.NewUniform(1 << 12), ElemSize: 4, ComputePerLoad: 1, Accesses: 5000}, alloc)
	e.Place(0, b, 3)
	e.RunToCompletion()
	if got := e.Ctx(0).Work(); got != 5000 {
		t.Fatalf("work = %d, want 5000", got)
	}
}

func TestName(t *testing.T) {
	b := New(Config{Dist: dist.NewNormal(1<<12, 4), ElemSize: 4, ComputePerLoad: 10},
		mem.NewAlloc(64))
	if !strings.Contains(b.Name(), "Norm 4") || !strings.Contains(b.Name(), "c=10") {
		t.Fatalf("name = %q", b.Name())
	}
}

func TestSumSquaredLineMassDelegates(t *testing.T) {
	d := dist.NewUniform(1 << 14)
	b := New(Config{Dist: d, ElemSize: 4, ComputePerLoad: 1}, mem.NewAlloc(64))
	want := dist.SumSquaredLineMass(d, 16)
	if got := b.SumSquaredLineMass(64); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Σf² = %v, want %v", got, want)
	}
	if b.BufBytes() != 4*(1<<14) {
		t.Fatalf("BufBytes = %d", b.BufBytes())
	}
}

// End-to-end sanity of the whole §III-C pipeline at small scale: run the
// uniform benchmark with a buffer ~2x the L3 and compare the measured L3
// miss rate against Eq. 4's prediction. The paper's Fig. 5 tolerates ~10%
// absolute error (set-associativity bias); we allow the same.
func TestMissRateMatchesEHRModel(t *testing.T) {
	spec := machine.Scaled(8)  // 2.5 MB L3
	bufBytes := int64(5 << 20) // 5 MB buffer, 2x the L3
	d := dist.NewUniform(bufBytes / 4)
	alloc := mem.NewAlloc(64)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	bench := New(Config{Dist: d, ElemSize: 4, ComputePerLoad: 1}, alloc)
	e.PlaceDaemon(0, bench, 7)
	// Warm up ~2 buffer's worth of accesses, then measure.
	e.RunUntil(60_000_000)
	h.ResetStats()
	e.RunUntil(90_000_000)
	measured := h.PerCore[0].L3MissRate()
	cacheLines := float64(spec.L3.Size / 64)
	predicted := model.MissRate(cacheLines, dist.SumSquaredLineMass(d, 16))
	if math.Abs(measured-predicted) > 0.10 {
		t.Fatalf("measured miss %.3f vs Eq.4 %.3f: error above Fig.5 band", measured, predicted)
	}
	// Set-associative LRU must miss at least as much as the ideal
	// fully-associative model (the paper's stated bias direction).
	if measured < predicted-0.02 {
		t.Fatalf("measured %.3f below fully-associative ideal %.3f", measured, predicted)
	}
}

// Narrower distributions must produce lower miss rates under identical
// capacity (the §III-C2 ordering).
func TestMissRateOrderingAcrossDistributions(t *testing.T) {
	spec := machine.Scaled(8)
	bufBytes := int64(5 << 20)
	missFor := func(d dist.Dist) float64 {
		alloc := mem.NewAlloc(64)
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		e.PlaceDaemon(0, New(Config{Dist: d, ElemSize: 4, ComputePerLoad: 1}, alloc), 7)
		e.RunUntil(40_000_000)
		h.ResetStats()
		e.RunUntil(60_000_000)
		return h.PerCore[0].L3MissRate()
	}
	uni := missFor(dist.NewUniform(bufBytes / 4))
	norm8 := missFor(dist.NewNormal(bufBytes/4, 8))
	if norm8 >= uni {
		t.Fatalf("Norm 8 miss %.3f should be below uniform %.3f", norm8, uni)
	}
}
