// Package synthetic implements the probabilistic memory access benchmark of
// the paper's Fig. 4: an endless loop that samples a buffer index from a
// probability distribution (Table II), loads it, and performs a configurable
// number of integer additions. The paper uses 660 configurations of this
// benchmark (10 distributions × 3 compute intensities × 22 buffer sizes) to
// validate the EHR model and to calibrate CSThr's effective capacity theft.
package synthetic

import (
	"fmt"

	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// Config parameterises one synthetic benchmark instance.
type Config struct {
	// Dist is the index distribution; its N() is the buffer element count.
	Dist dist.Dist
	// ElemSize is the element width (4 for the paper's int).
	ElemSize int64
	// ComputePerLoad is the number of integer additions between loads
	// (1, 10 or 100 in the paper), at one cycle each.
	ComputePerLoad int
	// Accesses is the work quota after which the workload reports
	// completion; 0 means run forever (daemon mode).
	Accesses int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dist == nil {
		return fmt.Errorf("synthetic: nil distribution")
	}
	if c.ElemSize <= 0 {
		return fmt.Errorf("synthetic: non-positive element size")
	}
	if c.ComputePerLoad < 0 || c.Accesses < 0 {
		return fmt.Errorf("synthetic: negative compute or quota")
	}
	return nil
}

// Bench is the Fig. 4 benchmark workload.
type Bench struct {
	cfg     Config
	base    mem.Addr
	scratch [1]mem.Addr
}

// New allocates the benchmark's buffer from alloc and returns the workload.
// It panics on an invalid configuration.
func New(cfg Config, alloc *mem.Alloc) *Bench {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bench{cfg: cfg, base: alloc.Alloc(cfg.Dist.N() * cfg.ElemSize)}
}

// Name implements engine.Workload.
func (b *Bench) Name() string {
	return fmt.Sprintf("synthetic(%s,c=%d)", b.cfg.Dist.Name(), b.cfg.ComputePerLoad)
}

// Config returns the benchmark's parameters.
func (b *Bench) Config() Config { return b.cfg }

// BufBytes returns the buffer footprint.
func (b *Bench) BufBytes() int64 { return b.cfg.Dist.N() * b.cfg.ElemSize }

// SumSquaredLineMass returns the Σ F(j)² term of the benchmark's
// distribution at the given line size — the quantity the EHR model needs.
func (b *Bench) SumSquaredLineMass(lineSize int64) float64 {
	return dist.SumSquaredLineMass(b.cfg.Dist, lineSize/b.cfg.ElemSize)
}

// Step implements engine.Workload: sample, load, compute. The single access
// rides the batched path so its counter accounting matches the other
// workloads' amortised form; one sample per step keeps the scheduling
// granularity (and thus interference interleaving) unchanged.
func (b *Bench) Step(ctx *engine.Ctx) bool {
	idx := b.cfg.Dist.Sample(ctx.Rand())
	b.scratch[0] = b.base + mem.Addr(idx*b.cfg.ElemSize)
	ctx.LoadComputeBatch(b.scratch[:], units.Cycles(b.cfg.ComputePerLoad))
	ctx.WorkUnit(1)
	return b.cfg.Accesses == 0 || ctx.Work() < b.cfg.Accesses
}
