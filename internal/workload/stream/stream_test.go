package stream

import (
	"testing"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

func TestConfigValidation(t *testing.T) {
	if (Config{ArrayBytes: 1 << 20, ElemSize: 8, BatchElems: 16}).Validate() != nil {
		t.Error("valid config rejected")
	}
	bad := []Config{
		{ArrayBytes: 0, ElemSize: 8, BatchElems: 16},
		{ArrayBytes: 100, ElemSize: 8, BatchElems: 16},
		{ArrayBytes: 1 << 20, ElemSize: 8, BatchElems: 0},
		{ArrayBytes: 1 << 20, ElemSize: 8, BatchElems: 16, Passes: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPassesComplete(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	tr := New(Config{ArrayBytes: 1 << 16, ElemSize: 8, BatchElems: 16, Passes: 2}, mem.NewAlloc(64))
	e.Place(0, tr, 3)
	e.RunToCompletion()
	wantElems := int64(2 * (1 << 16) / 8)
	if got := e.Ctx(0).Work(); got != wantElems {
		t.Fatalf("work = %d, want %d", got, wantElems)
	}
}

// The triad is the machine's bandwidth calibrator. As in the real STREAM,
// the quoted socket figure (the paper's ~17 GB/s) is an all-cores run: one
// triad per core must saturate the bus, while a single core sustains only a
// fraction (real Sandy Bridge single-thread STREAM is likewise ~1/3 of
// socket peak).
func TestTriadApproachesPeakBandwidth(t *testing.T) {
	spec := machine.Xeon20MB()
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(64)
	for core := 0; core < spec.CoresPerSocket; core++ {
		tr := New(Config{ArrayBytes: 16 << 20, ElemSize: 8, BatchElems: 16}, alloc)
		e.PlaceDaemon(core, tr, uint64(3+core))
	}
	const warmup, window = 1_000_000, 5_000_000
	e.RunUntil(warmup)
	h.ResetStats()
	e.RunUntil(warmup + window)
	gbs := spec.Clock.BandwidthGBs(h.Bus.Stats.Bytes, units.Cycles(window))
	peak := spec.PeakBandwidthGBs()
	if gbs < 0.90*peak {
		t.Fatalf("all-cores triad bandwidth = %.2f GB/s, want >= 90%% of peak %.2f", gbs, peak)
	}
	if gbs > 1.02*peak {
		t.Fatalf("triad bandwidth = %.2f GB/s exceeds peak %.2f", gbs, peak)
	}
}

func TestSingleCoreTriadIsSubstantialFraction(t *testing.T) {
	spec := machine.Xeon20MB()
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	tr := New(Config{ArrayBytes: 64 << 20, ElemSize: 8, BatchElems: 16}, mem.NewAlloc(64))
	e.PlaceDaemon(0, tr, 3)
	const warmup, window = 1_000_000, 5_000_000
	e.RunUntil(warmup)
	h.ResetStats()
	e.RunUntil(warmup + window)
	gbs := spec.Clock.BandwidthGBs(h.Bus.Stats.Bytes, units.Cycles(window))
	if gbs < 3.5 || gbs > 12 {
		t.Fatalf("single-core triad = %.2f GB/s, want 3.5-12 (SNB-like)", gbs)
	}
}

func TestTriadName(t *testing.T) {
	tr := New(Config{ArrayBytes: 1 << 16, ElemSize: 8, BatchElems: 8}, mem.NewAlloc(64))
	if tr.Name() != "stream-triad" {
		t.Fatalf("name = %q", tr.Name())
	}
}
