// Package stream implements a STREAM-triad-like workload
// (a[i] = b[i] + s*c[i]) used, as in the paper (§III-A), to calibrate the
// peak sustainable memory bandwidth of a machine: the paper quotes 17 GB/s
// for Xeon20MB and expresses BWThr consumption as a fraction of it.
package stream

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

// Config parameterises the triad.
type Config struct {
	// ArrayBytes is the size of each of the three arrays; it should be
	// several times the L3 so the kernel streams from memory.
	ArrayBytes int64
	// ElemSize is the element width (8 for doubles).
	ElemSize int64
	// BatchElems is how many elements one engine step processes.
	BatchElems int
	// Passes is the number of full passes over the arrays before the
	// workload completes; 0 means run forever.
	Passes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ArrayBytes <= 0 || c.ElemSize <= 0 || c.BatchElems <= 0 {
		return fmt.Errorf("stream: non-positive geometry")
	}
	if c.ArrayBytes%c.ElemSize != 0 {
		return fmt.Errorf("stream: array not a whole number of elements")
	}
	if c.Passes < 0 {
		return fmt.Errorf("stream: negative pass count")
	}
	return nil
}

// Triad is the workload. Work units count processed elements.
type Triad struct {
	cfg     Config
	a, b, c mem.Addr
	elems   int64
	pos     int64
	pass    int
	addrs   []mem.Addr
	stores  []mem.Addr
}

// New allocates the three arrays from alloc and returns the workload.
func New(cfg Config, alloc *mem.Alloc) *Triad {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Triad{
		cfg:    cfg,
		a:      alloc.Alloc(cfg.ArrayBytes),
		b:      alloc.Alloc(cfg.ArrayBytes),
		c:      alloc.Alloc(cfg.ArrayBytes),
		elems:  cfg.ArrayBytes / cfg.ElemSize,
		addrs:  make([]mem.Addr, 0, 2*cfg.BatchElems),
		stores: make([]mem.Addr, 0, cfg.BatchElems),
	}
}

// Name implements engine.Workload.
func (t *Triad) Name() string { return "stream-triad" }

// Step implements engine.Workload: load a batch of b and c elements with
// full overlap, then store the a elements through the batched access path.
func (t *Triad) Step(ctx *engine.Ctx) bool {
	n := int64(t.cfg.BatchElems)
	if n > t.elems-t.pos {
		n = t.elems - t.pos
	}
	t.addrs = t.addrs[:0]
	t.stores = t.stores[:0]
	for i := int64(0); i < n; i++ {
		off := mem.Addr((t.pos + i) * t.cfg.ElemSize)
		t.addrs = append(t.addrs, t.b+off, t.c+off)
		t.stores = append(t.stores, t.a+off)
	}
	ctx.LoadOverlapped(t.addrs, 1)
	ctx.StoreBatch(t.stores)
	ctx.Compute(units.Cycles(2 * n)) // multiply-add per element
	ctx.WorkUnit(n)
	t.pos += n
	if t.pos >= t.elems {
		t.pos = 0
		t.pass++
		if t.cfg.Passes > 0 && t.pass >= t.cfg.Passes {
			return false
		}
	}
	return true
}
