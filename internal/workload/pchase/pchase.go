// Package pchase implements a pointer-chase workload: a random permutation
// cycle over the lines of a buffer, each load depending on the previous one.
// It measures pure access latency (no memory-level parallelism) and is used
// by the extension benches to show how interference affects latency-bound
// rather than bandwidth-bound code — the other axis of the paper's
// resource space.
package pchase

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/mem"
	"activemem/internal/xrand"
)

// Config parameterises the chase.
type Config struct {
	// BufBytes is the buffer the chase cycles through.
	BufBytes int64
	// LineSize is the machine's cache line size; the permutation has one
	// node per line so every hop touches a new line.
	LineSize int64
	// Hops is the quota of dependent loads before completion; 0 runs
	// forever.
	Hops int64
	// BatchHops is how many chain hops one engine step issues through the
	// batched access path (the permutation is static, so upcoming addresses
	// are known without waiting for load results). 0 means 1. Values above
	// 1 coarsen the scheduling granularity against concurrent cores.
	BatchHops int
	// Seed shuffles the permutation.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BufBytes <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("pchase: non-positive geometry")
	}
	if c.BufBytes < c.LineSize {
		return fmt.Errorf("pchase: buffer smaller than one line")
	}
	if c.Hops < 0 || c.BatchHops < 0 {
		return fmt.Errorf("pchase: negative hop quota")
	}
	return nil
}

// Chase is the workload. Work units count hops.
type Chase struct {
	cfg   Config
	base  mem.Addr
	next  []int32 // permutation: next[i] is the line index after i
	cur   int32
	addrs []mem.Addr // scratch for the batched access path
}

// New allocates the buffer, builds a random single-cycle permutation over
// its lines (a "sattolo cycle", guaranteeing one cycle through all lines),
// and returns the workload.
func New(cfg Config, alloc *mem.Alloc) *Chase {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.BufBytes / cfg.LineSize
	perm := make([]int32, lines)
	for i := range perm {
		perm[i] = int32(i)
	}
	r := xrand.New(cfg.Seed)
	// Sattolo's algorithm: a uniformly random cyclic permutation.
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &Chase{cfg: cfg, base: alloc.Alloc(cfg.BufBytes), next: perm}
}

// Name implements engine.Workload.
func (c *Chase) Name() string { return "pchase" }

// Step implements engine.Workload: BatchHops dependent loads (default one),
// issued through the batched access path by walking the static permutation
// ahead of time.
func (c *Chase) Step(ctx *engine.Ctx) bool {
	n := int64(c.cfg.BatchHops)
	if n < 1 {
		n = 1
	}
	if c.cfg.Hops > 0 {
		if rem := c.cfg.Hops - ctx.Work(); n > rem {
			n = rem
		}
	}
	addrs := c.addrs[:0]
	cur := c.cur
	for i := int64(0); i < n; i++ {
		addrs = append(addrs, c.base+mem.Addr(int64(cur)*c.cfg.LineSize))
		cur = c.next[cur]
	}
	c.cur = cur
	c.addrs = addrs
	ctx.LoadBatch(addrs)
	ctx.WorkUnit(n)
	return c.cfg.Hops == 0 || ctx.Work() < c.cfg.Hops
}
