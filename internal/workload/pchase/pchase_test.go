package pchase

import (
	"testing"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
)

func TestConfigValidation(t *testing.T) {
	if (Config{BufBytes: 1 << 16, LineSize: 64}).Validate() != nil {
		t.Error("valid config rejected")
	}
	bad := []Config{
		{BufBytes: 0, LineSize: 64},
		{BufBytes: 32, LineSize: 64},
		{BufBytes: 1 << 16, LineSize: 0},
		{BufBytes: 1 << 16, LineSize: 64, Hops: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPermutationIsSingleCycle(t *testing.T) {
	c := New(Config{BufBytes: 1 << 14, LineSize: 64, Seed: 5}, mem.NewAlloc(64))
	lines := len(c.next)
	seen := make([]bool, lines)
	cur := int32(0)
	for i := 0; i < lines; i++ {
		if seen[cur] {
			t.Fatalf("permutation revisits line %d after %d hops (cycle too short)", cur, i)
		}
		seen[cur] = true
		cur = c.next[cur]
	}
	if cur != 0 {
		t.Fatal("permutation did not return to start after visiting every line")
	}
}

// Average hop latency must track the level the buffer fits in: a tiny
// buffer chases within L1/L2; a buffer far beyond the L3 pays memory
// latency on every hop.
func TestLatencyTracksBufferSize(t *testing.T) {
	spec := machine.Scaled(8)
	avgHop := func(bufBytes int64) float64 {
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		ch := New(Config{BufBytes: bufBytes, LineSize: 64, Seed: 5}, mem.NewAlloc(64))
		e.PlaceDaemon(0, ch, 3)
		warm := units.Cycles(5_000_000)
		e.RunUntil(warm)
		start := e.Ctx(0).Work()
		h.ResetStats()
		e.RunUntil(warm + 3_000_000)
		hops := e.Ctx(0).Work() - start
		if hops == 0 {
			return 0
		}
		return 3_000_000 / float64(hops)
	}
	small := avgHop(2 << 10)  // fits L1 (4KB at 1/8 scale)
	mid := avgHop(1 << 20)    // fits L3 (2.5MB), exceeds L2 (32KB)
	large := avgHop(20 << 20) // 8x the L3
	if !(small < mid && mid < large) {
		t.Fatalf("latencies not ordered: L1=%.1f L3=%.1f mem=%.1f", small, mid, large)
	}
	if small > 10 {
		t.Errorf("L1-resident chase = %.1f cycles/hop, want ~4", small)
	}
	if mid < 30 || mid > 80 {
		t.Errorf("L3-resident chase = %.1f cycles/hop, want ~36-50", mid)
	}
	if large < 180 {
		t.Errorf("memory chase = %.1f cycles/hop, want >= 200", large)
	}
}

func TestHopQuota(t *testing.T) {
	spec := machine.Scaled(8)
	h := spec.NewSocket(1)
	e := engine.New(h, spec.MSHRs)
	ch := New(Config{BufBytes: 1 << 16, LineSize: 64, Hops: 777, Seed: 1}, mem.NewAlloc(64))
	e.Place(0, ch, 3)
	e.RunToCompletion()
	if got := e.Ctx(0).Work(); got != 777 {
		t.Fatalf("hops = %d, want 777", got)
	}
}

func TestChaseName(t *testing.T) {
	ch := New(Config{BufBytes: 1 << 12, LineSize: 64}, mem.NewAlloc(64))
	if ch.Name() != "pchase" {
		t.Fatalf("name = %q", ch.Name())
	}
}

// TestBatchHopsEquivalentSolo pins the batched chase: on an uncontended
// socket, walking the permutation BatchHops hops per step must produce
// exactly the counters, work and clock of the one-hop-per-step form, and a
// hop quota that does not divide the batch must still complete exactly.
func TestBatchHopsEquivalentSolo(t *testing.T) {
	run := func(batch int) (work int64, now int64, ctr mem.CoreCounters) {
		spec := machine.Scaled(8)
		h := spec.NewSocket(1)
		e := engine.New(h, spec.MSHRs)
		c := New(Config{
			BufBytes: spec.L3.Size * 2, LineSize: spec.LineSize(),
			Hops: 10_001, BatchHops: batch, Seed: 7,
		}, mem.NewAlloc(spec.LineSize()))
		e.Place(0, c, 2)
		e.RunToCompletion()
		return e.Ctx(0).Work(), int64(e.Ctx(0).Now()), h.PerCore[0]
	}
	w1, n1, c1 := run(0) // default: one hop per step
	w4, n4, c4 := run(4) // 10001 = 2500 batches of 4 + a final 1
	if w1 != 10_001 || w4 != 10_001 {
		t.Fatalf("work = %d / %d, want 10001", w1, w4)
	}
	if n1 != n4 || c1 != c4 {
		t.Fatalf("batched chase diverged: now %d vs %d, counters %+v vs %+v",
			n1, n4, c1, c4)
	}
}
