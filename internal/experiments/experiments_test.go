package experiments

import (
	"reflect"
	"strings"
	"testing"

	"activemem/internal/lab"
	"activemem/internal/store"
	"activemem/internal/units"
)

// smoke returns fast options on the 1/8-scale machine (default worker pool).
func smoke() Options {
	return Options{Scale: 8, Grid: GridSmoke, Seed: 1}
}

func TestGridString(t *testing.T) {
	if GridSmoke.String() != "smoke" || GridQuick.String() != "quick" ||
		GridPaper.String() != "paper" || Grid(9).String() != "Grid(9)" {
		t.Fatal("grid names")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.Spec().Name != "Xeon20MB" {
		t.Fatalf("default machine = %s", o.Spec().Name)
	}
	if !strings.Contains(o.ScaleNote(), "full geometry") {
		t.Fatalf("scale note = %q", o.ScaleNote())
	}
	if !strings.Contains(smoke().ScaleNote(), "multiply capacities by 8") {
		t.Fatalf("scaled note = %q", smoke().ScaleNote())
	}
}

func TestTableIAndII(t *testing.T) {
	if !strings.Contains(TableI(smoke()), "L3") {
		t.Fatal("Table I missing L3")
	}
	tab := TableII(smoke())
	if len(tab.Rows) != 10 {
		t.Fatalf("Table II has %d patterns, want 10", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "Norm 4") || !strings.Contains(tab.String(), "Uni") {
		t.Fatal("Table II missing patterns")
	}
}

func TestSecIIIAShape(t *testing.T) {
	r, err := SecIIIA(smoke())
	if err != nil {
		t.Fatal(err)
	}
	cal := r.Cal
	if len(cal.ConsumedGBs) != 8 {
		t.Fatalf("expected 8 levels, got %d", len(cal.ConsumedGBs))
	}
	// Single thread in the paper's 2.8 GB/s band; seven near saturation.
	if cal.ConsumedGBs[1] < 2.3 || cal.ConsumedGBs[1] > 3.4 {
		t.Errorf("1 BWThr = %.2f GB/s", cal.ConsumedGBs[1])
	}
	if cal.ConsumedGBs[7] < 0.9*cal.PeakGBs {
		t.Errorf("7 BWThrs = %.2f of %.2f peak", cal.ConsumedGBs[7], cal.PeakGBs)
	}
	if !strings.Contains(r.Table().String(), "BWThrs") {
		t.Error("table rendering")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(smoke())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("too few rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The paper's headline: mean error < ~10%.
		if row.MeanAbsErr > 0.12 {
			t.Errorf("buffer %s: model error %.3f above Fig. 5 band",
				units.FormatBytes(row.BufferBytes), row.MeanAbsErr)
		}
	}
	// Error shrinks (or at least does not grow) with buffer size.
	first, last := r.Rows[0].MeanAbsErr, r.Rows[len(r.Rows)-1].MeanAbsErr
	if last > first+0.02 {
		t.Errorf("error grew with buffer size: %.3f -> %.3f", first, last)
	}
	if !strings.Contains(r.Table().String(), "Mean abs err") {
		t.Error("table rendering")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(smoke())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerCompute) != 1 { // smoke grid: compute=1 only
		t.Fatalf("compute intensities = %v", r.Computes)
	}
	cal := r.PerCompute[0]
	phys := float64(r.Spec.L3.Size)
	// No interference recovers roughly the physical capacity.
	if cal.Points[0].MeanBytes < 0.7*phys || cal.Points[0].MeanBytes > 1.15*phys {
		t.Errorf("k=0 capacity = %.0f vs physical %.0f", cal.Points[0].MeanBytes, phys)
	}
	// Capacity decreases monotonically with CSThr count.
	for k := 1; k < len(cal.Points); k++ {
		if cal.Points[k].MeanBytes >= cal.Points[k-1].MeanBytes {
			t.Errorf("capacity not decreasing at k=%d: %v", k, cal.AvailableBytes())
		}
	}
	if len(r.Tables()) != 1 {
		t.Error("table rendering")
	}
}

func TestFig7Flatness(t *testing.T) {
	r, err := Fig7(smoke())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	base := r.Rows[0]
	for _, row := range r.Rows[1:] {
		// The paper's claim: BWThr is unaffected by CSThrs. Allow 15%.
		if rel(row.BWGBs, base.BWGBs) > 0.15 {
			t.Errorf("k=%d: BWThr bandwidth moved %.2f -> %.2f", row.CSThrs, base.BWGBs, row.BWGBs)
		}
		if rel(row.SecondsPer1e7, base.SecondsPer1e7) > 0.15 {
			t.Errorf("k=%d: BWThr loop time moved", row.CSThrs)
		}
		if row.L3MissRate < 0.85 {
			t.Errorf("k=%d: BWThr miss rate %.3f", row.CSThrs, row.L3MissRate)
		}
	}
}

func TestFig8Knee(t *testing.T) {
	r, err := Fig8(smoke())
	if err != nil {
		t.Fatal(err)
	}
	base := r.Rows[0]
	// A lone CSThr uses almost no bandwidth and never misses.
	if base.CSGBs > 0.3 || base.L3MissRate > 0.02 {
		t.Fatalf("baseline CSThr: %.3f GB/s, miss %.3f", base.CSGBs, base.L3MissRate)
	}
	// One BWThr leaves the CSThr essentially untouched...
	if rel(r.Rows[1].NsPerOp, base.NsPerOp) > 0.15 {
		t.Errorf("1 BWThr moved CSThr op time %.2f -> %.2f", base.NsPerOp, r.Rows[1].NsPerOp)
	}
	// ...but heavy bandwidth interference degrades it (the §III-D bound).
	if r.Rows[5].NsPerOp < base.NsPerOp*1.5 {
		t.Errorf("5 BWThrs barely moved CSThr: %.2f -> %.2f", base.NsPerOp, r.Rows[5].NsPerOp)
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// TestFig7ResumesFromDiskStore pins the warm-campaign contract for the
// orthogonality checks, the last figures to move onto the executor: a
// second run against the same cache directory reproduces the figure from
// disk without a single simulated cell.
func TestFig7ResumesFromDiskStore(t *testing.T) {
	dir := t.TempDir()
	run := func() (Fig7Result, lab.Stats) {
		st, err := store.Open(dir, store.Options{Schema: lab.ResultSchemaVersion})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		opt := smoke()
		opt.Exec = lab.New(lab.Config{Cache: st})
		r, err := Fig7(opt)
		if err != nil {
			t.Fatal(err)
		}
		return r, opt.Exec.Stats()
	}
	cold, coldStats := run()
	if coldStats.Computed != 6 || coldStats.Persisted != 6 {
		t.Fatalf("cold stats = %+v", coldStats)
	}
	warm, warmStats := run()
	if warmStats.Computed != 0 || warmStats.DiskHits != 6 {
		t.Fatalf("warm stats = %+v, want 6 pure disk hits", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("resumed Fig. 7 diverges:\n%+v\n%+v", cold, warm)
	}
}

// validateGridResults bundles every experiment a `validate -grid` run
// drives, so resident-pool and fresh-pool executions can be compared as one
// value.
type validateGridResults struct {
	SecIIIA SecIIIAResult
	Fig5    Fig5Result
	Fig6    Fig6Result
	Fig7    Fig7Result
	Fig8    Fig8Result
}

// TestValidateGridResidentPoolDeterminism pins the resident-pool contract
// end to end for the full `validate` grid driver set (§III-A, Figs. 5-8, as
// cmd/validate runs them): one shared executor whose resident workers serve
// every figure's batches must produce results bit-identical to fresh
// serial executors per driver — the reference ordering with no pool at all.
// (The grid runs at smoke size; the drivers and scheduling paths are
// exactly those of -grid paper, which only adds cells.)
func TestValidateGridResidentPoolDeterminism(t *testing.T) {
	run := func(opt Options) validateGridResults {
		var r validateGridResults
		var err error
		if r.SecIIIA, err = SecIIIA(opt); err != nil {
			t.Fatal(err)
		}
		if r.Fig5, err = Fig5(opt); err != nil {
			t.Fatal(err)
		}
		if r.Fig6, err = Fig6(opt); err != nil {
			t.Fatal(err)
		}
		if r.Fig7, err = Fig7(opt); err != nil {
			t.Fatal(err)
		}
		if r.Fig8, err = Fig8(opt); err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Shared wide executor: one resident pool across all five drivers.
	shared := smoke()
	shared.Exec = lab.New(lab.Config{Workers: 8})
	defer shared.Exec.Close()
	resident := run(shared)
	st := shared.Exec.Stats()
	if st.WorkerSpawns != 8 || st.GroupReuses == 0 {
		t.Fatalf("shared campaign pool stats = %+v, want one spawn generation and reused batches", st)
	}

	// Fresh serial executors: each driver builds (and closes) its own
	// Workers-agnostic executor; Workers: 1 never spawns a pool.
	fresh := smoke()
	fresh.Concurrency = 1
	if got := run(fresh); !reflect.DeepEqual(resident, got) {
		t.Fatalf("resident-pool grid diverges from fresh-pool grid:\n%+v\n%+v", resident, got)
	}
}

func TestFig9MCBShapes(t *testing.T) {
	r, err := Fig9MCB(smoke())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mappings) == 0 || len(r.Sizes) == 0 {
		t.Fatal("empty study")
	}
	// Per the paper: more ranks per socket ⇒ degradation at fewer CSThrs.
	p1 := r.Mappings[0]
	pN := r.Mappings[len(r.Mappings)-1]
	if pN.P <= p1.P {
		t.Fatal("mappings not ordered")
	}
	slow := func(s []float64, k int) float64 { return s[k]/s[0] - 1 }
	k := 2
	if len(p1.Storage) > k && len(pN.Storage) > k {
		if slow(pN.Storage, k) <= slow(p1.Storage, k)-0.02 {
			t.Errorf("p=%d not more capacity-sensitive than p=%d at k=%d", pN.P, p1.P, k)
		}
	}
	if len(r.Tables()) != 4 {
		t.Fatalf("tables = %d, want 4", len(r.Tables()))
	}
}

// TestAppStudyDeterministicAndMemoized runs the MCB study serially and on
// a wide pool: the results must be bit-identical, and the executor's memo
// must collapse the study's repeated cells (the size panel's 20k-particle
// p=1 sweeps duplicate the mapping panel's, and every storage/bandwidth
// sweep pair shares its k=0 baseline).
func TestAppStudyDeterministicAndMemoized(t *testing.T) {
	run := func(workers int) (StudyResult, lab.Stats) {
		ex := lab.New(lab.Config{Workers: workers})
		opt := smoke()
		opt.Exec = ex
		r, err := Fig9MCB(opt)
		if err != nil {
			t.Fatal(err)
		}
		return r, ex.Stats()
	}
	serial, serialStats := run(1)
	parallel, parallelStats := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel study diverges from serial:\n%+v\n%+v", serial, parallel)
	}
	// Memo activity must match across concurrency; the pool counters differ
	// by design (a serial executor runs inline and never spawns workers), so
	// blank them before comparing and pin them separately: the parallel
	// study's 8 sweep batches share one resident pool — one spawn generation,
	// every later batch a reuse.
	if parallelStats.WorkerSpawns != 8 || parallelStats.GroupReuses != 7 {
		t.Fatalf("parallel pool stats = %+v, want 8 spawns / 7 batch reuses", parallelStats)
	}
	if serialStats.WorkerSpawns != 0 || serialStats.GroupReuses != 0 {
		t.Fatalf("serial pool stats = %+v, want none", serialStats)
	}
	serialStats.WorkerSpawns, serialStats.GroupReuses = 0, 0
	parallelStats.WorkerSpawns, parallelStats.GroupReuses = 0, 0
	if serialStats != parallelStats {
		t.Fatalf("memo stats differ across concurrency: %+v vs %+v", serialStats, parallelStats)
	}
	// Smoke grid: mappings p∈{1,4} and sizes {20k, 260k} at p=1. Requested
	// cells: p=1 (6+3) + p=4 (5+3, storage clamped to the 4 spare cores) +
	// 20k@p=1 (6+3, all duplicates of the p=1 mapping) + 260k@p=1 (6+3) =
	// 35. Distinct: 35 − 9 (duplicated sweep pair) − 3 (shared baselines of
	// the other pairs) = 23.
	if serialStats.Computed != 23 || serialStats.Hits != 12 {
		t.Fatalf("study stats = %+v, want 23 computed / 12 hits", serialStats)
	}
}

func TestStudyCalibrationsAndProfiles(t *testing.T) {
	opt := smoke()
	capAvail, bwAvail, err := StudyCalibrations(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(capAvail) != maxStorageThreads+1 || len(bwAvail) != maxBandwidthThreads+1 {
		t.Fatalf("calibration lengths %d/%d", len(capAvail), len(bwAvail))
	}
	for k := 1; k < len(capAvail); k++ {
		if capAvail[k] >= capAvail[k-1] {
			t.Fatalf("capacity calibration not decreasing: %v", capAvail)
		}
	}
	study, err := Fig9MCB(opt)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfiles(opt, study, capAvail, bwAvail, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Rows) != len(study.Mappings) {
		t.Fatalf("profile rows = %d", len(prof.Rows))
	}
	for _, row := range prof.Rows {
		if row.CapHighMB < row.CapLowMB || row.BWHighGBs < row.BWLowGBs {
			t.Errorf("inverted bounds: %+v", row)
		}
	}
	// The paper's Fig. 10 trend: spread-out mappings use more bandwidth
	// per process.
	first, last := prof.Rows[0], prof.Rows[len(prof.Rows)-1]
	if first.P < last.P && first.BWHighGBs <= last.BWHighGBs {
		t.Errorf("bandwidth per process should fall as ranks pack: %+v vs %+v", first, last)
	}
	if !strings.Contains(prof.Table().String(), "x8 equiv") {
		t.Error("profile table rendering")
	}
}
