// Package experiments implements one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result with a
// Tables() rendering, so the cmd/validate and cmd/appstudy binaries, the
// root benchmark harness and EXPERIMENTS.md all regenerate the same rows.
package experiments

import (
	"fmt"

	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/units"
)

// Grid selects experiment size.
type Grid int

// Grid levels.
const (
	// GridSmoke is the benchmark-harness size: a few cells per experiment,
	// a few seconds of wall time.
	GridSmoke Grid = iota
	// GridQuick is the default command-line size: reduced grids that still
	// show every trend, tens of seconds.
	GridQuick
	// GridPaper reproduces the paper's full grids (e.g. the 660 synthetic
	// benchmark configurations of §III-C); minutes to hours depending on
	// scale.
	GridPaper
)

// String implements fmt.Stringer.
func (g Grid) String() string {
	switch g {
	case GridSmoke:
		return "smoke"
	case GridQuick:
		return "quick"
	case GridPaper:
		return "paper"
	default:
		return fmt.Sprintf("Grid(%d)", int(g))
	}
}

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the simulated machine by a power of two (1 = the full
	// Xeon20MB geometry). Validation experiments default to 1; application
	// studies default to 8 (see DESIGN.md's scale note).
	Scale int
	// Grid selects the experiment size.
	Grid Grid
	// Concurrency bounds how many experiment cells run at once: 0 selects
	// GOMAXPROCS, 1 runs serially. Results are bit-identical at every
	// setting.
	Concurrency int
	// Progress, when non-nil, is called as cells of a batch complete (with
	// the batch's label, the number done and the batch size), for CLI
	// progress reporting.
	Progress func(label string, done, total int)
	// Exec, when non-nil, is the lab.Executor every driver schedules its
	// cells on (Concurrency and Progress are then ignored). Sharing one
	// executor across drivers also shares its result memo: e.g. the entire
	// Fig. 5 grid is the k=0 slice of Fig. 6's, so a shared executor
	// simulates those cells once.
	Exec *lab.Executor
	// Seed drives all stochastic components.
	Seed uint64
}

// withDefaults fills zero values.
func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// executor returns the shared executor, or builds one for this driver.
// done releases a driver-local executor's resident worker pool when the
// driver finishes; sharing via Exec keeps the pool (and memo) alive for the
// whole campaign, with the owner closing it.
func (o Options) executor() (_ *lab.Executor, done func()) {
	if o.Exec != nil {
		return o.Exec, func() {}
	}
	ex := lab.New(lab.Config{Workers: o.Concurrency, Progress: o.Progress})
	return ex, ex.Close
}

// Spec returns the machine specification for the options.
func (o Options) Spec() machine.Spec {
	return machine.Scaled(o.withDefaults().Scale)
}

// ScaleNote renders the geometry reminder printed with scaled results.
func (o Options) ScaleNote() string {
	o = o.withDefaults()
	if o.Scale == 1 {
		return "machine: Xeon20MB (full geometry)"
	}
	spec := o.Spec()
	return fmt.Sprintf("machine: %s (L3 %s; multiply capacities by %d for Xeon20MB equivalents)",
		spec.Name, units.FormatBytes(spec.L3.Size), o.Scale)
}

// mb renders bytes as a megabyte figure.
func mb(bytes float64) float64 { return bytes / float64(units.MB) }
