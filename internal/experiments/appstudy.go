package experiments

import (
	"fmt"

	"activemem/internal/apps/lulesh"
	"activemem/internal/apps/mcb"
	"activemem/internal/cluster"
	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/report"
	"activemem/internal/workload/interfere"
)

// maxStorageThreads / maxBandwidthThreads mirror the paper's experiment
// limits: up to 5 CSThrs (87% of L3) and 2 BWThrs (32% of bandwidth — more
// would bleed into storage, §III-D).
const (
	maxStorageThreads   = 5
	maxBandwidthThreads = 2
)

// appIters returns (iterations, warmup) per grid level. Warmup must cover
// the cold-start transient of the proxies' largest working sets (the MCB
// tally mesh takes many cycles of random tallies to populate).
func appIters(grid Grid) (int, int) {
	switch grid {
	case GridPaper:
		return 28, 16
	case GridQuick:
		return 18, 10
	default:
		return 8, 4
	}
}

// MappingSweep is one process-to-socket mapping's interference response
// (one curve group of the paper's Figs. 9/11 top panels).
type MappingSweep struct {
	P         int       // ranks per socket
	Storage   []float64 // seconds, indexed by CSThr count
	Bandwidth []float64 // seconds, indexed by BWThr count
}

// SizeSweep is one input size's interference response at one rank per
// socket (the bottom panels of Figs. 9/11).
type SizeSweep struct {
	Label     string
	Storage   []float64
	Bandwidth []float64
}

// StudyResult carries a full application study (Fig. 9 or Fig. 11).
type StudyResult struct {
	Spec     machine.Spec
	App      string
	Mappings []MappingSweep
	Sizes    []SizeSweep
}

// appBuilder constructs the proxy for the study's machine scale.
type appBuilder func(spec machine.Spec) cluster.App

// runAppSweep measures the app at interference levels 0..maxK on ex's
// bounded pool. label must pin the app's full identity (proxy name and
// input size): it keys the executor's memo, so the k=0 baseline of the
// storage and bandwidth sweeps — and any repeated (app, mapping) cell, like
// the p=1 panel shared by a study's mapping and size sweeps — simulates
// exactly once per executor.
func runAppSweep(ex *lab.Executor, opt Options, label string, build appBuilder,
	p int, kind core.Kind, maxK int) ([]float64, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	if room := spec.CoresPerSocket - p; maxK > room {
		maxK = room
	}
	iters, warm := appIters(opt.Grid)
	secs := make([]float64, maxK+1)
	err := ex.RunLabeled(fmt.Sprintf("%s %s sweep p=%d", label, kind, p),
		maxK+1, func(k int) error {
			cfg := cluster.RunConfig{
				Spec:           spec,
				App:            build(spec),
				RanksPerSocket: p,
				Interference:   cluster.Interference{Kind: kind, Threads: k},
				Iterations:     iters,
				Warmup:         warm,
				Homogeneous:    true,
				NoiseStd:       0.005,
				Concurrency:    1, // the cell is already a pool worker
				Seed:           opt.Seed,
			}
			res, err := lab.Memo(ex, clusterCellKey(cfg, label), func() (cluster.Result, error) {
				return cluster.Run(cfg)
			})
			if err != nil {
				return err
			}
			secs[k] = res.Seconds
			return nil
		})
	if err != nil {
		return nil, err
	}
	return secs, nil
}

// clusterCellKey fingerprints one cluster experiment cell from the config
// it actually runs with; label stands in for cfg.App (an interface holding
// fresh allocations, which cannot be hashed), and cfg.Concurrency is
// excluded because it cannot affect the result. k = 0 cells share a
// kind-independent baseline key, mirroring core.ExperimentKey.
func clusterCellKey(cfg cluster.RunConfig, label string) lab.Key {
	base := []any{cfg.Spec, label, cfg.RanksPerSocket, cfg.Iterations, cfg.Warmup,
		cfg.Homogeneous, cfg.NoiseStd, cfg.Prewarm, cfg.Seed}
	if cfg.Interference.Threads == 0 {
		return lab.KeyOf(append(base, "baseline")...)
	}
	return lab.KeyOf(append(base, cfg.Interference.Kind.String(), cfg.Interference.Threads)...)
}

// studyMappings returns the rank-per-socket mappings to sweep.
func studyMappings(grid Grid, totalRanks int) []int {
	var candidates []int
	switch grid {
	case GridPaper:
		candidates = []int{1, 2, 3, 4, 6}
	case GridQuick:
		candidates = []int{1, 2, 4}
	default:
		candidates = []int{1, 4}
	}
	var out []int
	for _, p := range candidates {
		if totalRanks%p == 0 {
			out = append(out, p)
		}
	}
	return out
}

// mcbSizes returns the particle counts to sweep.
func mcbSizes(grid Grid) []int {
	switch grid {
	case GridPaper:
		return []int{20000, 55000, 90000, 160000, 260000}
	case GridQuick:
		return []int{20000, 90000, 260000}
	default:
		return []int{20000, 260000}
	}
}

// luleshEdges returns the cube edges to sweep (full-scale units; the proxy
// scales them to the machine).
func luleshEdges(grid Grid) []int {
	switch grid {
	case GridPaper:
		return []int{22, 26, 30, 32, 36}
	case GridQuick:
		return []int{22, 30, 36}
	default:
		return []int{22, 36}
	}
}

// Fig9MCB runs the MCB study: mapping panel at 20,000 particles and size
// panel at one rank per socket. Particle counts are divided by the machine
// scale (as Lulesh cube edges are), so the particle-vault-to-L3 ratio —
// which controls where bandwidth sensitivity peaks — matches the paper's
// geometry; labels keep the full-scale counts.
func Fig9MCB(opt Options) (StudyResult, error) {
	opt = opt.withDefaults()
	ex, done := opt.executor()
	defer done()
	spec := opt.Spec()
	const ranks = 24
	res := StudyResult{Spec: spec, App: "MCB"}
	buildFor := func(particles int) appBuilder {
		scaled := particles / opt.Scale
		if scaled < ranks {
			scaled = ranks
		}
		return func(spec machine.Spec) cluster.App {
			return mcb.New(mcb.DefaultParams(spec.L3.Size, ranks, scaled))
		}
	}
	labelFor := func(particles int) string { return fmt.Sprintf("mcb,n=%d", particles) }
	for _, p := range studyMappings(opt.Grid, ranks) {
		ms := MappingSweep{P: p}
		var err error
		if ms.Storage, err = runAppSweep(ex, opt, labelFor(20000), buildFor(20000), p, core.Storage, maxStorageThreads); err != nil {
			return res, err
		}
		if ms.Bandwidth, err = runAppSweep(ex, opt, labelFor(20000), buildFor(20000), p, core.Bandwidth, maxBandwidthThreads); err != nil {
			return res, err
		}
		res.Mappings = append(res.Mappings, ms)
	}
	for _, n := range mcbSizes(opt.Grid) {
		ss := SizeSweep{Label: fmt.Sprintf("%dk particles", n/1000)}
		var err error
		if ss.Storage, err = runAppSweep(ex, opt, labelFor(n), buildFor(n), 1, core.Storage, maxStorageThreads); err != nil {
			return res, err
		}
		if ss.Bandwidth, err = runAppSweep(ex, opt, labelFor(n), buildFor(n), 1, core.Bandwidth, maxBandwidthThreads); err != nil {
			return res, err
		}
		res.Sizes = append(res.Sizes, ss)
	}
	return res, nil
}

// Fig11Lulesh runs the Lulesh study: mapping panel on the 22³ cube and cube
// panel at one rank per socket.
func Fig11Lulesh(opt Options) (StudyResult, error) {
	opt = opt.withDefaults()
	ex, done := opt.executor()
	defer done()
	spec := opt.Spec()
	const ranksPerDim = 4 // 64 ranks
	res := StudyResult{Spec: spec, App: "Lulesh"}
	buildFor := func(edge int) appBuilder {
		return func(spec machine.Spec) cluster.App {
			return lulesh.New(lulesh.DefaultParams(spec.L3.Size, ranksPerDim, edge))
		}
	}
	labelFor := func(edge int) string { return fmt.Sprintf("lulesh,edge=%d", edge) }
	for _, p := range studyMappings(opt.Grid, 64) {
		ms := MappingSweep{P: p}
		var err error
		if ms.Storage, err = runAppSweep(ex, opt, labelFor(22), buildFor(22), p, core.Storage, maxStorageThreads); err != nil {
			return res, err
		}
		if ms.Bandwidth, err = runAppSweep(ex, opt, labelFor(22), buildFor(22), p, core.Bandwidth, maxBandwidthThreads); err != nil {
			return res, err
		}
		res.Mappings = append(res.Mappings, ms)
	}
	for _, edge := range luleshEdges(opt.Grid) {
		ss := SizeSweep{Label: fmt.Sprintf("%dx%dx%d", edge, edge, edge)}
		var err error
		if ss.Storage, err = runAppSweep(ex, opt, labelFor(edge), buildFor(edge), 1, core.Storage, maxStorageThreads); err != nil {
			return res, err
		}
		if ss.Bandwidth, err = runAppSweep(ex, opt, labelFor(edge), buildFor(edge), 1, core.Bandwidth, maxBandwidthThreads); err != nil {
			return res, err
		}
		res.Sizes = append(res.Sizes, ss)
	}
	return res, nil
}

// slowdownCells renders a seconds series as baseline + percent slowdowns.
func slowdownCells(secs []float64) []string {
	out := make([]string, len(secs))
	for k, s := range secs {
		if k == 0 || secs[0] == 0 {
			out[k] = fmt.Sprintf("%.3gs", s)
			continue
		}
		out[k] = fmt.Sprintf("+%.1f%%", (s/secs[0]-1)*100)
	}
	return out
}

// Tables renders the study's four panels.
func (r StudyResult) Tables() []*report.Table {
	var out []*report.Table
	maxLen := func(sel func(MappingSweep) []float64) int {
		n := 0
		for _, m := range r.Mappings {
			if len(sel(m)) > n {
				n = len(sel(m))
			}
		}
		return n
	}
	mapPanel := func(title string, sel func(MappingSweep) []float64) *report.Table {
		n := maxLen(sel)
		header := []string{"threads"}
		for _, m := range r.Mappings {
			header = append(header, fmt.Sprintf("p=%d", m.P))
		}
		t := report.NewTable(title, header...)
		for k := 0; k < n; k++ {
			row := []string{fmt.Sprintf("%d", k)}
			for _, m := range r.Mappings {
				s := sel(m)
				if k < len(s) {
					row = append(row, slowdownCells(s)[k])
				} else {
					row = append(row, "-")
				}
			}
			t.Add(row...)
		}
		return t
	}
	out = append(out,
		mapPanel(fmt.Sprintf("Fig. %s top-left: %s vs CSThrs by mapping", r.figNum(), r.App),
			func(m MappingSweep) []float64 { return m.Storage }),
		mapPanel(fmt.Sprintf("Fig. %s top-right: %s vs BWThrs by mapping", r.figNum(), r.App),
			func(m MappingSweep) []float64 { return m.Bandwidth }))

	sizePanel := func(title string, sel func(SizeSweep) []float64) *report.Table {
		header := []string{"threads"}
		n := 0
		for _, s := range r.Sizes {
			header = append(header, s.Label)
			if len(sel(s)) > n {
				n = len(sel(s))
			}
		}
		t := report.NewTable(title, header...)
		for k := 0; k < n; k++ {
			row := []string{fmt.Sprintf("%d", k)}
			for _, s := range r.Sizes {
				series := sel(s)
				if k < len(series) {
					row = append(row, slowdownCells(series)[k])
				} else {
					row = append(row, "-")
				}
			}
			t.Add(row...)
		}
		return t
	}
	out = append(out,
		sizePanel(fmt.Sprintf("Fig. %s bottom-left: %s vs CSThrs by input (p=1)", r.figNum(), r.App),
			func(s SizeSweep) []float64 { return s.Storage }),
		sizePanel(fmt.Sprintf("Fig. %s bottom-right: %s vs BWThrs by input (p=1)", r.figNum(), r.App),
			func(s SizeSweep) []float64 { return s.Bandwidth }))
	return out
}

func (r StudyResult) figNum() string {
	if r.App == "MCB" {
		return "9"
	}
	return "11"
}

// ProfileRow is one mapping's per-process resource bounds.
type ProfileRow struct {
	Label               string
	P                   int
	CapLowMB, CapHighMB float64
	BWLowGBs, BWHighGBs float64
}

// ProfileResult is the Fig. 10 / Fig. 12 content: per-process resource
// consumption derived from a study plus the §III calibrations.
type ProfileResult struct {
	Spec  machine.Spec
	App   string
	Fig   string
	Scale int
	Rows  []ProfileRow
}

// BuildProfiles converts study sweeps into per-process resource bounds
// using the supplied calibrations (the paper's §IV analysis).
func BuildProfiles(opt Options, study StudyResult, capAvail []float64,
	bwAvail []float64, threshold float64) (ProfileResult, error) {
	opt = opt.withDefaults()
	fig := "10"
	if study.App != "MCB" {
		fig = "12"
	}
	res := ProfileResult{Spec: study.Spec, App: study.App, Fig: fig, Scale: opt.Scale}
	for _, m := range study.Mappings {
		storage := core.SweepFromSeconds(core.Storage, study.App, m.Storage)
		bandwidth := core.SweepFromSeconds(core.Bandwidth, study.App, m.Bandwidth)
		prof, err := core.BuildProfile(study.App, m.P, threshold,
			storage, capAvail, bandwidth, bwAvail)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, ProfileRow{
			Label:     fmt.Sprintf("p=%d", m.P),
			P:         m.P,
			CapLowMB:  mb(prof.CapacityLow),
			CapHighMB: mb(prof.CapacityHigh),
			BWLowGBs:  prof.BandwidthLow,
			BWHighGBs: prof.BandwidthHigh,
		})
	}
	return res, nil
}

// Table renders the profile rows, including full-scale equivalents when the
// study ran on a scaled machine.
func (r ProfileResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. %s: %s per-process resource consumption by mapping", r.Fig, r.App),
		"Mapping", "L3/process", "x"+fmt.Sprint(r.Scale)+" equiv", "GB/s per process")
	for _, row := range r.Rows {
		t.Add(row.Label,
			fmt.Sprintf("%.2f-%.2f MB", row.CapLowMB, row.CapHighMB),
			fmt.Sprintf("%.1f-%.1f MB", row.CapLowMB*float64(r.Scale), row.CapHighMB*float64(r.Scale)),
			fmt.Sprintf("%.2f-%.2f", row.BWLowGBs, row.BWHighGBs))
	}
	return t
}

// StudyCalibrations produces the availability tables the profile analysis
// needs: effective capacity per CSThr count (a reduced §III-C3 calibration)
// and available bandwidth per BWThr count (§III-A).
func StudyCalibrations(opt Options) (capAvail, bwAvail []float64, err error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	warmup, window := calibWindows(opt)
	bufs, _ := core.DefaultCalibrationGrid(spec, 2)
	ds := core.Table2Constructors()
	ex, done := opt.executor() // one pool for both calibration ladders
	defer done()
	cal, err := core.CalibrateCapacity(core.CalibrationConfig{
		MeasureConfig:  core.MeasureConfig{Spec: spec, Warmup: warmup, Window: window, Seed: opt.Seed},
		MaxThreads:     maxStorageThreads,
		BufferBytes:    bufs,
		Dists:          []func(int64) dist.Dist{ds[9]}, // uniform: the most stable inversion
		ComputePerLoad: 1,
		ElemSize:       4,
		Exec:           ex,
	})
	if err != nil {
		return nil, nil, err
	}
	bw, err := core.CalibrateBandwidth(
		core.MeasureConfig{Spec: spec, Warmup: 2_000_000, Window: 6_000_000, Seed: opt.Seed},
		maxBandwidthThreads, interfere.BWConfig{}, ex)
	if err != nil {
		return nil, nil, err
	}
	return cal.AvailableBytes(), bw.AvailableGBs, nil
}
