package experiments

import (
	"fmt"

	"activemem/internal/core"
	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/report"
	"activemem/internal/stats"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
)

// The orthogonality checks run one memoized cell per interference level,
// so their row types persist through the executor's disk tier like every
// other experiment result.
func init() {
	lab.RegisterResult[Fig7Row]("experiments.Fig7Row")
	lab.RegisterResult[Fig8Row]("experiments.Fig8Row")
}

// TableI renders the machine description (the paper's Table I).
func TableI(opt Options) string {
	return opt.Spec().TableI()
}

// TableII renders the synthetic access patterns (the paper's Table II) with
// the Σ F² term the EHR model consumes, for a representative buffer.
func TableII(opt Options) *report.Table {
	spec := opt.Spec()
	n := spec.L3.Size * 2 / 4 // 2x L3 buffer of 4-byte elements
	t := report.NewTable("Table II: synthetic access patterns (buffer = 2x L3)",
		"Pattern", "Distribution", "StdDev (elems)", "Σ F(line)²")
	for _, d := range dist.Table2(n) {
		t.Addf(d.Name(), fmt.Sprintf("%T", d), d.StdDev(),
			dist.SumSquaredLineMass(d, spec.LineSize()/4))
	}
	return t
}

// SecIIIAResult is the §III-A bandwidth calibration: consumed and available
// bandwidth per BWThr count (paper: one BWThr = 2.8 GB/s; seven ≈ 100% of
// the 17 GB/s STREAM figure).
type SecIIIAResult struct {
	Spec machine.Spec
	Cal  core.BandwidthCalibration
}

// SecIIIA measures k = 0..7 BWThrs.
func SecIIIA(opt Options) (SecIIIAResult, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	cfg := core.MeasureConfig{Spec: spec, Warmup: 2_000_000, Window: 6_000_000, Seed: opt.Seed}
	max := spec.CoresPerSocket - 1
	ex, done := opt.executor()
	defer done()
	cal, err := core.CalibrateBandwidth(cfg, max, interfere.BWConfig{}, ex)
	if err != nil {
		return SecIIIAResult{}, err
	}
	return SecIIIAResult{Spec: spec, Cal: cal}, nil
}

// Table renders the calibration.
func (r SecIIIAResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("§III-A bandwidth interference calibration (peak %.2f GB/s)", r.Cal.PeakGBs),
		"BWThrs", "Consumed GB/s", "Available GB/s", "% of peak consumed")
	for k := range r.Cal.ConsumedGBs {
		t.Addf(k, r.Cal.ConsumedGBs[k], r.Cal.AvailableGBs[k],
			100*r.Cal.ConsumedGBs[k]/r.Cal.PeakGBs)
	}
	return t
}

// calibGrid returns buffer sizes and distributions per grid level.
func calibGrid(spec machine.Spec, grid Grid) ([]int64, []func(int64) dist.Dist) {
	switch grid {
	case GridPaper:
		return core.DefaultCalibrationGrid(spec, 22)
	case GridQuick:
		bufs, _ := core.DefaultCalibrationGrid(spec, 5)
		return bufs, core.Table2Constructors()
	default: // GridSmoke
		bufs, _ := core.DefaultCalibrationGrid(spec, 2)
		ds := core.Table2Constructors()
		return bufs, []func(int64) dist.Dist{ds[0], ds[3], ds[9]} // Norm4, Exp4, Uni
	}
}

// calibWindows returns warmup/window cycles appropriate to the machine
// scale: steady state needs the L3 population to turn over a few times.
func calibWindows(opt Options) (warmup, window units.Cycles) {
	base := units.Cycles(30_000_000)
	if opt.Grid == GridSmoke {
		base = 15_000_000
	}
	factor := units.Cycles(8 / min64(8, int64(opt.Scale)))
	if opt.Scale == 1 {
		factor = 8
	}
	return base * factor, base * factor * 2 / 5
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Fig5Row is one buffer size of the model-error evaluation.
type Fig5Row struct {
	BufferBytes int64
	MeanAbsErr  float64 // mean |predicted − measured| miss rate over patterns
	StdAbsErr   float64
}

// Fig5Result evaluates Eq. 4 against the simulator with no interference
// (the paper's Fig. 5: error < ~10%, shrinking as buffers grow).
type Fig5Result struct {
	Spec machine.Spec
	Rows []Fig5Row
}

// Fig5 runs the model evaluation.
func Fig5(opt Options) (Fig5Result, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	bufs, dists := calibGrid(spec, opt.Grid)
	warmup, window := calibWindows(opt)
	ex, done := opt.executor()
	defer done()
	cal, err := core.CalibrateCapacity(core.CalibrationConfig{
		MeasureConfig:  core.MeasureConfig{Spec: spec, Warmup: warmup, Window: window, Seed: opt.Seed},
		MaxThreads:     0,
		BufferBytes:    bufs,
		Dists:          dists,
		ComputePerLoad: 1,
		ElemSize:       4,
		Exec:           ex,
	})
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{Spec: spec}
	perBuf := map[int64][]float64{}
	for _, s := range cal.Points[0].Samples {
		perBuf[s.BufferBytes] = append(perBuf[s.BufferBytes],
			abs(s.PredictedMiss-s.MeasuredMiss))
	}
	for _, b := range bufs {
		mean, std := stats.MeanStd(perBuf[b])
		res.Rows = append(res.Rows, Fig5Row{BufferBytes: b, MeanAbsErr: mean, StdAbsErr: std})
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Table renders the evaluation.
func (r Fig5Result) Table() *report.Table {
	t := report.NewTable("Fig. 5: |predicted - measured| L3 miss rate (mean ± σ over patterns)",
		"Buffer", "Mean abs err", "+1 σ")
	for _, row := range r.Rows {
		t.Addf(units.FormatBytes(row.BufferBytes), row.MeanAbsErr, row.MeanAbsErr+row.StdAbsErr)
	}
	return t
}

// Fig6Result is the effective-capacity evaluation: for each compute
// intensity and CSThr count, the capacity Eq. 4 attributes to the
// benchmarks (the paper's Fig. 6: ≈{20,15,12,7,4,3} MB for k = 0..5).
type Fig6Result struct {
	Spec       machine.Spec
	Computes   []int
	PerCompute []core.CapacityCalibration // indexed like Computes
}

// Fig6 runs the evaluation.
func Fig6(opt Options) (Fig6Result, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	res := Fig6Result{Spec: spec}
	switch opt.Grid {
	case GridPaper:
		res.Computes = []int{1, 10, 100}
	case GridQuick:
		res.Computes = []int{1, 10}
	default:
		res.Computes = []int{1}
	}
	bufs, dists := calibGrid(spec, opt.Grid)
	warmup, window := calibWindows(opt)
	maxThreads := 5
	if opt.Grid == GridSmoke {
		maxThreads = 3
	}
	ex, done := opt.executor() // shared across compute intensities (and callers via opt.Exec)
	defer done()
	for _, c := range res.Computes {
		cal, err := core.CalibrateCapacity(core.CalibrationConfig{
			MeasureConfig:  core.MeasureConfig{Spec: spec, Warmup: warmup, Window: window, Seed: opt.Seed},
			MaxThreads:     maxThreads,
			BufferBytes:    bufs,
			Dists:          dists,
			ComputePerLoad: c,
			ElemSize:       4,
			Exec:           ex,
		})
		if err != nil {
			return Fig6Result{}, err
		}
		res.PerCompute = append(res.PerCompute, cal)
	}
	return res, nil
}

// Tables renders one table per compute intensity.
func (r Fig6Result) Tables() []*report.Table {
	var out []*report.Table
	for i, c := range r.Computes {
		cal := r.PerCompute[i]
		t := report.NewTable(
			fmt.Sprintf("Fig. 6: effective L3 capacity (MB) vs CSThrs, %d adds/load", c),
			"CSThrs", "Mean MB", "σ MB", "Pinned by CSThrs MB")
		phys := float64(r.Spec.L3.Size)
		for _, p := range cal.Points {
			t.Addf(p.Threads, mb(p.MeanBytes), mb(p.StdBytes), mb(phys-p.MeanBytes))
		}
		out = append(out, t)
	}
	return out
}

// Fig7Row is one CSThr level of the BWThr orthogonality check.
type Fig7Row struct {
	CSThrs        int
	BWGBs         float64
	L3MissRate    float64
	SecondsPer1e7 float64 // time for 10^7 main-loop iterations (44 accesses each)
}

// Fig7Result is the paper's Fig. 7: a BWThr's metrics must stay flat as
// CSThrs are added.
type Fig7Result struct {
	Spec machine.Spec
	Rows []Fig7Row
}

// Fig7 runs the orthogonality check. Each interference level is one
// memoized cell on the options' executor, so levels run on the bounded
// pool and a warm cache serves the whole figure without simulating.
func Fig7(opt Options) (Fig7Result, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	res := Fig7Result{Spec: spec, Rows: make([]Fig7Row, 6)}
	warm := csWarmup(spec)
	const window = units.Cycles(6_000_000)
	ex, done := opt.executor()
	defer done()
	err := ex.RunLabeled("Fig. 7 BWThr vs CSThrs", len(res.Rows), func(k int) error {
		row, err := lab.Memo(ex, lab.KeyOf(spec, opt.Seed, "fig7", warm, window, k),
			func() (Fig7Row, error) { return fig7Cell(spec, opt.Seed, warm, window, k), nil })
		if err != nil {
			return err
		}
		res.Rows[k] = row
		return nil
	})
	if err != nil {
		return Fig7Result{}, err
	}
	return res, nil
}

// fig7Cell measures one BWThr against k CSThrs.
func fig7Cell(spec machine.Spec, seed uint64, warm, window units.Cycles, k int) Fig7Row {
	h := spec.NewSocket(seed)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())
	bw := interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, bw, seed+1)
	for i := 0; i < k; i++ {
		e.PlaceDaemon(1+i, interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc),
			seed+10+uint64(i))
	}
	e.RunUntil(warm)
	workBefore := e.Ctx(0).Work()
	h.ResetStats()
	e.RunUntil(warm + window)
	ctr := h.PerCore[0]
	accesses := e.Ctx(0).Work() - workBefore
	secPerAccess := spec.Clock.Seconds(window) / float64(accesses)
	return Fig7Row{
		CSThrs: k,
		// Eq. 1 of the paper: BW = line size × #misses / time (demand
		// fills only, excluding writebacks of other threads' lines).
		BWGBs:         spec.Clock.BandwidthGBs(ctr.MemAccs*spec.LineSize(), window),
		L3MissRate:    ctr.L3MissRate(),
		SecondsPer1e7: secPerAccess * 44 * 1e7,
	}
}

// Table renders the check.
func (r Fig7Result) Table() *report.Table {
	t := report.NewTable("Fig. 7: BWThr behaviour vs concurrent CSThrs (must stay flat)",
		"CSThrs", "BWThr GB/s", "BWThr L3 miss", "s / 10^7 loop iters")
	for _, row := range r.Rows {
		t.Addf(row.CSThrs, row.BWGBs, row.L3MissRate, row.SecondsPer1e7)
	}
	return t
}

// Fig8Row is one BWThr level of the CSThr orthogonality check.
type Fig8Row struct {
	BWThrs     int
	CSGBs      float64
	L3MissRate float64
	NsPerOp    float64 // read + add + write
}

// Fig8Result is the paper's Fig. 8: a CSThr tolerates 1-2 BWThrs but
// degrades at 3+, bounding how much bandwidth can be stolen independently.
type Fig8Result struct {
	Spec machine.Spec
	Rows []Fig8Row
}

// Fig8 runs the opposite orthogonality check, cell-per-level like Fig7.
func Fig8(opt Options) (Fig8Result, error) {
	opt = opt.withDefaults()
	spec := opt.Spec()
	res := Fig8Result{Spec: spec, Rows: make([]Fig8Row, 6)}
	warm := csWarmup(spec)
	const window = units.Cycles(6_000_000)
	ex, done := opt.executor()
	defer done()
	err := ex.RunLabeled("Fig. 8 CSThr vs BWThrs", len(res.Rows), func(k int) error {
		row, err := lab.Memo(ex, lab.KeyOf(spec, opt.Seed, "fig8", warm, window, k),
			func() (Fig8Row, error) { return fig8Cell(spec, opt.Seed, warm, window, k), nil })
		if err != nil {
			return err
		}
		res.Rows[k] = row
		return nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	return res, nil
}

// fig8Cell measures one CSThr against k BWThrs.
func fig8Cell(spec machine.Spec, seed uint64, warm, window units.Cycles, k int) Fig8Row {
	h := spec.NewSocket(seed)
	e := engine.New(h, spec.MSHRs)
	alloc := mem.NewAlloc(spec.LineSize())
	cs := interfere.NewCSThr(interfere.DefaultCSConfig(spec.L3.Size), alloc)
	e.PlaceDaemon(0, cs, seed+1)
	for i := 0; i < k; i++ {
		e.PlaceDaemon(1+i, interfere.NewBWThr(interfere.DefaultBWConfig(spec.L3.Size), alloc),
			seed+10+uint64(i))
	}
	e.RunUntil(warm)
	workBefore := e.Ctx(0).Work()
	h.ResetStats()
	e.RunUntil(warm + window)
	ctr := h.PerCore[0]
	ops := e.Ctx(0).Work() - workBefore
	return Fig8Row{
		BWThrs:     k,
		CSGBs:      spec.Clock.BandwidthGBs(ctr.BusBytes, window),
		L3MissRate: ctr.L3MissRate(),
		NsPerOp:    spec.Clock.Seconds(window) / float64(ops) * 1e9,
	}
}

// Table renders the check.
func (r Fig8Result) Table() *report.Table {
	t := report.NewTable("Fig. 8: CSThr behaviour vs concurrent BWThrs (flat to 2, degrades at 3+)",
		"BWThrs", "CSThr GB/s", "CSThr L3 miss", "ns / read+add+write")
	for _, row := range r.Rows {
		t.Addf(row.BWThrs, row.CSGBs, row.L3MissRate, row.NsPerOp)
	}
	return t
}

// csWarmup covers the CSThr coupon-collector bound at the machine's scale.
func csWarmup(spec machine.Spec) units.Cycles {
	lines := spec.L3.Size / 5 / spec.LineSize()
	return units.Cycles(lines * 700)
}
