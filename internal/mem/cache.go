package mem

import (
	"fmt"
	"math/bits"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

// Policy selects the replacement policy of a cache. The paper's analysis
// assumes LRU-like behaviour; FIFO and Random are provided for the ablation
// benches that check how much of the CSThr pinning effect depends on it.
type Policy uint8

// Replacement policies.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicyFIFO:
		return "FIFO"
	case PolicyRandom:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string       // e.g. "L1D", "L3"
	Size     int64        // total capacity in bytes
	LineSize int64        // bytes per line (power of two)
	Assoc    int          // ways per set
	Latency  units.Cycles // hit latency
	Policy   Policy
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int64 {
	return c.Size / (c.LineSize * int64(c.Assoc))
}

// Validate checks the geometry: positive sizes, power-of-two line size and
// set count, and capacity divisible into whole sets.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*int64(c.Assoc)) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line", c.Name, c.Size)
	}
	if c.Assoc > 32 {
		return fmt.Errorf("mem: %s: associativity %d exceeds the supported 32 ways", c.Name, c.Assoc)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events. Demand accesses split into Hits and
// Misses; Evictions counts replaced valid lines; Writebacks counts dirty
// lines leaving this cache; Invalidations counts inclusive back-invalidates.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Writebacks    int64
	Invalidations int64
}

// Accesses returns demand accesses (hits + misses).
func (s CacheStats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s CacheStats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// invalidTag marks an empty way in the packed tag array.
const invalidTag int32 = -1

// maxTagLine is the largest line number a packed tag can hold.
const maxTagLine = Line(1)<<31 - 1

// Cache is a set-associative cache. It tracks only line presence and
// recency, not data contents. All methods are single-goroutine; a socket's
// hierarchy is always simulated by one engine.
//
// The way state is laid out structure-of-arrays: the tag array is a packed
// []int32 so a set scan — the operation every access, lookup, invalidate
// and prefetch filter performs — touches at most two host cache lines for a
// 20-way set, while the replacement metadata lives in parallel arrays that
// exist only for the policy that reads them (recency stamps for LRU,
// insertion stamps for FIFO, neither for Random). Stamps are 32-bit —
// halving the hottest random-access arrays — with a periodic renumbering
// pass (see renumber) that compacts them order-preservingly before the
// sequence counter can wrap.
type Cache struct {
	cfg       CacheConfig
	sets      int64
	setMask   int64
	assoc     int64
	lines     []int32  // packed tags, sets × assoc row-major; invalidTag = empty
	lastUse   []uint32 // LRU recency stamps (nil unless PolicyLRU)
	insBy     []uint32 // FIFO insertion stamps (nil unless PolicyFIFO)
	dirty     []bool   // dirtiness, parallel to lines
	empty     []uint32 // per-set bitmask of empty ways (bit i = way base+i)
	emptyWays int64    // total empty ways; 0 lets fill skip the mask probe
	seq       uint32   // monotone access sequence used for LRU/FIFO ordering
	renumbers int64    // completed stamp-renumbering passes (telemetry/tests)
	rng       *xrand.Rand

	// filter, when non-nil, is a shared membership filter kept in sync with
	// this cache's contents; the hierarchy attaches one to the private
	// caches so inclusive back-invalidation can skip sockets-worth of set
	// scans for lines provably absent from every private cache.
	filter *presenceFilter

	// Stats accumulates event counts; callers may reset it between
	// measurement windows.
	Stats CacheStats
}

// NewCache builds a cache from cfg; it panics on an invalid geometry
// (machine construction is programmer error territory, matching how the
// stdlib treats bad regexp in MustCompile).
func NewCache(cfg CacheConfig, seed uint64) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets() * int64(cfg.Assoc)
	c := &Cache{
		cfg:       cfg,
		sets:      cfg.Sets(),
		setMask:   cfg.Sets() - 1,
		assoc:     int64(cfg.Assoc),
		lines:     make([]int32, n),
		dirty:     make([]bool, n),
		empty:     make([]uint32, cfg.Sets()),
		emptyWays: n,
		rng:       xrand.New(seed),
	}
	switch cfg.Policy {
	case PolicyLRU:
		c.lastUse = make([]uint32, n)
	case PolicyFIFO:
		c.insBy = make([]uint32, n)
	}
	for i := range c.lines {
		c.lines[i] = invalidTag
	}
	allEmpty := uint32(1)<<uint(cfg.Assoc) - 1
	for i := range c.empty {
		c.empty[i] = allEmpty
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// tagOf converts a line to its packed tag, rejecting lines beyond the tag
// range (the simulated address spaces stay far below 128 GB of 64-byte
// lines, so the check is a never-taken branch on the hot path).
func tagOf(line Line) int32 {
	if uint64(line) > uint64(maxTagLine) {
		panic(fmt.Sprintf("mem: line %d outside the packed tag range", line))
	}
	return int32(line)
}

// setOf returns the index of line's set.
func (c *Cache) setOf(line Line) int64 {
	return int64(line) & c.setMask
}

// find scans line's set for a hit, returning the way index or -1. The scan
// touches only the packed tag array; empty ways are tracked separately, so
// the miss path never rescans for a free slot.
func (c *Cache) find(tag int32, base int64) int64 {
	ws := c.lines[base : base+c.assoc]
	for i, l := range ws {
		if l == tag {
			return base + int64(i)
		}
	}
	return -1
}

// Lookup reports whether line is present, without disturbing recency or
// statistics. It is the probe used by prefetch filtering and tests.
func (c *Cache) Lookup(line Line) bool {
	return c.find(tagOf(line), c.setOf(line)*c.assoc) >= 0
}

// stamp records the use of way i for the replacement policy that cares.
func (c *Cache) stamp(i int64) {
	if c.lastUse != nil {
		c.lastUse[i] = c.seq
	}
}

// tick advances the access sequence counter, renumbering all stamps first
// when the counter is about to exhaust the 32-bit stamp space. The branch is
// taken once per 2³²−1 accesses and perfectly predicted otherwise.
func (c *Cache) tick() {
	if c.seq == ^uint32(0) {
		c.renumber()
	}
	c.seq++
}

// renumber compacts the replacement stamps so the sequence counter can
// restart far below the 32-bit limit. Victim selection (see victim) compares
// stamps only within one set, minimising the packed (stamp, way) key, so
// replacing each set's stamps by their dense rank in exactly that order
// preserves every future eviction decision bit-for-bit. Stamps of empty ways
// participate harmlessly: they are overwritten on fill and never read by
// victim, which runs only on full sets.
func (c *Cache) renumber() {
	c.renumbers++
	stamps := c.lastUse
	if stamps == nil {
		stamps = c.insBy
	}
	if stamps == nil { // PolicyRandom keeps no stamps
		c.seq = 0
		return
	}
	a := int(c.assoc)
	var order [32]int64 // Assoc ≤ 32, enforced by CacheConfig.Validate
	for base := 0; base < len(stamps); base += a {
		ws := stamps[base : base+a : base+a]
		for i := 0; i < a; i++ {
			order[i] = int64(i)
		}
		// Insertion sort by (stamp, way) — a strict total order, and the
		// exact key victim minimises. Stamps of valid ways are distinct
		// (each sequence value stamps at most one way), so ties can only
		// involve cleared ways, whose order is irrelevant but still fixed.
		for i := 1; i < a; i++ {
			o := order[i]
			j := i
			for ; j > 0; j-- {
				p := order[j-1]
				if ws[p] < ws[o] || (ws[p] == ws[o] && p < o) {
					break
				}
				order[j] = p
			}
			order[j] = o
		}
		for r, w := range order[:a] {
			ws[w] = uint32(r) + 1
		}
	}
	c.seq = uint32(a) // the next tick stamps above every assigned rank
}

// fill installs line into set (whose first way index is base) after a
// failed find, reusing the lowest empty way when one exists and otherwise
// evicting the policy's victim. It is the single insertion path shared by
// demand misses, writeback installs and prefetch fills; only the dirty bit
// differs between them.
func (c *Cache) fill(set, base int64, tag int32, dirty bool) (victim Line, victimDirty bool) {
	var slot int64
	if c.emptyWays > 0 {
		if mask := c.empty[set]; mask != 0 {
			w := int64(bits.TrailingZeros32(mask))
			c.empty[set] = mask &^ (1 << uint(w))
			c.emptyWays--
			slot = base + w
			victim = InvalidLine
			goto install
		}
	}
	slot = c.victim(base)
	victim, victimDirty = Line(c.lines[slot]), c.dirty[slot]
	c.Stats.Evictions++
	if victimDirty {
		c.Stats.Writebacks++
	}
	if c.filter != nil {
		c.filter.remove(victim)
	}
install:
	c.lines[slot] = tag
	if c.lastUse != nil {
		c.lastUse[slot] = c.seq
	} else if c.insBy != nil {
		c.insBy[slot] = c.seq
	}
	c.dirty[slot] = dirty
	if c.filter != nil {
		c.filter.add(Line(tag))
	}
	return victim, victimDirty
}

// Access performs a demand access to line. On a hit it refreshes recency
// (and dirtiness for writes) and returns hit=true. On a miss it inserts the
// line, evicting a victim if the set was full, and returns the victim (or
// InvalidLine) along with its dirtiness so the caller can cascade
// writebacks and inclusive invalidations.
func (c *Cache) Access(line Line, write bool) (hit bool, victim Line, victimDirty bool) {
	c.tick()
	tag := tagOf(line)
	set := c.setOf(line)
	base := set * c.assoc
	if i := c.find(tag, base); i >= 0 {
		c.stamp(i)
		if write {
			c.dirty[i] = true
		}
		c.Stats.Hits++
		return true, InvalidLine, false
	}
	c.Stats.Misses++
	victim, victimDirty = c.fill(set, base, tag, write)
	return false, victim, victimDirty
}

// InsertWriteback installs a line arriving from an upper level's writeback.
// It marks the line dirty but does not count as a demand hit or miss. The
// returned victim allows cascading, exactly as for Access.
func (c *Cache) InsertWriteback(line Line) (victim Line, victimDirty bool) {
	c.tick()
	tag := tagOf(line)
	set := c.setOf(line)
	base := set * c.assoc
	if i := c.find(tag, base); i >= 0 {
		c.dirty[i] = true
		// A writeback is not a use by the program; recency unchanged.
		return InvalidLine, false
	}
	return c.fill(set, base, tag, true)
}

// InsertClean installs a line without marking it dirty and without demand
// statistics; it is used for prefetch fills.
func (c *Cache) InsertClean(line Line) (victim Line, victimDirty bool) {
	c.tick()
	tag := tagOf(line)
	set := c.setOf(line)
	base := set * c.assoc
	if c.find(tag, base) >= 0 {
		return InvalidLine, false
	}
	return c.fill(set, base, tag, false)
}

// victim picks the way to evict in line's (full) set according to the
// policy. The LRU/FIFO stamp scans pack (stamp, way) into one key so the
// running minimum compiles to conditional moves instead of unpredictable
// branches; ties break toward the lowest way, matching a first-wins linear
// scan.
func (c *Cache) victim(base int64) int64 {
	stamps := c.lastUse
	if stamps == nil {
		if c.insBy == nil { // PolicyRandom
			return base + int64(c.rng.Intn(c.cfg.Assoc))
		}
		stamps = c.insBy
	}
	ws := stamps[base : base+c.assoc]
	best := int64(1<<63 - 1)
	for i, s := range ws {
		k := int64(s)<<5 | int64(i)
		m := (k - best) >> 63 // branch-free running minimum
		best += (k - best) & m
	}
	return base + best&31
}

// Invalidate removes line if present, returning whether it was present and
// whether it was dirty. Used for inclusive back-invalidation.
func (c *Cache) Invalidate(line Line) (present, dirty bool) {
	set := c.setOf(line)
	base := set * c.assoc
	if i := c.find(tagOf(line), base); i >= 0 {
		present, dirty = true, c.dirty[i]
		c.clearWay(set, i)
		c.Stats.Invalidations++
		return
	}
	return false, false
}

// clearWay resets way i of set to the empty state.
func (c *Cache) clearWay(set, i int64) {
	if c.lines[i] != invalidTag {
		if c.filter != nil {
			c.filter.remove(Line(c.lines[i]))
		}
		c.emptyWays++
		c.empty[set] |= 1 << uint(i-set*c.assoc)
	}
	c.lines[i] = invalidTag
	if c.lastUse != nil {
		c.lastUse[i] = 0
	} else if c.insBy != nil {
		c.insBy[i] = 0
	}
	c.dirty[i] = false
}

// Occupancy returns the number of valid lines currently held.
func (c *Cache) Occupancy() int64 {
	return c.sets*c.assoc - c.emptyWays
}

// CountLinesIn returns how many resident lines fall in [lo, hi). It lets
// validation tests measure how much capacity a given workload's buffer is
// actually pinning — the quantity the paper calls the thread's storage use.
func (c *Cache) CountLinesIn(lo, hi Line) int64 {
	var n int64
	for _, t := range c.lines {
		if l := Line(t); t != invalidTag && l >= lo && l < hi {
			n++
		}
	}
	return n
}

// Flush invalidates the entire cache without touching statistics.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.clearWay(int64(i)/c.assoc, int64(i))
	}
}

// presenceFilter is an exact counting membership filter over hashed line
// slots: add/remove keep per-slot counts, so mayContain has no false
// negatives and a small false-positive rate. The hierarchy keeps one across
// all private caches to prune inclusive back-invalidation scans. A socket
// holds a few thousand private lines over 64k slots, so uint8 counts never
// come near saturation and the table stays host-cache resident.
type presenceFilter struct {
	counts [1 << 16]uint8
}

// presenceSlot folds a line into its filter slot. The low 16 bits pass
// through unpermuted, so the contiguous line runs the allocator hands out
// occupy contiguous filter slots and the filter's host-cache footprint
// tracks the simulated working set instead of scattering across the whole
// 64 KB table (a multiplicative hash here cost more in host cache misses
// than it saved in false positives). Slot choice only moves the
// false-positive rate: counts are exact per slot, so mayContain still has
// no false negatives and simulated behaviour is unchanged.
func presenceSlot(l Line) uint64 {
	z := uint64(l)
	return (z ^ z>>16) & (1<<16 - 1)
}

func (f *presenceFilter) add(l Line)    { f.counts[presenceSlot(l)]++ }
func (f *presenceFilter) remove(l Line) { f.counts[presenceSlot(l)]-- }

func (f *presenceFilter) mayContain(l Line) bool {
	return f.counts[presenceSlot(l)] != 0
}
