package mem

import (
	"fmt"
	"math/bits"
	"unsafe"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

// Policy selects the replacement policy of a cache. The paper's analysis
// assumes LRU-like behaviour; FIFO and Random are provided for the ablation
// benches that check how much of the CSThr pinning effect depends on it.
type Policy uint8

// Replacement policies.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicyFIFO:
		return "FIFO"
	case PolicyRandom:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string       // e.g. "L1D", "L3"
	Size     int64        // total capacity in bytes
	LineSize int64        // bytes per line (power of two)
	Assoc    int          // ways per set
	Latency  units.Cycles // hit latency
	Policy   Policy
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int64 {
	return c.Size / (c.LineSize * int64(c.Assoc))
}

// Validate checks the geometry: positive sizes, power-of-two line size and
// set count, and capacity divisible into whole sets.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*int64(c.Assoc)) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line", c.Name, c.Size)
	}
	if c.Assoc > 32 {
		return fmt.Errorf("mem: %s: associativity %d exceeds the supported 32 ways", c.Name, c.Assoc)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events. Demand accesses split into Hits and
// Misses; Evictions counts replaced valid lines; Writebacks counts dirty
// lines leaving this cache; Invalidations counts inclusive back-invalidates.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Writebacks    int64
	Invalidations int64
}

// Accesses returns demand accesses (hits + misses).
func (s CacheStats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s CacheStats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// invalidTag marks an empty way in the packed tag array; invalidTagWord is
// its bit pattern as stored in a tile word.
const invalidTag int32 = -1

const invalidTagWord = ^uint32(0)

// maxTagLine is the largest line number a packed tag can hold.
const maxTagLine = Line(1)<<31 - 1

// Tile layout: each set's metadata is packed into one contiguous,
// 64-byte-aligned block of uint32 words so that the find → stamp → victim
// → fill sequence of one access walks one or two host cache lines instead
// of three parallel arrays ~160 KB apart (the profiled cost of the CSThr
// ladder — the simulator of a memory system was itself memory-bound).
//
//	word 0                      per-set bitmask of empty ways
//	word 1                      per-set bitmask of dirty ways
//	words 2 .. 2+assoc-1        packed tags (int32; invalidTag = empty)
//	words 2+assoc .. 2+2*assoc-1  policy stamps (only for LRU/FIFO)
//
// The stride between tiles is rounded up to a whole number of 64-byte
// blocks, so tiles never share a host line and the default geometries pack
// tightly: a 4-way stamped set is exactly one line, an 8-way stamped set
// two, the Xeon's 20-way L3 set three adjacent lines (against up to eight
// scattered ones in the previous parallel-array layout).
const (
	tileEmpty = 0 // word index of the empty-way mask
	tileDirty = 1 // word index of the dirty-way mask
	tileTags  = 2 // first tag word
)

// tileWordsPerBlock is the tile stride quantum: 16 uint32 words = 64 bytes.
const tileWordsPerBlock = 16

// probeKind selects what a fused probe does on a hit and which dirty state
// an install leaves behind; it folds the three insertion paths (demand
// access, writeback install, prefetch fill) into one walk of the tile.
type probeKind uint8

const (
	probeDemand    probeKind = iota // stamp recency on LRU hits; install dirty = write
	probeWriteback                  // dirty the hit way, recency untouched; install dirty
	probeClean                      // hits are no-ops; install clean
)

// Cache is a set-associative cache. It tracks only line presence and
// recency, not data contents. All methods are single-goroutine; a socket's
// hierarchy is always simulated by one engine.
//
// The way state lives in per-set interleaved tiles (see the layout above):
// tags, policy stamps and the empty/dirty way masks of one set share one
// 64-byte-aligned block, so every operation on a set — the hit scan, the
// recency stamp, the victim scan and the install — stays within a couple
// of adjacent host cache lines. Stamps are 32-bit — halving the hottest
// random-access state — with a periodic renumbering pass (see renumber)
// that compacts them order-preservingly before the sequence counter can
// wrap.
type Cache struct {
	cfg      CacheConfig
	sets     int64
	setMask  int64
	assoc    int64
	stride   int64    // uint32 words per set tile (multiple of tileWordsPerBlock)
	tiles    []uint32 // set-interleaved metadata tiles, 64-byte aligned
	lruStamp bool     // stamp hits (PolicyLRU)
	stamped  bool     // tiles carry a stamp region (PolicyLRU or PolicyFIFO)

	emptyWays int64  // total empty ways across all sets
	seq       uint32 // monotone access sequence used for LRU/FIFO ordering
	renumbers int64  // completed stamp-renumbering passes (telemetry/tests)
	mruWay    int64  // way touched by the last probe (see storeUpgrade)
	rng       *xrand.Rand

	// filter, when non-nil, is a shared membership filter kept in sync with
	// this cache's contents; the hierarchy attaches one to the private
	// caches so inclusive back-invalidation can skip sockets-worth of set
	// scans for lines provably absent from every private cache.
	filter *presenceFilter

	// Stats accumulates event counts; callers may reset it between
	// measurement windows.
	Stats CacheStats
}

// NewCache builds a cache from cfg; it panics on an invalid geometry
// (machine construction is programmer error territory, matching how the
// stdlib treats bad regexp in MustCompile).
func NewCache(cfg CacheConfig, seed uint64) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     cfg.Sets(),
		setMask:  cfg.Sets() - 1,
		assoc:    int64(cfg.Assoc),
		lruStamp: cfg.Policy == PolicyLRU,
		stamped:  cfg.Policy == PolicyLRU || cfg.Policy == PolicyFIFO,
		rng:      xrand.New(seed),
	}
	words := int64(tileTags) + c.assoc
	if c.stamped {
		words += c.assoc
	}
	c.stride = (words + tileWordsPerBlock - 1) &^ (tileWordsPerBlock - 1)
	total := c.sets * c.stride
	// Over-allocate by one block and slice at the first 64-byte boundary so
	// every tile starts a host cache line.
	raw := make([]uint32, total+tileWordsPerBlock)
	off := int64(0)
	if mis := uintptr(unsafe.Pointer(&raw[0])) & 63; mis != 0 {
		off = int64(64-mis) / 4
	}
	c.tiles = raw[off : off+total : off+total]
	c.emptyWays = c.sets * c.assoc
	allEmpty := uint32(1)<<uint(cfg.Assoc) - 1
	for s := int64(0); s < c.sets; s++ {
		tile := c.tiles[s*c.stride:]
		tile[tileEmpty] = allEmpty
		for w := int64(0); w < c.assoc; w++ {
			tile[tileTags+w] = invalidTagWord
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// tagOf converts a line to its packed tag, rejecting lines beyond the tag
// range (the simulated address spaces stay far below 128 GB of 64-byte
// lines, so the check is a never-taken branch on the hot path).
func tagOf(line Line) int32 {
	if uint64(line) > uint64(maxTagLine) {
		panic(fmt.Sprintf("mem: line %d outside the packed tag range", line))
	}
	return int32(line)
}

// setOf returns the index of line's set.
func (c *Cache) setOf(line Line) int64 {
	return int64(line) & c.setMask
}

// tileOf returns the metadata tile of tag's set (full slice expression so
// the compiler knows scans cannot run past the tile).
func (c *Cache) tileOf(tag int32) []uint32 {
	base := (int64(tag) & c.setMask) * c.stride
	return c.tiles[base : base+c.stride : base+c.stride]
}

// Lookup reports whether line is present, without disturbing recency or
// statistics. It is the probe used by prefetch filtering and tests.
func (c *Cache) Lookup(line Line) bool {
	return c.lookupTag(tagOf(line))
}

// lookupTag is Lookup with the tag range check already performed.
func (c *Cache) lookupTag(tag int32) bool {
	tile := c.tileOf(tag)
	utag := uint32(tag)
	for _, tg := range tile[tileTags : tileTags+c.assoc] {
		if tg == utag {
			return true
		}
	}
	return false
}

// probe is the fused access path: one walk of the set's tile resolves hit
// detection, recency stamping, dirtiness, empty-way reuse, victim choice
// and the install, according to kind. All statistics are counted here —
// demand hits/misses for probeDemand, eviction and writeback counts on
// every insertion path — so the hierarchy drives each level through this
// single call. tag must come from tagOf (or be a tag round-tripped out of
// a cache).
func (c *Cache) probe(tag int32, write bool, kind probeKind) (hit bool, victim Line, victimDirty bool) {
	if c.seq == ^uint32(0) {
		c.renumber()
	}
	c.seq++
	tile := c.tileOf(tag)
	a := c.assoc
	utag := uint32(tag)
	for i, tg := range tile[tileTags : tileTags+a] {
		if tg != utag {
			continue
		}
		c.mruWay = int64(i)
		switch kind {
		case probeDemand:
			c.Stats.Hits++
			if c.lruStamp {
				tile[tileTags+a+int64(i)] = c.seq
			}
			if write {
				tile[tileDirty] |= 1 << uint(i)
			}
		case probeWriteback:
			// A writeback is not a use by the program; recency unchanged.
			tile[tileDirty] |= 1 << uint(i)
		}
		return true, InvalidLine, false
	}
	if kind == probeDemand {
		c.Stats.Misses++
	}

	// Miss: install into the lowest empty way when one exists, otherwise
	// evict the policy's victim — the stamps scanned for it sit in the same
	// tile the hit scan just walked.
	var w int64
	if mask := tile[tileEmpty]; mask != 0 {
		w = int64(bits.TrailingZeros32(mask))
		tile[tileEmpty] = mask &^ (1 << uint(w))
		c.emptyWays--
		victim = InvalidLine
	} else {
		w = c.victimWay(tile)
		victim = Line(int32(tile[tileTags+w]))
		victimDirty = tile[tileDirty]>>uint(w)&1 != 0
		c.Stats.Evictions++
		if victimDirty {
			c.Stats.Writebacks++
		}
		if c.filter != nil {
			c.filter.remove(victim)
		}
	}
	c.mruWay = w
	tile[tileTags+w] = utag
	if c.stamped {
		tile[tileTags+a+w] = c.seq
	}
	dirty := kind == probeWriteback || (kind == probeDemand && write)
	if dirty {
		tile[tileDirty] |= 1 << uint(w)
	} else {
		tile[tileDirty] &^= 1 << uint(w)
	}
	if c.filter != nil {
		c.filter.add(Line(tag))
	}
	return false, victim, victimDirty
}

// storeUpgrade serves a demand store that hits the way the previous probe
// touched, skipping the tag scan: the read-modify-write kernels (CSThr and
// the tally workloads) always store to the line their load just probed, so
// the memoized way verifies on one compare. A tag match at mruWay is
// sufficient — tags are unique within a set and cleared ways hold
// invalidTagWord (never a valid tag) — and the mutations below are exactly
// the probeDemand hit path for that way, so state and statistics stay
// bit-identical to a full probe. Returns false (untouched state) when the
// memoized way holds a different tag; the caller falls back to probe.
func (c *Cache) storeUpgrade(tag int32) bool {
	tile := c.tileOf(tag)
	w := c.mruWay
	if tile[tileTags+w] != uint32(tag) {
		return false
	}
	if c.seq == ^uint32(0) {
		c.renumber()
	}
	c.seq++
	c.Stats.Hits++
	if c.lruStamp {
		tile[tileTags+c.assoc+w] = c.seq
	}
	tile[tileDirty] |= 1 << uint(w)
	return true
}

// victimWay picks the way to evict in the (full) set whose tile is given,
// according to the policy. The LRU/FIFO stamp scans pack (stamp, way) into
// one key so the running minimum compiles to conditional moves instead of
// unpredictable branches; ties break toward the lowest way, matching a
// first-wins linear scan.
func (c *Cache) victimWay(tile []uint32) int64 {
	if !c.stamped { // PolicyRandom
		return int64(c.rng.Intn(c.cfg.Assoc))
	}
	ws := tile[tileTags+c.assoc : tileTags+2*c.assoc]
	// Two interleaved running minima break the serial conditional-move
	// dependency chain in half; the final merge preserves the exact packed
	// (stamp, way) minimum, ties included (minima commute).
	b0 := int64(1<<63 - 1)
	b1 := int64(1<<63 - 1)
	i := 0
	for ; i+1 < len(ws); i += 2 {
		k0 := int64(ws[i])<<5 | int64(i)
		m0 := (k0 - b0) >> 63
		b0 += (k0 - b0) & m0
		k1 := int64(ws[i+1])<<5 | int64(i+1)
		m1 := (k1 - b1) >> 63
		b1 += (k1 - b1) & m1
	}
	if i < len(ws) {
		k := int64(ws[i])<<5 | int64(i)
		m := (k - b0) >> 63
		b0 += (k - b0) & m
	}
	m := (b1 - b0) >> 63
	b0 += (b1 - b0) & m
	return b0 & 31
}

// renumber compacts the replacement stamps so the sequence counter can
// restart far below the 32-bit limit. Victim selection (see victimWay)
// compares stamps only within one set, minimising the packed (stamp, way)
// key, so replacing each set's stamps by their dense rank in exactly that
// order preserves every future eviction decision bit-for-bit. Stamps of
// empty ways participate harmlessly: they are overwritten on fill and never
// read by victimWay, which runs only on full sets.
func (c *Cache) renumber() {
	c.renumbers++
	if !c.stamped { // PolicyRandom keeps no stamps
		c.seq = 0
		return
	}
	a := int(c.assoc)
	var order [32]int64 // Assoc ≤ 32, enforced by CacheConfig.Validate
	for set := int64(0); set < c.sets; set++ {
		base := set*c.stride + tileTags + c.assoc
		ws := c.tiles[base : base+c.assoc : base+c.assoc]
		for i := 0; i < a; i++ {
			order[i] = int64(i)
		}
		// Insertion sort by (stamp, way) — a strict total order, and the
		// exact key victimWay minimises. Stamps of valid ways are distinct
		// (each sequence value stamps at most one way), so ties can only
		// involve cleared ways, whose order is irrelevant but still fixed.
		for i := 1; i < a; i++ {
			o := order[i]
			j := i
			for ; j > 0; j-- {
				p := order[j-1]
				if ws[p] < ws[o] || (ws[p] == ws[o] && p < o) {
					break
				}
				order[j] = p
			}
			order[j] = o
		}
		for r, w := range order[:a] {
			ws[w] = uint32(r) + 1
		}
	}
	c.seq = uint32(a) // the next tick stamps above every assigned rank
}

// Access performs a demand access to line. On a hit it refreshes recency
// (and dirtiness for writes) and returns hit=true. On a miss it inserts the
// line, evicting a victim if the set was full, and returns the victim (or
// InvalidLine) along with its dirtiness so the caller can cascade
// writebacks and inclusive invalidations.
func (c *Cache) Access(line Line, write bool) (hit bool, victim Line, victimDirty bool) {
	return c.probe(tagOf(line), write, probeDemand)
}

// InsertWriteback installs a line arriving from an upper level's writeback.
// It marks the line dirty but does not count as a demand hit or miss. The
// returned victim allows cascading, exactly as for Access.
func (c *Cache) InsertWriteback(line Line) (victim Line, victimDirty bool) {
	return c.insertWritebackTag(tagOf(line))
}

// insertWritebackTag is InsertWriteback for a tag that already passed the
// range check — writeback victims round-trip out of another cache's tags,
// so the hierarchy's cascade paths never re-validate them.
func (c *Cache) insertWritebackTag(tag int32) (victim Line, victimDirty bool) {
	_, victim, victimDirty = c.probe(tag, false, probeWriteback)
	return victim, victimDirty
}

// InsertClean installs a line without marking it dirty and without demand
// statistics; it is used for prefetch fills.
func (c *Cache) InsertClean(line Line) (victim Line, victimDirty bool) {
	return c.insertCleanTag(tagOf(line))
}

// insertCleanTag is InsertClean with the tag range check already performed.
func (c *Cache) insertCleanTag(tag int32) (victim Line, victimDirty bool) {
	_, victim, victimDirty = c.probe(tag, false, probeClean)
	return victim, victimDirty
}

// Invalidate removes line if present, returning whether it was present and
// whether it was dirty. Used for inclusive back-invalidation.
func (c *Cache) Invalidate(line Line) (present, dirty bool) {
	tag := tagOf(line)
	tile := c.tileOf(tag)
	utag := uint32(tag)
	for i, tg := range tile[tileTags : tileTags+c.assoc] {
		if tg == utag {
			dirty = tile[tileDirty]>>uint(i)&1 != 0
			c.clearWay(tile, int64(i))
			c.Stats.Invalidations++
			return true, dirty
		}
	}
	return false, false
}

// clearWay resets way w of the set whose tile is given to the empty state.
// The way must currently hold a valid line.
func (c *Cache) clearWay(tile []uint32, w int64) {
	if c.filter != nil {
		c.filter.remove(Line(int32(tile[tileTags+w])))
	}
	c.emptyWays++
	tile[tileEmpty] |= 1 << uint(w)
	tile[tileDirty] &^= 1 << uint(w)
	tile[tileTags+w] = invalidTagWord
	if c.stamped {
		tile[tileTags+c.assoc+w] = 0
	}
}

// Occupancy returns the number of valid lines currently held.
func (c *Cache) Occupancy() int64 {
	return c.sets*c.assoc - c.emptyWays
}

// CountLinesIn returns how many resident lines fall in [lo, hi). It lets
// validation tests measure how much capacity a given workload's buffer is
// actually pinning — the quantity the paper calls the thread's storage use.
// The walk is tile-aware: each set's empty mask prunes the scan to valid
// ways, so sparsely filled caches cost popcounts, not full tag sweeps.
func (c *Cache) CountLinesIn(lo, hi Line) int64 {
	valid := uint32(1)<<uint(c.assoc) - 1
	var n int64
	for set := int64(0); set < c.sets; set++ {
		tile := c.tiles[set*c.stride:]
		for m := valid &^ tile[tileEmpty]; m != 0; m &= m - 1 {
			w := int64(bits.TrailingZeros32(m))
			if l := Line(int32(tile[tileTags+w])); l >= lo && l < hi {
				n++
			}
		}
	}
	return n
}

// Flush invalidates the entire cache without touching statistics.
func (c *Cache) Flush() {
	valid := uint32(1)<<uint(c.assoc) - 1
	for set := int64(0); set < c.sets; set++ {
		base := set * c.stride
		tile := c.tiles[base : base+c.stride : base+c.stride]
		for m := valid &^ tile[tileEmpty]; m != 0; m &= m - 1 {
			c.clearWay(tile, int64(bits.TrailingZeros32(m)))
		}
	}
}

// stampAt returns the policy stamp of (set, way); zero for PolicyRandom.
// Test hook: white-box renumbering tests read stamps through it.
func (c *Cache) stampAt(set, way int64) uint32 {
	if !c.stamped {
		return 0
	}
	return c.tiles[set*c.stride+tileTags+c.assoc+way]
}

// presenceFilter is an exact counting membership filter over hashed line
// slots: add/remove keep per-slot counts, so mayContain has no false
// negatives and a small false-positive rate. The hierarchy keeps one across
// all private caches to prune inclusive back-invalidation scans. A socket
// holds a few thousand private lines over 64k slots, so uint8 counts never
// come near saturation and the table stays host-cache resident.
type presenceFilter struct {
	counts [1 << 16]uint8
}

// presenceSlot folds a line into its filter slot. The low 16 bits pass
// through unpermuted, so the contiguous line runs the allocator hands out
// occupy contiguous filter slots and the filter's host-cache footprint
// tracks the simulated working set instead of scattering across the whole
// 64 KB table (a multiplicative hash here cost more in host cache misses
// than it saved in false positives). Slot choice only moves the
// false-positive rate: counts are exact per slot, so mayContain still has
// no false negatives and simulated behaviour is unchanged.
func presenceSlot(l Line) uint64 {
	z := uint64(l)
	return (z ^ z>>16) & (1<<16 - 1)
}

func (f *presenceFilter) add(l Line)    { f.counts[presenceSlot(l)]++ }
func (f *presenceFilter) remove(l Line) { f.counts[presenceSlot(l)]-- }

func (f *presenceFilter) mayContain(l Line) bool {
	return f.counts[presenceSlot(l)] != 0
}
