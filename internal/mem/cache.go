package mem

import (
	"fmt"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

// Policy selects the replacement policy of a cache. The paper's analysis
// assumes LRU-like behaviour; FIFO and Random are provided for the ablation
// benches that check how much of the CSThr pinning effect depends on it.
type Policy uint8

// Replacement policies.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicyFIFO:
		return "FIFO"
	case PolicyRandom:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string       // e.g. "L1D", "L3"
	Size     int64        // total capacity in bytes
	LineSize int64        // bytes per line (power of two)
	Assoc    int          // ways per set
	Latency  units.Cycles // hit latency
	Policy   Policy
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int64 {
	return c.Size / (c.LineSize * int64(c.Assoc))
}

// Validate checks the geometry: positive sizes, power-of-two line size and
// set count, and capacity divisible into whole sets.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*int64(c.Assoc)) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line", c.Name, c.Size)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events. Demand accesses split into Hits and
// Misses; Evictions counts replaced valid lines; Writebacks counts dirty
// lines leaving this cache; Invalidations counts inclusive back-invalidates.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Writebacks    int64
	Invalidations int64
}

// Accesses returns demand accesses (hits + misses).
func (s CacheStats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s CacheStats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

type way struct {
	line       Line
	lastUse    int64
	insertedAt int64
	dirty      bool
}

// Cache is a set-associative cache. It tracks only line presence and
// recency, not data contents. All methods are single-goroutine; a socket's
// hierarchy is always simulated by one engine.
type Cache struct {
	cfg     CacheConfig
	sets    int64
	setMask int64
	ways    []way // sets × assoc, row-major
	seq     int64 // monotone access sequence used for LRU/FIFO ordering
	rng     *xrand.Rand

	// Stats accumulates event counts; callers may reset it between
	// measurement windows.
	Stats CacheStats
}

// NewCache builds a cache from cfg; it panics on an invalid geometry
// (machine construction is programmer error territory, matching how the
// stdlib treats bad regexp in MustCompile).
func NewCache(cfg CacheConfig, seed uint64) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		sets:    cfg.Sets(),
		setMask: cfg.Sets() - 1,
		ways:    make([]way, cfg.Sets()*int64(cfg.Assoc)),
		rng:     xrand.New(seed),
	}
	for i := range c.ways {
		c.ways[i].line = InvalidLine
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// setOf returns the index of the first way of line's set.
func (c *Cache) setOf(line Line) int64 {
	return (int64(line) & c.setMask) * int64(c.cfg.Assoc)
}

// Lookup reports whether line is present, without disturbing recency or
// statistics. It is the probe used by prefetch filtering and tests.
func (c *Cache) Lookup(line Line) bool {
	base := c.setOf(line)
	for i := base; i < base+int64(c.cfg.Assoc); i++ {
		if c.ways[i].line == line {
			return true
		}
	}
	return false
}

// Access performs a demand access to line. On a hit it refreshes recency
// (and dirtiness for writes) and returns hit=true. On a miss it inserts the
// line, evicting a victim if the set was full, and returns the victim (or
// InvalidLine) along with its dirtiness so the caller can cascade
// writebacks and inclusive invalidations.
func (c *Cache) Access(line Line, write bool) (hit bool, victim Line, victimDirty bool) {
	c.seq++
	base := c.setOf(line)
	end := base + int64(c.cfg.Assoc)
	var empty int64 = -1
	for i := base; i < end; i++ {
		w := &c.ways[i]
		if w.line == line {
			w.lastUse = c.seq
			if write {
				w.dirty = true
			}
			c.Stats.Hits++
			return true, InvalidLine, false
		}
		if w.line == InvalidLine && empty < 0 {
			empty = i
		}
	}
	c.Stats.Misses++
	slot := empty
	if slot < 0 {
		slot = c.victim(base, end)
		v := &c.ways[slot]
		victim, victimDirty = v.line, v.dirty
		c.Stats.Evictions++
		if victimDirty {
			c.Stats.Writebacks++
		}
	} else {
		victim = InvalidLine
	}
	c.ways[slot] = way{line: line, lastUse: c.seq, insertedAt: c.seq, dirty: write}
	return false, victim, victimDirty
}

// InsertWriteback installs a line arriving from an upper level's writeback.
// It marks the line dirty but does not count as a demand hit or miss. The
// returned victim allows cascading, exactly as for Access.
func (c *Cache) InsertWriteback(line Line) (victim Line, victimDirty bool) {
	c.seq++
	base := c.setOf(line)
	end := base + int64(c.cfg.Assoc)
	var empty int64 = -1
	for i := base; i < end; i++ {
		w := &c.ways[i]
		if w.line == line {
			w.dirty = true
			// A writeback is not a use by the program; recency unchanged.
			return InvalidLine, false
		}
		if w.line == InvalidLine && empty < 0 {
			empty = i
		}
	}
	slot := empty
	if slot < 0 {
		slot = c.victim(base, end)
		v := &c.ways[slot]
		victim, victimDirty = v.line, v.dirty
		c.Stats.Evictions++
		if victimDirty {
			c.Stats.Writebacks++
		}
	} else {
		victim = InvalidLine
	}
	c.ways[slot] = way{line: line, lastUse: c.seq, insertedAt: c.seq, dirty: true}
	return victim, victimDirty
}

// InsertClean installs a line without marking it dirty and without demand
// statistics; it is used for prefetch fills.
func (c *Cache) InsertClean(line Line) (victim Line, victimDirty bool) {
	c.seq++
	base := c.setOf(line)
	end := base + int64(c.cfg.Assoc)
	var empty int64 = -1
	for i := base; i < end; i++ {
		w := &c.ways[i]
		if w.line == line {
			return InvalidLine, false
		}
		if w.line == InvalidLine && empty < 0 {
			empty = i
		}
	}
	slot := empty
	if slot < 0 {
		slot = c.victim(base, end)
		v := &c.ways[slot]
		victim, victimDirty = v.line, v.dirty
		c.Stats.Evictions++
		if victimDirty {
			c.Stats.Writebacks++
		}
	} else {
		victim = InvalidLine
	}
	c.ways[slot] = way{line: line, lastUse: c.seq, insertedAt: c.seq}
	return victim, victimDirty
}

// victim picks a way to evict in [base, end) according to the policy.
func (c *Cache) victim(base, end int64) int64 {
	switch c.cfg.Policy {
	case PolicyRandom:
		return base + int64(c.rng.Intn(c.cfg.Assoc))
	case PolicyFIFO:
		best := base
		for i := base + 1; i < end; i++ {
			if c.ways[i].insertedAt < c.ways[best].insertedAt {
				best = i
			}
		}
		return best
	default: // PolicyLRU
		best := base
		for i := base + 1; i < end; i++ {
			if c.ways[i].lastUse < c.ways[best].lastUse {
				best = i
			}
		}
		return best
	}
}

// Invalidate removes line if present, returning whether it was present and
// whether it was dirty. Used for inclusive back-invalidation.
func (c *Cache) Invalidate(line Line) (present, dirty bool) {
	base := c.setOf(line)
	for i := base; i < base+int64(c.cfg.Assoc); i++ {
		w := &c.ways[i]
		if w.line == line {
			present, dirty = true, w.dirty
			*w = way{line: InvalidLine}
			c.Stats.Invalidations++
			return
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines currently held.
func (c *Cache) Occupancy() int64 {
	var n int64
	for i := range c.ways {
		if c.ways[i].line != InvalidLine {
			n++
		}
	}
	return n
}

// CountLinesIn returns how many resident lines fall in [lo, hi). It lets
// validation tests measure how much capacity a given workload's buffer is
// actually pinning — the quantity the paper calls the thread's storage use.
func (c *Cache) CountLinesIn(lo, hi Line) int64 {
	var n int64
	for i := range c.ways {
		if l := c.ways[i].line; l != InvalidLine && l >= lo && l < hi {
			n++
		}
	}
	return n
}

// Flush invalidates the entire cache without touching statistics.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = way{line: InvalidLine}
	}
}
