package mem

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// PrefetchConfig describes the per-core stride prefetcher, a simplified
// model of the Sandy Bridge L2 streamer. The paper's BWThr deliberately uses
// a constant (large prime) stride so the streamer amplifies its bandwidth
// consumption; CSThr uses random accesses precisely so the streamer stays
// idle. Modelling the prefetcher preserves both design points.
type PrefetchConfig struct {
	Enabled bool
	Streams int   // tracked concurrent streams per core
	Degree  int   // lines fetched ahead once a stream locks
	Window  int64 // max |stride| in lines that can train a stream
	MaxLag  int   // bus backlog (in line-transfer times) above which prefetch is suppressed
}

// Limits enforced by PrefetchConfig.Validate. The window bound keeps a
// confirmed stride inside int32 and a packed (distance, stream) scan key
// inside int64.
const (
	maxPrefetchStreams = 256
	maxPrefetchWindow  = int64(1) << 30
)

// Validate checks the prefetcher configuration. A disabled prefetcher
// carries no constraints (its remaining fields are ignored); an enabled one
// needs positive stream/degree/window values within the supported ranges.
// It is the single validation point: HierarchyConfig.Validate calls it, and
// NewPrefetcher panics on exactly these errors.
func (c PrefetchConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Streams <= 0 {
		return fmt.Errorf("mem: prefetcher: non-positive stream count %d", c.Streams)
	}
	if c.Streams > maxPrefetchStreams {
		return fmt.Errorf("mem: prefetcher: %d streams exceed the supported %d", c.Streams, maxPrefetchStreams)
	}
	if c.Degree <= 0 {
		return fmt.Errorf("mem: prefetcher: non-positive degree %d", c.Degree)
	}
	if c.Window <= 0 {
		return fmt.Errorf("mem: prefetcher: non-positive training window %d", c.Window)
	}
	if c.Window > maxPrefetchWindow {
		return fmt.Errorf("mem: prefetcher: training window %d exceeds the supported %d lines", c.Window, maxPrefetchWindow)
	}
	if c.MaxLag < 0 {
		return fmt.Errorf("mem: prefetcher: negative bus lag bound %d", c.MaxLag)
	}
	return nil
}

// DefaultPrefetch returns the configuration used by the Xeon20MB model.
func DefaultPrefetch() PrefetchConfig {
	return PrefetchConfig{Enabled: true, Streams: 32, Degree: 4, Window: 2048, MaxLag: 32}
}

// pfInactive marks an unallocated stream slot. It sits far enough from any
// real line number that |line - pfInactive| always exceeds the training
// window, so inactive slots lose every nearest-stream comparison without a
// separate activity check in the linear scan. (The bucketed index simply
// never holds inactive slots.)
const pfInactive = int64(-1) << 62

// Stream counts served by the bucketed index: below the minimum the
// branch-free linear scan over a handful of packed entries wins, above the
// maximum the per-bucket slot bitmask would not fit uint64 (such configs
// keep the linear scan; they exist only for ablations).
const (
	streamIndexMinStreams = 16
	streamIndexMaxStreams = 64
)

// Prefetcher detects constant-stride access streams. Observe is called on
// demand L1 misses; once a stream has confirmed its stride twice the
// prefetcher emits the next Degree line addresses.
//
// Stream state is laid out structure-of-arrays with the recency and stride
// metadata shrunk to 32 bits (recency stamps renumber periodically, exactly
// like the caches'; |stride| is bounded by the validated window). The
// nearest-stream scan — run on every L1 demand miss — is served by a
// bucketed index over lastLine for the default 32-stream configuration, so
// a random-access (CSThr-style) miss probes three small hash buckets
// instead of scanning every stream; stream allocation takes its LRU victim
// from a lazily repaired sorted victim queue in O(1) amortised instead of
// scanning every slot's stamp, with identical (stamp, slot) victim order
// and zero bookkeeping on the (hot) stream-match path.
type Prefetcher struct {
	cfg       PrefetchConfig
	lastLine  []int64 // last-missed lines; pfInactive = unallocated
	lastUse   []uint32
	stride    []int32
	hits      []uint8
	seq       uint32
	renumbers int64        // completed stamp-renumbering passes (tests)
	ix        *streamIndex // nil → linear nearest scan
	scratch   [8]Line

	// Lazily repaired victim queue: vq[vqPos:] holds packed (stamp << 8 |
	// slot) keys sorted ascending as of the last rebuild. Between explicit
	// invalidations stamps only grow, so a queue entry whose slot still
	// carries its snapshot stamp is untouched and provably precedes every
	// touched slot — the first such entry IS the (stamp, slot) scan victim,
	// ties included. Touches cost nothing here (the stamp write itself
	// stales the entry); allocation pays one equality check, skipping stale
	// entries and re-sorting only when the queue drains, so victim selection
	// is O(1) amortised instead of an O(Streams) scan per allocation.
	// victimScan forces the linear reference scan (tests).
	vq         []int64
	vqPos      int
	victimScan bool

	// Issued counts prefetch candidates emitted (before cache/bus filtering).
	Issued int64
}

// NewPrefetcher builds a prefetcher; it panics on an invalid configuration
// (the errors of PrefetchConfig.Validate — machine construction is
// programmer error territory, matching NewCache). A disabled config yields
// a prefetcher whose Observe always returns nil.
//
// The victim queue initialised here interacts with the uint32 stamp rebase:
// a renumbering pass rewrites lastUse by dense rank in exactly the queue's
// snapshot key order, so victim selection is stable across arbitrarily many
// rebases; because the rewrite is non-monotonic in stamp VALUES, renumber
// additionally drains the queue so the next allocation re-sorts under the
// new ranks rather than trusting pre-rebase snapshots.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Prefetcher{cfg: cfg}
	if cfg.Enabled {
		p.lastLine = make([]int64, cfg.Streams)
		p.lastUse = make([]uint32, cfg.Streams)
		p.stride = make([]int32, cfg.Streams)
		p.hits = make([]uint8, cfg.Streams)
		p.vq = make([]int64, cfg.Streams)
		p.vqPos = cfg.Streams // empty: the first allocation rebuilds
		for i := range p.lastLine {
			p.lastLine[i] = pfInactive
		}
		if cfg.Streams >= streamIndexMinStreams && cfg.Streams <= streamIndexMaxStreams {
			p.ix = newStreamIndex(cfg.Streams, cfg.Window)
		}
	}
	return p
}

// vqInvalidate drains the victim queue so the next allocation re-sorts. It
// must run whenever stamps are rewritten non-monotonically — renumbering
// and Reset — because the queue's stale-entry skip is only sound while
// stamps grow.
func (p *Prefetcher) vqInvalidate() { p.vqPos = len(p.vq) }

// vqRebuild snapshots every slot's packed (stamp << 8 | slot) key in
// ascending order — the exact victim-scan order, ties included. Insertion
// sort: the queue holds at most 256 entries, usually 32, where it beats
// the generic sort's dispatch overhead.
func (p *Prefetcher) vqRebuild() {
	q := p.vq[:len(p.lastUse)]
	for i, lu := range p.lastUse {
		q[i] = int64(lu)<<8 | int64(i)
	}
	for i := 1; i < len(q); i++ {
		k := q[i]
		j := i
		for ; j > 0 && q[j-1] > k; j-- {
			q[j] = q[j-1]
		}
		q[j] = k
	}
	p.vqPos = 0
}

// Config returns the prefetcher configuration.
func (p *Prefetcher) Config() PrefetchConfig { return p.cfg }

// tick advances the observation sequence counter, renumbering the recency
// stamps first when the counter is about to exhaust the 32-bit space.
func (p *Prefetcher) tick() {
	if p.seq == ^uint32(0) {
		p.renumber()
	}
	p.seq++
}

// renumber compacts the stream recency stamps order-preservingly: slots are
// ranked by (stamp, slot) — exactly the key lruVictimScan minimises and the
// victim queue snapshots — so every future victim choice is unchanged while
// the sequence counter restarts just above the stream count. Renumbering
// rewrites stamps non-monotonically (values shrink), which would break the
// queue's stale-entry reasoning, so the queue is drained here and re-sorts
// on the next allocation — by the new dense ranks, whose order is identical
// (asserted by TestPrefetcherRenumberPreservesVictimOrder).
func (p *Prefetcher) renumber() {
	p.renumbers++
	order := make([]int, len(p.lastUse))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if p.lastUse[oa] != p.lastUse[ob] {
			return p.lastUse[oa] < p.lastUse[ob]
		}
		return oa < ob
	})
	for r, s := range order {
		p.lastUse[s] = uint32(r) + 1
	}
	p.seq = uint32(len(p.lastUse))
	p.vqInvalidate()
}

// Observe trains on a demand-missed line and returns the lines to prefetch
// (possibly none). The returned slice is only valid until the next call.
func (p *Prefetcher) Observe(line Line) []Line {
	if len(p.lastLine) == 0 {
		return nil
	}
	p.tick()
	// Find the stream nearest to this access (first index wins ties); the
	// threshold against the training window is applied once after the scan,
	// which is equivalent to filtering inside it.
	var best int
	var bestDelta int64
	if p.ix != nil {
		best, bestDelta = p.nearestIndexed(int64(line))
	} else {
		best, bestDelta = p.nearestLinear(int64(line))
	}
	if bestDelta <= p.cfg.Window {
		delta := int64(line) - p.lastLine[best]
		p.lastUse[best] = p.seq // stales best's victim-queue entry, if any
		if delta == 0 {
			return nil
		}
		if delta == int64(p.stride[best]) {
			// Saturate the confirmation count at the emit threshold; only
			// the >= 2 comparison is ever made, so this is invisible.
			h := p.hits[best] + 1
			if h > 2 {
				h = 2
			}
			p.hits[best] = h
			p.moveStream(best, int64(line))
			if h >= 2 {
				return p.emit(line, delta)
			}
			return nil
		}
		// Retrain with the newly observed stride (|delta| ≤ Window, which
		// Validate bounds to int32 range).
		p.stride[best] = int32(delta)
		p.hits[best] = 1
		p.moveStream(best, int64(line))
		return nil
	}
	// Allocate the least recently used stream slot; a live victim is
	// retargeted in place, an inactive one activated.
	victim := p.lruVictim()
	old := p.lastLine[victim]
	p.lastLine[victim] = int64(line)
	if p.ix != nil {
		if old != pfInactive {
			p.ix.retarget(victim, old, int64(line))
		} else {
			p.ix.add(victim, int64(line))
		}
	}
	p.lastUse[victim] = p.seq // stales the victim's queue entry
	p.stride[victim] = 0
	p.hits[victim] = 0
	return nil
}

// nearestLinear scans every stream slot. Distances beyond the window are
// clamped — their exact value is never used — so (distance, index) packs
// into one key and the running minimum compiles to conditional moves
// instead of unpredictable branches.
func (p *Prefetcher) nearestLinear(line int64) (best int, bestDelta int64) {
	clamp := p.cfg.Window + 1
	bestKey := int64(math.MaxInt64)
	for i, ll := range p.lastLine {
		d := line - ll
		s := d >> 63 // arithmetic |d|: branch-free, mispredict-free
		d = (d ^ s) - s
		over := (d - clamp) >> 63 // min(d, clamp)
		d = clamp + (d-clamp)&over
		k := d<<8 | int64(i)
		m := (k - bestKey) >> 63 // min(k, bestKey)
		bestKey += (k - bestKey) & m
	}
	return int(bestKey & 255), bestKey >> 8
}

// nearestIndexed answers the nearest-stream query. Few active streams —
// the dense-working-set regime — are scanned directly off the compact
// active mirror; otherwise the bucketed index narrows the candidates:
// every stream within the training window of line lies in one of the three
// buckets around it, so only those need exact distances. Both paths
// produce the linear scan's packed (distance, index) keys, so the minimum
// reproduces its first-index tie-breaking exactly; a candidate beyond the
// window can never outrank one inside it, and when no in-window stream
// exists the caller takes the allocation path on the returned over-window
// distance, just as with the clamped linear scan.
func (p *Prefetcher) nearestIndexed(line int64) (best int, bestDelta int64) {
	ix := p.ix
	if len(ix.active) > activeLinearMax {
		cands := ix.candidates(line)
		if cands == 0 {
			return 0, p.cfg.Window + 1
		}
		bestKey := int64(math.MaxInt64)
		for m := cands; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			d := line - p.lastLine[i]
			s := d >> 63
			d = (d ^ s) - s
			if k := d<<8 | int64(i); k < bestKey {
				bestKey = k
			}
		}
		return int(bestKey & 255), bestKey >> 8
	}
	// Few active streams: scan the compact mirror directly. This is the
	// linear reference scan minus the inactive slots — whose clamped keys
	// only ever win when nothing is inside the training window, a case
	// both paths already report as over-window to the caller.
	if len(ix.active) == 0 {
		return 0, p.cfg.Window + 1
	}
	bestKey := windowNearest(ix.active, line)
	return int(bestKey & 255), bestKey >> 8
}

// lruVictim returns the least recently used stream slot (first index wins
// ties): the first victim-queue entry whose slot still carries its snapshot
// stamp. Entries whose stamp moved were touched after the snapshot, so they
// rank behind every untouched entry (stamps only grow between queue
// invalidations); a drained queue re-sorts. The caller stamps the returned
// victim, staling its entry for the next call. The O(Streams) packed-minimum
// scan survives as lruVictimScan, the reference the lockstep fuzz test
// forces via victimScan.
func (p *Prefetcher) lruVictim() int {
	if p.victimScan {
		return p.lruVictimScan()
	}
	for p.vqPos < len(p.vq) {
		k := p.vq[p.vqPos]
		s := int(k & 255)
		if int64(p.lastUse[s])<<8|int64(s) == k {
			return s
		}
		p.vqPos++ // stale: touched since the snapshot
	}
	p.vqRebuild()
	return int(p.vq[0] & 255)
}

// lruVictimScan is the branch-free packed (stamp, slot) minimum over every
// stream slot — the pre-list victim selection, kept as the fuzz reference.
func (p *Prefetcher) lruVictimScan() int {
	bestKey := int64(math.MaxInt64)
	for i, lu := range p.lastUse {
		k := int64(lu)<<8 | int64(i)
		m := (k - bestKey) >> 63
		bestKey += (k - bestKey) & m
	}
	return int(bestKey & 255)
}

// moveStream retargets stream s to line, keeping the bucketed index in
// sync. The mirror rekey is inlined here — the match path runs this on
// every confirmed observation, and an intra-bucket move needs nothing
// else.
func (p *Prefetcher) moveStream(s int, line int64) {
	old := p.lastLine[s]
	p.lastLine[s] = line
	if ix := p.ix; ix != nil {
		ix.active[ix.apos[s]] = line<<8 | int64(s)
		if old>>ix.shift != line>>ix.shift {
			ix.dropBucket(s, old>>ix.shift)
			ix.enterBucket(s, line>>ix.shift)
		}
	}
}

func (p *Prefetcher) emit(line Line, stride int64) []Line {
	n := p.cfg.Degree
	if n > len(p.scratch) {
		n = len(p.scratch)
	}
	for i := 0; i < n; i++ {
		p.scratch[i] = line + Line(stride*int64(i+1))
	}
	p.Issued += int64(n)
	return p.scratch[:n]
}

// Reset clears all trained streams (used between measurement phases).
func (p *Prefetcher) Reset() {
	for i := range p.lastLine {
		p.lastLine[i] = pfInactive
		p.lastUse[i] = 0
		p.stride[i] = 0
		p.hits[i] = 0
	}
	p.seq = 0
	p.vqInvalidate() // stamps were rewritten to zero: snapshots are void
	if p.ix != nil {
		p.ix.reset()
	}
}

// activeLinearMax bounds the compact active-mirror scan: up to this many
// active streams, one branch-free pass over the packed mirror beats the
// three bucket probes of the hash path.
const activeLinearMax = 16

// streamIndex buckets active stream slots by lastLine >> shift in a small
// open-addressed hash table (linear probing, backward-shift deletion). The
// bucket span exceeds the training window, so a stream within the window of
// an observed line is always in the observed line's bucket or one of its
// two neighbours: Observe probes three buckets instead of scanning all
// slots. Values are per-bucket slot bitmasks, which caps indexed
// configurations at 64 streams.
type streamIndex struct {
	shift uint     // bucket granularity: 1<<shift > Window
	keys  []int64  // bucket ids; -1 = empty slot (real ids are ≥ 0)
	masks []uint64 // stream-slot bitmask per bucket

	// active mirrors every active stream as a packed (lastLine<<8 | slot)
	// key in one compact array (apos: slot -> position). It is the dense
	// working set's structure: a compact (CSThr-style) footprint drops every
	// stream into one or two buckets, where the bitmask scan degenerates to
	// the linear scan the index exists to avoid — but such workloads also
	// settle near a dozen ACTIVE streams, since one stream within the
	// training window absorbs every nearby miss. Up to activeLinearMax
	// active streams the nearest query therefore scans this mirror
	// directly: a branch-free packed minimum over a handful of contiguous
	// host-cache lines, zero hash probes, exact first-index tie-breaking
	// (the minimum of packed keys is scan-order-independent). Beyond that
	// the bucketed path is cheaper and takes over. Rekeys are O(1) in-place
	// stores through apos. Per-bucket window mirrors for dense buckets —
	// both sorted and unsorted variants — were benchmarked and rejected:
	// the serially dependent running-minimum chain over a large bucket
	// loses to the well-predicted branchy mask walk it replaces, and the
	// per-move bookkeeping taxes every other regime (see README).
	active []int64
	apos   []uint8
}

func newStreamIndex(streams int, window int64) *streamIndex {
	// At most one occupied bucket per stream; 4× slots keep probes short
	// and the table permanently under-full.
	n := 1
	for n < streams*4 {
		n <<= 1
	}
	ix := &streamIndex{
		shift:  uint(bits.Len64(uint64(window))), // smallest shift with 1<<shift > window
		keys:   make([]int64, n),
		masks:  make([]uint64, n),
		active: make([]int64, 0, streams),
		apos:   make([]uint8, streams),
	}
	for i := range ix.keys {
		ix.keys[i] = -1
	}
	return ix
}

func (ix *streamIndex) slotOf(key int64) int {
	z := uint64(key) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z & uint64(len(ix.keys)-1))
}

// candidates returns the union bitmask of streams bucketed around line — a
// superset of every stream within the training window of it. Lines are
// non-negative (see Addr), so bucket ids never collide with the -1 empty
// sentinel; the probed id b-1 may be -1, which harmlessly matches an empty
// slot's zero mask.
func (ix *streamIndex) candidates(line int64) uint64 {
	b := line >> ix.shift
	return ix.lookup(b-1) | ix.lookup(b) | ix.lookup(b+1)
}

func (ix *streamIndex) lookup(key int64) uint64 {
	mask := len(ix.keys) - 1
	for i := ix.slotOf(key); ; i = (i + 1) & mask {
		switch ix.keys[i] {
		case key:
			return ix.masks[i]
		case -1:
			return 0
		}
	}
}

// windowNearest returns the best packed (distance<<8 | slot) key any
// stream in the compact window win can offer for line: a branch-free
// running minimum over contiguous packed (lastLine<<8 | slot) entries.
// Iteration order is irrelevant — the minimum of packed keys is exactly
// the linear reference scan's first-index tie-breaking — so the window
// stays unsorted and every mutation of it is O(1).
func windowNearest(win []int64, line int64) int64 {
	best := int64(math.MaxInt64)
	for _, k := range win {
		d := line - k>>8
		s := d >> 63 // arithmetic |d|: branch-free, mispredict-free
		d = (d ^ s) - s
		c := d<<8 | k&255
		m := (c - best) >> 63 // min(c, best)
		best += (c - best) & m
	}
	return best
}

// retarget rekeys an already-active stream s from old to line. The compact
// active mirror is rekeyed in place — one indexed store, no swap-delete and
// re-append, since s keeps its mirror position — which makes the hottest
// index mutation (every stream match and every reallocation of a live slot
// moves a stream) as cheap as a lastLine write. Bucket state only changes
// when the move crosses a bucket boundary.
func (ix *streamIndex) retarget(s int, old, line int64) {
	ix.active[ix.apos[s]] = line<<8 | int64(s)
	ob, nb := old>>ix.shift, line>>ix.shift
	if ob == nb {
		return
	}
	ix.dropBucket(s, ob)
	ix.enterBucket(s, nb)
}

// add registers the previously inactive stream s under line's bucket, which
// the caller guarantees is s's current lastLine.
func (ix *streamIndex) add(s int, line int64) {
	ix.apos[s] = uint8(len(ix.active))
	ix.active = append(ix.active, line<<8|int64(s))
	ix.enterBucket(s, line>>ix.shift)
}

// enterBucket sets stream s's membership bit in bucket key, creating the
// bucket if needed.
func (ix *streamIndex) enterBucket(s int, key int64) {
	mask := len(ix.keys) - 1
	i := ix.slotOf(key)
	for ix.keys[i] != key && ix.keys[i] != -1 {
		i = (i + 1) & mask
	}
	ix.keys[i] = key
	ix.masks[i] |= 1 << uint(s)
}

// dropBucket clears stream s's membership bit in bucket key, deleting an
// emptied bucket.
func (ix *streamIndex) dropBucket(s int, key int64) {
	mask := len(ix.keys) - 1
	i := ix.slotOf(key)
	for ix.keys[i] != key {
		i = (i + 1) & mask
	}
	ix.masks[i] &^= 1 << uint(s)
	if ix.masks[i] == 0 {
		ix.deleteSlot(i)
	}
}

// deleteSlot empties slot i, shifting later probe-chain entries backward so
// lookups never need tombstones (same scheme as inflightTable).
func (ix *streamIndex) deleteSlot(i int) {
	mask := len(ix.keys) - 1
	j := i
	for {
		ix.keys[i] = -1
		ix.masks[i] = 0
		for {
			j = (j + 1) & mask
			k := ix.keys[j]
			if k == -1 {
				return
			}
			home := ix.slotOf(k)
			var inChain bool
			if i <= j {
				inChain = home > i && home <= j
			} else {
				inChain = home > i || home <= j
			}
			if !inChain {
				break
			}
		}
		ix.keys[i], ix.masks[i] = ix.keys[j], ix.masks[j]
		i = j
	}
}

func (ix *streamIndex) reset() {
	for i := range ix.keys {
		ix.keys[i] = -1
		ix.masks[i] = 0
	}
	ix.active = ix.active[:0]
}
