package mem

// PrefetchConfig describes the per-core stride prefetcher, a simplified
// model of the Sandy Bridge L2 streamer. The paper's BWThr deliberately uses
// a constant (large prime) stride so the streamer amplifies its bandwidth
// consumption; CSThr uses random accesses precisely so the streamer stays
// idle. Modelling the prefetcher preserves both design points.
type PrefetchConfig struct {
	Enabled bool
	Streams int   // tracked concurrent streams per core
	Degree  int   // lines fetched ahead once a stream locks
	Window  int64 // max |stride| in lines that can train a stream
	MaxLag  int   // bus backlog (in line-transfer times) above which prefetch is suppressed
}

// DefaultPrefetch returns the configuration used by the Xeon20MB model.
func DefaultPrefetch() PrefetchConfig {
	return PrefetchConfig{Enabled: true, Streams: 32, Degree: 4, Window: 2048, MaxLag: 32}
}

type pfStream struct {
	lastLine Line
	stride   int64
	hits     int
	lastUse  int64
}

// Prefetcher detects constant-stride access streams. Observe is called on
// demand L1 misses; once a stream has confirmed its stride twice the
// prefetcher emits the next Degree line addresses.
type Prefetcher struct {
	cfg     PrefetchConfig
	streams []pfStream
	seq     int64
	scratch [8]Line

	// Issued counts prefetch candidates emitted (before cache/bus filtering).
	Issued int64
}

// NewPrefetcher builds a prefetcher; a disabled config yields a prefetcher
// whose Observe always returns nil.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	p := &Prefetcher{cfg: cfg}
	if cfg.Enabled {
		p.streams = make([]pfStream, cfg.Streams)
	}
	return p
}

// Config returns the prefetcher configuration.
func (p *Prefetcher) Config() PrefetchConfig { return p.cfg }

// Observe trains on a demand-missed line and returns the lines to prefetch
// (possibly none). The returned slice is only valid until the next call.
func (p *Prefetcher) Observe(line Line) []Line {
	if !p.cfg.Enabled {
		return nil
	}
	p.seq++
	// Find a stream this access continues or retrains.
	bestIdx, bestDelta := -1, p.cfg.Window+1
	for i := range p.streams {
		s := &p.streams[i]
		if s.lastUse == 0 {
			continue
		}
		d := int64(line - s.lastLine)
		if d < 0 {
			d = -d
		}
		if d <= p.cfg.Window && d < bestDelta {
			bestIdx, bestDelta = i, d
		}
	}
	if bestIdx >= 0 {
		s := &p.streams[bestIdx]
		delta := int64(line - s.lastLine)
		s.lastUse = p.seq
		if delta == 0 {
			return nil
		}
		if delta == s.stride {
			s.hits++
			s.lastLine = line
			if s.hits >= 2 {
				out := p.emit(line, s.stride)
				return out
			}
			return nil
		}
		// Retrain with the newly observed stride.
		s.stride = delta
		s.hits = 1
		s.lastLine = line
		return nil
	}
	// Allocate the least recently used stream slot.
	victim := 0
	for i := 1; i < len(p.streams); i++ {
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = pfStream{lastLine: line, lastUse: p.seq}
	return nil
}

func (p *Prefetcher) emit(line Line, stride int64) []Line {
	n := p.cfg.Degree
	if n > len(p.scratch) {
		n = len(p.scratch)
	}
	for i := 0; i < n; i++ {
		p.scratch[i] = line + Line(stride*int64(i+1))
	}
	p.Issued += int64(n)
	return p.scratch[:n]
}

// Reset clears all trained streams (used between measurement phases).
func (p *Prefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = pfStream{}
	}
	p.seq = 0
}
