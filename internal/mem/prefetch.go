package mem

import "math"

// PrefetchConfig describes the per-core stride prefetcher, a simplified
// model of the Sandy Bridge L2 streamer. The paper's BWThr deliberately uses
// a constant (large prime) stride so the streamer amplifies its bandwidth
// consumption; CSThr uses random accesses precisely so the streamer stays
// idle. Modelling the prefetcher preserves both design points.
type PrefetchConfig struct {
	Enabled bool
	Streams int   // tracked concurrent streams per core
	Degree  int   // lines fetched ahead once a stream locks
	Window  int64 // max |stride| in lines that can train a stream
	MaxLag  int   // bus backlog (in line-transfer times) above which prefetch is suppressed
}

// DefaultPrefetch returns the configuration used by the Xeon20MB model.
func DefaultPrefetch() PrefetchConfig {
	return PrefetchConfig{Enabled: true, Streams: 32, Degree: 4, Window: 2048, MaxLag: 32}
}

// pfInactive marks an unallocated stream slot. It sits far enough from any
// real line number that |line - pfInactive| always exceeds the training
// window, so inactive slots lose every nearest-stream comparison without a
// separate activity check in the scan.
const pfInactive = int64(-1) << 62

// Prefetcher detects constant-stride access streams. Observe is called on
// demand L1 misses; once a stream has confirmed its stride twice the
// prefetcher emits the next Degree line addresses.
//
// Stream state is laid out structure-of-arrays: the nearest-stream scan —
// run on every L1 demand miss — reads only the packed lastLine array, and
// the LRU allocation scan only the packed lastUse array.
type Prefetcher struct {
	cfg      PrefetchConfig
	lastLine []int64 // last-missed lines; pfInactive = unallocated
	lastUse  []int64
	stride   []int64
	hits     []int32
	seq      int64
	scratch  [8]Line

	// Issued counts prefetch candidates emitted (before cache/bus filtering).
	Issued int64
}

// NewPrefetcher builds a prefetcher; a disabled config yields a prefetcher
// whose Observe always returns nil.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	p := &Prefetcher{cfg: cfg}
	if cfg.Enabled {
		if cfg.Streams > 256 {
			panic("mem: prefetcher supports at most 256 streams")
		}
		p.lastLine = make([]int64, cfg.Streams)
		p.lastUse = make([]int64, cfg.Streams)
		p.stride = make([]int64, cfg.Streams)
		p.hits = make([]int32, cfg.Streams)
		for i := range p.lastLine {
			p.lastLine[i] = pfInactive
		}
	}
	return p
}

// Config returns the prefetcher configuration.
func (p *Prefetcher) Config() PrefetchConfig { return p.cfg }

// Observe trains on a demand-missed line and returns the lines to prefetch
// (possibly none). The returned slice is only valid until the next call.
func (p *Prefetcher) Observe(line Line) []Line {
	if len(p.lastLine) == 0 {
		return nil
	}
	p.seq++
	// Find the stream nearest to this access (first index wins ties); the
	// threshold against the training window is applied once after the scan,
	// which is equivalent to filtering inside it. Distances beyond the
	// window are clamped — their exact value is never used — so (distance,
	// index) packs into one key and the running minimum compiles to
	// conditional moves instead of unpredictable branches.
	clamp := p.cfg.Window + 1
	bestKey := int64(math.MaxInt64)
	for i, ll := range p.lastLine {
		d := int64(line) - ll
		s := d >> 63 // arithmetic |d|: branch-free, mispredict-free
		d = (d ^ s) - s
		over := (d - clamp) >> 63 // min(d, clamp)
		d = clamp + (d-clamp)&over
		k := d<<8 | int64(i)
		m := (k - bestKey) >> 63 // min(k, bestKey)
		bestKey += (k - bestKey) & m
	}
	best, bestDelta := int(bestKey&255), bestKey>>8
	if bestDelta <= p.cfg.Window {
		delta := int64(line) - p.lastLine[best]
		p.lastUse[best] = p.seq
		if delta == 0 {
			return nil
		}
		if delta == p.stride[best] {
			p.hits[best]++
			p.lastLine[best] = int64(line)
			if p.hits[best] >= 2 {
				return p.emit(line, delta)
			}
			return nil
		}
		// Retrain with the newly observed stride.
		p.stride[best] = delta
		p.hits[best] = 1
		p.lastLine[best] = int64(line)
		return nil
	}
	// Allocate the least recently used stream slot.
	victim := 0
	for i, lu := range p.lastUse {
		if lu < p.lastUse[victim] {
			victim = i
		}
	}
	p.lastLine[victim] = int64(line)
	p.lastUse[victim] = p.seq
	p.stride[victim] = 0
	p.hits[victim] = 0
	return nil
}

func (p *Prefetcher) emit(line Line, stride int64) []Line {
	n := p.cfg.Degree
	if n > len(p.scratch) {
		n = len(p.scratch)
	}
	for i := 0; i < n; i++ {
		p.scratch[i] = line + Line(stride*int64(i+1))
	}
	p.Issued += int64(n)
	return p.scratch[:n]
}

// Reset clears all trained streams (used between measurement phases).
func (p *Prefetcher) Reset() {
	for i := range p.lastLine {
		p.lastLine[i] = pfInactive
		p.lastUse[i] = 0
		p.stride[i] = 0
		p.hits[i] = 0
	}
	p.seq = 0
}
