package mem

import (
	"fmt"
	"testing"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

// refArrayCache reimplements the Cache semantics over the pre-tiling
// parallel whole-cache arrays (lines / stamps / dirty / empty, one entry per
// way across the whole cache). It is the correctness oracle for the tiled
// layout: every observable behaviour — hit/miss outcomes, victim identity
// and dirtiness, statistics, stamp values after renumbering, occupancy —
// must match bit-for-bit under lockstep operation streams. The twin keeps
// its own replacement RNG seeded identically, so PolicyRandom draws stay in
// sync as long as both sides make the same eviction decisions.
type refArrayCache struct {
	cfg       CacheConfig
	sets      int64
	setMask   int64
	assoc     int64
	lines     []int32 // sets*assoc packed tags; invalidTag marks empty
	stamps    []uint32
	dirty     []bool
	empty     []bool
	emptyWays int64
	seq       uint32
	renumbers int64
	lruStamp  bool
	stamped   bool
	rng       *xrand.Rand
	stats     CacheStats
}

func newRefArrayCache(cfg CacheConfig, seed uint64) *refArrayCache {
	r := &refArrayCache{
		cfg:      cfg,
		sets:     cfg.Sets(),
		setMask:  cfg.Sets() - 1,
		assoc:    int64(cfg.Assoc),
		lruStamp: cfg.Policy == PolicyLRU,
		stamped:  cfg.Policy == PolicyLRU || cfg.Policy == PolicyFIFO,
		rng:      xrand.New(seed),
	}
	n := r.sets * r.assoc
	r.lines = make([]int32, n)
	r.stamps = make([]uint32, n)
	r.dirty = make([]bool, n)
	r.empty = make([]bool, n)
	for i := range r.lines {
		r.lines[i] = invalidTag
		r.empty[i] = true
	}
	r.emptyWays = n
	return r
}

func (r *refArrayCache) renumber() {
	r.renumbers++
	if !r.stamped {
		r.seq = 0
		return
	}
	a := int(r.assoc)
	var order [32]int64
	for set := int64(0); set < r.sets; set++ {
		ws := r.stamps[set*r.assoc : set*r.assoc+r.assoc]
		for i := 0; i < a; i++ {
			order[i] = int64(i)
		}
		for i := 1; i < a; i++ {
			o := order[i]
			j := i
			for ; j > 0; j-- {
				p := order[j-1]
				if ws[p] < ws[o] || (ws[p] == ws[o] && p < o) {
					break
				}
				order[j] = p
			}
			order[j] = o
		}
		for rank, w := range order[:a] {
			ws[w] = uint32(rank) + 1
		}
	}
	r.seq = uint32(a)
}

func (r *refArrayCache) victimWay(base int64) int64 {
	if !r.stamped { // PolicyRandom
		return int64(r.rng.Intn(int(r.assoc)))
	}
	// First-wins linear scan on (stamp, way) — the order victimWay's packed
	// branch-free minimum is specified against.
	best := int64(0)
	for w := int64(1); w < r.assoc; w++ {
		if r.stamps[base+w] < r.stamps[base+best] {
			best = w
		}
	}
	return best
}

func (r *refArrayCache) probe(line Line, write bool, kind probeKind) (hit bool, victim Line, victimDirty bool) {
	if r.seq == ^uint32(0) {
		r.renumber()
	}
	r.seq++
	base := (int64(line) & r.setMask) * r.assoc
	for w := int64(0); w < r.assoc; w++ {
		if r.lines[base+w] != int32(line) {
			continue
		}
		switch kind {
		case probeDemand:
			r.stats.Hits++
			if r.lruStamp {
				r.stamps[base+w] = r.seq
			}
			if write {
				r.dirty[base+w] = true
			}
		case probeWriteback:
			r.dirty[base+w] = true
		}
		return true, InvalidLine, false
	}
	if kind == probeDemand {
		r.stats.Misses++
	}
	var w int64 = -1
	for i := int64(0); i < r.assoc; i++ {
		if r.empty[base+i] {
			w = i
			break
		}
	}
	if w >= 0 {
		r.empty[base+w] = false
		r.emptyWays--
		victim = InvalidLine
	} else {
		w = r.victimWay(base)
		victim = Line(r.lines[base+w])
		victimDirty = r.dirty[base+w]
		r.stats.Evictions++
		if victimDirty {
			r.stats.Writebacks++
		}
	}
	r.lines[base+w] = int32(line)
	if r.stamped {
		r.stamps[base+w] = r.seq
	}
	r.dirty[base+w] = kind == probeWriteback || (kind == probeDemand && write)
	return false, victim, victimDirty
}

func (r *refArrayCache) invalidate(line Line) (present, dirty bool) {
	base := (int64(line) & r.setMask) * r.assoc
	for w := int64(0); w < r.assoc; w++ {
		if r.lines[base+w] != int32(line) {
			continue
		}
		dirty = r.dirty[base+w]
		r.clearWay(base + w)
		r.stats.Invalidations++
		return true, dirty
	}
	return false, false
}

func (r *refArrayCache) clearWay(i int64) {
	r.emptyWays++
	r.empty[i] = true
	r.dirty[i] = false
	r.lines[i] = invalidTag
	if r.stamped {
		r.stamps[i] = 0
	}
}

func (r *refArrayCache) flush() {
	for i := range r.lines {
		if !r.empty[i] {
			r.clearWay(int64(i))
		}
	}
}

func (r *refArrayCache) lookup(line Line) bool {
	base := (int64(line) & r.setMask) * r.assoc
	for w := int64(0); w < r.assoc; w++ {
		if r.lines[base+w] == int32(line) {
			return true
		}
	}
	return false
}

func (r *refArrayCache) occupancy() int64 { return r.sets*r.assoc - r.emptyWays }

func (r *refArrayCache) countLinesIn(lo, hi Line) int64 {
	var n int64
	for i, l := range r.lines {
		if !r.empty[i] && Line(l) >= lo && Line(l) < hi {
			n++
		}
	}
	return n
}

// compareState checks every per-way bit of the tiled cache against the
// reference arrays: tags, empty and dirty masks, policy stamps, the derived
// occupancy, and the statistics counters.
func compareState(t *testing.T, c *Cache, r *refArrayCache, step int) {
	t.Helper()
	for set := int64(0); set < c.sets; set++ {
		tile := c.tiles[set*c.stride:]
		for w := int64(0); w < c.assoc; w++ {
			i := set*r.assoc + w
			wantTag := uint32(r.lines[i])
			if tile[tileTags+w] != wantTag {
				t.Fatalf("step %d: set %d way %d: tag %#x, reference %#x", step, set, w, tile[tileTags+w], wantTag)
			}
			if got := tile[tileEmpty]>>uint(w)&1 != 0; got != r.empty[i] {
				t.Fatalf("step %d: set %d way %d: empty %v, reference %v", step, set, w, got, r.empty[i])
			}
			if got := tile[tileDirty]>>uint(w)&1 != 0; got != r.dirty[i] {
				t.Fatalf("step %d: set %d way %d: dirty %v, reference %v", step, set, w, got, r.dirty[i])
			}
			if c.stamped {
				if got := c.stampAt(set, w); got != r.stamps[i] {
					t.Fatalf("step %d: set %d way %d: stamp %d, reference %d", step, set, w, got, r.stamps[i])
				}
			}
		}
	}
	if c.Occupancy() != r.occupancy() {
		t.Fatalf("step %d: occupancy %d, reference %d", step, c.Occupancy(), r.occupancy())
	}
	if c.Stats != r.stats {
		t.Fatalf("step %d: stats %+v, reference %+v", step, c.Stats, r.stats)
	}
	if c.renumbers != r.renumbers {
		t.Fatalf("step %d: renumbers %d, reference %d", step, c.renumbers, r.renumbers)
	}
}

// TestTiledCacheMatchesArrayReference drives the tiled cache and the
// array-layout reference twin through identical randomized operation
// streams — demand reads and writes, the storeUpgrade fast path, writeback
// and clean installs, invalidations, flushes, lookups, range counts and
// forced renumbers — across all three policies and associativities from 1
// to 32 ways (including odd widths whose tiles carry padding words). Every
// return value is compared per operation and the full per-way state
// periodically, mirroring the rebase and victim-queue lockstep fuzzes.
func TestTiledCacheMatchesArrayReference(t *testing.T) {
	const sets = 8
	for _, policy := range []Policy{PolicyLRU, PolicyFIFO, PolicyRandom} {
		for _, assoc := range []int{1, 2, 3, 5, 8, 16, 32} {
			t.Run(fmt.Sprintf("%s/assoc%d", policy, assoc), func(t *testing.T) {
				cfg := CacheConfig{
					Name:     "fuzz",
					Size:     sets * 64 * int64(assoc),
					LineSize: 64,
					Assoc:    assoc,
					Latency:  units.Cycles(1),
					Policy:   policy,
				}
				seed := uint64(0xC0FFEE) + uint64(policy)<<8 + uint64(assoc)
				c := NewCache(cfg, seed)
				ref := newRefArrayCache(cfg, seed)
				rng := xrand.New(seed * 0x9e3779b97f4a7c15)
				// ~4x capacity so misses keep evicting residents.
				lineSpace := int64(sets * assoc * 4)

				for step := 0; step < 6000; step++ {
					line := Line(rng.Intn(int(lineSpace)))
					switch op := rng.Intn(100); {
					case op < 45: // demand access
						write := rng.Intn(2) == 1
						h1, v1, d1 := c.Access(line, write)
						h2, v2, d2 := ref.probe(line, write, probeDemand)
						if h1 != h2 || v1 != v2 || d1 != d2 {
							t.Fatalf("step %d: Access(%d,%v) = (%v,%d,%v), reference (%v,%d,%v)",
								step, line, write, h1, v1, d1, h2, v2, d2)
						}
					case op < 60: // store after load: the hierarchy's RMW path
						c.Access(line, false)
						ref.probe(line, false, probeDemand)
						if !c.storeUpgrade(tagOf(line)) {
							c.Access(line, true)
						}
						ref.probe(line, true, probeDemand)
					case op < 70: // writeback install
						v1, d1 := c.InsertWriteback(line)
						_, v2, d2 := ref.probe(line, false, probeWriteback)
						if v1 != v2 || d1 != d2 {
							t.Fatalf("step %d: InsertWriteback(%d) = (%d,%v), reference (%d,%v)", step, line, v1, d1, v2, d2)
						}
					case op < 80: // clean (prefetch) install
						v1, d1 := c.InsertClean(line)
						_, v2, d2 := ref.probe(line, false, probeClean)
						if v1 != v2 || d1 != d2 {
							t.Fatalf("step %d: InsertClean(%d) = (%d,%v), reference (%d,%v)", step, line, v1, d1, v2, d2)
						}
					case op < 90: // invalidate
						p1, d1 := c.Invalidate(line)
						p2, d2 := ref.invalidate(line)
						if p1 != p2 || d1 != d2 {
							t.Fatalf("step %d: Invalidate(%d) = (%v,%v), reference (%v,%v)", step, line, p1, d1, p2, d2)
						}
					case op < 95: // lookup + range count
						if g, w := c.Lookup(line), ref.lookup(line); g != w {
							t.Fatalf("step %d: Lookup(%d) = %v, reference %v", step, line, g, w)
						}
						lo := Line(rng.Intn(int(lineSpace)))
						hi := lo + Line(rng.Intn(int(lineSpace)))
						if g, w := c.CountLinesIn(lo, hi), ref.countLinesIn(lo, hi); g != w {
							t.Fatalf("step %d: CountLinesIn(%d,%d) = %d, reference %d", step, lo, hi, g, w)
						}
					case op < 97: // force an imminent renumber
						s := ^uint32(0) - uint32(rng.Intn(3))
						c.seq = s
						ref.seq = s
					default: // rare full flush
						c.Flush()
						ref.flush()
					}
					if step%251 == 0 {
						compareState(t, c, ref, step)
					}
				}
				compareState(t, c, ref, 6000)
			})
		}
	}
}

// TestTileLayoutEdgeCases extends the SoA occupancy edge-case coverage to
// the tiled layout: empty sets cost nothing in CountLinesIn (their empty
// masks prune the walk), partially filled sets count exactly their valid
// ways, and invalidTag rows are never counted even though their bit pattern
// (^uint32(0)) reinterprets as line -1 — a value that would satisfy a
// signed range check if the empty mask failed to exclude it.
func TestTileLayoutEdgeCases(t *testing.T) {
	c := tinyCache(4, PolicyLRU) // 4 sets × 4 ways
	huge := Line(1) << 40

	// Entirely empty cache: nothing countable anywhere, including ranges
	// that span the invalidTag reinterpretation (-1).
	if n := c.CountLinesIn(-2, huge); n != 0 {
		t.Fatalf("empty cache counts %d lines in (-2, 2^40)", n)
	}
	if c.Occupancy() != 0 {
		t.Fatalf("empty cache occupancy = %d", c.Occupancy())
	}

	// Partially fill: one line in set 1, three in set 2, set 0 and 3 empty.
	for _, l := range []Line{1, 2, 6, 10} {
		c.Access(l, false)
	}
	if n := c.CountLinesIn(0, huge); n != 4 {
		t.Fatalf("partial fill counts %d lines, want 4", n)
	}
	if n := c.CountLinesIn(2, 7); n != 2 {
		t.Fatalf("CountLinesIn(2,7) = %d, want 2 (lines 2 and 6)", n)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}

	// Invalidate one: its row returns to invalidTag and must vanish from
	// counts without disturbing neighbours in the same tile.
	if present, _ := c.Invalidate(6); !present {
		t.Fatal("line 6 not resident before invalidate")
	}
	if n := c.CountLinesIn(-2, huge); n != 3 {
		t.Fatalf("after invalidate counts %d lines, want 3", n)
	}

	// A fully filled set alongside empties: fill set 3 completely (lines
	// congruent to 3 mod 4) and recheck both the full and a split range.
	for _, l := range []Line{3, 7, 11, 15} {
		c.Access(l, false)
	}
	if n := c.CountLinesIn(0, huge); n != 7 {
		t.Fatalf("full set 3 + partial counts %d lines, want 7", n)
	}
	total := c.CountLinesIn(0, huge)
	if split := c.CountLinesIn(0, 8) + c.CountLinesIn(8, huge); split != total {
		t.Fatalf("range split %d != total %d", split, total)
	}

	// Odd associativity tiles carry padding words up to the 16-word block
	// boundary; counting must ignore them entirely.
	odd := NewCache(CacheConfig{
		Name: "odd", Size: 4 * 64 * 5, LineSize: 64, Assoc: 5,
		Latency: units.Cycles(1), Policy: PolicyFIFO,
	}, 1)
	for l := Line(0); l < 20; l++ {
		odd.Access(l, l%2 == 0)
	}
	if n := odd.CountLinesIn(0, 20); n != 20 {
		t.Fatalf("5-way cache counts %d lines, want 20", n)
	}
	if odd.Occupancy() != 20 {
		t.Fatalf("5-way occupancy = %d, want 20", odd.Occupancy())
	}
}
