package mem

import (
	"testing"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

// testHierarchy returns a small two-core hierarchy: L1 1KB/2-way,
// L2 4KB/4-way, L3 16KB/8-way, 64B lines.
func testHierarchy(inclusive bool, pf PrefetchConfig) *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		Cores:       2,
		L1:          CacheConfig{Name: "L1", Size: 1 << 10, LineSize: 64, Assoc: 2, Latency: 4},
		L2:          CacheConfig{Name: "L2", Size: 4 << 10, LineSize: 64, Assoc: 4, Latency: 12},
		L3:          CacheConfig{Name: "L3", Size: 16 << 10, LineSize: 64, Assoc: 8, Latency: 36},
		Bus:         BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64},
		MemLatency:  180,
		InclusiveL3: inclusive,
		Prefetch:    pf,
		Clock:       units.NewClock(2.6),
		Seed:        42,
	})
}

func TestHierarchyValidate(t *testing.T) {
	bad := HierarchyConfig{Cores: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero cores should be invalid")
	}
	cfg := testHierarchy(false, PrefetchConfig{}).Config()
	cfg.L2.LineSize = 128
	if err := cfg.Validate(); err == nil {
		t.Fatal("mixed line sizes should be invalid")
	}
	cfg = testHierarchy(false, PrefetchConfig{}).Config()
	cfg.MemLatency = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative memory latency should be invalid")
	}
}

func TestAccessLatencyLevels(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	// Cold access: memory level, full latency.
	level, lat := h.Access(0, 0, 0, false)
	if level != LevelMem {
		t.Fatalf("cold access served by %v", level)
	}
	want := units.Cycles(36 + 10 + 180) // L3 lookup + transfer + DRAM
	if lat != want {
		t.Fatalf("cold latency = %d, want %d", lat, want)
	}
	// Immediate re-access: L1.
	level, lat = h.Access(0, 0, 20, false)
	if level != LevelL1 || lat != 4 {
		t.Fatalf("repeat access = %v/%d, want L1/4", level, lat)
	}
}

func TestL2AndL3HitPaths(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	// Touch 32 distinct lines: they fit in L2 (64 lines) but overflow
	// L1 (16 lines).
	for i := 0; i < 32; i++ {
		h.Access(0, Addr(i*64), units.Cycles(i*300), false)
	}
	// Line 0 was evicted from L1 but still sits in L2.
	level, lat := h.Access(0, 0, 100_000, false)
	if level != LevelL2 || lat != 12 {
		t.Fatalf("got %v/%d, want L2/12", level, lat)
	}
	// Touch 128 distinct lines: overflow L2 (64 lines) but fit L3 (256).
	h2 := testHierarchy(false, PrefetchConfig{})
	for i := 0; i < 128; i++ {
		h2.Access(0, Addr(i*64), units.Cycles(i*300), false)
	}
	level, lat = h2.Access(0, 0, 100_000, false)
	if level != LevelL3 || lat != 36 {
		t.Fatalf("got %v/%d, want L3/36", level, lat)
	}
}

func TestPerCoreCounters(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	h.Access(0, 0, 0, false)
	h.Access(0, 0, 10, false)
	h.Access(0, 64, 20, true)
	c := h.PerCore[0]
	if c.Loads != 2 || c.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", c.Loads, c.Stores)
	}
	if c.L1Hits != 1 || c.MemAccs != 2 {
		t.Fatalf("counters = %+v", c)
	}
	if c.L3MissRate() != 1 {
		t.Fatalf("L3 miss rate = %v, want 1", c.L3MissRate())
	}
	if h.PerCore[1].Accesses() != 0 {
		t.Fatal("core 1 counters polluted")
	}
}

func TestSharedL3VisibleAcrossCores(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	h.Access(0, 0, 0, false) // core 0 pulls the line into L3
	level, _ := h.Access(1, 0, 1000, false)
	if level != LevelL3 {
		t.Fatalf("core 1 found line at %v, want L3 (shared)", level)
	}
	// Private levels must NOT be shared.
	if h.L1[1].Lookup(0) == false {
		// after the L3 hit the line is filled into core 1's L1
		t.Fatal("L3 hit should fill core 1's private caches")
	}
	if h.L1[1].Lookup(1) {
		t.Fatal("unrelated line present in core 1's L1")
	}
}

func TestBusQueueingSlowsContendedMisses(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	// Uncontended miss first.
	_, lat0 := h.Access(0, 1<<20, 500, false)
	// A bulk transfer (e.g. NIC DMA) saturates the bus, then core 1 misses:
	// its fill queues behind the backlog.
	h.Bus.Request(510, 8<<10)
	_, lat1 := h.Access(1, 2<<20, 520, false)
	if lat1 <= lat0 {
		t.Fatalf("no queueing: lat0=%d lat1=%d", lat0, lat1)
	}
	if h.PerCore[1].BusWaitCycles == 0 {
		t.Fatal("queued core shows no bus wait")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	h := testHierarchy(true, PrefetchConfig{})
	// Core 0 loads line 0; it lives in core 0's L1, L2 and the L3.
	h.Access(0, 0, 0, false)
	if !h.L1[0].Lookup(0) || !h.L3.Lookup(0) {
		t.Fatal("setup failed")
	}
	// Force line 0 out of the L3: its set has 8 ways; L3 sets = 32.
	sets := h.L3.Config().Sets()
	for i := int64(1); i <= 8; i++ {
		h.Access(1, Addr(i*sets*64), units.Cycles(i*1000), false)
	}
	if h.L3.Lookup(0) {
		t.Fatal("line 0 should have been evicted from L3")
	}
	if h.L1[0].Lookup(0) || h.L2[0].Lookup(0) {
		t.Fatal("inclusive L3 eviction did not back-invalidate private caches")
	}
	if h.L1[0].Stats.Invalidations == 0 && h.L2[0].Stats.Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestNonInclusiveKeepsPrivateCopies(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	h.Access(0, 0, 0, false)
	sets := h.L3.Config().Sets()
	for i := int64(1); i <= 8; i++ {
		h.Access(1, Addr(i*sets*64), units.Cycles(i*1000), false)
	}
	if h.L3.Lookup(0) {
		t.Fatal("line 0 should have been evicted from L3")
	}
	if !h.L1[0].Lookup(0) {
		t.Fatal("non-inclusive eviction should leave the private copy")
	}
}

func TestDirtyEvictionGeneratesBusTraffic(t *testing.T) {
	h := testHierarchy(false, PrefetchConfig{})
	// Dirty a line, then push it out of every level by walking a working
	// set larger than the whole hierarchy.
	h.Access(0, 0, 0, true)
	before := h.Bus.Stats.Bytes
	now := units.Cycles(1000)
	for i := 1; i <= 512; i++ {
		h.Access(0, Addr(i*64), now, false)
		now += 300
	}
	// Total demand bytes would be 512 lines; any extra bytes are writebacks.
	extra := h.Bus.Stats.Bytes - before - 512*64
	if extra <= 0 {
		t.Fatalf("no writeback traffic observed (extra=%d)", extra)
	}
}

func TestPrefetchReducesSequentialLatency(t *testing.T) {
	pf := DefaultPrefetch()
	hOn := testHierarchy(false, pf)
	hOff := testHierarchy(false, PrefetchConfig{})
	var totOn, totOff units.Cycles
	now := units.Cycles(0)
	for i := 0; i < 512; i++ {
		addr := Addr(i * 64)
		_, l1 := hOn.Access(0, addr, now, false)
		_, l2 := hOff.Access(0, addr, now, false)
		totOn += l1
		totOff += l2
		now += 400
	}
	if totOn >= totOff {
		t.Fatalf("prefetch did not help: on=%d off=%d", totOn, totOff)
	}
	if hOn.PerCore[0].Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestPrefetchThrottledUnderBacklog(t *testing.T) {
	pf := DefaultPrefetch()
	h := testHierarchy(false, pf)
	// Saturate the bus far into the future, then do a strided walk: the
	// prefetcher must hold back.
	h.Bus.Request(0, 1<<20) // ~163k cycles of backlog
	for i := 0; i < 16; i++ {
		h.Access(0, Addr(i*64), 10, false)
	}
	if h.PerCore[0].Prefetches != 0 {
		t.Fatalf("prefetcher issued %d fills under saturation", h.PerCore[0].Prefetches)
	}
}

func TestInflightPrefetchChargesPartialLatency(t *testing.T) {
	pf := PrefetchConfig{Enabled: true, Streams: 4, Degree: 1, Window: 64, MaxLag: 1 << 20}
	h := testHierarchy(false, pf)
	now := units.Cycles(0)
	// Train a stride-1 stream; the third miss emits a prefetch for line 3.
	for i := 0; i < 3; i++ {
		h.Access(0, Addr(i*64), now, false)
		now += 250
	}
	if h.PerCore[0].Prefetches == 0 {
		t.Fatal("prefetch not issued")
	}
	// Access the prefetched line while its fill is still in flight (the
	// fill completes ~190 cycles after issue): latency must be above an L2
	// hit but below a full memory access.
	now -= 200
	level, lat := h.Access(0, Addr(3*64), now, false)
	if level == LevelMem {
		t.Fatalf("prefetched line missed to memory")
	}
	if lat <= 12 {
		t.Fatalf("in-flight prefetch served too fast: %d", lat)
	}
	full := units.Cycles(36 + 10 + 180)
	if lat >= full {
		t.Fatalf("in-flight prefetch no faster than memory: %d >= %d", lat, full)
	}
}

func TestResetStats(t *testing.T) {
	h := testHierarchy(false, DefaultPrefetch())
	for i := 0; i < 64; i++ {
		h.Access(0, Addr(i*64), units.Cycles(i*300), false)
	}
	h.ResetStats()
	if h.PerCore[0].Accesses() != 0 || h.Bus.Stats.Bytes != 0 || h.L3.Stats.Accesses() != 0 {
		t.Fatal("stats not cleared")
	}
	// Cache contents must survive the reset.
	if level, _ := h.Access(0, 0, 1_000_000, false); level == LevelMem {
		t.Fatal("reset flushed cache contents")
	}
}

func TestHierarchyDeterminism(t *testing.T) {
	run := func() ([]Level, int64) {
		h := testHierarchy(true, DefaultPrefetch())
		r := xrand.New(99)
		levels := make([]Level, 0, 500)
		now := units.Cycles(0)
		for i := 0; i < 500; i++ {
			addr := Addr(r.Intn(1 << 16))
			lv, lat := h.Access(r.Intn(2), addr, now, r.Intn(4) == 0)
			levels = append(levels, lv)
			now += units.Cycles(lat)
		}
		return levels, h.Bus.Stats.Bytes
	}
	l1, b1 := run()
	l2, b2 := run()
	if b1 != b2 {
		t.Fatalf("bus bytes differ: %d vs %d", b1, b2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("levels diverge at %d", i)
		}
	}
}

func TestCSThrStyleOccupancyPinning(t *testing.T) {
	// A rapidly re-touched buffer must pin its lines in the L3 against a
	// slowly cycling large scan — the core CSThr mechanism. Per the paper's
	// own design rule the hot buffer must exceed the private caches (else
	// it never re-touches the L3); here it is 2x the L2 and 1/2 the L3.
	h := testHierarchy(false, PrefetchConfig{})
	r := xrand.New(7)
	const hotLines = 128 // 8KB hot buffer: 2x L2, 1/2 L3
	hotBase := Addr(0)
	scanBase := Addr(1 << 20)
	const scanLines = 1024 // 64KB scan, 4x the L3
	now := units.Cycles(0)
	scan := 0
	for i := 0; i < 200_000; i++ {
		// Hot thread touches ~8x more often than the scanner.
		if i%9 != 8 {
			h.Access(0, hotBase+Addr(r.Intn(hotLines)*64), now, true)
		} else {
			h.Access(1, scanBase+Addr(scan%scanLines*64), now, false)
			scan++
		}
		now += 40
	}
	held := h.L3.CountLinesIn(LineOf(hotBase, 64), LineOf(hotBase, 64)+hotLines)
	if held < hotLines*9/10 {
		t.Fatalf("hot buffer holds only %d/%d lines in L3", held, hotLines)
	}
}
