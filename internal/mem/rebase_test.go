package mem

import (
	"testing"

	"activemem/internal/xrand"
)

// refWayCache is an int64-stamp reference implementation of the cache's
// replacement behaviour: stamps never wrap, so it needs no renumbering. The
// rebase stress test drives it in lockstep with the real uint32-stamp cache
// to prove that renumbering passes preserve every eviction decision.
type refWayCache struct {
	assoc, setMask int64
	lines          []int64 // -1 = empty
	stamps         []int64
	dirty          []bool
	seq            int64
	fifo           bool
}

func newRefWayCache(cfg CacheConfig) *refWayCache {
	n := cfg.Sets() * int64(cfg.Assoc)
	r := &refWayCache{
		assoc:   int64(cfg.Assoc),
		setMask: cfg.Sets() - 1,
		lines:   make([]int64, n),
		stamps:  make([]int64, n),
		dirty:   make([]bool, n),
		fifo:    cfg.Policy == PolicyFIFO,
	}
	for i := range r.lines {
		r.lines[i] = -1
	}
	return r
}

func (r *refWayCache) find(line Line) int64 {
	base := (int64(line) & r.setMask) * r.assoc
	for i := base; i < base+r.assoc; i++ {
		if r.lines[i] == int64(line) {
			return i
		}
	}
	return -1
}

// fill mirrors Cache.fill: lowest empty way first, else the way minimising
// (stamp, way).
func (r *refWayCache) fill(line Line, dirty bool) (Line, bool) {
	base := (int64(line) & r.setMask) * r.assoc
	slot := int64(-1)
	for i := base; i < base+r.assoc; i++ {
		if r.lines[i] == -1 {
			slot = i
			break
		}
	}
	victim, victimDirty := InvalidLine, false
	if slot < 0 {
		slot = base
		for i := base + 1; i < base+r.assoc; i++ {
			if r.stamps[i] < r.stamps[slot] {
				slot = i
			}
		}
		victim, victimDirty = Line(r.lines[slot]), r.dirty[slot]
	}
	r.lines[slot] = int64(line)
	r.stamps[slot] = r.seq
	r.dirty[slot] = dirty
	return victim, victimDirty
}

func (r *refWayCache) access(line Line, write bool) (bool, Line, bool) {
	r.seq++
	if i := r.find(line); i >= 0 {
		if !r.fifo {
			r.stamps[i] = r.seq
		}
		if write {
			r.dirty[i] = true
		}
		return true, InvalidLine, false
	}
	v, d := r.fill(line, write)
	return false, v, d
}

func (r *refWayCache) insertWriteback(line Line) (Line, bool) {
	r.seq++
	if i := r.find(line); i >= 0 {
		r.dirty[i] = true
		return InvalidLine, false
	}
	return r.fill(line, true)
}

func (r *refWayCache) insertClean(line Line) (Line, bool) {
	r.seq++
	if i := r.find(line); i >= 0 {
		return InvalidLine, false
	}
	return r.fill(line, false)
}

func (r *refWayCache) invalidate(line Line) bool {
	if i := r.find(line); i >= 0 {
		r.lines[i] = -1
		r.stamps[i] = 0
		r.dirty[i] = false
		return true
	}
	return false
}

// TestStampRebaseMatchesInt64Reference forces the 32-bit sequence counter to
// the wrap threshold repeatedly mid-run and asserts that every observable
// outcome (hit, victim identity, victim dirtiness, invalidate presence) stays
// identical to the never-wrapping int64 reference, for both stamp policies
// and across all insertion paths.
func TestStampRebaseMatchesInt64Reference(t *testing.T) {
	for _, pol := range []Policy{PolicyLRU, PolicyFIFO} {
		cfg := CacheConfig{Name: "R", Size: 8 * 64 * 4, LineSize: 64,
			Assoc: 4, Latency: 1, Policy: pol}
		c := NewCache(cfg, 1)
		ref := newRefWayCache(cfg)
		r := xrand.New(99)
		for i := 0; i < 200_000; i++ {
			if i%20_000 == 1_000 {
				// Leave only a handful of ticks before the counter exhausts
				// the stamp space, forcing a renumbering pass shortly.
				c.seq = ^uint32(0) - 3
			}
			line := Line(r.Intn(256))
			write := r.Intn(2) == 0
			switch r.Intn(12) {
			case 0:
				p1, d1 := c.Invalidate(line)
				p2 := ref.invalidate(line)
				if p1 != p2 {
					t.Fatalf("%s op %d: Invalidate(%d) present %v, reference %v",
						pol, i, line, p1, p2)
				}
				_ = d1
			case 1:
				v1, d1 := c.InsertWriteback(line)
				v2, d2 := ref.insertWriteback(line)
				if v1 != v2 || d1 != d2 {
					t.Fatalf("%s op %d: InsertWriteback(%d) = (%d,%v), reference (%d,%v)",
						pol, i, line, v1, d1, v2, d2)
				}
			case 2:
				v1, d1 := c.InsertClean(line)
				v2, d2 := ref.insertClean(line)
				if v1 != v2 || d1 != d2 {
					t.Fatalf("%s op %d: InsertClean(%d) = (%d,%v), reference (%d,%v)",
						pol, i, line, v1, d1, v2, d2)
				}
			default:
				h1, v1, d1 := c.Access(line, write)
				h2, v2, d2 := ref.access(line, write)
				if h1 != h2 || v1 != v2 || d1 != d2 {
					t.Fatalf("%s op %d: Access(%d,%v) = (%v,%d,%v), reference (%v,%d,%v)",
						pol, i, line, write, h1, v1, d1, h2, v2, d2)
				}
			}
		}
		if c.renumbers < 5 {
			t.Fatalf("%s: %d renumbering passes, want several (forcing broken?)", pol, c.renumbers)
		}
	}
}

// TestStampRebaseRandomPolicy pins that a Random-policy cache (which keeps no
// stamps) survives counter exhaustion by simply restarting its sequence.
func TestStampRebaseRandomPolicy(t *testing.T) {
	c := NewCache(CacheConfig{Name: "R", Size: 4 * 64 * 4, LineSize: 64,
		Assoc: 4, Latency: 1, Policy: PolicyRandom}, 1)
	c.seq = ^uint32(0) - 1
	for i := Line(0); i < 64; i++ {
		c.Access(i, false)
	}
	if c.renumbers != 1 {
		t.Fatalf("renumbers = %d, want 1", c.renumbers)
	}
	if c.Occupancy() != 16 {
		t.Fatalf("occupancy = %d after wrap, want 16", c.Occupancy())
	}
}

// TestRenumberPreservesVictimOrder is the white-box check: stamp a set with
// an adversarial recency pattern, renumber directly, and assert the full
// eviction order of the set is untouched.
func TestRenumberPreservesVictimOrder(t *testing.T) {
	c := NewCache(CacheConfig{Name: "W", Size: 2 * 64 * 8, LineSize: 64,
		Assoc: 8, Latency: 1, Policy: PolicyLRU}, 1)
	sets := c.cfg.Sets()
	// Fill set 0, then touch in a shuffled order to scramble recency.
	for i := int64(0); i < 8; i++ {
		c.Access(Line(i*sets), false)
	}
	for _, i := range []int64{5, 2, 7, 0, 4, 1, 6, 3} {
		c.Access(Line(i*sets), false)
	}
	want := make([]uint32, 8)
	for w := int64(0); w < 8; w++ {
		want[w] = c.stampAt(0, w)
	}
	c.renumber()
	got := make([]uint32, 8)
	for w := int64(0); w < 8; w++ {
		got[w] = c.stampAt(0, w)
	}
	// Ranks must order exactly as the original stamps did.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (want[i] < want[j]) != (got[i] < got[j]) {
				t.Fatalf("renumber reordered ways %d and %d: %v -> %v",
					i, j, want, got)
			}
		}
	}
	if c.seq != 8 {
		t.Fatalf("seq after renumber = %d, want assoc", c.seq)
	}
}
