package mem

import (
	"fmt"

	"activemem/internal/units"
)

// BusConfig describes the bandwidth-limited channel between a shared cache
// and main memory. Transfer occupancy is the rational CyclesPerChunk /
// BytesPerChunk, e.g. {10, 64}: one 64-byte line every 10 cycles, which at
// 2.6 GHz is the ≈16.6 GB/s the paper's STREAM run measures on Xeon20MB.
type BusConfig struct {
	CyclesPerChunk units.Cycles
	BytesPerChunk  int64

	// EpochBits sets the capacity-accounting granularity: the bus tracks
	// used cycles per 2^EpochBits-cycle epoch, so requests from engine
	// steps that interleave slightly out of global time order can still
	// fill recent idle capacity (a strict FIFO would strand it). 0 selects
	// the default of 9 (512-cycle epochs).
	EpochBits uint

	// LagEpochs is how many epochs behind the newest observed request time
	// remain open for backfilling; it must exceed the largest engine step
	// span. 0 selects the default of 16.
	LagEpochs int64
}

func (c BusConfig) epochBits() uint {
	if c.EpochBits == 0 {
		return 9
	}
	return c.EpochBits
}

func (c BusConfig) lagEpochs() int64 {
	if c.LagEpochs == 0 {
		return 16
	}
	return c.LagEpochs
}

// Validate checks the rational rate.
func (c BusConfig) Validate() error {
	if c.CyclesPerChunk <= 0 || c.BytesPerChunk <= 0 {
		return fmt.Errorf("mem: bus rate %d cycles per %d bytes invalid", c.CyclesPerChunk, c.BytesPerChunk)
	}
	if c.epochBits() > 20 {
		return fmt.Errorf("mem: bus epoch bits %d too large", c.EpochBits)
	}
	if int64(c.CyclesPerChunk) > 1<<c.epochBits() {
		return fmt.Errorf("mem: one chunk transfer exceeds an epoch")
	}
	return nil
}

// PeakGBs returns the peak bandwidth for a clock.
func (c BusConfig) PeakGBs(clock units.Clock) float64 {
	return clock.BandwidthGBs(c.BytesPerChunk, c.CyclesPerChunk)
}

// BusStats accumulates bus activity over a measurement window.
type BusStats struct {
	Requests   int64
	Bytes      int64
	BusyCycles int64 // cycles of transfer capacity consumed
	WaitCycles int64 // cycles requests spent queued behind earlier transfers
}

// Bus is a bandwidth-capacity scheduler: each epoch provides 2^EpochBits
// cycles of transfer capacity, and a request consumes capacity starting at
// its submission time, spilling into later epochs when the channel is
// saturated. Queueing delay — the mechanism by which BWThr interference
// slows an application's cache misses — emerges when demand approaches the
// epoch capacity.
type Bus struct {
	cfg      BusConfig
	bits     uint
	epochLen int64
	lag      int64

	used    []int64 // ring: consumed cycles per epoch
	head    int64   // first epoch index still open for booking
	maxSeen int64   // newest request time observed
	lastEnd units.Cycles

	// Stats accumulates activity; callers may reset it between windows.
	Stats BusStats
}

// NewBus builds a bus; it panics on an invalid rate.
func NewBus(cfg BusConfig) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	b := &Bus{
		cfg:      cfg,
		bits:     cfg.epochBits(),
		epochLen: 1 << cfg.epochBits(),
		lag:      cfg.lagEpochs(),
	}
	b.used = make([]int64, 256)
	return b
}

// Config returns the bus rate.
func (b *Bus) Config() BusConfig { return b.cfg }

// occupancy returns the transfer time for n bytes, rounded up.
func (b *Bus) occupancy(n int64) units.Cycles {
	return units.Cycles((n*int64(b.cfg.CyclesPerChunk) + b.cfg.BytesPerChunk - 1) / b.cfg.BytesPerChunk)
}

// slot returns a pointer to the ring entry for epoch e, growing the ring if
// the booking horizon exceeds its current span.
func (b *Bus) slot(e int64) *int64 {
	for e-b.head >= int64(len(b.used)) {
		grown := make([]int64, len(b.used)*2)
		for i := int64(0); i < int64(len(b.used)); i++ {
			grown[(b.head+i)%int64(len(grown))] = b.used[(b.head+i)%int64(len(b.used))]
		}
		b.used = grown
	}
	return &b.used[e%int64(len(b.used))]
}

// advance closes epochs that have fallen out of the lag window behind now.
func (b *Bus) advance(now units.Cycles) {
	if int64(now) > b.maxSeen {
		b.maxSeen = int64(now)
	}
	newHead := b.maxSeen>>b.bits - b.lag
	for b.head < newHead {
		b.used[b.head%int64(len(b.used))] = 0
		b.head++
	}
	if b.head < 0 {
		b.head = 0
	}
}

// Request schedules a transfer of n bytes submitted at time now and returns
// when the transfer starts and completes. Each epoch is a capacity bucket:
// the transfer consumes capacity from the submission epoch onward, and its
// completion is floored by the cumulative capacity already consumed in its
// final epoch, so sustained demand beyond the channel rate produces genuine
// queueing delay. Requests may arrive modestly out of global time order
// (bounded by the lag window, matching the engine's bounded step spans);
// capacity older than the lag is forfeited. Intra-epoch ordering of lightly
// loaded epochs is approximated optimistically, an error bounded by one
// epoch length.
func (b *Bus) Request(now units.Cycles, n int64) (start, done units.Cycles) {
	if n <= 0 {
		return now, now
	}
	occ := b.occupancy(n)
	b.advance(now)
	e := int64(now) >> b.bits
	if e < b.head {
		e = b.head
		now = units.Cycles(e << b.bits)
	}
	rem := int64(occ)
	for rem > 0 {
		slot := b.slot(e)
		free := b.epochLen - *slot
		if free > 0 {
			take := free
			if take > rem {
				take = rem
			}
			*slot += take
			rem -= take
			if rem == 0 {
				done = units.Cycles(e<<b.bits + *slot)
				break
			}
		}
		e++
	}
	if done < now+occ {
		done = now + occ
	}
	start = done - occ
	if start < now {
		start = now
	}
	if done > b.lastEnd {
		b.lastEnd = done
	}
	b.Stats.Requests++
	b.Stats.Bytes += n
	b.Stats.BusyCycles += int64(occ)
	b.Stats.WaitCycles += int64(start - now)
	return start, done
}

// Backlog returns how far transfer bookings extend beyond now; prefetchers
// use it to throttle under contention.
func (b *Bus) Backlog(now units.Cycles) units.Cycles {
	if b.lastEnd <= now {
		return 0
	}
	return b.lastEnd - now
}

// Utilization returns the fraction of a window's cycles the bus spent
// transferring, based on a stats delta for that window.
func Utilization(s BusStats, windowCycles units.Cycles) float64 {
	if windowCycles <= 0 {
		return 0
	}
	u := float64(s.BusyCycles) / float64(windowCycles)
	if u > 1 {
		u = 1
	}
	return u
}

// DeltaBus returns now-minus-then for bus stats snapshots.
func DeltaBus(then, now BusStats) BusStats {
	return BusStats{
		Requests:   now.Requests - then.Requests,
		Bytes:      now.Bytes - then.Bytes,
		BusyCycles: now.BusyCycles - then.BusyCycles,
		WaitCycles: now.WaitCycles - then.WaitCycles,
	}
}
