// Package mem implements the memory-hierarchy substrate of the simulator:
// set-associative caches with pluggable replacement, an occupancy-accounted
// memory bus with FIFO queueing, a reference stride prefetcher, and the
// per-socket Hierarchy that composes them.
//
// This package stands in for the paper's physical Xeon E5-2670 socket
// (Table I) plus its hardware performance counters: interference between
// workloads emerges from LRU competition in the shared L3 and from queueing
// on the bandwidth-limited memory bus, which are exactly the mechanisms the
// paper's interference threads exploit.
package mem

// Addr is a byte address in the simulated flat address space.
type Addr int64

// Line is a cache-line number (an Addr divided by the line size).
type Line int64

// InvalidLine marks an empty cache way or a "no victim" result.
const InvalidLine Line = -1

// LineOf returns the cache line containing addr for the given line size
// (which must be a power of two).
func LineOf(addr Addr, lineSize int64) Line {
	return Line(int64(addr) &^ (lineSize - 1) / lineSize)
}

// AddrOf returns the first byte address of line.
func AddrOf(line Line, lineSize int64) Addr {
	return Addr(int64(line) * lineSize)
}

// Alloc is a bump allocator for the simulated address space. Allocations are
// line-aligned and separated by one guard line so that independent workloads
// never share a cache line. The zero value allocates from address 0; use
// NewAlloc to choose the line size.
type Alloc struct {
	next     Addr
	lineSize int64
}

// NewAlloc returns an allocator that aligns to lineSize (a power of two).
func NewAlloc(lineSize int64) *Alloc {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a positive power of two")
	}
	return &Alloc{lineSize: lineSize}
}

// Alloc reserves size bytes and returns the line-aligned base address.
func (a *Alloc) Alloc(size int64) Addr {
	if size <= 0 {
		panic("mem: allocation size must be positive")
	}
	base := a.next
	// Round the allocation up to whole lines and add a guard line.
	lines := (size + a.lineSize - 1) / a.lineSize
	a.next += Addr((lines + 1) * a.lineSize)
	return base
}

// Next reports the next address that would be returned; useful in tests.
func (a *Alloc) Next() Addr { return a.next }
