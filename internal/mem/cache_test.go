package mem

import (
	"testing"
	"testing/quick"

	"activemem/internal/units"
	"activemem/internal/xrand"
)

func tinyCache(assoc int, policy Policy) *Cache {
	return NewCache(CacheConfig{
		Name: "T", Size: int64(assoc) * 4 * 64, LineSize: 64, Assoc: assoc,
		Latency: 1, Policy: policy,
	}, 1)
}

func TestLineOfAddrOf(t *testing.T) {
	if LineOf(0, 64) != 0 || LineOf(63, 64) != 0 || LineOf(64, 64) != 1 {
		t.Fatal("LineOf boundaries wrong")
	}
	if AddrOf(3, 64) != 192 {
		t.Fatal("AddrOf wrong")
	}
	for a := Addr(0); a < 1024; a += 17 {
		l := LineOf(a, 64)
		base := AddrOf(l, 64)
		if a < base || a >= base+64 {
			t.Fatalf("addr %d not within its line %d", a, l)
		}
	}
}

func TestAllocAlignmentAndGuard(t *testing.T) {
	a := NewAlloc(64)
	p1 := a.Alloc(100) // rounds to 2 lines + guard
	p2 := a.Alloc(64)
	if p1%64 != 0 || p2%64 != 0 {
		t.Fatal("allocations not line aligned")
	}
	if p2-p1 < 128+64 {
		t.Fatalf("no guard line between allocations: %d", p2-p1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) should panic")
		}
	}()
	a.Alloc(0)
}

func TestNewAllocValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non power of two line size should panic")
		}
	}()
	NewAlloc(48)
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "ok", Size: 4096, LineSize: 64, Assoc: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "zero", Size: 0, LineSize: 64, Assoc: 4},
		{Name: "npo2line", Size: 4096, LineSize: 48, Assoc: 4},
		{Name: "indivisible", Size: 4096 + 64, LineSize: 64, Assoc: 4},
		{Name: "npo2sets", Size: 3 * 64 * 4, LineSize: 64, Assoc: 4},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := tinyCache(4, PolicyLRU)
	hit, _, _ := c.Access(10, false)
	if hit {
		t.Fatal("first access should miss")
	}
	hit, _, _ = c.Access(10, false)
	if !hit {
		t.Fatal("second access should hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Stats.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", c.Stats.MissRate())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := tinyCache(4, PolicyLRU) // 4 sets, 4 ways
	sets := c.cfg.Sets()
	// Fill one set with 4 lines: 0, sets, 2*sets, 3*sets all map to set 0.
	for i := int64(0); i < 4; i++ {
		c.Access(Line(i*sets), false)
	}
	// Touch line 0 to make it MRU; line sets (i=1) becomes LRU.
	c.Access(0, false)
	_, victim, _ := c.Access(Line(4*sets), false) // forces eviction
	if victim != Line(sets) {
		t.Fatalf("victim = %d, want %d (the LRU line)", victim, sets)
	}
	if !c.Lookup(0) {
		t.Fatal("MRU line was evicted")
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := tinyCache(4, PolicyFIFO)
	sets := c.cfg.Sets()
	for i := int64(0); i < 4; i++ {
		c.Access(Line(i*sets), false)
	}
	// Re-touching line 0 must NOT save it under FIFO.
	c.Access(0, false)
	_, victim, _ := c.Access(Line(4*sets), false)
	if victim != 0 {
		t.Fatalf("FIFO victim = %d, want 0 (first inserted)", victim)
	}
}

func TestRandomPolicyStaysInSet(t *testing.T) {
	c := tinyCache(4, PolicyRandom)
	sets := c.cfg.Sets()
	for i := int64(0); i < 16; i++ {
		_, victim, _ := c.Access(Line(i*sets), false)
		if victim != InvalidLine && int64(victim)%sets != 0 {
			t.Fatalf("random victim %d not from set 0", victim)
		}
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := tinyCache(2, PolicyLRU)
	sets := c.cfg.Sets()
	c.Access(0, true) // dirty
	c.Access(Line(sets), false)
	_, victim, dirty := c.Access(Line(2*sets), false)
	if victim != 0 || !dirty {
		t.Fatalf("victim=%d dirty=%v, want 0/true", victim, dirty)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c := tinyCache(2, PolicyLRU)
	sets := c.cfg.Sets()
	c.Access(0, false) // clean insert
	c.Access(0, true)  // hit, becomes dirty
	c.Access(Line(sets), false)
	_, victim, dirty := c.Access(Line(2*sets), false)
	if victim != 0 || !dirty {
		t.Fatalf("line dirtied on hit not written back: victim=%d dirty=%v", victim, dirty)
	}
}

func TestInsertWritebackSemantics(t *testing.T) {
	c := tinyCache(2, PolicyLRU)
	// Insert new dirty line without demand stats.
	v, d := c.InsertWriteback(5)
	if v != InvalidLine || d {
		t.Fatal("insert into empty set should not evict")
	}
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Fatalf("writeback insert polluted demand stats: %+v", c.Stats)
	}
	if !c.Lookup(5) {
		t.Fatal("writeback line not present")
	}
	// Writeback to an existing clean line dirties it.
	c.Access(9, false)
	c.InsertWriteback(9)
	sets := c.cfg.Sets()
	c.Access(9+Line(sets), false)
	// Fill the set of 9 and evict it; must be dirty. Set index of 9 is 1.
	_, victim, dirty := c.Access(9+Line(2*sets), false)
	if victim != 9 || !dirty {
		t.Fatalf("victim=%d dirty=%v, want 9/true", victim, dirty)
	}
}

func TestInsertCleanDoesNotDirty(t *testing.T) {
	c := tinyCache(2, PolicyLRU)
	c.InsertClean(3)
	if !c.Lookup(3) {
		t.Fatal("clean insert missing")
	}
	sets := c.cfg.Sets()
	c.Access(3+Line(sets), false)
	_, victim, dirty := c.Access(3+Line(2*sets), false)
	if victim != 3 || dirty {
		t.Fatalf("victim=%d dirty=%v, want 3/false", victim, dirty)
	}
}

func TestInvalidate(t *testing.T) {
	c := tinyCache(2, PolicyLRU)
	c.Access(7, true)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Lookup(7) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(7)
	if present {
		t.Fatal("double invalidate reported present")
	}
	if c.Stats.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", c.Stats.Invalidations)
	}
}

func TestOccupancyAndCount(t *testing.T) {
	c := tinyCache(4, PolicyLRU)
	for i := Line(0); i < 8; i++ {
		c.Access(i, false)
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy = %d, want 8", c.Occupancy())
	}
	if got := c.CountLinesIn(0, 4); got != 4 {
		t.Fatalf("CountLinesIn(0,4) = %d, want 4", got)
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatal("flush left lines behind")
	}
}

// Property: occupancy never exceeds capacity, and the most recently
// accessed line is always resident.
func TestCacheInvariants(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		c := NewCache(CacheConfig{
			Name: "P", Size: 8 * 64 * 4, LineSize: 64, Assoc: 4, Latency: 1,
		}, seed)
		capacity := c.cfg.Size / c.cfg.LineSize
		for _, r := range raw {
			line := Line(r % 512)
			c.Access(line, r&1 == 0)
			if !c.Lookup(line) {
				return false
			}
			if c.Occupancy() > capacity {
				return false
			}
		}
		return c.Stats.Hits+c.Stats.Misses == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: with unique lines cycling through one set, hit rate is zero when
// the working set exceeds associativity (classic LRU thrash), and one when
// it fits.
func TestLRUThrashAndFit(t *testing.T) {
	c := tinyCache(4, PolicyLRU)
	sets := c.cfg.Sets()
	// Working set of 5 lines in a 4-way set, accessed round robin: all miss.
	c.Stats = CacheStats{}
	for pass := 0; pass < 10; pass++ {
		for i := int64(0); i < 5; i++ {
			c.Access(Line(i*sets), false)
		}
	}
	if c.Stats.Hits != 0 {
		t.Fatalf("thrashing set produced %d hits", c.Stats.Hits)
	}
	// Working set of 4 lines: all hits after the first pass.
	c2 := tinyCache(4, PolicyLRU)
	for pass := 0; pass < 10; pass++ {
		for i := int64(0); i < 4; i++ {
			c2.Access(Line(i*sets), false)
		}
	}
	if c2.Stats.Misses != 4 {
		t.Fatalf("fitting set missed %d times, want 4 cold misses", c2.Stats.Misses)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLRU.String() != "LRU" || PolicyFIFO.String() != "FIFO" ||
		PolicyRandom.String() != "Random" || Policy(9).String() != "Policy(9)" {
		t.Fatal("policy names wrong")
	}
}

func TestBusOccupancyAndQueueing(t *testing.T) {
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	start, done := b.Request(100, 64)
	if start != 100 || done != 110 {
		t.Fatalf("first transfer = [%d,%d], want [100,110]", start, done)
	}
	// Saturate the current epoch (512 cycles of capacity): a 32-line burst
	// books 320 more cycles, then another burst spills into the next epoch
	// and must wait.
	b.Request(100, 32*64)
	start, done = b.Request(100, 32*64)
	if done <= 512 {
		t.Fatalf("saturated epoch did not spill: done=%d", done)
	}
	if start <= 100 {
		t.Fatalf("spilled transfer shows no queueing: start=%d", start)
	}
	if b.Stats.WaitCycles == 0 {
		t.Fatal("no wait cycles recorded under saturation")
	}
	// Idle gap: request far in the future starts immediately.
	start, _ = b.Request(100_000, 128)
	if start != 100_000 {
		t.Fatalf("idle bus delayed transfer to %d", start)
	}
	if b.Stats.Bytes != 64+2*32*64+128 {
		t.Fatalf("bytes = %d", b.Stats.Bytes)
	}
}

func TestBusParallelStreamsShareCapacity(t *testing.T) {
	// Two interleaved request streams whose combined demand fits the
	// channel must both proceed without queueing — the case a strict FIFO
	// tail-append model gets wrong.
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	var waits units.Cycles
	for i := 0; i < 50; i++ {
		now := units.Cycles(i * 40) // 2 lines per 40 cycles = 50% load
		s1, _ := b.Request(now, 64)
		s2, _ := b.Request(now, 64)
		waits += (s1 - now) + (s2 - now)
	}
	if waits > 50 {
		t.Fatalf("parallel streams at 50%% load accumulated %d wait cycles", waits)
	}
}

func TestBusZeroBytesNoOp(t *testing.T) {
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	start, done := b.Request(55, 0)
	if start != 55 || done != 55 {
		t.Fatalf("zero-byte request = [%d,%d]", start, done)
	}
	if b.Stats.Requests != 0 {
		t.Fatal("zero-byte request counted")
	}
}

func TestBusPartialChunkRoundsUp(t *testing.T) {
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	_, done := b.Request(0, 1)
	if done != 1 { // ceil(1*10/64) = 1
		t.Fatalf("1-byte transfer done at %d, want 1", done)
	}
	_, done = b.Request(1000, 65)
	if done != 1000+11 { // ceil(65*10/64) = 11
		t.Fatalf("65-byte transfer took %d, want 11", done-1000)
	}
}

func TestBusValidate(t *testing.T) {
	if (BusConfig{CyclesPerChunk: 0, BytesPerChunk: 64}).Validate() == nil {
		t.Error("zero rate accepted")
	}
	if (BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64, EpochBits: 25}).Validate() == nil {
		t.Error("oversized epoch accepted")
	}
	if (BusConfig{CyclesPerChunk: 600, BytesPerChunk: 64, EpochBits: 9}).Validate() == nil {
		t.Error("chunk longer than epoch accepted")
	}
}

func TestBusRingGrowth(t *testing.T) {
	// A multi-megabyte DMA transfer books far beyond the initial ring span;
	// the ring must grow rather than corrupt state.
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	start, done := b.Request(0, 4<<20) // 4 MB = 655360 cycles of occupancy
	if start != 0 {
		t.Fatalf("start = %d", start)
	}
	if done < 655360 {
		t.Fatalf("done = %d, want >= 655360", done)
	}
	// A later request queues behind the DMA.
	s, _ := b.Request(1000, 64)
	if s <= 1000 {
		t.Fatalf("request during DMA shows no queueing: start=%d", s)
	}
}

func TestBusPeakBandwidth(t *testing.T) {
	clock := units.NewClock(2.6)
	cfg := BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64}
	got := cfg.PeakGBs(clock)
	if got < 16.5 || got > 16.8 {
		t.Fatalf("peak = %v GB/s, want ~16.64", got)
	}
}

func TestBusBacklogAndUtilization(t *testing.T) {
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	b.Request(0, 640) // busy until 100
	if got := b.Backlog(20); got != 80 {
		t.Fatalf("backlog = %d, want 80", got)
	}
	if got := b.Backlog(200); got != 0 {
		t.Fatalf("idle backlog = %d, want 0", got)
	}
	if u := Utilization(b.Stats, 200); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := Utilization(b.Stats, 50); u != 1 {
		t.Fatalf("utilization should clamp to 1, got %v", u)
	}
	if Utilization(b.Stats, 0) != 0 {
		t.Fatal("zero window should give zero utilization")
	}
}

func TestDeltaBus(t *testing.T) {
	b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
	b.Request(0, 64)
	snap := b.Stats
	b.Request(100, 64)
	d := DeltaBus(snap, b.Stats)
	if d.Requests != 1 || d.Bytes != 64 || d.BusyCycles != 10 {
		t.Fatalf("delta = %+v", d)
	}
}

// Property: over any long horizon, the bus never delivers more than its
// capacity, and completions always cover the request's occupancy.
func TestBusCapacityConservation(t *testing.T) {
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		b := NewBus(BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64})
		now := units.Cycles(0)
		var lastDone units.Cycles
		for i := 0; i < 500; i++ {
			now += units.Cycles(r.Intn(50))
			bytes := int64(r.Intn(4096) + 1)
			start, done := b.Request(now, bytes)
			occ := units.Cycles((bytes*10 + 63) / 64)
			if start < now || done < start+occ {
				return false
			}
			if done > lastDone {
				lastDone = done
			}
		}
		// Aggregate throughput cannot exceed capacity: busy cycles must fit
		// within the span the bus actually used.
		return b.Stats.BusyCycles <= int64(lastDone)+b.Config().lagEpochs()*512
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: cache demand accounting is exact — hits + misses equals
// accesses, and evictions never exceed misses.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seed uint16, n uint8) bool {
		r := xrand.New(uint64(seed))
		c := NewCache(CacheConfig{Name: "p", Size: 4096, LineSize: 64, Assoc: 4}, 1)
		total := int64(n) + 1
		for i := int64(0); i < total; i++ {
			c.Access(Line(r.Intn(256)), r.Intn(2) == 0)
		}
		s := c.Stats
		return s.Hits+s.Misses == total && s.Evictions <= s.Misses &&
			s.Writebacks <= s.Evictions && c.Occupancy() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestOccupancySoAEdgeCases exercises the structure-of-arrays bookkeeping
// (packed tags, per-set empty masks, the emptyWays fast path) through
// invalidate → refill → flush cycles, where a stale mask or counter would
// surface as a wrong Occupancy/CountLinesIn or a wrong refill slot.
func TestOccupancySoAEdgeCases(t *testing.T) {
	c := tinyCache(4, PolicyLRU) // 4 sets × 4 ways
	// Fill set 0 completely (lines ≡ 0 mod 4 map to set 0).
	for i := Line(0); i < 16; i += 4 {
		c.Access(i, true)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}
	// Invalidate the middle of the set; the freed way must be the one the
	// next fill reuses (no eviction), and counts must track exactly.
	c.Invalidate(8)
	if c.Occupancy() != 3 {
		t.Fatalf("occupancy after invalidate = %d, want 3", c.Occupancy())
	}
	if got := c.CountLinesIn(0, 16); got != 3 {
		t.Fatalf("CountLinesIn(0,16) = %d, want 3", got)
	}
	evBefore := c.Stats.Evictions
	c.Access(16, false) // maps to set 0, must take the freed way
	if c.Stats.Evictions != evBefore {
		t.Fatal("refill after invalidate evicted instead of reusing the freed way")
	}
	if c.Occupancy() != 4 || !c.Lookup(16) || c.Lookup(8) {
		t.Fatal("refill bookkeeping inconsistent")
	}
	// A further fill into the full set must evict again.
	c.Access(20, false)
	if c.Stats.Evictions != evBefore+1 {
		t.Fatal("fill into full set did not evict")
	}
	// CountLinesIn over a partial range must agree with its complement.
	c.Access(1, false)
	total := c.Occupancy()
	if got := c.CountLinesIn(1, 17); got != total-c.CountLinesIn(17, 1<<20)-c.CountLinesIn(0, 1) {
		t.Fatalf("CountLinesIn range split inconsistent: %d of %d", got, total)
	}
	// Flush must reset every way and the empty-way accounting so the cache
	// refills without evictions.
	c.Flush()
	if c.Occupancy() != 0 || c.CountLinesIn(0, 1<<20) != 0 {
		t.Fatal("flush left occupancy behind")
	}
	evBefore = c.Stats.Evictions
	for i := Line(0); i < 16; i++ {
		c.Access(i, false)
	}
	if c.Stats.Evictions != evBefore || c.Occupancy() != 16 {
		t.Fatal("refill after flush evicted or lost lines")
	}
}

// TestTagRangeGuard pins the packed-tag contract: lines beyond the int32
// tag range are rejected loudly instead of aliasing silently.
func TestTagRangeGuard(t *testing.T) {
	c := tinyCache(4, PolicyLRU)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized line did not panic")
		}
	}()
	c.Access(Line(1)<<31, false)
}

// TestInflightTable exercises the open-addressed prefetch table directly:
// insert/lookup/delete with colliding keys, backward-shift deletion, growth
// and pruning.
func TestInflightTable(t *testing.T) {
	var tb inflightTable
	tb.init(8)
	// Insert enough colliding-ish keys to force probing and growth.
	for i := Line(0); i < 64; i++ {
		if tb.contains(i) {
			t.Fatalf("phantom entry %d", i)
		}
		tb.put(i, units.Cycles(100+i))
	}
	if tb.n != 64 {
		t.Fatalf("n = %d, want 64", tb.n)
	}
	for i := Line(0); i < 64; i++ {
		if !tb.contains(i) {
			t.Fatalf("entry %d lost after growth", i)
		}
	}
	// Delete every third entry and verify the rest still resolve (the
	// backward-shift must not break probe chains).
	for i := Line(0); i < 64; i += 3 {
		if r, ok := tb.take(i); !ok || r != units.Cycles(100+i) {
			t.Fatalf("take(%d) = %v, %v", i, r, ok)
		}
		if _, ok := tb.take(i); ok {
			t.Fatalf("double take(%d) succeeded", i)
		}
	}
	for i := Line(0); i < 64; i++ {
		want := i%3 != 0
		if tb.contains(i) != want {
			t.Fatalf("contains(%d) = %v after deletions", i, !want)
		}
	}
	// Prune keeps only entries still in flight.
	tb.prune(130)
	for i := Line(0); i < 64; i++ {
		want := i%3 != 0 && 100+i > 130
		if tb.contains(i) != want {
			t.Fatalf("contains(%d) = %v after prune", i, !want)
		}
	}
}
