package mem

import "testing"

func newPF() *Prefetcher {
	return NewPrefetcher(PrefetchConfig{Enabled: true, Streams: 4, Degree: 2, Window: 256, MaxLag: 4})
}

func TestPrefetcherDisabled(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enabled: false})
	for i := Line(0); i < 10; i++ {
		if p.Observe(i) != nil {
			t.Fatal("disabled prefetcher emitted candidates")
		}
	}
}

func TestPrefetcherLocksOnConstantStride(t *testing.T) {
	p := newPF()
	var got []Line
	for i := 0; i < 5; i++ {
		got = p.Observe(Line(100 + i*3))
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 prefetch candidates, got %v", got)
	}
	// Last observed line is 112, stride 3 -> 115, 118.
	if got[0] != 115 || got[1] != 118 {
		t.Fatalf("candidates = %v, want [115 118]", got)
	}
	if p.Issued != 6 { // locks at 3rd access, emits on accesses 3,4,5
		t.Fatalf("issued = %d, want 6", p.Issued)
	}
}

func TestPrefetcherIgnoresSameLine(t *testing.T) {
	p := newPF()
	p.Observe(50)
	for i := 0; i < 5; i++ {
		if out := p.Observe(50); out != nil {
			t.Fatal("repeated same-line observations should not emit")
		}
	}
}

func TestPrefetcherRetrainsOnStrideChange(t *testing.T) {
	p := newPF()
	for i := 0; i < 4; i++ {
		p.Observe(Line(i * 2)) // stride 2, locked
	}
	// Change stride to 5: the first access retrains silently, the second
	// confirms the new stride and resumes prefetching.
	base := Line(6)
	if out := p.Observe(base + 5); out != nil {
		t.Fatal("retraining access should not emit")
	}
	out := p.Observe(base + 10)
	if len(out) != 2 || out[0] != base+15 || out[1] != base+20 {
		t.Fatalf("after retrain candidates = %v, want [%d %d]", out, base+15, base+20)
	}
}

func TestPrefetcherRandomAccessNeverLocks(t *testing.T) {
	p := newPF()
	// Strides vary wildly outside the window: no stream should emit.
	seq := []Line{10, 5000, 90, 12000, 40, 7000, 130, 9000}
	for _, l := range seq {
		if out := p.Observe(l); out != nil {
			t.Fatalf("random-ish sequence emitted %v", out)
		}
	}
}

func TestPrefetcherTracksParallelStreams(t *testing.T) {
	p := newPF()
	// Two interleaved streams far apart, both stride 1. Observe's result is
	// only valid until the next call, so copy it.
	var a, b []Line
	for i := 0; i < 5; i++ {
		a = append([]Line(nil), p.Observe(Line(1000+i))...)
		b = append([]Line(nil), p.Observe(Line(90000+i))...)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("parallel streams not both locked: %v %v", a, b)
	}
	if a[0] != 1005 || b[0] != 90005 {
		t.Fatalf("stream candidates wrong: %v %v", a, b)
	}
}

func TestPrefetcherStreamThrash(t *testing.T) {
	// More concurrent streams than slots: LRU slot replacement prevents any
	// stream from ever confirming (the classic pathology the BWThr's 44
	// buffers induce on a 32-stream machine).
	p := NewPrefetcher(PrefetchConfig{Enabled: true, Streams: 2, Degree: 2, Window: 16, MaxLag: 4})
	for round := 0; round < 10; round++ {
		for s := 0; s < 5; s++ {
			base := Line(100000 * (s + 1))
			if out := p.Observe(base + Line(round)); out != nil {
				t.Fatalf("thrashing streams emitted %v", out)
			}
		}
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := newPF()
	for i := 0; i < 4; i++ {
		p.Observe(Line(i))
	}
	p.Reset()
	// After reset the locked stream is gone; next observation allocates.
	if out := p.Observe(4); out != nil {
		t.Fatal("reset did not clear streams")
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := newPF()
	var out []Line
	for i := 0; i < 5; i++ {
		out = p.Observe(Line(1000 - i*2))
	}
	if len(out) != 2 || out[0] != 990 || out[1] != 988 {
		t.Fatalf("descending stream candidates = %v", out)
	}
}
