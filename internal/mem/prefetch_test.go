package mem

import (
	"fmt"
	"testing"

	"activemem/internal/xrand"
)

func newPF() *Prefetcher {
	return NewPrefetcher(PrefetchConfig{Enabled: true, Streams: 4, Degree: 2, Window: 256, MaxLag: 4})
}

func TestPrefetcherDisabled(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enabled: false})
	for i := Line(0); i < 10; i++ {
		if p.Observe(i) != nil {
			t.Fatal("disabled prefetcher emitted candidates")
		}
	}
}

func TestPrefetcherLocksOnConstantStride(t *testing.T) {
	p := newPF()
	var got []Line
	for i := 0; i < 5; i++ {
		got = p.Observe(Line(100 + i*3))
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 prefetch candidates, got %v", got)
	}
	// Last observed line is 112, stride 3 -> 115, 118.
	if got[0] != 115 || got[1] != 118 {
		t.Fatalf("candidates = %v, want [115 118]", got)
	}
	if p.Issued != 6 { // locks at 3rd access, emits on accesses 3,4,5
		t.Fatalf("issued = %d, want 6", p.Issued)
	}
}

func TestPrefetcherIgnoresSameLine(t *testing.T) {
	p := newPF()
	p.Observe(50)
	for i := 0; i < 5; i++ {
		if out := p.Observe(50); out != nil {
			t.Fatal("repeated same-line observations should not emit")
		}
	}
}

func TestPrefetcherRetrainsOnStrideChange(t *testing.T) {
	p := newPF()
	for i := 0; i < 4; i++ {
		p.Observe(Line(i * 2)) // stride 2, locked
	}
	// Change stride to 5: the first access retrains silently, the second
	// confirms the new stride and resumes prefetching.
	base := Line(6)
	if out := p.Observe(base + 5); out != nil {
		t.Fatal("retraining access should not emit")
	}
	out := p.Observe(base + 10)
	if len(out) != 2 || out[0] != base+15 || out[1] != base+20 {
		t.Fatalf("after retrain candidates = %v, want [%d %d]", out, base+15, base+20)
	}
}

func TestPrefetcherRandomAccessNeverLocks(t *testing.T) {
	p := newPF()
	// Strides vary wildly outside the window: no stream should emit.
	seq := []Line{10, 5000, 90, 12000, 40, 7000, 130, 9000}
	for _, l := range seq {
		if out := p.Observe(l); out != nil {
			t.Fatalf("random-ish sequence emitted %v", out)
		}
	}
}

func TestPrefetcherTracksParallelStreams(t *testing.T) {
	p := newPF()
	// Two interleaved streams far apart, both stride 1. Observe's result is
	// only valid until the next call, so copy it.
	var a, b []Line
	for i := 0; i < 5; i++ {
		a = append([]Line(nil), p.Observe(Line(1000+i))...)
		b = append([]Line(nil), p.Observe(Line(90000+i))...)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("parallel streams not both locked: %v %v", a, b)
	}
	if a[0] != 1005 || b[0] != 90005 {
		t.Fatalf("stream candidates wrong: %v %v", a, b)
	}
}

func TestPrefetcherStreamThrash(t *testing.T) {
	// More concurrent streams than slots: LRU slot replacement prevents any
	// stream from ever confirming (the classic pathology the BWThr's 44
	// buffers induce on a 32-stream machine).
	p := NewPrefetcher(PrefetchConfig{Enabled: true, Streams: 2, Degree: 2, Window: 16, MaxLag: 4})
	for round := 0; round < 10; round++ {
		for s := 0; s < 5; s++ {
			base := Line(100000 * (s + 1))
			if out := p.Observe(base + Line(round)); out != nil {
				t.Fatalf("thrashing streams emitted %v", out)
			}
		}
	}
}

func TestPrefetcherReset(t *testing.T) {
	p := newPF()
	for i := 0; i < 4; i++ {
		p.Observe(Line(i))
	}
	p.Reset()
	// After reset the locked stream is gone; next observation allocates.
	if out := p.Observe(4); out != nil {
		t.Fatal("reset did not clear streams")
	}
}

func TestPrefetchConfigValidate(t *testing.T) {
	good := []PrefetchConfig{
		{Enabled: false},
		{Enabled: false, Streams: -7, Degree: -1, Window: -2, MaxLag: -3}, // disabled ignores the rest
		DefaultPrefetch(),
		{Enabled: true, Streams: 1, Degree: 1, Window: 1},
		{Enabled: true, Streams: 256, Degree: 8, Window: maxPrefetchWindow, MaxLag: 100},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []PrefetchConfig{
		{Enabled: true, Streams: 0, Degree: 4, Window: 2048},
		{Enabled: true, Streams: -1, Degree: 4, Window: 2048},
		{Enabled: true, Streams: 257, Degree: 4, Window: 2048},
		{Enabled: true, Streams: 32, Degree: 0, Window: 2048},
		{Enabled: true, Streams: 32, Degree: 4, Window: 0},
		{Enabled: true, Streams: 32, Degree: 4, Window: -5},
		{Enabled: true, Streams: 32, Degree: 4, Window: maxPrefetchWindow + 1},
		{Enabled: true, Streams: 32, Degree: 4, Window: 2048, MaxLag: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
		}
	}
}

func TestNewPrefetcherPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPrefetcher accepted an invalid config")
		}
	}()
	NewPrefetcher(PrefetchConfig{Enabled: true, Streams: 300, Degree: 4, Window: 2048})
}

func TestHierarchyConfigValidatesPrefetch(t *testing.T) {
	cc := CacheConfig{Name: "C", Size: 4096, LineSize: 64, Assoc: 4, Latency: 1}
	cfg := HierarchyConfig{
		Cores: 1, L1: cc, L2: cc, L3: cc,
		Bus:      BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64},
		Prefetch: PrefetchConfig{Enabled: true, Streams: 32, Degree: 0, Window: 2048},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("hierarchy config with invalid prefetcher accepted")
	}
	cfg.Prefetch = DefaultPrefetch()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid hierarchy config rejected: %v", err)
	}
}

// TestStreamIndexMatchesLinearScan is the equivalence fuzz for the bucketed
// nearest-stream index: an indexed prefetcher and a forced-linear twin
// consume an adversarial line mixture (far random lines, bucket-boundary
// clusters, drifting streams, window-spanning jumps, interleaved strides)
// and must emit identical candidates AND hold identical internal stream
// state at every step — any divergence in nearest-stream choice,
// tie-breaking or LRU allocation surfaces immediately.
func TestStreamIndexMatchesLinearScan(t *testing.T) {
	for _, streams := range []int{16, 32, 64} {
		cfg := PrefetchConfig{Enabled: true, Streams: streams, Degree: 3, Window: 2048, MaxLag: 4}
		a := NewPrefetcher(cfg)
		if a.ix == nil {
			t.Fatalf("streams=%d: index not active", streams)
		}
		b := NewPrefetcher(cfg)
		b.ix = nil // the linear reference twin
		r := xrand.New(uint64(streams) * 7919)
		var cursor int64 = 1 << 18
		for i := 0; i < 150_000; i++ {
			var line Line
			switch r.Intn(6) {
			case 0:
				line = Line(r.Intn(1 << 24)) // far random (CSThr-like)
			case 1:
				line = Line(1<<20 + int64(r.Intn(4096))) // clustered at a bucket boundary
			case 2:
				cursor += int64(r.Intn(64)) // drifting near-stream
				line = Line(cursor)
			case 3:
				line = Line(1<<21 - 2048 + int64(r.Intn(4097))) // spans exactly one window
			case 4:
				line = Line(int64(r.Intn(64))<<12 + int64(r.Intn(2))*4095) // bucket edges
			default:
				line = Line(100_000*int64(r.Intn(8)+1) + int64(r.Intn(3))*17) // interleaved strides
			}
			ga := append([]Line(nil), a.Observe(line)...)
			gb := append([]Line(nil), b.Observe(line)...)
			if len(ga) != len(gb) {
				t.Fatalf("streams=%d op %d line %d: emitted %v, linear reference %v", streams, i, line, ga, gb)
			}
			for j := range ga {
				if ga[j] != gb[j] {
					t.Fatalf("streams=%d op %d line %d: emitted %v, linear reference %v", streams, i, line, ga, gb)
				}
			}
			if i%1024 == 0 {
				comparePrefetcherState(t, a, b, streams, i)
			}
		}
		comparePrefetcherState(t, a, b, streams, -1)
		if a.Issued == 0 {
			t.Fatalf("streams=%d: fuzz mixture never emitted a prefetch", streams)
		}
	}
}

func comparePrefetcherState(t *testing.T, a, b *Prefetcher, streams, op int) {
	t.Helper()
	for s := 0; s < streams; s++ {
		if a.lastLine[s] != b.lastLine[s] || a.lastUse[s] != b.lastUse[s] ||
			a.stride[s] != b.stride[s] || a.hits[s] != b.hits[s] {
			t.Fatalf("streams=%d op %d: slot %d diverged: indexed (%d,%d,%d,%d) vs linear (%d,%d,%d,%d)",
				streams, op, s,
				a.lastLine[s], a.lastUse[s], a.stride[s], a.hits[s],
				b.lastLine[s], b.lastUse[s], b.stride[s], b.hits[s])
		}
	}
	if a.Issued != b.Issued {
		t.Fatalf("streams=%d op %d: Issued %d vs %d", streams, op, a.Issued, b.Issued)
	}
}

// TestStreamIndexTieBreak pins the equidistant case: two streams the same
// distance below and above the observed line must resolve to the
// lower-indexed slot, exactly as the linear scan's packed key does.
func TestStreamIndexTieBreak(t *testing.T) {
	for _, order := range [][2]Line{{1000, 1200}, {1200, 1000}} {
		cfg := PrefetchConfig{Enabled: true, Streams: 16, Degree: 2, Window: 128, MaxLag: 4}
		p := NewPrefetcher(cfg)
		if p.ix == nil {
			t.Fatal("index not active at 16 streams")
		}
		p.Observe(order[0]) // allocates slot 0
		p.Observe(order[1]) // 200 apart > window: allocates slot 1
		if p.lastLine[0] != int64(order[0]) || p.lastLine[1] != int64(order[1]) {
			t.Fatalf("setup failed: lastLine = %v, %v", p.lastLine[0], p.lastLine[1])
		}
		p.Observe(1100) // distance 100 to both: slot 0 must win the tie
		if p.lastLine[0] != 1100 {
			t.Fatalf("tie broke to the wrong slot: lastLine[0]=%d lastLine[1]=%d",
				p.lastLine[0], p.lastLine[1])
		}
		if p.lastLine[1] != int64(order[1]) {
			t.Fatalf("higher slot disturbed by tie: lastLine[1]=%d", p.lastLine[1])
		}
	}
}

// TestPrefetcherStampRebase forces the 32-bit observation counter to its
// limit repeatedly in one prefetcher while a twin trains on the same
// sequence with small, never-wrapping stamps. Stamps matter only through
// their relative order, which both the forced jumps and the renumbering
// passes preserve, so emitted candidates and stream state must stay
// identical throughout.
func TestPrefetcherStampRebase(t *testing.T) {
	cfg := PrefetchConfig{Enabled: true, Streams: 8, Degree: 2, Window: 64, MaxLag: 4}
	a := NewPrefetcher(cfg) // repeatedly forced to renumber
	b := NewPrefetcher(cfg) // never renumbers: the reference
	r := xrand.New(4242)
	for i := 0; i < 50_000; i++ {
		if i%10_000 == 500 {
			a.seq = ^uint32(0) - 2 // a renumbers within three observations
		}
		line := Line(r.Intn(1 << 16))
		ga := append([]Line(nil), a.Observe(line)...)
		gb := append([]Line(nil), b.Observe(line)...)
		if len(ga) != len(gb) {
			t.Fatalf("op %d: emitted %v vs %v", i, ga, gb)
		}
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("op %d: emitted %v vs %v", i, ga, gb)
			}
		}
		for s := 0; s < cfg.Streams; s++ {
			if a.lastLine[s] != b.lastLine[s] || a.stride[s] != b.stride[s] || a.hits[s] != b.hits[s] {
				t.Fatalf("op %d slot %d: state diverged", i, s)
			}
		}
	}
	if a.renumbers < 5 {
		t.Fatalf("renumbers = %d, want several", a.renumbers)
	}
}

// assertVictimQueueExact checks the victim-queue invariants everything
// rests on: the pending entries are sorted ascending by their packed
// (stamp, slot) snapshot keys, and the victim the queue yields is exactly
// the slot the linear (stamp, slot) scan would select. lruVictim may
// lazily skip stale entries or re-sort, so calling it here mutates only
// repair state, never the choice.
func assertVictimQueueExact(t *testing.T, p *Prefetcher, ctx string) {
	t.Helper()
	for i := p.vqPos + 1; i < len(p.vq); i++ {
		if p.vq[i-1] >= p.vq[i] {
			t.Fatalf("%s: victim queue not strictly sorted at %d: %#x >= %#x",
				ctx, i, p.vq[i-1], p.vq[i])
		}
	}
	if got, want := p.lruVictim(), p.lruVictimScan(); got != want {
		t.Fatalf("%s: queue victim %d (stamp %d) differs from scan victim %d (stamp %d)",
			ctx, got, p.lastUse[got], want, p.lastUse[want])
	}
}

// TestPrefetcherVictimQueueMatchesScan is the lockstep fuzz for the
// O(1)-amortised allocation structure: a queue-victim prefetcher and a twin
// forced onto the linear (stamp, slot) victim scan consume an adversarial
// mixture (random allocation storms, stream matches, retrains, forced stamp
// rebases, resets) and must emit identical candidates and hold identical
// stream state, while the queue's pending entries stay sorted by exactly
// the scan's key and always yield the scan's victim.
func TestPrefetcherVictimQueueMatchesScan(t *testing.T) {
	for _, streams := range []int{1, 4, 8, 32, 64, 256} {
		cfg := PrefetchConfig{Enabled: true, Streams: streams, Degree: 2, Window: 256, MaxLag: 4}
		a := NewPrefetcher(cfg)
		b := NewPrefetcher(cfg)
		b.victimScan = true // the linear reference twin
		r := xrand.New(uint64(streams)*31 + 7)
		var cursor int64 = 1 << 20
		for i := 0; i < 120_000; i++ {
			if i%30_000 == 17_000 {
				a.seq = ^uint32(0) - 2 // force a rebase in both twins...
				b.seq = ^uint32(0) - 2 // ...so stamps stay comparable
			}
			if i%50_000 == 49_999 {
				a.Reset()
				b.Reset()
			}
			var line Line
			switch r.Intn(4) {
			case 0:
				line = Line(r.Intn(1 << 26)) // far random: allocation storm
			case 1:
				cursor += int64(r.Intn(32)) // drifting stream: match path
				line = Line(cursor)
			case 2:
				line = Line(1<<24 + int64(r.Intn(streams*512))) // clustered contention
			default:
				line = Line(100_000 * int64(r.Intn(streams+2))) // slot-count regions
			}
			ga := append([]Line(nil), a.Observe(line)...)
			gb := append([]Line(nil), b.Observe(line)...)
			if len(ga) != len(gb) {
				t.Fatalf("streams=%d op %d line %d: emitted %v, scan reference %v", streams, i, line, ga, gb)
			}
			for j := range ga {
				if ga[j] != gb[j] {
					t.Fatalf("streams=%d op %d line %d: emitted %v, scan reference %v", streams, i, line, ga, gb)
				}
			}
			if i%2048 == 0 {
				comparePrefetcherState(t, a, b, streams, i)
				assertVictimQueueExact(t, a, fmt.Sprintf("streams=%d op %d", streams, i))
			}
		}
		comparePrefetcherState(t, a, b, streams, -1)
		assertVictimQueueExact(t, a, fmt.Sprintf("streams=%d final", streams))
	}
}

// TestPrefetcherRenumberPreservesVictimOrder pins the rebase interaction
// the renumber docs promise: a renumbering pass rewrites the stamps by
// dense rank in exactly the victim queue's snapshot key order, drains the
// queue (its pre-rebase snapshots are void once stamps shrink), and the
// re-sorted queue continues the identical victim sequence.
func TestPrefetcherRenumberPreservesVictimOrder(t *testing.T) {
	cfg := PrefetchConfig{Enabled: true, Streams: 8, Degree: 2, Window: 64, MaxLag: 4}
	p := NewPrefetcher(cfg)
	r := xrand.New(5)
	for i := 0; i < 10_000; i++ {
		p.Observe(Line(r.Intn(1 << 22)))
	}
	// The full eviction order before the rebase: slots by (stamp, slot).
	order := func() []int {
		type sl struct {
			stamp uint32
			slot  int
		}
		all := make([]sl, len(p.lastUse))
		for s, lu := range p.lastUse {
			all[s] = sl{lu, s}
		}
		out := make([]int, 0, len(all))
		for len(out) < len(p.lastUse) {
			best := -1
			for _, c := range all {
				if c.slot < 0 {
					continue
				}
				if best < 0 || c.stamp < all[best].stamp ||
					(c.stamp == all[best].stamp && c.slot < all[best].slot) {
					best = c.slot
				}
			}
			out = append(out, best)
			all[best].slot = -1
		}
		return out
	}
	before := order()
	p.renumber()
	if p.vqPos != len(p.vq) {
		t.Fatalf("renumber left %d victim-queue snapshots live", len(p.vq)-p.vqPos)
	}
	after := order()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("renumber reordered eviction: %v -> %v", before, after)
		}
		// Dense ranks: the i-th slot in eviction order carries stamp i+1.
		if p.lastUse[after[i]] != uint32(i)+1 {
			t.Fatalf("renumbered stamp of eviction-order slot %d = %d, want %d",
				after[i], p.lastUse[after[i]], i+1)
		}
	}
	assertVictimQueueExact(t, p, "after renumber")
	if p.seq != uint32(cfg.Streams) {
		t.Fatalf("seq after renumber = %d, want %d", p.seq, cfg.Streams)
	}
}

func TestPrefetcherNegativeStride(t *testing.T) {
	p := newPF()
	var out []Line
	for i := 0; i < 5; i++ {
		out = p.Observe(Line(1000 - i*2))
	}
	if len(out) != 2 || out[0] != 990 || out[1] != 988 {
		t.Fatalf("descending stream candidates = %v", out)
	}
}
