package mem

import (
	"fmt"
	"math/bits"

	"activemem/internal/units"
)

// HierarchyConfig describes one socket's memory system: per-core private L1
// and L2, a shared L3, and the bus to main memory.
type HierarchyConfig struct {
	Cores       int
	L1, L2, L3  CacheConfig
	Bus         BusConfig
	MemLatency  units.Cycles // load-to-use latency of main memory beyond L3
	InclusiveL3 bool         // back-invalidate private caches on L3 eviction
	Prefetch    PrefetchConfig
	Clock       units.Clock
	Seed        uint64
}

// Validate checks all component configurations.
func (c HierarchyConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("mem: hierarchy needs at least one core, got %d", c.Cores)
	}
	for _, cc := range []CacheConfig{c.L1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.L3.LineSize {
		return fmt.Errorf("mem: mixed line sizes are not supported")
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.Prefetch.Validate(); err != nil {
		return err
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("mem: negative memory latency")
	}
	return nil
}

// Level identifies where an access was satisfied.
type Level uint8

// Access service levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "Mem"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// CoreCounters mirrors the per-thread hardware counters the paper reads:
// accesses and hits by level, bytes moved on the memory bus, and stall
// cycles attributable to bus queueing.
type CoreCounters struct {
	Loads  int64
	Stores int64

	L1Hits  int64
	L2Hits  int64
	L3Hits  int64
	MemAccs int64 // demand L3 misses served by memory

	BusBytes      int64 // demand + writeback + prefetch bytes this core put on the bus
	BusWaitCycles int64 // queueing delay suffered by this core's demand misses
	Prefetches    int64 // prefetch fills issued on behalf of this core
}

// Accesses returns total demand accesses.
func (c CoreCounters) Accesses() int64 { return c.Loads + c.Stores }

// L3Accesses returns demand accesses that reached the L3 lookup.
func (c CoreCounters) L3Accesses() int64 { return c.L3Hits + c.MemAccs }

// L3MissRate returns the paper's headline metric: demand misses at L3 over
// demand accesses at L3.
func (c CoreCounters) L3MissRate() float64 {
	a := c.L3Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.MemAccs) / float64(a)
}

// Hierarchy simulates one socket's memory system. It is single-goroutine:
// the engine serialises all cores' accesses in global time order.
type Hierarchy struct {
	cfg       HierarchyConfig
	lineSize  int64
	lineShift uint // log2(lineSize): line = addr >> lineShift on the hot path

	L1  []*Cache
	L2  []*Cache
	L3  *Cache
	Bus *Bus

	prefetchers []*Prefetcher
	inflight    inflightTable   // prefetch fills still in flight
	privFilter  *presenceFilter // membership filter over all private caches

	// PerCore holds the per-core counter block, indexed by core id.
	PerCore []CoreCounters

	// tracer, when non-nil, observes every demand access (after it is
	// served); see SetTracer.
	tracer func(core int, line Line, level Level)
}

// NewHierarchy constructs the socket memory system; it panics on an invalid
// configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineSize:  cfg.L1.LineSize,
		lineShift: uint(bits.TrailingZeros64(uint64(cfg.L1.LineSize))),
		L1:        make([]*Cache, cfg.Cores),
		L2:        make([]*Cache, cfg.Cores),
		L3:        NewCache(cfg.L3, cfg.Seed^0x1337),
		Bus:       NewBus(cfg.Bus),
		PerCore:   make([]CoreCounters, cfg.Cores),
	}
	h.inflight.init(256)
	h.privFilter = &presenceFilter{}
	h.prefetchers = make([]*Prefetcher, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		h.L1[i] = NewCache(cfg.L1, cfg.Seed+uint64(i)*2+1)
		h.L2[i] = NewCache(cfg.L2, cfg.Seed+uint64(i)*2+2)
		h.L1[i].filter = h.privFilter
		h.L2[i].filter = h.privFilter
		h.prefetchers[i] = NewPrefetcher(cfg.Prefetch)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// PrefetcherIssued returns how many prefetch candidates the given core's
// prefetcher has emitted (before cache and bus filtering) — the training
// activity the golden tests pin.
func (h *Hierarchy) PrefetcherIssued(core int) int64 { return h.prefetchers[core].Issued }

// LineSize returns the (uniform) cache line size.
func (h *Hierarchy) LineSize() int64 { return h.lineSize }

// Cores returns the number of cores on the socket.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// Clock returns the socket clock.
func (h *Hierarchy) Clock() units.Clock { return h.cfg.Clock }

// SetTracer installs (or, with nil, removes) an observer of every demand
// access, called after the access is served with the core, line and service
// level. It enables offline analyses such as reuse-distance profiling
// (internal/trace). The hook is resolved once per batched access run, so an
// unset tracer costs the hot path nothing; it returns the previously
// installed hook so wrappers can chain and restore.
func (h *Hierarchy) SetTracer(fn func(core int, line Line, level Level)) (prev func(core int, line Line, level Level)) {
	prev = h.tracer
	h.tracer = fn
	return prev
}

// Tracer returns the currently installed access observer (nil when unset).
func (h *Hierarchy) Tracer() func(core int, line Line, level Level) { return h.tracer }

// Access simulates a demand load or store by core to addr at time now and
// returns the level that served it and its total latency. Interference is
// fully emergent: the shared L3's replacement state and the bus queue are
// mutated in place.
func (h *Hierarchy) Access(core int, addr Addr, now units.Cycles, write bool) (Level, units.Cycles) {
	var t Tally
	level, lat := h.AccessTallied(core, addr, now, write, &t)
	t.flushInto(&h.PerCore[core])
	return level, lat
}

// BatchOp is one access of a batched program: an address, whether it is a
// write, and compute cycles the workload spends after the access completes.
type BatchOp struct {
	Addr    Addr
	Write   bool
	Compute units.Cycles
}

// Tally accumulates demand counters across any number of accesses so the
// per-access hot path performs two branch-free array increments instead of
// a data-dependent switch and six read-modify-writes on the shared PerCore
// block; FlushTally folds it into PerCore. The engine keeps one Tally per
// core context and flushes it at workload step end, so PerCore is exact at
// every scheduling boundary (and therefore whenever anything outside a
// running step — ResetStats, measurement reads, golden snapshots — looks).
type Tally struct {
	ops [2]int64 // accesses indexed by write (0 = loads, 1 = stores)
	lvl [4]int64 // accesses indexed by service Level
}

// Count records one demand access served at level. The service levels are
// contiguous small integers, so both increments compile branch-free — the
// level switch this replaces mispredicts heavily on random-access (CSThr,
// pointer-chase) mixtures whose service level is essentially random.
func (t *Tally) Count(level Level, write bool) {
	w := 0
	if write {
		w = 1
	}
	t.ops[w]++
	t.lvl[level]++
}

// Empty reports whether the tally holds no pending counts.
func (t *Tally) Empty() bool { return t.ops[0]|t.ops[1] == 0 }

// flushInto adds the pending counts to ctr and clears the tally.
func (t *Tally) flushInto(ctr *CoreCounters) {
	ctr.Loads += t.ops[0]
	ctr.Stores += t.ops[1]
	ctr.L1Hits += t.lvl[LevelL1]
	ctr.L2Hits += t.lvl[LevelL2]
	ctr.L3Hits += t.lvl[LevelL3]
	ctr.MemAccs += t.lvl[LevelMem]
	*t = Tally{}
}

// FlushTally folds t's pending demand counts into core's PerCore block and
// clears t. An empty tally is a cheap no-op, so callers may flush
// unconditionally at step boundaries.
func (h *Hierarchy) FlushTally(core int, t *Tally) {
	if t.Empty() {
		return
	}
	t.flushInto(&h.PerCore[core])
}

// AccessTallied is Access with the demand counters deferred into t instead
// of written to PerCore — the per-access entry point of the engine's
// unbatchable paths (single loads/stores, MSHR-overlapped loads). Latency,
// bus-attributed counters and the tracer hook behave identically; the
// PerCore totals are identical once t is flushed.
func (h *Hierarchy) AccessTallied(core int, addr Addr, now units.Cycles, write bool, t *Tally) (Level, units.Cycles) {
	level, lat := h.access(core, addr, now, write)
	t.Count(level, write)
	if h.tracer != nil {
		h.tracer(core, Line(addr>>h.lineShift), level)
	}
	return level, lat
}

// AccessBatch issues ops in order as blocking accesses starting at now and
// returns the clock after the last op's access and compute. Counters are
// identical to issuing each op through Access, accumulated into the
// caller's tally (flushed by the caller, e.g. at engine step end); the
// tracer hook is resolved once per batch instead of per access.
func (h *Hierarchy) AccessBatch(core int, now units.Cycles, ops []BatchOp, t *Tally) units.Cycles {
	if h.tracer != nil {
		for _, op := range ops {
			if op.Compute < 0 {
				panic("mem: negative compute in batch op")
			}
			_, lat := h.AccessTallied(core, op.Addr, now, op.Write, t)
			now += lat + op.Compute
		}
		return now
	}
	for _, op := range ops {
		if op.Compute < 0 {
			panic("mem: negative compute in batch op")
		}
		level, lat := h.access(core, op.Addr, now, op.Write)
		t.Count(level, op.Write)
		now += lat + op.Compute
	}
	return now
}

// LoadBatch issues blocking loads of addrs in order, spending computePer
// cycles after each, and returns the final clock. Counter-identical to the
// equivalent Access sequence once t is flushed.
func (h *Hierarchy) LoadBatch(core int, now units.Cycles, addrs []Addr, computePer units.Cycles, t *Tally) units.Cycles {
	if h.tracer != nil {
		for _, a := range addrs {
			_, lat := h.AccessTallied(core, a, now, false, t)
			now += lat + computePer
		}
		return now
	}
	for _, a := range addrs {
		level, lat := h.access(core, a, now, false)
		t.Count(level, false)
		now += lat + computePer
	}
	return now
}

// StoreBatch issues blocking stores of addrs in order and returns the final
// clock. Counter-identical to the equivalent Access sequence once t is
// flushed.
func (h *Hierarchy) StoreBatch(core int, now units.Cycles, addrs []Addr, t *Tally) units.Cycles {
	if h.tracer != nil {
		for _, a := range addrs {
			_, lat := h.AccessTallied(core, a, now, true, t)
			now += lat
		}
		return now
	}
	for _, a := range addrs {
		level, lat := h.access(core, a, now, true)
		t.Count(level, true)
		now += lat
	}
	return now
}

// RMWBatch issues a load, compute cycles, then a store for each addr in
// order — the read-modify-write triple of CSThr and tally-style kernels —
// and returns the final clock. Counter-identical to the equivalent Access
// sequence once t is flushed.
func (h *Hierarchy) RMWBatch(core int, now units.Cycles, addrs []Addr, compute units.Cycles, t *Tally) units.Cycles {
	if h.tracer != nil {
		for _, a := range addrs {
			_, lat := h.AccessTallied(core, a, now, false, t)
			now += lat + compute
			_, lat = h.AccessTallied(core, a, now, true, t)
			now += lat
		}
		return now
	}
	for _, a := range addrs {
		level, lat := h.access(core, a, now, false)
		t.Count(level, false)
		now += lat + compute
		level, lat = h.access(core, a, now, true)
		t.Count(level, true)
		now += lat
	}
	return now
}

// access is the uncounted hot path: it serves one demand access and returns
// the level and latency, leaving demand counters to the caller (Access or a
// batch loop). Bus-attributed counters (BusBytes, BusWaitCycles) are updated
// here because they depend on queueing state observed mid-access. The line's
// packed tag is validated once here and threaded through every level's
// fused probe, so a full L1→L2→L3 miss re-derives nothing: each level does
// exactly one walk of its set tile.
func (h *Hierarchy) access(core int, addr Addr, now units.Cycles, write bool) (Level, units.Cycles) {
	line := Line(addr >> h.lineShift)
	tag := tagOf(line)

	// L1: a miss inserts the line (fill-on-miss) and yields the victim,
	// which cascades into L2 if dirty. Stores first try the memoized-way
	// upgrade — the store half of a read-modify-write always hits the way
	// its load just probed — before paying for a full tag scan.
	if write && h.L1[core].storeUpgrade(tag) {
		return LevelL1, h.cfg.L1.Latency
	}
	hit1, v1, d1 := h.L1[core].probe(tag, write, probeDemand)
	if hit1 {
		return LevelL1, h.cfg.L1.Latency
	}
	if v1 != InvalidLine && d1 {
		// Victims round-trip out of the cache's packed tags, so int32 is the
		// tag — no range re-check.
		h.writebackToL2(core, int32(v1))
	}

	// Train the prefetcher on L1 demand misses.
	if pf := h.prefetchers[core].Observe(line); pf != nil {
		h.issuePrefetches(core, pf, now)
	}

	// L2.
	hit2, v2, d2 := h.L2[core].probe(tag, false, probeDemand)
	if v2 != InvalidLine && d2 {
		h.writebackToL3(core, int32(v2), now)
	}
	if hit2 {
		lat := h.cfg.L2.Latency
		if extra, ok := h.inflightDelay(line, now); ok {
			lat += extra
		}
		return LevelL2, lat
	}

	// L3. On a miss the fused probe inserts the line and hands back the
	// victim for writeback and inclusive back-invalidation.
	hit3, v3, d3 := h.L3.probe(tag, false, probeDemand)
	if hit3 {
		lat := h.cfg.L3.Latency
		if extra, ok := h.inflightDelay(line, now); ok {
			lat += extra
		}
		return LevelL3, lat
	}
	h.handleL3Victim(core, v3, d3, now)

	// Memory: pay the bus queue plus transfer plus DRAM latency.
	ctr := &h.PerCore[core]
	start, done := h.Bus.Request(now, h.lineSize)
	wait := start - now
	ctr.BusWaitCycles += int64(wait)
	ctr.BusBytes += h.lineSize
	lat := h.cfg.L3.Latency + wait + (done - start) + h.cfg.MemLatency
	return LevelMem, lat
}

// writebackToL2 installs a dirty L1 victim into L2, cascading L2's own
// victim into L3 when necessary. tag is the victim's packed tag.
func (h *Hierarchy) writebackToL2(core int, tag int32) {
	victim, dirty := h.L2[core].insertWritebackTag(tag)
	if victim != InvalidLine && dirty {
		h.L3.insertWritebackTag(int32(victim))
		// An L3 insertion from a writeback can itself evict; that victim is
		// handled lazily as clean traffic (its dirtiness already flowed).
	}
}

// writebackToL3 installs a dirty L2 victim into L3, paying bus traffic if
// L3 in turn evicts a dirty line. tag is the victim's packed tag.
func (h *Hierarchy) writebackToL3(core int, tag int32, now units.Cycles) {
	victim, dirty := h.L3.insertWritebackTag(tag)
	if victim != InvalidLine {
		h.handleL3Victim(core, victim, dirty, now)
	}
}

// inflightDelay returns any residual latency if line is still being filled
// by a prefetch at time now, consuming the in-flight entry.
func (h *Hierarchy) inflightDelay(line Line, now units.Cycles) (units.Cycles, bool) {
	// The exact count filter is checked here, not just inside take, so the
	// common nothing-in-flight case inlines to one byte load instead of a
	// call into the hash probe.
	if h.inflight.filt[line&255] == 0 {
		return 0, false
	}
	ready, ok := h.inflight.take(line)
	if !ok {
		return 0, false
	}
	if ready > now {
		return ready - now, true
	}
	return 0, false
}

// handleL3Victim cascades an L3 eviction: dirty victims are written back
// over the bus, and under an inclusive L3 the victim is removed from every
// core's private caches (back-invalidation), which is part of why
// shared-cache interference hurts so much in practice.
func (h *Hierarchy) handleL3Victim(core int, victim Line, victimDirty bool, now units.Cycles) {
	if victim == InvalidLine {
		return
	}
	// The presence filter has no false negatives, so skipping the per-core
	// scans when it reports absence leaves behaviour (and every counter)
	// unchanged — a scan of a cache not holding the victim is a no-op.
	if h.cfg.InclusiveL3 && h.privFilter.mayContain(victim) {
		for c := 0; c < h.cfg.Cores; c++ {
			if p, d := h.L1[c].Invalidate(victim); p && d {
				victimDirty = true
			}
			if p, d := h.L2[c].Invalidate(victim); p && d {
				victimDirty = true
			}
		}
	}
	if victimDirty {
		h.Bus.Request(now, h.lineSize)
		h.PerCore[core].BusBytes += h.lineSize
	}
}

// issuePrefetches filters candidate lines through the caches and bus
// backlog, then fills L3 (and the requesting core's L2) with an in-flight
// ready time. Prefetch traffic occupies the bus like demand traffic.
func (h *Hierarchy) issuePrefetches(core int, lines []Line, now units.Cycles) {
	lineSize := h.lineSize
	maxLag := units.Cycles(int64(h.cfg.Prefetch.MaxLag) * int64(h.Bus.occupancy(lineSize)))
	for _, l := range lines {
		if l < 0 {
			continue
		}
		// The three skip checks are pure queries; they run cheapest-first
		// (hash probe, 8-way scan, 20-way scan), which cannot change which
		// candidates survive to the backlog throttle below.
		if h.inflight.contains(l) {
			continue
		}
		tag := tagOf(l) // validated once; reused by both lookups and fills
		if h.L2[core].lookupTag(tag) || h.L3.lookupTag(tag) {
			continue
		}
		if h.Bus.Backlog(now) > maxLag {
			return // throttle: the bus is saturated with demand traffic
		}
		_, done := h.Bus.Request(now, lineSize)
		ready := done + h.cfg.MemLatency
		victim, dirty := h.L3.insertCleanTag(tag)
		h.handleL3Victim(core, victim, dirty, now)
		if v2, d2 := h.L2[core].insertCleanTag(tag); v2 != InvalidLine && d2 {
			h.L3.insertWritebackTag(int32(v2))
		}
		h.inflight.put(l, ready)
		h.PerCore[core].Prefetches++
		h.PerCore[core].BusBytes += lineSize
		if h.inflight.n > 4096 {
			h.inflight.prune(now)
		}
	}
}

// ResetStats clears all counters (cache, bus and per-core) without touching
// cache contents; the engine calls it at the end of a warmup phase.
func (h *Hierarchy) ResetStats() {
	for i := range h.PerCore {
		h.PerCore[i] = CoreCounters{}
	}
	for _, c := range h.L1 {
		c.Stats = CacheStats{}
	}
	for _, c := range h.L2 {
		c.Stats = CacheStats{}
	}
	h.L3.Stats = CacheStats{}
	h.Bus.Stats = BusStats{}
}

// inflightTable maps lines being prefetch-filled to their ready times. It is
// a small open-addressed hash table (linear probing, backward-shift
// deletion) replacing a Go map on the L2/L3 hit path: the n == 0 fast path
// makes the probe free for workloads that never train the prefetcher, and a
// hit probe touches one or two host cache lines instead of hashing through
// map buckets.
type inflightTable struct {
	lines []Line // power-of-two slots; InvalidLine = empty
	ready []units.Cycles
	n     int
	// filt holds exact per-(line&255) entry counts: a zero proves the line
	// is absent, so the contains/take probes on every L2/L3 hit usually
	// exit on one byte load instead of walking the hash chain (the table
	// holds a handful of entries against 256 filter slots).
	filt [256]uint16
}

func (t *inflightTable) init(slots int) {
	t.lines = make([]Line, slots)
	t.ready = make([]units.Cycles, slots)
	for i := range t.lines {
		t.lines[i] = InvalidLine
	}
	t.n = 0
	t.filt = [256]uint16{}
}

// home returns line's preferred slot.
func (t *inflightTable) home(l Line) int {
	z := uint64(l) * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z & uint64(len(t.lines)-1))
}

// contains reports whether l is pending.
func (t *inflightTable) contains(l Line) bool {
	if t.filt[l&255] == 0 {
		return false
	}
	mask := len(t.lines) - 1
	for i := t.home(l); ; i = (i + 1) & mask {
		switch t.lines[i] {
		case l:
			return true
		case InvalidLine:
			return false
		}
	}
}

// put inserts l (which must not be present) with its ready time, growing the
// table to keep the load factor under 3/4.
func (t *inflightTable) put(l Line, ready units.Cycles) {
	if (t.n+1)*4 > len(t.lines)*3 {
		t.grow()
	}
	mask := len(t.lines) - 1
	i := t.home(l)
	for t.lines[i] != InvalidLine {
		i = (i + 1) & mask
	}
	t.lines[i] = l
	t.ready[i] = ready
	t.filt[l&255]++
	t.n++
}

// take removes l if present, returning its ready time.
func (t *inflightTable) take(l Line) (units.Cycles, bool) {
	if t.filt[l&255] == 0 {
		return 0, false
	}
	mask := len(t.lines) - 1
	for i := t.home(l); ; i = (i + 1) & mask {
		switch t.lines[i] {
		case l:
			r := t.ready[i]
			t.deleteSlot(i)
			t.filt[l&255]--
			t.n--
			return r, true
		case InvalidLine:
			return 0, false
		}
	}
}

// deleteSlot empties slot i, shifting later probe-chain entries backward so
// lookups never need tombstones.
func (t *inflightTable) deleteSlot(i int) {
	mask := len(t.lines) - 1
	j := i
	for {
		t.lines[i] = InvalidLine
		for {
			j = (j + 1) & mask
			l := t.lines[j]
			if l == InvalidLine {
				return
			}
			k := t.home(l)
			// Move j back into i unless j's home lies in the cyclic
			// interval (i, j] (moving it would break its probe chain).
			var inChain bool
			if i <= j {
				inChain = k > i && k <= j
			} else {
				inChain = k > i || k <= j
			}
			if !inChain {
				break
			}
		}
		t.lines[i], t.ready[i] = t.lines[j], t.ready[j]
		i = j
	}
}

// grow doubles the table and rehashes.
func (t *inflightTable) grow() {
	old := *t
	t.init(len(old.lines) * 2)
	for i, l := range old.lines {
		if l != InvalidLine {
			t.put(l, old.ready[i])
		}
	}
}

// prune drops entries whose fills completed at or before now, mirroring the
// lazy cleanup the map-based implementation performed.
func (t *inflightTable) prune(now units.Cycles) {
	old := *t
	t.init(len(old.lines))
	for i, l := range old.lines {
		if l != InvalidLine && old.ready[i] > now {
			t.put(l, old.ready[i])
		}
	}
}
