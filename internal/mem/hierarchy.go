package mem

import (
	"fmt"

	"activemem/internal/units"
)

// HierarchyConfig describes one socket's memory system: per-core private L1
// and L2, a shared L3, and the bus to main memory.
type HierarchyConfig struct {
	Cores       int
	L1, L2, L3  CacheConfig
	Bus         BusConfig
	MemLatency  units.Cycles // load-to-use latency of main memory beyond L3
	InclusiveL3 bool         // back-invalidate private caches on L3 eviction
	Prefetch    PrefetchConfig
	Clock       units.Clock
	Seed        uint64
}

// Validate checks all component configurations.
func (c HierarchyConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("mem: hierarchy needs at least one core, got %d", c.Cores)
	}
	for _, cc := range []CacheConfig{c.L1, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.L1.LineSize != c.L2.LineSize || c.L2.LineSize != c.L3.LineSize {
		return fmt.Errorf("mem: mixed line sizes are not supported")
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("mem: negative memory latency")
	}
	return nil
}

// Level identifies where an access was satisfied.
type Level uint8

// Access service levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "Mem"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// CoreCounters mirrors the per-thread hardware counters the paper reads:
// accesses and hits by level, bytes moved on the memory bus, and stall
// cycles attributable to bus queueing.
type CoreCounters struct {
	Loads  int64
	Stores int64

	L1Hits  int64
	L2Hits  int64
	L3Hits  int64
	MemAccs int64 // demand L3 misses served by memory

	BusBytes      int64 // demand + writeback + prefetch bytes this core put on the bus
	BusWaitCycles int64 // queueing delay suffered by this core's demand misses
	Prefetches    int64 // prefetch fills issued on behalf of this core
}

// Accesses returns total demand accesses.
func (c CoreCounters) Accesses() int64 { return c.Loads + c.Stores }

// L3Accesses returns demand accesses that reached the L3 lookup.
func (c CoreCounters) L3Accesses() int64 { return c.L3Hits + c.MemAccs }

// L3MissRate returns the paper's headline metric: demand misses at L3 over
// demand accesses at L3.
func (c CoreCounters) L3MissRate() float64 {
	a := c.L3Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.MemAccs) / float64(a)
}

// Hierarchy simulates one socket's memory system. It is single-goroutine:
// the engine serialises all cores' accesses in global time order.
type Hierarchy struct {
	cfg HierarchyConfig

	L1  []*Cache
	L2  []*Cache
	L3  *Cache
	Bus *Bus

	prefetchers []*Prefetcher
	inflight    map[Line]units.Cycles // prefetch fills still in flight

	// PerCore holds the per-core counter block, indexed by core id.
	PerCore []CoreCounters

	// Tracer, when non-nil, observes every demand access (after it is
	// served) with the core, line and service level. It enables offline
	// analyses such as reuse-distance profiling (internal/trace) without
	// burdening the hot path when unset.
	Tracer func(core int, line Line, level Level)
}

// NewHierarchy constructs the socket memory system; it panics on an invalid
// configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:      cfg,
		L1:       make([]*Cache, cfg.Cores),
		L2:       make([]*Cache, cfg.Cores),
		L3:       NewCache(cfg.L3, cfg.Seed^0x1337),
		Bus:      NewBus(cfg.Bus),
		inflight: make(map[Line]units.Cycles),
		PerCore:  make([]CoreCounters, cfg.Cores),
	}
	h.prefetchers = make([]*Prefetcher, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		h.L1[i] = NewCache(cfg.L1, cfg.Seed+uint64(i)*2+1)
		h.L2[i] = NewCache(cfg.L2, cfg.Seed+uint64(i)*2+2)
		h.prefetchers[i] = NewPrefetcher(cfg.Prefetch)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// LineSize returns the (uniform) cache line size.
func (h *Hierarchy) LineSize() int64 { return h.cfg.L1.LineSize }

// Cores returns the number of cores on the socket.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// Clock returns the socket clock.
func (h *Hierarchy) Clock() units.Clock { return h.cfg.Clock }

// Access simulates a demand load or store by core to addr at time now and
// returns the level that served it and its total latency. Interference is
// fully emergent: the shared L3's replacement state and the bus queue are
// mutated in place.
func (h *Hierarchy) Access(core int, addr Addr, now units.Cycles, write bool) (Level, units.Cycles) {
	level, lat := h.access(core, addr, now, write)
	if h.Tracer != nil {
		h.Tracer(core, LineOf(addr, h.cfg.L1.LineSize), level)
	}
	return level, lat
}

func (h *Hierarchy) access(core int, addr Addr, now units.Cycles, write bool) (Level, units.Cycles) {
	line := LineOf(addr, h.cfg.L1.LineSize)
	ctr := &h.PerCore[core]
	if write {
		ctr.Stores++
	} else {
		ctr.Loads++
	}

	// L1: a miss inserts the line (fill-on-miss) and yields the victim,
	// which cascades into L2 if dirty.
	hit1, v1, d1 := h.L1[core].Access(line, write)
	if hit1 {
		ctr.L1Hits++
		return LevelL1, h.cfg.L1.Latency
	}
	if v1 != InvalidLine && d1 {
		h.writebackToL2(core, v1)
	}

	// Train the prefetcher on L1 demand misses.
	if pf := h.prefetchers[core].Observe(line); pf != nil {
		h.issuePrefetches(core, pf, now)
	}

	// L2.
	hit2, v2, d2 := h.L2[core].Access(line, false)
	if v2 != InvalidLine && d2 {
		h.writebackToL3(core, v2, now)
	}
	if hit2 {
		ctr.L2Hits++
		lat := h.cfg.L2.Latency
		if extra, ok := h.inflightDelay(line, now); ok {
			lat += extra
		}
		return LevelL2, lat
	}

	// L3. On a miss Access inserts the line and hands back the victim for
	// writeback and inclusive back-invalidation.
	hit3, v3, d3 := h.L3.Access(line, false)
	if hit3 {
		ctr.L3Hits++
		lat := h.cfg.L3.Latency
		if extra, ok := h.inflightDelay(line, now); ok {
			lat += extra
		}
		return LevelL3, lat
	}
	h.handleL3Victim(core, v3, d3, now)

	// Memory: pay the bus queue plus transfer plus DRAM latency.
	ctr.MemAccs++
	start, done := h.Bus.Request(now, h.cfg.L1.LineSize)
	wait := start - now
	ctr.BusWaitCycles += int64(wait)
	ctr.BusBytes += h.cfg.L1.LineSize
	lat := h.cfg.L3.Latency + wait + (done - start) + h.cfg.MemLatency
	return LevelMem, lat
}

// writebackToL2 installs a dirty L1 victim into L2, cascading L2's own
// victim into L3 when necessary.
func (h *Hierarchy) writebackToL2(core int, line Line) {
	victim, dirty := h.L2[core].InsertWriteback(line)
	if victim != InvalidLine && dirty {
		h.L3.InsertWriteback(victim)
		// An L3 insertion from a writeback can itself evict; that victim is
		// handled lazily as clean traffic (its dirtiness already flowed).
	}
}

// writebackToL3 installs a dirty L2 victim into L3, paying bus traffic if
// L3 in turn evicts a dirty line.
func (h *Hierarchy) writebackToL3(core int, line Line, now units.Cycles) {
	victim, dirty := h.L3.InsertWriteback(line)
	if victim != InvalidLine {
		h.handleL3Victim(core, victim, dirty, now)
	}
}

// inflightDelay returns any residual latency if line is still being filled
// by a prefetch at time now, consuming the in-flight entry.
func (h *Hierarchy) inflightDelay(line Line, now units.Cycles) (units.Cycles, bool) {
	ready, ok := h.inflight[line]
	if !ok {
		return 0, false
	}
	delete(h.inflight, line)
	if ready > now {
		return ready - now, true
	}
	return 0, false
}

// handleL3Victim cascades an L3 eviction: dirty victims are written back
// over the bus, and under an inclusive L3 the victim is removed from every
// core's private caches (back-invalidation), which is part of why
// shared-cache interference hurts so much in practice.
func (h *Hierarchy) handleL3Victim(core int, victim Line, victimDirty bool, now units.Cycles) {
	if victim == InvalidLine {
		return
	}
	if h.cfg.InclusiveL3 {
		for c := 0; c < h.cfg.Cores; c++ {
			if p, d := h.L1[c].Invalidate(victim); p && d {
				victimDirty = true
			}
			if p, d := h.L2[c].Invalidate(victim); p && d {
				victimDirty = true
			}
		}
	}
	if victimDirty {
		h.Bus.Request(now, h.cfg.L1.LineSize)
		h.PerCore[core].BusBytes += h.cfg.L1.LineSize
	}
}

// issuePrefetches filters candidate lines through the caches and bus
// backlog, then fills L3 (and the requesting core's L2) with an in-flight
// ready time. Prefetch traffic occupies the bus like demand traffic.
func (h *Hierarchy) issuePrefetches(core int, lines []Line, now units.Cycles) {
	lineSize := h.cfg.L1.LineSize
	maxLag := units.Cycles(int64(h.cfg.Prefetch.MaxLag) * int64(h.Bus.occupancy(lineSize)))
	for _, l := range lines {
		if l < 0 {
			continue
		}
		if h.L3.Lookup(l) || h.L2[core].Lookup(l) {
			continue
		}
		if _, pending := h.inflight[l]; pending {
			continue
		}
		if h.Bus.Backlog(now) > maxLag {
			return // throttle: the bus is saturated with demand traffic
		}
		_, done := h.Bus.Request(now, lineSize)
		ready := done + h.cfg.MemLatency
		victim, dirty := h.L3.InsertClean(l)
		h.handleL3Victim(core, victim, dirty, now)
		if v2, d2 := h.L2[core].InsertClean(l); v2 != InvalidLine && d2 {
			h.L3.InsertWriteback(v2)
		}
		h.inflight[l] = ready
		h.PerCore[core].Prefetches++
		h.PerCore[core].BusBytes += lineSize
		if len(h.inflight) > 4096 {
			h.pruneInflight(now)
		}
	}
}

func (h *Hierarchy) pruneInflight(now units.Cycles) {
	for l, t := range h.inflight {
		if t <= now {
			delete(h.inflight, l)
		}
	}
}

// ResetStats clears all counters (cache, bus and per-core) without touching
// cache contents; the engine calls it at the end of a warmup phase.
func (h *Hierarchy) ResetStats() {
	for i := range h.PerCore {
		h.PerCore[i] = CoreCounters{}
	}
	for _, c := range h.L1 {
		c.Stats = CacheStats{}
	}
	for _, c := range h.L2 {
		c.Stats = CacheStats{}
	}
	h.L3.Stats = CacheStats{}
	h.Bus.Stats = BusStats{}
}
