// Package report renders experiment results as fixed-width text tables,
// horizontal ASCII bar charts and CSV files — the textual equivalents of
// the paper's tables and figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with %v
// unless it is a float64, which uses %.3g-style compact formatting.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with three significant digits.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// String renders the table with fixed-width columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV emits the header and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bars renders a horizontal bar chart: one labelled bar per value, scaled
// to maxWidth characters at the largest magnitude.
func Bars(title string, labels []string, values []float64, unit string) string {
	const maxWidth = 50
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	maxV := 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if i < len(values) && math.Abs(values[i]) > maxV {
			maxV = math.Abs(values[i])
		}
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(math.Abs(v) / maxV * maxWidth))
		}
		fmt.Fprintf(&b, "%-*s |%s %s%s\n", labelW, l,
			strings.Repeat("#", n), FormatFloat(v), unit)
	}
	return b.String()
}
