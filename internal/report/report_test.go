package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "Blonger")
	tab.Add("x", "y")
	tab.Add("longcell", "z", "extra")
	out := tab.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "Blonger") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[4], "extra") {
		t.Fatal("extra cell dropped")
	}
	// Columns align: "y" and "z" start at the same offset.
	if strings.Index(lines[3], "y") != strings.Index(lines[4], "z") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAddfFormatting(t *testing.T) {
	tab := NewTable("", "n", "f", "s")
	tab.Addf(42, 3.14159, "str")
	tab.Addf(7, 100.0, "x")
	if tab.Rows[0][1] != "3.142" {
		t.Fatalf("float cell = %q", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "100" {
		t.Fatalf("integral float cell = %q", tab.Rows[1][1])
	}
	if tab.Rows[0][0] != "42" || tab.Rows[0][2] != "str" {
		t.Fatalf("cells = %v", tab.Rows[0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:        "1",
		-3:       "-3",
		0.5:      "0.5",
		1234.567: "1235",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.Add("1", "2")
	tab.Add("with,comma", "y")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,2\n\"with,comma\",y\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"one", "two"}, []float64{1, 2}, "GB/s")
	if !strings.Contains(out, "chart") || !strings.Contains(out, "one") {
		t.Fatalf("bars output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[2]) != 2*count(lines[1]) {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	if !strings.Contains(lines[2], "2GB/s") {
		t.Fatalf("value missing:\n%s", out)
	}
	// Zero values render without bars.
	if z := Bars("", []string{"a"}, []float64{0}, ""); !strings.Contains(z, "|") {
		t.Fatalf("zero bars:\n%s", z)
	}
}
