// Package prof wires the standard -cpuprofile/-memprofile flags into the
// CLIs, so a memory-wall hunt on a real campaign (the workloads the bench
// suite only approximates) needs no custom harness: run the tool with
// -cpuprofile and feed the output straight to `go tool pprof`.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"activemem/internal/telemetry"
)

// Flags holds the profiling flag values between RegisterFlags (before
// flag.Parse) and Start (after it).
type Flags struct {
	cpu *string
	mem *string
}

// RegisterFlags registers -cpuprofile and -memprofile on the default
// flag set. Call it before flag.Parse.
func RegisterFlags() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write an allocation profile to this file on exit"),
	}
}

// Start begins CPU profiling when requested. The returned stop function
// must run at exit (defer it in main): it stops the CPU profile and
// writes the allocation profile. Both are no-ops for unset flags.
func (f *Flags) Start() (stop func(), err error) {
	var cpuF *os.File
	if *f.cpu != "" {
		cpuF, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		// Turn on pprof cell labelling so the profile attributes samples
		// to campaign cells (cell= label per executor batch / worker
		// group), without requiring the telemetry HTTP listener.
		telemetry.SetCellLabels(true)
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer mf.Close()
			// Settle the heap first so the profile separates live data
			// from garbage the next collection would have reclaimed.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(mf, 0); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}
