// Package stats provides the small set of summary statistics the
// measurement methodology needs: means, standard deviations, percentiles,
// running accumulators and relative-change helpers.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanStd returns both the mean and the population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelChange returns (now-base)/base, i.e. the fractional change of now with
// respect to base. A base of 0 yields 0 to keep downstream comparisons sane.
func RelChange(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base
}

// Running accumulates count, mean and variance incrementally (Welford's
// algorithm). The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// LinearFit fits y = a + b*x by least squares and returns (a, b). It returns
// (0, 0) when fewer than two points are given or x has zero variance.
func LinearFit(x, y []float64) (a, b float64) {
	n := len(x)
	if n < 2 || n != len(y) {
		return 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// AbsDiffs returns |a[i]-b[i]| for each i; the slices must be equal length.
func AbsDiffs(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("stats: AbsDiffs length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out
}
