package stats

import (
	"math"
	"testing"
	"testing/quick"

	"activemem/internal/xrand"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single sample stddev should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !close(got, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !close(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(10, 12); !close(got, 0.2, 1e-12) {
		t.Fatalf("RelChange = %v, want 0.2", got)
	}
	if RelChange(0, 5) != 0 {
		t.Fatal("zero base should give 0")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 500)
	var run Running
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		run.Add(xs[i])
	}
	if !close(run.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch %v", run.Mean(), Mean(xs))
	}
	if !close(run.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("running std %v != batch %v", run.StdDev(), StdDev(xs))
	}
	if run.N() != 500 {
		t.Errorf("N = %d, want 500", run.N())
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinearFit(x, y)
	if !close(a, 1, 1e-9) || !close(b, 2, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (1, 2)", a, b)
	}
	if a, b := LinearFit([]float64{1}, []float64{1}); a != 0 || b != 0 {
		t.Fatal("degenerate fit should be (0,0)")
	}
	if a, b := LinearFit([]float64{2, 2}, []float64{1, 5}); a != 0 || b != 0 {
		t.Fatal("zero-variance x should give (0,0)")
	}
}

func TestAbsDiffs(t *testing.T) {
	got := AbsDiffs([]float64{1, 5}, []float64{4, 3})
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("AbsDiffs = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	AbsDiffs([]float64{1}, []float64{1, 2})
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	r := xrand.New(9)
	f := func(seed uint32) bool {
		rr := xrand.New(uint64(seed))
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64()*100 - 50
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
