package dist

import (
	"math"
	"testing"

	"activemem/internal/xrand"
)

func TestTable2NamesAndOrder(t *testing.T) {
	ds := Table2(1 << 14)
	want := []string{"Norm 4", "Norm 6", "Norm 8", "Exp 4", "Exp 6", "Exp 8",
		"Tri 1", "Tri 2", "Tri 3", "Uni"}
	if len(ds) != len(want) {
		t.Fatalf("Table2 has %d entries, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.Name() != want[i] {
			t.Errorf("Table2[%d].Name = %q, want %q", i, d.Name(), want[i])
		}
		if d.N() != 1<<14 {
			t.Errorf("%s: N = %d", d.Name(), d.N())
		}
		if d.StdDev() <= 0 {
			t.Errorf("%s: non-positive stddev", d.Name())
		}
	}
}

func TestUniformExactLineMasses(t *testing.T) {
	const n, epl = 1 << 16, 16
	d := NewUniform(n)
	if got := NumLines(d, epl); got != n/epl {
		t.Fatalf("NumLines = %d, want %d", got, n/epl)
	}
	masses := LineMasses(d, epl)
	for j, f := range masses {
		if f != 1.0/float64(n/epl) {
			t.Fatalf("line %d mass = %v, want exactly 1/%d", j, f, n/epl)
		}
	}
	if got, want := SumSquaredLineMass(d, epl), 1.0/float64(n/epl); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Σf² = %v, want %v", got, want)
	}
}

func TestLineMassesSumToOne(t *testing.T) {
	for _, d := range Table2(10000) { // 10000 % 16 != 0: exercises the ragged last line
		masses := LineMasses(d, 16)
		sum := 0.0
		for _, f := range masses {
			if f < -1e-15 {
				t.Fatalf("%s: negative line mass %v", d.Name(), f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("%s: masses sum to %v", d.Name(), sum)
		}
	}
}

func TestCDFBoundsAndMonotonicity(t *testing.T) {
	const n = 1 << 12
	for _, d := range Table2(n) {
		if c := d.CDF(0); math.Abs(c) > 1e-12 {
			t.Fatalf("%s: CDF(0) = %v", d.Name(), c)
		}
		if c := d.CDF(n); math.Abs(c-1) > 1e-12 {
			t.Fatalf("%s: CDF(N) = %v", d.Name(), c)
		}
		prev := -1.0
		for x := int64(0); x <= n; x += 64 {
			c := d.CDF(x)
			if c < prev-1e-15 {
				t.Fatalf("%s: CDF not monotone at %d", d.Name(), x)
			}
			prev = c
		}
	}
}

// TestSampleMatchesCDF draws many samples from every distribution and
// checks the empirical line-level frequencies against the analytic masses —
// the property the whole EHR validation chain rests on.
func TestSampleMatchesCDF(t *testing.T) {
	const n, epl, draws = 1 << 12, 16, 200000
	for _, d := range Table2(n) {
		r := xrand.New(7)
		masses := LineMasses(d, epl)
		counts := make([]int, len(masses))
		for i := 0; i < draws; i++ {
			idx := d.Sample(r)
			if idx < 0 || idx >= n {
				t.Fatalf("%s: sample %d out of range", d.Name(), idx)
			}
			counts[idx/epl]++
		}
		// Compare in aggregate: total variation distance must be small.
		tv := 0.0
		for j, f := range masses {
			tv += math.Abs(float64(counts[j])/draws - f)
		}
		tv /= 2
		if tv > 0.02 {
			t.Errorf("%s: empirical vs analytic total variation %.4f", d.Name(), tv)
		}
	}
}

func TestSpreadOrdering(t *testing.T) {
	// Narrower distributions concentrate more mass per line: Σf² must rise
	// from uniform (the widest) through Norm 4 to Norm 8 (the sharpest).
	const n, epl = 1 << 14, 16
	uni := SumSquaredLineMass(NewUniform(n), epl)
	n4 := SumSquaredLineMass(NewNormal(n, 4), epl)
	n8 := SumSquaredLineMass(NewNormal(n, 8), epl)
	if !(uni < n4 && n4 < n8) {
		t.Fatalf("Σf² ordering violated: uni %v, norm4 %v, norm8 %v", uni, n4, n8)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniform(0) },
		func() { NewNormal(100, 0) },
		func() { NewExponential(-1, 4) },
		func() { NewTriangular(100, 0) },
		func() { NewTriangular(100, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestTruncatedStdDevQuadrature checks the closed-form truncated
// Normal/Exponential StdDev against midpoint-rule quadrature over the
// distributions' own exact CDFs. It also pins the qualitative fix: the
// truncated moment must fall strictly below the nominal parameter, which
// the pre-fix implementation reported verbatim.
func TestTruncatedStdDevQuadrature(t *testing.T) {
	const n = 1 << 20
	cases := []struct {
		d       Dist
		nominal float64
	}{
		{NewNormal(n, 4), float64(n) / 4},
		{NewNormal(n, 6), float64(n) / 6},
		{NewNormal(n, 8), float64(n) / 8},
		{NewExponential(n, 4), float64(n) / 4},
		{NewExponential(n, 6), float64(n) / 6},
		{NewExponential(n, 8), float64(n) / 8},
	}
	for _, tc := range cases {
		var mean, m2, prev float64
		const step = 256
		for x := int64(step); x <= n; x += step {
			c := tc.d.CDF(x)
			mass := c - prev
			mid := float64(x) - step/2
			mean += mid * mass
			m2 += mid * mid * mass
			prev = c
		}
		quad := math.Sqrt(m2 - mean*mean)
		got := tc.d.StdDev()
		if rel := math.Abs(got-quad) / quad; rel > 1e-3 {
			t.Errorf("%s: StdDev %.1f vs quadrature %.1f (rel err %.2g)",
				tc.d.Name(), got, quad, rel)
		}
		if got >= tc.nominal {
			t.Errorf("%s: truncated StdDev %.1f not below nominal %.1f",
				tc.d.Name(), got, tc.nominal)
		}
	}
}
