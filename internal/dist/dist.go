// Package dist implements the access-index distributions of the paper's
// Table II: the probabilistic synthetic benchmarks sample a buffer element
// index from one of these on every iteration, and the Expected Hit Rate
// model (internal/model, Eq. 4) consumes their per-cache-line access masses.
//
// Each distribution is defined by an exact CDF over element indices and a
// sampling procedure that realises precisely that CDF through the
// deterministic xrand generator. Line masses are therefore analytic (CDF
// differences at line boundaries), not estimated, which is what lets the
// model tests compare the simulator against Eq. 4 with tight tolerances.
package dist

import (
	"fmt"
	"math"

	"activemem/internal/xrand"
)

// Dist is a probability distribution over buffer element indices [0, N).
type Dist interface {
	// N is the number of elements the distribution ranges over.
	N() int64
	// Name is the paper's Table II label (e.g. "Norm 4", "Uni").
	Name() string
	// Sample draws one element index from the distribution using r.
	Sample(r *xrand.Rand) int64
	// StdDev is the distribution's standard deviation in elements — the
	// moment of the distribution Sample actually draws from (i.e. the
	// truncated moment for Normal/Exponential, not the nominal
	// parameter), used in reports.
	StdDev() float64
	// CDF returns the probability that a sampled index is below x, for
	// 0 <= x <= N. It is exact for the same process Sample implements.
	CDF(x int64) float64
}

// NumLines returns the number of cache lines a buffer of d.N() elements
// occupies at elemsPerLine elements per line: ceil(N / elemsPerLine).
func NumLines(d Dist, elemsPerLine int64) int64 {
	if elemsPerLine <= 0 {
		panic("dist: non-positive elements per line")
	}
	return (d.N() + elemsPerLine - 1) / elemsPerLine
}

// LineMasses returns F(j), the probability that one access falls in cache
// line j, for every line of the buffer. This is the f vector of the EHR
// model (§III-C1).
func LineMasses(d Dist, elemsPerLine int64) []float64 {
	lines := NumLines(d, elemsPerLine)
	n := d.N()
	out := make([]float64, lines)
	prev := 0.0
	for j := int64(0); j < lines; j++ {
		end := (j + 1) * elemsPerLine
		if end > n {
			end = n
		}
		c := d.CDF(end)
		out[j] = c - prev
		prev = c
	}
	return out
}

// SumSquaredLineMass returns the Σ_j F(j)² term of Eq. 4 for the
// distribution at the given line geometry.
func SumSquaredLineMass(d Dist, elemsPerLine int64) float64 {
	sum := 0.0
	for _, f := range LineMasses(d, elemsPerLine) {
		sum += f * f
	}
	return sum
}

// Table2 returns the paper's ten Table II distributions over n elements, in
// the paper's order: Normal 4/6/8, Exponential 4/6/8, Triangular 1/2/3,
// Uniform.
func Table2(n int64) []Dist {
	return []Dist{
		NewNormal(n, 4), NewNormal(n, 6), NewNormal(n, 8),
		NewExponential(n, 4), NewExponential(n, 6), NewExponential(n, 8),
		NewTriangular(n, 0.4), NewTriangular(n, 0.6), NewTriangular(n, 0.8),
		NewUniform(n),
	}
}

func checkN(n int64) {
	if n <= 0 {
		panic("dist: non-positive element count")
	}
}

// Uniform is the equal-mass distribution over [0, N).
type Uniform struct {
	n int64
}

// NewUniform returns the uniform distribution over n elements.
func NewUniform(n int64) Uniform {
	checkN(n)
	return Uniform{n: n}
}

// N implements Dist.
func (d Uniform) N() int64 { return d.n }

// Name implements Dist.
func (d Uniform) Name() string { return "Uni" }

// StdDev implements Dist: n/√12.
func (d Uniform) StdDev() float64 { return float64(d.n) / math.Sqrt(12) }

// Sample implements Dist.
func (d Uniform) Sample(r *xrand.Rand) int64 { return int64(r.Intn(int(d.n))) }

// CDF implements Dist.
func (d Uniform) CDF(x int64) float64 { return float64(x) / float64(d.n) }

// Normal is a normal distribution centred on the buffer middle with
// σ = N/Div, truncated to [0, N) by rejection — the paper's "Norm 4/6/8".
type Normal struct {
	n        int64
	div      int
	mu       float64
	sigma    float64
	lo, span float64 // Φ at the truncation bounds
}

// NewNormal returns the truncated normal with σ = n/div.
func NewNormal(n int64, div int) Normal {
	checkN(n)
	if div <= 0 {
		panic("dist: non-positive normal divisor")
	}
	mu := float64(n) / 2
	sigma := float64(n) / float64(div)
	lo := stdPhi((0 - mu) / sigma)
	hi := stdPhi((float64(n) - mu) / sigma)
	return Normal{n: n, div: div, mu: mu, sigma: sigma, lo: lo, span: hi - lo}
}

// stdPhi is the standard normal CDF.
func stdPhi(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// stdPdf is the standard normal density.
func stdPdf(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

// N implements Dist.
func (d Normal) N() int64 { return d.n }

// Name implements Dist.
func (d Normal) Name() string { return fmt.Sprintf("Norm %d", d.div) }

// StdDev implements Dist: the standard deviation of the truncated normal
// (the distribution Sample realises), from the standard two-sided
// truncation formula
//
//	Var = σ²·[1 + (α·φ(α) − β·φ(β))/Z − ((φ(α) − φ(β))/Z)²]
//
// with α, β the standardised truncation bounds and Z = Φ(β) − Φ(α). For a
// narrow σ it approaches the nominal N/Div; for the wide Table II settings
// the truncation to [0, N) tightens it noticeably.
func (d Normal) StdDev() float64 {
	alpha := (0 - d.mu) / d.sigma
	beta := (float64(d.n) - d.mu) / d.sigma
	phiA, phiB := stdPdf(alpha), stdPdf(beta)
	m := (phiA - phiB) / d.span
	v := 1 + (alpha*phiA-beta*phiB)/d.span - m*m
	return d.sigma * math.Sqrt(v)
}

// Sample implements Dist by rejection against the truncation bounds.
func (d Normal) Sample(r *xrand.Rand) int64 {
	for {
		x := r.NormFloat64()*d.sigma + d.mu
		if x >= 0 && x < float64(d.n) {
			return int64(x)
		}
	}
}

// CDF implements Dist: the truncated normal CDF.
func (d Normal) CDF(x int64) float64 {
	return (stdPhi((float64(x)-d.mu)/d.sigma) - d.lo) / d.span
}

// Exponential decays from index 0 with mean N/Rate, truncated to [0, N) by
// rejection — the paper's "Exp 4/6/8".
type Exponential struct {
	n      int64
	rate   int
	lambda float64
	norm   float64 // 1 - e^{-λN}, the truncation mass
}

// NewExponential returns the truncated exponential with mean n/rate.
func NewExponential(n int64, rate int) Exponential {
	checkN(n)
	if rate <= 0 {
		panic("dist: non-positive exponential rate")
	}
	lambda := float64(rate) / float64(n)
	return Exponential{n: n, rate: rate, lambda: lambda,
		norm: 1 - math.Exp(-lambda*float64(n))}
}

// N implements Dist.
func (d Exponential) N() int64 { return d.n }

// Name implements Dist.
func (d Exponential) Name() string { return fmt.Sprintf("Exp %d", d.rate) }

// StdDev implements Dist: the standard deviation of the exponential
// truncated to [0, N) (the distribution Sample realises), from the exact
// truncated moments
//
//	E[X]  = 1/λ − N·e^{−λN}/Z
//	E[X²] = 2/λ² − (N² + 2N/λ)·e^{−λN}/Z
//
// with Z = 1 − e^{−λN}. The nominal 1/λ overstates the spread because the
// tail beyond N is rejected.
func (d Exponential) StdDev() float64 {
	t := float64(d.n)
	tail := math.Exp(-d.lambda * t)
	mean := 1/d.lambda - t*tail/d.norm
	m2 := 2/(d.lambda*d.lambda) - (t*t+2*t/d.lambda)*tail/d.norm
	return math.Sqrt(m2 - mean*mean)
}

// Sample implements Dist by rejection against the truncation bound.
func (d Exponential) Sample(r *xrand.Rand) int64 {
	for {
		x := r.ExpFloat64() / d.lambda
		if x < float64(d.n) {
			return int64(x)
		}
	}
}

// CDF implements Dist: the truncated exponential CDF.
func (d Exponential) CDF(x int64) float64 {
	return (1 - math.Exp(-d.lambda*float64(x))) / d.norm
}

// Triangular rises linearly from index 0 to a peak at Mode·N and falls
// linearly back to N — the paper's "Tri 1/2/3" (modes 0.4, 0.6, 0.8).
type Triangular struct {
	n    int64
	mode float64
}

// NewTriangular returns the triangular distribution peaked at mode·n, for
// mode strictly inside (0, 1).
func NewTriangular(n int64, mode float64) Triangular {
	checkN(n)
	if mode <= 0 || mode >= 1 {
		panic("dist: triangular mode must lie in (0, 1)")
	}
	return Triangular{n: n, mode: mode}
}

// N implements Dist.
func (d Triangular) N() int64 { return d.n }

// Name implements Dist.
func (d Triangular) Name() string {
	switch d.mode {
	case 0.4:
		return "Tri 1"
	case 0.6:
		return "Tri 2"
	case 0.8:
		return "Tri 3"
	}
	return fmt.Sprintf("Tri %g", d.mode)
}

// StdDev implements Dist: N·√((1 − c + c²)/18) for mode fraction c.
func (d Triangular) StdDev() float64 {
	c := d.mode
	return float64(d.n) * math.Sqrt((1-c+c*c)/18)
}

// Sample implements Dist by exact inverse-transform sampling.
func (d Triangular) Sample(r *xrand.Rand) int64 {
	u := r.Float64()
	var t float64
	if u < d.mode {
		t = math.Sqrt(u * d.mode)
	} else {
		t = 1 - math.Sqrt((1-u)*(1-d.mode))
	}
	i := int64(t * float64(d.n))
	if i >= d.n { // guard the t→1 floating-point edge
		i = d.n - 1
	}
	return i
}

// CDF implements Dist: the piecewise-quadratic triangular CDF.
func (d Triangular) CDF(x int64) float64 {
	t := float64(x) / float64(d.n)
	if t <= d.mode {
		return t * t / d.mode
	}
	return 1 - (1-t)*(1-t)/(1-d.mode)
}
