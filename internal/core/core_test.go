package core

import (
	"math"
	"reflect"
	"testing"

	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/store"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/synthetic"
)

// uniformApp returns a factory for a uniform-random synthetic benchmark
// with the given buffer size.
func uniformApp(bufBytes int64, compute int) WorkloadFactory {
	return func(alloc *mem.Alloc, seed uint64) engine.Workload {
		return synthetic.New(synthetic.Config{
			Dist:           dist.NewUniform(bufBytes / 4),
			ElemSize:       4,
			ComputePerLoad: compute,
		}, alloc)
	}
}

func quickCfg(spec machine.Spec) MeasureConfig {
	return MeasureConfig{Spec: spec, Warmup: 12_000_000, Window: 8_000_000, Seed: 1}
}

func TestKindString(t *testing.T) {
	if Storage.String() != "storage" || Bandwidth.String() != "bandwidth" {
		t.Fatal("kind names")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind name")
	}
}

func TestMeasureValidation(t *testing.T) {
	spec := machine.Scaled(8)
	cfg := quickCfg(spec)
	app := uniformApp(4<<20, 1)
	if _, err := MeasureWithInterference(cfg, app, Storage, 8, interfere.BWConfig{}, interfere.CSConfig{}); err == nil {
		t.Error("8 threads on an 8-core socket (1 used by app) accepted")
	}
	bad := cfg
	bad.Window = 0
	if _, err := MeasureWithInterference(bad, app, Storage, 1, interfere.BWConfig{}, interfere.CSConfig{}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := MeasureWithInterference(cfg, app, Kind(9), 1, interfere.BWConfig{}, interfere.CSConfig{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMeasureBaselineMetrics(t *testing.T) {
	spec := machine.Scaled(8)
	m, err := MeasureWithInterference(quickCfg(spec), uniformApp(5<<20, 1), Storage, 0,
		interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Work <= 0 || m.Rate <= 0 {
		t.Fatalf("no work measured: %+v", m)
	}
	if m.L3MissRate <= 0.2 || m.L3MissRate > 1 {
		t.Fatalf("uniform 2x-L3 benchmark miss rate = %v, want ~0.5+", m.L3MissRate)
	}
	if m.InterfGBs != 0 || m.InterfHeldBytes != 0 {
		t.Fatalf("phantom interference: %+v", m)
	}
	if m.AppGBs <= 0 {
		t.Fatal("app consumed no bandwidth")
	}
}

func TestStorageInterferenceRaisesMissRate(t *testing.T) {
	spec := machine.Scaled(8)
	cfg := quickCfg(spec)
	app := uniformApp(5<<20, 1)
	m0, err := MeasureWithInterference(cfg, app, Storage, 0, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := MeasureWithInterference(cfg, app, Storage, 3, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.L3MissRate <= m0.L3MissRate {
		t.Fatalf("3 CSThrs did not raise miss rate: %.3f vs %.3f", m3.L3MissRate, m0.L3MissRate)
	}
	if m3.Rate >= m0.Rate {
		t.Fatalf("3 CSThrs did not slow the app: %.0f vs %.0f", m3.Rate, m0.Rate)
	}
	if m3.InterfHeldBytes <= 0 {
		t.Fatal("CSThr occupancy not recorded")
	}
}

func TestBandwidthInterferenceSlowsApp(t *testing.T) {
	spec := machine.Scaled(8)
	cfg := quickCfg(spec)
	app := uniformApp(8<<20, 1) // far beyond L3: bandwidth/latency bound
	m0, err := MeasureWithInterference(cfg, app, Bandwidth, 0, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MeasureWithInterference(cfg, app, Bandwidth, 2, interfere.BWConfig{}, interfere.CSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rate >= m0.Rate {
		t.Fatalf("2 BWThrs did not slow the app: %.0f vs %.0f", m2.Rate, m0.Rate)
	}
	if m2.InterfGBs < 2 {
		t.Fatalf("2 BWThrs consumed only %.2f GB/s", m2.InterfGBs)
	}
}

func TestRunSweepSlowdownsMonotoneUnderStorage(t *testing.T) {
	spec := machine.Scaled(8)
	s, err := RunSweep(SweepConfig{
		MeasureConfig: quickCfg(spec),
		Kind:          Storage,
		MaxThreads:    4,
	}, "uniform", uniformApp(5<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	sl := s.Slowdowns()
	if sl[0] != 0 {
		t.Fatalf("baseline slowdown = %v", sl[0])
	}
	// Expect broadly increasing degradation; allow small non-monotonicity.
	if sl[4] < sl[1] {
		t.Fatalf("slowdowns not increasing: %v", sl)
	}
	if sl[4] <= 0.02 {
		t.Fatalf("4 CSThrs caused negligible slowdown: %v", sl)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	spec := machine.Scaled(8)
	cfg := SweepConfig{MeasureConfig: quickCfg(spec), Kind: Storage, MaxThreads: 2,
		Exec: lab.New(lab.Config{Workers: 1})}
	ser, err := RunSweep(cfg, "u", uniformApp(4<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = lab.New(lab.Config{Workers: 8})
	par, err := RunSweep(cfg, "u", uniformApp(4<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	for k := range ser.Points {
		if ser.Points[k] != par.Points[k] {
			t.Fatalf("parallel sweep diverges at %d:\n%+v\n%+v", k, ser.Points[k], par.Points[k])
		}
	}
}

// TestCalibrationParallelMatchesSerial is the calibration-grid counterpart:
// a worker pool of any width must reproduce the serial grid bit for bit.
func TestCalibrationParallelMatchesSerial(t *testing.T) {
	spec := machine.Scaled(8)
	mk := func(workers int) CapacityCalibration {
		cal, err := CalibrateCapacity(CalibrationConfig{
			MeasureConfig:  MeasureConfig{Spec: spec, Warmup: 12_000_000, Window: 6_000_000, Seed: 1},
			MaxThreads:     2,
			BufferBytes:    []int64{spec.L3.Size * 2, spec.L3.Size * 3},
			Dists:          []func(n int64) dist.Dist{func(n int64) dist.Dist { return dist.NewUniform(n) }},
			ComputePerLoad: 1,
			ElemSize:       4,
			Exec:           lab.New(lab.Config{Workers: workers}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return cal
	}
	ser, par := mk(1), mk(8)
	if !reflect.DeepEqual(ser, par) {
		t.Fatalf("parallel calibration diverges from serial:\n%+v\n%+v", ser, par)
	}
}

// TestSharedBaselineMeasuredOnce proves the memoization contract: a storage
// and a bandwidth sweep of the same application on one executor share their
// k=0 baseline, so 3+3 requested cells simulate only 5 experiments.
func TestSharedBaselineMeasuredOnce(t *testing.T) {
	spec := machine.Scaled(8)
	ex := lab.New(lab.Config{Workers: 4})
	cfg := quickCfg(spec)
	app := uniformApp(4<<20, 1)
	st, err := RunSweep(SweepConfig{MeasureConfig: cfg, Kind: Storage, MaxThreads: 2, Exec: ex}, "u", app)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := RunSweep(SweepConfig{MeasureConfig: cfg, Kind: Bandwidth, MaxThreads: 2, Exec: ex}, "u", app)
	if err != nil {
		t.Fatal(err)
	}
	stats := ex.Stats()
	if stats.Computed != 5 || stats.Hits != 1 {
		t.Fatalf("executor ran %d experiments with %d hits, want 5 with 1 (shared baseline)",
			stats.Computed, stats.Hits)
	}
	if st.Points[0] != bw.Points[0] {
		t.Fatalf("baselines diverge: %+v vs %+v", st.Points[0], bw.Points[0])
	}
}

// TestExperimentKeyDiscriminates pins the memo-key semantics: k=0 cells
// collapse onto one kind-independent baseline, everything else separates.
func TestExperimentKeyDiscriminates(t *testing.T) {
	spec := machine.Scaled(8)
	cfg := quickCfg(spec)
	noBW, noCS := interfere.BWConfig{}, interfere.CSConfig{}
	if ExperimentKey(cfg, "u", Storage, 0, noBW, noCS) != ExperimentKey(cfg, "u", Bandwidth, 0, noBW, noCS) {
		t.Fatal("k=0 baseline key depends on interference kind")
	}
	if ExperimentKey(cfg, "u", Storage, 1, noBW, noCS) == ExperimentKey(cfg, "u", Bandwidth, 1, noBW, noCS) {
		t.Fatal("k=1 keys collide across kinds")
	}
	if ExperimentKey(cfg, "u", Storage, 1, noBW, noCS) == ExperimentKey(cfg, "u", Storage, 2, noBW, noCS) {
		t.Fatal("keys collide across thread counts")
	}
	if ExperimentKey(cfg, "u", Storage, 1, noBW, noCS) == ExperimentKey(cfg, "v", Storage, 1, noBW, noCS) {
		t.Fatal("keys collide across workloads")
	}
	// A zero-valued interference config resolves to the machine default, so
	// explicit-default and zero-valued requests share one key.
	if ExperimentKey(cfg, "u", Storage, 1, noBW, interfere.DefaultCSConfig(spec.L3.Size)) !=
		ExperimentKey(cfg, "u", Storage, 1, noBW, noCS) {
		t.Fatal("explicit default CS config changes the key")
	}
	other := cfg
	other.Seed = 2
	if ExperimentKey(cfg, "u", Storage, 0, noBW, noCS) == ExperimentKey(other, "u", Storage, 0, noBW, noCS) {
		t.Fatal("keys collide across seeds")
	}
	// Invalid kinds must not alias a valid cell (they fail at run time and
	// their cached error must never poison a real sweep).
	if ExperimentKey(cfg, "u", Kind(9), 1, noBW, noCS) == ExperimentKey(cfg, "u", Storage, 1, noBW, noCS) {
		t.Fatal("invalid kind aliases a storage cell")
	}
}

func TestRunSweepRejectsUnknownKind(t *testing.T) {
	spec := machine.Scaled(8)
	_, err := RunSweep(SweepConfig{MeasureConfig: quickCfg(spec), Kind: Kind(9), MaxThreads: 1},
		"u", uniformApp(4<<20, 1))
	if err == nil {
		t.Fatal("unknown sweep kind accepted")
	}
}

func TestKneeDetection(t *testing.T) {
	mk := func(rates ...float64) Sweep {
		s := Sweep{}
		for k, r := range rates {
			s.Points = append(s.Points, Metrics{Threads: k, Rate: r})
		}
		return s
	}
	// Degradation appears at k=3 (rate 100 -> 80 = 25% slowdown).
	s := mk(100, 99, 98, 80, 70)
	lastOK, first := s.Knee(0.05)
	if lastOK != 2 || first != 3 {
		t.Fatalf("knee = (%d,%d), want (2,3)", lastOK, first)
	}
	// Never degrades.
	s = mk(100, 99, 100, 99)
	lastOK, first = s.Knee(0.05)
	if lastOK != 3 || first != -1 {
		t.Fatalf("knee = (%d,%d), want (3,-1)", lastOK, first)
	}
	// Degrades immediately.
	s = mk(100, 50)
	lastOK, first = s.Knee(0.05)
	if lastOK != 0 || first != 1 {
		t.Fatalf("knee = (%d,%d), want (0,1)", lastOK, first)
	}
}

func TestCalibrateBandwidth(t *testing.T) {
	spec := machine.Scaled(8)
	cal, err := CalibrateBandwidth(MeasureConfig{Spec: spec, Warmup: 1_000_000, Window: 4_000_000, Seed: 1},
		3, interfere.BWConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.AvailableGBs[0]-cal.PeakGBs) > 1e-9 {
		t.Fatalf("avail[0] = %v, want peak %v", cal.AvailableGBs[0], cal.PeakGBs)
	}
	// One BWThr consumes the calibrated ~2.8 GB/s band.
	if cal.ConsumedGBs[1] < 2.3 || cal.ConsumedGBs[1] > 3.4 {
		t.Fatalf("1 BWThr consumed %.2f GB/s", cal.ConsumedGBs[1])
	}
	for k := 1; k < len(cal.AvailableGBs); k++ {
		if cal.AvailableGBs[k] >= cal.AvailableGBs[k-1] {
			t.Fatalf("availability not decreasing: %v", cal.AvailableGBs)
		}
	}
}

func TestCalibrateCapacitySmallGrid(t *testing.T) {
	spec := machine.Scaled(8)
	bufs := []int64{spec.L3.Size * 2, spec.L3.Size * 3}
	cal, err := CalibrateCapacity(CalibrationConfig{
		MeasureConfig:  MeasureConfig{Spec: spec, Warmup: 30_000_000, Window: 12_000_000, Seed: 1},
		MaxThreads:     2,
		BufferBytes:    bufs,
		Dists:          []func(n int64) dist.Dist{func(n int64) dist.Dist { return dist.NewUniform(n) }},
		ComputePerLoad: 1,
		ElemSize:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	avail := cal.AvailableBytes()
	l3 := float64(spec.L3.Size)
	// No interference: the inversion must recover roughly the physical L3.
	if avail[0] < 0.75*l3 || avail[0] > 1.15*l3 {
		t.Fatalf("avail[0] = %.0f, want ~%.0f", avail[0], l3)
	}
	// Each CSThr pins ~its 512KB buffer.
	for k := 1; k <= 2; k++ {
		if avail[k] >= avail[k-1] {
			t.Fatalf("availability not decreasing: %v", avail)
		}
	}
	stolen := avail[0] - avail[1]
	buf := float64(512 * units.KB)
	if stolen < 0.5*buf || stolen > 2.0*buf {
		t.Fatalf("1 CSThr stole %.0f bytes, want ~%.0f", stolen, buf)
	}
	// Samples carry the Fig. 5 ingredients.
	s := cal.Points[0].Samples[0]
	if s.MeasuredMiss <= 0 || s.PredictedMiss <= 0 || s.DistName == "" {
		t.Fatalf("sample incomplete: %+v", s)
	}
}

func TestDefaultCalibrationGrid(t *testing.T) {
	spec := machine.Scaled(8)
	bufs, dists := DefaultCalibrationGrid(spec, 5)
	if len(bufs) != 5 || len(dists) != 10 {
		t.Fatalf("grid = %d bufs, %d dists", len(bufs), len(dists))
	}
	if bufs[0] < spec.L3.Size*14/10 || bufs[4] > spec.L3.Size*4 {
		t.Fatalf("buffer span wrong: %v", bufs)
	}
	for i := 1; i < len(bufs); i++ {
		if bufs[i] <= bufs[i-1] {
			t.Fatalf("buffer sizes not increasing: %v", bufs)
		}
	}
	d := dists[9](1 << 16)
	if d.Name() != "Uni" {
		t.Fatalf("last dist = %s, want Uni", d.Name())
	}
}

func TestCurve(t *testing.T) {
	c, err := NewCurve([]float64{20, 15, 10, 5}, []float64{0, 0.02, 0.10, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(25); got != 0 {
		t.Fatalf("above range = %v", got)
	}
	if got := c.At(2); got != 0.30 {
		t.Fatalf("below range = %v", got)
	}
	if got := c.At(12.5); math.Abs(got-0.06) > 1e-9 {
		t.Fatalf("midpoint = %v, want 0.06", got)
	}
	if got := c.At(15); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("exact point = %v, want 0.02", got)
	}
	if _, err := NewCurve([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("increasing availability accepted")
	}
	if _, err := NewCurve([]float64{1}, []float64{0, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBuildProfilePaperExample(t *testing.T) {
	// Reconstruct the paper's MCB p=4 example: availability 20,15,12 MB;
	// degradation first at 1 CSThr => bounds [15/4, 20/4] MB.
	mkSweep := func(rates ...float64) Sweep {
		s := Sweep{}
		for k, r := range rates {
			s.Points = append(s.Points, Metrics{Threads: k, Rate: r})
		}
		return s
	}
	storage := mkSweep(100, 80, 70)
	storageAvail := []float64{20e6, 15e6, 12e6}
	bandwidth := mkSweep(100, 99, 80)
	bandwidthAvail := []float64{17, 14.2, 11.4}
	p, err := BuildProfile("mcb", 4, 0.05, storage, storageAvail, bandwidth, bandwidthAvail)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CapacityLow-15e6/4) > 1 || math.Abs(p.CapacityHigh-20e6/4) > 1 {
		t.Fatalf("capacity bounds = [%.0f, %.0f], want [3.75e6, 5e6]", p.CapacityLow, p.CapacityHigh)
	}
	// Bandwidth degrades first at 2 BWThrs: bounds [11.4/4, 14.2/4].
	if math.Abs(p.BandwidthLow-11.4/4) > 1e-9 || math.Abs(p.BandwidthHigh-14.2/4) > 1e-9 {
		t.Fatalf("bandwidth bounds = [%v, %v]", p.BandwidthLow, p.BandwidthHigh)
	}
	if p.String() == "" {
		t.Error("empty profile rendering")
	}
	// Prediction composes both curves; at full resources it must be ~0.
	if s := p.PredictSlowdown(20e6, 17); math.Abs(s) > 1e-9 {
		t.Fatalf("full-resource prediction = %v, want 0", s)
	}
	if s := p.PredictSlowdown(12e6, 11.4); s < 0.4 {
		t.Fatalf("constrained prediction = %v, want >= 0.4 (both curves bind)", s)
	}
}

func TestBuildProfileNeverDegraded(t *testing.T) {
	mkSweep := func(rates ...float64) Sweep {
		s := Sweep{}
		for k, r := range rates {
			s.Points = append(s.Points, Metrics{Threads: k, Rate: r})
		}
		return s
	}
	flat := mkSweep(100, 100, 100)
	avail := []float64{20e6, 15e6, 12e6}
	bw := mkSweep(100, 100, 100)
	bwAvail := []float64{17, 14.2, 11.4}
	p, err := BuildProfile("tiny", 1, 0.05, flat, avail, bw, bwAvail)
	if err != nil {
		t.Fatal(err)
	}
	if p.CapacityLow != 0 || p.CapacityHigh != 12e6 {
		t.Fatalf("never-degraded bounds = [%v, %v], want [0, 12e6]", p.CapacityLow, p.CapacityHigh)
	}
}

func TestBuildProfileErrors(t *testing.T) {
	s := Sweep{Points: []Metrics{{Rate: 1}}}
	if _, err := BuildProfile("x", 0, 0.05, s, []float64{1}, s, []float64{1}); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := BuildProfile("x", 1, 0.05, s, nil, s, []float64{1}); err == nil {
		t.Error("short calibration accepted")
	}
}

// TestRunSweepAdaptiveKnee pins the -knee contract against the full sweep:
// the adaptive sweep measures exactly the ascending prefix ending
// KneePatience levels past the first sustained over-threshold slowdown,
// bit-identical to the same levels of the full sweep, and a generous
// threshold reproduces the full sweep exactly.
func TestRunSweepAdaptiveKnee(t *testing.T) {
	spec := machine.Scaled(8)
	ex := lab.New(lab.Config{})
	base := SweepConfig{MeasureConfig: quickCfg(spec), Kind: Storage, MaxThreads: 4, Exec: ex}
	app := uniformApp(5<<20, 1)

	full, err := RunSweep(base, "u", app)
	if err != nil {
		t.Fatal(err)
	}
	sl := full.Slowdowns()

	for _, patience := range []int{1, 2} {
		// Pick a threshold the full sweep is known to cross, then derive the
		// level the adaptive sweep must stop at.
		threshold := sl[len(sl)-1] / 2
		if threshold <= 0 {
			t.Fatalf("full sweep never slowed down: %v", sl)
		}
		wantLen := len(full.Points)
		over := 0
		for k := 1; k < len(sl); k++ {
			if sl[k] > threshold {
				over++
			} else {
				over = 0
			}
			if over >= patience {
				wantLen = k + 1
				break
			}
		}

		cfg := base
		cfg.Knee, cfg.KneePatience = threshold, patience
		adaptive, err := RunSweep(cfg, "u", app)
		if err != nil {
			t.Fatal(err)
		}
		if len(adaptive.Points) != wantLen {
			t.Fatalf("patience %d: adaptive sweep measured %d levels, want %d (slowdowns %v)",
				patience, len(adaptive.Points), wantLen, sl)
		}
		for k := range adaptive.Points {
			if adaptive.Points[k] != full.Points[k] {
				t.Fatalf("adaptive point %d diverges from full sweep", k)
			}
		}
	}

	// A threshold nothing crosses measures every level.
	cfg := base
	cfg.Knee = 1000
	all, err := RunSweep(cfg, "u", app)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Points) != len(full.Points) {
		t.Fatalf("uncrossed threshold still truncated the sweep: %d levels", len(all.Points))
	}
	// Shared executor: the adaptive runs hit the full sweep's memo, so the
	// whole test simulated each cell exactly once.
	if st := ex.Stats(); st.Computed != len(full.Points) {
		t.Fatalf("adaptive sweeps re-simulated cells: %+v", st)
	}
}

// TestSweepResumesFromDiskStore is the acceptance criterion in miniature:
// a sweep persisted through the executor's disk tier re-runs on a fresh
// executor (fresh process equivalent) without invoking the simulator, and
// the resumed result is bit-identical to the cold one.
func TestSweepResumesFromDiskStore(t *testing.T) {
	spec := machine.Scaled(8)
	dir := t.TempDir()
	cfg := SweepConfig{MeasureConfig: quickCfg(spec), Kind: Storage, MaxThreads: 2}

	st1, err := store.Open(dir, store.Options{Schema: lab.ResultSchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = lab.New(lab.Config{Cache: st1})
	cold, err := RunSweep(cfg, "u", uniformApp(4<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := cfg.Exec.Stats(); s.Persisted != 3 {
		t.Fatalf("cold run persisted %d of 3 cells", s.Persisted)
	}
	st1.Close()

	st2, err := store.Open(dir, store.Options{Schema: lab.ResultSchemaVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg.Exec = lab.New(lab.Config{Cache: st2})
	warm, err := RunSweep(cfg, "u", uniformApp(4<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := cfg.Exec.Stats(); s.Computed != 0 || s.DiskHits != 3 {
		t.Fatalf("warm run stats = %+v, want pure disk hits", s)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("resumed sweep diverges:\n%+v\n%+v", cold, warm)
	}
}

// TestCalibrateBandwidthMemoizes proves the §III-A ladder runs through the
// executor's memo cache: a second calibration on the same executor reuses
// every level instead of re-simulating the BWThr ladder.
func TestCalibrateBandwidthMemoizes(t *testing.T) {
	spec := machine.Scaled(8)
	ex := lab.New(lab.Config{})
	cfg := MeasureConfig{Spec: spec, Warmup: 1_000_000, Window: 4_000_000, Seed: 1}
	first, err := CalibrateBandwidth(cfg, 2, interfere.BWConfig{}, ex)
	if err != nil {
		t.Fatal(err)
	}
	before := ex.Stats()
	second, err := CalibrateBandwidth(cfg, 2, interfere.BWConfig{}, ex)
	if err != nil {
		t.Fatal(err)
	}
	after := ex.Stats()
	if after.Computed != before.Computed {
		t.Fatalf("second calibration re-simulated %d cells", after.Computed-before.Computed)
	}
	if after.Hits <= before.Hits {
		t.Fatal("second calibration did not hit the memo cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("memoized calibration differs: %+v vs %+v", first, second)
	}
}
