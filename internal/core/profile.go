package core

import (
	"fmt"
	"sort"
	"strings"

	"activemem/internal/units"
)

// Curve maps resource availability to measured slowdown, built by combining
// a Sweep with a calibration table. Availability is stored in descending
// order (index 0 = full resource).
type Curve struct {
	Avail    []float64 // available resource per point (bytes or GB/s)
	Slowdown []float64
}

// NewCurve pairs sweep slowdowns with per-level availability.
func NewCurve(avail, slowdown []float64) (Curve, error) {
	if len(avail) != len(slowdown) || len(avail) == 0 {
		return Curve{}, fmt.Errorf("core: curve needs equal non-empty series")
	}
	for i := 1; i < len(avail); i++ {
		if avail[i] > avail[i-1] {
			return Curve{}, fmt.Errorf("core: availability must be non-increasing")
		}
	}
	return Curve{Avail: avail, Slowdown: slowdown}, nil
}

// At interpolates the slowdown at an arbitrary availability. Beyond the
// measured range it clamps to the boundary values (the paper's prediction
// only claims validity within the interfered range).
func (c Curve) At(avail float64) float64 {
	n := len(c.Avail)
	if n == 0 {
		return 0
	}
	if avail >= c.Avail[0] {
		return c.Slowdown[0]
	}
	if avail <= c.Avail[n-1] {
		return c.Slowdown[n-1]
	}
	// Find the bracketing segment (availability descends).
	i := sort.Search(n, func(i int) bool { return c.Avail[i] <= avail })
	lo, hi := i-1, i
	span := c.Avail[lo] - c.Avail[hi]
	if span <= 0 {
		return c.Slowdown[hi]
	}
	frac := (c.Avail[lo] - avail) / span
	return c.Slowdown[lo] + frac*(c.Slowdown[hi]-c.Slowdown[lo])
}

// Profile is the paper's §IV product: per-process resource-use bounds plus
// sensitivity curves, derived from interference sweeps and calibrations.
type Profile struct {
	App       string
	Processes int // application processes sharing the measured socket

	// Per-process storage use bounds in bytes: the application uses more
	// than CapacityLow (performance degraded once less was available) and
	// at most CapacityHigh (no degradation while that much was available).
	CapacityLow, CapacityHigh float64

	// Per-process bandwidth use bounds in GB/s, same convention.
	BandwidthLow, BandwidthHigh float64

	StorageCurve   Curve
	BandwidthCurve Curve
}

// BuildProfile applies the paper's bound-selection rule to a storage sweep
// and a bandwidth sweep: with lastOK the most interference with no
// degradation beyond threshold and firstDegraded the least interference
// with degradation, per-process use lies in
// [avail(firstDegraded)/p, avail(lastOK)/p].
func BuildProfile(app string, processes int, threshold float64,
	storage Sweep, storageAvail []float64,
	bandwidth Sweep, bandwidthAvail []float64) (Profile, error) {
	if processes <= 0 {
		return Profile{}, fmt.Errorf("core: profile needs positive process count")
	}
	if len(storage.Points) > len(storageAvail) || len(bandwidth.Points) > len(bandwidthAvail) {
		return Profile{}, fmt.Errorf("core: calibration shorter than sweep")
	}
	p := Profile{App: app, Processes: processes}

	low, high := boundsFromSweep(storage, storageAvail, threshold)
	p.CapacityLow, p.CapacityHigh = low/float64(processes), high/float64(processes)

	low, high = boundsFromSweep(bandwidth, bandwidthAvail, threshold)
	p.BandwidthLow, p.BandwidthHigh = low/float64(processes), high/float64(processes)

	var err error
	if p.StorageCurve, err = NewCurve(storageAvail[:len(storage.Points)], storage.Slowdowns()); err != nil {
		return Profile{}, err
	}
	if p.BandwidthCurve, err = NewCurve(bandwidthAvail[:len(bandwidth.Points)], bandwidth.Slowdowns()); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// boundsFromSweep returns (lower, upper) total resource-use bounds.
func boundsFromSweep(s Sweep, avail []float64, threshold float64) (low, high float64) {
	lastOK, firstDegraded := s.Knee(threshold)
	high = avail[lastOK]
	if firstDegraded >= 0 {
		low = avail[firstDegraded]
	} else {
		// Never degraded: the application provably uses no more than the
		// smallest availability tested; the lower bound is unknown (0).
		low = 0
		high = avail[len(s.Points)-1]
	}
	return low, high
}

// PredictSlowdown estimates the application's slowdown on a hypothetical
// machine offering the given per-socket capacity and bandwidth, composing
// the two orthogonal sensitivity curves multiplicatively (§III-D shows the
// interference dimensions are independent).
func (p Profile) PredictSlowdown(capacityBytes float64, bandwidthGBs float64) float64 {
	sc := p.StorageCurve.At(capacityBytes)
	sb := p.BandwidthCurve.At(bandwidthGBs)
	return (1+sc)*(1+sb) - 1
}

// String renders a human-readable summary.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d processes/socket):\n", p.App, p.Processes)
	fmt.Fprintf(&b, "  L3 storage per process:  %s - %s\n",
		units.FormatBytes(int64(p.CapacityLow)), units.FormatBytes(int64(p.CapacityHigh)))
	fmt.Fprintf(&b, "  bandwidth per process:   %.2f - %.2f GB/s\n",
		p.BandwidthLow, p.BandwidthHigh)
	return b.String()
}
