// Package core implements the paper's Active Measurement methodology — its
// primary contribution. It measures an application's use of shared-cache
// storage and memory bandwidth by running interference threads (BWThr /
// CSThr) on the spare cores of a simulated socket and observing when the
// application's performance degrades (§II), calibrates the effective
// resource reduction per interference thread (§III-A, §III-C3), derives
// per-process resource-use bounds (§IV), and predicts performance under
// hypothetical resource budgets (§I).
package core

import (
	"fmt"

	"activemem/internal/engine"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/units"
	"activemem/internal/workload/interfere"
)

// Kind selects which memory resource an experiment interferes with.
type Kind int

// Interference kinds.
const (
	Storage   Kind = iota // CSThr: shared-cache capacity
	Bandwidth             // BWThr: cache↔memory bandwidth
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Storage:
		return "storage"
	case Bandwidth:
		return "bandwidth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// WorkloadFactory builds a fresh application workload for one experiment
// run. Allocations must come from alloc so runs never share address space
// with interference threads.
type WorkloadFactory func(alloc *mem.Alloc, seed uint64) engine.Workload

// MeasureConfig carries the common experiment parameters.
type MeasureConfig struct {
	Spec   machine.Spec
	Warmup units.Cycles // cache warmup before counters reset
	Window units.Cycles // measurement window length
	Seed   uint64
}

// Validate checks the configuration.
func (c MeasureConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Warmup < 0 || c.Window <= 0 {
		return fmt.Errorf("core: bad warmup/window %d/%d", c.Warmup, c.Window)
	}
	return nil
}

// Metrics summarises one measurement window of an application running with
// a given number of interference threads — the quantities the paper reads
// from hardware counters plus the simulator's ground truth.
type Metrics struct {
	Threads int // interference threads present

	Work    int64   // application work units completed in the window
	Seconds float64 // window length in seconds
	Rate    float64 // work units per second (the performance metric)

	L3MissRate float64 // application's demand L3 miss rate
	AppGBs     float64 // bandwidth consumed by the application
	InterfGBs  float64 // bandwidth consumed by the interference threads
	BusUtil    float64 // total bus utilization in the window

	InterfHeldBytes int64 // L3 bytes pinned by storage interference
}

// MeasureWithInterference runs the application on core 0 of a fresh socket
// with k interference threads of the given kind on cores 1..k, then
// measures a window after warmup. The BW/CS configurations default to the
// paper's parameters scaled to the machine when zero-valued.
func MeasureWithInterference(cfg MeasureConfig, app WorkloadFactory, kind Kind, k int,
	bw interfere.BWConfig, cs interfere.CSConfig) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	if k < 0 || k >= cfg.Spec.CoresPerSocket {
		return Metrics{}, fmt.Errorf("core: %d interference threads do not fit %d spare cores",
			k, cfg.Spec.CoresPerSocket-1)
	}
	if bw == (interfere.BWConfig{}) {
		bw = interfere.DefaultBWConfig(cfg.Spec.L3.Size)
	}
	if cs == (interfere.CSConfig{}) {
		cs = interfere.DefaultCSConfig(cfg.Spec.L3.Size)
	}

	h := cfg.Spec.NewSocket(cfg.Seed)
	e := engine.New(h, cfg.Spec.MSHRs)
	alloc := mem.NewAlloc(cfg.Spec.LineSize())

	appWl := app(alloc, cfg.Seed+1)
	e.PlaceDaemon(0, appWl, cfg.Seed+1)

	var csThreads []*interfere.CSThr
	for i := 0; i < k; i++ {
		switch kind {
		case Storage:
			t := interfere.NewCSThr(cs, alloc)
			csThreads = append(csThreads, t)
			e.PlaceDaemon(1+i, t, cfg.Seed+10+uint64(i))
		case Bandwidth:
			e.PlaceDaemon(1+i, interfere.NewBWThr(bw, alloc), cfg.Seed+10+uint64(i))
		default:
			return Metrics{}, fmt.Errorf("core: unknown interference kind %v", kind)
		}
	}

	e.RunUntil(cfg.Warmup)
	workBefore := e.Ctx(0).Work()
	h.ResetStats()
	e.RunUntil(cfg.Warmup + cfg.Window)

	clock := cfg.Spec.Clock
	m := Metrics{
		Threads: k,
		Work:    e.Ctx(0).Work() - workBefore,
		Seconds: clock.Seconds(cfg.Window),
	}
	if m.Seconds > 0 {
		m.Rate = float64(m.Work) / m.Seconds
	}
	appCtr := h.PerCore[0]
	m.L3MissRate = appCtr.L3MissRate()
	m.AppGBs = clock.BandwidthGBs(appCtr.BusBytes, cfg.Window)
	var interfBytes int64
	for i := 1; i <= k; i++ {
		interfBytes += h.PerCore[i].BusBytes
	}
	m.InterfGBs = clock.BandwidthGBs(interfBytes, cfg.Window)
	m.BusUtil = mem.Utilization(h.Bus.Stats, cfg.Window)
	for _, t := range csThreads {
		lo, hi := t.BufferRange(cfg.Spec.LineSize())
		m.InterfHeldBytes += h.L3.CountLinesIn(lo, hi) * cfg.Spec.LineSize()
	}
	return m, nil
}
