package core

import (
	"fmt"

	"activemem/internal/lab"
	"activemem/internal/stats"
	"activemem/internal/workload/interfere"
)

// SweepConfig describes an interference sweep: the application is measured
// with 0..MaxThreads interference threads of one kind, the x-axis of the
// paper's Figs. 9 and 11.
type SweepConfig struct {
	MeasureConfig
	Kind       Kind
	MaxThreads int
	BW         interfere.BWConfig // zero value: paper defaults for the machine
	CS         interfere.CSConfig // zero value: paper defaults for the machine
	// Exec schedules the sweep's levels; nil selects a fresh executor
	// bounded at GOMAXPROCS. Passing one executor to several sweeps shares
	// its memo cache, so the k=0 baseline of a storage and a bandwidth
	// sweep of the same application simulates exactly once.
	Exec *lab.Executor
	// Knee, when positive, switches the sweep to adaptive mode: levels are
	// measured in ascending order and the sweep stops scheduling once the
	// slowdown against the k=0 baseline has exceeded Knee for KneePatience
	// consecutive levels, so a caller that only wants the degradation knee
	// skips the expensive deep-interference cells. The measured prefix is
	// bit-identical to the same levels of a full sweep (cells are memoized
	// by content, so mixing adaptive and full sweeps on one executor or
	// cache directory loses nothing). Keep Knee at least as large as the
	// threshold of any downstream knee analysis (Sweep.Knee,
	// BuildProfile): a sweep stopped at a shallower slowdown leaves that
	// analysis's "never degraded" branch claiming bounds the unmeasured
	// levels were never allowed to refute. Zero — the default — measures
	// every level 0..MaxThreads, leaving the paper grids unchanged.
	Knee float64
	// KneePatience is the number of consecutive over-threshold levels that
	// stops an adaptive sweep; zero selects 2, so a single noisy level
	// does not end the sweep early.
	KneePatience int
}

// Validate checks the configuration.
func (c SweepConfig) Validate() error {
	if err := c.MeasureConfig.Validate(); err != nil {
		return err
	}
	if c.Kind != Storage && c.Kind != Bandwidth {
		return fmt.Errorf("core: unknown interference kind %v", c.Kind)
	}
	if c.MaxThreads < 0 || c.MaxThreads >= c.Spec.CoresPerSocket {
		return fmt.Errorf("core: sweep max threads %d out of range [0,%d)",
			c.MaxThreads, c.Spec.CoresPerSocket)
	}
	return nil
}

// Sweep holds the measured points of an interference sweep, indexed by
// thread count (Points[k] ran with k interference threads).
type Sweep struct {
	Kind   Kind
	App    string
	Points []Metrics
}

// RunSweep measures the application at every interference level. Each level
// uses an identically seeded, fresh socket, so points differ only in the
// interference applied — the controlled experiment of the paper's Fig. 1.
// Levels run on the configured executor's bounded pool and write their
// results by index, so the sweep is bit-identical at every worker count.
func RunSweep(cfg SweepConfig, appName string, app WorkloadFactory) (Sweep, error) {
	if err := cfg.Validate(); err != nil {
		return Sweep{}, err
	}
	if cfg.Knee > 0 {
		return runSweepAdaptive(cfg, appName, app)
	}
	ex, done := executor(cfg.Exec)
	defer done()
	s := Sweep{Kind: cfg.Kind, App: appName, Points: make([]Metrics, cfg.MaxThreads+1)}
	err := ex.RunLabeled(fmt.Sprintf("%s sweep: %s", cfg.Kind, appName),
		len(s.Points), func(k int) error {
			m, err := measureMemo(ex, cfg.MeasureConfig, appName, app, cfg.Kind, k, cfg.BW, cfg.CS)
			if err != nil {
				return err
			}
			s.Points[k] = m
			return nil
		})
	if err != nil {
		return Sweep{}, err
	}
	return s, nil
}

// runSweepAdaptive measures levels in ascending order and stops after the
// degradation knee (see SweepConfig.Knee). Levels are inherently sequential
// here — each one's scheduling decision depends on the previous slowdowns —
// so the executor contributes its memo tiers rather than its worker pool.
func runSweepAdaptive(cfg SweepConfig, appName string, app WorkloadFactory) (Sweep, error) {
	ex, done := executor(cfg.Exec)
	defer done()
	patience := cfg.KneePatience
	if patience <= 0 {
		patience = 2
	}
	label := fmt.Sprintf("%s sweep: %s (adaptive)", cfg.Kind, appName)
	total := cfg.MaxThreads + 1
	s := Sweep{Kind: cfg.Kind, App: appName}
	over := 0
	for k := 0; k < total; k++ {
		m, err := measureMemo(ex, cfg.MeasureConfig, appName, app, cfg.Kind, k, cfg.BW, cfg.CS)
		if err != nil {
			if k > 0 {
				ex.Progress(label, -1, total) // terminate the partial meter line
			}
			return Sweep{}, err
		}
		s.Points = append(s.Points, m)
		ex.Progress(label, k+1, total)
		base := s.Points[0].Rate
		if k == 0 || base <= 0 {
			continue
		}
		// A level that produced no work at all counts as degraded.
		if m.Rate > 0 && base/m.Rate-1 <= cfg.Knee {
			over = 0
			continue
		}
		over++
		if over >= patience {
			break
		}
	}
	if len(s.Points) < total {
		ex.Progress(label, -1, total) // terminate the meter line early
	}
	return s, nil
}

// SweepFromSeconds builds a Sweep from measured execution times indexed by
// interference thread count (rate = 1/seconds). Cluster-level experiments,
// which measure whole-application wall time rather than a work rate, use
// this to feed the same knee/bounds analysis.
func SweepFromSeconds(kind Kind, app string, seconds []float64) Sweep {
	s := Sweep{Kind: kind, App: app}
	for k, sec := range seconds {
		m := Metrics{Threads: k, Seconds: sec}
		if sec > 0 {
			m.Rate = 1 / sec
		}
		s.Points = append(s.Points, m)
	}
	return s
}

// Slowdowns returns the relative performance degradation of each point with
// respect to the uninterfered baseline: slowdown[k] = rate₀/rate_k − 1.
func (s Sweep) Slowdowns() []float64 {
	out := make([]float64, len(s.Points))
	if len(s.Points) == 0 || s.Points[0].Rate == 0 {
		return out
	}
	base := s.Points[0].Rate
	for k, p := range s.Points {
		if p.Rate > 0 {
			out[k] = base/p.Rate - 1
		}
	}
	return out
}

// Knee locates the degradation onset: lastOK is the largest thread count
// whose slowdown stays within threshold, firstDegraded the smallest count
// that exceeds it (or -1 if none does). This is the selection rule of the
// paper's §IV resource-use analysis.
func (s Sweep) Knee(threshold float64) (lastOK, firstDegraded int) {
	sl := s.Slowdowns()
	lastOK, firstDegraded = 0, -1
	for k := 1; k < len(sl); k++ {
		if sl[k] > threshold {
			firstDegraded = k
			break
		}
		lastOK = k
	}
	return lastOK, firstDegraded
}

// MaxSlowdown returns the largest slowdown in the sweep.
func (s Sweep) MaxSlowdown() float64 {
	return stats.Max(s.Slowdowns())
}
