package core

import (
	"fmt"
	"sync"

	"activemem/internal/stats"
	"activemem/internal/workload/interfere"
)

// SweepConfig describes an interference sweep: the application is measured
// with 0..MaxThreads interference threads of one kind, the x-axis of the
// paper's Figs. 9 and 11.
type SweepConfig struct {
	MeasureConfig
	Kind       Kind
	MaxThreads int
	BW         interfere.BWConfig // zero value: paper defaults for the machine
	CS         interfere.CSConfig // zero value: paper defaults for the machine
	Parallel   bool               // run interference levels on a worker pool
}

// Validate checks the configuration.
func (c SweepConfig) Validate() error {
	if err := c.MeasureConfig.Validate(); err != nil {
		return err
	}
	if c.MaxThreads < 0 || c.MaxThreads >= c.Spec.CoresPerSocket {
		return fmt.Errorf("core: sweep max threads %d out of range [0,%d)",
			c.MaxThreads, c.Spec.CoresPerSocket)
	}
	return nil
}

// Sweep holds the measured points of an interference sweep, indexed by
// thread count (Points[k] ran with k interference threads).
type Sweep struct {
	Kind   Kind
	App    string
	Points []Metrics
}

// RunSweep measures the application at every interference level. Each level
// uses an identically seeded, fresh socket, so points differ only in the
// interference applied — the controlled experiment of the paper's Fig. 1.
func RunSweep(cfg SweepConfig, appName string, app WorkloadFactory) (Sweep, error) {
	if err := cfg.Validate(); err != nil {
		return Sweep{}, err
	}
	s := Sweep{Kind: cfg.Kind, App: appName, Points: make([]Metrics, cfg.MaxThreads+1)}
	errs := make([]error, cfg.MaxThreads+1)
	run := func(k int) {
		s.Points[k], errs[k] = MeasureWithInterference(cfg.MeasureConfig, app, cfg.Kind, k, cfg.BW, cfg.CS)
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for k := 0; k <= cfg.MaxThreads; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				run(k)
			}(k)
		}
		wg.Wait()
	} else {
		for k := 0; k <= cfg.MaxThreads; k++ {
			run(k)
		}
	}
	for _, err := range errs {
		if err != nil {
			return Sweep{}, err
		}
	}
	return s, nil
}

// SweepFromSeconds builds a Sweep from measured execution times indexed by
// interference thread count (rate = 1/seconds). Cluster-level experiments,
// which measure whole-application wall time rather than a work rate, use
// this to feed the same knee/bounds analysis.
func SweepFromSeconds(kind Kind, app string, seconds []float64) Sweep {
	s := Sweep{Kind: kind, App: app}
	for k, sec := range seconds {
		m := Metrics{Threads: k, Seconds: sec}
		if sec > 0 {
			m.Rate = 1 / sec
		}
		s.Points = append(s.Points, m)
	}
	return s
}

// Slowdowns returns the relative performance degradation of each point with
// respect to the uninterfered baseline: slowdown[k] = rate₀/rate_k − 1.
func (s Sweep) Slowdowns() []float64 {
	out := make([]float64, len(s.Points))
	if len(s.Points) == 0 || s.Points[0].Rate == 0 {
		return out
	}
	base := s.Points[0].Rate
	for k, p := range s.Points {
		if p.Rate > 0 {
			out[k] = base/p.Rate - 1
		}
	}
	return out
}

// Knee locates the degradation onset: lastOK is the largest thread count
// whose slowdown stays within threshold, firstDegraded the smallest count
// that exceeds it (or -1 if none does). This is the selection rule of the
// paper's §IV resource-use analysis.
func (s Sweep) Knee(threshold float64) (lastOK, firstDegraded int) {
	sl := s.Slowdowns()
	lastOK, firstDegraded = 0, -1
	for k := 1; k < len(sl); k++ {
		if sl[k] > threshold {
			firstDegraded = k
			break
		}
		lastOK = k
	}
	return lastOK, firstDegraded
}

// MaxSlowdown returns the largest slowdown in the sweep.
func (s Sweep) MaxSlowdown() float64 {
	return stats.Max(s.Slowdowns())
}
