package core

import (
	"fmt"

	"activemem/internal/dist"
	"activemem/internal/engine"
	"activemem/internal/lab"
	"activemem/internal/machine"
	"activemem/internal/mem"
	"activemem/internal/model"
	"activemem/internal/stats"
	"activemem/internal/workload/interfere"
	"activemem/internal/workload/synthetic"
)

// CalibrationConfig drives the §III-C3 procedure: synthetic benchmarks with
// known distributions run against k CSThrs; the measured L3 miss rate is
// inverted through Eq. 4 into the effective cache capacity left to the
// benchmark.
type CalibrationConfig struct {
	MeasureConfig
	MaxThreads     int
	BufferBytes    []int64                   // benchmark buffer sizes (paper: 30..74 MB)
	Dists          []func(n int64) dist.Dist // pattern constructors (paper: Table II)
	ComputePerLoad int                       // integer adds per load (paper: 1, 10, 100)
	ElemSize       int64                     // benchmark element width (paper: 4)
	CS             interfere.CSConfig        // zero value: paper defaults
	// Exec schedules the grid's cells; nil selects a fresh executor bounded
	// at GOMAXPROCS. A shared executor memoizes cells across grids (e.g.
	// the k=0 slice of a Fig. 6 grid reuses an identical Fig. 5 grid).
	Exec *lab.Executor
}

// Validate checks the configuration.
func (c CalibrationConfig) Validate() error {
	if err := c.MeasureConfig.Validate(); err != nil {
		return err
	}
	if c.MaxThreads < 0 || c.MaxThreads >= c.Spec.CoresPerSocket {
		return fmt.Errorf("core: calibration max threads %d out of range", c.MaxThreads)
	}
	if len(c.BufferBytes) == 0 || len(c.Dists) == 0 {
		return fmt.Errorf("core: calibration needs buffer sizes and distributions")
	}
	if c.ElemSize <= 0 {
		return fmt.Errorf("core: calibration element size must be positive")
	}
	return nil
}

// DefaultCalibrationGrid fills BufferBytes and Dists with a scaled version
// of the paper's grid: nBufs buffer sizes spanning 1.5×..3.7× the machine's
// L3 (the paper's 30–74 MB against 20 MB), and the full Table II pattern
// set.
func DefaultCalibrationGrid(spec machine.Spec, nBufs int) ([]int64, []func(n int64) dist.Dist) {
	if nBufs < 2 {
		nBufs = 2
	}
	lo := spec.L3.Size * 3 / 2
	hi := spec.L3.Size * 37 / 10
	bufs := make([]int64, nBufs)
	for i := range bufs {
		b := lo + (hi-lo)*int64(i)/int64(nBufs-1)
		bufs[i] = b &^ 4095 // page-align for tidiness
	}
	return bufs, Table2Constructors()
}

// Table2Constructors returns the ten Table II distribution constructors.
func Table2Constructors() []func(n int64) dist.Dist {
	return []func(n int64) dist.Dist{
		func(n int64) dist.Dist { return dist.NewNormal(n, 4) },
		func(n int64) dist.Dist { return dist.NewNormal(n, 6) },
		func(n int64) dist.Dist { return dist.NewNormal(n, 8) },
		func(n int64) dist.Dist { return dist.NewExponential(n, 4) },
		func(n int64) dist.Dist { return dist.NewExponential(n, 6) },
		func(n int64) dist.Dist { return dist.NewExponential(n, 8) },
		func(n int64) dist.Dist { return dist.NewTriangular(n, 0.4) },
		func(n int64) dist.Dist { return dist.NewTriangular(n, 0.6) },
		func(n int64) dist.Dist { return dist.NewTriangular(n, 0.8) },
		func(n int64) dist.Dist { return dist.NewUniform(n) },
	}
}

// CapacitySample is one (buffer size, distribution) cell of the calibration
// grid at a given interference level.
type CapacitySample struct {
	BufferBytes    int64
	DistName       string
	MeasuredMiss   float64
	PredictedMiss  float64 // Eq. 4 at the full physical capacity (Fig. 5)
	EffectiveBytes float64 // Eq. 4 inverted from the measured miss (Fig. 6)
}

// CapacityPoint aggregates the grid at one interference level.
type CapacityPoint struct {
	Threads   int
	MeanBytes float64
	StdBytes  float64
	Samples   []CapacitySample
}

// CapacityCalibration is the §III-C3 result: how much effective L3 capacity
// k CSThrs leave to an application (the paper's ≈{20,15,12,7,4,3} MB for
// k = 0..5 on Xeon20MB).
type CapacityCalibration struct {
	Spec   machine.Spec
	Points []CapacityPoint // index = CSThr count
}

// AvailableBytes returns the mean effective capacity at each level, the
// lookup table the paper's §IV analysis uses.
func (c CapacityCalibration) AvailableBytes() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.MeanBytes
	}
	return out
}

// CalibrateCapacity runs the full calibration grid. Cells are independent
// experiments scheduled on the configured executor's bounded pool; results
// are written by index so the outcome is deterministic regardless of
// scheduling, and memoized so identical cells simulate once per executor.
func CalibrateCapacity(cfg CalibrationConfig) (CapacityCalibration, error) {
	if err := cfg.Validate(); err != nil {
		return CapacityCalibration{}, err
	}
	ex, done := executor(cfg.Exec)
	defer done()
	cal := CapacityCalibration{Spec: cfg.Spec}
	cal.Points = make([]CapacityPoint, cfg.MaxThreads+1)
	type cell struct {
		k, bi, di int
	}
	var cells []cell
	for k := 0; k <= cfg.MaxThreads; k++ {
		cal.Points[k] = CapacityPoint{
			Threads: k,
			Samples: make([]CapacitySample, len(cfg.BufferBytes)*len(cfg.Dists)),
		}
		for bi := range cfg.BufferBytes {
			for di := range cfg.Dists {
				cells = append(cells, cell{k, bi, di})
			}
		}
	}
	err := ex.RunLabeled(fmt.Sprintf("§III-C3 capacity grid c=%d, k=0..%d",
		cfg.ComputePerLoad, cfg.MaxThreads), len(cells), func(idx int) error {
		c := cells[idx]
		sample, err := cfg.runOne(ex, c.k, cfg.BufferBytes[c.bi], cfg.Dists[c.di])
		if err != nil {
			return err
		}
		cal.Points[c.k].Samples[c.bi*len(cfg.Dists)+c.di] = sample
		return nil
	})
	if err != nil {
		return CapacityCalibration{}, err
	}
	for k := range cal.Points {
		vals := make([]float64, 0, len(cal.Points[k].Samples))
		for _, s := range cal.Points[k].Samples {
			vals = append(vals, s.EffectiveBytes)
		}
		cal.Points[k].MeanBytes, cal.Points[k].StdBytes = stats.MeanStd(vals)
	}
	return cal, nil
}

// runOne measures one calibration cell through the executor's memo cache.
func (cfg CalibrationConfig) runOne(ex *lab.Executor, k int, bufBytes int64, mk func(n int64) dist.Dist) (CapacitySample, error) {
	d := mk(bufBytes / cfg.ElemSize)
	app := func(alloc *mem.Alloc, seed uint64) engine.Workload {
		return synthetic.New(synthetic.Config{
			Dist:           d,
			ElemSize:       cfg.ElemSize,
			ComputePerLoad: cfg.ComputePerLoad,
		}, alloc)
	}
	// The name pins the benchmark's full identity (pattern, element count,
	// width, compute intensity) so memo keys never collide across cells.
	appName := fmt.Sprintf("synthetic(%s,n=%d,elem=%d,c=%d)",
		d.Name(), d.N(), cfg.ElemSize, cfg.ComputePerLoad)
	m, err := measureMemo(ex, cfg.MeasureConfig, appName, app, Storage, k, interfere.BWConfig{}, cfg.CS)
	if err != nil {
		return CapacitySample{}, err
	}
	lineSize := cfg.Spec.LineSize()
	sumSq := dist.SumSquaredLineMass(d, lineSize/cfg.ElemSize)
	lines, err := model.InvertCapacity(m.L3MissRate, sumSq)
	if err != nil {
		return CapacitySample{}, err
	}
	physLines := float64(cfg.Spec.L3.Size / lineSize)
	return CapacitySample{
		BufferBytes:    bufBytes,
		DistName:       d.Name(),
		MeasuredMiss:   m.L3MissRate,
		PredictedMiss:  model.MissRate(physLines, sumSq),
		EffectiveBytes: lines * float64(lineSize),
	}, nil
}

// BandwidthCalibration is the §III-A result: the bandwidth consumed by k
// BWThrs and, by subtraction from the peak, the bandwidth left available
// (the paper's 17 → 14.2 → 11.4 GB/s for 0..2 threads).
type BandwidthCalibration struct {
	PeakGBs      float64
	ConsumedGBs  []float64 // per BWThr count
	AvailableGBs []float64
}

// CalibrateBandwidth measures k = 0..maxThreads BWThrs running alone on a
// socket. The per-level cells run on ex's bounded pool and are memoized by
// their full input content, so a shared executor measures the §III-A BWThr
// ladder once no matter how many sweeps, app studies or profiles consume
// it; a nil ex selects a fresh GOMAXPROCS-bounded executor.
func CalibrateBandwidth(cfg MeasureConfig, maxThreads int, bw interfere.BWConfig, ex *lab.Executor) (BandwidthCalibration, error) {
	if err := cfg.Validate(); err != nil {
		return BandwidthCalibration{}, err
	}
	if maxThreads < 0 || maxThreads >= cfg.Spec.CoresPerSocket {
		return BandwidthCalibration{}, fmt.Errorf("core: %d BWThrs exceed socket", maxThreads)
	}
	if bw == (interfere.BWConfig{}) {
		bw = interfere.DefaultBWConfig(cfg.Spec.L3.Size)
	}
	ex, done := executor(ex)
	defer done()
	cal := BandwidthCalibration{PeakGBs: cfg.Spec.PeakBandwidthGBs()}
	cal.ConsumedGBs = make([]float64, maxThreads+1)
	err := ex.RunLabeled(fmt.Sprintf("§III-A bandwidth ladder k=0..%d", maxThreads),
		maxThreads+1, func(k int) error {
			consumed, err := lab.Memo(ex,
				lab.KeyOf(cfg.Spec, cfg.Warmup, cfg.Window, cfg.Seed, "bwthr-ladder", k, bw),
				func() (float64, error) {
					return measureBWThrLadder(cfg, k, bw), nil
				})
			if err != nil {
				return err
			}
			cal.ConsumedGBs[k] = consumed
			return nil
		})
	if err != nil {
		return BandwidthCalibration{}, err
	}
	for _, consumed := range cal.ConsumedGBs {
		avail := cal.PeakGBs - consumed
		if avail < 0 {
			avail = 0
		}
		cal.AvailableGBs = append(cal.AvailableGBs, avail)
	}
	return cal, nil
}

// measureBWThrLadder simulates k BWThrs alone on a socket and returns the
// bandwidth they consume.
func measureBWThrLadder(cfg MeasureConfig, k int, bw interfere.BWConfig) float64 {
	if k == 0 {
		return 0
	}
	h := cfg.Spec.NewSocket(cfg.Seed)
	e := engine.New(h, cfg.Spec.MSHRs)
	alloc := mem.NewAlloc(cfg.Spec.LineSize())
	for i := 0; i < k; i++ {
		e.PlaceDaemon(i, interfere.NewBWThr(bw, alloc), cfg.Seed+uint64(i))
	}
	e.RunUntil(cfg.Warmup)
	h.ResetStats()
	e.RunUntil(cfg.Warmup + cfg.Window)
	return cfg.Spec.Clock.BandwidthGBs(h.Bus.Stats.Bytes, cfg.Window)
}
