package core

// This file connects the measurement primitives to the internal/lab
// executor: it defines the content-addressed key of one measurement run and
// the memoized entry point that sweeps and calibration grids share. Keying
// at this level is what deduplicates the uninterfered k=0 baseline across
// the storage sweep, the bandwidth sweep and calibration cells of one
// executor.

import (
	"activemem/internal/lab"
	"activemem/internal/workload/interfere"
)

// Metrics cells are what sweeps and calibration grids persist, so register
// them with the executor's disk tier (the §III-A bandwidth ladder's
// float64 levels use the registry's built-in scalar codec).
func init() {
	lab.RegisterResult[Metrics]("core.Metrics")
}

// ExperimentKey fingerprints one MeasureWithInterference invocation:
// machine spec, warmup/window, seed, workload identity, interference kind
// and thread count, and the resolved interference configuration. Runs with
// k == 0 share a single baseline key regardless of kind, because no
// interference thread is placed and the kind cannot affect the result.
//
// appName must uniquely identify the workload's behaviour: two different
// workloads must never share a name within one lab.Executor.
func ExperimentKey(cfg MeasureConfig, appName string, kind Kind, k int,
	bw interfere.BWConfig, cs interfere.CSConfig) lab.Key {
	base := []any{cfg.Spec, cfg.Warmup, cfg.Window, cfg.Seed, appName}
	if k == 0 {
		return lab.KeyOf(append(base, "baseline")...)
	}
	switch kind {
	case Bandwidth:
		if bw == (interfere.BWConfig{}) {
			bw = interfere.DefaultBWConfig(cfg.Spec.L3.Size)
		}
		return lab.KeyOf(append(base, "bwthr", k, bw)...)
	case Storage:
		if cs == (interfere.CSConfig{}) {
			cs = interfere.DefaultCSConfig(cfg.Spec.L3.Size)
		}
		return lab.KeyOf(append(base, "csthr", k, cs)...)
	default:
		// An invalid kind still gets its own key, so the run-time error it
		// produces can never collide with (or poison) a valid cell.
		return lab.KeyOf(append(base, "invalid-kind", int(kind), k)...)
	}
}

// measureMemo runs MeasureWithInterference through ex's memo cache, so an
// identical measurement requested twice on one executor simulates once.
func measureMemo(ex *lab.Executor, cfg MeasureConfig, appName string, app WorkloadFactory,
	kind Kind, k int, bw interfere.BWConfig, cs interfere.CSConfig) (Metrics, error) {
	return lab.Memo(ex, ExperimentKey(cfg, appName, kind, k, bw, cs), func() (Metrics, error) {
		return MeasureWithInterference(cfg, app, kind, k, bw, cs)
	})
}

// executor resolves a possibly-nil shared executor into a usable one. done
// releases a locally created executor's resident worker pool when the
// caller finishes; for a shared executor it is a no-op, since the owner
// decides when the campaign's pool retires (lab.Executor.Close).
func executor(ex *lab.Executor) (_ *lab.Executor, done func()) {
	if ex != nil {
		return ex, func() {}
	}
	ex = lab.New(lab.Config{})
	return ex, ex.Close
}
