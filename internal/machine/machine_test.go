package machine

import (
	"strings"
	"testing"

	"activemem/internal/units"
)

func TestXeon20MBMatchesTableI(t *testing.T) {
	s := Xeon20MB()
	if err := s.Validate(); err != nil {
		t.Fatalf("Xeon20MB invalid: %v", err)
	}
	if s.L1.Size != 32*units.KB || s.L1.Assoc != 8 {
		t.Errorf("L1 = %d bytes %d-way, want 32KB 8-way", s.L1.Size, s.L1.Assoc)
	}
	if s.L2.Size != 256*units.KB || s.L2.Assoc != 8 {
		t.Errorf("L2 = %d bytes %d-way, want 256KB 8-way", s.L2.Size, s.L2.Assoc)
	}
	if s.L3.Size != 20*units.MB || s.L3.Assoc != 20 {
		t.Errorf("L3 = %d bytes %d-way, want 20MB 20-way", s.L3.Size, s.L3.Assoc)
	}
	if s.L1.LineSize != 64 || s.L2.LineSize != 64 || s.L3.LineSize != 64 {
		t.Error("line sizes must be 64 bytes")
	}
	if s.CoresPerSocket != 8 || s.SocketsPerNode != 2 {
		t.Errorf("topology = %d cores, %d sockets", s.CoresPerSocket, s.SocketsPerNode)
	}
	// Peak bandwidth must approximate the paper's STREAM figure of 17 GB/s.
	if bw := s.PeakBandwidthGBs(); bw < 16 || bw > 17.5 {
		t.Errorf("peak bandwidth = %v GB/s, want ~17", bw)
	}
	if !s.Inclusive {
		t.Error("Sandy Bridge L3 is inclusive")
	}
}

func TestScaledGeometry(t *testing.T) {
	for _, f := range []int{1, 2, 4, 8, 16} {
		s := Scaled(f)
		if err := s.Validate(); err != nil {
			t.Fatalf("Scaled(%d) invalid: %v", f, err)
		}
		if s.L3.Size != 20*units.MB/int64(f) {
			t.Errorf("Scaled(%d) L3 = %d", f, s.L3.Size)
		}
		// Latencies and bus rate are scale-invariant.
		if s.MemLatency != Xeon20MB().MemLatency || s.Bus != Xeon20MB().Bus {
			t.Errorf("Scaled(%d) changed latencies or bus", f)
		}
	}
	if Scaled(1).Name != "Xeon20MB" {
		t.Error("Scaled(1) should be the base machine")
	}
}

func TestScaledRejectsBadFactors(t *testing.T) {
	for _, f := range []int{0, -2, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%d) should panic", f)
				}
			}()
			Scaled(f)
		}()
	}
}

func TestNewSocket(t *testing.T) {
	s := Scaled(8)
	h := s.NewSocket(1)
	if h.Cores() != 8 {
		t.Fatalf("socket cores = %d, want 8", h.Cores())
	}
	if h.LineSize() != 64 {
		t.Fatalf("line size = %d", h.LineSize())
	}
	if h.L3.Config().Size != s.L3.Size {
		t.Fatal("socket L3 size mismatch")
	}
}

func TestValidateCatchesBrokenSpecs(t *testing.T) {
	s := Xeon20MB()
	s.CoresPerSocket = 0
	if s.Validate() == nil {
		t.Error("zero cores accepted")
	}
	s = Xeon20MB()
	s.MSHRs = 0
	if s.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
	s = Xeon20MB()
	s.L3.Size = 12345
	if s.Validate() == nil {
		t.Error("broken L3 geometry accepted")
	}
}

func TestTableIRendering(t *testing.T) {
	out := Xeon20MB().TableI()
	for _, want := range []string{"L1D", "L2", "L3", "20.0MB", "20-way", "shared", "private"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestNICParameters(t *testing.T) {
	s := Xeon20MB()
	if s.NICGBs != 5.0 {
		t.Errorf("NIC bandwidth = %v GB/s, want 5 (40 Gb/s QDR)", s.NICGBs)
	}
	// 1.5us at 2.6GHz = 3900 cycles.
	if s.NICLatency < 3800 || s.NICLatency > 4000 {
		t.Errorf("NIC latency = %d cycles, want ~3900", s.NICLatency)
	}
}
