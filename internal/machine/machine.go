// Package machine defines the simulated hardware platforms: the paper's
// Xeon E5-2670 socket ("Xeon20MB", Table I), geometrically scaled variants
// used to keep application studies affordable, and a builder for custom
// what-if machines (e.g. the thin-memory exascale node of the paper's
// motivation).
package machine

import (
	"fmt"
	"strings"

	"activemem/internal/mem"
	"activemem/internal/units"
)

// Spec describes a machine type. It is a value type: experiments copy and
// tweak it freely.
type Spec struct {
	Name           string
	CoresPerSocket int
	SocketsPerNode int
	Clock          units.Clock

	L1, L2, L3 mem.CacheConfig
	Bus        mem.BusConfig
	MemLatency units.Cycles
	Inclusive  bool
	Prefetch   mem.PrefetchConfig

	// MSHRs bounds per-core outstanding misses (memory-level parallelism).
	MSHRs int

	// Interconnect parameters for multi-node runs (cluster package):
	// NICGBs is per-node injection bandwidth, NICLatency the one-way wire
	// latency in cycles.
	NICGBs     float64
	NICLatency units.Cycles

	// RAM per node, used only for configuration sanity checks.
	RAMPerNode int64
}

// Xeon20MB returns the paper's measurement platform (Table I): 8-core
// 2.6 GHz Sandy Bridge sockets, 2 per node, private 32 KB L1 and 256 KB L2,
// shared inclusive 20 MB 20-way L3, ≈16.6 GB/s to memory (the paper's
// STREAM-measured 17 GB/s), and InfiniBand QDR (40 Gb/s) between nodes.
func Xeon20MB() Spec {
	clock := units.NewClock(2.6)
	return Spec{
		Name:           "Xeon20MB",
		CoresPerSocket: 8,
		SocketsPerNode: 2,
		Clock:          clock,
		L1: mem.CacheConfig{Name: "L1D", Size: 32 * units.KB, LineSize: 64,
			Assoc: 8, Latency: 4, Policy: mem.PolicyLRU},
		L2: mem.CacheConfig{Name: "L2", Size: 256 * units.KB, LineSize: 64,
			Assoc: 8, Latency: 12, Policy: mem.PolicyLRU},
		L3: mem.CacheConfig{Name: "L3", Size: 20 * units.MB, LineSize: 64,
			Assoc: 20, Latency: 36, Policy: mem.PolicyLRU},
		Bus:        mem.BusConfig{CyclesPerChunk: 10, BytesPerChunk: 64},
		MemLatency: 180,
		Inclusive:  true,
		Prefetch:   mem.DefaultPrefetch(),
		MSHRs:      10,
		NICGBs:     5.0, // 40 Gb/s QDR
		NICLatency: clock.Cycles(1.5e-6),
		RAMPerNode: 32 * units.GB,
	}
}

// Scaled returns the spec shrunk by factor f (a power of two): cache sizes
// divide by f while line size, associativity, latencies and bus rate stay
// fixed. Interference phenomena are scale-free in this transformation —
// buffer-to-cache ratios are what matter — so application studies run on
// Scaled(8) by default and report capacities alongside their ×f rescaled
// equivalents.
func Scaled(f int) Spec {
	if f <= 0 || f&(f-1) != 0 {
		panic("machine: scale factor must be a positive power of two")
	}
	s := Xeon20MB()
	if f == 1 {
		return s
	}
	s.Name = fmt.Sprintf("Xeon20MB/%d", f)
	s.L1.Size /= int64(f)
	s.L2.Size /= int64(f)
	s.L3.Size /= int64(f)
	return s
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.CoresPerSocket <= 0 || s.SocketsPerNode <= 0 {
		return fmt.Errorf("machine: %s: non-positive topology", s.Name)
	}
	if s.MSHRs <= 0 {
		return fmt.Errorf("machine: %s: MSHRs must be positive", s.Name)
	}
	cfg := s.HierarchyConfig(0)
	return cfg.Validate()
}

// HierarchyConfig assembles the per-socket memory-system configuration.
func (s Spec) HierarchyConfig(seed uint64) mem.HierarchyConfig {
	return mem.HierarchyConfig{
		Cores:       s.CoresPerSocket,
		L1:          s.L1,
		L2:          s.L2,
		L3:          s.L3,
		Bus:         s.Bus,
		MemLatency:  s.MemLatency,
		InclusiveL3: s.Inclusive,
		Prefetch:    s.Prefetch,
		Clock:       s.Clock,
		Seed:        seed,
	}
}

// NewSocket instantiates one socket's memory hierarchy.
func (s Spec) NewSocket(seed uint64) *mem.Hierarchy {
	return mem.NewHierarchy(s.HierarchyConfig(seed))
}

// PeakBandwidthGBs returns the socket's peak memory bandwidth.
func (s Spec) PeakBandwidthGBs() float64 {
	return s.Bus.PeakGBs(s.Clock)
}

// LineSize returns the cache line size in bytes.
func (s Spec) LineSize() int64 { return s.L1.LineSize }

// TableI renders the memory-hierarchy description in the shape of the
// paper's Table I.
func (s Spec) TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s memory hierarchy (%d cores/socket, %d sockets/node, %.1f GHz)\n",
		s.Name, s.CoresPerSocket, s.SocketsPerNode, s.Clock.HzPerSecond/1e9)
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-14s %s\n", "Cache", "Capacity", "Line Size", "Associativity", "Scope")
	row := func(c mem.CacheConfig, scope string) {
		fmt.Fprintf(&b, "%-8s %-10s %-10s %-14s %s\n", c.Name,
			units.FormatBytes(c.Size), fmt.Sprintf("%d bytes", c.LineSize),
			fmt.Sprintf("%d-way", c.Assoc), scope)
	}
	row(s.L1, "private")
	row(s.L2, "private")
	row(s.L3, "shared")
	fmt.Fprintf(&b, "Memory bus: %.2f GB/s peak, %d cycles DRAM latency\n",
		s.PeakBandwidthGBs(), s.MemLatency)
	return b.String()
}
