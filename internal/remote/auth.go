// Shared-secret auth for the HTTP services (labcached's cell store and
// the fleet coordinator). The model is deliberately minimal: one bearer
// token shared by the whole campaign, supplied to servers via
// -auth-token and to clients via $ACTIVEMEM_CACHE_TOKEN. It is an
// accident fence, not a cryptographic identity system — it keeps a
// stray process of another campaign (or another schema generation that
// predates the 412 check) from reading or polluting a cache it was
// never pointed at. Comparison is constant-time over fixed-length
// digests so neither token length nor a prefix match leaks through
// response timing.

package remote

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"os"
	"strings"
)

// TokenFromEnv returns the shared-secret bearer token from
// $ACTIVEMEM_CACHE_TOKEN, or "" when unset (auth disabled).
func TokenFromEnv() string { return os.Getenv("ACTIVEMEM_CACHE_TOKEN") }

// RequireAuth wraps h with bearer-token authentication. An empty token
// disables the check entirely (the PR 9 open-by-default posture). A
// request whose Authorization header is missing or wrong gets 401 and a
// count in remote_server_requests_total{op="any",outcome="unauthorized"};
// the body never reaches h.
func RequireAuth(token string, h http.Handler) http.Handler {
	if token == "" {
		return h
	}
	// Hash once: ConstantTimeCompare needs equal-length inputs, and
	// comparing digests also avoids keeping the raw secret in the closure.
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		gotSum := sha256.Sum256([]byte(got))
		if subtle.ConstantTimeCompare(gotSum[:], want[:]) != 1 {
			mSrvRequests[srvUnauthorized].Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="activemem"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}
