// Telemetry instruments for the remote tier, registered on the process
// default registry so every CLI with -telemetry (and labcached itself)
// exposes them. Client-side families answer "is the remote tier helping
// or hurting" at a glance: gets by outcome, breaker state and opens,
// write-back queue depth and drops, latency histograms. Server-side
// families count requests by verb and outcome.

package remote

import "activemem/internal/telemetry"

// Client-side GET outcomes, the label values of remote_gets_total.
const (
	getHit = iota
	getMiss
	getNotModified
	getError       // connection failure, timeout, 5xx after retries
	getCorrupt     // body arrived, checksum disagreed — never decoded
	getBreakerOpen // fast-failed locally, no request sent
	getSchemaMiss  // 412: server speaks another schema generation
	numGetOutcomes
)

var getOutcomeNames = [numGetOutcomes]string{
	"hit", "miss", "not_modified", "error", "corrupt", "breaker_open", "schema_mismatch"}

// Client-side PUT outcomes, the label values of remote_puts_total.
const (
	putStored = iota
	putExists
	putError
	putDropped // write-back queue full: dropped, never blocked the campaign
	putShed    // tier refused it up front: breaker open, schema/auth disabled
	numPutOutcomes
)

var putOutcomeNames = [numPutOutcomes]string{"stored", "exists", "error", "dropped", "shed"}

var (
	mGets [numGetOutcomes]*telemetry.Counter
	mPuts [numPutOutcomes]*telemetry.Counter

	mRetries = telemetry.Default.NewCounter("remote_retries_total",
		"Request attempts beyond the first (bounded exponential backoff with jitter).")
	mBreakerOpens = telemetry.Default.NewCounter("remote_breaker_opens_total",
		"Circuit-breaker transitions to open (consecutive remote failures reached the threshold).")
	mBreakerState = telemetry.Default.NewGauge("remote_breaker_state",
		"Circuit-breaker state: 0 closed (healthy), 1 half-open (probing), 2 open (fast-failing).")
	mPutQueueDepth = telemetry.Default.NewGauge("remote_put_queue_depth",
		"Computed results queued for asynchronous write-back to the remote cache.")
	mGetSeconds = telemetry.Default.NewHistogram("remote_get_seconds",
		"Remote GET span including retries, as observed by the memo tier.")
	mPutSeconds = telemetry.Default.NewHistogram("remote_put_seconds",
		"Remote write-back PUT span including retries.")
)

func init() {
	for o := 0; o < numGetOutcomes; o++ {
		mGets[o] = telemetry.Default.NewCounter("remote_gets_total",
			"Remote-tier GETs by outcome. Everything except hit degrades to a local miss.",
			telemetry.Label{Key: "outcome", Value: getOutcomeNames[o]})
	}
	for o := 0; o < numPutOutcomes; o++ {
		mPuts[o] = telemetry.Default.NewCounter("remote_puts_total",
			"Asynchronous write-back PUTs by outcome.",
			telemetry.Label{Key: "outcome", Value: putOutcomeNames[o]})
	}
}

// Server-side request outcomes (labcached), remote_server_requests_total.
const (
	srvGetHit = iota
	srvGetMiss
	srvGetNotModified
	srvGetSchemaMiss
	srvPutStored
	srvPutExists
	srvPutSchemaMiss
	srvBadRequest
	srvError
	srvUnauthorized // bearer token missing or wrong: 401, nothing served
	numSrvOutcomes
)

var srvOutcomeNames = [numSrvOutcomes]struct{ op, outcome string }{
	{"get", "hit"}, {"get", "miss"}, {"get", "not_modified"}, {"get", "schema_mismatch"},
	{"put", "stored"}, {"put", "exists"}, {"put", "schema_mismatch"},
	{"any", "bad_request"}, {"any", "error"}, {"any", "unauthorized"},
}

var mSrvRequests [numSrvOutcomes]*telemetry.Counter

func init() {
	for o := 0; o < numSrvOutcomes; o++ {
		mSrvRequests[o] = telemetry.Default.NewCounter("remote_server_requests_total",
			"Cell requests served by labcached, by verb and outcome.",
			telemetry.Label{Key: "op", Value: srvOutcomeNames[o].op},
			telemetry.Label{Key: "outcome", Value: srvOutcomeNames[o].outcome})
	}
}
