// The client half of the remote memo tier. Every public entry point is
// infallible by design: Get answers (typeName, payload, ok) and PutAsync
// answers nothing, because the only correct reaction to any remote
// failure is a local cache miss. The failure modes are contained by
// four mechanisms, outermost first:
//
//   - single-flight: concurrent fetches of one key collapse into one
//     request; waiters share the verified payload.
//   - circuit breaker: consecutive failed calls open it, after which
//     requests fast-fail locally until a cooldown and a half-open probe.
//   - bounded retries: idempotent GETs (and connection-level PUT
//     failures, where the request provably never changed server state)
//     retry with exponential backoff plus jitter; everything else fails
//     the call immediately.
//   - per-attempt deadlines: no request, however stalled the server,
//     holds a cell longer than Timeout × (1 + Retries) plus backoff.
//
// Bodies are verified against their CRC-32 header before anything may
// decode them — a corrupt payload is a counted miss, never a result —
// and a 412 schema mismatch disables the tier for the process lifetime
// (one warning, then silence: a wrong-generation cache is useless, not
// retryable). Write-back runs on a background worker behind a bounded
// queue that drops when full; a slow server sheds write-back load
// instead of back-pressuring the campaign.

package remote

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"activemem/internal/telemetry"
)

// Options parameterises a Client. The zero value of every tuning field
// selects the default documented on it; BaseURL and Schema are required.
type Options struct {
	// BaseURL locates the labcached server, e.g. "http://10.0.0.7:8344".
	// A bare host:port is accepted and assumed http.
	BaseURL string
	// Schema is the result-schema generation this process speaks
	// (lab.ResultSchemaVersion). Sent on every request; a server that
	// disagrees answers 412 and the tier disables itself.
	Schema string

	// Timeout bounds each request attempt (default 2s). This is the
	// client's deadline budget: no cell ever waits on the remote tier
	// longer than Timeout×(1+Retries) plus backoff sleeps.
	Timeout time.Duration
	// Retries is the number of re-attempts after a retryable failure
	// (default 2). Only idempotent GETs and connection-level PUT failures
	// retry.
	Retries int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// retries (defaults 50ms and 1s); each sleep is jittered in
	// [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// BreakerThreshold is the number of consecutive failed calls that
	// open the circuit breaker (default 3). BreakerCooldown is how long
	// it stays open before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// PutQueue bounds the asynchronous write-back queue (default 256
	// results); when full, further write-backs are counted and dropped.
	PutQueue int
	// DrainTimeout bounds how long Close waits for queued write-backs
	// (default 2s).
	DrainTimeout time.Duration

	// AuthToken, when non-empty, is sent as a bearer token on every
	// request (the server's -auth-token shared secret). A 401 answer
	// disables the tier for the process lifetime with one warning, like a
	// schema mismatch: a server that rejects our credential can never
	// serve us a byte.
	AuthToken string
}

func (o *Options) withDefaults() {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.PutQueue <= 0 {
		o.PutQueue = 256
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 2 * time.Second
	}
}

// OptionsFromEnv builds Options for baseURL and schema, letting the
// environment override the tuning knobs:
//
//	ACTIVEMEM_REMOTE_TIMEOUT            per-attempt deadline (Go duration)
//	ACTIVEMEM_REMOTE_RETRIES            re-attempts after a retryable failure
//	ACTIVEMEM_REMOTE_BREAKER_THRESHOLD  consecutive failures that open the breaker
//	ACTIVEMEM_REMOTE_BREAKER_COOLDOWN   open duration before a probe (Go duration)
//	ACTIVEMEM_CACHE_TOKEN               shared-secret bearer token
//
// Unset or unparsable variables keep the defaults.
func OptionsFromEnv(baseURL, schema string) Options {
	o := Options{BaseURL: baseURL, Schema: schema, AuthToken: TokenFromEnv()}
	if d, err := time.ParseDuration(os.Getenv("ACTIVEMEM_REMOTE_TIMEOUT")); err == nil && d > 0 {
		o.Timeout = d
	}
	if n, err := strconv.Atoi(os.Getenv("ACTIVEMEM_REMOTE_RETRIES")); err == nil && n >= 0 {
		o.Retries = n
		if n == 0 {
			o.Retries = -1 // withDefaults maps 0 to the default; -1 means "no retries"
		}
	}
	if n, err := strconv.Atoi(os.Getenv("ACTIVEMEM_REMOTE_BREAKER_THRESHOLD")); err == nil && n > 0 {
		o.BreakerThreshold = n
	}
	if d, err := time.ParseDuration(os.Getenv("ACTIVEMEM_REMOTE_BREAKER_COOLDOWN")); err == nil && d > 0 {
		o.BreakerCooldown = d
	}
	return o
}

// Client is a fault-tolerant handle on one labcached server. Safe for
// concurrent use by any number of executor workers.
type Client struct {
	base   string
	schema string
	opts   Options
	hc     *http.Client
	br     *Breaker

	flightMu sync.Mutex
	flight   map[string]*flightCall

	putCh     chan putJob
	drainReq  chan struct{}
	drainDone chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once

	schemaBad atomic.Bool
	warnOnce  sync.Once
	authBad   atomic.Bool
	authOnce  sync.Once

	// Per-client counters backing Stats (the /metrics families in
	// metrics.go are process-wide and aggregate across clients).
	nGets, nHits, nMisses, nNotMod   atomic.Uint64
	nErrors, nCorrupt, nSchemaMiss   atomic.Uint64
	nFastFails, nRetries             atomic.Uint64
	nPutsStored, nPutsExists         atomic.Uint64
	nPutErrors, nPutsDropped         atomic.Uint64
	nPutsShed                        atomic.Uint64
	nSingleflightShared, nQueueDepth atomic.Int64
}

type flightCall struct {
	done     chan struct{}
	typeName string
	payload  []byte
	ok       bool
}

type putJob struct {
	key, typeName string
	payload       []byte
}

// New returns a client for the server at o.BaseURL. The only error is a
// malformed URL — everything that can go wrong at runtime degrades to
// cache misses instead.
func New(o Options) (*Client, error) {
	o.withDefaults()
	base := o.BaseURL
	if base == "" {
		return nil, fmt.Errorf("remote: empty base URL")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("remote: invalid cache URL %q", o.BaseURL)
	}
	base = strings.TrimRight(base, "/")
	if o.Schema == "" {
		return nil, fmt.Errorf("remote: empty schema version")
	}
	c := &Client{
		base:   base,
		schema: o.Schema,
		opts:   o,
		// The transport-level timeout stays off: per-attempt contexts carry
		// the deadline so retries get a fresh budget each.
		hc:        &http.Client{},
		br:        newBreaker(o.BreakerThreshold, o.BreakerCooldown),
		flight:    map[string]*flightCall{},
		putCh:     make(chan putJob, o.PutQueue),
		drainReq:  make(chan struct{}),
		drainDone: make(chan struct{}),
	}
	go c.putWorker()
	return c, nil
}

// BaseURL returns the normalised server URL.
func (c *Client) BaseURL() string { return c.base }

// Get fetches key's record. A false report means "not available from the
// remote tier right now" for any reason — miss, dead server, timeout,
// open breaker, corrupt body, schema mismatch — and the caller computes.
// Concurrent Gets for the same key collapse into one request.
func (c *Client) Get(key string) (typeName string, payload []byte, ok bool) {
	if c == nil || c.closed.Load() {
		return "", nil, false
	}
	c.nGets.Add(1)
	if c.schemaBad.Load() || c.authBad.Load() {
		c.nSchemaMiss.Add(1)
		mGets[getSchemaMiss].Inc()
		return "", nil, false
	}

	c.flightMu.Lock()
	if f, dup := c.flight[key]; dup {
		c.flightMu.Unlock()
		c.nSingleflightShared.Add(1)
		<-f.done
		return f.typeName, f.payload, f.ok
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[key] = f
	c.flightMu.Unlock()

	f.typeName, f.payload, f.ok = c.getCall(key)

	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(f.done)
	return f.typeName, f.payload, f.ok
}

// Attempt outcomes.
const (
	outHit = iota
	outMiss
	outNotModified
	outSchemaMiss
	outUnauthorized // 401: credential rejected; the tier disables itself
	outCorrupt      // body arrived but cannot be trusted; retrying won't help
	outRetry        // connection-level failure, timeout, torn body, 5xx
	outFail         // unexpected but definitive answer (other 4xx)
)

// getCall runs one logical GET: breaker gate, attempt loop with backoff,
// outcome accounting.
func (c *Client) getCall(key string) (string, []byte, bool) {
	if !c.br.Allow() {
		c.nFastFails.Add(1)
		mGets[getBreakerOpen].Inc()
		return "", nil, false
	}
	timed := telemetry.Active()
	var startNs int64
	if timed {
		startNs = telemetry.NowNs()
	}
	defer func() {
		if timed {
			mGetSeconds.Observe(telemetry.NowNs() - startNs)
		}
	}()
	for attempt := 0; ; attempt++ {
		typeName, payload, out := c.getOnce(key)
		switch out {
		case outHit:
			c.br.Success()
			c.nHits.Add(1)
			mGets[getHit].Inc()
			return typeName, payload, true
		case outMiss:
			c.br.Success() // the server answered; a cold cache is healthy
			c.nMisses.Add(1)
			mGets[getMiss].Inc()
			return "", nil, false
		case outNotModified:
			c.br.Success()
			c.nNotMod.Add(1)
			mGets[getNotModified].Inc()
			return "", nil, false
		case outSchemaMiss:
			c.br.Success()
			c.noteSchemaMismatch()
			c.nSchemaMiss.Add(1)
			mGets[getSchemaMiss].Inc()
			return "", nil, false
		case outUnauthorized:
			c.br.Success() // the server is healthy; our credential is not
			c.noteUnauthorized()
			c.nErrors.Add(1)
			mGets[getError].Inc()
			return "", nil, false
		case outCorrupt:
			c.br.Failure()
			c.nCorrupt.Add(1)
			mGets[getCorrupt].Inc()
			return "", nil, false
		case outFail:
			c.br.Failure()
			c.nErrors.Add(1)
			mGets[getError].Inc()
			return "", nil, false
		default: // outRetry
			if attempt >= c.opts.Retries {
				c.br.Failure()
				c.nErrors.Add(1)
				mGets[getError].Inc()
				return "", nil, false
			}
			c.nRetries.Add(1)
			mRetries.Inc()
			time.Sleep(c.backoff(attempt))
		}
	}
}

// getOnce performs one GET attempt under its own deadline. ifNoneMatch
// threads the conditional-request validator for revalidation callers
// (and the protocol tests); the memo tier passes none.
func (c *Client) getOnce(key string) (string, []byte, int) {
	return c.getOnceConditional(key, "")
}

func (c *Client) getOnceConditional(key, ifNoneMatch string) (string, []byte, int) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+CellPathPrefix+key, nil)
	if err != nil {
		return "", nil, outFail
	}
	req.Header.Set(HeaderSchema, c.schema)
	if c.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", nil, outRetry // dial/timeout/reset: never reached a verdict
	}
	defer func() {
		// Drain a little so the connection can be reused, then close.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, MaxPayload+1))
		if err != nil {
			return "", nil, outRetry // torn body: connection died mid-transfer
		}
		if int64(len(body)) > MaxPayload {
			return "", nil, outCorrupt
		}
		if cl := resp.ContentLength; cl >= 0 && cl != int64(len(body)) {
			return "", nil, outRetry // short read the transport didn't flag
		}
		typeName := resp.Header.Get(HeaderType)
		if typeName == "" || !ChecksumMatches(resp.Header.Get(HeaderChecksum), body) {
			return "", nil, outCorrupt
		}
		return typeName, body, outHit
	case resp.StatusCode == http.StatusNotModified:
		return "", nil, outNotModified
	case resp.StatusCode == http.StatusNotFound:
		return "", nil, outMiss
	case resp.StatusCode == http.StatusPreconditionFailed:
		return "", nil, outSchemaMiss
	case resp.StatusCode == http.StatusUnauthorized:
		return "", nil, outUnauthorized
	case resp.StatusCode >= 500:
		return "", nil, outRetry
	default:
		return "", nil, outFail
	}
}

// PutAsync queues a computed record for best-effort write-back. It never
// blocks: a full queue (or a disabled/closed tier) drops the record —
// the result is already safe in the local tiers, the remote copy is an
// optimisation.
func (c *Client) PutAsync(key, typeName string, payload []byte) {
	if c == nil || c.closed.Load() {
		return
	}
	if c.schemaBad.Load() || c.authBad.Load() {
		// Count the refusal: these records never reach the server and the
		// epilogue warns about them, same as the breaker-open sync path.
		c.nPutsShed.Add(1)
		mPuts[putShed].Inc()
		return
	}
	if len(payload) > MaxPayload || len(key) > MaxKeyLen {
		return
	}
	select {
	case c.putCh <- putJob{key: key, typeName: typeName, payload: payload}:
		c.nQueueDepth.Add(1)
		mPutQueueDepth.Add(1)
	default:
		c.nPutsDropped.Add(1)
		mPuts[putDropped].Inc()
	}
}

// putWorker serialises write-backs. One worker is deliberate: write-back
// is a background optimisation and must never compete with the campaign
// for connections or CPU; the bounded queue plus drop-on-full absorbs
// bursts.
func (c *Client) putWorker() {
	for {
		select {
		case j := <-c.putCh:
			c.nQueueDepth.Add(-1)
			mPutQueueDepth.Add(-1)
			c.putCall(j)
		case <-c.drainReq:
			for {
				select {
				case j := <-c.putCh:
					c.nQueueDepth.Add(-1)
					mPutQueueDepth.Add(-1)
					c.putCall(j)
				default:
					close(c.drainDone)
					return
				}
			}
		}
	}
}

// Put writes one record synchronously and reports whether the server
// now holds it. Workers in a fleet use this to publish a computed cell
// before acking its lease — the ack must not race the write-back queue,
// or a peer told "done" could miss the bytes. Failures degrade to false;
// the caller's result is already safe in the local tiers.
func (c *Client) Put(key, typeName string, payload []byte) bool {
	if c == nil || c.closed.Load() {
		return false
	}
	if len(payload) > MaxPayload || len(key) > MaxKeyLen {
		return false
	}
	return c.putCall(putJob{key: key, typeName: typeName, payload: payload})
}

// putCall runs one logical PUT and reports whether the record is on the
// server (stored now or already present). Only connection-level failures
// retry: there the request provably never changed server state. (A PUT
// of a content-addressed record is idempotent anyway, but staying within
// the idempotency argument keeps the retry policy self-evidently safe.)
func (c *Client) putCall(j putJob) bool {
	if c.schemaBad.Load() || c.authBad.Load() || !c.br.Allow() {
		// Shed, not dropped: the record never entered the queue race — the
		// tier itself refused it (disabled or breaker-open).
		c.nPutsShed.Add(1)
		mPuts[putShed].Inc()
		return false
	}
	timed := telemetry.Active()
	var startNs int64
	if timed {
		startNs = telemetry.NowNs()
	}
	defer func() {
		if timed {
			mPutSeconds.Observe(telemetry.NowNs() - startNs)
		}
	}()
	for attempt := 0; ; attempt++ {
		out := c.putOnce(j)
		switch out {
		case outHit: // 201 stored
			c.br.Success()
			c.nPutsStored.Add(1)
			mPuts[putStored].Inc()
			return true
		case outMiss: // 200 already present
			c.br.Success()
			c.nPutsExists.Add(1)
			mPuts[putExists].Inc()
			return true
		case outSchemaMiss:
			c.br.Success()
			c.noteSchemaMismatch()
			c.nPutErrors.Add(1)
			mPuts[putError].Inc()
			return false
		case outUnauthorized:
			c.br.Success()
			c.noteUnauthorized()
			c.nPutErrors.Add(1)
			mPuts[putError].Inc()
			return false
		case outFail:
			c.br.Failure()
			c.nPutErrors.Add(1)
			mPuts[putError].Inc()
			return false
		default: // outRetry: connection-level only
			if attempt >= c.opts.Retries {
				c.br.Failure()
				c.nPutErrors.Add(1)
				mPuts[putError].Inc()
				return false
			}
			c.nRetries.Add(1)
			mRetries.Inc()
			time.Sleep(c.backoff(attempt))
		}
	}
}

// putOnce performs one PUT attempt under its own deadline.
func (c *Client) putOnce(j putJob) int {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+CellPathPrefix+j.key, strings.NewReader(string(j.payload)))
	if err != nil {
		return outFail
	}
	req.ContentLength = int64(len(j.payload))
	req.Header.Set(HeaderSchema, c.schema)
	req.Header.Set(HeaderType, j.typeName)
	req.Header.Set(HeaderChecksum, Checksum(j.payload))
	if c.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return outRetry
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusCreated:
		return outHit
	case resp.StatusCode == http.StatusOK:
		return outMiss
	case resp.StatusCode == http.StatusPreconditionFailed:
		return outSchemaMiss
	case resp.StatusCode == http.StatusUnauthorized:
		return outUnauthorized
	case resp.StatusCode >= 500:
		// The server answered, so the transport worked; but a 5xx PUT may
		// or may not have been applied. Content addressing makes a replay
		// harmless, yet the bounded-retry budget is better spent on reads —
		// fail the write-back, the next campaign will offer the record again.
		return outFail
	default:
		return outFail
	}
}

// backoff returns the jittered exponential delay before retry attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	return JitteredBackoff(c.opts.BackoffBase, c.opts.BackoffMax, attempt)
}

// JitteredBackoff returns the delay before retry attempt+1 of an
// exponential-backoff schedule: base<<attempt capped at max, jittered on
// the upper half ([d/2, d]) so a fleet of workers retrying against one
// recovering server never synchronises into thundering herds. Shared by
// this client and the fleet coordinator client.
func JitteredBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	if d <= 0 {
		return 0
	}
	return d/2 + rand.N(d/2+1)
}

// noteSchemaMismatch disables the tier for the process lifetime and warns
// once. A server of another schema generation can never serve this
// process a usable byte, so further requests would be pure overhead.
func (c *Client) noteSchemaMismatch() {
	if c.schemaBad.CompareAndSwap(false, true) {
		c.warnOnce.Do(func() {
			fmt.Fprintf(os.Stderr,
				"remote: cache at %s speaks a different result-schema generation than %q; remote tier disabled for this run\n",
				c.base, c.schema)
		})
	}
}

// noteUnauthorized disables the tier for the process lifetime and warns
// once, mirroring noteSchemaMismatch: a server that rejects this
// process's credential will reject every request, so further traffic is
// pure overhead (and noise in the server's 401 counter).
func (c *Client) noteUnauthorized() {
	if c.authBad.CompareAndSwap(false, true) {
		c.authOnce.Do(func() {
			fmt.Fprintf(os.Stderr,
				"remote: cache at %s rejected our auth token (401); remote tier disabled for this run\n",
				c.base)
		})
	}
}

// Close drains queued write-backs (bounded by DrainTimeout) and releases
// connections. Get/PutAsync on a closed client are safe no-ops.
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		close(c.drainReq)
		select {
		case <-c.drainDone:
		case <-time.After(c.opts.DrainTimeout):
		}
		c.hc.CloseIdleConnections()
	})
}

// Stats is a snapshot of the client's counters, served on /statusz and
// printed in the CLIs' cache epilogue.
type Stats struct {
	Gets             uint64 `json:"gets"`
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	NotModified      uint64 `json:"not_modified,omitempty"`
	Errors           uint64 `json:"errors"`
	Corrupt          uint64 `json:"corrupt"`
	SchemaMismatches uint64 `json:"schema_mismatches"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	Retries          uint64 `json:"retries"`
	BreakerOpens     uint64 `json:"breaker_opens"`
	BreakerState     int    `json:"breaker_state"`
	SingleflightHits int64  `json:"singleflight_hits"`
	PutsStored       uint64 `json:"puts_stored"`
	PutsExists       uint64 `json:"puts_exists"`
	PutErrors        uint64 `json:"put_errors"`
	PutsDropped      uint64 `json:"puts_dropped"`
	PutsShed         uint64 `json:"puts_shed"`
	PutQueueDepth    int64  `json:"put_queue_depth"`
}

// Stats returns a snapshot of the client's activity.
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Gets:             c.nGets.Load(),
		Hits:             c.nHits.Load(),
		Misses:           c.nMisses.Load(),
		NotModified:      c.nNotMod.Load(),
		Errors:           c.nErrors.Load(),
		Corrupt:          c.nCorrupt.Load(),
		SchemaMismatches: c.nSchemaMiss.Load(),
		BreakerFastFails: c.nFastFails.Load(),
		Retries:          c.nRetries.Load(),
		BreakerOpens:     c.br.Opens(),
		BreakerState:     c.br.State(),
		SingleflightHits: c.nSingleflightShared.Load(),
		PutsStored:       c.nPutsStored.Load(),
		PutsExists:       c.nPutsExists.Load(),
		PutErrors:        c.nPutErrors.Load(),
		PutsDropped:      c.nPutsDropped.Load(),
		PutsShed:         c.nPutsShed.Load(),
		PutQueueDepth:    c.nQueueDepth.Load(),
	}
}
