// The circuit breaker shared by every remote-facing client in this
// repository (the memo-tier cache client here, the fleet coordinator
// client in internal/fleet). A sick server must cost a campaign at most
// one deadline budget per probe window, not one per cell: after
// Threshold consecutive failures the breaker opens and requests
// fast-fail locally (a counted miss, no dial, no deadline spent) until
// Cooldown elapses; then exactly one probe request is let through
// half-open — its success closes the breaker, its failure re-opens the
// window.

package remote

import (
	"sync"
	"time"

	"activemem/internal/telemetry"
)

// Breaker states, exported as the remote_breaker_state gauge.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// Breaker is a closed→open→half-open circuit breaker. Construct with
// NewBreaker; the zero value is not ready for use.
type Breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before a half-open probe

	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	openCount uint64    // total transitions to open

	opens *telemetry.Counter // transitions-to-open counter, may be nil
	gauge *telemetry.Gauge   // state gauge, may be nil
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and probes again after cooldown. The optional instruments
// (either may be nil) receive open transitions and state changes, so each
// client family exposes its own breaker series.
func NewBreaker(threshold int, cooldown time.Duration, opens *telemetry.Counter, state *telemetry.Gauge) *Breaker {
	if threshold <= 0 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, opens: opens, gauge: state}
}

// newBreaker binds the remote tier's own metric instruments.
func newBreaker(threshold int, cooldown time.Duration) *Breaker {
	return NewBreaker(threshold, cooldown, mBreakerOpens, mBreakerState)
}

func (b *Breaker) setGauge(v int64) {
	if b.gauge != nil {
		b.gauge.Set(v)
	}
}

// Allow reports whether a request may go out. In the open state it
// returns false until the cooldown has elapsed, then admits a single
// half-open probe; concurrent callers during the probe keep fast-failing,
// so a struggling server sees one request per window, not a stampede.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // the one probe is already in flight
	default: // BreakerOpen
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.setGauge(BreakerHalfOpen)
		return true
	}
}

// Success records a request that completed against the server (any
// protocol-level answer, including 404 — the server is healthy even when
// the cache is cold).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.setGauge(BreakerClosed)
	}
}

// Failure records a connection-level failure, timeout, server error or
// corrupt body. A failing half-open probe re-opens immediately; while
// closed, Threshold consecutive failures open the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open()
		return
	}
	if b.state == BreakerOpen {
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open()
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openedAt = time.Now()
	b.openCount++
	if b.opens != nil {
		b.opens.Inc()
	}
	b.setGauge(BreakerOpen)
}

// State returns the current breaker state constant.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}
