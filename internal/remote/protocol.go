// Package remote is the result-serving HTTP tier over the persistent
// store: the protocol spoken between cmd/labcached (the server half,
// server.go) and the executor's remote memo tier (the client half,
// client.go).
//
// The protocol is deliberately plain HTTP with conditional-request
// semantics, because the cache is content-addressed and immutable:
//
//	GET /v1/cell/{key}   -> 200 (body = payload), 304, 404 or 412
//	PUT /v1/cell/{key}   -> 201 created, 200 already present, 412, 4xx
//
// A cell key fingerprints the full input content of an experiment cell
// including the result schema version (lab.KeyOf), so a key's bytes can
// never change: the ETag is the strong pair (key, schema version), every
// 200/201 is immutable and infinitely cacheable, and a matching
// If-None-Match always answers 304 with no body. Schema negotiation runs
// over an explicit header — a client and server of different simulator
// generations answer 412 Precondition Failed instead of ever exchanging
// bytes that would decode into wrong results. Payloads carry an explicit
// CRC-32 so both ends verify bodies end to end: a corrupted body is a
// counted miss, never a decoded result.
//
// Robustness contract (the reason this package exists at all): every
// result is recomputable from its content-addressed key, so the client
// treats every failure — connection refused, timeout, 5xx, torn or
// corrupt body, schema mismatch — as a cache miss and degrades to
// compute. A dead, slow, flaky or corrupting server can never fail a
// campaign, change its bytes, or stall it past the configured deadline
// budget (per-request deadlines, bounded retries, a circuit breaker that
// stops asking a sick server entirely).
package remote

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Wire constants. The byte limits mirror the store's record limits so a
// record that fits the store fits the wire and vice versa.
const (
	// CellPathPrefix is the result endpoint; the cell key follows it.
	CellPathPrefix = "/v1/cell/"

	// HeaderSchema negotiates the result schema version
	// (lab.ResultSchemaVersion). PUT requires it; a GET may omit it (plain
	// curl inspection) but a mismatch on either verb answers 412.
	HeaderSchema = "X-Activemem-Schema"
	// HeaderType carries the registered result type name (the store's
	// decoder selector, e.g. "core.Metrics").
	HeaderType = "X-Activemem-Type"
	// HeaderChecksum carries the payload's CRC-32 (IEEE, eight hex
	// digits). Servers verify it on PUT before admitting a record; clients
	// verify it on GET before a payload may be decoded.
	HeaderChecksum = "X-Activemem-Crc32"

	// MaxKeyLen/MaxPayload mirror the store's limits.
	MaxKeyLen  = 1 << 10
	MaxPayload = 1 << 26
)

// ETagFor renders the strong ETag of a cell: the content address plus the
// schema generation, quoted per RFC 9110. Results are immutable, so this
// validator never weakens — a matching If-None-Match is always a 304.
func ETagFor(key, schema string) string {
	return `"` + key + "@" + schema + `"`
}

// Checksum renders a payload's CRC-32 for HeaderChecksum.
func Checksum(payload []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))
}

// ChecksumMatches verifies a HeaderChecksum value against a payload. An
// empty header reports false: both halves of this protocol always send
// the checksum, so its absence means the body crossed something that
// stripped it and must not be trusted.
func ChecksumMatches(header string, payload []byte) bool {
	want, err := strconv.ParseUint(strings.TrimSpace(header), 16, 32)
	if err != nil {
		return false
	}
	return uint32(want) == crc32.ChecksumIEEE(payload)
}

// etagMatches implements If-None-Match for strong immutable entities: a
// literal match of any listed validator, or the wildcard.
func etagMatches(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	for _, cand := range strings.Split(ifNoneMatch, ",") {
		cand = strings.TrimSpace(cand)
		// A weak validator prefix cannot weaken an immutable entity: the
		// bytes behind a key can never differ, so W/"x" and "x" name the
		// same representation.
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// cellKey extracts and validates the key of a /v1/cell/ request path.
func cellKey(path string) (string, bool) {
	key, ok := strings.CutPrefix(path, CellPathPrefix)
	if !ok || key == "" || len(key) > MaxKeyLen || strings.ContainsAny(key, "/ ") {
		return "", false
	}
	return key, true
}
