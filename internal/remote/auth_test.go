// Shared-secret auth on the cache server, and the client's reaction to
// a rejected credential: one 401, one warning, then a permanently
// disabled tier whose refused writes are counted as shed.

package remote

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"activemem/internal/store"
)

func TestRequireAuth(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	get := func(h http.Handler, authorization string) int {
		srv := httptest.NewServer(h)
		defer srv.Close()
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if authorization != "" {
			req.Header.Set("Authorization", authorization)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// An empty configured token disables auth entirely.
	if code := get(RequireAuth("", ok), ""); code != http.StatusNoContent {
		t.Fatalf("no-auth passthrough = %d", code)
	}
	guarded := RequireAuth("s3cret", ok)
	for header, want := range map[string]int{
		"":                http.StatusUnauthorized,
		"Bearer wrong":    http.StatusUnauthorized,
		"Bearer s3cret":   http.StatusNoContent,
		"s3cret":          http.StatusNoContent, // bare token accepted too
		"Bearer s3cretXX": http.StatusUnauthorized,
	} {
		if code := get(guarded, header); code != want {
			t.Errorf("Authorization %q = %d, want %d", header, code, want)
		}
	}
}

func TestClientAuthRoundtripAndRejection(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(RequireAuth("s3cret", NewHandler(st)))
	t.Cleanup(srv.Close)

	// The right token: a normal tier.
	c := newClient(t, srv.URL, func(o *Options) { o.AuthToken = "s3cret" })
	if !c.Put("k1", "T", []byte("payload")) {
		t.Fatal("authed put failed")
	}
	if _, payload, ok := c.Get("k1"); !ok || string(payload) != "payload" {
		t.Fatalf("authed get = %q, %v", payload, ok)
	}

	// The wrong token: the tier downs itself on the first 401 and every
	// later call is shed locally without touching the server.
	bad := newClient(t, srv.URL, func(o *Options) { o.AuthToken = "nope" })
	if bad.Put("k1", "T", []byte("payload")) {
		t.Fatal("unauthorized put reported success")
	}
	if _, _, ok := bad.Get("k1"); ok {
		t.Fatal("unauthorized get reported a hit")
	}
	for i := 0; i < 3; i++ {
		bad.Put("k1", "T", []byte("payload"))
	}
	s := bad.Stats()
	if s.PutsShed < 3 {
		t.Fatalf("stats = %+v: disabled tier must shed writes", s)
	}
	if s.BreakerState != BreakerClosed {
		t.Fatalf("401 tripped the breaker (state %d): a healthy server answered", s.BreakerState)
	}
}
