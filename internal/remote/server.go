// The server half of the remote memo tier: an http.Handler over a
// writable store.Store, mounted by cmd/labcached beside the telemetry
// handler. Results are immutable and content-addressed, so the handler
// is a textbook conditional-GET cache: strong ETag (key + schema),
// If-None-Match → 304 with no body, Cache-Control: immutable, and a 412
// whenever the peer speaks a different schema generation — wrong-schema
// bytes never cross the wire in either direction. PUTs are verified
// against their checksum header before touching the store, so a client
// (or a middlebox) that corrupts a body cannot poison the shared cache.

package remote

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"activemem/internal/store"
)

// Handler serves the /v1/cell/ protocol over one store.
type Handler struct {
	st *store.Store
}

// NewHandler returns the cell handler for st (which must be writable for
// PUTs to succeed; a read-only store serves GETs and fails PUTs).
func NewHandler(st *store.Store) *Handler { return &Handler{st: st} }

// Store returns the handler's backing store.
func (h *Handler) Store() *store.Store { return h.st }

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, ok := cellKey(r.URL.Path)
	if !ok {
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "malformed cell path", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		h.get(w, r, key)
	case http.MethodPut:
		h.put(w, r, key)
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// checkSchema enforces schema negotiation: a mismatch answers 412 and
// reports false. GETs may omit the header (curl-friendliness — the
// response still carries the server's schema so the caller can tell what
// it got); PUTs must send it, because admitting a record of unknown
// generation would corrupt the cache for every reader.
func (h *Handler) checkSchema(w http.ResponseWriter, r *http.Request, required bool, mismatchOutcome int) bool {
	got := r.Header.Get(HeaderSchema)
	if got == h.st.Schema() || (got == "" && !required) {
		return true
	}
	w.Header().Set(HeaderSchema, h.st.Schema())
	mSrvRequests[mismatchOutcome].Inc()
	http.Error(w, fmt.Sprintf("result schema mismatch: server speaks %q, request says %q",
		h.st.Schema(), got), http.StatusPreconditionFailed)
	return false
}

func (h *Handler) get(w http.ResponseWriter, r *http.Request, key string) {
	if !h.checkSchema(w, r, false, srvGetSchemaMiss) {
		return
	}
	typeName, payload, ok := h.st.Get(key)
	if !ok {
		mSrvRequests[srvGetMiss].Inc()
		http.Error(w, "cell not cached", http.StatusNotFound)
		return
	}
	etag := ETagFor(key, h.st.Schema())
	hdr := w.Header()
	hdr.Set("ETag", etag)
	// Content addressing makes every 200 immutable: the bytes behind a key
	// can never change, only vanish (GC) — and a revalidation after that is
	// a 404, not different bytes.
	hdr.Set("Cache-Control", "public, max-age=31536000, immutable")
	hdr.Set(HeaderSchema, h.st.Schema())
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		mSrvRequests[srvGetNotModified].Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr.Set(HeaderType, typeName)
	hdr.Set(HeaderChecksum, Checksum(payload))
	hdr.Set("Content-Type", "application/octet-stream")
	hdr.Set("Content-Length", strconv.Itoa(len(payload)))
	mSrvRequests[srvGetHit].Inc()
	if r.Method == http.MethodHead {
		return
	}
	// Stream rather than one Write: large cluster-phase payloads flow
	// through the response's chunk-sized copies instead of forcing a
	// single contiguous socket write.
	io.Copy(w, bytes.NewReader(payload))
}

func (h *Handler) put(w http.ResponseWriter, r *http.Request, key string) {
	if !h.checkSchema(w, r, true, srvPutSchemaMiss) {
		return
	}
	typeName := r.Header.Get(HeaderType)
	if typeName == "" || len(typeName) > MaxKeyLen {
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "missing or oversized "+HeaderType+" header", http.StatusBadRequest)
		return
	}
	if r.ContentLength > MaxPayload {
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "payload exceeds record limit", http.StatusRequestEntityTooLarge)
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, MaxPayload+1))
	if err != nil {
		// The body died mid-transfer; the connection is gone, but account
		// for it — a fleet of torn PUTs is worth seeing on /metrics.
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "body read failed", http.StatusBadRequest)
		return
	}
	if int64(len(payload)) > MaxPayload {
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "payload exceeds record limit", http.StatusRequestEntityTooLarge)
		return
	}
	// The checksum is mandatory on PUT: a record admitted here is served
	// to every teammate, so a corrupt upload must die at the door.
	if !ChecksumMatches(r.Header.Get(HeaderChecksum), payload) {
		mSrvRequests[srvBadRequest].Inc()
		http.Error(w, "payload checksum missing or mismatched", http.StatusBadRequest)
		return
	}
	added, err := h.st.Put(key, typeName, payload)
	if err != nil {
		mSrvRequests[srvError].Inc()
		http.Error(w, "store write failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("ETag", ETagFor(key, h.st.Schema()))
	if added {
		mSrvRequests[srvPutStored].Inc()
		w.WriteHeader(http.StatusCreated)
	} else {
		mSrvRequests[srvPutExists].Inc()
		w.WriteHeader(http.StatusOK)
	}
}
