package remote

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activemem/internal/faultnet"
	"activemem/internal/store"
)

const testSchema = "test-schema-v1"

// newServer serves a fresh writable store over the cell protocol.
func newServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewHandler(st))
	t.Cleanup(srv.Close)
	return srv, st
}

// countingHandler wraps h, counting requests.
func countingHandler(h http.Handler, n *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		h.ServeHTTP(w, r)
	})
}

// newClient builds a test client: no retries, fast backoff, and a breaker
// too patient to interfere — tests that exercise retries or the breaker
// override through mod.
func newClient(t *testing.T, baseURL string, mod func(*Options)) *Client {
	t.Helper()
	o := Options{
		BaseURL:          baseURL,
		Schema:           testSchema,
		Timeout:          5 * time.Second,
		Retries:          -1, // no retries
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		BreakerThreshold: 1000,
		BreakerCooldown:  time.Minute,
		DrainTimeout:     5 * time.Second,
	}
	if mod != nil {
		mod(&o)
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestConditionalRequestSemantics pins the wire protocol: a warm GET
// carries a strong ETag and verifying checksum, a revalidation with
// If-None-Match answers 304 with no body, a schema mismatch answers 412,
// and a PUT without a valid checksum dies at the door.
func TestConditionalRequestSemantics(t *testing.T) {
	srv, st := newServer(t)
	const key = "cafe01"
	payload := []byte("cell-payload-bytes")
	if _, err := st.Put(key, "core.Metrics", payload); err != nil {
		t.Fatal(err)
	}
	cellURL := srv.URL + CellPathPrefix + key

	// Cold conditional-free GET: 200 with the full validator set.
	resp, err := http.Get(cellURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != string(payload) {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if want := ETagFor(key, testSchema); etag != want {
		t.Fatalf("ETag = %q, want %q", etag, want)
	}
	if got := resp.Header.Get(HeaderType); got != "core.Metrics" {
		t.Fatalf("%s = %q", HeaderType, got)
	}
	if !ChecksumMatches(resp.Header.Get(HeaderChecksum), payload) {
		t.Fatalf("checksum header %q does not verify", resp.Header.Get(HeaderChecksum))
	}
	if !strings.Contains(resp.Header.Get("Cache-Control"), "immutable") {
		t.Fatalf("Cache-Control = %q, want immutable", resp.Header.Get("Cache-Control"))
	}

	// Warm revalidation: 304, no body, for the exact ETag, a W/-prefixed
	// variant, a list, and the wildcard.
	for _, inm := range []string{etag, "W/" + etag, `"other", ` + etag, "*"} {
		req, _ := http.NewRequest(http.MethodGet, cellURL, nil)
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("If-None-Match %q: got %d with %d body bytes, want 304 empty",
				inm, resp.StatusCode, len(body))
		}
	}

	// Schema negotiation: a peer of another generation gets 412 and the
	// server's schema, never the payload.
	req, _ := http.NewRequest(http.MethodGet, cellURL, nil)
	req.Header.Set(HeaderSchema, "other-schema-v9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("wrong-schema GET = %d, want 412", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderSchema); got != testSchema {
		t.Fatalf("412 schema header = %q, want %q", got, testSchema)
	}

	// Absent key: 404.
	resp, err = http.Get(srv.URL + CellPathPrefix + "feedbeef")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent GET = %d, want 404", resp.StatusCode)
	}

	// PUT without a checksum, and with a lying one: rejected, not stored.
	for _, sum := range []string{"", Checksum([]byte("not-the-payload"))} {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+CellPathPrefix+"badput",
			strings.NewReader("data"))
		req.Header.Set(HeaderSchema, testSchema)
		req.Header.Set(HeaderType, "t")
		if sum != "" {
			req.Header.Set(HeaderChecksum, sum)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unverified PUT = %d, want 400", resp.StatusCode)
		}
	}
	if _, _, ok := st.Get("badput"); ok {
		t.Fatal("unverified PUT reached the store")
	}

	// Valid PUT: 201 on first store, 200 on replay.
	doPut := func() int {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+CellPathPrefix+"goodput",
			strings.NewReader("data"))
		req.Header.Set(HeaderSchema, testSchema)
		req.Header.Set(HeaderType, "t")
		req.Header.Set(HeaderChecksum, Checksum([]byte("data")))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := doPut(); got != http.StatusCreated {
		t.Fatalf("first PUT = %d, want 201", got)
	}
	if got := doPut(); got != http.StatusOK {
		t.Fatalf("replayed PUT = %d, want 200", got)
	}
}

func TestClientHitMissAndWriteBack(t *testing.T) {
	srv, st := newServer(t)
	c := newClient(t, srv.URL, nil)

	if _, _, ok := c.Get("absent"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	c.PutAsync("k1", "t", []byte("v1"))
	c.Close() // drains the write-back queue
	if typ, p, ok := st.Get("k1"); !ok || typ != "t" || string(p) != "v1" {
		t.Fatalf("write-back missing from store: (%q, %q, %v)", typ, p, ok)
	}
	s := c.Stats()
	if s.Misses != 1 || s.PutsStored != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 stored put", s)
	}

	c2 := newClient(t, srv.URL, nil)
	typ, p, ok := c2.Get("k1")
	if !ok || typ != "t" || string(p) != "v1" {
		t.Fatalf("Get after write-back = (%q, %q, %v)", typ, p, ok)
	}
	c2.PutAsync("k1", "t", []byte("v1")) // replay: server answers 200
	c2.Close()
	if s := c2.Stats(); s.Hits != 1 || s.PutsExists != 1 {
		t.Fatalf("second client stats = %+v, want 1 hit and 1 exists-put", s)
	}
}

func TestClientRetries5xxThenSucceeds(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Put("k", "t", []byte("v")); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(st)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, func(o *Options) { o.Retries = 2 })
	typ, p, ok := c.Get("k")
	if !ok || typ != "t" || string(p) != "v" {
		t.Fatalf("Get through transient 5xx = (%q, %q, %v)", typ, p, ok)
	}
	if s := c.Stats(); s.Retries != 2 || s.Hits != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 1 hit", s)
	}
}

// A body whose checksum header lies is a counted miss and is never
// retried: the payload arrived intact at the transport level, so the
// server (or a middlebox) is sick, and asking again cannot help.
func TestCorruptBodyIsCountedMissNeverRetried(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		w.Header().Set(HeaderType, "t")
		w.Header().Set(HeaderChecksum, Checksum([]byte("something else")))
		w.Write([]byte("payload"))
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, func(o *Options) { o.Retries = 3 })
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("corrupt body reported as a hit")
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on corrupt)", got)
	}
	if s := c.Stats(); s.Corrupt != 1 || s.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt, 0 retries", s)
	}
}

func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	srv, st := newServer(t)
	if _, err := st.Put("k", "t", []byte("v")); err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New(srv.URL, faultnet.Always(faultnet.Fault{Kind: faultnet.Err5xx}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := newClient(t, proxy.URL(), func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = 100 * time.Millisecond
	})
	for i := 0; i < 2; i++ {
		if _, _, ok := c.Get("k"); ok {
			t.Fatal("Get through 100% 5xx reported a hit")
		}
	}
	s := c.Stats()
	if s.BreakerState != BreakerOpen || s.BreakerOpens != 1 || s.Errors != 2 {
		t.Fatalf("after 2 failures: %+v, want open breaker", s)
	}

	// Open breaker: the next Get fast-fails locally, no request reaches
	// the proxy.
	before := proxy.Requests()
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("fast-fail reported a hit")
	}
	if got := proxy.Requests(); got != before {
		t.Fatalf("open breaker let a request through (%d -> %d)", before, got)
	}
	if s := c.Stats(); s.BreakerFastFails != 1 {
		t.Fatalf("stats = %+v, want 1 fast fail", s)
	}

	// Heal the link, wait out the cooldown: the half-open probe succeeds
	// and closes the breaker.
	proxy.SetDecider(faultnet.Healthy())
	time.Sleep(150 * time.Millisecond)
	if typ, p, ok := c.Get("k"); !ok || typ != "t" || string(p) != "v" {
		t.Fatalf("probe Get = (%q, %q, %v), want hit", typ, p, ok)
	}
	if s := c.Stats(); s.BreakerState != BreakerClosed {
		t.Fatalf("after probe: %+v, want closed breaker", s)
	}
}

func TestSingleflightCollapsesConcurrentGets(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Schema: testSchema})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Put("k", "t", []byte("v")); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(st)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		time.Sleep(200 * time.Millisecond) // hold the flight open
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			typ, p, ok := c.Get("k")
			if !ok || typ != "t" || string(p) != "v" {
				errs <- fmt.Errorf("Get = (%q, %q, %v)", typ, p, ok)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d requests for one key, want 1", got)
	}
	if s := c.Stats(); s.SingleflightHits != goroutines-1 {
		t.Fatalf("stats = %+v, want %d singleflight hits", s, goroutines-1)
	}
}

func TestSchemaMismatchDisablesTier(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Schema: "other-schema-v9"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var n atomic.Int64
	srv := httptest.NewServer(countingHandler(NewHandler(st), &n))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("cross-schema Get reported a hit")
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
	// The tier is now disabled for the process: no further request leaves.
	if _, _, ok := c.Get("k2"); ok {
		t.Fatal("disabled tier reported a hit")
	}
	c.PutAsync("k3", "t", []byte("v"))
	c.Close()
	if got := n.Load(); got != 1 {
		t.Fatalf("disabled tier still sent requests (%d total)", got)
	}
	if s := c.Stats(); s.SchemaMismatches != 2 {
		t.Fatalf("stats = %+v, want 2 schema mismatches", s)
	}
}

func TestTornBodyRetriesToSuccess(t *testing.T) {
	srv, st := newServer(t)
	if _, err := st.Put("k", "t", []byte("a-payload-long-enough-to-tear")); err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New(srv.URL, faultnet.Script(faultnet.Fault{Kind: faultnet.TornBody}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := newClient(t, proxy.URL(), func(o *Options) { o.Retries = 1 })
	typ, p, ok := c.Get("k")
	if !ok || typ != "t" || string(p) != "a-payload-long-enough-to-tear" {
		t.Fatalf("Get through torn body = (%q, %q, %v)", typ, p, ok)
	}
	if s := c.Stats(); s.Retries != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 retry then 1 hit", s)
	}
	if proxy.Injected(faultnet.TornBody) != 1 {
		t.Fatalf("proxy injected %d torn bodies, want 1", proxy.Injected(faultnet.TornBody))
	}
}

// A blackholed server can stall a Get for at most the per-attempt
// deadline budget; the call comes back a miss, never hangs.
func TestBlackholeBoundedByDeadline(t *testing.T) {
	srv, _ := newServer(t)
	proxy, err := faultnet.New(srv.URL, faultnet.Always(faultnet.Fault{Kind: faultnet.Blackhole}))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := newClient(t, proxy.URL(), func(o *Options) { o.Timeout = 100 * time.Millisecond })
	start := time.Now()
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("blackholed Get reported a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blackholed Get took %v, want ≈ the 100ms deadline", elapsed)
	}
	if s := c.Stats(); s.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", s)
	}
}

// Race coverage: concurrent same-key and cross-key Gets and PutAsyncs
// while the link flaps and the breaker cycles through its states.
func TestConcurrentAccessUnderFlappingLink(t *testing.T) {
	srv, st := newServer(t)
	for i := 0; i < 4; i++ {
		if _, err := st.Put(fmt.Sprintf("k%d", i), "t", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Every third request errors: enough failures to open the breaker
	// repeatedly, enough successes to close it again.
	flaky := faultnet.Decider(func(n int, _ *http.Request) faultnet.Fault {
		if n%3 == 2 {
			return faultnet.Fault{Kind: faultnet.Err5xx}
		}
		return faultnet.Fault{Kind: faultnet.Pass}
	})
	proxy, err := faultnet.New(srv.URL, flaky)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c := newClient(t, proxy.URL(), func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Millisecond
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				c.Get(fmt.Sprintf("k%d", i%4))
				if i%5 == 0 {
					c.PutAsync(fmt.Sprintf("p%d-%d", g, i), "t", []byte("w"))
				}
			}
		}(g)
	}
	wg.Wait()
	c.Close()
	s := c.Stats()
	if s.Gets != 200 {
		t.Fatalf("stats = %+v, want 200 gets accounted", s)
	}
}

func TestOptionsFromEnv(t *testing.T) {
	t.Setenv("ACTIVEMEM_REMOTE_TIMEOUT", "250ms")
	t.Setenv("ACTIVEMEM_REMOTE_RETRIES", "0")
	t.Setenv("ACTIVEMEM_REMOTE_BREAKER_THRESHOLD", "7")
	t.Setenv("ACTIVEMEM_REMOTE_BREAKER_COOLDOWN", "3s")
	o := OptionsFromEnv("127.0.0.1:9", testSchema)
	o.withDefaults()
	if o.Timeout != 250*time.Millisecond || o.Retries != 0 ||
		o.BreakerThreshold != 7 || o.BreakerCooldown != 3*time.Second {
		t.Fatalf("env options = %+v", o)
	}
}

func TestNewRejectsMalformedURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "http://"} {
		if _, err := New(Options{BaseURL: bad, Schema: testSchema}); err == nil {
			t.Errorf("New(%q) accepted a malformed URL", bad)
		}
	}
	c, err := New(Options{BaseURL: "127.0.0.1:8344", Schema: testSchema})
	if err != nil {
		t.Fatalf("bare host:port rejected: %v", err)
	}
	if c.BaseURL() != "http://127.0.0.1:8344" {
		t.Fatalf("BaseURL = %q", c.BaseURL())
	}
	c.Close()
}
