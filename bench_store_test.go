package activemem

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"activemem/internal/lab"
	"activemem/internal/store"
)

// storeBenchKey renders content-address-shaped keys (hex digests) so the
// benchmark load spreads over the keyspace the way real lab.Keys do.
func storeBenchKey(i int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("bench-cell-%d", i)))
	return hex.EncodeToString(h[:])
}

// benchKeys precomputes b.N keys before the timer starts, so the loop
// measures store operations rather than SHA-256 key construction.
func benchKeys(n, base int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = storeBenchKey(base + i)
	}
	return keys
}

// runStoreBench fans b.N operations over g goroutines via a shared claim
// counter and reports aggregate ops/sec.
func runStoreBench(b *testing.B, g int, fn func(i int)) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkStoreConcurrent measures the sharded store under goroutine
// fan-out at three concurrency levels, with the in-memory hot set off
// (pure snapshot/disk path) and on. The hot=off get numbers isolate the
// lock-free read path; put throughput scales with the number of shard
// flocks whose fsyncs can overlap.
func BenchmarkStoreConcurrent(b *testing.B) {
	const prePopulated = 2048
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	open := func(b *testing.B, dir string, hotBytes int64) *store.Store {
		b.Helper()
		s, err := store.Open(dir, store.Options{Schema: "bench-v1", HotBytes: hotBytes})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	hotKeys := benchKeys(prePopulated, 0)
	prep := func(b *testing.B, s *store.Store) {
		b.Helper()
		for _, k := range hotKeys {
			if _, err := s.Put(k, "bench.T", payload); err != nil {
				b.Fatal(err)
			}
		}
		// Settle deferred durability so the measurement window sees a
		// checkpointed store, not the prep's leftover writeback.
		if err := s.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	for _, hot := range []struct {
		name  string
		bytes int64
	}{{"hot=off", 0}, {"hot=on", 64 << 20}} {
		for _, g := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("get/%s/g=%d", hot.name, g), func(b *testing.B) {
				s := open(b, b.TempDir(), hot.bytes)
				defer s.Close()
				prep(b, s)
				runStoreBench(b, g, func(i int) {
					if _, _, ok := s.Get(hotKeys[i%prePopulated]); !ok {
						b.Error("miss")
					}
				})
			})
			b.Run(fmt.Sprintf("put/%s/g=%d", hot.name, g), func(b *testing.B) {
				s := open(b, b.TempDir(), hot.bytes)
				defer s.Close()
				fresh := benchKeys(b.N, 1<<20)
				runStoreBench(b, g, func(i int) {
					if _, err := s.Put(fresh[i], "bench.T", payload); err != nil {
						b.Error(err)
					}
				})
			})
			b.Run(fmt.Sprintf("mixed/%s/g=%d", hot.name, g), func(b *testing.B) {
				s := open(b, b.TempDir(), hot.bytes)
				defer s.Close()
				prep(b, s)
				fresh := benchKeys(b.N/8+1, 1<<20)
				runStoreBench(b, g, func(i int) {
					if i%8 == 7 {
						if _, err := s.Put(fresh[i/8], "bench.T", payload); err != nil {
							b.Error(err)
						}
						return
					}
					if _, _, ok := s.Get(hotKeys[i%prePopulated]); !ok {
						b.Error("miss")
					}
				})
			})
		}
	}
}

// benchReplayResult approximates a persisted experiment-cell result: a few
// KB of gob-encoded slices, like a sweep's per-level metrics.
type benchReplayResult struct {
	Levels []float64
	Counts []int64
}

func init() {
	lab.RegisterResult[benchReplayResult]("bench.ReplayResult")
}

// BenchmarkWarmCampaignReplay measures the executor path a resumed
// campaign takes: every cell already persisted, a fresh executor per
// iteration (cold in-process memo, like a new process) re-serving the
// whole campaign from the cache tiers. hot=on serves decoded values from
// the admission-controlled memory tier; hot=off decodes from disk every
// time.
func BenchmarkWarmCampaignReplay(b *testing.B) {
	const cells = 256
	mk := func(i int) benchReplayResult {
		r := benchReplayResult{Levels: make([]float64, 256), Counts: make([]int64, 64)}
		for j := range r.Levels {
			r.Levels[j] = float64(i*len(r.Levels) + j)
		}
		for j := range r.Counts {
			r.Counts[j] = int64(i + j)
		}
		return r
	}
	for _, hot := range []struct {
		name  string
		bytes int64
	}{{"hot=off", 0}, {"hot=on", 64 << 20}} {
		b.Run(hot.name, func(b *testing.B) {
			dir := b.TempDir()
			st, err := lab.OpenCacheSized(dir, hot.bytes)
			if err != nil {
				b.Fatal(err)
			}
			seed := lab.New(lab.Config{Workers: 2, Cache: st})
			for i := 0; i < cells; i++ {
				i := i
				if _, err := lab.Memo(seed, lab.KeyOf("replay-cell", i), func() (benchReplayResult, error) {
					return mk(i), nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			seed.Close()
			st.Close()

			// Reopen once: the store handle persists across replays (the
			// resident-pool model), but each iteration's executor starts
			// with an empty in-process memo, so every cell goes to the
			// store's tiers.
			st, err = lab.OpenCacheSized(dir, hot.bytes)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				ex := lab.New(lab.Config{Workers: 2, Cache: st})
				for i := 0; i < cells; i++ {
					v, err := lab.Memo(ex, lab.KeyOf("replay-cell", i), func() (benchReplayResult, error) {
						return benchReplayResult{}, fmt.Errorf("warm replay must not compute")
					})
					if err != nil || len(v.Levels) != 256 {
						b.Fatal("cell not served from cache")
					}
				}
				stats := ex.Stats()
				if stats.Computed != 0 {
					b.Fatalf("replay computed %d cells", stats.Computed)
				}
				ex.Close()
			}
		})
	}
}
