module activemem

go 1.24
