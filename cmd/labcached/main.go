// Command labcached serves a persistent result store over HTTP as the
// team-wide remote memo tier: campaigns on any machine consult it after
// their local tiers (-cache-url) and write computed cells back, so a
// paper-scale grid is simulated once, ever, org-wide.
//
// Usage:
//
//	labcached [-addr HOST:PORT] [-dir DIR] [-cache-mem BYTES] [-drain DUR]
//	          [-auth-token TOK] [-coord] [-lease-ttl DUR] [-steal-after DUR]
//	          [-policy first-error|keep-going] [-max-retries N]
//
// The cell endpoints (GET/PUT /v1/cell/{key}, see internal/remote) are
// mounted beside the standard telemetry handler, so /metrics, /statusz
// and /debug/pprof/ come for free on the same listener. The bound
// address is announced on stderr ("labcached: listening on http://…"),
// which makes -addr 127.0.0.1:0 usable in scripts and CI.
//
// With -coord (the default), a fleet coordinator is mounted at
// /v1/campaign/* on the same listener, so one process serves both the
// results and the leases of a distributed campaign: point every
// worker's -worker-of (and -cache-url) at this address. -auth-token
// (default $ACTIVEMEM_CACHE_TOKEN) guards both the cell and campaign
// endpoints with a shared-secret bearer token; telemetry endpoints stay
// open, matching the usual metrics-are-public posture.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests for up to -drain, checkpoints the store and exits;
// a second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"activemem/internal/fleet"
	"activemem/internal/lab"
	"activemem/internal/remote"
	"activemem/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("labcached: ")
	var (
		addr = flag.String("addr", "127.0.0.1:8344", "listen address (use :0 for an ephemeral port)")
		dir  = flag.String("dir", os.Getenv("ACTIVEMEM_CACHE_DIR"),
			"result store directory to serve (default $ACTIVEMEM_CACHE_DIR)")
		cacheMem = flag.Int64("cache-mem", -1,
			"in-memory hot-set budget for the served store in bytes, 0 to disable (default $ACTIVEMEM_CACHE_MEM or 64MiB)")
		drain = flag.Duration("drain", 10*time.Second,
			"in-flight request drain budget on shutdown")
		authToken = flag.String("auth-token", remote.TokenFromEnv(),
			"shared-secret bearer token for the cell and campaign endpoints, empty to disable (default $ACTIVEMEM_CACHE_TOKEN)")
		coord = flag.Bool("coord", true,
			"also serve a fleet coordinator at /v1/campaign/*")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second,
			"coordinator lease TTL: a worker silent this long forfeits its cells")
		stealAfter = flag.Duration("steal-after", 45*time.Second,
			"how long a cell may stay leased before idle workers may duplicate it")
		policy = flag.String("policy", "first-error",
			"coordinator failure policy: first-error aborts the campaign, keep-going re-leases failed cells")
		maxRetries = flag.Int("max-retries", 2,
			"compute-failure re-leases per cell under -policy keep-going")
	)
	flag.Parse()
	if *policy != "first-error" && *policy != "keep-going" {
		log.Fatalf("unknown -policy %q (want first-error or keep-going)", *policy)
	}
	if *dir == "" {
		log.Fatal("no store directory: set -dir or $ACTIVEMEM_CACHE_DIR")
	}
	if *cacheMem < 0 {
		*cacheMem = lab.HotBytesFromEnv()
	}

	st, err := lab.OpenCacheSized(*dir, *cacheMem)
	if err != nil {
		log.Fatal(err)
	}

	// One mux: the cell protocol beside the stock telemetry surface.
	// Serving /metrics from the same registry the remote/store packages
	// register on means server-side request counters, store op counters
	// and hot-set stats are all scrapeable without extra wiring.
	telemetry.SetActive(true)
	telemetry.Default.AddStatus("store_ops", func() any { return st.Counters() })
	telemetry.Default.AddStatus("store_hot", func() any { return st.HotStats() })
	telemetry.Default.AddStatus("labcached", func() any {
		return map[string]any{"dir": st.Dir(), "entries": st.Len(), "schema": st.Schema()}
	})
	mux := http.NewServeMux()
	mux.Handle(remote.CellPathPrefix, remote.RequireAuth(*authToken, remote.NewHandler(st)))
	if *coord {
		co := fleet.NewCoordinator(fleet.Options{
			LeaseTTL:   *leaseTTL,
			StealAfter: *stealAfter,
			KeepGoing:  *policy == "keep-going",
			MaxRetries: *maxRetries,
		})
		telemetry.Default.AddStatus("fleet", func() any { return co.Status() })
		mux.Handle(fleet.PathPrefix, remote.RequireAuth(*authToken, fleet.NewHandler(co)))
	}
	mux.Handle("/", telemetry.Handler(telemetry.Default))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "labcached: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "labcached: serving %d cells from %s (schema %s)\n",
		st.Len(), st.Dir(), st.Schema())
	if *coord {
		fmt.Fprintf(os.Stderr, "labcached: coordinator at %s (lease-ttl %s, steal-after %s, policy %s)\n",
			fleet.PathPrefix, *leaseTTL, *stealAfter, *policy)
	}
	if *authToken != "" {
		fmt.Fprintln(os.Stderr, "labcached: bearer-token auth enabled on cell and campaign endpoints")
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		st.Close()
		log.Fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "labcached: %v: draining in-flight requests (up to %s; signal again to exit now)\n",
			sig, *drain)
	}
	go func() {
		<-sigCh
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	// Checkpoint so the next open (or a labcache verify) sees every
	// acknowledged record in the segments, not just the commit log.
	if err := st.Close(); err != nil {
		log.Fatalf("store close: %v", err)
	}
	fmt.Fprintln(os.Stderr, "labcached: store checkpointed, bye")
}
