// Command labcoord serves a fleet coordinator alone — lease arbitration
// for a distributed campaign whose results flow through some other
// shared cache (a separate labcached, or plain shared -cache-dir on a
// network filesystem). Most deployments want labcached -coord instead,
// which serves results and leases from one process; labcoord exists for
// topologies that split them, and for chaos drills where the
// coordinator must be killable without taking the cache down.
//
// Usage:
//
//	labcoord [-addr HOST:PORT] [-auth-token TOK] [-lease-ttl DUR]
//	         [-steal-after DUR] [-policy first-error|keep-going]
//	         [-max-retries N]
//
// The campaign endpoints (POST /v1/campaign/{claim,done,fail,heartbeat,
// manifest}, GET /v1/campaign/status) are mounted beside the standard
// telemetry handler. The bound address is announced on stderr
// ("labcoord: listening on http://…") for -addr 127.0.0.1:0 scripting.
// Coordinator state is in-memory only and that is the design, not a
// shortcut: completed cells live in the shared cache, so a restarted
// coordinator re-learns the campaign from the claims that keep arriving
// — already-published cells never reach it again, and in-flight ones
// are simply re-claimed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"activemem/internal/fleet"
	"activemem/internal/remote"
	"activemem/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("labcoord: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:8345", "listen address (use :0 for an ephemeral port)")
		authToken = flag.String("auth-token", remote.TokenFromEnv(),
			"shared-secret bearer token for the campaign endpoints, empty to disable (default $ACTIVEMEM_CACHE_TOKEN)")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second,
			"lease TTL: a worker silent this long forfeits its cells")
		stealAfter = flag.Duration("steal-after", 45*time.Second,
			"how long a cell may stay leased before idle workers may duplicate it")
		policy = flag.String("policy", "first-error",
			"failure policy: first-error aborts the campaign, keep-going re-leases failed cells")
		maxRetries = flag.Int("max-retries", 2,
			"compute-failure re-leases per cell under -policy keep-going")
		drain = flag.Duration("drain", 5*time.Second,
			"in-flight request drain budget on shutdown")
	)
	flag.Parse()
	if *policy != "first-error" && *policy != "keep-going" {
		log.Fatalf("unknown -policy %q (want first-error or keep-going)", *policy)
	}

	co := fleet.NewCoordinator(fleet.Options{
		LeaseTTL:   *leaseTTL,
		StealAfter: *stealAfter,
		KeepGoing:  *policy == "keep-going",
		MaxRetries: *maxRetries,
	})
	telemetry.SetActive(true)
	telemetry.Default.AddStatus("fleet", func() any { return co.Status() })
	mux := http.NewServeMux()
	mux.Handle(fleet.PathPrefix, remote.RequireAuth(*authToken, fleet.NewHandler(co)))
	mux.Handle("/", telemetry.Handler(telemetry.Default))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "labcoord: listening on http://%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "labcoord: lease-ttl %s, steal-after %s, policy %s\n",
		*leaseTTL, *stealAfter, *policy)
	if *authToken != "" {
		fmt.Fprintln(os.Stderr, "labcoord: bearer-token auth enabled")
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "labcoord: %v: draining (up to %s; signal again to exit now)\n", sig, *drain)
	}
	go func() {
		<-sigCh
		os.Exit(130)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	s := co.Status()
	fmt.Fprintf(os.Stderr, "labcoord: %d cells (%d done, %d failed), %d leases, %d steals, %d expiries, bye\n",
		s.Cells, s.Done, s.Failed, s.LeasesGranted, s.Steals, s.Expired)
}
